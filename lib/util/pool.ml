(** App-level parallelism: a [Domain]-based worker pool (see the
    interface).  Work items are claimed from an atomic counter, so the
    schedule is dynamic, but results are stored by input index — the
    output order (and therefore every rendered table) is identical at
    any job count. *)

module M = Fd_obs.Metrics

let m_batches = M.counter "pool.batches"
let m_tasks = M.counter "pool.tasks"
let g_jobs = M.gauge "pool.jobs"

let default_jobs () =
  match Sys.getenv_opt "FLOWDROID_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

exception Worker_failed of exn

let map ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let did = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f arr.(i));
          incr did;
          loop ()
        end
      in
      loop ();
      !did
    in
    M.incr m_batches;
    M.add m_tasks n;
    M.set_int g_jobs jobs;
    let workers = min jobs (max n 1) in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is worker 0: no idle coordinator.  Whatever
       happens, every spawned domain is joined exactly once before we
       return or re-raise — a failure in any worker (including worker
       0) must not leak domains or lose the other workers' exceptions.
       The first failure in worker order wins; all are wrapped
       uniformly in [Worker_failed]. *)
    let own = match worker () with c -> Ok c | exception e -> Error e in
    let joined =
      List.map
        (fun d -> match Domain.join d with c -> Ok c | exception e -> Error e)
        spawned
    in
    let counts =
      List.map
        (function Ok c -> c | Error e -> raise (Worker_failed e))
        (own :: joined)
    in
    List.iteri
      (fun i c -> M.add (M.counter (Printf.sprintf "pool.tasks.d%d" i)) c)
      counts;
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None ->
               (* unreachable: every index below [n] is claimed and
                  filled before the joins return *)
               assert false)
         out)
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x; ()) xs)
