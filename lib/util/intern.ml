(** Hash-consing pools: map structurally-equal values to small dense
    integer ids (see the interface for the design rationale). *)

(* ------------------------------------------------------------------ *)
(* hash combinators                                                    *)
(* ------------------------------------------------------------------ *)

(* Boost-style mixing: asymmetric, so [combine a b <> combine b a],
   and every bit of both operands reaches the result.  The magic
   constant is the 64-bit golden ratio truncated to OCaml's 63-bit
   int range. *)
let golden = 0x4f1bbcdcbfa53e0b (* 0x9e3779b97f4a7c15 lsr 1 *)

let combine h v = (h lxor (v + golden + (h lsl 6) + (h lsr 2))) land max_int

let fold_hash hash_elt seed xs =
  List.fold_left (fun h x -> combine h (hash_elt x)) seed xs

(* ------------------------------------------------------------------ *)
(* pools                                                               *)
(* ------------------------------------------------------------------ *)

module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (T : HASHED) = struct
  module Tbl = Hashtbl.Make (T)

  type pool = {
    p_ids : int Tbl.t;
    mutable p_values : T.t array;  (** id -> value, dense *)
    mutable p_next : int;
    mutable p_hits : int;
    mutable p_misses : int;
    (* one-slot cache: interning the same physical value twice in a
       row (e.g. the same fact propagated to each CFG successor) skips
       the structural hash entirely *)
    mutable p_last : T.t option;
    mutable p_last_id : int;
  }

  let create ?(size = 256) () =
    {
      p_ids = Tbl.create size;
      p_values = [||];
      p_next = 0;
      p_hits = 0;
      p_misses = 0;
      p_last = None;
      p_last_id = -1;
    }

  let grow p v =
    let cap = Array.length p.p_values in
    if p.p_next = cap then begin
      let bigger = Array.make (max 64 (2 * cap)) v in
      Array.blit p.p_values 0 bigger 0 cap;
      p.p_values <- bigger
    end;
    p.p_values.(p.p_next) <- v;
    p.p_next <- p.p_next + 1

  let id p v =
    match p.p_last with
    | Some last when last == v ->
        p.p_hits <- p.p_hits + 1;
        p.p_last_id
    | _ ->
        let i =
          match Tbl.find_opt p.p_ids v with
          | Some i ->
              p.p_hits <- p.p_hits + 1;
              i
          | None ->
              let i = p.p_next in
              grow p v;
              Tbl.replace p.p_ids v i;
              p.p_misses <- p.p_misses + 1;
              i
        in
        p.p_last <- Some v;
        p.p_last_id <- i;
        i

  let find_id p v = Tbl.find_opt p.p_ids v

  (* [p_values] has spare capacity filled with whatever value [grow]
     last copied in, so indexing past [p_next] would silently return
     an unrelated (but valid-looking) interned value — bound-check
     against the allocated prefix, not the physical array. *)
  let value p i =
    if i < 0 || i >= p.p_next then
      invalid_arg
        (Printf.sprintf "Intern.value: id %d out of bounds (size %d)" i
           p.p_next);
    p.p_values.(i)
  let size p = p.p_next
  let hits p = p.p_hits
  let misses p = p.p_misses

  let iter p f =
    for i = 0 to p.p_next - 1 do
      f i p.p_values.(i)
    done
end
