(** A [Domain]-based worker pool for embarrassingly-parallel per-app
    loops (the evaluation tables and corpus runs).

    Design constraints, in order:

    + {b determinism}: [map ~jobs f xs] returns exactly
      [List.map f xs] — results are stored by input index, so the
      output (and every table rendered from it) is bit-identical at
      any job count.  Each work item must therefore be independent:
      the solver stays sequential {e per app}; only the per-app loop
      fans out.
    + {b no idle coordinator}: the calling domain is worker 0, so
      [~jobs:1] costs nothing and [~jobs:n] spawns [n - 1] domains.
    + {b dynamic schedule}: items are claimed from an atomic counter,
      so a slow app does not stall a statically-assigned neighbour.

    Per-batch metrics are published under [pool.*] ([pool.batches],
    [pool.tasks], [pool.tasks.d<i>] per worker, [pool.jobs]). *)

exception Worker_failed of exn
(** a worker died; the original exception is attached.  Raised
    uniformly whether the failing worker was a spawned domain or the
    calling domain itself, and only after {e every} spawned domain has
    been joined — a throwing [f] never leaks domains.  When several
    workers fail, the first in worker order wins.  Per-app crash
    isolation should happen {e inside} [f] (the eval loops run each
    app under [Fd_resilience.Barrier]), so this escaping indicates a
    harness bug, not an app failure. *)

val default_jobs : unit -> int
(** [FLOWDROID_JOBS] from the environment, else 1 *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed by [jobs] domains.
    [jobs <= 1] runs inline with zero overhead. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
