(** Hash-consing pools: intern structurally-equal values into small
    dense integer ids.

    The IFDS solvers spend much of their time hashing and comparing
    deep structures (access paths, taint abstractions, method keys) as
    hash-table keys.  A pool assigns each distinct value — "distinct"
    by the value type's own [equal] — a dense id [0, 1, 2, …]; after
    one structural hash at interning time, every further table
    operation is integer-keyed: O(1), allocation-free, and immune to
    the polymorphic-hash depth truncation that makes deep access paths
    collide.

    Pools are {e not} thread-safe; the intended discipline is one pool
    per solver instance (solvers are sequential — app-level
    parallelism gives each domain its own solvers, see
    {!Fd_util.Pool}).

    The module also exposes the fold-style hash combinators the
    explicit [hash] functions of [Access_path], [Taint] and [Mkey] are
    built from. *)

val combine : int -> int -> int
(** [combine h v] mixes hash value [v] into accumulator [h];
    asymmetric and non-truncating, never negative. *)

val fold_hash : ('a -> int) -> int -> 'a list -> int
(** [fold_hash hash_elt seed xs] combines the hash of every element of
    [xs] into [seed] — unlike [Hashtbl.hash], no element is ever
    skipped. *)

module type HASHED = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (T : HASHED) : sig
  type pool

  val create : ?size:int -> unit -> pool

  val id : pool -> T.t -> int
  (** [id p v] is the unique dense id of [v] in [p], interning it on
      first sight.  [id p a = id p b] iff [T.equal a b].  A one-slot
      cache makes re-interning the same physical value O(1) without
      re-hashing. *)

  val find_id : pool -> T.t -> int option
  (** like {!id} but never interns *)

  val value : pool -> int -> T.t
  (** [value p i] is the representative interned under id [i].
      @raise Invalid_argument when [i] was never allocated ([i < 0] or
      [i >= size p]) — unallocated slots inside the array's spare
      capacity hold garbage and are never exposed. *)

  val size : pool -> int
  val hits : pool -> int
  val misses : pool -> int

  val iter : pool -> (int -> T.t -> unit) -> unit
end
