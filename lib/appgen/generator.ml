(** Synthetic app-corpus generation for RQ3.

    The paper evaluates FlowDroid on the 500 most popular Google-Play
    apps and ~1000 VirusShare malware samples; neither corpus is
    redistributable ("for legal reasons we are unable to provide these
    applications online").  This generator produces deterministic
    (seeded) corpora with the two profiles' reported characteristics:

    - {b Play profile}: larger apps (more classes, deeper call
      plumbing, several components), whose leaks are mostly
      *accidental* — identifiers and location data ending up in logs
      and preference files, typically via an embedded
      advertisement-library-like cluster (Section 6.3's findings);
    - {b Malware profile}: comparatively small apps averaging 1.85
      planted leaks, mostly identifiers sent by SMS or to a remote
      server, plus the broadcast-receiver-forwards-to-SMS pattern the
      paper describes.

    Every planted leak carries ground-truth tags, so corpus runs can
    measure recall on known flows in addition to runtime. *)

open Fd_ir
open Fd_util
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

type profile = Play | Malware | Icc

let string_of_profile = function
  | Play -> "play"
  | Malware -> "malware"
  | Icc -> "icc"

(** The documented Table 1 limitation categories (DESIGN.md §5).  The
    generator plants constructs exercising each one, tagged so the
    differential harness ({!Fd_diffcheck}) can classify the resulting
    static-vs-dynamic disagreements as {e explained} rather than as
    solver divergences. *)
type limitation =
  | Lim_array_index
      (** a tainted element taints the whole array → static FP on a
          read of a different index *)
  | Lim_strong_update
      (** no strong updates on heap locations → static FP after the
          field is overwritten with clean data *)
  | Lim_clinit
      (** static initialisers modelled at program start → static FN
          when [<clinit>] actually runs between source and sink *)
  | Lim_reflection
      (** no reflective call edges → static FN on constant-string
          [Method.invoke] dispatch *)
  | Lim_icc_send
      (** send = sink over-approximation: a deliverable tainted
          intent-send is reported as a leak by itself → static FP,
          fixed by the {!Fd_core.Config.t.icc} tier (the resolver
          drops sends with in-scene receivers) *)
  | Lim_icc_stitch
      (** reception = source over-approximation: the end-to-end
          source→receiver-sink flow is not composed → static FN, fixed
          by the ICC tier's link stitching (also covers tainted
          [setResult] payloads, the DroidBench IntentSink1 miss) *)
  | Lim_icc_rx
      (** the reception-source finding inside a receiver (read the
          arriving intent → sink) is static-only in {e both} tiers:
          the receiver leaks whatever arrives, which the concrete
          monitor only sees when a tainted intent actually lands *)

let string_of_limitation = function
  | Lim_array_index -> "array-index"
  | Lim_strong_update -> "strong-update"
  | Lim_clinit -> "clinit-placement"
  | Lim_reflection -> "reflection"
  | Lim_icc_send -> "icc-send"
  | Lim_icc_stitch -> "icc-stitch"
  | Lim_icc_rx -> "icc-rx"

(** [limitation_is_fp l] — the category manifests as a spurious static
    finding; otherwise it manifests as a missed real leak. *)
let limitation_is_fp = function
  | Lim_array_index | Lim_strong_update | Lim_icc_send | Lim_icc_rx -> true
  | Lim_clinit | Lim_reflection | Lim_icc_stitch -> false

type gen_app = {
  ga_name : string;
  ga_profile : profile;
  ga_apk : Apk.t;
  ga_expected : (string option * string) list;
      (** planted ground truth the static analysis must recover *)
  ga_limits : ((string option * string) * limitation) list;
      (** planted limitation constructs, keyed by (source tag, sink
          tag).  FP categories are {e not} real leaks (and not in
          [ga_expected]); FN categories are real leaks the static
          analysis is documented to miss (also not in [ga_expected],
          so recall on [ga_expected] stays a static-engine promise) *)
  ga_classes : int;  (** size metrics for reporting *)
}

(* ------------------------------------------------------------------ *)
(* code-shape helpers                                                  *)
(* ------------------------------------------------------------------ *)

let str_t = T.Ref "java.lang.String"

(* source emitters: (category tag stem, emit imei-like value) *)
let emit_imei m rng ret =
  ignore rng;
  let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag:"src" ~ret tm "android.telephony.TelephonyManager"
    (Prng.choose rng [ "getDeviceId"; "getSubscriberId"; "getSimSerialNumber" ])
    []

let emit_location m rng ret =
  ignore rng;
  let lm = B.local m "lm" ~ty:(T.Ref "android.location.LocationManager") in
  B.newobj m lm "android.location.LocationManager";
  B.vcall m ~tag:"src" ~ret lm "android.location.LocationManager"
    "getLastKnownLocation" [ B.s "gps" ]

(* sink emitters *)
let emit_log m data =
  B.scall m ~tag:"snk" "android.util.Log"
    (* the variety exercises the whole log sink family *)
    "i" [ B.s "tag"; data ]

let emit_prefs m data =
  let ed = B.local m "ed" ~ty:(T.Ref "android.content.SharedPreferences$Editor") in
  B.newobj m ed "android.content.SharedPreferences$Editor";
  B.vcall m ~tag:"snk" ed "android.content.SharedPreferences$Editor"
    "putString" [ B.s "k"; data ]

let emit_sms m data =
  let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
  B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
  B.vcall m ~tag:"snk" sms "android.telephony.SmsManager" "sendTextMessage"
    [ B.s "+790001"; B.nul; data; B.nul; B.nul ]

let emit_http m data =
  let conn = B.local m "conn" ~ty:(T.Ref "java.net.HttpURLConnection") in
  B.newc m conn "java.net.HttpURLConnection" [ B.s "http://c2.example/x" ];
  B.vcall m ~tag:"snk" conn "java.net.HttpURLConnection" "sendRequest" [ data ]

(* relay helper classes give the planted flows interprocedural depth;
   each utility also calls into the next one, giving the Play-profile
   apps the deeper call plumbing that makes them slower to analyse *)
let relay_class ?(chain_to = None) pkg idx =
  let cls = Printf.sprintf "%s.Util%d" pkg idx in
  ( cls,
    B.cls cls
      [
        B.meth "pass" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
            let p = B.param m 0 "p" in
            match chain_to with
            | Some next ->
                let r = B.local m "r" in
                B.scall m ~ret:r next "pass" [ B.v p ];
                B.retv m (B.v r)
            | None -> B.retv m (B.v p));
        B.meth "decorate" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
            let p = B.param m 0 "p" in
            let r = B.local m "r" in
            B.binop m r "+" (B.s "v=") (B.v p);
            B.retv m (B.v r));
        B.meth "busy" ~static:true ~params:[ T.Int ] ~ret:T.Int (fun m ->
            (* taint-free plumbing: gives the solver work without flows *)
            let p = B.param m 0 "p" in
            let r = B.local m "r" ~ty:T.Int in
            B.binop m r "*" (B.v p) (B.i 31);
            B.binop m r "+" (B.v r) (B.i 7);
            B.retv m (B.v r));
      ] )

(* emit a leak: source -> 0..depth relay hops -> sink, tagged with a
   unique pair *)
let plant_leak m rng ~relays ~leak_id ~src_kind ~sink_kind =
  let x = B.local m (Printf.sprintf "leak%d" leak_id) in
  let src_tag = Printf.sprintf "src%d" leak_id in
  let snk_tag = Printf.sprintf "snk%d" leak_id in
  (match src_kind with
  | `Imei ->
      let tm =
        B.local m (Printf.sprintf "tm%d" leak_id)
          ~ty:(T.Ref "android.telephony.TelephonyManager")
      in
      B.newobj m tm "android.telephony.TelephonyManager";
      B.vcall m ~tag:src_tag ~ret:x tm "android.telephony.TelephonyManager"
        (Prng.choose rng [ "getDeviceId"; "getSubscriberId"; "getLine1Number" ])
        []
  | `Location ->
      let lm =
        B.local m (Printf.sprintf "lm%d" leak_id)
          ~ty:(T.Ref "android.location.LocationManager")
      in
      B.newobj m lm "android.location.LocationManager";
      B.vcall m ~tag:src_tag ~ret:x lm "android.location.LocationManager"
        "getLastKnownLocation" [ B.s "gps" ]);
  (* relay hops *)
  let hops = Prng.int rng 3 in
  let cur = ref x in
  for h = 1 to hops do
    let y = B.local m (Printf.sprintf "leak%d_h%d" leak_id h) in
    (match (relays, Prng.int rng 3) with
    | relay :: _, 0 -> B.scall m ~ret:y relay "pass" [ B.v !cur ]
    | _ :: relay :: _, 1 -> B.scall m ~ret:y relay "decorate" [ B.v !cur ]
    | _ -> B.binop m y "+" (B.s "#") (B.v !cur));
    cur := y
  done;
  let data = B.v !cur in
  let emit =
    match sink_kind with
    | `Log ->
        fun () ->
          B.scall m ~tag:snk_tag "android.util.Log" "i" [ B.s "t"; data ]
    | `Prefs ->
        fun () ->
          let ed =
            B.local m (Printf.sprintf "ed%d" leak_id)
              ~ty:(T.Ref "android.content.SharedPreferences$Editor")
          in
          B.newobj m ed "android.content.SharedPreferences$Editor";
          B.vcall m ~tag:snk_tag ed "android.content.SharedPreferences$Editor"
            "putString" [ B.s "k"; data ]
    | `Sms ->
        fun () ->
          let sms =
            B.local m (Printf.sprintf "sms%d" leak_id)
              ~ty:(T.Ref "android.telephony.SmsManager")
          in
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m ~tag:snk_tag sms "android.telephony.SmsManager"
            "sendTextMessage" [ B.s "+790001"; B.nul; data; B.nul; B.nul ]
    | `Http ->
        fun () ->
          let conn =
            B.local m (Printf.sprintf "conn%d" leak_id)
              ~ty:(T.Ref "java.net.HttpURLConnection")
          in
          B.newc m conn "java.net.HttpURLConnection" [ B.s "http://c2/x" ];
          B.vcall m ~tag:snk_tag conn "java.net.HttpURLConnection"
            "sendRequest" [ data ]
  in
  emit ();
  (Some src_tag, snk_tag)

(* benign code: constant flows into sinks, arithmetic plumbing *)
let emit_benign m rng ~relays ~idx =
  match Prng.int rng 3 with
  | 0 ->
      let x = B.local m (Printf.sprintf "ben%d" idx) in
      B.const m x (B.s "static text");
      B.scall m "android.util.Log" "d" [ B.s "t"; B.v x ]
  | 1 ->
      let n = B.local m (Printf.sprintf "n%d" idx) ~ty:T.Int in
      B.const m n (B.i (Prng.int rng 1000));
      (match relays with
      | relay :: _ -> B.scall m ~ret:n relay "busy" [ B.v n ]
      | [] -> ())
  | _ ->
      let a = B.local m (Printf.sprintf "a%d" idx) in
      let b = B.local m (Printf.sprintf "b%d" idx) in
      B.const m a (B.s "x");
      B.binop m b "+" (B.v a) (B.s "y")

(* ------------------------------------------------------------------ *)
(* limitation plants                                                   *)
(* ------------------------------------------------------------------ *)

(* Each plant is a self-contained construct exercising one documented
   imprecision, with its own (limsrcN, limsnkN) tag pair so the
   differential harness can look the category up by key.  None of the
   emitters draws from the rng: the kind choice happens up front in
   [generate], keeping the app deterministic in the draw order. *)

let lim_source m ~tag ~j ret =
  let tm =
    B.local m
      (Printf.sprintf "ltm%d" j)
      ~ty:(T.Ref "android.telephony.TelephonyManager")
  in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag ~ret tm "android.telephony.TelephonyManager" "getDeviceId" []

let lim_sink m ~tag data =
  B.scall m ~tag "android.util.Log" "i" [ B.s "lim"; data ]

(* arr[0] := tainted; sink(arr[1]) — the static analysis taints the
   whole array (§4.1), the dynamic monitor tracks per cell *)
let emit_lim_array m ~j ~src_tag ~snk_tag =
  let arr = B.local m (Printf.sprintf "limarr%d" j) ~ty:(T.Array str_t) in
  B.newarray m arr str_t (B.i 2);
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  B.astore m arr (B.i 0) (B.v x);
  let y = B.local m (Printf.sprintf "limy%d" j) in
  B.aload m y arr (B.i 1);
  lim_sink m ~tag:snk_tag (B.v y)

(* o.val := tainted; o.val := "clean"; sink(o.val) — no strong updates
   on heap locations keeps the stale taint alive statically *)
let emit_lim_strong_update m ~box_cls ~j ~src_tag ~snk_tag =
  let f = B.fld ~ty:str_t box_cls "v" in
  let o = B.local m (Printf.sprintf "limo%d" j) ~ty:(T.Ref box_cls) in
  B.newobj m o box_cls;
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  B.store m o f (B.v x);
  B.store m o f (B.s "clean");
  let y = B.local m (Printf.sprintf "limy%d" j) in
  B.load m y o f;
  lim_sink m ~tag:snk_tag (B.v y)

(* store tainted into a static field, then trigger the helper's
   <clinit> (which reads the field and sinks it) via first use — the
   static model runs initialisers at program start and misses the
   flow; the interpreter runs them at first use and observes it *)
let emit_lim_clinit m ~cls ~helper ~j ~src_tag =
  let g = B.fld ~ty:str_t cls (Printf.sprintf "limstash%d" j) in
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  B.storestatic m g (B.v x);
  let h = B.local m (Printf.sprintf "limh%d" j) ~ty:(T.Ref helper) in
  B.newobj m h helper

(* the <clinit> helper class for [emit_lim_clinit] *)
let lim_clinit_helper ~cls ~helper ~j ~snk_tag =
  let g = B.fld ~ty:str_t cls (Printf.sprintf "limstash%d" j) in
  B.cls helper
    [
      B.meth "<clinit>" ~static:true (fun m ->
          let v = B.local m "v" in
          B.loadstatic m v g;
          lim_sink m ~tag:snk_tag (B.v v));
    ]

(* constant-string reflective dispatch to a sinking method — no
   reflective call edges statically; the interpreter's Method model
   executes the real body *)
let emit_lim_reflection m ~j ~src_tag =
  let this = B.this m in
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  let mth =
    B.local m
      (Printf.sprintf "limmth%d" j)
      ~ty:(T.Ref "java.lang.reflect.Method")
  in
  B.vcall m ~ret:mth this "java.lang.Class" "getMethod"
    [ B.s (Printf.sprintf "limleak%d" j) ];
  B.vcall m mth "java.lang.reflect.Method" "invoke" [ B.v this; B.v x ]

(* the reflectively invoked method for [emit_lim_reflection] *)
let lim_reflection_target ~j ~snk_tag =
  B.meth (Printf.sprintf "limleak%d" j) ~params:[ str_t ] (fun m ->
      let _this = B.this m in
      let p = B.param m 0 "p" in
      lim_sink m ~tag:snk_tag (B.v p))

(* ------------------------------------------------------------------ *)
(* ICC profile                                                         *)
(* ------------------------------------------------------------------ *)

(* Each ICC scenario is one sender component plus receiver components
   connected only through the manifest.  The three ICC limitation
   categories split the planted keys per tier:

   - [(src, send)]  — the tainted send is a leak tier-off (send =
     sink, on both sides of the differential fence) and silent
     tier-on ([Lim_icc_send], fixed by the resolver);
   - [(src, snk)]   — the stitched end-to-end flow, missed tier-off
     and recovered tier-on ([Lim_icc_stitch]);
   - [(rx, snk)]    — the reception-source finding inside the
     receiver, static-only in both tiers ([Lim_icc_rx]): at runtime
     an *external* launch carries no extra under the read key.

   A per-key separation bug (a flow stitched through the wrong extra
   key) therefore surfaces as an unexplained [Spurious_static]
   divergence — no accounting entry hides it. *)

type icc_scenario =
  | Sc_explicit  (** new Intent(Recv.class) → startActivity *)
  | Sc_action  (** setAction + sendBroadcast, filter-matched *)
  | Sc_data  (** action + data URI; host-matched filter + decoy *)
  | Sc_keysplit  (** tainted and clean extras under different keys *)
  | Sc_unmatched  (** a send no component receives: a real leak *)
  | Sc_result  (** tainted [setResult] payload *)
  | Sc_relay  (** two hops: the receiver re-sends to a second one *)

let intent_t = T.Ref "android.content.Intent"

(* a manifest component entry with intent filters; a filter is
   (actions, data specs (scheme, host)) *)
type icc_mcomp = {
  mc_kind : FW.component_kind;
  mc_cls : string;
  mc_main : bool;
  mc_exported : bool option;  (** the explicit [android:exported] *)
  mc_filters : (string list * (string * string) list) list;
}

let icc_comp ?(main = false) ?exported ?(filters = []) kind cls =
  {
    mc_kind = kind;
    mc_cls = cls;
    mc_main = main;
    mc_exported = exported;
    mc_filters = filters;
  }

let icc_manifest ~package comps =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n\
        <manifest package=\"%s\">\n\
       \  <application>\n"
       package);
  List.iter
    (fun c ->
      let tag = FW.string_of_component_kind c.mc_kind in
      let exp =
        match c.mc_exported with
        | Some b -> Printf.sprintf " android:exported=\"%b\"" b
        | None -> ""
      in
      if c.mc_filters = [] && not c.mc_main then
        Buffer.add_string buf
          (Printf.sprintf "    <%s android:name=\"%s\"%s/>\n" tag c.mc_cls exp)
      else begin
        Buffer.add_string buf
          (Printf.sprintf "    <%s android:name=\"%s\"%s>\n" tag c.mc_cls exp);
        if c.mc_main then
          Buffer.add_string buf
            "      <intent-filter>\n\
            \        <action android:name=\"android.intent.action.MAIN\"/>\n\
            \        <category \
             android:name=\"android.intent.category.LAUNCHER\"/>\n\
            \      </intent-filter>\n";
        List.iter
          (fun (actions, datas) ->
            Buffer.add_string buf "      <intent-filter>\n";
            List.iter
              (fun a ->
                Buffer.add_string buf
                  (Printf.sprintf "        <action android:name=\"%s\"/>\n" a))
              actions;
            List.iter
              (fun (s, h) ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "        <data android:scheme=\"%s\" \
                      android:host=\"%s\"/>\n"
                     s h))
              datas;
            Buffer.add_string buf "      </intent-filter>\n")
          c.mc_filters;
        Buffer.add_string buf (Printf.sprintf "    </%s>\n" tag)
      end)
    comps;
  Buffer.add_string buf "  </application>\n</manifest>\n";
  Buffer.contents buf

(* ICC emitters.  Locals are namespaced by the scenario index [j];
   every scenario lives in its own component classes. *)

let icc_source m ~tag j =
  let tm =
    B.local m (Printf.sprintf "itm%d" j)
      ~ty:(T.Ref "android.telephony.TelephonyManager")
  in
  B.newobj m tm "android.telephony.TelephonyManager";
  let x = B.local m (Printf.sprintf "ix%d" j) in
  B.vcall m ~tag ~ret:x tm "android.telephony.TelephonyManager" "getDeviceId"
    [];
  x

let icc_intent m ?to_cls j suffix =
  let i = B.local m (Printf.sprintf "ii%d%s" j suffix) ~ty:intent_t in
  (match to_cls with
  | Some c ->
      B.newc m i "android.content.Intent" [ Stmt.Iconst (Stmt.CClassRef c) ]
  | None -> B.newc m i "android.content.Intent" []);
  i

let icc_put m ~key iv data =
  B.vcall m iv "android.content.Intent" "putExtra" [ B.s key; data ]

let icc_start m ~tag this iv =
  B.vcall m ~tag this "android.app.Activity" "startActivity" [ B.v iv ]

let icc_broadcast m ~tag j iv =
  let ctx =
    B.local m (Printf.sprintf "ictx%d" j) ~ty:(T.Ref "android.content.Context")
  in
  B.newobj m ctx "android.content.Context";
  B.vcall m ~tag ctx "android.content.Context" "sendBroadcast" [ B.v iv ]

let icc_sink m ~tag y =
  B.scall m ~tag "android.util.Log" "i" [ B.s "icc"; B.v y ]

let icc_sender_activity cls emit =
  B.cls cls ~super:"android.app.Activity"
    [
      B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
          let this = B.this m in
          let _ = B.param m 0 "b" in
          emit m this);
    ]

(* an activity that reads extra [key] from its launch intent; [after]
   decides what happens to the value (sink it, relay it, …) *)
let icc_recv_activity cls ~j ~key ~rx_tag after =
  B.cls cls ~super:"android.app.Activity"
    [
      B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
          let this = B.this m in
          let _ = B.param m 0 "b" in
          let it = B.local m (Printf.sprintf "rit%d" j) ~ty:intent_t in
          B.vcall m ~ret:it this "android.app.Activity" "getIntent" [];
          let y = B.local m (Printf.sprintf "ry%d" j) in
          B.vcall m ~tag:rx_tag ~ret:y it "android.content.Intent"
            "getStringExtra" [ B.s key ];
          after m this y);
    ]

let icc_recv_receiver cls ~j ~key ~rx_tag ~snk_tag =
  B.cls cls ~super:"android.content.BroadcastReceiver"
    [
      B.meth "onReceive"
        ~params:[ T.Ref "android.content.Context"; intent_t ]
        (fun m ->
          let _this = B.this m in
          let _c = B.param m 0 "c" in
          let it = B.param m 1 "it" ~ty:intent_t in
          let y = B.local m (Printf.sprintf "ry%d" j) in
          B.vcall m ~tag:rx_tag ~ret:y it "android.content.Intent"
            "getStringExtra" [ B.s key ];
          icc_sink m ~tag:snk_tag y);
    ]

type icc_parts = {
  ip_classes : Jclass.t list;
  ip_comps : icc_mcomp list;
  ip_expected : (string option * string) list;
  ip_limits : ((string option * string) * limitation) list;
}

let icc_scenario ~pkg ~j kind =
  let src = Printf.sprintf "isrc%d" j in
  let snd_ = Printf.sprintf "isnd%d" j in
  let sndb = Printf.sprintf "isnd%db" j in
  let rx = Printf.sprintf "irx%d" j in
  let rxb = Printf.sprintf "irx%db" j in
  let rxd = Printf.sprintf "irx%dd" j in
  let snk = Printf.sprintf "isnk%d" j in
  let snkb = Printf.sprintf "isnk%db" j in
  let snkd = Printf.sprintf "isnk%dd" j in
  let res = Printf.sprintf "ires%d" j in
  let key = Printf.sprintf "k%d" j in
  let keyb = Printf.sprintf "k%db" j in
  let sender_cls = Printf.sprintf "%s.Send%d" pkg j in
  let recv_cls = Printf.sprintf "%s.Recv%d" pkg j in
  let recvb_cls = Printf.sprintf "%s.RecvB%d" pkg j in
  let action = Printf.sprintf "%s.ACT%d" pkg j in
  let host = Printf.sprintf "h%d" j in
  let sender_comp = icc_comp FW.Activity sender_cls in
  let sink_after tag = fun m _this y -> icc_sink m ~tag y in
  match kind with
  | Sc_explicit ->
      let sender =
        icc_sender_activity sender_cls (fun m this ->
            let x = icc_source m ~tag:src j in
            let i = icc_intent m ~to_cls:recv_cls j "" in
            icc_put m ~key i (B.v x);
            icc_start m ~tag:snd_ this i)
      in
      let recv = icc_recv_activity recv_cls ~j ~key ~rx_tag:rx (sink_after snk) in
      {
        ip_classes = [ sender; recv ];
        ip_comps =
          [
            sender_comp;
            (* explicitly unexported: intra-app explicit delivery must
               ignore the exported gate *)
            icc_comp ~exported:false FW.Activity recv_cls;
          ];
        ip_expected = [];
        ip_limits =
          [
            ((Some src, snd_), Lim_icc_send);
            ((Some src, snk), Lim_icc_stitch);
            ((Some rx, snk), Lim_icc_rx);
          ];
      }
  | Sc_action ->
      let sender =
        icc_sender_activity sender_cls (fun m _this ->
            let x = icc_source m ~tag:src j in
            let i = icc_intent m j "" in
            B.vcall m i "android.content.Intent" "setAction" [ B.s action ];
            icc_put m ~key i (B.v x);
            icc_broadcast m ~tag:snd_ j i)
      in
      let recv = icc_recv_receiver recv_cls ~j ~key ~rx_tag:rx ~snk_tag:snk in
      {
        ip_classes = [ sender; recv ];
        ip_comps =
          [
            sender_comp;
            icc_comp ~filters:[ ([ action ], []) ] FW.Receiver recv_cls;
          ];
        ip_expected = [];
        ip_limits =
          [
            ((Some src, snd_), Lim_icc_send);
            ((Some src, snk), Lim_icc_stitch);
            ((Some rx, snk), Lim_icc_rx);
            (* the untagged [onReceive] param1 source is the other face
               of the reception over-approximation *)
            ((None, snk), Lim_icc_rx);
          ];
      }
  | Sc_data ->
      let sender =
        icc_sender_activity sender_cls (fun m this ->
            let x = icc_source m ~tag:src j in
            let i = icc_intent m j "" in
            B.vcall m i "android.content.Intent" "setAction" [ B.s action ];
            B.vcall m i "android.content.Intent" "setData"
              [ B.s (Printf.sprintf "app://%s/x" host) ];
            icc_put m ~key i (B.v x);
            icc_start m ~tag:snd_ this i)
      in
      let recv = icc_recv_activity recv_cls ~j ~key ~rx_tag:rx (sink_after snk) in
      (* the decoy matches the action but not the data host: it must
         receive nothing, statically or dynamically *)
      let decoy =
        icc_recv_activity recvb_cls ~j ~key ~rx_tag:rxd (sink_after snkd)
      in
      {
        ip_classes = [ sender; recv; decoy ];
        ip_comps =
          [
            sender_comp;
            icc_comp
              ~filters:[ ([ action ], [ ("app", host) ]) ]
              FW.Activity recv_cls;
            icc_comp
              ~filters:[ ([ action ], [ ("app", host ^ "x") ]) ]
              FW.Activity recvb_cls;
          ];
        ip_expected = [];
        ip_limits =
          [
            ((Some src, snd_), Lim_icc_send);
            ((Some src, snk), Lim_icc_stitch);
            ((Some rx, snk), Lim_icc_rx);
            ((Some rxd, snkd), Lim_icc_rx);
          ];
      }
  | Sc_keysplit ->
      (* both intents carry the tainted extra under [key] and a clean
         one under [keyb]; only the receiver reading [key] leaks.  A
         stitch onto the clean-key receiver would surface as an
         unexplained Spurious_static divergence *)
      let sender =
        icc_sender_activity sender_cls (fun m this ->
            let x = icc_source m ~tag:src j in
            let i1 = icc_intent m ~to_cls:recv_cls j "" in
            icc_put m ~key i1 (B.v x);
            icc_put m ~key:keyb i1 (B.s "clean");
            icc_start m ~tag:snd_ this i1;
            let i2 = icc_intent m ~to_cls:recvb_cls j "b" in
            icc_put m ~key i2 (B.v x);
            icc_put m ~key:keyb i2 (B.s "clean");
            icc_start m ~tag:sndb this i2)
      in
      let recv = icc_recv_activity recv_cls ~j ~key ~rx_tag:rx (sink_after snk) in
      let recvb =
        icc_recv_activity recvb_cls ~j ~key:keyb ~rx_tag:rxb (sink_after snkb)
      in
      {
        ip_classes = [ sender; recv; recvb ];
        ip_comps =
          [
            sender_comp;
            icc_comp FW.Activity recv_cls;
            icc_comp FW.Activity recvb_cls;
          ];
        ip_expected = [];
        ip_limits =
          [
            ((Some src, snd_), Lim_icc_send);
            ((Some src, sndb), Lim_icc_send);
            ((Some src, snk), Lim_icc_stitch);
            ((Some rx, snk), Lim_icc_rx);
            ((Some rxb, snkb), Lim_icc_rx);
          ];
      }
  | Sc_unmatched ->
      (* resolves nowhere: the send stays a real leak in both tiers,
         and tier-on also reports it as attack surface *)
      let sender =
        icc_sender_activity sender_cls (fun m _this ->
            let x = icc_source m ~tag:src j in
            let i = icc_intent m j "" in
            B.vcall m i "android.content.Intent" "setAction"
              [ B.s (action ^ ".NOBODY") ];
            icc_put m ~key i (B.v x);
            icc_broadcast m ~tag:snd_ j i)
      in
      {
        ip_classes = [ sender ];
        ip_comps = [ sender_comp ];
        ip_expected = [ (Some src, snd_) ];
        ip_limits = [];
      }
  | Sc_result ->
      let sender =
        icc_sender_activity sender_cls (fun m this ->
            let x = icc_source m ~tag:src j in
            let i = icc_intent m j "" in
            icc_put m ~key i (B.v x);
            B.vcall m ~tag:res this "android.app.Activity" "setResult"
              [ B.i 1; B.v i ])
      in
      {
        ip_classes = [ sender ];
        ip_comps = [ sender_comp ];
        ip_expected = [];
        ip_limits = [ ((Some src, res), Lim_icc_stitch) ];
      }
  | Sc_relay ->
      (* sender → relay (reads, re-wraps, re-sends) → final sink: the
         stitch fixpoint must compose across the intermediate hop *)
      let sender =
        icc_sender_activity sender_cls (fun m this ->
            let x = icc_source m ~tag:src j in
            let i = icc_intent m ~to_cls:recv_cls j "" in
            icc_put m ~key i (B.v x);
            icc_start m ~tag:snd_ this i)
      in
      let relay =
        icc_recv_activity recv_cls ~j ~key ~rx_tag:rx (fun m this y ->
            let i2 = icc_intent m ~to_cls:recvb_cls j "b" in
            icc_put m ~key:keyb i2 (B.v y);
            icc_start m ~tag:sndb this i2)
      in
      let final =
        icc_recv_activity recvb_cls ~j ~key:keyb ~rx_tag:rxb (sink_after snkb)
      in
      {
        ip_classes = [ sender; relay; final ];
        ip_comps =
          [
            sender_comp;
            icc_comp FW.Activity recv_cls;
            icc_comp FW.Activity recvb_cls;
          ];
        ip_expected = [];
        ip_limits =
          [
            ((Some src, snd_), Lim_icc_send);
            ((Some src, snkb), Lim_icc_stitch);
            ((Some rx, sndb), Lim_icc_rx);
            ((Some rx, snkb), Lim_icc_rx);
            ((Some rxb, snkb), Lim_icc_rx);
          ];
      }

let generate_icc ~seed index =
  let rng = Prng.create (Intern.combine seed index) in
  let pkg = Printf.sprintf "gen.icc.app%d" index in
  let n_scen = Prng.range rng 2 4 in
  let kinds =
    List.init n_scen (fun _ ->
        Prng.choose rng
          [
            Sc_explicit; Sc_action; Sc_data; Sc_keysplit; Sc_unmatched;
            Sc_result; Sc_relay;
          ])
  in
  let parts = List.mapi (fun j k -> icc_scenario ~pkg ~j k) kinds in
  let main_cls = pkg ^ ".Main" in
  let main =
    B.cls main_cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let _this = B.this m in
            let _ = B.param m 0 "b" in
            let a = B.local m "ben" in
            B.const m a (B.s "hello");
            B.scall m "android.util.Log" "d" [ B.s "t"; B.v a ]);
      ]
  in
  let comps =
    icc_comp ~main:true FW.Activity main_cls
    :: List.concat_map (fun p -> p.ip_comps) parts
  in
  let classes = main :: List.concat_map (fun p -> p.ip_classes) parts in
  {
    ga_name = Printf.sprintf "icc-%04d" index;
    ga_profile = Icc;
    ga_apk =
      Apk.make
        (Printf.sprintf "icc%d" index)
        ~manifest:(icc_manifest ~package:pkg comps)
        classes;
    ga_expected = List.concat_map (fun p -> p.ip_expected) parts;
    ga_limits = List.concat_map (fun p -> p.ip_limits) parts;
    ga_classes = List.length classes;
  }

(* ------------------------------------------------------------------ *)
(* collusion pairs                                                     *)
(* ------------------------------------------------------------------ *)

(** A two-app collusion campaign unit: app A harvests and broadcasts,
    app B's {e exported} component forwards to a sink.  Only a merged
    Scene ({!Fd_core.Infoflow.analyze_pair}) sees the flow. *)
type gen_pair = {
  gp_name : string;
  gp_sender : gen_app;  (** per-app fields describe the app alone *)
  gp_receiver : gen_app;
  gp_expected : (string option * string) list;
      (** merged-scene ground truth *)
  gp_limits : ((string option * string) * limitation) list;
}

let collusion_pair ~seed index =
  let rng = Prng.create (Intern.combine (Intern.combine seed 0x1cc) index) in
  let pkga = Printf.sprintf "gen.iccpair.a%d" index in
  let pkgb = Printf.sprintf "gen.iccpair.b%d" index in
  let action = Printf.sprintf "gen.pair%d.LEAK" index in
  let key = "payload" in
  let src = "psrc" and snd_ = "psnd" in
  let rx = "prx" and snk = "psnk" in
  let rxd = "prxd" and snkd = "psnkd" in
  let via_activity = Prng.bool rng in
  (* app A: harvest, wrap, send into the blind *)
  let sa_cls = pkga ^ ".Main" in
  let sender_cls =
    icc_sender_activity sa_cls (fun m this ->
        let x = icc_source m ~tag:src 0 in
        let i = icc_intent m 0 "" in
        B.vcall m i "android.content.Intent" "setAction" [ B.s action ];
        icc_put m ~key i (B.v x);
        if via_activity then icc_start m ~tag:snd_ this i
        else icc_broadcast m ~tag:snd_ 0 i)
  in
  let sender_app =
    {
      ga_name = Printf.sprintf "iccpairA-%04d" index;
      ga_profile = Icc;
      ga_apk =
        Apk.make
          (Printf.sprintf "iccpairA%d" index)
          ~manifest:
            (icc_manifest ~package:pkga
               [ icc_comp ~main:true FW.Activity sa_cls ])
          [ sender_cls ];
      ga_expected = [];
      ga_limits = [];
      ga_classes = 1;
    }
  in
  (* app B: an exported receiver (filter present, attribute absent —
     the Android 12 rule makes it exported) plus an explicitly
     unexported decoy with the same filter, which must receive
     nothing across the app boundary *)
  let sb_main = pkgb ^ ".Main" in
  let sb_recv = pkgb ^ ".Recv" in
  let sb_decoy = pkgb ^ ".Decoy" in
  let main_b =
    B.cls sb_main ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let _this = B.this m in
            let _ = B.param m 0 "b" in
            B.scall m "android.util.Log" "d" [ B.s "t"; B.s "b" ]);
      ]
  in
  let recv_kind = if via_activity then FW.Activity else FW.Receiver in
  let recv_b, decoy_b =
    if via_activity then
      ( icc_recv_activity sb_recv ~j:0 ~key ~rx_tag:rx (fun m _this y ->
            icc_sink m ~tag:snk y),
        icc_recv_activity sb_decoy ~j:1 ~key ~rx_tag:rxd (fun m _this y ->
            icc_sink m ~tag:snkd y) )
    else
      ( icc_recv_receiver sb_recv ~j:0 ~key ~rx_tag:rx ~snk_tag:snk,
        icc_recv_receiver sb_decoy ~j:1 ~key ~rx_tag:rxd ~snk_tag:snkd )
  in
  let receiver_app =
    {
      ga_name = Printf.sprintf "iccpairB-%04d" index;
      ga_profile = Icc;
      ga_apk =
        Apk.make
          (Printf.sprintf "iccpairB%d" index)
          ~manifest:
            (icc_manifest ~package:pkgb
               [
                 icc_comp ~main:true FW.Activity sb_main;
                 icc_comp ~filters:[ ([ action ], []) ] recv_kind sb_recv;
                 icc_comp ~exported:false
                   ~filters:[ ([ action ], []) ]
                   recv_kind sb_decoy;
               ])
          [ main_b; recv_b; decoy_b ];
      ga_expected = [];
      ga_limits = [];
      ga_classes = 3;
    }
  in
  {
    gp_name = Printf.sprintf "iccpair-%04d" index;
    gp_sender = sender_app;
    gp_receiver = receiver_app;
    gp_expected = [];
    gp_limits =
      [
        ((Some src, snd_), Lim_icc_send);
        ((Some src, snk), Lim_icc_stitch);
        ((Some rx, snk), Lim_icc_rx);
        ((Some rxd, snkd), Lim_icc_rx);
      ]
      @
      (* broadcast receivers also carry the untagged [onReceive]
         param1 reception source *)
      (if via_activity then []
       else [ ((None, snk), Lim_icc_rx); ((None, snkd), Lim_icc_rx) ]);
  }

(** [collusion_pairs ~seed n] — a deterministic fleet of [n] pairs. *)
let collusion_pairs ~seed n = List.init n (collusion_pair ~seed)

(* ------------------------------------------------------------------ *)
(* app assembly                                                        *)
(* ------------------------------------------------------------------ *)

let profile_params = function
  | Play ->
      (* (min/max utility classes, extra components, leak count sampler,
         sink choices, benign statements per method) *)
      `Params (10, 28, 5, `PlayLeaks, [ `Log; `Prefs ], 8)
  | Malware -> `Params (1, 5, 2, `Poisson 1.85, [ `Sms; `Http; `Log ], 2)
  | Icc -> assert false (* dispatched to [generate_icc] *)

let generate_std ~profile ~seed index =
  (* mix, don't add: [seed + index * 7919] collides for distinct
     pairs — (s + 7919, 0) and (s, 1) yielded identical apps.
     [Intern.combine] is asymmetric and non-linear, so every
     (seed, index) pair gets its own stream.  Note: this changes the
     per-app digests of every previously generated corpus. *)
  let rng = Prng.create (Intern.combine seed index) in
  let (`Params (min_u, max_u, max_comp, leak_model, sinks, benign_per)) =
    profile_params profile
  in
  let pkg =
    Printf.sprintf "gen.%s.app%d" (string_of_profile profile) index
  in
  let n_util = Prng.range rng min_u max_u in
  let relays =
    List.init n_util (fun i ->
        let chain_to =
          (* Play apps get a chained utility layer *)
          if profile = Play && i + 1 < n_util then
            Some (Printf.sprintf "%s.Util%d" pkg (i + 1))
          else None
        in
        relay_class ~chain_to pkg i)
  in
  let relay_names = List.map fst relays in
  let n_leaks =
    match leak_model with
    | `Poisson mean -> Prng.poisson rng mean
    | `PlayLeaks ->
        (* the majority of Play apps leak identifiers into logs/prefs
           (Section 6.3), usually once or twice *)
        if Prng.float rng 1.0 < 0.75 then Prng.range rng 1 2 else 0
  in
  let leak_specs =
    List.init n_leaks (fun i ->
        let src = if Prng.bool rng then `Imei else `Location in
        let sink = Prng.choose rng sinks in
        (i, src, sink))
  in
  let expected = ref [] in
  (* components: one main activity always; extra services/receivers *)
  let n_extra = Prng.int rng (max_comp + 1) in
  let main_cls = pkg ^ ".MainActivity" in
  let extra =
    List.init n_extra (fun i ->
        let kind = Prng.choose rng [ FW.Service; FW.Receiver ] in
        let cls =
          Printf.sprintf "%s.%s%d" pkg
            (match kind with
            | FW.Service -> "Service"
            | FW.Receiver -> "Receiver"
            | _ -> "Comp")
            i
        in
        (kind, cls))
  in
  (* distribute leaks over the components' lifecycle methods *)
  let slots =
    (main_cls, `Activity)
    :: List.map (fun (k, c) -> (c, if k = FW.Service then `Service else `Receiver)) extra
  in
  let leaks_for cls =
    List.filter (fun (i, _, _) ->
        let (slot_cls, _) = List.nth slots (i mod List.length slots) in
        slot_cls = cls)
      leak_specs
  in
  (* limitation plants: constructs exercising the documented Table 1
     imprecision categories, distributed over the components like the
     ordinary leaks *)
  let n_lims = if Prng.float rng 1.0 < 0.6 then Prng.range rng 1 2 else 0 in
  let lim_specs =
    List.init n_lims (fun j ->
        ( j,
          Prng.choose rng
            [ Lim_array_index; Lim_strong_update; Lim_clinit; Lim_reflection ]
        ))
  in
  let lim_slot j = fst (List.nth slots (j mod List.length slots)) in
  let lims_for cls = List.filter (fun (j, _) -> lim_slot j = cls) lim_specs in
  let box_cls = pkg ^ ".Box" in
  let helper_for j = Printf.sprintf "%s.LimClinit%d" pkg j in
  let lim_src_tag j = Printf.sprintf "limsrc%d" j in
  let lim_snk_tag j = Printf.sprintf "limsnk%d" j in
  let emit_lims m cls =
    List.iter
      (fun (j, lim) ->
        let src_tag = lim_src_tag j and snk_tag = lim_snk_tag j in
        match lim with
        | Lim_array_index -> emit_lim_array m ~j ~src_tag ~snk_tag
        | Lim_strong_update ->
            emit_lim_strong_update m ~box_cls ~j ~src_tag ~snk_tag
        | Lim_clinit ->
            emit_lim_clinit m ~cls ~helper:(helper_for j) ~j ~src_tag
        | Lim_reflection -> emit_lim_reflection m ~j ~src_tag
        | Lim_icc_send | Lim_icc_stitch | Lim_icc_rx ->
            (* ICC categories are planted by the Icc profile's
               scenario machinery, never by the std plant table *)
            assert false)
      (lims_for cls)
  in
  let lim_extra_methods cls =
    List.filter_map
      (fun (j, lim) ->
        match lim with
        | Lim_reflection ->
            Some (lim_reflection_target ~j ~snk_tag:(lim_snk_tag j))
        | _ -> None)
      (lims_for cls)
  in
  let lim_classes =
    List.filter_map
      (fun (j, lim) ->
        match lim with
        | Lim_clinit ->
            Some
              (lim_clinit_helper ~cls:(lim_slot j) ~helper:(helper_for j) ~j
                 ~snk_tag:(lim_snk_tag j))
        | _ -> None)
      lim_specs
    @
    if List.exists (fun (_, l) -> l = Lim_strong_update) lim_specs then
      [ B.cls box_cls ~fields:[ ("v", str_t) ] [] ]
    else []
  in
  let ga_limits =
    List.map
      (fun (j, lim) -> ((Some (lim_src_tag j), lim_snk_tag j), lim))
      lim_specs
  in
  let emit_leaks m cls =
    List.iter
      (fun (i, src, sink) ->
        let pair =
          plant_leak m rng ~relays:relay_names ~leak_id:i ~src_kind:src
            ~sink_kind:sink
        in
        expected := pair :: !expected)
      (leaks_for cls);
    emit_lims m cls;
    List.iteri (fun j () -> emit_benign m rng ~relays:relay_names ~idx:j)
      (List.init benign_per (fun _ -> ()))
  in
  let main_activity =
    B.cls main_cls ~super:"android.app.Activity"
      ([
         Build.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
             let _this = B.this m in
             let _ = B.param m 0 "b" in
             emit_leaks m main_cls);
         Build.meth "onDestroy" (fun m ->
             let _this = B.this m in
             List.iteri
               (fun j () ->
                 emit_benign m rng ~relays:relay_names ~idx:(100 + j))
               (List.init 2 (fun _ -> ())));
       ]
      @ lim_extra_methods main_cls)
  in
  let extra_classes =
    List.map
      (fun (kind, cls) ->
        match kind with
        | FW.Service ->
            B.cls cls ~super:"android.app.Service"
              ([
                 Build.meth "onStartCommand"
                   ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ]
                   ~ret:T.Int
                   (fun m ->
                     let _this = B.this m in
                     let _i = B.param m 0 "i" in
                     emit_leaks m cls;
                     let r = B.local m "r" ~ty:T.Int in
                     B.const m r (B.i 1);
                     B.retv m (B.v r));
               ]
              @ lim_extra_methods cls)
        | _ ->
            B.cls cls ~super:"android.content.BroadcastReceiver"
              ([
                 Build.meth "onReceive"
                   ~params:
                     [ T.Ref "android.content.Context";
                       T.Ref "android.content.Intent" ]
                   (fun m ->
                     let _this = B.this m in
                     let _c = B.param m 0 "c" in
                     let intent = B.param m 1 "intent" in
                     ignore intent;
                     emit_leaks m cls);
               ]
              @ lim_extra_methods cls))
      extra
  in
  let manifest =
    Apk.simple_manifest ~package:pkg
      ((FW.Activity, main_cls, [])
      :: List.map (fun (k, c) -> (k, c, [])) extra)
  in
  let classes =
    (main_activity :: extra_classes) @ lim_classes @ List.map snd relays
  in
  {
    ga_name = Printf.sprintf "%s-%04d" (string_of_profile profile) index;
    ga_profile = profile;
    ga_apk = Apk.make (Printf.sprintf "gen%d" index) ~manifest classes;
    ga_expected = List.rev !expected;
    ga_limits = ga_limits;
    ga_classes = List.length classes;
  }

(** [generate ~profile ~seed index] produces one deterministic app. *)
let generate ~profile ~seed index =
  match profile with
  | Icc -> generate_icc ~seed index
  | Play | Malware -> generate_std ~profile ~seed index

(** [corpus ~profile ~seed n] is a deterministic corpus of [n] apps. *)
let corpus ~profile ~seed n = List.init n (generate ~profile ~seed)

(* keep the standalone emitters exported for tests *)
let _ = (emit_imei, emit_location, emit_log, emit_prefs, emit_sms, emit_http)
