(** Synthetic app-corpus generation for RQ3.

    The paper evaluates FlowDroid on the 500 most popular Google-Play
    apps and ~1000 VirusShare malware samples; neither corpus is
    redistributable ("for legal reasons we are unable to provide these
    applications online").  This generator produces deterministic
    (seeded) corpora with the two profiles' reported characteristics:

    - {b Play profile}: larger apps (more classes, deeper call
      plumbing, several components), whose leaks are mostly
      *accidental* — identifiers and location data ending up in logs
      and preference files, typically via an embedded
      advertisement-library-like cluster (Section 6.3's findings);
    - {b Malware profile}: comparatively small apps averaging 1.85
      planted leaks, mostly identifiers sent by SMS or to a remote
      server, plus the broadcast-receiver-forwards-to-SMS pattern the
      paper describes.

    Every planted leak carries ground-truth tags, so corpus runs can
    measure recall on known flows in addition to runtime. *)

open Fd_ir
open Fd_util
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

type profile = Play | Malware

let string_of_profile = function Play -> "play" | Malware -> "malware"

(** The documented Table 1 limitation categories (DESIGN.md §5).  The
    generator plants constructs exercising each one, tagged so the
    differential harness ({!Fd_diffcheck}) can classify the resulting
    static-vs-dynamic disagreements as {e explained} rather than as
    solver divergences. *)
type limitation =
  | Lim_array_index
      (** a tainted element taints the whole array → static FP on a
          read of a different index *)
  | Lim_strong_update
      (** no strong updates on heap locations → static FP after the
          field is overwritten with clean data *)
  | Lim_clinit
      (** static initialisers modelled at program start → static FN
          when [<clinit>] actually runs between source and sink *)
  | Lim_reflection
      (** no reflective call edges → static FN on constant-string
          [Method.invoke] dispatch *)

let string_of_limitation = function
  | Lim_array_index -> "array-index"
  | Lim_strong_update -> "strong-update"
  | Lim_clinit -> "clinit-placement"
  | Lim_reflection -> "reflection"

(** [limitation_is_fp l] — the category manifests as a spurious static
    finding; otherwise it manifests as a missed real leak. *)
let limitation_is_fp = function
  | Lim_array_index | Lim_strong_update -> true
  | Lim_clinit | Lim_reflection -> false

type gen_app = {
  ga_name : string;
  ga_profile : profile;
  ga_apk : Apk.t;
  ga_expected : (string option * string) list;
      (** planted ground truth the static analysis must recover *)
  ga_limits : ((string option * string) * limitation) list;
      (** planted limitation constructs, keyed by (source tag, sink
          tag).  FP categories are {e not} real leaks (and not in
          [ga_expected]); FN categories are real leaks the static
          analysis is documented to miss (also not in [ga_expected],
          so recall on [ga_expected] stays a static-engine promise) *)
  ga_classes : int;  (** size metrics for reporting *)
}

(* ------------------------------------------------------------------ *)
(* code-shape helpers                                                  *)
(* ------------------------------------------------------------------ *)

let str_t = T.Ref "java.lang.String"

(* source emitters: (category tag stem, emit imei-like value) *)
let emit_imei m rng ret =
  ignore rng;
  let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag:"src" ~ret tm "android.telephony.TelephonyManager"
    (Prng.choose rng [ "getDeviceId"; "getSubscriberId"; "getSimSerialNumber" ])
    []

let emit_location m rng ret =
  ignore rng;
  let lm = B.local m "lm" ~ty:(T.Ref "android.location.LocationManager") in
  B.newobj m lm "android.location.LocationManager";
  B.vcall m ~tag:"src" ~ret lm "android.location.LocationManager"
    "getLastKnownLocation" [ B.s "gps" ]

(* sink emitters *)
let emit_log m data =
  B.scall m ~tag:"snk" "android.util.Log"
    (* the variety exercises the whole log sink family *)
    "i" [ B.s "tag"; data ]

let emit_prefs m data =
  let ed = B.local m "ed" ~ty:(T.Ref "android.content.SharedPreferences$Editor") in
  B.newobj m ed "android.content.SharedPreferences$Editor";
  B.vcall m ~tag:"snk" ed "android.content.SharedPreferences$Editor"
    "putString" [ B.s "k"; data ]

let emit_sms m data =
  let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
  B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
  B.vcall m ~tag:"snk" sms "android.telephony.SmsManager" "sendTextMessage"
    [ B.s "+790001"; B.nul; data; B.nul; B.nul ]

let emit_http m data =
  let conn = B.local m "conn" ~ty:(T.Ref "java.net.HttpURLConnection") in
  B.newc m conn "java.net.HttpURLConnection" [ B.s "http://c2.example/x" ];
  B.vcall m ~tag:"snk" conn "java.net.HttpURLConnection" "sendRequest" [ data ]

(* relay helper classes give the planted flows interprocedural depth;
   each utility also calls into the next one, giving the Play-profile
   apps the deeper call plumbing that makes them slower to analyse *)
let relay_class ?(chain_to = None) pkg idx =
  let cls = Printf.sprintf "%s.Util%d" pkg idx in
  ( cls,
    B.cls cls
      [
        B.meth "pass" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
            let p = B.param m 0 "p" in
            match chain_to with
            | Some next ->
                let r = B.local m "r" in
                B.scall m ~ret:r next "pass" [ B.v p ];
                B.retv m (B.v r)
            | None -> B.retv m (B.v p));
        B.meth "decorate" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
            let p = B.param m 0 "p" in
            let r = B.local m "r" in
            B.binop m r "+" (B.s "v=") (B.v p);
            B.retv m (B.v r));
        B.meth "busy" ~static:true ~params:[ T.Int ] ~ret:T.Int (fun m ->
            (* taint-free plumbing: gives the solver work without flows *)
            let p = B.param m 0 "p" in
            let r = B.local m "r" ~ty:T.Int in
            B.binop m r "*" (B.v p) (B.i 31);
            B.binop m r "+" (B.v r) (B.i 7);
            B.retv m (B.v r));
      ] )

(* emit a leak: source -> 0..depth relay hops -> sink, tagged with a
   unique pair *)
let plant_leak m rng ~relays ~leak_id ~src_kind ~sink_kind =
  let x = B.local m (Printf.sprintf "leak%d" leak_id) in
  let src_tag = Printf.sprintf "src%d" leak_id in
  let snk_tag = Printf.sprintf "snk%d" leak_id in
  (match src_kind with
  | `Imei ->
      let tm =
        B.local m (Printf.sprintf "tm%d" leak_id)
          ~ty:(T.Ref "android.telephony.TelephonyManager")
      in
      B.newobj m tm "android.telephony.TelephonyManager";
      B.vcall m ~tag:src_tag ~ret:x tm "android.telephony.TelephonyManager"
        (Prng.choose rng [ "getDeviceId"; "getSubscriberId"; "getLine1Number" ])
        []
  | `Location ->
      let lm =
        B.local m (Printf.sprintf "lm%d" leak_id)
          ~ty:(T.Ref "android.location.LocationManager")
      in
      B.newobj m lm "android.location.LocationManager";
      B.vcall m ~tag:src_tag ~ret:x lm "android.location.LocationManager"
        "getLastKnownLocation" [ B.s "gps" ]);
  (* relay hops *)
  let hops = Prng.int rng 3 in
  let cur = ref x in
  for h = 1 to hops do
    let y = B.local m (Printf.sprintf "leak%d_h%d" leak_id h) in
    (match (relays, Prng.int rng 3) with
    | relay :: _, 0 -> B.scall m ~ret:y relay "pass" [ B.v !cur ]
    | _ :: relay :: _, 1 -> B.scall m ~ret:y relay "decorate" [ B.v !cur ]
    | _ -> B.binop m y "+" (B.s "#") (B.v !cur));
    cur := y
  done;
  let data = B.v !cur in
  let emit =
    match sink_kind with
    | `Log ->
        fun () ->
          B.scall m ~tag:snk_tag "android.util.Log" "i" [ B.s "t"; data ]
    | `Prefs ->
        fun () ->
          let ed =
            B.local m (Printf.sprintf "ed%d" leak_id)
              ~ty:(T.Ref "android.content.SharedPreferences$Editor")
          in
          B.newobj m ed "android.content.SharedPreferences$Editor";
          B.vcall m ~tag:snk_tag ed "android.content.SharedPreferences$Editor"
            "putString" [ B.s "k"; data ]
    | `Sms ->
        fun () ->
          let sms =
            B.local m (Printf.sprintf "sms%d" leak_id)
              ~ty:(T.Ref "android.telephony.SmsManager")
          in
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m ~tag:snk_tag sms "android.telephony.SmsManager"
            "sendTextMessage" [ B.s "+790001"; B.nul; data; B.nul; B.nul ]
    | `Http ->
        fun () ->
          let conn =
            B.local m (Printf.sprintf "conn%d" leak_id)
              ~ty:(T.Ref "java.net.HttpURLConnection")
          in
          B.newc m conn "java.net.HttpURLConnection" [ B.s "http://c2/x" ];
          B.vcall m ~tag:snk_tag conn "java.net.HttpURLConnection"
            "sendRequest" [ data ]
  in
  emit ();
  (Some src_tag, snk_tag)

(* benign code: constant flows into sinks, arithmetic plumbing *)
let emit_benign m rng ~relays ~idx =
  match Prng.int rng 3 with
  | 0 ->
      let x = B.local m (Printf.sprintf "ben%d" idx) in
      B.const m x (B.s "static text");
      B.scall m "android.util.Log" "d" [ B.s "t"; B.v x ]
  | 1 ->
      let n = B.local m (Printf.sprintf "n%d" idx) ~ty:T.Int in
      B.const m n (B.i (Prng.int rng 1000));
      (match relays with
      | relay :: _ -> B.scall m ~ret:n relay "busy" [ B.v n ]
      | [] -> ())
  | _ ->
      let a = B.local m (Printf.sprintf "a%d" idx) in
      let b = B.local m (Printf.sprintf "b%d" idx) in
      B.const m a (B.s "x");
      B.binop m b "+" (B.v a) (B.s "y")

(* ------------------------------------------------------------------ *)
(* limitation plants                                                   *)
(* ------------------------------------------------------------------ *)

(* Each plant is a self-contained construct exercising one documented
   imprecision, with its own (limsrcN, limsnkN) tag pair so the
   differential harness can look the category up by key.  None of the
   emitters draws from the rng: the kind choice happens up front in
   [generate], keeping the app deterministic in the draw order. *)

let lim_source m ~tag ~j ret =
  let tm =
    B.local m
      (Printf.sprintf "ltm%d" j)
      ~ty:(T.Ref "android.telephony.TelephonyManager")
  in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag ~ret tm "android.telephony.TelephonyManager" "getDeviceId" []

let lim_sink m ~tag data =
  B.scall m ~tag "android.util.Log" "i" [ B.s "lim"; data ]

(* arr[0] := tainted; sink(arr[1]) — the static analysis taints the
   whole array (§4.1), the dynamic monitor tracks per cell *)
let emit_lim_array m ~j ~src_tag ~snk_tag =
  let arr = B.local m (Printf.sprintf "limarr%d" j) ~ty:(T.Array str_t) in
  B.newarray m arr str_t (B.i 2);
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  B.astore m arr (B.i 0) (B.v x);
  let y = B.local m (Printf.sprintf "limy%d" j) in
  B.aload m y arr (B.i 1);
  lim_sink m ~tag:snk_tag (B.v y)

(* o.val := tainted; o.val := "clean"; sink(o.val) — no strong updates
   on heap locations keeps the stale taint alive statically *)
let emit_lim_strong_update m ~box_cls ~j ~src_tag ~snk_tag =
  let f = B.fld ~ty:str_t box_cls "v" in
  let o = B.local m (Printf.sprintf "limo%d" j) ~ty:(T.Ref box_cls) in
  B.newobj m o box_cls;
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  B.store m o f (B.v x);
  B.store m o f (B.s "clean");
  let y = B.local m (Printf.sprintf "limy%d" j) in
  B.load m y o f;
  lim_sink m ~tag:snk_tag (B.v y)

(* store tainted into a static field, then trigger the helper's
   <clinit> (which reads the field and sinks it) via first use — the
   static model runs initialisers at program start and misses the
   flow; the interpreter runs them at first use and observes it *)
let emit_lim_clinit m ~cls ~helper ~j ~src_tag =
  let g = B.fld ~ty:str_t cls (Printf.sprintf "limstash%d" j) in
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  B.storestatic m g (B.v x);
  let h = B.local m (Printf.sprintf "limh%d" j) ~ty:(T.Ref helper) in
  B.newobj m h helper

(* the <clinit> helper class for [emit_lim_clinit] *)
let lim_clinit_helper ~cls ~helper ~j ~snk_tag =
  let g = B.fld ~ty:str_t cls (Printf.sprintf "limstash%d" j) in
  B.cls helper
    [
      B.meth "<clinit>" ~static:true (fun m ->
          let v = B.local m "v" in
          B.loadstatic m v g;
          lim_sink m ~tag:snk_tag (B.v v));
    ]

(* constant-string reflective dispatch to a sinking method — no
   reflective call edges statically; the interpreter's Method model
   executes the real body *)
let emit_lim_reflection m ~j ~src_tag =
  let this = B.this m in
  let x = B.local m (Printf.sprintf "limx%d" j) in
  lim_source m ~tag:src_tag ~j x;
  let mth =
    B.local m
      (Printf.sprintf "limmth%d" j)
      ~ty:(T.Ref "java.lang.reflect.Method")
  in
  B.vcall m ~ret:mth this "java.lang.Class" "getMethod"
    [ B.s (Printf.sprintf "limleak%d" j) ];
  B.vcall m mth "java.lang.reflect.Method" "invoke" [ B.v this; B.v x ]

(* the reflectively invoked method for [emit_lim_reflection] *)
let lim_reflection_target ~j ~snk_tag =
  B.meth (Printf.sprintf "limleak%d" j) ~params:[ str_t ] (fun m ->
      let _this = B.this m in
      let p = B.param m 0 "p" in
      lim_sink m ~tag:snk_tag (B.v p))

(* ------------------------------------------------------------------ *)
(* app assembly                                                        *)
(* ------------------------------------------------------------------ *)

let profile_params = function
  | Play ->
      (* (min/max utility classes, extra components, leak count sampler,
         sink choices, benign statements per method) *)
      `Params (10, 28, 5, `PlayLeaks, [ `Log; `Prefs ], 8)
  | Malware -> `Params (1, 5, 2, `Poisson 1.85, [ `Sms; `Http; `Log ], 2)

(** [generate ~profile ~seed index] produces one deterministic app. *)
let generate ~profile ~seed index =
  (* mix, don't add: [seed + index * 7919] collides for distinct
     pairs — (s + 7919, 0) and (s, 1) yielded identical apps.
     [Intern.combine] is asymmetric and non-linear, so every
     (seed, index) pair gets its own stream.  Note: this changes the
     per-app digests of every previously generated corpus. *)
  let rng = Prng.create (Intern.combine seed index) in
  let (`Params (min_u, max_u, max_comp, leak_model, sinks, benign_per)) =
    profile_params profile
  in
  let pkg =
    Printf.sprintf "gen.%s.app%d" (string_of_profile profile) index
  in
  let n_util = Prng.range rng min_u max_u in
  let relays =
    List.init n_util (fun i ->
        let chain_to =
          (* Play apps get a chained utility layer *)
          if profile = Play && i + 1 < n_util then
            Some (Printf.sprintf "%s.Util%d" pkg (i + 1))
          else None
        in
        relay_class ~chain_to pkg i)
  in
  let relay_names = List.map fst relays in
  let n_leaks =
    match leak_model with
    | `Poisson mean -> Prng.poisson rng mean
    | `PlayLeaks ->
        (* the majority of Play apps leak identifiers into logs/prefs
           (Section 6.3), usually once or twice *)
        if Prng.float rng 1.0 < 0.75 then Prng.range rng 1 2 else 0
  in
  let leak_specs =
    List.init n_leaks (fun i ->
        let src = if Prng.bool rng then `Imei else `Location in
        let sink = Prng.choose rng sinks in
        (i, src, sink))
  in
  let expected = ref [] in
  (* components: one main activity always; extra services/receivers *)
  let n_extra = Prng.int rng (max_comp + 1) in
  let main_cls = pkg ^ ".MainActivity" in
  let extra =
    List.init n_extra (fun i ->
        let kind = Prng.choose rng [ FW.Service; FW.Receiver ] in
        let cls =
          Printf.sprintf "%s.%s%d" pkg
            (match kind with
            | FW.Service -> "Service"
            | FW.Receiver -> "Receiver"
            | _ -> "Comp")
            i
        in
        (kind, cls))
  in
  (* distribute leaks over the components' lifecycle methods *)
  let slots =
    (main_cls, `Activity)
    :: List.map (fun (k, c) -> (c, if k = FW.Service then `Service else `Receiver)) extra
  in
  let leaks_for cls =
    List.filter (fun (i, _, _) ->
        let (slot_cls, _) = List.nth slots (i mod List.length slots) in
        slot_cls = cls)
      leak_specs
  in
  (* limitation plants: constructs exercising the documented Table 1
     imprecision categories, distributed over the components like the
     ordinary leaks *)
  let n_lims = if Prng.float rng 1.0 < 0.6 then Prng.range rng 1 2 else 0 in
  let lim_specs =
    List.init n_lims (fun j ->
        ( j,
          Prng.choose rng
            [ Lim_array_index; Lim_strong_update; Lim_clinit; Lim_reflection ]
        ))
  in
  let lim_slot j = fst (List.nth slots (j mod List.length slots)) in
  let lims_for cls = List.filter (fun (j, _) -> lim_slot j = cls) lim_specs in
  let box_cls = pkg ^ ".Box" in
  let helper_for j = Printf.sprintf "%s.LimClinit%d" pkg j in
  let lim_src_tag j = Printf.sprintf "limsrc%d" j in
  let lim_snk_tag j = Printf.sprintf "limsnk%d" j in
  let emit_lims m cls =
    List.iter
      (fun (j, lim) ->
        let src_tag = lim_src_tag j and snk_tag = lim_snk_tag j in
        match lim with
        | Lim_array_index -> emit_lim_array m ~j ~src_tag ~snk_tag
        | Lim_strong_update ->
            emit_lim_strong_update m ~box_cls ~j ~src_tag ~snk_tag
        | Lim_clinit ->
            emit_lim_clinit m ~cls ~helper:(helper_for j) ~j ~src_tag
        | Lim_reflection -> emit_lim_reflection m ~j ~src_tag)
      (lims_for cls)
  in
  let lim_extra_methods cls =
    List.filter_map
      (fun (j, lim) ->
        match lim with
        | Lim_reflection ->
            Some (lim_reflection_target ~j ~snk_tag:(lim_snk_tag j))
        | _ -> None)
      (lims_for cls)
  in
  let lim_classes =
    List.filter_map
      (fun (j, lim) ->
        match lim with
        | Lim_clinit ->
            Some
              (lim_clinit_helper ~cls:(lim_slot j) ~helper:(helper_for j) ~j
                 ~snk_tag:(lim_snk_tag j))
        | _ -> None)
      lim_specs
    @
    if List.exists (fun (_, l) -> l = Lim_strong_update) lim_specs then
      [ B.cls box_cls ~fields:[ ("v", str_t) ] [] ]
    else []
  in
  let ga_limits =
    List.map
      (fun (j, lim) -> ((Some (lim_src_tag j), lim_snk_tag j), lim))
      lim_specs
  in
  let emit_leaks m cls =
    List.iter
      (fun (i, src, sink) ->
        let pair =
          plant_leak m rng ~relays:relay_names ~leak_id:i ~src_kind:src
            ~sink_kind:sink
        in
        expected := pair :: !expected)
      (leaks_for cls);
    emit_lims m cls;
    List.iteri (fun j () -> emit_benign m rng ~relays:relay_names ~idx:j)
      (List.init benign_per (fun _ -> ()))
  in
  let main_activity =
    B.cls main_cls ~super:"android.app.Activity"
      ([
         Build.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
             let _this = B.this m in
             let _ = B.param m 0 "b" in
             emit_leaks m main_cls);
         Build.meth "onDestroy" (fun m ->
             let _this = B.this m in
             List.iteri
               (fun j () ->
                 emit_benign m rng ~relays:relay_names ~idx:(100 + j))
               (List.init 2 (fun _ -> ())));
       ]
      @ lim_extra_methods main_cls)
  in
  let extra_classes =
    List.map
      (fun (kind, cls) ->
        match kind with
        | FW.Service ->
            B.cls cls ~super:"android.app.Service"
              ([
                 Build.meth "onStartCommand"
                   ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ]
                   ~ret:T.Int
                   (fun m ->
                     let _this = B.this m in
                     let _i = B.param m 0 "i" in
                     emit_leaks m cls;
                     let r = B.local m "r" ~ty:T.Int in
                     B.const m r (B.i 1);
                     B.retv m (B.v r));
               ]
              @ lim_extra_methods cls)
        | _ ->
            B.cls cls ~super:"android.content.BroadcastReceiver"
              ([
                 Build.meth "onReceive"
                   ~params:
                     [ T.Ref "android.content.Context";
                       T.Ref "android.content.Intent" ]
                   (fun m ->
                     let _this = B.this m in
                     let _c = B.param m 0 "c" in
                     let intent = B.param m 1 "intent" in
                     ignore intent;
                     emit_leaks m cls);
               ]
              @ lim_extra_methods cls))
      extra
  in
  let manifest =
    Apk.simple_manifest ~package:pkg
      ((FW.Activity, main_cls, [])
      :: List.map (fun (k, c) -> (k, c, [])) extra)
  in
  let classes =
    (main_activity :: extra_classes) @ lim_classes @ List.map snd relays
  in
  {
    ga_name = Printf.sprintf "%s-%04d" (string_of_profile profile) index;
    ga_profile = profile;
    ga_apk = Apk.make (Printf.sprintf "gen%d" index) ~manifest classes;
    ga_expected = List.rev !expected;
    ga_limits = ga_limits;
    ga_classes = List.length classes;
  }

(** [corpus ~profile ~seed n] is a deterministic corpus of [n] apps. *)
let corpus ~profile ~seed n = List.init n (generate ~profile ~seed)

(* keep the standalone emitters exported for tests *)
let _ = (emit_imei, emit_location, emit_log, emit_prefs, emit_sms, emit_http)
