(** A small, dependency-free XML parser.

    Android apps carry their entry-point and callback metadata in XML
    ([AndroidManifest.xml], layout resources).  FlowDroid parses these
    files as the first pipeline stage (Figure 4 of the paper); this
    module provides the equivalent substrate.

    The dialect supported is the subset Android resource files use:
    prolog ([<?xml ...?>]), comments, elements with namespaced
    attributes, text nodes, CDATA, and the five predefined entities.
    DTDs and processing instructions other than the prolog are not
    supported. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attrs, children)] *)
  | Text of string  (** character data between elements *)

exception Parse_error of int * string
(** [Parse_error (pos, msg)]: byte offset of the failure and a
    human-readable description. *)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))
let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entities st s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None -> fail st "unterminated entity reference"
        | Some j ->
            let name = String.sub s (!i + 1) (j - !i - 1) in
            let c =
              match name with
              | "amp" -> "&"
              | "lt" -> "<"
              | "gt" -> ">"
              | "quot" -> "\""
              | "apos" -> "'"
              | _ ->
                  if String.length name > 1 && name.[0] = '#' then
                    let code =
                      try
                        if name.[1] = 'x' || name.[1] = 'X' then
                          int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
                        else int_of_string (String.sub name 1 (String.length name - 1))
                      with _ -> fail st ("bad character reference &" ^ name ^ ";")
                    in
                    if code >= 0 && code < 0x80 then String.make 1 (Char.chr code)
                    else if code < 0 then
                      fail st ("bad character reference &" ^ name ^ ";")
                    else fail st "non-ASCII character references are not supported"
                  else fail st ("unknown entity &" ^ name ^ ";")
            in
            Buffer.add_string buf c;
            i := j + 1
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    advance st
  done;
  if eof st then fail st "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  decode_entities st raw

let skip_comment st =
  expect st "<!--";
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then expect st "-->"
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_prolog st =
  if looking_at st "<?xml" then begin
    match
      let rec find i =
        if i + 1 >= String.length st.src then None
        else if st.src.[i] = '?' && st.src.[i + 1] = '>' then Some i
        else find (i + 1)
      in
      find st.pos
    with
    | None -> fail st "unterminated XML prolog"
    | Some i -> st.pos <- i + 2
  end

let rec skip_misc st =
  skip_space st;
  if looking_at st "<!--" then begin
    skip_comment st;
    skip_misc st
  end

let rec parse_element st =
  expect st "<";
  let tag = read_name st in
  let attrs = parse_attrs st [] in
  skip_space st;
  if looking_at st "/>" then begin
    expect st "/>";
    Element (tag, List.rev attrs, [])
  end
  else begin
    expect st ">";
    let children = parse_children st tag [] in
    Element (tag, List.rev attrs, children)
  end

and parse_attrs st acc =
  skip_space st;
  if eof st then fail st "unterminated start tag"
  else if looking_at st ">" || looking_at st "/>" then acc
  else begin
    let name = read_name st in
    skip_space st;
    expect st "=";
    skip_space st;
    let value = read_attr_value st in
    parse_attrs st ((name, value) :: acc)
  end

and parse_children st tag acc =
  if eof st then fail st (Printf.sprintf "unterminated element <%s>" tag)
  else if looking_at st "</" then begin
    expect st "</";
    let close = read_name st in
    if close <> tag then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" close tag);
    skip_space st;
    expect st ">";
    List.rev acc
  end
  else if looking_at st "<!--" then begin
    skip_comment st;
    parse_children st tag acc
  end
  else if looking_at st "<![CDATA[" then begin
    expect st "<![CDATA[";
    let start = st.pos in
    let rec go () =
      if eof st then fail st "unterminated CDATA section"
      else if looking_at st "]]>" then begin
        let text = String.sub st.src start (st.pos - start) in
        expect st "]]>";
        text
      end
      else begin
        advance st;
        go ()
      end
    in
    let text = go () in
    parse_children st tag (Text text :: acc)
  end
  else if looking_at st "<" then begin
    let child = parse_element st in
    parse_children st tag (child :: acc)
  end
  else begin
    let start = st.pos in
    while (not (eof st)) && peek st <> '<' do
      advance st
    done;
    let raw = String.sub st.src start (st.pos - start) in
    let text = decode_entities st raw in
    if String.for_all is_space text then parse_children st tag acc
    else parse_children st tag (Text text :: acc)
  end

(** [parse_string s] parses one XML document and returns its root
    element.  @raise Parse_error on malformed input. *)
let parse_string s =
  let st = { src = s; pos = 0 } in
  skip_space st;
  skip_prolog st;
  skip_misc st;
  if not (looking_at st "<") then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then fail st "trailing content after the root element";
  root

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

(** [tag e] is the element name of [e].  @raise Invalid_argument on a
    text node. *)
let tag = function
  | Element (t, _, _) -> t
  | Text _ -> invalid_arg "Xml.tag: text node"

(** [attr e name] looks up attribute [name] on element [e]. *)
let attr e name =
  match e with
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

(** [attr_dflt e name ~default] is [attr] with a fallback value. *)
let attr_dflt e name ~default =
  match attr e name with Some v -> v | None -> default

(** [children e] is the list of child *elements* of [e] (text nodes are
    skipped). *)
let children = function
  | Element (_, _, cs) ->
      List.filter (function Element _ -> true | Text _ -> false) cs
  | Text _ -> []

(** [children_named e name] is the child elements of [e] whose tag is
    [name]. *)
let children_named e name =
  List.filter (fun c -> tag c = name) (children e)

(** [descendants_named e name] walks the whole subtree (excluding [e]
    itself) collecting elements tagged [name], in document order. *)
let descendants_named e name =
  let rec go acc e =
    List.fold_left
      (fun acc c ->
        let acc = if tag c = name then c :: acc else acc in
        go acc c)
      acc (children e)
  in
  List.rev (go [] e)

(** [text e] concatenates the direct text children of [e]. *)
let text = function
  | Element (_, _, cs) ->
      String.concat "" (List.filter_map (function Text t -> Some t | Element _ -> None) cs)
  | Text t -> t

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** [to_string ?indent e] serialises [e]; [indent] (default 2) controls
    per-level indentation.  [parse_string (to_string e)] returns a tree
    equal to [e] up to insignificant whitespace. *)
let to_string ?(indent = 2) e =
  let buf = Buffer.create 1024 in
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let rec go level = function
    | Text t ->
        pad level;
        Buffer.add_string buf (escape t);
        Buffer.add_char buf '\n'
    | Element (tag, attrs, kids) ->
        pad level;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        if kids = [] then Buffer.add_string buf "/>\n"
        else begin
          Buffer.add_string buf ">\n";
          List.iter (go (level + 1)) kids;
          pad level;
          Buffer.add_string buf ("</" ^ tag ^ ">\n")
        end
  in
  go 0 e;
  Buffer.contents buf
