(** Call-graph construction: CHA and RTA, computed on the fly from a
    set of entry points (only reachable code contributes edges). *)

open Fd_ir

type algorithm =
  | Cha  (** class hierarchy analysis: every override in the cone *)
  | Rta
      (** rapid type analysis: receivers restricted to classes
          instantiated in reachable code (joint fixed point) *)

type call_edge = { ce_caller : Mkey.t; ce_stmt : int; ce_target : Mkey.t }

type t

val build :
  Scene.t ->
  entry:Mkey.t list ->
  ?algorithm:algorithm ->
  ?clinit_first_use:bool ->
  ?reflection:bool ->
  unit ->
  t
(** [build scene ~entry ()] computes the call graph reachable from
    [entry] (default {!Cha}).  [clinit_first_use] adds first-use-site
    [<clinit>] edges and [reflection] adds constant-string-resolved
    reflective call edges (both precision passes, default off); the
    extra edges live in separate tables so {!callees} — and every
    flags-off consumer — is unaffected. *)

val callees : t -> Mkey.t -> int -> Mkey.t list
(** [callees cg caller stmt_idx] — resolved targets of one call site;
    empty when the call resolves only into the framework. *)

val clinit_callees : t -> Mkey.t -> int -> Mkey.t list
(** the [<clinit>] methods a statement triggers under first-use
    placement; empty unless built with [~clinit_first_use:true] *)

val refl_callees : t -> Mkey.t -> int -> Mkey.t list
(** constant-string-resolved targets of a [Method.invoke] site; empty
    unless built with [~reflection:true] *)

val clinit_sites : t -> Mkey.t -> (Mkey.t * int) list
(** every (caller, stmt) first-use site triggering the given
    [<clinit>] method *)

val refl_sites : t -> Mkey.t -> (Mkey.t * int) list
(** every reflective call site resolving to the given method *)

val callers : t -> Mkey.t -> (Mkey.t * int) list
(** the call sites that may invoke a method *)

val is_reachable : t -> Mkey.t -> bool
val reachable_methods : t -> Mkey.t list

val body_of : t -> Mkey.t -> Body.t
(** the body of a method (cached).  @raise Not_found for bodyless
    methods. *)

val edge_count : t -> int
(** number of distinct (site, target) edges — a size metric for the
    benchmarks *)

val cg_scene : t -> Scene.t
(** the scene the graph was built over *)

val static_use_classes : Fd_ir.Stmt.t -> string list
(** the classes whose static members one statement touches — the JVM's
    [<clinit>] trigger events (JLS 12.4.1).  Shared with
    {!Ondemand}'s reverse indices so targeted slicing over-approximates
    exactly the edges first-use clinit placement can add. *)
