(** The inter-procedural control-flow graph (ICFG).

    The view of the program both IFDS solvers traverse: nodes are
    (method, statement-index) pairs; intra-procedural edges come from
    {!Fd_ir.Body}, inter-procedural edges from the {!Callgraph}. *)

open Fd_ir

type node = { n_method : Mkey.t; n_idx : int }

let equal_node a b =
  a == b || (a.n_idx = b.n_idx && Mkey.equal a.n_method b.n_method)

let compare_node a b =
  match Mkey.compare a.n_method b.n_method with
  | 0 -> Int.compare a.n_idx b.n_idx
  | c -> c

let hash_node a = Fd_util.Intern.combine (Mkey.hash a.n_method) a.n_idx

let string_of_node n = Printf.sprintf "%s@%d" (Mkey.to_string n.n_method) n.n_idx

module Node_tbl = Hashtbl.Make (struct
  type t = node

  let equal = equal_node
  let hash = hash_node
end)

type t = {
  cg : Callgraph.t;
  (* per-node memo caches: the call graph is immutable once built, and
     the generic IFDS solver asks for the same successor lists and
     statements once per propagated fact — caching turns the repeated
     method-key lookups and node-list rebuilds into one node hash *)
  ic_succs : node list Node_tbl.t;
  ic_stmts : Stmt.t Node_tbl.t;
}

let create cg =
  { cg; ic_succs = Node_tbl.create 256; ic_stmts = Node_tbl.create 256 }

(** [body g m] is the body of method [m] (must be reachable). *)
let body g m = Callgraph.body_of g.cg m

(** [stmt g n] is the statement at node [n]. *)
let stmt g n =
  match Node_tbl.find_opt g.ic_stmts n with
  | Some s -> s
  | None ->
      let s = Body.stmt (body g n.n_method) n.n_idx in
      Node_tbl.replace g.ic_stmts n s;
      s

(** [succs g n] is the intra-procedural successor nodes of [n]. *)
let succs g n =
  match Node_tbl.find_opt g.ic_succs n with
  | Some ss -> ss
  | None ->
      let ss =
        List.map
          (fun i -> { n_method = n.n_method; n_idx = i })
          (Body.succs (body g n.n_method) n.n_idx)
      in
      Node_tbl.replace g.ic_succs n ss;
      ss

(** [preds g n] is the intra-procedural predecessor nodes of [n]. *)
let preds g n =
  List.map
    (fun i -> { n_method = n.n_method; n_idx = i })
    (Body.preds (body g n.n_method) n.n_idx)

(** [start_node g m] is the entry node of [m] (statement 0). *)
let start_node g m =
  ignore (body g m);
  { n_method = m; n_idx = 0 }

(** [exit_nodes g m] is the return/throw nodes of [m]. *)
let exit_nodes g m =
  List.map (fun i -> { n_method = m; n_idx = i }) (Body.exit_stmts (body g m))

(** [callees g n] is the analysable targets of a call node (empty when
    the call goes only into the framework/library). *)
let callees g n = Callgraph.callees g.cg n.n_method n.n_idx

(** [callers g m] is the call nodes that may invoke [m]. *)
let callers g m =
  List.map
    (fun (caller, idx) -> { n_method = caller; n_idx = idx })
    (Callgraph.callers g.cg m)

(** [clinit_callees g n] — the [<clinit>] methods node [n] triggers
    under the first-use precision pass (empty when the pass is off). *)
let clinit_callees g n = Callgraph.clinit_callees g.cg n.n_method n.n_idx

(** [refl_callees g n] — constant-string-resolved reflective targets
    of an invoke node (empty when the pass is off). *)
let refl_callees g n = Callgraph.refl_callees g.cg n.n_method n.n_idx

(** [clinit_sites g m] — every node whose first-use edge triggers the
    [<clinit>] method [m]. *)
let clinit_sites g m =
  List.map
    (fun (caller, idx) -> { n_method = caller; n_idx = idx })
    (Callgraph.clinit_sites g.cg m)

(** [refl_sites g m] — every reflective call node resolving to [m]. *)
let refl_sites g m =
  List.map
    (fun (caller, idx) -> { n_method = caller; n_idx = idx })
    (Callgraph.refl_sites g.cg m)

(** [is_call g n] holds when node [n] contains an invoke. *)
let is_call g n = Stmt.is_call (stmt g n)

(** [invoke g n] is the invoke at [n], if any. *)
let invoke g n = Stmt.invoke_of (stmt g n)

(** [is_exit g n] holds at return/throw nodes. *)
let is_exit g n =
  match (stmt g n).Stmt.s_kind with
  | Stmt.Return _ | Stmt.Throw _ -> true
  | _ -> false
