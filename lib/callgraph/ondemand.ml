(** Demand-driven targeted slicing (BackDroid-style).

    Full FlowDroid builds the whole-app supergraph before a single
    sink is considered.  When the user only cares about a handful of
    sink APIs ([--targeted SIG]), almost all of that work is wasted:
    "When Program Analysis Meets Bytecode Search" (BackDroid) shows
    that locating sink call sites by bytecode search and extending the
    call graph only backwards along their caller chains yields
    2.1×–2368× speedups on the same soundness envelope.

    This module is the search-and-slice half of that design:

    + one pass over every method body in the scene text-indexes the
      invoke sites — recording which methods contain a sink call
      matching a pattern (the seed set S), a (callee name, arity) →
      containing-methods reverse index, a class → static-user index
      (the JLS 12.4.1 [<clinit>] trigger events), and the methods
      holding reflective [Method.invoke] sites;
    + the slice U is the up-closure of S under those reverse indices:
      every method that could transitively reach a matching sink site
      through {e any} dispatch the analysis may later discover.

    Matching callers by (name, arity) alone — ignoring the declared
    receiver class — deliberately over-approximates CHA/RTA dispatch,
    first-use [<clinit>] placement and constant-string reflection
    resolution, so pruning entry points outside U can never lose a
    targeted flow.  Inside the slice the analysis itself is unchanged:
    {!Callgraph.build} runs from the surviving entries only (that IS
    the on-the-fly extension — edges are discovered along the slice
    and nowhere else), and the solvers take the restricted graph's
    reachability as their membership predicate. *)

open Fd_ir
module M = Fd_obs.Metrics

let g_sink_sites = M.gauge "targeted.sink_sites"
let g_sliced = M.gauge "targeted.sliced_methods"
let g_total = M.gauge "targeted.total_methods"
let m_probes = M.counter "targeted.index_probes"

type t = {
  od_patterns : string list;
  od_members : unit Mkey.Tbl.t;  (** U: the backward slice from sinks *)
  od_sink_sites : int;  (** matching invoke sites found by the index *)
  od_total_methods : int;  (** methods with bodies in the scene *)
  od_probes : int;  (** invoke sites run through the matcher *)
}

(* naive substring search; patterns and signatures are short *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + n <= m do
      if String.sub s !i n = sub then found := true else incr i
    done;
    !found
  end

(* A [--targeted] pattern is either a free substring or an anchored
   SuSi-style signature [<Class: ret name(args)>] — the exact shape
   {!Types.string_of_method_sig} prints.  Anchored patterns compare
   signature components (class up to supertypes, exact name, return
   and parameter types), so [<android.util.Log: int i(...)>] cannot
   accidentally catch [Login.io] the way a substring would. *)
type matcher =
  | Substring of string
  | Anchored of Types.method_sig

let compile p =
  let substring () = Substring p in
  let n = String.length p in
  if n < 2 || p.[0] <> '<' || p.[n - 1] <> '>' then substring ()
  else
    match String.index_opt p ':' with
    | None -> substring ()
    | Some ci when ci <= 1 -> substring ()
    | Some ci -> (
        let cls = String.sub p 1 (ci - 1) in
        let rest = String.trim (String.sub p (ci + 1) (n - ci - 2)) in
        let rl = String.length rest in
        match String.index_opt rest '(' with
        | Some oi when oi > 0 && rl > 0 && rest.[rl - 1] = ')' -> (
            let head = String.trim (String.sub rest 0 oi) in
            let args_s = String.trim (String.sub rest (oi + 1) (rl - oi - 2)) in
            match String.rindex_opt head ' ' with
            | None -> substring ()
            | Some si ->
                let ret = String.sub head 0 si in
                let name =
                  String.sub head (si + 1) (String.length head - si - 1)
                in
                if cls = "" || name = "" || ret = "" then substring ()
                else
                  let params =
                    if args_s = "" then []
                    else
                      List.map
                        (fun a -> Types.typ_of_string (String.trim a))
                        (String.split_on_char ',' args_s)
                  in
                  Anchored
                    (Types.mk_method ~params ~ret:(Types.typ_of_string ret) cls
                       name))
        | _ -> substring ())

let compile_patterns patterns = List.map compile patterns

(* Does any pattern match the statically named callee, tested against
   the named class and each of its supertypes?  A sink declared on
   [java.io.OutputStream] must match a call through a
   [FileOutputStream]-typed receiver — mirroring how
   [Srcsink_mgr.with_supertypes] resolves rules at analysis time. *)
let sig_matches_compiled scene ~matchers (sg : Types.method_sig) =
  let cls = sg.Types.m_class in
  let candidates = cls :: List.filter (( <> ) cls) (Scene.supertypes scene cls) in
  List.exists
    (fun m ->
      match m with
      | Substring p ->
          List.exists
            (fun c -> contains ~sub:p (c ^ "." ^ sg.Types.m_name))
            candidates
      | Anchored a ->
          String.equal a.Types.m_name sg.Types.m_name
          && Types.equal_typ a.Types.m_ret sg.Types.m_ret
          && List.length a.Types.m_params = List.length sg.Types.m_params
          && List.for_all2 Types.equal_typ a.Types.m_params sg.Types.m_params
          && List.exists (String.equal a.Types.m_class) candidates)
    matchers

(** [invoke_matches scene ~patterns inv] — does this invoke site call
    a targeted sink?  Also used by the driver to post-filter findings
    to the targeted sinks. *)
let invoke_matches scene ~patterns (inv : Stmt.invoke) =
  sig_matches_compiled scene ~matchers:(compile_patterns patterns)
    inv.Stmt.i_sig

(** [compute scene ~patterns] — index the scene and close the slice.
    Cost is one linear pass over every statement plus the closure
    walk; no call-graph construction happens here. *)
let compute scene ~patterns =
  let seeds = ref [] in
  let sink_sites = ref 0 in
  let probes = ref 0 in
  let total = ref 0 in
  (* (callee name, arity) -> methods containing such an invoke site *)
  let call_index : (string * int, Mkey.t list) Hashtbl.t =
    Hashtbl.create 1024
  in
  (* class -> methods with a static use of it (<clinit> triggers) *)
  let static_users : (string, Mkey.t list) Hashtbl.t = Hashtbl.create 256 in
  (* methods containing a reflective Method.invoke site *)
  let refl_holders = ref [] in
  let matchers = compile_patterns patterns in
  (* memoise the matcher per statically named callee; anchored
     patterns discriminate overloads, so key on the full signature *)
  let match_cache : (string, bool) Hashtbl.t = Hashtbl.create 512 in
  let site_matches (inv : Stmt.invoke) =
    incr probes;
    let sg = inv.Stmt.i_sig in
    let key = Types.string_of_method_sig sg in
    match Hashtbl.find_opt match_cache key with
    | Some r -> r
    | None ->
        let r = sig_matches_compiled scene ~matchers sg in
        Hashtbl.add match_cache key r;
        r
  in
  let push tbl key v =
    let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    Hashtbl.replace tbl key (v :: prev)
  in
  List.iter
    (fun (c, m) ->
      incr total;
      let mk = Mkey.of_method c m in
      let body = Option.get m.Jclass.jm_body in
      let is_seed = ref false in
      Body.iter body (fun s ->
          List.iter
            (fun cls -> push static_users cls mk)
            (Callgraph.static_use_classes s);
          match Stmt.invoke_of s with
          | None -> ()
          | Some inv ->
              let sg = inv.Stmt.i_sig in
              push call_index
                (sg.Types.m_name, List.length sg.Types.m_params)
                mk;
              if
                sg.Types.m_class = "java.lang.reflect.Method"
                && sg.Types.m_name = "invoke"
              then refl_holders := mk :: !refl_holders;
              if site_matches inv then begin
                incr sink_sites;
                is_seed := true
              end);
      if !is_seed then seeds := mk :: !seeds)
    (Scene.methods_with_bodies scene);
  (* up-closure under the reverse indices.  Reflective holders can call
     anything the resolver later proves, so if the slice is non-empty
     they join it unconditionally (cheap and sound). *)
  let members = Mkey.Tbl.create 256 in
  let work = Queue.create () in
  let enqueue k =
    if not (Mkey.Tbl.mem members k) then begin
      Mkey.Tbl.replace members k ();
      Queue.add k work
    end
  in
  List.iter enqueue !seeds;
  if not (Queue.is_empty work) then List.iter enqueue !refl_holders;
  while not (Queue.is_empty work) do
    let k = Queue.pop work in
    let callers =
      Option.value
        (Hashtbl.find_opt call_index (k.Mkey.mk_name, k.Mkey.mk_arity))
        ~default:[]
    in
    List.iter enqueue callers;
    if k.Mkey.mk_name = "<clinit>" then
      List.iter enqueue
        (Option.value
           (Hashtbl.find_opt static_users k.Mkey.mk_class)
           ~default:[])
  done;
  let t =
    {
      od_patterns = patterns;
      od_members = members;
      od_sink_sites = !sink_sites;
      od_total_methods = !total;
      od_probes = !probes;
    }
  in
  M.set_int g_sink_sites t.od_sink_sites;
  M.set_int g_sliced (Mkey.Tbl.length t.od_members);
  M.set_int g_total t.od_total_methods;
  M.add m_probes t.od_probes;
  t

(** [mem t k] — is method [k] inside the backward slice? *)
let mem t k = Mkey.Tbl.mem t.od_members k

let sliced_methods t = Mkey.Tbl.length t.od_members
let total_methods t = t.od_total_methods
let sink_sites t = t.od_sink_sites
let index_probes t = t.od_probes
let patterns t = t.od_patterns
