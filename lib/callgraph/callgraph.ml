(** Call-graph construction.

    FlowDroid builds its call graph with Soot's Spark; our substitute
    offers the two classic algorithms Spark refines:

    - {b CHA} (class hierarchy analysis): a virtual call can dispatch
      to any override in the cone of the receiver's static type;
    - {b RTA} (rapid type analysis): additionally restricts receivers
      to classes actually instantiated in reachable code, computed as
      a fixed point.

    Both are computed on the fly from a set of entry points, so only
    reachable code contributes edges (the Naeem–Lhoták style
    "supergraph on demand" the paper relies on). *)

open Fd_ir
module M = Fd_obs.Metrics

let m_sites = M.counter "cg.call_sites_resolved"
let m_iterations = M.counter "cg.fixpoint_iterations"
let g_reachable = M.gauge "cg.reachable_methods"
let g_edges = M.gauge "cg.edges"
let g_instantiated = M.gauge "cg.instantiated_classes"

type algorithm = Cha | Rta

type call_edge = {
  ce_caller : Mkey.t;
  ce_stmt : int;  (** call-site statement index in the caller *)
  ce_target : Mkey.t;
}

type t = {
  cg_scene : Scene.t;
  cg_algorithm : algorithm;
  cg_entry : Mkey.t list;
  (* call site -> resolved targets *)
  cg_out : (Mkey.t * int, Mkey.t list) Hashtbl.t;
  (* callee -> call sites *)
  cg_in : (Mkey.t, (Mkey.t * int) list) Hashtbl.t;
  cg_reachable : unit Mkey.Tbl.t;
  cg_bodies : Body.t Mkey.Tbl.t;
  (* precision-pass edge tables, kept apart from [cg_out] so the
     default library model of unresolved calls (and every flags-off
     code path) is untouched.  Empty unless the corresponding pass is
     enabled at build time. *)
  cg_clinit : (Mkey.t * int, Mkey.t list) Hashtbl.t;
      (* first-use static-access site -> <clinit> methods it triggers *)
  cg_refl : (Mkey.t * int, Mkey.t list) Hashtbl.t;
      (* Method.invoke site -> constant-string-resolved targets *)
}

let find_body scene (k : Mkey.t) =
  match Scene.find_class scene k.Mkey.mk_class with
  | None -> None
  | Some c -> (
      match
        List.find_opt
          (fun (m : Jclass.jmethod) ->
            m.Jclass.jm_sig.Types.m_name = k.Mkey.mk_name
            && List.length m.Jclass.jm_sig.Types.m_params = k.Mkey.mk_arity)
          c.Jclass.c_methods
      with
      | Some m -> m.Jclass.jm_body
      | None -> None)

(* resolve the possible targets of one invoke *)
let resolve_invoke scene algorithm ~instantiated (inv : Stmt.invoke) =
  let subsig =
    (inv.Stmt.i_sig.Types.m_name, inv.Stmt.i_sig.Types.m_params)
  in
  let cls = inv.Stmt.i_sig.Types.m_class in
  match inv.Stmt.i_kind with
  | Stmt.Static | Stmt.Special -> (
      match Scene.resolve_concrete scene cls subsig with
      | Some (decl, m) when Jclass.has_body m -> [ Mkey.of_method decl m ]
      | _ -> [])
  | Stmt.Virtual ->
      Scene.dispatch_targets scene ~static_type:cls subsig
      |> List.filter_map (fun (decl, m) ->
             if not (Jclass.has_body m) then None
             else
               match algorithm with
               | Cha -> Some (Mkey.of_method decl m)
               | Rta ->
                   (* keep the target if some instantiated class
                      dispatches to this declaration *)
                   let reaches =
                     Hashtbl.fold
                       (fun inst () acc ->
                         acc
                         || Scene.is_subtype scene inst cls
                            &&
                            match Scene.resolve_concrete scene inst subsig with
                            | Some (d, _) -> d.Jclass.c_name = decl.Jclass.c_name
                            | None -> false)
                       instantiated false
                   in
                   if reaches then Some (Mkey.of_method decl m) else None)

(* the <clinit> key of a class, when it has one with a body *)
let clinit_key scene cls =
  let k = { Mkey.mk_class = cls; mk_name = "<clinit>"; mk_arity = 0 } in
  match find_body scene k with Some _ -> Some k | None -> None

(* the classes whose static members one statement touches: an
   allocation, a static field access, or a static invoke — the JVM's
   <clinit> trigger events (JLS 12.4.1) *)
let static_use_classes (s : Stmt.t) : string list =
  let of_lv = function Stmt.Lstatic f -> [ f.Types.f_class ] | _ -> [] in
  let of_expr = function
    | Stmt.Enew c -> [ c ]
    | Stmt.Estatic f -> [ f.Types.f_class ]
    | _ -> []
  in
  let of_inv = function
    | Some ({ Stmt.i_kind = Stmt.Static; _ } as inv) ->
        [ inv.Stmt.i_sig.Types.m_class ]
    | _ -> []
  in
  match s.Stmt.s_kind with
  | Stmt.Assign (lv, e) ->
      of_lv lv @ of_expr e @ of_inv (Stmt.invoke_of s)
  | _ -> of_inv (Stmt.invoke_of s)

(* resolve one reflective Method.invoke site against the scene using
   the intraprocedural constant propagation: the receiver must be a
   Method handle with a known (class, name), and the target's arity is
   the argument count minus the leading this-argument — mirroring the
   interpreter's concrete [invoke] model *)
let resolve_reflective scene cp (s : Stmt.t) (inv : Stmt.invoke) :
    Mkey.t list =
  match inv.Stmt.i_recv with
  | None -> []
  | Some r -> (
      match Fd_precision.Const_prop.value_at cp ~at:s.Stmt.s_idx r with
      | Some (Fd_precision.Const_prop.Vmethod (cls, name)) -> (
          let arity = max 0 (List.length inv.Stmt.i_args - 1) in
          let params = List.init arity (fun _ -> Types.Ref Types.object_class) in
          match Scene.resolve_concrete scene cls (name, params) with
          | Some (decl, m) when Jclass.has_body m -> [ Mkey.of_method decl m ]
          | _ -> [])
      | _ -> [])

(** [build scene ~entry ?algorithm ?clinit_first_use ?reflection ()]
    computes the call graph reachable from [entry].  For {!Rta} the
    instantiated-class set and the reachable set are iterated to a
    joint fixed point.  [clinit_first_use] and [reflection] enable the
    precision-pass edge tables ({!clinit_callees}, {!refl_callees}):
    first-use-site [<clinit>] edges and constant-string-resolved
    reflective call edges; both default to off and leave [cg_out]
    untouched. *)
let build scene ~entry ?(algorithm = Cha) ?(clinit_first_use = false)
    ?(reflection = false) () =
  Fd_obs.Trace.with_span "callgraph.build" @@ fun () ->
  let cg =
    {
      cg_scene = scene;
      cg_algorithm = algorithm;
      cg_entry = entry;
      cg_out = Hashtbl.create 256;
      cg_in = Hashtbl.create 256;
      cg_reachable = Mkey.Tbl.create 256;
      cg_bodies = Mkey.Tbl.create 256;
      cg_clinit = Hashtbl.create (if clinit_first_use then 64 else 1);
      cg_refl = Hashtbl.create (if reflection then 64 else 1);
    }
  in
  (* constant-propagation results per method, shared across fixpoint
     iterations (bodies are immutable) *)
  let cp_cache : Fd_precision.Const_prop.t Mkey.Tbl.t = Mkey.Tbl.create 16 in
  let const_prop_of k body =
    match Mkey.Tbl.find_opt cp_cache k with
    | Some cp -> cp
    | None ->
        let cp = Fd_precision.Const_prop.analyze body in
        Mkey.Tbl.replace cp_cache k cp;
        cp
  in
  let instantiated : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* entry-point receivers count as instantiated for RTA *)
  List.iter
    (fun (k : Mkey.t) -> Hashtbl.replace instantiated k.Mkey.mk_class ())
    entry;
  let changed = ref true in
  (* iterate the whole construction until stable; needed for RTA where
     later-discovered allocations enable earlier virtual sites *)
  while !changed do
    changed := false;
    M.incr m_iterations;
    Mkey.Tbl.reset cg.cg_reachable;
    Hashtbl.reset cg.cg_out;
    Hashtbl.reset cg.cg_in;
    Hashtbl.reset cg.cg_clinit;
    Hashtbl.reset cg.cg_refl;
    let worklist = Queue.create () in
    let reach k =
      if not (Mkey.Tbl.mem cg.cg_reachable k) then begin
        Mkey.Tbl.replace cg.cg_reachable k ();
        Queue.add k worklist
      end
    in
    let add_in tgt site =
      let prev = Option.value (Hashtbl.find_opt cg.cg_in tgt) ~default:[] in
      Hashtbl.replace cg.cg_in tgt (site :: prev)
    in
    List.iter reach entry;
    while not (Queue.is_empty worklist) do
      let k = Queue.pop worklist in
      match
        match Mkey.Tbl.find_opt cg.cg_bodies k with
        | Some b -> Some b
        | None ->
            let b = find_body scene k in
            Option.iter (fun b -> Mkey.Tbl.replace cg.cg_bodies k b) b;
            b
      with
      | None -> ()
      | Some body ->
          (* classes whose <clinit> edge this method already owns: the
             pass places the edge at the *first* use per class *)
          let clinit_seen = Hashtbl.create 4 in
          Body.iter body (fun s ->
              (* record allocations for RTA *)
              (match s.Stmt.s_kind with
              | Stmt.Assign (_, Stmt.Enew c) ->
                  if not (Hashtbl.mem instantiated c) then begin
                    Hashtbl.replace instantiated c ();
                    changed := true
                  end
              | _ -> ());
              if clinit_first_use then begin
                let triggered =
                  List.filter_map
                    (fun c ->
                      (* a method of C never re-triggers C's own
                         initialiser (it is already running or done) *)
                      if
                        String.equal c k.Mkey.mk_class
                        || Hashtbl.mem clinit_seen c
                      then None
                      else begin
                        Hashtbl.replace clinit_seen c ();
                        clinit_key scene c
                      end)
                    (static_use_classes s)
                in
                if triggered <> [] then begin
                  Hashtbl.replace cg.cg_clinit (k, s.Stmt.s_idx) triggered;
                  List.iter
                    (fun tgt ->
                      add_in tgt (k, s.Stmt.s_idx);
                      reach tgt)
                    triggered
                end
              end;
              match Stmt.invoke_of s with
              | None -> ()
              | Some inv ->
                  let targets =
                    resolve_invoke scene algorithm ~instantiated inv
                  in
                  if targets <> [] then begin
                    M.incr m_sites;
                    Hashtbl.replace cg.cg_out (k, s.Stmt.s_idx) targets;
                    List.iter
                      (fun tgt ->
                        add_in tgt (k, s.Stmt.s_idx);
                        reach tgt)
                      targets
                  end;
                  if
                    reflection
                    && inv.Stmt.i_sig.Types.m_class = "java.lang.reflect.Method"
                    && inv.Stmt.i_sig.Types.m_name = "invoke"
                  then begin
                    let rtargets =
                      resolve_reflective scene (const_prop_of k body) s inv
                    in
                    if rtargets <> [] then begin
                      Hashtbl.replace cg.cg_refl (k, s.Stmt.s_idx) rtargets;
                      List.iter
                        (fun tgt ->
                          add_in tgt (k, s.Stmt.s_idx);
                          reach tgt)
                        rtargets
                    end
                  end)
    done;
    (* CHA converges in one pass *)
    if algorithm = Cha then changed := false
  done;
  M.set_int g_reachable (Mkey.Tbl.length cg.cg_reachable);
  M.set_int g_edges
    (Hashtbl.fold (fun _ tgts acc -> acc + List.length tgts) cg.cg_out 0);
  M.set_int g_instantiated (Hashtbl.length instantiated);
  cg

(** [callees cg caller stmt_idx] is the resolved targets of the call
    site, empty when the call resolves only into the framework. *)
let callees cg caller stmt_idx =
  Option.value (Hashtbl.find_opt cg.cg_out (caller, stmt_idx)) ~default:[]

(** [clinit_callees cg caller stmt_idx] — the [<clinit>] methods the
    statement triggers under first-use placement; empty unless the
    graph was built with [~clinit_first_use:true]. *)
let clinit_callees cg caller stmt_idx =
  Option.value (Hashtbl.find_opt cg.cg_clinit (caller, stmt_idx)) ~default:[]

(** [refl_callees cg caller stmt_idx] — constant-string-resolved
    reflective targets of a [Method.invoke] site; empty unless the
    graph was built with [~reflection:true]. *)
let refl_callees cg caller stmt_idx =
  Option.value (Hashtbl.find_opt cg.cg_refl (caller, stmt_idx)) ~default:[]

(** [clinit_sites cg callee] — every (caller, stmt) site whose
    first-use edge triggers [callee] (a [<clinit>] method). *)
let clinit_sites cg callee =
  Hashtbl.fold
    (fun site tgts acc ->
      if List.exists (Mkey.equal callee) tgts then site :: acc else acc)
    cg.cg_clinit []

(** [refl_sites cg callee] — every reflective call site resolving to
    [callee]. *)
let refl_sites cg callee =
  Hashtbl.fold
    (fun site tgts acc ->
      if List.exists (Mkey.equal callee) tgts then site :: acc else acc)
    cg.cg_refl []

(** [callers cg callee] is the call sites that may invoke [callee]. *)
let callers cg callee =
  Option.value (Hashtbl.find_opt cg.cg_in callee) ~default:[]

(** [is_reachable cg k] holds when [k] is transitively callable from
    the entry points. *)
let is_reachable cg k = Mkey.Tbl.mem cg.cg_reachable k

(** [reachable_methods cg] lists all reachable methods. *)
let reachable_methods cg =
  Mkey.Tbl.fold (fun k () acc -> k :: acc) cg.cg_reachable []

(** [body_of cg k] is the body of a reachable method.
    @raise Not_found for unreachable or bodyless methods. *)
let body_of cg k =
  match Mkey.Tbl.find_opt cg.cg_bodies k with
  | Some b -> b
  | None -> (
      match find_body cg.cg_scene k with
      | Some b ->
          Mkey.Tbl.replace cg.cg_bodies k b;
          b
      | None -> raise Not_found)

(** [edge_count cg] is the number of distinct (site, target) edges. *)
let edge_count cg =
  Hashtbl.fold (fun _ tgts acc -> acc + List.length tgts) cg.cg_out 0

(** [cg_scene cg] is the scene the graph was built over. *)
let cg_scene cg = cg.cg_scene
