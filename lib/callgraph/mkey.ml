(** Method keys: the identity of a method in call graphs and solvers.

    A method is identified by its *declaring* class, its name, and its
    arity (µJimple does not use same-arity overloading; see
    DESIGN.md). *)

open Fd_ir

type t = { mk_class : string; mk_name : string; mk_arity : int }

let equal a b =
  a == b
  || (String.equal a.mk_class b.mk_class
     && String.equal a.mk_name b.mk_name
     && a.mk_arity = b.mk_arity)

let compare a b =
  match String.compare a.mk_class b.mk_class with
  | 0 -> (
      match String.compare a.mk_name b.mk_name with
      | 0 -> Int.compare a.mk_arity b.mk_arity
      | c -> c)
  | c -> c

(* fold the three components explicitly: the tuple version hashed the
   strings through [Hashtbl.hash]'s node budget, colliding on long
   common-prefix class names *)
let hash a =
  Fd_util.Intern.combine
    (Fd_util.Intern.combine (Hashtbl.hash a.mk_class) (Hashtbl.hash a.mk_name))
    a.mk_arity

(** [of_sig s] keys a method signature. *)
let of_sig (s : Types.method_sig) =
  { mk_class = s.Types.m_class; mk_name = s.Types.m_name;
    mk_arity = List.length s.Types.m_params }

(** [of_method cls m] keys a concrete method declared on [cls]. *)
let of_method (cls : Jclass.t) (m : Jclass.jmethod) =
  {
    mk_class = cls.Jclass.c_name;
    mk_name = m.Jclass.jm_sig.Types.m_name;
    mk_arity = List.length m.Jclass.jm_sig.Types.m_params;
  }

let to_string k = Printf.sprintf "%s.%s/%d" k.mk_class k.mk_name k.mk_arity
let pp fmt k = Format.pp_print_string fmt (to_string k)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
