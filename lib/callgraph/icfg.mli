(** The inter-procedural control-flow graph (ICFG).

    The program view both IFDS solvers traverse: nodes are
    (method, statement-index) pairs; intra-procedural edges come from
    {!Fd_ir.Body}, inter-procedural edges from the {!Callgraph}. *)

open Fd_ir

type node = { n_method : Mkey.t; n_idx : int }

val equal_node : node -> node -> bool
val compare_node : node -> node -> int
val hash_node : node -> int

val string_of_node : node -> string
(** e.g. ["a.B.m/2@7"]. *)

module Node_tbl : Hashtbl.S with type key = node

type t = private {
  cg : Callgraph.t;
  ic_succs : node list Node_tbl.t;  (** internal memo cache *)
  ic_stmts : Stmt.t Node_tbl.t;  (** internal memo cache *)
}
(** construct with {!create}; the [cg] field is readable (solvers drop
    down to raw {!Callgraph} queries), the caches are internal *)

val create : Callgraph.t -> t

val body : t -> Mkey.t -> Body.t
(** [body g m] is the body of a reachable method.
    @raise Not_found otherwise. *)

val stmt : t -> node -> Stmt.t
(** [stmt g n] is the statement at node [n]. *)

val succs : t -> node -> node list
(** intra-procedural successor nodes *)

val preds : t -> node -> node list
(** intra-procedural predecessor nodes (walked by the backward alias
    analysis) *)

val start_node : t -> Mkey.t -> node
(** the entry node of a method (statement 0) *)

val exit_nodes : t -> Mkey.t -> node list
(** the return/throw nodes of a method *)

val callees : t -> node -> Mkey.t list
(** analysable targets of a call node; [[]] when the call resolves
    only into the framework *)

val callers : t -> Mkey.t -> node list
(** the call nodes that may invoke a method *)

val clinit_callees : t -> node -> Mkey.t list
(** the [<clinit>] methods a node triggers under first-use placement;
    empty when the precision pass is off *)

val refl_callees : t -> node -> Mkey.t list
(** constant-string-resolved reflective targets of an invoke node;
    empty when the precision pass is off *)

val clinit_sites : t -> Mkey.t -> node list
(** every node whose first-use edge triggers the given [<clinit>] *)

val refl_sites : t -> Mkey.t -> node list
(** every reflective call node resolving to the given method *)

val is_call : t -> node -> bool
val invoke : t -> node -> Stmt.invoke option
val is_exit : t -> node -> bool
