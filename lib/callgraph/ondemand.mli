(** Demand-driven targeted slicing (BackDroid-style): text-index the
    scene for sink invoke sites matching the [--targeted] patterns,
    then close the caller slice backwards under conservative reverse
    indices — (name, arity) call sites, [<clinit>] trigger events and
    reflective [Method.invoke] holders.  Entry points outside the
    slice can never reach a targeted sink, so the driver drops them
    before building the call graph; inside the slice the analysis is
    unchanged.  Publishes the [targeted.*] metrics. *)

open Fd_ir

type t

val compute : Scene.t -> patterns:string list -> t
(** one linear pass over every method body plus the closure walk; no
    call-graph construction happens here *)

val mem : t -> Mkey.t -> bool
(** is the method inside the backward slice? *)

val invoke_matches : Scene.t -> patterns:string list -> Stmt.invoke -> bool
(** does this invoke site call a targeted sink?  A pattern shaped
    [<Class: ret name(args)>] (the SuSi list form) is matched anchored
    — exact name, return and parameter types, class up to supertypes
    of the static receiver; any other pattern keeps the substring
    match on ["Class.method"] (supertypes included).  Used to find
    seeds and to post-filter findings. *)

val sliced_methods : t -> int
val total_methods : t -> int
val sink_sites : t -> int
val index_probes : t -> int
val patterns : t -> string list
