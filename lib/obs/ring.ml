(** Fixed-size event rings and the per-domain flight recorder (see the
    interface).

    The generic ring is a plain circular buffer: single-writer,
    overwrite-on-wrap, O(1) push with no allocation beyond the stored
    value itself.  {!Flight} gives every domain its own ring through
    [Domain.DLS] — the same store-per-domain pattern {!Trace} uses — so
    recording from inside a solver loop is lock-free; only {!Flight.dump}
    (called on the slow path, when a run degrades) touches the data. *)

type 'a t = {
  r_cap : int;
  r_buf : 'a option array;
  mutable r_next : int;  (** slot the next push writes *)
  mutable r_pushed : int;  (** total pushes ever, monotonic *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { r_cap = capacity; r_buf = Array.make capacity None; r_next = 0; r_pushed = 0 }

let capacity r = r.r_cap
let pushed r = r.r_pushed
let length r = min r.r_pushed r.r_cap

let push r v =
  r.r_buf.(r.r_next) <- Some v;
  r.r_next <- (r.r_next + 1) mod r.r_cap;
  r.r_pushed <- r.r_pushed + 1

let clear r =
  Array.fill r.r_buf 0 r.r_cap None;
  r.r_next <- 0;
  r.r_pushed <- 0

(* oldest first: when the ring has wrapped, the oldest element sits at
   [r_next] (the slot the next push would overwrite) *)
let to_list r =
  let n = length r in
  let start = if r.r_pushed <= r.r_cap then 0 else r.r_next in
  List.init n (fun i ->
      match r.r_buf.((start + i) mod r.r_cap) with
      | Some v -> v
      | None -> assert false)

(* ---------------- the flight recorder ---------------- *)

module Flight = struct
  (* events are closures so the hot path never formats strings: a push
     costs one closure allocation and one array store; rendering
     happens only at dump time, for at most [capacity] events *)
  let default_capacity = 256

  let dls_key =
    Domain.DLS.new_key (fun () -> create ~capacity:default_capacity)

  let my () = Domain.DLS.get dls_key

  let record f = push (my ()) f
  let mark msg = push (my ()) (fun () -> msg)
  let clear () = clear (my ())
  let recorded () = pushed (my ())

  let dump ?limit () =
    let events = List.map (fun f -> f ()) (to_list (my ())) in
    match limit with
    | None -> events
    | Some k when k >= List.length events -> events
    | Some k ->
        (* keep the *last* k events: the most recent context is what a
           post-mortem wants *)
        let drop = List.length events - k in
        List.filteri (fun i _ -> i >= drop) events

  (* one compact line for embedding into a Diag or a crash message *)
  let dump_line ?(limit = 12) () =
    let total = length (my ()) in
    let events = dump ~limit () in
    let suffix =
      if total > limit then Printf.sprintf " (+%d earlier)" (total - limit)
      else ""
    in
    String.concat " | " events ^ suffix
end
