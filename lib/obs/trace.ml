(** Span-based phase tracing (see the interface).

    Each domain records spans into its own store ([Domain.DLS]), so
    tracing from inside a {!Fd_util.Pool} worker is safe and lock-free
    on the hot path; stores register themselves in a global list on
    first use, and every read-out ({!spans}, {!aggregate}, exports)
    merges the stores in worker order with parent indices rebased into
    the merged array.  Within one store, spans sit in start order, so
    a parent always precedes its children. *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_parent : int;
}

let dummy_span =
  { sp_name = ""; sp_start = 0.; sp_dur = 0.; sp_depth = 0; sp_parent = -1 }

(* one per-domain span store: the owning domain mutates it without
   locking; other domains only read it under [stores_lock] via the
   merge functions below *)
type dstore = {
  ds_tid : int;  (** stable thread id for the Chrome export *)
  mutable ds_spans : span array;
  mutable ds_count : int;
  mutable ds_stack : int list;  (** open spans, indices into [ds_spans] *)
}

let stores_lock = Mutex.create ()
let stores : dstore list ref = ref []
let next_tid = Atomic.make 1
let epoch = Atomic.make nan

let dls_key =
  Domain.DLS.new_key (fun () ->
      let ds =
        {
          ds_tid = Atomic.fetch_and_add next_tid 1;
          ds_spans = Array.make 64 dummy_span;
          ds_count = 0;
          ds_stack = [];
        }
      in
      Mutex.lock stores_lock;
      stores := ds :: !stores;
      Mutex.unlock stores_lock;
      ds)

let my () = Domain.DLS.get dls_key
let now () = Unix.gettimeofday ()

(* the epoch is shared so timestamps line up across domains; it is set
   by whichever domain opens the first span after a reset *)
let ensure_epoch t =
  if Float.is_nan (Atomic.get epoch) then begin
    Mutex.lock stores_lock;
    if Float.is_nan (Atomic.get epoch) then Atomic.set epoch t;
    Mutex.unlock stores_lock
  end

let push ds sp =
  if ds.ds_count = Array.length ds.ds_spans then begin
    let bigger = Array.make (2 * ds.ds_count) sp in
    Array.blit ds.ds_spans 0 bigger 0 ds.ds_count;
    ds.ds_spans <- bigger
  end;
  ds.ds_spans.(ds.ds_count) <- sp;
  ds.ds_count <- ds.ds_count + 1;
  ds.ds_count - 1

let begin_span name =
  let ds = my () in
  let t = now () in
  ensure_epoch t;
  let parent = match ds.ds_stack with [] -> -1 | p :: _ -> p in
  let idx =
    push ds
      {
        sp_name = name;
        sp_start = t -. Atomic.get epoch;
        sp_dur = 0.;
        sp_depth = List.length ds.ds_stack;
        sp_parent = parent;
      }
  in
  ds.ds_stack <- idx :: ds.ds_stack

let end_span () =
  let ds = my () in
  match ds.ds_stack with
  | [] -> invalid_arg "Trace.end_span: no open span"
  | idx :: rest ->
      ds.ds_stack <- rest;
      let sp = ds.ds_spans.(idx) in
      ds.ds_spans.(idx) <-
        { sp with sp_dur = now () -. Atomic.get epoch -. sp.sp_start }

let with_span name f =
  begin_span name;
  Fun.protect ~finally:end_span f

let depth () = List.length (my ()).ds_stack

(* all stores, oldest tid first, snapshotted under the lock *)
let store_list () =
  Mutex.lock stores_lock;
  let ss = List.sort (fun a b -> compare a.ds_tid b.ds_tid) !stores in
  Mutex.unlock stores_lock;
  ss

(* merge every store into one array of [(span, tid)], parent indices
   rebased onto the merged array *)
let merged () =
  let ss = store_list () in
  let total = List.fold_left (fun n ds -> n + ds.ds_count) 0 ss in
  let out = Array.make total (dummy_span, 0) in
  let off = ref 0 in
  List.iter
    (fun ds ->
      for i = 0 to ds.ds_count - 1 do
        let sp = ds.ds_spans.(i) in
        let sp =
          if sp.sp_parent < 0 then sp
          else { sp with sp_parent = sp.sp_parent + !off }
        in
        out.(!off + i) <- (sp, ds.ds_tid)
      done;
      off := !off + ds.ds_count)
    ss;
  out

let spans () = Array.to_list (Array.map fst (merged ()))

let aggregate () =
  let tbl : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (sp, _) ->
      let dur, n =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some cell -> cell
        | None ->
            let cell = (ref 0., ref 0) in
            Hashtbl.replace tbl sp.sp_name cell;
            cell
      in
      dur := !dur +. sp.sp_dur;
      n := !n + 1)
    (merged ());
  Hashtbl.fold (fun name (dur, n) acc -> (name, !dur, !n) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let reset () =
  Mutex.lock stores_lock;
  List.iter
    (fun ds ->
      ds.ds_count <- 0;
      ds.ds_stack <- [])
    !stores;
  Atomic.set epoch nan;
  Mutex.unlock stores_lock

let to_chrome_json () =
  let events =
    Array.to_list
      (Array.map
         (fun (sp, tid) ->
           Json.Obj
             [
               ("name", Json.String sp.sp_name);
               ("cat", Json.String "flowdroid");
               ("ph", Json.String "X");
               ("ts", Json.Float (sp.sp_start *. 1e6));
               ("dur", Json.Float (sp.sp_dur *. 1e6));
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
             ])
         (merged ()))
  in
  Json.Obj
    [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let to_chrome_string () = Json.to_string ~indent:1 (to_chrome_json ())

let summary () =
  let buf = Buffer.create 256 in
  let all = merged () in
  Array.iter
    (fun (sp, _) ->
      let share =
        if sp.sp_parent < 0 then ""
        else
          let p, _ = all.(sp.sp_parent) in
          if p.sp_dur > 0. then
            Printf.sprintf "  (%.0f%% of %s)" (100. *. sp.sp_dur /. p.sp_dur)
              p.sp_name
          else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms%s\n"
           (String.make (2 * sp.sp_depth) ' ')
           (32 - (2 * sp.sp_depth))
           sp.sp_name (sp.sp_dur *. 1e3) share))
    all;
  Buffer.contents buf
