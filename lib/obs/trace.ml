(** Span-based phase tracing (see the interface).  Spans are stored in
    a growable array in start order, so a parent always precedes its
    children; the open-span stack holds indices into that array. *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_parent : int;
}

(* growable span store *)
let store : span array ref = ref (Array.make 64 { sp_name = ""; sp_start = 0.; sp_dur = 0.; sp_depth = 0; sp_parent = -1 })
let count = ref 0
let open_stack : int list ref = ref []
let epoch = ref nan

let now () = Unix.gettimeofday ()

let push sp =
  if !count = Array.length !store then begin
    let bigger = Array.make (2 * !count) sp in
    Array.blit !store 0 bigger 0 !count;
    store := bigger
  end;
  !store.(!count) <- sp;
  incr count;
  !count - 1

let begin_span name =
  let t = now () in
  if Float.is_nan !epoch then epoch := t;
  let parent = match !open_stack with [] -> -1 | p :: _ -> p in
  let idx =
    push
      {
        sp_name = name;
        sp_start = t -. !epoch;
        sp_dur = 0.;
        sp_depth = List.length !open_stack;
        sp_parent = parent;
      }
  in
  open_stack := idx :: !open_stack

let end_span () =
  match !open_stack with
  | [] -> invalid_arg "Trace.end_span: no open span"
  | idx :: rest ->
      open_stack := rest;
      let sp = !store.(idx) in
      !store.(idx) <- { sp with sp_dur = now () -. !epoch -. sp.sp_start }

let with_span name f =
  begin_span name;
  Fun.protect ~finally:end_span f

let depth () = List.length !open_stack

let spans () = Array.to_list (Array.sub !store 0 !count)

let aggregate () =
  let tbl : (string, float ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun sp ->
      let dur, n =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some cell -> cell
        | None ->
            let cell = (ref 0., ref 0) in
            Hashtbl.replace tbl sp.sp_name cell;
            cell
      in
      dur := !dur +. sp.sp_dur;
      n := !n + 1)
    (Array.sub !store 0 !count);
  Hashtbl.fold (fun name (dur, n) acc -> (name, !dur, !n) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let reset () =
  count := 0;
  open_stack := [];
  epoch := nan

let to_chrome_json () =
  let events =
    List.map
      (fun sp ->
        Json.Obj
          [
            ("name", Json.String sp.sp_name);
            ("cat", Json.String "flowdroid");
            ("ph", Json.String "X");
            ("ts", Json.Float (sp.sp_start *. 1e6));
            ("dur", Json.Float (sp.sp_dur *. 1e6));
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
          ])
      (spans ())
  in
  Json.Obj
    [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let to_chrome_string () = Json.to_string ~indent:1 (to_chrome_json ())

let summary () =
  let buf = Buffer.create 256 in
  let all = Array.sub !store 0 !count in
  Array.iter
    (fun sp ->
      let share =
        if sp.sp_parent < 0 then ""
        else
          let p = all.(sp.sp_parent) in
          if p.sp_dur > 0. then
            Printf.sprintf "  (%.0f%% of %s)" (100. *. sp.sp_dur /. p.sp_dur)
              p.sp_name
          else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3f ms%s\n"
           (String.make (2 * sp.sp_depth) ' ')
           (32 - (2 * sp.sp_depth))
           sp.sp_name (sp.sp_dur *. 1e3) share))
    all;
  Buffer.contents buf
