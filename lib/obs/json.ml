(** A minimal JSON value type with a serialiser and parser, in the
    style of the repository's XML module: no external dependencies,
    byte offsets in errors, round-trip tested. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

(* ---------------- serialisation ---------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?indent v =
  let buf = Buffer.create 256 in
  let nl depth =
    match indent with
    | None -> ()
    | Some step ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (depth * step) ' ')
  in
  let rec emit depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (depth + 1);
            emit (depth + 1) item)
          items;
        nl depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (depth + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if indent <> None then Buffer.add_char buf ' ';
            emit (depth + 1) item)
          fields;
        nl depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (st.pos, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some code -> code
  | None -> error st "bad \\u escape"

(* encode a code point as UTF-8 *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_lit st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' -> add_utf8 buf (parse_hex4 st)
            | _ -> error st "bad escape");
            go ())
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string_lit st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string_lit st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          st.pos <- st.pos + 1;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

let parse_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> x = y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2)
           xs ys
  | _ -> false

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
