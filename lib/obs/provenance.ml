(** Compact provenance edges for witness-path reconstruction (see the
    interface).

    The store is one hash table from an interned (node id, fact id)
    pair to the edge that *first* created it.  First-wins matters: the
    solvers' worklists are FIFO, so the first recording of a pair is
    its breadth-first discovery — following predecessor links
    therefore yields an (approximately) shortest derivation, and since
    a predecessor pair always exists before the pair it derives, the
    chain is acyclic by construction (a step cap guards the walk
    anyway). *)

(** how a (node, fact) pair was derived from its predecessor *)
type kind =
  | Seed  (** entry-point seeding of the zero fact *)
  | Source  (** a source statement generated the first taint *)
  | Normal  (** intra-procedural flow function *)
  | Call  (** descent into a callee (argument passing) *)
  | Return  (** summary application / exit back into a caller *)
  | Call_to_return  (** caller-side flow across a call *)
  | Alias  (** backward alias search spawned at a heap write *)
  | Backward  (** a step of the backward alias solver *)
  | Inject  (** alias handed back to the forward solver *)

let string_of_kind = function
  | Seed -> "seed"
  | Source -> "source"
  | Normal -> "normal"
  | Call -> "call"
  | Return -> "return"
  | Call_to_return -> "call-to-return"
  | Alias -> "alias"
  | Backward -> "backward"
  | Inject -> "inject"

type edge = { pe_pred_node : int; pe_pred_fact : int; pe_kind : kind }

(* fd_obs sits below fd_util in the library stack, so the pair hash is
   local: the same multiply-xor mix the interning layer uses *)
module I2_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = (a * 0x01000193) lxor b
end)

type t = { edges : edge I2_tbl.t }

let create () = { edges = I2_tbl.create 1024 }
let size t = I2_tbl.length t.edges

(* rough live-size estimate: per binding one boxed (int, int) key
   (4 words), one edge record (4 words), and ~3 words of bucket
   overhead — 11 words *)
let approx_bytes t = I2_tbl.length t.edges * 11 * (Sys.word_size / 8)

let record t ~node ~fact ~pred_node ~pred_fact ~kind =
  let key = (node, fact) in
  if not (I2_tbl.mem t.edges key) then
    I2_tbl.replace t.edges key
      { pe_pred_node = pred_node; pe_pred_fact = pred_fact; pe_kind = kind }

let lookup t ~node ~fact = I2_tbl.find_opt t.edges (node, fact)

(* walk capped well above any realistic derivation depth; the budget
   bounds path edges at 2M, so 1M steps can only mean a logic error *)
let max_trace_steps = 1_000_000

let trace t ~node ~fact =
  let rec go acc steps node fact =
    match lookup t ~node ~fact with
    | None -> acc
    | Some e ->
        let acc = (node, fact, e.pe_kind) :: acc in
        if e.pe_pred_node < 0 || steps >= max_trace_steps then acc
        else go acc (steps + 1) e.pe_pred_node e.pe_pred_fact
  in
  go [] 0 node fact
