(** Fixed-size event rings and the flight recorder.

    The generic ring buffer keeps the last [capacity] pushed values,
    overwriting the oldest on wrap-around; it is single-writer and
    allocation-free on the push path.

    {!Flight} is the solver flight recorder built on it: every domain
    owns a private ring of {e lazy} events (closures rendered only at
    dump time), so the solvers can record worklist pops, edge
    insertions and budget ticks at full speed.  When a run ends badly —
    the budget expires, the degradation ladder steps down, a crash
    barrier catches an exception — the last-N-events context is dumped
    into the structured diagnostics. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] is an empty ring holding at most [capacity]
    values.  @raise Invalid_argument when [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** append a value, overwriting the oldest once full *)

val capacity : 'a t -> int

val length : 'a t -> int
(** values currently held ([min pushed capacity]) *)

val pushed : 'a t -> int
(** total values ever pushed (monotonic, survives wrap-around) *)

val to_list : 'a t -> 'a list
(** held values, oldest first *)

val clear : 'a t -> unit

(** The per-domain solver flight recorder. *)
module Flight : sig
  val default_capacity : int

  val record : (unit -> string) -> unit
  (** record a lazy event in the calling domain's ring; the closure is
      evaluated only if the ring is dumped, so hot loops pay one
      allocation and one store per event *)

  val mark : string -> unit
  (** record an already-rendered event (for cheap, rare markers such
      as solve start/stop) *)

  val dump : ?limit:int -> unit -> string list
  (** render the calling domain's held events, oldest first; [limit]
      keeps only the most recent [limit] events *)

  val dump_line : ?limit:int -> unit -> string
  (** the last [limit] (default 12) events joined with [" | "], with a
      ["(+k earlier)"] suffix when older events were elided — the
      compact form embedded in diagnostics and crash messages *)

  val clear : unit -> unit
  (** drop the calling domain's events (done at solve start so a dump
      never mixes two runs) *)

  val recorded : unit -> int
  (** total events recorded in the calling domain since the last
      {!clear} *)
end
