let stats_json () =
  match Metrics.to_json () with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "phases",
              Json.Obj
                (List.map
                   (fun (name, dur, n) ->
                     ( name,
                       Json.Obj
                         [ ("seconds", Json.Float dur); ("count", Json.Int n) ]
                     ))
                   (Trace.aggregate ())) );
          ])
  | other -> other

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_stats_json ~path =
  write_file path (Json.to_string ~indent:1 (stats_json ()) ^ "\n")

let write_chrome_trace ~path = write_file path (Trace.to_chrome_string () ^ "\n")
