let stats_json ?(extra = []) () =
  match Metrics.to_json () with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "phases",
              Json.Obj
                (List.map
                   (fun (name, dur, n) ->
                     ( name,
                       Json.Obj
                         [ ("seconds", Json.Float dur); ("count", Json.Int n) ]
                     ))
                   (Trace.aggregate ())) );
          ]
        @ extra)
  | other -> other

(* path "-" writes to stdout, the Unix convention the runners expose
   as [--stats-json -] / [--trace-out -].  File writes are atomic:
   contents land in a temp file in the same directory which is then
   renamed over the target, so a crash (or SIGKILL) mid-flush leaves
   either the old file or the new one — never a half-written JSON. *)
let write_file path contents =
  if String.equal path "-" then begin
    print_string contents;
    flush stdout
  end
  else begin
    let dir = Filename.dirname path in
    let tmp =
      try Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
      with Sys_error _ ->
        (* unwritable temp slot in the target directory: surface the
           target path, not the temp name *)
        raise (Sys_error (path ^ ": cannot create temporary file in " ^ dir))
    in
    let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () -> output_string oc contents)
     with e ->
       cleanup ();
       raise e);
    try Sys.rename tmp path
    with e ->
      cleanup ();
      raise e
  end

let write_stats_json ?extra ~path () =
  write_file path (Json.to_string ~indent:1 (stats_json ?extra ()) ^ "\n")

let write_chrome_trace ~path = write_file path (Trace.to_chrome_string () ^ "\n")
