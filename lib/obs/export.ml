let stats_json ?(extra = []) () =
  match Metrics.to_json () with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ( "phases",
              Json.Obj
                (List.map
                   (fun (name, dur, n) ->
                     ( name,
                       Json.Obj
                         [ ("seconds", Json.Float dur); ("count", Json.Int n) ]
                     ))
                   (Trace.aggregate ())) );
          ]
        @ extra)
  | other -> other

(* path "-" writes to stdout, the Unix convention the runners expose
   as [--stats-json -] / [--trace-out -] *)
let write_file path contents =
  if String.equal path "-" then begin
    print_string contents;
    flush stdout
  end
  else begin
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  end

let write_stats_json ?extra ~path () =
  write_file path (Json.to_string ~indent:1 (stats_json ?extra ()) ^ "\n")

let write_chrome_trace ~path = write_file path (Trace.to_chrome_string () ^ "\n")
