(** The global metrics registry: named counters, gauges and log-scale
    histograms with O(1) hot-path updates (see the interface for the
    usage discipline).

    Domain-safety: counters and gauges are [Atomic.t] cells, histogram
    observations take a per-histogram mutex, and the name→handle
    registries are guarded by one registry mutex — so app-level
    parallel runs (see {!Fd_util.Pool}) can share the registry without
    torn updates.  Snapshots are not a consistent cut across metrics
    (each cell is read atomically but at slightly different times),
    which is fine for reporting. *)

type counter = int Atomic.t
type gauge = float Atomic.t

(* log2 buckets over seconds: bucket [i] covers
   (2^(i-bucket_offset-1), 2^(i-bucket_offset)], i.e. from ~1µs up to
   ~2^11 s; out-of-range samples clamp to the edge buckets *)
let bucket_offset = 20
let bucket_count = 32

type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register tbl name fresh =
  locked (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
          let v = fresh () in
          Hashtbl.replace tbl name v;
          v)

let counter name = register counters name (fun () -> Atomic.make 0)
let gauge name = register gauges name (fun () -> Atomic.make 0.)

let histogram name =
  register histograms name (fun () ->
      {
        h_lock = Mutex.create ();
        h_count = 0;
        h_sum = 0.;
        h_min = infinity;
        h_max = neg_infinity;
        h_buckets = Array.make bucket_count 0;
      })

let incr c = Atomic.incr c

let add c n = ignore (Atomic.fetch_and_add c n)

let value c = Atomic.get c
let set g v = Atomic.set g v
let set_int g v = Atomic.set g (float_of_int v)
let gauge_value g = Atomic.get g

let bucket_index v =
  if v <= 0. then 0
  else
    let i = bucket_offset + int_of_float (Float.ceil (Float.log2 v)) in
    if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i

let bucket_upper i = Float.pow 2. (float_of_int (i - bucket_offset))

let observe h v =
  Mutex.lock h.h_lock;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  Mutex.unlock h.h_lock

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let nonempty_buckets h =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_upper i, h.h_buckets.(i)) :: !acc
  done;
  !acc

let hist_buckets = nonempty_buckets

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.h_lock;
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Array.fill h.h_buckets 0 bucket_count 0;
          Mutex.unlock h.h_lock)
        histograms)

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_summary) list;
}

and hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* quantile estimate from the log-scale buckets: find the bucket
   holding the rank-[q·count] sample and interpolate linearly within
   its (lower, upper] range, clamping to the observed min/max (which
   are exact).  Must be called with [h.h_lock] held. *)
let quantile_locked h q =
  if h.h_count = 0 then 0.
  else begin
    let rank = q *. float_of_int h.h_count in
    let i = ref 0 and cum = ref 0 in
    while !i < bucket_count - 1 && float_of_int (!cum + h.h_buckets.(!i)) < rank do
      cum := !cum + h.h_buckets.(!i);
      i := !i + 1
    done;
    let in_bucket = h.h_buckets.(!i) in
    let est =
      if in_bucket = 0 then bucket_upper !i
      else
        let lower = if !i = 0 then 0. else bucket_upper (!i - 1) in
        let upper = bucket_upper !i in
        let frac = (rank -. float_of_int !cum) /. float_of_int in_bucket in
        lower +. (frac *. (upper -. lower))
    in
    Float.min h.h_max (Float.max h.h_min est)
  end

let snapshot () =
  locked (fun () ->
      {
        sn_counters = sorted_bindings counters Atomic.get;
        sn_gauges = sorted_bindings gauges Atomic.get;
        sn_histograms =
          sorted_bindings histograms (fun h ->
              Mutex.lock h.h_lock;
              let hs =
                {
                  hs_count = h.h_count;
                  hs_sum = h.h_sum;
                  hs_min = (if h.h_count = 0 then 0. else h.h_min);
                  hs_max = (if h.h_count = 0 then 0. else h.h_max);
                  hs_buckets = nonempty_buckets h;
                  hs_p50 = quantile_locked h 0.50;
                  hs_p90 = quantile_locked h 0.90;
                  hs_p99 = quantile_locked h 0.99;
                }
              in
              Mutex.unlock h.h_lock;
              hs);
      })

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> Atomic.get c
      | None -> 0)

let histogram_summary name =
  let sn = snapshot () in
  List.assoc_opt name sn.sn_histograms

(* ------------------------------------------------------------------ *)
(* Snapshot difference: per-request/per-app scoping without [reset].   *)
(* ------------------------------------------------------------------ *)

(* list-based twin of [quantile_locked]: estimate the rank-[q·count]
   sample from (upper_bound, count) buckets, interpolating linearly
   inside the bucket holding the rank and clamping to [lo, hi] *)
let quantile_of_buckets ~count ~lo ~hi buckets q =
  if count = 0 then 0.
  else begin
    let rank = q *. float_of_int count in
    let rec go cum = function
      | [] -> hi
      | (upper, n) :: rest ->
          if float_of_int (cum + n) >= rank || rest = [] then
            let lower =
              (* the log-scale buckets are contiguous powers of two *)
              if upper <= 0. then 0. else upper /. 2.
            in
            if n = 0 then upper
            else lower +. ((rank -. float_of_int cum) /. float_of_int n
                           *. (upper -. lower))
          else go (cum + n) rest
    in
    Float.min hi (Float.max lo (go 0 buckets))
  end

let diff_hist (a : hist_summary) (b : hist_summary) =
  let count = max 0 (a.hs_count - b.hs_count) in
  if count = 0 then
    { hs_count = 0; hs_sum = 0.; hs_min = 0.; hs_max = 0.; hs_buckets = [];
      hs_p50 = 0.; hs_p90 = 0.; hs_p99 = 0. }
  else if b.hs_count = 0 then a
  else begin
    let buckets =
      List.filter_map
        (fun (le, n) ->
          let before =
            Option.value (List.assoc_opt le b.hs_buckets) ~default:0
          in
          if n - before > 0 then Some (le, n - before) else None)
        a.hs_buckets
    in
    (* exact extrema are lost in a diff: bound them by the surviving
       buckets' edges (clamped to the cumulative observed range) *)
    let lo =
      match buckets with
      | (le, _) :: _ -> Float.max a.hs_min (if le <= 0. then 0. else le /. 2.)
      | [] -> a.hs_min
    in
    let hi =
      match List.rev buckets with
      | (le, _) :: _ -> Float.min a.hs_max le
      | [] -> a.hs_max
    in
    {
      hs_count = count;
      hs_sum = Float.max 0. (a.hs_sum -. b.hs_sum);
      hs_min = lo;
      hs_max = hi;
      hs_buckets = buckets;
      hs_p50 = quantile_of_buckets ~count ~lo ~hi buckets 0.50;
      hs_p90 = quantile_of_buckets ~count ~lo ~hi buckets 0.90;
      hs_p99 = quantile_of_buckets ~count ~lo ~hi buckets 0.99;
    }
  end

let diff (after : snapshot) (before : snapshot) =
  {
    sn_counters =
      List.map
        (fun (name, v) ->
          let b = Option.value (List.assoc_opt name before.sn_counters) ~default:0 in
          (name, max 0 (v - b)))
        after.sn_counters;
    sn_gauges = after.sn_gauges;
    sn_histograms =
      List.map
        (fun (name, hs) ->
          match List.assoc_opt name before.sn_histograms with
          | Some b -> (name, diff_hist hs b)
          | None -> (name, hs))
        after.sn_histograms;
  }

let with_delta f =
  let before = snapshot () in
  let v = f () in
  (v, diff (snapshot ()) before)

let snapshot_to_json sn =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) sn.sn_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) sn.sn_gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, hs) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int hs.hs_count);
                     ("sum", Json.Float hs.hs_sum);
                     ("min", Json.Float hs.hs_min);
                     ("max", Json.Float hs.hs_max);
                     ("p50", Json.Float hs.hs_p50);
                     ("p90", Json.Float hs.hs_p90);
                     ("p99", Json.Float hs.hs_p99);
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (le, n) ->
                              Json.Obj
                                [ ("le", Json.Float le); ("count", Json.Int n) ])
                            hs.hs_buckets) );
                   ] ))
             sn.sn_histograms) );
    ]

let to_json () = snapshot_to_json (snapshot ())
