(** The global metrics registry: named counters, gauges and log-scale
    histograms with O(1) hot-path updates (see the interface for the
    usage discipline). *)

type counter = { mutable c_val : int }
type gauge = { mutable g_val : float }

(* log2 buckets over seconds: bucket [i] covers
   (2^(i-bucket_offset-1), 2^(i-bucket_offset)], i.e. from ~1µs up to
   ~2^11 s; out-of-range samples clamp to the edge buckets *)
let bucket_offset = 20
let bucket_count = 32

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_val = 0 } in
      Hashtbl.replace counters name c;
      c

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_val = 0. } in
      Hashtbl.replace gauges name g;
      g

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make bucket_count 0;
        }
      in
      Hashtbl.replace histograms name h;
      h

let incr c = c.c_val <- c.c_val + 1
let add c n = c.c_val <- c.c_val + n
let value c = c.c_val
let set g v = g.g_val <- v
let set_int g v = g.g_val <- float_of_int v
let gauge_value g = g.g_val

let bucket_index v =
  if v <= 0. then 0
  else
    let i = bucket_offset + int_of_float (Float.ceil (Float.log2 v)) in
    if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i

let bucket_upper i = Float.pow 2. (float_of_int (i - bucket_offset))

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let hist_count h = h.h_count
let hist_sum h = h.h_sum

let nonempty_buckets h =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_upper i, h.h_buckets.(i)) :: !acc
  done;
  !acc

let hist_buckets = nonempty_buckets

let reset () =
  Hashtbl.iter (fun _ c -> c.c_val <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_val <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      Array.fill h.h_buckets 0 bucket_count 0)
    histograms

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_summary) list;
}

and hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : (float * int) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  {
    sn_counters = sorted_bindings counters (fun c -> c.c_val);
    sn_gauges = sorted_bindings gauges (fun g -> g.g_val);
    sn_histograms =
      sorted_bindings histograms (fun h ->
          {
            hs_count = h.h_count;
            hs_sum = h.h_sum;
            hs_min = (if h.h_count = 0 then 0. else h.h_min);
            hs_max = (if h.h_count = 0 then 0. else h.h_max);
            hs_buckets = nonempty_buckets h;
          });
  }

let counter_value name =
  match Hashtbl.find_opt counters name with Some c -> c.c_val | None -> 0

let snapshot_to_json sn =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) sn.sn_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) sn.sn_gauges) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, hs) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int hs.hs_count);
                     ("sum", Json.Float hs.hs_sum);
                     ("min", Json.Float hs.hs_min);
                     ("max", Json.Float hs.hs_max);
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (le, n) ->
                              Json.Obj
                                [ ("le", Json.Float le); ("count", Json.Int n) ])
                            hs.hs_buckets) );
                   ] ))
             sn.sn_histograms) );
    ]

let to_json () = snapshot_to_json (snapshot ())
