(** The per-method solver profiler (see the interface).

    A process-global registry like {!Metrics}: cells are keyed by
    method name, resolved once per method by the solver (which caches
    the handle next to its per-method view) and then updated with
    atomic operations, so engines profiling on different domains can
    share the registry.  Everything is opt-in: with profiling off the
    solvers never touch this module on the hot path. *)

type cell = {
  c_name : string;
  c_pops : int Atomic.t;  (** worklist pops attributed to the method *)
  c_facts : int Atomic.t;  (** distinct path edges created at its nodes *)
  c_time : float Atomic.t;  (** monotonic seconds spent in its pops *)
}

let lock = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 64

let cell name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt cells name with
    | Some c -> c
    | None ->
        let c =
          {
            c_name = name;
            c_pops = Atomic.make 0;
            c_facts = Atomic.make 0;
            c_time = Atomic.make 0.;
          }
        in
        Hashtbl.replace cells name c;
        c
  in
  Mutex.unlock lock;
  c

let now () = Unix.gettimeofday ()

let rec add_float a v =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then add_float a v

let add_pop c ~seconds =
  Atomic.incr c.c_pops;
  add_float c.c_time seconds

let add_fact c = Atomic.incr c.c_facts

let reset () =
  Mutex.lock lock;
  Hashtbl.reset cells;
  Mutex.unlock lock

type entry = {
  e_name : string;
  e_pops : int;
  e_facts : int;
  e_seconds : float;
}

let entries () =
  Mutex.lock lock;
  let es =
    Hashtbl.fold
      (fun _ c acc ->
        {
          e_name = c.c_name;
          e_pops = Atomic.get c.c_pops;
          e_facts = Atomic.get c.c_facts;
          e_seconds = Atomic.get c.c_time;
        }
        :: acc)
      cells []
  in
  Mutex.unlock lock;
  (* hottest first; ties broken by name so output is deterministic *)
  List.sort
    (fun a b ->
      match compare b.e_seconds a.e_seconds with
      | 0 -> compare a.e_name b.e_name
      | c -> c)
    es

let top ~k = List.filteri (fun i _ -> i < k) (entries ())
let enabled () = Hashtbl.length cells > 0

let to_json ?(k = 20) () =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("method", Json.String e.e_name);
             ("pops", Json.Int e.e_pops);
             ("facts", Json.Int e.e_facts);
             ("seconds", Json.Float e.e_seconds);
           ])
       (top ~k))

(* collapsed-stack format, one frame stack per line with a sample
   weight — exactly what flamegraph.pl / speedscope / inferno consume.
   The solver attributes flat per-method time, so each line is a
   two-frame stack rooted at the process name; weights are in
   microseconds (integers, as the tools expect). *)
let collapsed () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let usec = int_of_float (e.e_seconds *. 1e6) in
      if usec > 0 then
        Buffer.add_string buf
          (Printf.sprintf "flowdroid;%s %d\n" e.e_name usec))
    (entries ());
  Buffer.contents buf

let write_collapsed ~path =
  let write oc = output_string oc (collapsed ()) in
  if String.equal path "-" then begin
    write stdout;
    flush stdout
  end
  else begin
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)
  end
