(** A minimal JSON value type with a serialiser and parser, used by the
    observability layer for metric snapshots and Chrome trace files.
    Self-contained so that [fd_obs] stays dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(** byte offset of the failure and a description *)

val to_string : ?indent:int -> t -> string
(** [to_string v] serialises [v]; with [~indent] the output is
    pretty-printed with that step.  Floats are emitted with enough
    digits to round-trip; NaN and infinities degrade to [null]. *)

val parse_string : string -> t
(** [parse_string s] parses one JSON document.
    @raise Parse_error on malformed input. *)

val equal : t -> t -> bool
(** structural equality; object member order is significant *)

val member : string -> t -> t option
(** [member k v] is the value of field [k] when [v] is an object *)
