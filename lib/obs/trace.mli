(** Span-based phase tracing for the analysis pipeline.

    Spans nest: [with_span "taint.solve" f] records one span whose
    parent is whatever span is open on this thread of execution when it
    starts.  The recorded tree can be exported as

    - Chrome [trace_event] JSON ({!to_chrome_json}) — load the file in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto};
    - a plain-text tree summary ({!summary}) with per-span durations;
    - per-phase aggregate durations ({!aggregate}) for stats JSON.

    Timestamps are wall-clock, relative to the first span after the
    last {!reset}.

    Domain-safety: each domain records into its own store (hot path is
    lock-free); read-outs merge all stores in worker order, and the
    Chrome export labels each span with its worker's tid so parallel
    app runs render as separate tracks. *)

type span = {
  sp_name : string;
  sp_start : float;  (** seconds since the trace epoch *)
  sp_dur : float;  (** seconds; 0. while still open *)
  sp_depth : int;  (** nesting depth, 0 = top level *)
  sp_parent : int;  (** index of the parent span, -1 at top level *)
}

val begin_span : string -> unit
val end_span : unit -> unit
(** @raise Invalid_argument when no span is open *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span; the span is closed even
    when [f] raises. *)

val depth : unit -> int
(** number of currently open spans *)

val spans : unit -> span list
(** completed and open spans, in start order *)

val aggregate : unit -> (string * float * int) list
(** [(name, total_seconds, count)] per distinct span name, sorted by
    name.  Nested spans count toward their own name only. *)

val reset : unit -> unit
(** drop all recorded spans and re-arm the epoch; open spans are
    discarded *)

val to_chrome_json : unit -> Json.t
(** the ["traceEvents"] document: one complete ("ph":"X") event per
    span, timestamps in microseconds *)

val to_chrome_string : unit -> string

val summary : unit -> string
(** indented text tree: one line per span with duration and the share
    of its parent *)
