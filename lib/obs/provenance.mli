(** Provenance edges: how each (node, fact) pair entered the solver.

    When enabled ({!Fd_core.Config.t.provenance} / [--provenance]),
    the solvers record one compact edge per distinct path edge they
    create: the predecessor (node, fact) pair it was derived from and
    the flow-function kind that derived it.  Pairs are identified by
    the solver's own interned integer ids, so an edge is three ints
    and a tag.

    Recording is {e first-wins}: with a FIFO worklist the first
    derivation of a pair is its breadth-first discovery, so walking
    predecessor links with {!trace} reconstructs an (approximately)
    shortest derivation — the witness path surfaced by
    [flowdroid_cli --explain]. *)

(** the flow-function kind that derived a pair from its predecessor *)
type kind =
  | Seed  (** entry-point seeding of the zero fact *)
  | Source  (** a source statement generated the first taint *)
  | Normal  (** intra-procedural flow function *)
  | Call  (** descent into a callee (argument passing) *)
  | Return  (** summary application / exit back into a caller *)
  | Call_to_return  (** caller-side flow across a call *)
  | Alias  (** backward alias search spawned at a heap write *)
  | Backward  (** a step of the backward alias solver *)
  | Inject  (** alias handed back to the forward solver *)

val string_of_kind : kind -> string

type edge = { pe_pred_node : int; pe_pred_fact : int; pe_kind : kind }

type t

val create : unit -> t

val record :
  t ->
  node:int ->
  fact:int ->
  pred_node:int ->
  pred_fact:int ->
  kind:kind ->
  unit
(** record how [(node, fact)] was derived; first-wins — later
    derivations of a pair already recorded are ignored.  A negative
    [pred_node] marks a root (seed) with no predecessor. *)

val lookup : t -> node:int -> fact:int -> edge option

val trace : t -> node:int -> fact:int -> (int * int * kind) list
(** the derivation chain of [(node, fact)], oldest step first and
    ending with the pair itself; each element is [(node, fact, kind)]
    where [kind] says how that pair was derived from the previous
    element.  Empty when the pair was never recorded. *)

val size : t -> int
(** recorded edges *)

val approx_bytes : t -> int
(** rough live heap size of the store, for the memory gauges *)
