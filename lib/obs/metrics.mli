(** A process-global registry of named counters, gauges and log-scale
    latency histograms.

    Hot-path discipline: look a metric up {e once} at module
    initialisation ([let c = Metrics.counter "ifds.path_edges"]) and
    increment the returned handle — [incr] is a single unboxed field
    mutation, cheap enough for the IFDS inner loop.

    Metric names are stable, dot-namespaced identifiers
    ([ifds.path_edges], [bidi.alias_queries], [cg.edges], …); the
    snapshot and JSON export sort them so output is deterministic.
    [reset] zeroes every value but keeps registrations, so tests (and
    successive benchmark sections) are isolated from each other.

    The registry is domain-safe: counters and gauges are atomic cells,
    histograms observe under a per-histogram mutex, and registration
    is serialised — parallel app-level runs ({!Fd_util.Pool}) may
    share every handle. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** [counter name] registers (or retrieves) the counter [name]. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
(** O(1): one integer field increment *)

val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** [observe h v] records one sample (for latencies, in seconds) into
    the power-of-two bucket of [v]. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its wall-clock duration. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_buckets : histogram -> (float * int) list
(** [(upper_bound_seconds, count)] for each non-empty bucket *)

val reset : unit -> unit
(** zero every registered metric, keeping registrations *)

(** an immutable copy of every registered metric's current value *)
type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;
  sn_histograms : (string * hist_summary) list;
}

and hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;  (** 0. when empty *)
  hs_max : float;
  hs_buckets : (float * int) list;
  hs_p50 : float;
      (** quantile estimates, linearly interpolated within the
          log-scale bucket holding the rank and clamped to
          [[min, max]]; 0. when empty *)
  hs_p90 : float;
  hs_p99 : float;
}

val snapshot : unit -> snapshot

val counter_value : string -> int
(** [counter_value name] is the current value, 0 when unregistered
    (for tests and contract checks). *)

val histogram_summary : string -> hist_summary option
(** [histogram_summary name] is the named histogram's current summary
    (count/sum/extrema/quantiles), or [None] when unregistered — the
    accessor the service's [stats] verb reports latency from. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff after before] is the work that happened between the two
    snapshots: counters and histogram counts/sums/buckets subtract
    (clamped at zero), gauges keep their [after] value (they are
    levels, not totals), and histogram quantiles/extrema are
    re-estimated from the surviving buckets.

    This is the domain-safe replacement for the
    {!reset}-before-each-unit idiom: [reset] zeroes every concurrent
    run's baseline, while snapshot-and-diff never mutates the shared
    registry.  Under concurrency the delta attributes {e all} work in
    the window — including other domains' — to the window; callers
    that need exact per-request numbers should read them from the
    engine's own result record and use the delta for aggregates. *)

val with_delta : (unit -> 'a) -> 'a * snapshot
(** [with_delta f] runs [f] and returns its result together with
    [diff] of the registry around it. *)

val snapshot_to_json : snapshot -> Json.t
val to_json : unit -> Json.t
(** [to_json ()] = [snapshot_to_json (snapshot ())] *)
