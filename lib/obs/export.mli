(** File export of the observability state, shared by the CLI, the
    benchmark runners and the bench harness. *)

val stats_json : unit -> Json.t
(** one object combining the metric registry snapshot ({!Metrics}) and
    the per-phase aggregate durations ({!Trace.aggregate}):
    [{"counters": …, "gauges": …, "histograms": …, "phases": {name:
    {"seconds": s, "count": n}}}] *)

val write_stats_json : path:string -> unit
(** write [stats_json ()] pretty-printed to [path] *)

val write_chrome_trace : path:string -> unit
(** write {!Trace.to_chrome_string} to [path] *)
