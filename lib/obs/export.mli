(** File export of the observability state, shared by the CLI, the
    benchmark runners and the bench harness. *)

val stats_json : ?extra:(string * Json.t) list -> unit -> Json.t
(** one object combining the metric registry snapshot ({!Metrics}) and
    the per-phase aggregate durations ({!Trace.aggregate}):
    [{"counters": …, "gauges": …, "histograms": …, "phases": {name:
    {"seconds": s, "count": n}}}].  [extra] fields (e.g. witness paths
    or the profiler's hot-method table) are appended to the object. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes [contents] to [path] atomically:
    a temp file in the same directory is written and then renamed over
    the target, so a crash or kill mid-flush never leaves a
    half-written file.  The path ["-"] writes to stdout instead. *)

val write_stats_json : ?extra:(string * Json.t) list -> path:string -> unit -> unit
(** write [stats_json ()] pretty-printed to [path] (["-"] = stdout) *)

val write_chrome_trace : path:string -> unit
(** write {!Trace.to_chrome_string} to [path] (["-"] = stdout) *)
