(** The per-method solver profiler.

    Attributes worklist pops, created path edges ("facts") and
    monotonic wall time to the method being processed, in both solver
    loops.  The registry is process-global and domain-safe (atomic
    cells), mirroring {!Metrics}: a solver resolves one {!cell} handle
    per method and caches it, so the profiled hot path costs two
    atomic updates and one clock read per pop.

    Profiling is opt-in ({!Fd_core.Config.t.profile} /
    [--profile-out]); with it off the solvers never call into this
    module. *)

type cell
(** accumulator for one method *)

val cell : string -> cell
(** [cell name] is the accumulator for method [name], registered on
    first use (same-name calls return the same cell) *)

val now : unit -> float
(** a wall-clock timestamp in seconds, for timing pops (re-exported
    here so profiled libraries need no [unix] dependency of their
    own) *)

val add_pop : cell -> seconds:float -> unit
(** account one worklist pop and its processing time *)

val add_fact : cell -> unit
(** account one path edge created at a node of this method *)

val reset : unit -> unit
(** drop every cell (per-run isolation, like {!Metrics.reset}) *)

type entry = {
  e_name : string;
  e_pops : int;
  e_facts : int;
  e_seconds : float;
}

val entries : unit -> entry list
(** all methods, hottest (most time) first; ties by name so the order
    is deterministic *)

val top : k:int -> entry list
(** the [k] hottest methods *)

val enabled : unit -> bool
(** whether any cell has been registered since the last reset (i.e. a
    profiled run happened) *)

val to_json : ?k:int -> unit -> Json.t
(** the top-[k] (default 20) hot-method table:
    [[{"method", "pops", "facts", "seconds"}, …]] *)

val collapsed : unit -> string
(** the profile in collapsed-stack format
    (["flowdroid;<method> <microseconds>"] per line), rendering
    directly in flamegraph.pl, inferno or speedscope *)

val write_collapsed : path:string -> unit
(** write {!collapsed} to [path], or to stdout when [path] is ["-"] *)
