(** A minimal synchronous client for the serve daemon: one request in
    flight per call, replies matched by arrival order.  Used by
    [flowdroid_client], the serve test-suite and the load bench (which
    opens one client per concurrent lane). *)

type t

val connect : string -> t
(** [connect socket_path]
    @raise Unix.Unix_error when the daemon is not listening. *)

val close : t -> unit
(** idempotent *)

val request : t -> Fd_obs.Json.t -> Fd_obs.Json.t
(** [request c v] writes one frame and blocks for the next reply
    frame.
    @raise Protocol.Closed when the daemon hung up first. *)

val ping : t -> bool
val health : t -> Fd_obs.Json.t
val stats : t -> Fd_obs.Json.t

val drain : t -> Fd_obs.Json.t
(** ask the daemon to drain (it keeps serving in-flight work) *)

val analyze : t -> Protocol.analyze -> Fd_obs.Json.t
(** encode with {!Protocol.json_of_analyze}, send, await the reply *)
