(** Bounded MPMC blocking queue (see the .mli for the policy). *)

type 'a t = {
  q_lock : Mutex.t;
  q_nonempty : Condition.t;
  q_items : 'a Queue.t;
  mutable q_front : 'a list;  (** retry lane, drained before q_items *)
  q_capacity : int;
  mutable q_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Squeue.create: capacity < 1";
  {
    q_lock = Mutex.create ();
    q_nonempty = Condition.create ();
    q_items = Queue.create ();
    q_front = [];
    q_capacity = capacity;
    q_closed = false;
  }

let capacity q = q.q_capacity

let locked q f =
  Mutex.lock q.q_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.q_lock) f

let depth q = List.length q.q_front + Queue.length q.q_items
let length q = locked q (fun () -> depth q)

let try_push q x =
  locked q (fun () ->
      if q.q_closed || depth q >= q.q_capacity then false
      else begin
        Queue.push x q.q_items;
        Condition.signal q.q_nonempty;
        true
      end)

let push_force q x =
  locked q (fun () ->
      if not q.q_closed then begin
        Queue.push x q.q_items;
        Condition.signal q.q_nonempty
      end)

let push_front q x =
  locked q (fun () ->
      if not q.q_closed then begin
        q.q_front <- x :: q.q_front;
        Condition.signal q.q_nonempty
      end)

let pop q =
  locked q (fun () ->
      let rec wait () =
        match q.q_front with
        | x :: rest ->
            q.q_front <- rest;
            Some x
        | [] -> (
            match Queue.take_opt q.q_items with
            | Some x -> Some x
            | None ->
                if q.q_closed then None
                else begin
                  Condition.wait q.q_nonempty q.q_lock;
                  wait ()
                end)
      in
      wait ())

let close q =
  locked q (fun () ->
      q.q_closed <- true;
      Condition.broadcast q.q_nonempty)

let closed q = locked q (fun () -> q.q_closed)
