module Json = Fd_obs.Json

type t = { cl_fd : Unix.file_descr; mutable cl_closed : bool }

let connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { cl_fd = fd; cl_closed = false }

let close c =
  if not c.cl_closed then begin
    c.cl_closed <- true;
    try Unix.close c.cl_fd with Unix.Unix_error _ -> ()
  end

let request c v =
  Protocol.write_frame c.cl_fd v;
  match Protocol.read_frame c.cl_fd with
  | Some reply -> reply
  | None -> raise Protocol.Closed

let verb c name = request c (Json.Obj [ ("verb", Json.String name) ])

let ping c =
  match verb c "ping" with
  | Json.Obj _ as r -> Json.member "ok" r = Some (Json.Bool true)
  | _ -> false

let health c = verb c "health"
let stats c = verb c "stats"
let drain c = verb c "drain"
let analyze c a = request c (Protocol.json_of_analyze a)
