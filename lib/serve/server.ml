(** The daemon core (see the .mli for the architecture overview).

    Concurrency layout:

    - one {e accept} systhread multiplexing on the listening socket
      with a short select timeout so shutdown is observed promptly;
    - one systhread {e per connection} reading frames; immediate verbs
      (ping/health/stats/drain, rejections) reply inline, analyze
      requests are pushed onto the bounded work queue;
    - [sv_workers] {e worker domains} popping the queue; each attempt
      runs under {!Fd_resilience.Barrier} with a fresh per-request
      {!Fd_resilience.Budget};
    - one {e supervisor} systhread consuming worker-death events,
      respawning the dead domain and re-admitting its request.

    Exactly-one-reply is enforced with an [Atomic.compare_and_set] on
    the request's replied flag; the connection write side is guarded
    by a per-connection mutex plus a pending-reply refcount so a
    worker can never write to (or a reader close) a file descriptor
    that has been recycled. *)

module Json = Fd_obs.Json
module Metrics = Fd_obs.Metrics
module Budget = Fd_resilience.Budget
module Barrier = Fd_resilience.Barrier
module Chaos = Fd_resilience.Chaos
module Outcome = Fd_resilience.Outcome
module Apk = Fd_frontend.Apk
module Gen = Fd_appgen.Generator
module Config = Fd_core.Config
module Infoflow = Fd_core.Infoflow

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_requests = Metrics.counter "serve.requests"
let m_replies = Metrics.counter "serve.replies"
let m_overloaded = Metrics.counter "serve.rejected_overloaded"
let m_draining_rejects = Metrics.counter "serve.rejected_draining"
let m_bad_requests = Metrics.counter "serve.bad_requests"
let m_retries = Metrics.counter "serve.retries"
let m_worker_restarts = Metrics.counter "serve.worker_restarts"
let m_client_gone = Metrics.counter "serve.client_gone"
let m_out_precise = Metrics.counter "serve.outcome.precise"
let m_out_degraded = Metrics.counter "serve.outcome.degraded"
let m_out_partial = Metrics.counter "serve.outcome.partial"
let m_out_failed = Metrics.counter "serve.outcome.failed"
let m_out_cancelled = Metrics.counter "serve.outcome.cancelled"
let m_template_hits = Metrics.counter "serve.template_hits"
let m_template_misses = Metrics.counter "serve.template_misses"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let g_in_flight = Metrics.gauge "serve.in_flight"
let h_request = Metrics.histogram "serve.request_seconds"
let h_queue_wait = Metrics.histogram "serve.queue_wait_seconds"
let h_solve = Metrics.histogram "serve.solve_seconds"

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)
(* ------------------------------------------------------------------ *)

type ruleset = {
  rs_defs : Fd_frontend.Sourcesink.t;
  rs_wrappers : Fd_frontend.Rules.t;
  rs_natives : Fd_frontend.Rules.t;
}

let default_ruleset () =
  {
    rs_defs = Fd_frontend.Sourcesink.default ();
    rs_wrappers = Fd_frontend.Rules.default_wrappers ();
    rs_natives = Fd_frontend.Rules.default_natives ();
  }

(* ------------------------------------------------------------------ *)
(* per-rule-set warm Scene templates                                   *)
(* ------------------------------------------------------------------ *)

(* Keyed by the rule set's content digest, so two names binding
   identical rules share one warm template.  A worker picking up a
   request clones the cached template ([Apk.load ~template]) instead
   of re-deriving one from the framework skeleton; the first request
   under a digest pays the derivation (a miss), every later one is a
   hit.  [serve.template_{hits,misses}] make the amortisation visible
   in the [stats] verb. *)

let rules_digest rs =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [
            Fd_frontend.Sourcesink.digest rs.rs_defs;
            Fd_frontend.Rules.digest rs.rs_wrappers;
            Fd_frontend.Rules.digest rs.rs_natives;
          ]))

type templates = {
  tc_lock : Mutex.t;
  tc_scenes : (string, Fd_ir.Scene.t) Hashtbl.t;  (** digest → template *)
  tc_digests : (string, string) Hashtbl.t;  (** rule-set name → digest *)
}

let templates_make () =
  {
    tc_lock = Mutex.create ();
    tc_scenes = Hashtbl.create 4;
    tc_digests = Hashtbl.create 4;
  }

let template_for tc ~rules_name rs =
  Mutex.lock tc.tc_lock;
  let digest =
    match Hashtbl.find_opt tc.tc_digests rules_name with
    | Some d -> d
    | None ->
        let d = rules_digest rs in
        Hashtbl.add tc.tc_digests rules_name d;
        d
  in
  let scene =
    match Hashtbl.find_opt tc.tc_scenes digest with
    | Some s ->
        Metrics.incr m_template_hits;
        s
    | None ->
        Metrics.incr m_template_misses;
        let s = Fd_frontend.Framework.fresh_scene () in
        Hashtbl.add tc.tc_scenes digest s;
        s
  in
  Mutex.unlock tc.tc_lock;
  scene

type config = {
  sv_socket : string;
  sv_workers : int;
  sv_queue_capacity : int;
  sv_max_frame_bytes : int;
  sv_default_deadline_s : float;
  sv_max_attempts : int;
  sv_backoff_base_s : float;
  sv_backoff_cap_s : float;
  sv_drain_grace_s : float;
  sv_chaos_rate : float;
  sv_chaos_seed : int;
  sv_base_config : Config.t;
  sv_rules : (string * ruleset) list;
  sv_attempt_hook : (string -> int -> unit) option;
}

let default_config ~socket =
  {
    sv_socket = socket;
    sv_workers = 2;
    sv_queue_capacity = 64;
    sv_max_frame_bytes = Protocol.default_max_frame;
    sv_default_deadline_s = 30.;
    sv_max_attempts = 2;
    sv_backoff_base_s = 0.01;
    sv_backoff_cap_s = 1.;
    sv_drain_grace_s = 5.;
    sv_chaos_rate = 0.;
    sv_chaos_seed = 42;
    sv_base_config = Config.default;
    sv_rules = [];
    sv_attempt_hook = None;
  }

(* ------------------------------------------------------------------ *)
(* connections                                                         *)
(* ------------------------------------------------------------------ *)

(* The reader thread closes the fd only once it has seen EOF *and* no
   reply is pending anymore; workers holding a reply capability keep
   the connection alive via [c_pending].  Without this refcount a
   slow worker could write into a recycled descriptor. *)
type conn = {
  c_fd : Unix.file_descr;
  c_wlock : Mutex.t;  (** serialises frame writes *)
  c_lock : Mutex.t;  (** guards the three fields below *)
  mutable c_pending : int;
  mutable c_eof : bool;
  mutable c_closed : bool;
}

let conn_make fd =
  {
    c_fd = fd;
    c_wlock = Mutex.create ();
    c_lock = Mutex.create ();
    c_pending = 0;
    c_eof = false;
    c_closed = false;
  }

let conn_close_if_done c =
  (* caller holds c_lock *)
  if c.c_eof && c.c_pending = 0 && not c.c_closed then begin
    c.c_closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let conn_reserve c =
  Mutex.lock c.c_lock;
  c.c_pending <- c.c_pending + 1;
  Mutex.unlock c.c_lock

let conn_send c v =
  Mutex.lock c.c_wlock;
  (try Protocol.write_frame c.c_fd v
   with Unix.Unix_error _ | Sys_error _ ->
     (* the client hung up before its reply; the work is already done
        and accounted, only the delivery is lost *)
     Metrics.incr m_client_gone);
  Mutex.unlock c.c_wlock;
  Mutex.lock c.c_lock;
  c.c_pending <- c.c_pending - 1;
  conn_close_if_done c;
  Mutex.unlock c.c_lock

let conn_send_now c v =
  conn_reserve c;
  conn_send c v

(* ------------------------------------------------------------------ *)
(* requests                                                            *)
(* ------------------------------------------------------------------ *)

type req = {
  q_serial : int;
  q_name : string;
  q_spec : Protocol.analyze;
  q_rules : ruleset;
  q_deadline_s : float;
  q_ladder : (string * Config.t) array;  (** rung i serves attempt i+1 *)
  q_chaos : Chaos.t option;  (** solver-step faults, full chaos rate *)
  q_chaos_kill : Chaos.t option;
      (** worker-kill faults at pickup; drawn at a quarter of the
          chaos rate — domain deaths are whole-process events (a
          respawn stalls every domain), so the harness weights them
          lower than solver-step faults *)
  q_conn : conn;
  q_submitted : float;
  mutable q_first_pickup : float;  (** 0. until first dequeue *)
  mutable q_attempt : int;  (** attempts started *)
  mutable q_attempts_log : (string * string * float) list;
      (** (rung label, outcome, seconds), latest first *)
  mutable q_not_before : float;  (** retry backoff gate *)
  mutable q_partial : (string * Infoflow.result) option;
      (** best incomplete result so far, kept for the partial reply *)
  mutable q_diags : string list;  (** accumulated, latest first *)
  q_budget : Budget.t option Atomic.t;  (** live budget, for drain *)
  q_replied : bool Atomic.t;
}

type event = E_worker_died of { slot : int; req : req option; msg : string }

type phase = Running | Draining | Stopping

type t = {
  t_cfg : config;
  t_queue : req Squeue.t;
  t_events : event Squeue.t;
  t_phase : int Atomic.t;  (** 0 running / 1 draining / 2 stopping *)
  t_serial : int Atomic.t;
  t_started : float;
  t_listen : Unix.file_descr;
  t_templates : templates;
  t_inflight : req option Atomic.t array;
  t_domains : unit Domain.t option array;
  t_dom_lock : Mutex.t;  (** guards t_domains (start/supervisor/stop) *)
  mutable t_accept : Thread.t option;
  mutable t_supervisor : Thread.t option;
  t_stop_lock : Mutex.t;
  mutable t_stopped : bool;
}

let phase t : phase =
  match Atomic.get t.t_phase with 0 -> Running | 1 -> Draining | _ -> Stopping

let draining t = phase t <> Running
let running t = not (Atomic.get t.t_phase = 2 && t.t_stopped)
let queue_depth t = Squeue.length t.t_queue

let in_flight t =
  Array.fold_left
    (fun n slot -> match Atomic.get slot with Some _ -> n + 1 | None -> n)
    0 t.t_inflight

let publish_gauges t =
  Metrics.set_int g_queue_depth (queue_depth t);
  Metrics.set_int g_in_flight (in_flight t)

(* mean observed service time × queue position ÷ workers, clamped to
   [50 ms, 10 s] — a rough but monotone backpressure hint.  The
   per-request estimate is clamped into [0.05 s, 10 s] BEFORE any
   arithmetic: on a freshly-booted daemon the histogram is empty (or
   holds a single degenerate 0/NaN sample) and an unclamped mean would
   poison the product below. *)
let retry_after_ms t =
  let per_request =
    match Metrics.histogram_summary "serve.request_seconds" with
    | Some hs when hs.Metrics.hs_count > 0 ->
        hs.Metrics.hs_sum /. float_of_int hs.Metrics.hs_count
    | _ -> 0.1
  in
  let per_request =
    if Float.is_nan per_request then 0.1
    else Float.min 10. (Float.max 0.05 per_request)
  in
  let est =
    per_request
    *. float_of_int (queue_depth t + 1)
    /. float_of_int (max 1 t.t_cfg.sv_workers)
  in
  int_of_float (Float.min 10_000. (Float.max 50. (est *. 1000.)))

(* ------------------------------------------------------------------ *)
(* replies                                                             *)
(* ------------------------------------------------------------------ *)

(* [observe:false] keeps admission rejections out of the service-time
   histogram, which feeds the [retry_after_ms] estimate *)
let reply_once ?(observe = true) req v =
  if Atomic.compare_and_set req.q_replied false true then begin
    conn_send req.q_conn v;
    Metrics.incr m_replies;
    if observe then
      Metrics.observe h_request (Unix.gettimeofday () -. req.q_submitted);
    true
  end
  else false

let json_of_attempts req =
  Json.List
    (List.rev_map
       (fun (rung, outcome, dt) ->
         Json.Obj
           [
             ("rung", Json.String rung);
             ("outcome", Json.String outcome);
             ("seconds", Json.Float dt);
           ])
       req.q_attempts_log)

let json_of_diags req extra =
  let result_diags =
    List.map (fun d -> Fd_resilience.Diag.to_string d) extra
  in
  Json.List
    (List.map (fun s -> Json.String s) (result_diags @ List.rev req.q_diags))

let json_of_finding (f : Fd_core.Bidi.finding) =
  Json.Obj
    ([
       ( "category",
         Json.String
           (Fd_frontend.Sourcesink.string_of_category f.f_source.si_category)
       );
       ("source", Json.String f.f_source.si_desc);
       ( "sink",
         Json.String (Fd_callgraph.Icfg.string_of_node f.f_sink_node) );
       ( "sink_category",
         Json.String (Fd_frontend.Sourcesink.string_of_category f.f_sink_cat)
       );
     ]
    @ match f.f_sink_tag with
      | Some tag -> [ ("tag", Json.String tag) ]
      | None -> [])

let nonzero_counters (sn : Metrics.snapshot) =
  Json.Obj
    (List.filter_map
       (fun (name, v) -> if v <> 0 then Some (name, Json.Int v) else None)
       sn.Metrics.sn_counters)

let base_fields req =
  ("app", Json.String req.q_name)
  :: ("attempts", json_of_attempts req)
  :: ( "queue_ms",
       Json.Int
         (int_of_float
            ((if req.q_first_pickup > 0. then req.q_first_pickup
              else Unix.gettimeofday ())
             -. req.q_submitted
            |> ( *. ) 1000.)) )
  :: []

let reply_result t req ~completeness ~delta (r : Infoflow.result) =
  let stats = r.Infoflow.r_stats in
  let fields =
    base_fields req
    @ [
        ("outcome", Json.String (Outcome.to_string stats.Infoflow.st_outcome));
        ("completeness", Json.String completeness);
        ("flows", Json.List (List.map json_of_finding r.Infoflow.r_findings));
        ("findings", Json.Int (List.length r.Infoflow.r_findings));
        ("reachable", Json.Int stats.Infoflow.st_reachable);
        ("propagations", Json.Int stats.Infoflow.st_propagations);
        ("solve_ms", Json.Int (int_of_float (stats.Infoflow.st_time *. 1000.)));
        ( "time_ms",
          Json.Int
            (int_of_float
               ((Unix.gettimeofday () -. req.q_submitted) *. 1000.)) );
        ("diags", json_of_diags req r.Infoflow.r_diags);
      ]
    @ match delta with
      | Some sn -> [ ("delta_counters", nonzero_counters sn) ]
      | None -> []
  in
  let ok = reply_once req (Protocol.resp_ok ?id:req.q_spec.rq_id fields) in
  if ok then begin
    (match completeness with
    | "precise" -> Metrics.incr m_out_precise
    | _ ->
        if String.length completeness >= 7 && String.sub completeness 0 7 = "partial"
        then Metrics.incr m_out_partial
        else Metrics.incr m_out_degraded);
    publish_gauges t
  end

let reply_error t req ~code ?(fields = []) msg =
  let ok =
    reply_once req
      (Protocol.resp_error ?id:req.q_spec.rq_id
         ~fields:(base_fields req @ [ ("diags", json_of_diags req []) ] @ fields)
         ~code msg)
  in
  if ok then begin
    (match code with
    | "overloaded" -> Metrics.incr m_overloaded
    | "cancelled" -> Metrics.incr m_out_cancelled
    | _ -> Metrics.incr m_out_failed);
    publish_gauges t
  end

(* terminal failure: prefer the best partial result we banked *)
let reply_failure t req =
  match req.q_partial with
  | Some (rung, r) ->
      reply_result t req ~completeness:("partial(" ^ rung ^ ")") ~delta:None r
  | None ->
      reply_error t req ~code:"failed"
        (Printf.sprintf "analysis failed after %d attempt(s)" req.q_attempt)

(* ------------------------------------------------------------------ *)
(* request admission                                                   *)
(* ------------------------------------------------------------------ *)

let find_ruleset t name =
  match List.assoc_opt name t.t_cfg.sv_rules with
  | Some rs -> Some rs
  | None -> if name = "default" then Some (default_ruleset ()) else None

let build_req t conn (a : Protocol.analyze) =
  match find_ruleset t a.rq_rules with
  | None -> Error (Printf.sprintf "unknown rule-set %S" a.rq_rules)
  | Some rules ->
      if a.rq_deadline_ms <> None && Option.get a.rq_deadline_ms < 1 then
        Error "deadline_ms must be >= 1"
      else if a.rq_k <> None && Option.get a.rq_k < 1 then
        Error "k must be >= 1"
      else begin
        let cfg = t.t_cfg in
        let base =
          match a.rq_k with
          | Some k -> { cfg.sv_base_config with Config.max_access_path = k }
          | None -> cfg.sv_base_config
        in
        (* per-request targeted mode; the summary-store digest already
           incorporates the pattern set so hot entries never cross
           between targeted and full requests *)
        let base =
          if a.rq_targeted = [] then base
          else { base with Config.targeted = a.rq_targeted }
        in
        (* per-request inter-component tier (the config digest covers
           it, so summaries never cross between icc-on and icc-off) *)
        let base = if a.rq_icc then { base with Config.icc = true } else base in
        let deadline_s =
          match a.rq_deadline_ms with
          | Some ms -> float_of_int ms /. 1000.
          | None -> cfg.sv_default_deadline_s
        in
        let serial = Atomic.fetch_and_add t.t_serial 1 in
        (* per-request chaos PRNGs seeded from (server seed, serial):
           worker domains never share mutable chaos state *)
        let chaos_at rate salt =
          if rate > 0. then
            Some
              (Chaos.create
                 ~seed:
                   (Fd_util.Intern.combine
                      (Fd_util.Intern.combine cfg.sv_chaos_seed salt)
                      serial)
                 ~rate)
          else None
        in
        let chaos = chaos_at cfg.sv_chaos_rate 1 in
        let chaos_kill = chaos_at (cfg.sv_chaos_rate /. 4.) 2 in
        Ok
          {
            q_serial = serial;
            q_name =
              String.concat "+"
                (List.map Protocol.app_name (a.rq_app :: a.rq_apps));
            q_spec = a;
            q_rules = rules;
            q_deadline_s = deadline_s;
            q_ladder = Array.of_list (Config.degradation_ladder base);
            q_chaos = chaos;
            q_chaos_kill = chaos_kill;
            q_conn = conn;
            q_submitted = Unix.gettimeofday ();
            q_first_pickup = 0.;
            q_attempt = 0;
            q_attempts_log = [];
            q_not_before = 0.;
            q_partial = None;
            q_diags = [];
            q_budget = Atomic.make None;
            q_replied = Atomic.make false;
          }
      end

(* ------------------------------------------------------------------ *)
(* workers                                                             *)
(* ------------------------------------------------------------------ *)

let realize_one (spec : Protocol.app_spec) ~mode =
  match spec with
  | Protocol.App_dir d -> Apk.of_dir ~mode d
  | Protocol.App_inline i ->
      Apk.make_text ~mode i.Protocol.in_name ~manifest:i.Protocol.in_manifest
        ~layouts:i.Protocol.in_layouts i.Protocol.in_sources
  | Protocol.App_gen { g_profile; g_seed; g_index } ->
      (Gen.generate ~profile:g_profile ~seed:g_seed g_index).Gen.ga_apk

let rung_for req attempt =
  req.q_ladder.(min (attempt - 1) (Array.length req.q_ladder - 1))

let retry_or_fail t req =
  if phase t = Running && req.q_attempt < t.t_cfg.sv_max_attempts then begin
    let backoff =
      Float.min t.t_cfg.sv_backoff_cap_s
        (t.t_cfg.sv_backoff_base_s *. (2. ** float_of_int (req.q_attempt - 1)))
    in
    req.q_not_before <- Unix.gettimeofday () +. backoff;
    Metrics.incr m_retries;
    (* push_front: an admitted request's retry must not be bounced by
       admission control (it would be dropped without a reply), and it
       goes ahead of fresh arrivals — the request already lost an
       attempt, requeueing it at the back would double its tail
       latency *)
    Squeue.push_front t.t_queue req;
    if Squeue.closed t.t_queue then reply_failure t req
  end
  else reply_failure t req

let log_attempt req rung outcome dt =
  req.q_attempts_log <- (rung, outcome, dt) :: req.q_attempts_log

(* one attempt: consume rung [q_attempt+1], run under barrier+budget *)
let process t req =
  if phase t = Stopping then
    reply_error t req ~code:"cancelled"
      "server stopped before the request ran"
  else begin
    let attempt = req.q_attempt + 1 in
    req.q_attempt <- attempt;
    (* test seam / supervision chaos: a raise here escapes to the
       worker loop and kills this domain *)
    (match t.t_cfg.sv_attempt_hook with
    | Some hook -> hook req.q_name attempt
    | None -> ());
    let rung, cfg = rung_for req attempt in
    let mode = if req.q_spec.rq_strict then `Strict else `Lenient in
    let budget =
      Budget.create ~deadline_s:req.q_deadline_s ?chaos:req.q_chaos ()
    in
    Atomic.set req.q_budget (Some budget);
    let t0 = Unix.gettimeofday () in
    let run () =
      match
        List.map
          (fun spec -> realize_one spec ~mode)
          (req.q_spec.Protocol.rq_app :: req.q_spec.Protocol.rq_apps)
      with
      | exception Apk.Load_error msg -> `Bad msg
      | apks -> (
          let template =
            template_for t.t_templates ~rules_name:req.q_spec.rq_rules
              req.q_rules
          in
          match apks with
          | [ apk ] ->
              let loaded = Apk.load ~mode ~template apk in
              `Res
                (Infoflow.analyze_loaded ~config:cfg
                   ~defs:req.q_rules.rs_defs ~wrappers:req.q_rules.rs_wrappers
                   ~natives:req.q_rules.rs_natives ~budget loaded)
          | apks -> (
              (* batch: one merged multi-app Scene (the inter-app
                 setting); load clashes are the client's fault *)
              match Apk.load_merged ~mode ~template apks with
              | exception Apk.Load_error msg -> `Bad msg
              | merged ->
                  `Res
                    (Infoflow.analyze_merged ~config:cfg
                       ~defs:req.q_rules.rs_defs
                       ~wrappers:req.q_rules.rs_wrappers
                       ~natives:req.q_rules.rs_natives ~budget merged)))
    in
    let res =
      if req.q_spec.rq_fresh_metrics then begin
        let r, delta =
          Metrics.with_delta (fun () ->
              Barrier.protect ~label:(req.q_name ^ "/" ^ rung) run)
        in
        (r, Some delta)
      end
      else (Barrier.protect ~label:(req.q_name ^ "/" ^ rung) run, None)
    in
    let dt = Unix.gettimeofday () -. t0 in
    Atomic.set req.q_budget None;
    Metrics.observe h_solve dt;
    match res with
    | Ok (`Bad msg), _ ->
        (* a malformed app is the client's fault: no retry *)
        log_attempt req rung "load-error" dt;
        Metrics.incr m_bad_requests;
        reply_error t req ~code:"bad-app" msg
    | Ok (`Res r), delta ->
        let outcome = r.Infoflow.r_stats.Infoflow.st_outcome in
        log_attempt req rung (Outcome.to_string outcome) dt;
        if Outcome.is_complete outcome then
          let completeness =
            if attempt = 1 then "precise" else "degraded(" ^ rung ^ ")"
          in
          reply_result t req ~completeness ~delta r
        else begin
          req.q_diags <-
            Printf.sprintf "attempt %d (%s): %s" attempt rung
              (Outcome.to_string outcome)
            :: req.q_diags;
          (* keep the most recent partial result for the final reply *)
          req.q_partial <- Some (rung, r);
          retry_or_fail t req
        end
    | Error outcome, _ ->
        log_attempt req rung (Outcome.to_string outcome) dt;
        req.q_diags <-
          Printf.sprintf "attempt %d (%s): %s" attempt rung
            (Outcome.to_string outcome)
          :: req.q_diags;
        retry_or_fail t req
  end

let rec worker_loop t slot =
  match Squeue.pop t.t_queue with
  | None -> ()
  | Some req ->
      Atomic.set t.t_inflight.(slot) (Some req);
      publish_gauges t;
      if req.q_first_pickup = 0. then begin
        req.q_first_pickup <- Unix.gettimeofday ();
        Metrics.observe h_queue_wait (req.q_first_pickup -. req.q_submitted)
      end;
      (* retry backoff: sleep off the remaining gate *)
      let delay = req.q_not_before -. Unix.gettimeofday () in
      if delay > 0. then Unix.sleepf delay;
      (* service-level chaos outside the barrier: this kills the
         worker domain and exercises the supervisor *)
      Chaos.fail_point req.q_chaos_kill "serve.worker";
      process t req;
      Atomic.set t.t_inflight.(slot) None;
      publish_gauges t;
      worker_loop t slot

let worker_main t slot () =
  try worker_loop t slot
  with e ->
    let req = Atomic.exchange t.t_inflight.(slot) None in
    publish_gauges t;
    Squeue.push_force t.t_events
      (E_worker_died { slot; req; msg = Printexc.to_string e })

let spawn_worker t slot =
  Mutex.lock t.t_dom_lock;
  (* re-check the phase under the lock: [stop] sets Stopping before it
     takes the lock to join, so no domain can be spawned behind its
     back and left unjoined *)
  if Atomic.get t.t_phase < 2 then begin
    (match t.t_domains.(slot) with
    | Some d ->
        (* the previous incarnation already pushed its death event and
           is returning; join releases the domain slot *)
        Domain.join d
    | None -> ());
    t.t_domains.(slot) <- Some (Domain.spawn (worker_main t slot))
  end;
  Mutex.unlock t.t_dom_lock

let rec supervisor_loop t =
  match Squeue.pop t.t_events with
  | None -> ()
  | Some (E_worker_died { slot; req; msg }) ->
      Metrics.incr m_worker_restarts;
      if Atomic.get t.t_phase < 2 then spawn_worker t slot;
      (match req with
      | Some req when not (Atomic.get req.q_replied) ->
          req.q_diags <-
            Printf.sprintf "attempt %d: worker died: %s" req.q_attempt msg
            :: req.q_diags;
          retry_or_fail t req
      | _ -> ());
      supervisor_loop t

(* ------------------------------------------------------------------ *)
(* health / stats                                                      *)
(* ------------------------------------------------------------------ *)

let health_fields t =
  [
    ("phase", Json.String (match phase t with
                           | Running -> "running"
                           | Draining -> "draining"
                           | Stopping -> "stopping"));
    ("uptime_s", Json.Float (Unix.gettimeofday () -. t.t_started));
    ("workers", Json.Int t.t_cfg.sv_workers);
    ("queue_depth", Json.Int (queue_depth t));
    ("queue_capacity", Json.Int (Squeue.capacity t.t_queue));
    ("in_flight", Json.Int (in_flight t));
    ("requests", Json.Int (Metrics.value m_requests));
    ("replies", Json.Int (Metrics.value m_replies));
    ("worker_restarts", Json.Int (Metrics.value m_worker_restarts));
  ]

let quantiles_json name =
  match Metrics.histogram_summary name with
  | Some hs when hs.Metrics.hs_count > 0 ->
      Json.Obj
        [
          ("count", Json.Int hs.Metrics.hs_count);
          ("p50_ms", Json.Float (hs.Metrics.hs_p50 *. 1000.));
          ("p90_ms", Json.Float (hs.Metrics.hs_p90 *. 1000.));
          ("p99_ms", Json.Float (hs.Metrics.hs_p99 *. 1000.));
          ("max_ms", Json.Float (hs.Metrics.hs_max *. 1000.));
        ]
  | _ -> Json.Obj [ ("count", Json.Int 0) ]

let stats_fields t =
  health_fields t
  @ [
      ( "outcomes",
        Json.Obj
          [
            ("precise", Json.Int (Metrics.value m_out_precise));
            ("degraded", Json.Int (Metrics.value m_out_degraded));
            ("partial", Json.Int (Metrics.value m_out_partial));
            ("failed", Json.Int (Metrics.value m_out_failed));
            ("cancelled", Json.Int (Metrics.value m_out_cancelled));
            ("overloaded", Json.Int (Metrics.value m_overloaded));
            ("bad_requests", Json.Int (Metrics.value m_bad_requests));
          ] );
      ("retries", Json.Int (Metrics.value m_retries));
      ("client_gone", Json.Int (Metrics.value m_client_gone));
      ( "template_cache",
        Json.Obj
          [
            ("hits", Json.Int (Metrics.value m_template_hits));
            ("misses", Json.Int (Metrics.value m_template_misses));
          ] );
      ("latency", quantiles_json "serve.request_seconds");
      ("queue_wait", quantiles_json "serve.queue_wait_seconds");
      ("solve", quantiles_json "serve.solve_seconds");
    ]

(* ------------------------------------------------------------------ *)
(* connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let drain t =
  if Atomic.compare_and_set t.t_phase 0 1 then
    Logs.info ~src:Infoflow.log_src (fun m ->
        m "serve: draining (queue=%d in-flight=%d)" (queue_depth t)
          (in_flight t))

let handle_analyze t conn (a : Protocol.analyze) =
  Metrics.incr m_requests;
  if phase t <> Running then begin
    Metrics.incr m_draining_rejects;
    conn_send_now conn
      (Protocol.resp_error ?id:a.rq_id ~code:"draining"
         "server is draining; not admitting new work")
  end
  else
    match build_req t conn a with
    | Error msg ->
        Metrics.incr m_bad_requests;
        conn_send_now conn
          (Protocol.resp_error ?id:a.rq_id ~code:"bad-request" msg)
    | Ok req ->
        (* reserve the reply slot before the queue can hand the request
           to a worker *)
        conn_reserve conn;
        if Squeue.try_push t.t_queue req then publish_gauges t
        else begin
          let wait = retry_after_ms t in
          ignore
            (reply_once ~observe:false req
               (Protocol.resp_error ?id:a.rq_id ~code:"overloaded"
                  ~fields:[ ("retry_after_ms", Json.Int wait) ]
                  "work queue full"));
          Metrics.incr m_overloaded
        end

let handle_frame t conn v =
  match Protocol.request_of_json v with
  | Error msg ->
      Metrics.incr m_bad_requests;
      conn_send_now conn
        (Protocol.resp_error ?id:(Json.member "id" v) ~code:"bad-request" msg)
  | Ok Protocol.Ping ->
      conn_send_now conn
        (Protocol.resp_ok ?id:(Json.member "id" v)
           [ ("verb", Json.String "pong") ])
  | Ok Protocol.Health ->
      conn_send_now conn
        (Protocol.resp_ok ?id:(Json.member "id" v) (health_fields t))
  | Ok Protocol.Stats ->
      conn_send_now conn
        (Protocol.resp_ok ?id:(Json.member "id" v) (stats_fields t))
  | Ok Protocol.Drain ->
      drain t;
      conn_send_now conn
        (Protocol.resp_ok ?id:(Json.member "id" v)
           [ ("draining", Json.Bool true) ])
  | Ok (Protocol.Analyze a) -> handle_analyze t conn a

let conn_loop t conn =
  let rec loop () =
    match Protocol.read_frame ~max_bytes:t.t_cfg.sv_max_frame_bytes conn.c_fd with
    | None -> ()
    | Some v ->
        handle_frame t conn v;
        loop ()
    | exception Protocol.Closed -> ()
    | exception Unix.Unix_error _ -> ()
    | exception Protocol.Oversized n ->
        Metrics.incr m_bad_requests;
        conn_send_now conn
          (Protocol.resp_error ~code:"oversized"
             ~fields:
               [
                 ("bytes", Json.Int n);
                 ("max_bytes", Json.Int t.t_cfg.sv_max_frame_bytes);
               ]
             "frame exceeds the server's limit");
        loop ()
    | exception Json.Parse_error _ ->
        Metrics.incr m_bad_requests;
        conn_send_now conn
          (Protocol.resp_error ~code:"bad-json" "unparsable request frame");
        loop ()
  in
  loop ();
  Mutex.lock conn.c_lock;
  conn.c_eof <- true;
  conn_close_if_done conn;
  Mutex.unlock conn.c_lock

let accept_loop t =
  let rec loop () =
    if Atomic.get t.t_phase < 2 then begin
      (match Unix.select [ t.t_listen ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.t_listen with
          | fd, _ ->
              let conn = conn_make fd in
              ignore (Thread.create (fun () -> conn_loop t conn) ())
          | exception
              Unix.Unix_error
                ((EINTR | EAGAIN | EWOULDBLOCK | ECONNABORTED), _, _) ->
              ())
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  try loop () with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start cfg =
  if cfg.sv_workers < 1 then invalid_arg "Server.start: sv_workers < 1";
  (* a client vanishing mid-write must never signal the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Infoflow.warm_templates ();
  ignore (default_ruleset ());
  (try Unix.unlink cfg.sv_socket with Unix.Unix_error _ -> ());
  let listen = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen (ADDR_UNIX cfg.sv_socket);
     Unix.listen listen 64
   with e ->
     (try Unix.close listen with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      t_cfg = cfg;
      t_queue = Squeue.create ~capacity:cfg.sv_queue_capacity;
      t_events = Squeue.create ~capacity:(max 16 (2 * cfg.sv_workers));
      t_phase = Atomic.make 0;
      t_serial = Atomic.make 0;
      t_started = Unix.gettimeofday ();
      t_listen = listen;
      t_templates = templates_make ();
      t_inflight = Array.init cfg.sv_workers (fun _ -> Atomic.make None);
      t_domains = Array.make cfg.sv_workers None;
      t_dom_lock = Mutex.create ();
      t_accept = None;
      t_supervisor = None;
      t_stop_lock = Mutex.create ();
      t_stopped = false;
    }
  in
  (* pre-warm one Scene template per configured rule set (plus the
     default), so the first request under each digest is already a
     template hit; the startup derivations are the only misses *)
  List.iter
    (fun (name, rs) -> ignore (template_for t.t_templates ~rules_name:name rs))
    (("default", default_ruleset ()) :: cfg.sv_rules);
  for slot = 0 to cfg.sv_workers - 1 do
    spawn_worker t slot
  done;
  t.t_supervisor <- Some (Thread.create supervisor_loop t);
  t.t_accept <- Some (Thread.create accept_loop t);
  Logs.info ~src:Infoflow.log_src (fun m ->
      m "serve: listening on %s (%d workers, queue %d)" cfg.sv_socket
        cfg.sv_workers cfg.sv_queue_capacity);
  t

let idle t = queue_depth t = 0 && in_flight t = 0

let wait_until ~deadline pred =
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let stop ?grace_s t =
  Mutex.lock t.t_stop_lock;
  let already = t.t_stopped in
  t.t_stopped <- true;
  Mutex.unlock t.t_stop_lock;
  if not already then begin
    let grace = Option.value grace_s ~default:t.t_cfg.sv_drain_grace_s in
    drain t;
    let drained =
      wait_until ~deadline:(Unix.gettimeofday () +. grace) (fun () -> idle t)
    in
    (* past the grace period: switch to Stopping so retries stop
       requeueing and queued-but-unstarted work replies [cancelled],
       then cancel in-flight budgets cooperatively *)
    Atomic.set t.t_phase 2;
    if not drained then
      Array.iter
        (fun slot ->
          match Atomic.get slot with
          | Some req -> (
              match Atomic.get req.q_budget with
              | Some b -> Budget.cancel b
              | None -> ())
          | None -> ())
        t.t_inflight;
    (* cancellation is cooperative; give the stragglers a moment, then
       close the queue so workers exit once it is empty *)
    ignore
      (wait_until ~deadline:(Unix.gettimeofday () +. grace +. 10.) (fun () ->
           idle t));
    Squeue.close t.t_queue;
    Mutex.lock t.t_dom_lock;
    Array.iteri
      (fun slot d ->
        match d with
        | Some d ->
            Domain.join d;
            t.t_domains.(slot) <- None
        | None -> ())
      t.t_domains;
    Mutex.unlock t.t_dom_lock;
    Squeue.close t.t_events;
    (match t.t_supervisor with Some th -> Thread.join th | None -> ());
    (match t.t_accept with Some th -> Thread.join th | None -> ());
    (try Unix.close t.t_listen with Unix.Unix_error _ -> ());
    (try Unix.unlink t.t_cfg.sv_socket with Unix.Unix_error _ -> ());
    publish_gauges t;
    Logs.info ~src:Infoflow.log_src (fun m ->
        m "serve: stopped (replies=%d restarts=%d)" (Metrics.value m_replies)
          (Metrics.value m_worker_restarts))
  end
