(** The serve daemon's wire protocol: length-prefixed JSON frames over
    a Unix-domain stream socket.

    {b Framing.}  Every message — request or response — is one JSON
    document prefixed by its byte length as a 4-byte big-endian
    unsigned integer.  A frame whose declared length exceeds the
    reader's limit is {e consumed and discarded} (the stream stays
    framed) and reported as {!Oversized}, so a pathological client
    cannot force unbounded buffering or desynchronise the connection.

    {b Verbs.}  Requests are JSON objects with a ["verb"] field:

    - [{"verb":"ping"}] → [{"ok":true,"verb":"pong"}]
    - [{"verb":"health"}] → queue depth, in-flight count, worker
      restarts, uptime, draining flag
    - [{"verb":"stats"}] → health plus per-outcome counters and
      latency quantiles from the [serve.*] metric series
    - [{"verb":"drain"}] → initiate graceful drain (stop admitting,
      finish in-flight work)
    - [{"verb":"analyze","app":…,…}] → run the taint analysis; the
      reply is exactly one outcome row, an ["overloaded"] rejection
      carrying [retry_after_ms], or a ["draining"] rejection.

    The ["app"] payload is one of three shapes: [{"dir":PATH}] (an
    on-disk app directory), [{"gen":{"profile":…,"seed":…,"index":…}}]
    (a deterministic generated-corpus app), or an inline bundle
    [{"name":…,"manifest":XML,"layouts":[{"name":…,"xml":…}],
    "sources":[µJimple…]}].  Giving ["apps":[APP,…]] instead of
    ["app"] analyses the batch in one merged multi-app Scene (the
    inter-app collusion setting).  Optional analyze fields: ["id"]
    (echoed verbatim in the reply), ["deadline_ms"], ["k"], ["rules"]
    (named rule-set), ["strict"] (disable the default lenient
    frontend), ["fresh_metrics"] (report per-request metric deltas),
    ["icc"] (enable the inter-component taint tier). *)

exception Oversized of int
(** a frame declared more bytes than the reader's limit; the payload
    has been consumed, the connection is still usable *)

exception Closed
(** the peer hung up mid-frame (clean EOF between frames is reported
    as [None] from {!read_frame} instead) *)

val default_max_frame : int
(** 8 MiB *)

val read_frame : ?max_bytes:int -> Unix.file_descr -> Fd_obs.Json.t option
(** [read_frame fd] reads one frame; [None] on clean EOF.
    @raise Oversized when the declared length exceeds [max_bytes]
    (payload discarded);
    @raise Closed on EOF mid-frame;
    @raise Fd_obs.Json.Parse_error on a well-framed but malformed
    payload. *)

val write_frame : Unix.file_descr -> Fd_obs.Json.t -> unit
(** [write_frame fd v] writes one frame (handles short writes).
    @raise Unix.Unix_error when the peer is gone ([EPIPE]…). *)

(** {1 Typed requests} *)

type inline_app = {
  in_name : string;
  in_manifest : string;
  in_layouts : (string * string) list;
  in_sources : string list;  (** textual µJimple units *)
}

type app_spec =
  | App_dir of string
  | App_inline of inline_app
  | App_gen of { g_profile : Fd_appgen.Generator.profile; g_seed : int;
                 g_index : int }

val app_name : app_spec -> string
(** display name: directory basename, inline name, or [gen<i>] *)

type analyze = {
  rq_id : Fd_obs.Json.t option;  (** echoed verbatim when present *)
  rq_app : app_spec;
  rq_apps : app_spec list;
      (** additional apps (["apps":\[…\]] wire form): a non-empty
          list makes the request a batch analysed in one merged
          multi-app Scene — the inter-app collusion setting *)
  rq_deadline_ms : int option;  (** per-request deadline override *)
  rq_k : int option;  (** max access-path length override *)
  rq_rules : string;  (** named rule-set, default ["default"] *)
  rq_strict : bool;  (** strict frontend (default: lenient) *)
  rq_fresh_metrics : bool;
      (** include a per-request metric delta in the reply *)
  rq_icc : bool;
      (** enable the inter-component taint tier (["icc":true]) *)
  rq_targeted : string list;
      (** demand-driven targeted mode (["targeted":\["SIG",…\]]):
          sink signature patterns; [[]] (absent) = full analysis *)
}

type request =
  | Ping
  | Health
  | Stats
  | Drain
  | Analyze of analyze

val request_of_json : Fd_obs.Json.t -> (request, string) result

val json_of_analyze : analyze -> Fd_obs.Json.t
(** the client-side encoder; [request_of_json] round-trips it *)

(** {1 Response builders} *)

val resp_ok :
  ?id:Fd_obs.Json.t -> (string * Fd_obs.Json.t) list -> Fd_obs.Json.t
(** [{"ok":true,("id":id,)…fields}] *)

val resp_error :
  ?id:Fd_obs.Json.t ->
  ?fields:(string * Fd_obs.Json.t) list ->
  code:string ->
  string ->
  Fd_obs.Json.t
(** [{"ok":false,("id":id,)"error":code,"message":msg,…fields}] *)
