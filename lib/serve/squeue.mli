(** A bounded, multi-producer/multi-consumer blocking queue — the
    admission-controlled work queue of the serve daemon.

    The two push flavours encode the daemon's backpressure policy:

    - {!try_push} is the {e admission} path: it never blocks and never
      buffers beyond [capacity] — a full queue means the caller must
      reject the request immediately (with a [retry_after_ms] hint)
      instead of queueing unbounded work;
    - {!push_force} is the {e supervision} path: a request already
      admitted (a retry after a worker death or a degraded-rung
      re-run) may transiently exceed capacity, because dropping it
      would violate the exactly-one-reply guarantee.

    Domain-safe: producers and consumers may live on any mix of
    threads and domains ([Mutex]/[Condition] from the OCaml 5
    stdlib). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty queue admitting at most
    [capacity] items through {!try_push}.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** current depth (admitted + forced items) *)

val try_push : 'a t -> 'a -> bool
(** [try_push q x] enqueues [x] unless the queue is at capacity or
    {!close}d; [false] means the item was {e not} enqueued. *)

val push_force : 'a t -> 'a -> unit
(** [push_force q x] enqueues [x] even beyond capacity (retries must
    not be dropped).  On a {!close}d queue this is a no-op — shutdown
    replies are the caller's responsibility. *)

val push_front : 'a t -> 'a -> unit
(** like {!push_force}, but [x] is dequeued before everything already
    queued.  The daemon's retry path uses this so a request that
    already lost an attempt (worker death, blown rung) does not also
    requeue behind fresh arrivals — it bounds the latency tail under
    fault injection. *)

val pop : 'a t -> 'a option
(** [pop q] blocks until an item is available and dequeues it, or
    returns [None] once the queue is closed {e and} drained — the
    worker-loop termination signal. *)

val close : 'a t -> unit
(** stop accepting pushes and wake every blocked {!pop}; already
    queued items still drain *)

val closed : 'a t -> bool
