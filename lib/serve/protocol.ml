(** Length-prefixed JSON framing and the typed request layer (see the
    .mli for the wire format). *)

module Json = Fd_obs.Json
module Gen = Fd_appgen.Generator

exception Oversized of int
exception Closed

let default_max_frame = 8 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* framing                                                             *)
(* ------------------------------------------------------------------ *)

let really_read fd buf ofs len =
  let rec go ofs len =
    if len > 0 then begin
      let n = Unix.read fd buf ofs len in
      if n = 0 then raise Closed;
      go (ofs + n) (len - n)
    end
  in
  go ofs len

let really_write fd buf ofs len =
  let rec go ofs len =
    if len > 0 then begin
      let n = Unix.write fd buf ofs len in
      go (ofs + n) (len - n)
    end
  in
  go ofs len

(* discard [len] payload bytes in bounded chunks so an oversized frame
   cannot make us allocate its declared size *)
let discard fd len =
  let chunk = Bytes.create 65536 in
  let rec go remaining =
    if remaining > 0 then begin
      let n = Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) in
      if n = 0 then raise Closed;
      go (remaining - n)
    end
  in
  go len

let read_u32_be buf =
  let b i = Char.code (Bytes.get buf i) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let write_u32_be buf n =
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (n land 0xff))

let read_frame ?(max_bytes = default_max_frame) fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 1 with
  | 0 -> None (* clean EOF between frames *)
  | _ ->
      really_read fd hdr 1 3;
      let len = read_u32_be hdr in
      if len > max_bytes then begin
        discard fd len;
        raise (Oversized len)
      end;
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Json.parse_string (Bytes.unsafe_to_string payload))

let write_frame fd v =
  let s = Json.to_string v in
  let len = String.length s in
  let buf = Bytes.create (4 + len) in
  write_u32_be buf len;
  Bytes.blit_string s 0 buf 4 len;
  really_write fd buf 0 (4 + len)

(* ------------------------------------------------------------------ *)
(* typed requests                                                      *)
(* ------------------------------------------------------------------ *)

type inline_app = {
  in_name : string;
  in_manifest : string;
  in_layouts : (string * string) list;
  in_sources : string list;
}

type app_spec =
  | App_dir of string
  | App_inline of inline_app
  | App_gen of { g_profile : Gen.profile; g_seed : int; g_index : int }

let app_name = function
  | App_dir d -> Filename.basename d
  | App_inline a -> a.in_name
  | App_gen { g_index; _ } -> Printf.sprintf "gen%d" g_index

type analyze = {
  rq_id : Json.t option;
  rq_app : app_spec;
  rq_apps : app_spec list;
      (** additional apps beyond [rq_app]: a non-empty list makes the
          request a batch analysed in one merged multi-app Scene *)
  rq_deadline_ms : int option;
  rq_k : int option;
  rq_rules : string;
  rq_strict : bool;
  rq_fresh_metrics : bool;
  rq_icc : bool;  (** enable the inter-component taint tier *)
  rq_targeted : string list;
      (** demand-driven targeted mode: sink signature patterns
          ([\[\]] = full analysis) *)
}

type request = Ping | Health | Stats | Drain | Analyze of analyze

let str = function Json.String s -> Some s | _ -> None
let int_ = function Json.Int i -> Some i | _ -> None

let member_str k v = Option.bind (Json.member k v) str
let member_int k v = Option.bind (Json.member k v) int_

let member_bool k v =
  match Json.member k v with Some (Json.Bool b) -> Some b | _ -> None

let app_of_json v =
  match Json.member "dir" v with
  | Some (Json.String d) -> Ok (App_dir d)
  | Some _ -> Error "app.dir must be a string"
  | None -> (
      match Json.member "gen" v with
      | Some g -> (
          match
            (member_str "profile" g, member_int "seed" g, member_int "index" g)
          with
          | Some p, Some seed, Some index -> (
              match p with
              | "play" ->
                  Ok (App_gen { g_profile = Gen.Play; g_seed = seed;
                                g_index = index })
              | "malware" ->
                  Ok (App_gen { g_profile = Gen.Malware; g_seed = seed;
                                g_index = index })
              | "icc" ->
                  Ok (App_gen { g_profile = Gen.Icc; g_seed = seed;
                                g_index = index })
              | other -> Error ("unknown gen profile: " ^ other))
          | _ -> Error "app.gen needs profile (play|malware|icc), seed, index")
      | None -> (
          match (member_str "name" v, member_str "manifest" v) with
          | Some name, Some manifest ->
              let layouts =
                match Json.member "layouts" v with
                | Some (Json.List ls) ->
                    List.filter_map
                      (fun l ->
                        match (member_str "name" l, member_str "xml" l) with
                        | Some n, Some x -> Some (n, x)
                        | _ -> None)
                      ls
                | _ -> []
              in
              let sources =
                match Json.member "sources" v with
                | Some (Json.List ss) -> List.filter_map str ss
                | _ -> []
              in
              Ok
                (App_inline
                   { in_name = name; in_manifest = manifest;
                     in_layouts = layouts; in_sources = sources })
          | _ ->
              Error
                "app must be {\"dir\":…}, {\"gen\":…} or an inline \
                 {\"name\":…,\"manifest\":…,\"sources\":[…]} bundle"))

let request_of_json v =
  match member_str "verb" v with
  | None -> Error "missing \"verb\""
  | Some "ping" -> Ok Ping
  | Some "health" -> Ok Health
  | Some "stats" -> Ok Stats
  | Some "drain" -> Ok Drain
  | Some "analyze" -> (
      (* "app": one spec, or "apps": a non-empty list — a batch
         analysed in one merged multi-app Scene *)
      let specs =
        match (Json.member "app" v, Json.member "apps" v) with
        | Some app, None -> (
            match app_of_json app with
            | Error e -> Error ("analyze: " ^ e)
            | Ok a -> Ok [ a ])
        | None, Some (Json.List apps) ->
            List.fold_right
              (fun app acc ->
                match (acc, app_of_json app) with
                | Error e, _ -> Error e
                | _, Error e -> Error ("analyze: " ^ e)
                | Ok rest, Ok a -> Ok (a :: rest))
              apps (Ok [])
        | None, Some _ -> Error "analyze: \"apps\" must be a list"
        | Some _, Some _ -> Error "analyze: give \"app\" or \"apps\", not both"
        | None, None -> Error "analyze: missing \"app\" (or \"apps\")"
      in
      match specs with
      | Error e -> Error e
      | Ok [] -> Error "analyze: \"apps\" must be non-empty"
      | Ok (rq_app :: rq_apps) ->
          Ok
            (Analyze
               {
                 rq_id = Json.member "id" v;
                 rq_app;
                 rq_apps;
                 rq_deadline_ms = member_int "deadline_ms" v;
                 rq_k = member_int "k" v;
                 rq_rules =
                   Option.value (member_str "rules" v) ~default:"default";
                 rq_strict =
                   Option.value (member_bool "strict" v) ~default:false;
                 rq_fresh_metrics =
                   Option.value (member_bool "fresh_metrics" v)
                     ~default:false;
                 rq_icc =
                   Option.value (member_bool "icc" v) ~default:false;
                 rq_targeted =
                   (match Json.member "targeted" v with
                   | Some (Json.List ts) -> List.filter_map str ts
                   | _ -> []);
               }))
  | Some other -> Error ("unknown verb: " ^ other)

let json_of_app = function
  | App_dir d -> Json.Obj [ ("dir", Json.String d) ]
  | App_gen { g_profile; g_seed; g_index } ->
      Json.Obj
        [
          ( "gen",
            Json.Obj
              [
                ("profile", Json.String (Gen.string_of_profile g_profile));
                ("seed", Json.Int g_seed);
                ("index", Json.Int g_index);
              ] );
        ]
  | App_inline a ->
      Json.Obj
        [
          ("name", Json.String a.in_name);
          ("manifest", Json.String a.in_manifest);
          ( "layouts",
            Json.List
              (List.map
                 (fun (n, x) ->
                   Json.Obj
                     [ ("name", Json.String n); ("xml", Json.String x) ])
                 a.in_layouts) );
          ("sources", Json.List (List.map (fun s -> Json.String s) a.in_sources));
        ]

let json_of_analyze a =
  Json.Obj
    ((("verb", Json.String "analyze")
      :: (match a.rq_id with Some id -> [ ("id", id) ] | None -> []))
    @ (match a.rq_apps with
      | [] -> [ ("app", json_of_app a.rq_app) ]
      | more ->
          [ ("apps",
             Json.List (List.map json_of_app (a.rq_app :: more))) ])
    @ (match a.rq_deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Int ms) ]
      | None -> [])
    @ (match a.rq_k with Some k -> [ ("k", Json.Int k) ] | None -> [])
    @ (if a.rq_rules <> "default" then [ ("rules", Json.String a.rq_rules) ]
       else [])
    @ (if a.rq_strict then [ ("strict", Json.Bool true) ] else [])
    @ (if a.rq_fresh_metrics then [ ("fresh_metrics", Json.Bool true) ]
       else [])
    @ (if a.rq_icc then [ ("icc", Json.Bool true) ] else [])
    @
    if a.rq_targeted <> [] then
      [ ("targeted", Json.List (List.map (fun s -> Json.String s) a.rq_targeted)) ]
    else [])

(* ------------------------------------------------------------------ *)
(* response builders                                                   *)
(* ------------------------------------------------------------------ *)

let resp_ok ?id fields =
  Json.Obj
    ((("ok", Json.Bool true)
      :: (match id with Some id -> [ ("id", id) ] | None -> []))
    @ fields)

let resp_error ?id ?(fields = []) ~code msg =
  Json.Obj
    ((("ok", Json.Bool false)
      :: (match id with Some id -> [ ("id", id) ] | None -> []))
    @ [ ("error", Json.String code); ("message", Json.String msg) ]
    @ fields)
