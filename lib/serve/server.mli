(** The fault-tolerant analysis-as-a-service daemon core.

    A long-lived Unix-socket server speaking the length-prefixed JSON
    protocol of {!Protocol}, built from the existing resilience
    primitives:

    - {b warm templates}: rule sets are parsed once at startup and the
      framework-skeleton scene template is forced eagerly
      ({!Fd_core.Infoflow.warm_templates}), so each request pays only
      a [Scene.copy] instead of the whole frontend+framework cost;
    - {b admission control}: requests enter a bounded {!Squeue}; a
      full queue rejects immediately with [overloaded] and a
      [retry_after_ms] estimate instead of buffering unbounded work;
    - {b worker supervision}: [sv_workers] analysis workers run on
      their own domains, each request wrapped in
      {!Fd_resilience.Barrier} + a per-request
      {!Fd_resilience.Budget} deadline.  A worker that dies (an
      exception outside the barrier, e.g. service-level chaos) is
      restarted by the supervisor and its request re-admitted;
    - {b graceful degradation}: a failed attempt (crash or blown
      deadline) is retried — after a capped exponential backoff — on
      the next rung of {!Fd_core.Config.degradation_ladder}, so a
      poisoned input yields a [degraded]/[partial] outcome row rather
      than taking the daemon down.  Every admitted request receives
      {e exactly one} reply;
    - {b graceful drain}: {!drain} (the protocol [drain] verb, or
      SIGTERM/SIGINT in the daemon binary) stops admitting, lets
      in-flight and queued work finish within a grace period, then
      deadline-outs the rest via cooperative budget cancellation.

    Operational state is published under [serve.*] metric names
    ([serve.requests], [serve.rejected_overloaded], [serve.retries],
    [serve.worker_restarts], [serve.queue_depth], [serve.in_flight],
    [serve.request_seconds], [serve.queue_wait_seconds],
    [serve.outcome.*]) and reported by the [health]/[stats] verbs. *)

type ruleset = {
  rs_defs : Fd_frontend.Sourcesink.t;
  rs_wrappers : Fd_frontend.Rules.t;
  rs_natives : Fd_frontend.Rules.t;
}

val default_ruleset : unit -> ruleset
(** the built-in SuSi-style defaults, parsed once *)

type config = {
  sv_socket : string;  (** Unix-domain socket path *)
  sv_workers : int;  (** analysis worker domains *)
  sv_queue_capacity : int;  (** admission bound *)
  sv_max_frame_bytes : int;  (** oversized-request guard *)
  sv_default_deadline_s : float;
      (** per-request wall-clock deadline unless the request overrides *)
  sv_max_attempts : int;  (** 2 = one degraded retry *)
  sv_backoff_base_s : float;  (** retry backoff: base·2^(attempt-1) *)
  sv_backoff_cap_s : float;  (** …capped here *)
  sv_drain_grace_s : float;  (** drain allowance before cancellation *)
  sv_chaos_rate : float;
      (** service-level fault injection rate; 0 = off.  Faults are
          injected both at worker pickup (killing the worker, proving
          supervision) and as solver-step faults through each
          request's budget (driving the degradation ladder). *)
  sv_chaos_seed : int;
  sv_base_config : Fd_core.Config.t;  (** per-request analysis base *)
  sv_rules : (string * ruleset) list;
      (** named rule-sets; ["default"] is always available *)
  sv_attempt_hook : (string -> int -> unit) option;
      (** test seam, called with (app name, attempt number) outside
          the barrier before each attempt: a raise here kills the
          worker exactly like a real supervision fault *)
}

val default_config : socket:string -> config
(** 2 workers, queue capacity 64, 8 MiB frames, 30 s deadline, one
    retry, 10 ms backoff base / 1 s cap, 5 s drain grace, chaos off *)

type t

val start : config -> t
(** Boot the daemon: bind the socket (replacing a stale file), warm
    the templates, spawn workers, supervisor and accept loop, and
    return immediately.  Ignores SIGPIPE (client disconnects must not
    kill the daemon).
    @raise Unix.Unix_error when the socket cannot be bound. *)

val drain : t -> unit
(** stop admitting analyze requests; in-flight and already-queued work
    continues.  Idempotent. *)

val draining : t -> bool

val running : t -> bool
(** [true] until {!stop} completes *)

val queue_depth : t -> int

val in_flight : t -> int

val retry_after_ms : t -> int
(** backpressure hint sent with rejections: mean observed service time
    × queue position ÷ workers.  Always within [50, 10_000] ms — the
    per-request estimate is clamped before any arithmetic, so a
    freshly-booted daemon with an empty service-time histogram still
    returns a sane value. *)

val stop : ?grace_s:float -> t -> unit
(** Graceful shutdown: {!drain}, wait up to the grace period (default
    [sv_drain_grace_s]) for queued + in-flight work, then cancel the
    stragglers' budgets cooperatively, reply to anything still queued,
    join every worker, and remove the socket.  Every admitted request
    has received its reply when [stop] returns.  Idempotent. *)
