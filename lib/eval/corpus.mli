(** RQ3: corpus analysis — runtimes and leak statistics over the
    generated Play-profile and malware-profile corpora. *)

type app_stat = {
  as_name : string;
  as_classes : int;
  as_time : float;
  as_findings : int;
  as_expected : int;
  as_found_expected : int;  (** planted leaks that were recovered *)
  as_outcome : Fd_resilience.Outcome.t;
      (** barrier outcome; a crashed app scores zero findings *)
}

type t = {
  c_profile : Fd_appgen.Generator.profile;
  c_stats : app_stat list;
}

val run :
  ?config:Fd_core.Config.t ->
  ?jobs:int ->
  profile:Fd_appgen.Generator.profile ->
  seed:int ->
  n:int ->
  unit ->
  t
(** [jobs] fans the per-app loop out over that many domains
    ({!Fd_util.Pool.map}); results are bit-identical at any job
    count *)

type summary = {
  s_apps : int;
  s_avg_time : float;
  s_min_time : float;
  s_max_time : float;
  s_leaks_per_app : float;
  s_recall : float;  (** on planted ground truth *)
  s_avg_classes : float;
}

val summarize : t -> summary

val outcome_distribution : t -> (string * int) list
(** apps per termination state ([complete], [crashed], …), sorted *)

val render : t -> string
