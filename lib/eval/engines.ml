(** The engines compared in the evaluation: FLOWDROID (this
    repository's core), the two simulated commercial comparators, and
    the FlowDroid ablation variants used by the benchmark harness. *)

open Fd_core

type t = {
  eng_name : string;
  eng_run : Fd_frontend.Apk.t -> Scoring.finding list;
  eng_degraded : (Fd_frontend.Apk.t -> Scoring.finding list) option;
      (** cheapest-rung variant, used as the barrier's one retry *)
}

let findings_of_result (r : Infoflow.result) : Scoring.finding list =
  List.map
    (fun (fd : Bidi.finding) ->
      (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
    r.Infoflow.r_findings

(* the last rung of the degradation ladder for [config] *)
let degraded_config config =
  match List.rev (Config.degradation_ladder config) with
  | (_, c) :: _ -> c
  | [] -> config

(** [flowdroid ?config ?name ()] wraps the core engine. *)
let flowdroid ?(config = Config.default) ?(name = "FlowDroid") () =
  {
    eng_name = name;
    eng_run = (fun apk -> findings_of_result (Infoflow.analyze_apk ~config apk));
    eng_degraded =
      Some
        (fun apk ->
          findings_of_result
            (Infoflow.analyze_apk ~config:(degraded_config config) apk));
  }

(** [appscan] — the AppScan-Source-like comparator. *)
let appscan =
  {
    eng_name = "AppScan";
    eng_run = Fd_baselines.Simple_taint.run_appscan;
    eng_degraded = None;
  }

(** [fortify] — the Fortify-SCA-like comparator. *)
let fortify =
  {
    eng_name = "Fortify";
    eng_run = Fd_baselines.Simple_taint.run_fortify;
    eng_degraded = None;
  }

(** {2 Crash-isolated runs} *)

type protected_result = {
  pr_findings : Scoring.finding list;  (** [[]] when every attempt crashed *)
  pr_outcome : Fd_resilience.Outcome.t;
      (** [Complete], or the first attempt's [Crashed] when nothing
          succeeded *)
  pr_degraded : bool;  (** the findings came from the degraded retry *)
}

let m_retries = Fd_obs.Metrics.counter "resilience.retries"

(** [run_protected e apk] runs [e] under an exception barrier; when
    the primary run crashes and the engine has a degraded variant, it
    gets one retry.  Never raises. *)
let run_protected (e : t) apk =
  match Fd_resilience.Barrier.protect ~label:e.eng_name (fun () -> e.eng_run apk) with
  | Ok fs ->
      { pr_findings = fs; pr_outcome = Fd_resilience.Outcome.Complete;
        pr_degraded = false }
  | Error first -> (
      match e.eng_degraded with
      | None -> { pr_findings = []; pr_outcome = first; pr_degraded = false }
      | Some run -> (
          Fd_obs.Metrics.incr m_retries;
          match
            Fd_resilience.Barrier.protect
              ~label:(e.eng_name ^ " (degraded)")
              (fun () -> run apk)
          with
          | Ok fs ->
              { pr_findings = fs; pr_outcome = Fd_resilience.Outcome.Complete;
                pr_degraded = true }
          | Error _ ->
              (* report the primary failure; the degraded crash is
                 secondary *)
              { pr_findings = []; pr_outcome = first; pr_degraded = true }))

(** Ablations of the FlowDroid engine (DESIGN.md experiments). *)
let ablations =
  [
    flowdroid ~name:"FD-noLifecycle"
      ~config:{ Config.default with Config.lifecycle = false } ();
    flowdroid ~name:"FD-noCallbacks"
      ~config:{ Config.default with Config.callbacks = false } ();
    flowdroid ~name:"FD-noCtxInjection"
      ~config:{ Config.default with Config.context_injection = false } ();
    flowdroid ~name:"FD-noActivation"
      ~config:{ Config.default with Config.activation_statements = false } ();
    flowdroid ~name:"FD-noAlias"
      ~config:{ Config.default with Config.alias_search = false } ();
    flowdroid ~name:"FD-globalCallbacks"
      ~config:{ Config.default with Config.per_component_callbacks = false } ();
    flowdroid ~name:"FD-RTA"
      ~config:
        { Config.default with
          Config.cg_algorithm = Fd_callgraph.Callgraph.Rta } ();
  ]

(** [k_variant k] — FlowDroid at access-path bound [k] (the A1
    sweep). *)
let k_variant k =
  flowdroid
    ~name:(Printf.sprintf "FD-k%d" k)
    ~config:{ Config.default with Config.max_access_path = k }
    ()
