(** Table 2 regeneration: FlowDroid over SecuriBench-µ, grouped
    TP/FP counts. *)

open Fd_securibench
module Table = Fd_util.Table

type group_result = {
  gr_group : string;
  gr_expected : int;
  gr_tp : int;
  gr_fp : int;
  gr_na : bool;
}

type t = {
  group_results : group_result list;
  per_case : (string * Scoring.verdict) list;
  per_case_outcomes : (string * Fd_resilience.Outcome.t) list;
      (** barrier outcome per case; anything but [Complete] means the
          case's verdict scored empty findings *)
}

(** [run_case ?config case] analyses one case with the core engine and
    the suite's manually supplied sources/sinks. *)
let run_case ?(config = Fd_core.Config.default) (case : Sb_case.t) =
  let defs = Fd_frontend.Sourcesink.of_string Sb_case.sources_sinks_config in
  let entries =
    List.map
      (fun (cls, mname) ->
        Fd_callgraph.Mkey.{ mk_class = cls; mk_name = mname; mk_arity = 2 })
      case.Sb_case.sb_entries
  in
  let result =
    Fd_core.Infoflow.analyze_plain ~config ~synthetic_main:true
      ~classes:case.Sb_case.sb_classes ~entries ~defs ()
  in
  let findings = Engines.findings_of_result result in
  Scoring.score
    ~expected:(List.map (fun (s, k) -> (s, k)) case.Sb_case.sb_expected)
    ~findings

(* one case under the crash barrier, with a degraded retry: a crash
   scores as zero findings instead of aborting the suite *)
let run_case_protected ?(config = Fd_core.Config.default) (case : Sb_case.t) =
  match
    Fd_resilience.Barrier.protect_with_retry ~label:case.Sb_case.sb_name
      (fun () -> run_case ~config case)
      ~retry:(fun () ->
        run_case ~config:(Engines.degraded_config config) case)
  with
  | Ok v -> (v, Fd_resilience.Outcome.Complete)
  | Error o ->
      ( Scoring.score
          ~expected:(List.map (fun (s, k) -> (s, k)) case.Sb_case.sb_expected)
          ~findings:[],
        o )

(** [run ?jobs ?config ()] evaluates the whole suite; each case runs
    under the crash barrier.  [jobs] fans the per-case loop out over
    that many domains ({!Fd_util.Pool.map}); results are bit-identical
    at any job count. *)
let run ?jobs ?config () =
  let protected_runs =
    Fd_util.Pool.map ?jobs
      (fun c -> (c.Sb_case.sb_name, run_case_protected ?config c))
      Sb_suite.all
  in
  let per_case = List.map (fun (n, (v, _)) -> (n, v)) protected_runs in
  let per_case_outcomes =
    List.map (fun (n, (_, o)) -> (n, o)) protected_runs
  in
  let group_results =
    List.map
      (fun g ->
        if List.mem g Sb_suite.na_groups then
          { gr_group = g; gr_expected = 0; gr_tp = 0; gr_fp = 0; gr_na = true }
        else begin
          let cases = Sb_suite.by_group g in
          let tp, fp =
            List.fold_left
              (fun (tp, fp) c ->
                let v = List.assoc c.Sb_case.sb_name per_case in
                (tp + v.Scoring.tp, fp + v.Scoring.fp))
              (0, 0) cases
          in
          {
            gr_group = g;
            gr_expected = Sb_suite.expected_in g;
            gr_tp = tp;
            gr_fp = fp;
            gr_na = false;
          }
        end)
      Sb_suite.groups
  in
  { group_results; per_case; per_case_outcomes }

(** [totals t] is (found, expected, fp) over the implemented groups. *)
let totals t =
  List.fold_left
    (fun (f, e, fp) gr -> (f + gr.gr_tp, e + gr.gr_expected, fp + gr.gr_fp))
    (0, 0, 0) t.group_results

(** [render t] produces the Table 2-style text table. *)
let render t =
  let rows =
    List.map
      (fun gr ->
        if gr.gr_na then Table.Row [ gr.gr_group; "n/a"; "n/a" ]
        else
          Table.Row
            [
              gr.gr_group;
              Printf.sprintf "%d/%d" gr.gr_tp gr.gr_expected;
              string_of_int gr.gr_fp;
            ])
      t.group_results
  in
  let found, expected, fp = totals t in
  Table.render
    (Table.make
       ~header:[ "Test-case group"; "TP"; "FP" ]
       (rows
       @ [
           Table.Sep;
           Table.Row [ "Sum"; Printf.sprintf "%d/%d" found expected; string_of_int fp ];
         ]))
