(** Table 1 regeneration: run a set of engines over the DROIDBENCH
    suite and render the per-app marker table with the paper's summary
    lines (sums, precision, recall, F-measure). *)

open Fd_droidbench
module Table = Fd_util.Table

type app_result = {
  ar_app : Bench_app.t;
  ar_verdicts : (string * Scoring.verdict) list;  (** engine name -> verdict *)
  ar_outcomes : (string * Engines.protected_result) list;
      (** engine name -> barrier outcome (crashes show up here, not as
          exceptions) *)
}

type t = {
  engines : string list;
  rows : app_result list;
  totals : (string * (int * int * int)) list;  (** name -> (tp, fp, fn) *)
}

(** [run ?jobs ?apps engines] evaluates [engines] over the scored
    suite.  Each engine runs under the crash barrier (with one
    degraded retry when available), so a hostile case can never abort
    the table; a crashed run scores its expectations as misses.

    [jobs] fans the per-app loop out over that many domains
    ({!Fd_util.Pool.map}); each app still runs its solvers
    sequentially, and the result is bit-identical at any job count. *)
let run ?jobs ?(apps = Suite.scored) (engines : Engines.t list) =
  let rows =
    Fd_util.Pool.map ?jobs
      (fun (app : Bench_app.t) ->
        let protected_runs =
          List.map
            (fun (e : Engines.t) ->
              ( e.Engines.eng_name,
                Engines.run_protected e app.Bench_app.app_apk ))
            engines
        in
        {
          ar_app = app;
          ar_verdicts =
            List.map
              (fun (name, pr) ->
                ( name,
                  Scoring.score
                    ~expected:
                      (List.map Scoring.of_bench_expectation
                         app.Bench_app.app_expected)
                    ~findings:pr.Engines.pr_findings ))
              protected_runs;
          ar_outcomes = protected_runs;
        })
      apps
  in
  let totals =
    List.map
      (fun (e : Engines.t) ->
        let tp, fp, fn =
          List.fold_left
            (fun (tp, fp, fn) row ->
              let v = List.assoc e.Engines.eng_name row.ar_verdicts in
              (tp + v.Scoring.tp, fp + v.Scoring.fp, fn + v.Scoring.fn))
            (0, 0, 0) rows
        in
        (e.Engines.eng_name, (tp, fp, fn)))
      engines
  in
  { engines = List.map (fun (e : Engines.t) -> e.Engines.eng_name) engines;
    rows; totals }

(** [render t] produces the Table 1-style text table. *)
let render t =
  let header = "App Name" :: t.engines in
  let body =
    List.concat_map
      (fun cat ->
        let cat_rows =
          List.filter
            (fun r -> r.ar_app.Bench_app.app_category = cat)
            t.rows
        in
        if cat_rows = [] then []
        else
          Table.Section cat
          :: List.map
               (fun r ->
                 Table.Row
                   (r.ar_app.Bench_app.app_name
                   :: List.map
                        (fun name ->
                          Scoring.markers (List.assoc name r.ar_verdicts))
                        t.engines))
               cat_rows)
      Suite.categories
  in
  let sums =
    [
      Table.Sep;
      Table.Row
        ("● correct, higher better"
        :: List.map (fun n -> let tp, _, _ = List.assoc n t.totals in string_of_int tp) t.engines);
      Table.Row
        ("✱ false warn., lower better"
        :: List.map (fun n -> let _, fp, _ = List.assoc n t.totals in string_of_int fp) t.engines);
      Table.Row
        ("○ missed, lower better"
        :: List.map (fun n -> let _, _, fn = List.assoc n t.totals in string_of_int fn) t.engines);
      Table.Row
        ("Precision p = ●/(●+✱)"
        :: List.map
             (fun n ->
               let tp, fp, _ = List.assoc n t.totals in
               Table.pct tp (tp + fp))
             t.engines);
      Table.Row
        ("Recall r = ●/(●+○)"
        :: List.map
             (fun n ->
               let tp, _, fn = List.assoc n t.totals in
               Table.pct tp (tp + fn))
             t.engines);
      Table.Row
        ("F-measure 2pr/(p+r)"
        :: List.map
             (fun n ->
               let tp, fp, fn = List.assoc n t.totals in
               let p = Scoring.precision ~tp ~fp in
               let r = Scoring.recall ~tp ~fn in
               Printf.sprintf "%.2f" (Table.f_measure p r))
             t.engines);
    ]
  in
  Table.render (Table.make ~header (body @ sums))

(** [totals_of t name] is the (tp, fp, fn) triple of one engine. *)
let totals_of t name = List.assoc name t.totals

(** [outcome_rows t] is one line per app: the per-engine termination
    state ([complete], [crashed: …], with a [degraded] marker when the
    retry supplied the findings). *)
let outcome_rows t =
  List.map
    (fun r ->
      ( r.ar_app.Bench_app.app_name,
        List.map
          (fun (name, (pr : Engines.protected_result)) ->
            let s = Fd_resilience.Outcome.to_string pr.Engines.pr_outcome in
            (name, if pr.Engines.pr_degraded then s ^ " (degraded)" else s))
          r.ar_outcomes ))
    t.rows

(** [outcome_distribution t] counts apps per termination state,
    aggregated over every engine run (the CHANGES.md statistic). *)
let outcome_distribution t =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (_, (pr : Engines.protected_result)) ->
          let key =
            match pr.Engines.pr_outcome with
            | Fd_resilience.Outcome.Crashed _ -> "crashed"
            | o -> Fd_resilience.Outcome.to_string o
          in
          let key = if pr.Engines.pr_degraded then key ^ "+degraded" else key in
          let prev = Option.value (List.assoc_opt key acc) ~default:0 in
          (key, prev + 1) :: List.remove_assoc key acc)
        acc r.ar_outcomes)
    [] t.rows
  |> List.sort compare

(** [render_outcomes t] is a text table of {!outcome_rows}, listing
    only apps where some engine did not complete cleanly (empty string
    when every run completed). *)
let render_outcomes t =
  let interesting =
    List.filter
      (fun (_, cells) ->
        List.exists (fun (_, s) -> s <> "complete") cells)
      (outcome_rows t)
  in
  if interesting = [] then ""
  else
    Table.render
      (Table.make
         ~header:("App Name" :: t.engines)
         (List.map
            (fun (app, cells) ->
              Table.Row (app :: List.map (fun n -> List.assoc n cells) t.engines))
            interesting))
