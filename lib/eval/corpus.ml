(** RQ3: corpus analysis — runtimes and leak statistics over the
    generated Play-profile and malware-profile corpora, reported the
    way Section 6.3 does (average/min/max runtime, leaks per app). *)

open Fd_core
module Table = Fd_util.Table

type app_stat = {
  as_name : string;
  as_classes : int;
  as_time : float;
  as_findings : int;
  as_expected : int;
  as_found_expected : int;  (** planted leaks that were recovered *)
  as_outcome : Fd_resilience.Outcome.t;
      (** barrier outcome; a crashed app scores zero findings *)
}

type t = {
  c_profile : Fd_appgen.Generator.profile;
  c_stats : app_stat list;
}

(** [run ?jobs ~profile ~seed ~n ()] generates and analyses a corpus.
    Each app runs under the crash barrier with one degraded retry, so
    one hostile app cannot abort the batch.  [jobs] fans the per-app
    loop out over that many domains ({!Fd_util.Pool.map}); per-app
    times are wall-clock, so they stay meaningful under parallelism
    (CPU time would aggregate all workers). *)
let run ?(config = Config.default) ?jobs ~profile ~seed ~n () =
  let apps = Fd_appgen.Generator.corpus ~profile ~seed n in
  (* no per-app [Metrics.reset]/[Trace.reset] here: a global reset
     under [Pool] fan-out clobbers every concurrent app's baseline
     (the PR 6 race).  The registry stays process-cumulative; callers
     wanting per-app scoping snapshot-and-diff around a run instead
     ({!Fd_obs.Metrics.with_delta}), which never mutates shared
     state *)
  let stats =
    Fd_util.Pool.map ?jobs
      (fun (ga : Fd_appgen.Generator.gen_app) ->
        let t0 = Unix.gettimeofday () in
        let findings, outcome =
          match
            Fd_resilience.Barrier.protect_with_retry
              ~label:ga.Fd_appgen.Generator.ga_name
              (fun () ->
                let r = Infoflow.analyze_apk ~config ga.Fd_appgen.Generator.ga_apk in
                (Engines.findings_of_result r,
                 r.Infoflow.r_stats.Infoflow.st_outcome))
              ~retry:(fun () ->
                let r =
                  Infoflow.analyze_apk
                    ~config:(Engines.degraded_config config)
                    ga.Fd_appgen.Generator.ga_apk
                in
                (Engines.findings_of_result r,
                 r.Infoflow.r_stats.Infoflow.st_outcome))
          with
          | Ok (fs, o) -> (fs, o)
          | Error o -> ([], o)
        in
        let t1 = Unix.gettimeofday () in
        let v =
          Scoring.score ~expected:ga.Fd_appgen.Generator.ga_expected ~findings
        in
        {
          as_name = ga.Fd_appgen.Generator.ga_name;
          as_classes = ga.Fd_appgen.Generator.ga_classes;
          as_time = t1 -. t0;
          as_findings = List.length findings;
          as_expected = List.length ga.Fd_appgen.Generator.ga_expected;
          as_found_expected = v.Scoring.tp;
          as_outcome = outcome;
        })
      apps
  in
  { c_profile = profile; c_stats = stats }

(** [outcome_distribution t] counts apps per termination state. *)
let outcome_distribution t =
  List.fold_left
    (fun acc s ->
      let key =
        match s.as_outcome with
        | Fd_resilience.Outcome.Crashed _ -> "crashed"
        | o -> Fd_resilience.Outcome.to_string o
      in
      let prev = Option.value (List.assoc_opt key acc) ~default:0 in
      (key, prev + 1) :: List.remove_assoc key acc)
    [] t.c_stats
  |> List.sort compare

type summary = {
  s_apps : int;
  s_avg_time : float;
  s_min_time : float;
  s_max_time : float;
  s_leaks_per_app : float;
  s_recall : float;  (** on planted ground truth *)
  s_avg_classes : float;
}

(** [summarize t] aggregates the per-app statistics. *)
let summarize t =
  let n = List.length t.c_stats in
  let fn = float_of_int (max n 1) in
  let times = List.map (fun s -> s.as_time) t.c_stats in
  let total_found = List.fold_left (fun a s -> a + s.as_findings) 0 t.c_stats in
  let total_exp = List.fold_left (fun a s -> a + s.as_expected) 0 t.c_stats in
  let total_tp =
    List.fold_left (fun a s -> a + s.as_found_expected) 0 t.c_stats
  in
  {
    s_apps = n;
    s_avg_time = List.fold_left ( +. ) 0.0 times /. fn;
    s_min_time = List.fold_left min infinity times;
    s_max_time = List.fold_left max 0.0 times;
    s_leaks_per_app = float_of_int total_found /. fn;
    s_recall =
      (if total_exp = 0 then 1.0
       else float_of_int total_tp /. float_of_int total_exp);
    s_avg_classes =
      List.fold_left (fun a s -> a + s.as_classes) 0 t.c_stats
      |> float_of_int |> fun x -> x /. fn;
  }

(** [render t] prints the corpus summary in the paper's reporting
    style. *)
let render t =
  let s = summarize t in
  let profile = Fd_appgen.Generator.string_of_profile t.c_profile in
  Table.render
    (Table.make
       ~header:[ Printf.sprintf "RQ3 corpus: %s" profile; "value" ]
       [
         Table.Row [ "apps analysed"; string_of_int s.s_apps ];
         Table.Row [ "avg classes/app"; Printf.sprintf "%.1f" s.s_avg_classes ];
         Table.Row [ "avg runtime"; Printf.sprintf "%.4f s" s.s_avg_time ];
         Table.Row [ "min runtime"; Printf.sprintf "%.4f s" s.s_min_time ];
         Table.Row [ "max runtime"; Printf.sprintf "%.4f s" s.s_max_time ];
         Table.Row
           [ "reported leaks per app"; Printf.sprintf "%.2f" s.s_leaks_per_app ];
         Table.Row
           [ "recall on planted leaks"; Printf.sprintf "%.0f%%" (100. *. s.s_recall) ];
         Table.Row
           [ "outcomes";
             String.concat ", "
               (List.map
                  (fun (k, n) -> Printf.sprintf "%s: %d" k n)
                  (outcome_distribution t)) ];
       ])
