(** The engines compared in the evaluation: FLOWDROID (this
    repository's core), the two simulated commercial comparators, and
    the ablation variants the benchmark harness sweeps. *)

type t = {
  eng_name : string;
  eng_run : Fd_frontend.Apk.t -> Scoring.finding list;
  eng_degraded : (Fd_frontend.Apk.t -> Scoring.finding list) option;
      (** cheapest-rung variant, used as the barrier's one retry;
          [None] for the comparator baselines *)
}

val findings_of_result : Fd_core.Infoflow.result -> Scoring.finding list

val degraded_config : Fd_core.Config.t -> Fd_core.Config.t
(** the last rung of {!Fd_core.Config.degradation_ladder} for a
    config — what the barrier's retry runs under *)

type protected_result = {
  pr_findings : Scoring.finding list;  (** [[]] when every attempt crashed *)
  pr_outcome : Fd_resilience.Outcome.t;
      (** [Complete], or the first attempt's [Crashed] when nothing
          succeeded *)
  pr_degraded : bool;  (** the findings came from the degraded retry *)
}

val run_protected : t -> Fd_frontend.Apk.t -> protected_result
(** [run_protected e apk] runs [e] under an exception barrier; when
    the primary run crashes and the engine has a degraded variant, it
    gets one retry.  Never raises. *)

val flowdroid : ?config:Fd_core.Config.t -> ?name:string -> unit -> t
val appscan : t
val fortify : t

val ablations : t list
(** no-lifecycle, no-callbacks, no-context-injection, no-activation,
    no-alias, global-callbacks, RTA *)

val k_variant : int -> t
(** FlowDroid at access-path bound [k] (the A1 sweep) *)
