(** A generic IFDS solver.

    Implements the tabulation algorithm of Reps, Horwitz and Sagiv
    (POPL'95) for inter-procedural, finite, distributive subset
    problems, with the practical extensions of Naeem, Lhoták and
    Rodriguez (CC'10) that FlowDroid's solvers build on:

    - the exploded supergraph is never materialised; flow functions
      are applied on demand, so only facts that actually arise are
      computed;
    - *incoming sets* record which caller contexts entered each callee
      context, so end summaries can be mapped back precisely when they
      are discovered after the call was processed.

    A {e path edge} [⟨sp, d1⟩ → ⟨n, d2⟩] states: if fact [d1] holds at
    the start point [sp] of [n]'s procedure, then [d2] holds just
    before [n].  The solver maintains the set of path edges in a
    worklist-driven fixed point.

    The specialised bidirectional taint solver of the paper
    (Algorithms 1 and 2) lives in [Fd_core.Bidi]; this module is the
    textbook single-direction algorithm, used by the comparator
    baselines and as a reference implementation. *)

module type PROBLEM = sig
  type proc
  (** procedure identifiers *)

  type node
  (** program points (statements) *)

  type fact
  (** data-flow facts; must include a distinguished zero fact *)

  val proc_equal : proc -> proc -> bool
  val proc_hash : proc -> int
  val node_equal : node -> node -> bool
  val node_hash : node -> int
  val fact_equal : fact -> fact -> bool
  val fact_hash : fact -> int
  val zero : fact

  val proc_of : node -> proc
  (** the procedure containing a node *)

  val start_of : proc -> node
  (** the unique start point of a procedure *)

  val succs : node -> node list
  (** intra-procedural successors; for a call node these are its
      return sites *)

  val is_exit : node -> bool
  (** return/throw nodes *)

  val callees : node -> proc list
  (** resolved targets when [node] is a call with analysable targets;
      [[]] otherwise *)

  val normal_flow : node -> fact -> fact list
  (** flow across a non-call node to its successors *)

  val call_flow : node -> proc -> fact -> fact list
  (** flow from a call node into a callee (argument passing) *)

  val return_flow :
    call:node -> callee:proc -> exit:node -> return_site:node -> fact -> fact list
  (** flow from a callee exit back to a return site of the call *)

  val call_to_return_flow : node -> fact -> fact list
  (** flow across a call on the caller's side (facts untouched by the
      callee) *)
end

(* solver-wide metrics, shared with the specialised bidirectional
   solver in [Fd_core.Bidi] (both are IFDS tabulations): handles are
   resolved once so the hot-path cost is a single field increment *)
module M = Fd_obs.Metrics

let m_path_edges = M.counter "ifds.path_edges"
let m_worklist_pushes = M.counter "ifds.worklist_pushes"
let m_worklist_pops = M.counter "ifds.worklist_pops"
let m_summaries = M.counter "ifds.summaries_installed"
let m_summary_apps = M.counter "ifds.summary_applications"
let m_flow_normal = M.counter "ifds.flow.normal"
let m_flow_call = M.counter "ifds.flow.call"
let m_flow_return = M.counter "ifds.flow.return"
let m_flow_c2r = M.counter "ifds.flow.call_to_return"

module Make (P : PROBLEM) = struct
  module Ntbl = Hashtbl.Make (struct
    type t = P.node

    let equal = P.node_equal
    let hash = P.node_hash
  end)

  module NFtbl = Hashtbl.Make (struct
    type t = P.node * P.fact

    let equal (n1, f1) (n2, f2) = P.node_equal n1 n2 && P.fact_equal f1 f2
    let hash (n, f) = Hashtbl.hash (P.node_hash n, P.fact_hash f)
  end)

  module PFtbl = Hashtbl.Make (struct
    type t = P.proc * P.fact

    let equal (p1, f1) (p2, f2) = P.proc_equal p1 p2 && P.fact_equal f1 f2
    let hash (p, f) = Hashtbl.hash (P.proc_hash p, P.fact_hash f)
  end)

  module Ftbl = Hashtbl.Make (struct
    type t = P.fact

    let equal = P.fact_equal
    let hash = P.fact_hash
  end)

  type t = {
    (* (sp, d1) -> set of (n, d2): all discovered path edges, grouped by
       their context for summary application *)
    path_edges : unit NFtbl.t NFtbl.t;
    (* facts per node (the final analysis result) *)
    results_facts : unit Ftbl.t Ntbl.t;
    (* end summaries: (callee, entry fact) -> set of (exit node, exit fact) *)
    end_summaries : unit NFtbl.t PFtbl.t;
    (* incoming: (callee, entry fact) -> set of (call node, caller entry
       context (sp,d1), caller fact at call) *)
    incoming : unit NFtbl.t PFtbl.t; (* values keyed on (call node, d2) *)
    incoming_ctx : ((P.node * P.fact) * (P.node * P.fact), unit) Hashtbl.t;
    worklist : ((P.node * P.fact) * (P.node * P.fact)) Queue.t;
    mutable edge_count : int;
    budget : Fd_resilience.Budget.t;
  }

  let create ?(budget = Fd_resilience.Budget.unlimited ()) () =
    {
      path_edges = NFtbl.create 256;
      results_facts = Ntbl.create 256;
      end_summaries = PFtbl.create 64;
      incoming = PFtbl.create 64;
      incoming_ctx = Hashtbl.create 256;
      worklist = Queue.create ();
      edge_count = 0;
      budget;
    }

  let record_result t n d =
    let tbl =
      match Ntbl.find_opt t.results_facts n with
      | Some tbl -> tbl
      | None ->
          let tbl = Ftbl.create 7 in
          Ntbl.replace t.results_facts n tbl;
          tbl
    in
    Ftbl.replace tbl d ()

  (* propagate: add path edge if new and enqueue *)
  let propagate t src tgt =
    let set =
      match NFtbl.find_opt t.path_edges src with
      | Some s -> s
      | None ->
          let s = NFtbl.create 16 in
          NFtbl.replace t.path_edges src s;
          s
    in
    if not (NFtbl.mem set tgt) then begin
      if Fd_resilience.Budget.tick t.budget then begin
        NFtbl.replace set tgt ();
        t.edge_count <- t.edge_count + 1;
        M.incr m_path_edges;
        M.incr m_worklist_pushes;
        record_result t (fst tgt) (snd tgt);
        Queue.add (src, tgt) t.worklist
      end
    end

  let add_incoming t callee_ctx entry =
    let set =
      match PFtbl.find_opt t.incoming callee_ctx with
      | Some s -> s
      | None ->
          let s = NFtbl.create 8 in
          PFtbl.replace t.incoming callee_ctx s;
          s
    in
    NFtbl.replace set entry ()

  let add_summary t callee_ctx exit_pair =
    let set =
      match PFtbl.find_opt t.end_summaries callee_ctx with
      | Some s -> s
      | None ->
          let s = NFtbl.create 8 in
          PFtbl.replace t.end_summaries callee_ctx s;
          s
    in
    if NFtbl.mem set exit_pair then false
    else begin
      NFtbl.replace set exit_pair ();
      M.incr m_summaries;
      true
    end

  let process t ((sp, d1) as src) ((n, d2) : P.node * P.fact) =
    let callees = P.callees n in
    if callees <> [] then begin
      (* a call node with analysable targets *)
      List.iter
        (fun callee ->
          M.incr m_flow_call;
          let entry_facts = P.call_flow n callee d2 in
          let s_callee = P.start_of callee in
          List.iter
            (fun d3 ->
              let callee_ctx = (callee, d3) in
              (* remember the caller context for later summaries *)
              add_incoming t callee_ctx (n, d2);
              Hashtbl.replace t.incoming_ctx ((n, d2), (sp, d1)) ();
              (* seed the callee *)
              propagate t (s_callee, d3) (s_callee, d3);
              (* apply already-known summaries *)
              match PFtbl.find_opt t.end_summaries callee_ctx with
              | None -> ()
              | Some sums ->
                  NFtbl.iter
                    (fun (e, d4) () ->
                      M.incr m_summary_apps;
                      List.iter
                        (fun r ->
                          M.incr m_flow_return;
                          List.iter
                            (fun d5 -> propagate t src (r, d5))
                            (P.return_flow ~call:n ~callee ~exit:e
                               ~return_site:r d4))
                        (P.succs n))
                    sums)
            entry_facts)
        callees;
      (* call-to-return edge *)
      M.incr m_flow_c2r;
      List.iter
        (fun r ->
          List.iter
            (fun d3 -> propagate t src (r, d3))
            (P.call_to_return_flow n d2))
        (P.succs n)
    end
    else if P.is_exit n then begin
      (* install an end summary for this callee context and flow back
         into every caller context recorded in the incoming set *)
      let callee = P.proc_of n in
      let callee_ctx = (callee, d1) in
      if add_summary t callee_ctx (n, d2) then begin
        (* sp must be the callee's start: context of this path edge *)
        ignore sp;
        match PFtbl.find_opt t.incoming callee_ctx with
        | None -> ()
        | Some inc ->
            NFtbl.iter
              (fun (c, dc) () ->
                M.incr m_flow_return;
                List.iter
                  (fun r ->
                    List.iter
                      (fun d5 ->
                        (* resume in every caller context that passed
                           (c, dc) into this callee *)
                        Hashtbl.iter
                          (fun ((c', dc'), (spc, d1c)) () ->
                            if P.node_equal c' c && P.fact_equal dc' dc then
                              propagate t (spc, d1c) (r, d5))
                          t.incoming_ctx)
                      (P.return_flow ~call:c ~callee ~exit:n ~return_site:r d2))
                  (P.succs c))
              inc
      end
    end
    else begin
      (* plain intra-procedural node (includes calls with no analysable
         callee: their flow is the caller's business via normal_flow) *)
      M.incr m_flow_normal;
      List.iter
        (fun m ->
          List.iter (fun d3 -> propagate t src (m, d3)) (P.normal_flow n d2))
        (P.succs n)
    end

  (** [solve ?budget ~seeds ()] runs the tabulation to a fixed point
      (or until [budget] trips — check {!outcome} afterwards).  Each
      seed [(n, d)] asserts that [d] holds just before [n] (typically
      [(entry, zero)]). *)
  let solve ?budget ~seeds () =
    let t = create ?budget () in
    List.iter
      (fun (n, d) ->
        let sp = P.start_of (P.proc_of n) in
        (* context: the zero fact at the procedure start; seeds are
           unconditional *)
        propagate t (sp, P.zero) (n, d);
        if not (P.fact_equal d P.zero) then propagate t (sp, P.zero) (n, P.zero))
      seeds;
    while
      (not (Queue.is_empty t.worklist))
      && not (Fd_resilience.Budget.stopped t.budget)
    do
      let src, tgt = Queue.pop t.worklist in
      M.incr m_worklist_pops;
      process t src tgt
    done;
    t

  (** [outcome t] is the typed termination state of the solve
      ([Complete] unless the budget tripped). *)
  let outcome t = Fd_resilience.Budget.outcome t.budget

  (** [results_at t n] is every fact that may hold just before [n]. *)
  let results_at t n =
    match Ntbl.find_opt t.results_facts n with
    | None -> []
    | Some tbl -> Ftbl.fold (fun d () acc -> d :: acc) tbl []

  (** [edge_count t] is the number of discovered path edges (a size
      metric for benchmarks). *)
  let edge_count t = t.edge_count
end
