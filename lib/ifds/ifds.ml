(** A generic IFDS solver.

    Implements the tabulation algorithm of Reps, Horwitz and Sagiv
    (POPL'95) for inter-procedural, finite, distributive subset
    problems, with the practical extensions of Naeem, Lhoták and
    Rodriguez (CC'10) that FlowDroid's solvers build on:

    - the exploded supergraph is never materialised; flow functions
      are applied on demand, so only facts that actually arise are
      computed;
    - *incoming sets* record which caller contexts entered each callee
      context, so end summaries can be mapped back precisely when they
      are discovered after the call was processed.

    A {e path edge} [⟨sp, d1⟩ → ⟨n, d2⟩] states: if fact [d1] holds at
    the start point [sp] of [n]'s procedure, then [d2] holds just
    before [n].  The solver maintains the set of path edges in a
    worklist-driven fixed point.

    Internally every proc, node and fact is hash-consed into a
    per-solver {!Fd_util.Intern} pool, so the tabulation tables are
    keyed by small integer tuples instead of deep structural values:
    one structural hash per distinct value, integer mixing afterwards.
    Pools are per-solver instance, so independent solves (including
    solves running on different domains) share nothing.

    The specialised bidirectional taint solver of the paper
    (Algorithms 1 and 2) lives in [Fd_core.Bidi]; this module is the
    textbook single-direction algorithm, used by the comparator
    baselines and as a reference implementation. *)

module type PROBLEM = sig
  type proc
  (** procedure identifiers *)

  type node
  (** program points (statements) *)

  type fact
  (** data-flow facts; must include a distinguished zero fact *)

  val proc_equal : proc -> proc -> bool
  val proc_hash : proc -> int
  val node_equal : node -> node -> bool
  val node_hash : node -> int
  val fact_equal : fact -> fact -> bool
  val fact_hash : fact -> int
  val zero : fact

  val proc_of : node -> proc
  (** the procedure containing a node *)

  val start_of : proc -> node
  (** the unique start point of a procedure *)

  val succs : node -> node list
  (** intra-procedural successors; for a call node these are its
      return sites *)

  val is_exit : node -> bool
  (** return/throw nodes *)

  val callees : node -> proc list
  (** resolved targets when [node] is a call with analysable targets;
      [[]] otherwise *)

  val normal_flow : node -> fact -> fact list
  (** flow across a non-call node to its successors *)

  val call_flow : node -> proc -> fact -> fact list
  (** flow from a call node into a callee (argument passing) *)

  val return_flow :
    call:node -> callee:proc -> exit:node -> return_site:node -> fact -> fact list
  (** flow from a callee exit back to a return site of the call *)

  val call_to_return_flow : node -> fact -> fact list
  (** flow across a call on the caller's side (facts untouched by the
      callee) *)
end

(* solver-wide metrics, shared with the specialised bidirectional
   solver in [Fd_core.Bidi] (both are IFDS tabulations): handles are
   resolved once so the hot-path cost is a single field increment *)
module M = Fd_obs.Metrics

let m_path_edges = M.counter "ifds.path_edges"
let m_worklist_pushes = M.counter "ifds.worklist_pushes"
let m_worklist_pops = M.counter "ifds.worklist_pops"
let m_dedup_hits = M.counter "ifds.worklist_dedup_hits"
let m_summaries = M.counter "ifds.summaries_installed"
let m_summary_apps = M.counter "ifds.summary_applications"
let m_flow_normal = M.counter "ifds.flow.normal"
let m_flow_call = M.counter "ifds.flow.call"
let m_flow_return = M.counter "ifds.flow.return"
let m_flow_c2r = M.counter "ifds.flow.call_to_return"
let g_intern_nodes = M.gauge "intern.ifds.nodes.size"
let g_intern_procs = M.gauge "intern.ifds.procs.size"
let g_intern_facts = M.gauge "intern.ifds.facts.size"
let g_intern_hits = M.gauge "intern.ifds.facts.hits"
let g_intern_misses = M.gauge "intern.ifds.facts.misses"
let g_bytes_tables = M.gauge "mem.ifds_tables.bytes"

module Flight = Fd_obs.Ring.Flight

module Make (P : PROBLEM) = struct
  module Node_pool = Fd_util.Intern.Make (struct
    type t = P.node

    let equal = P.node_equal
    let hash = P.node_hash
  end)

  module Proc_pool = Fd_util.Intern.Make (struct
    type t = P.proc

    let equal = P.proc_equal
    let hash = P.proc_hash
  end)

  module Fact_pool = Fd_util.Intern.Make (struct
    type t = P.fact

    let equal = P.fact_equal
    let hash = P.fact_hash
  end)

  module Int_tbl = Hashtbl.Make (Int)

  module I2_tbl = Hashtbl.Make (struct
    type t = int * int

    let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
    let hash (a, b) = Fd_util.Intern.combine a b
  end)

  module I4_tbl = Hashtbl.Make (struct
    type t = int * int * int * int

    let equal (a1, b1, c1, d1) (a2, b2, c2, d2) =
      a1 = a2 && b1 = b2 && c1 = c2 && d1 = d2

    let hash (a, b, c, d) =
      Fd_util.Intern.combine
        (Fd_util.Intern.combine (Fd_util.Intern.combine a b) c)
        d
  end)

  (* a worklist item: both pairs carry the canonical (pooled)
     representatives alongside their ids, so downstream flow functions
     hit the pools' [==] fast paths *)
  type item = {
    it_sp : P.node;
    it_d1 : P.fact;
    it_sp_id : int;
    it_d1_id : int;
    it_n : P.node;
    it_d2 : P.fact;
    it_n_id : int;
    it_d2_id : int;
  }

  (** external summary provider — the persistent-store integration
      point of the generic solver: [sh_lookup callee entry] returns the
      already-known end summaries of a (callee, entry-fact) context, in
      which case the tabulation installs them and skips seeding the
      callee; [sh_persist] observes every freshly discovered end
      summary (write-behind).  [None] everywhere ⇒ the classic
      tabulation, bit for bit. *)
  type summary_hooks = {
    sh_lookup : P.proc -> P.fact -> (P.node * P.fact) list option;
    sh_persist : P.proc -> P.fact -> exit:P.node -> P.fact -> unit;
  }

  type t = {
    nodes : Node_pool.pool;
    procs : Proc_pool.pool;
    facts : Fact_pool.pool;
    (* all discovered path edges, as id quadruples
       (sp, d1, n, d2) — membership is the only query the tabulation
       needs, so a flat set replaces the old two-level grouping *)
    path_edges : unit I4_tbl.t;
    (* facts per node (the final analysis result): node id -> facts,
       with a flat (node, fact) seen set for dedup *)
    results_facts : P.fact list ref Int_tbl.t;
    results_seen : unit I2_tbl.t;
    (* end summaries: (callee, entry fact) ids -> exit pairs *)
    end_summaries : (P.node * int * P.fact * int) list ref I2_tbl.t;
    sum_seen : unit I4_tbl.t;
    (* incoming: (callee, entry fact) ids -> caller-side (call, fact)
       pairs that entered that context *)
    incoming : (P.node * int * P.fact * int) list ref I2_tbl.t;
    inc_seen : unit I4_tbl.t;
    (* caller contexts per call-site pair: (call, fact) ids -> the
       (sp, d1) contexts whose path edges reached the call with that
       fact.  Indexed, where the previous representation required a
       full-table scan per discovered summary. *)
    incoming_ctx : (P.node * int * P.fact * int) list ref I2_tbl.t;
    ctx_seen : unit I4_tbl.t;
    worklist : item Queue.t;
    mutable edge_count : int;
    budget : Fd_resilience.Budget.t;
    (* external summaries: the hooks and the (callee, entry fact)
       contexts whose summaries were injected — skipped when seeding
       and never handed back to [sh_persist] *)
    hooks : summary_hooks option;
    injected : unit I2_tbl.t;
    (* targeted-mode slice membership: calls whose callee falls
       outside it are treated like unanalysable calls (call-to-return
       only).  [None] — the default — takes no new code path. *)
    in_slice : (P.proc -> bool) option;
  }

  let create ?(budget = Fd_resilience.Budget.unlimited ()) ?hooks ?in_slice () =
    {
      nodes = Node_pool.create ~size:512 ();
      procs = Proc_pool.create ~size:64 ();
      facts = Fact_pool.create ~size:512 ();
      path_edges = I4_tbl.create 1024;
      results_facts = Int_tbl.create 256;
      results_seen = I2_tbl.create 1024;
      end_summaries = I2_tbl.create 64;
      sum_seen = I4_tbl.create 256;
      incoming = I2_tbl.create 64;
      inc_seen = I4_tbl.create 256;
      incoming_ctx = I2_tbl.create 256;
      ctx_seen = I4_tbl.create 512;
      worklist = Queue.create ();
      edge_count = 0;
      budget;
      hooks;
      injected = I2_tbl.create 16;
      in_slice;
    }

  let int_cell tbl key =
    match Int_tbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c = ref [] in
        Int_tbl.replace tbl key c;
        c

  let i2_cell tbl key =
    match I2_tbl.find_opt tbl key with
    | Some c -> c
    | None ->
        let c = ref [] in
        I2_tbl.replace tbl key c;
        c

  let record_result t n_id d d_id =
    if not (I2_tbl.mem t.results_seen (n_id, d_id)) then begin
      I2_tbl.replace t.results_seen (n_id, d_id) ();
      let c = int_cell t.results_facts n_id in
      c := d :: !c
    end

  (* propagate: add the path edge if new and enqueue; a duplicate is a
     saved worklist push (counted) *)
  let propagate t ~sp ~sp_id ~d1 ~d1_id n d2 =
    let n_id = Node_pool.id t.nodes n in
    let n = Node_pool.value t.nodes n_id in
    let d2_id = Fact_pool.id t.facts d2 in
    let d2 = Fact_pool.value t.facts d2_id in
    let key = (sp_id, d1_id, n_id, d2_id) in
    if I4_tbl.mem t.path_edges key then M.incr m_dedup_hits
    else if Fd_resilience.Budget.tick t.budget then begin
      I4_tbl.replace t.path_edges key ();
      t.edge_count <- t.edge_count + 1;
      M.incr m_path_edges;
      M.incr m_worklist_pushes;
      record_result t n_id d2 d2_id;
      Queue.add
        {
          it_sp = sp;
          it_d1 = d1;
          it_sp_id = sp_id;
          it_d1_id = d1_id;
          it_n = n;
          it_d2 = d2;
          it_n_id = n_id;
          it_d2_id = d2_id;
        }
        t.worklist
    end

  let add_incoming t callee_key (n, n_id, d, d_id) =
    let cp, cf = callee_key in
    if not (I4_tbl.mem t.inc_seen (cp, cf, n_id, d_id)) then begin
      I4_tbl.replace t.inc_seen (cp, cf, n_id, d_id) ();
      let c = i2_cell t.incoming callee_key in
      c := (n, n_id, d, d_id) :: !c
    end

  let add_ctx t call_key (sp, sp_id, d1, d1_id) =
    let cn, cf = call_key in
    if not (I4_tbl.mem t.ctx_seen (cn, cf, sp_id, d1_id)) then begin
      I4_tbl.replace t.ctx_seen (cn, cf, sp_id, d1_id) ();
      let c = i2_cell t.incoming_ctx call_key in
      c := (sp, sp_id, d1, d1_id) :: !c
    end

  let add_summary t callee_key (e, e_id, d, d_id) =
    let cp, cf = callee_key in
    if I4_tbl.mem t.sum_seen (cp, cf, e_id, d_id) then false
    else begin
      I4_tbl.replace t.sum_seen (cp, cf, e_id, d_id) ();
      let c = i2_cell t.end_summaries callee_key in
      c := (e, e_id, d, d_id) :: !c;
      M.incr m_summaries;
      true
    end

  let process t (it : item) =
    let sp = it.it_sp
    and sp_id = it.it_sp_id
    and d1 = it.it_d1
    and d1_id = it.it_d1_id in
    let n = it.it_n and d2 = it.it_d2 in
    let propagate_src = propagate t ~sp ~sp_id ~d1 ~d1_id in
    let callees =
      match t.in_slice with
      | None -> P.callees n
      | Some keep -> List.filter keep (P.callees n)
    in
    if callees <> [] then begin
      (* a call node with analysable targets *)
      List.iter
        (fun callee ->
          M.incr m_flow_call;
          let callee_id = Proc_pool.id t.procs callee in
          let entry_facts = P.call_flow n callee d2 in
          let s_callee = P.start_of callee in
          List.iter
            (fun d3 ->
              let d3_id = Fact_pool.id t.facts d3 in
              let d3 = Fact_pool.value t.facts d3_id in
              let callee_key = (callee_id, d3_id) in
              (* remember the caller context for later summaries *)
              add_incoming t callee_key (n, it.it_n_id, d2, it.it_d2_id);
              add_ctx t (it.it_n_id, it.it_d2_id) (sp, sp_id, d1, d1_id);
              (* seed the callee — unless an external provider already
                 knows this context's end summaries, which are then
                 installed in place of the descent *)
              let injected =
                match t.hooks with
                | None -> false
                | Some h -> (
                    if I2_tbl.mem t.injected callee_key then true
                    else
                      match h.sh_lookup callee d3 with
                      | None -> false
                      | Some sums ->
                          I2_tbl.replace t.injected callee_key ();
                          List.iter
                            (fun (e, d4) ->
                              let e_id = Node_pool.id t.nodes e in
                              let e = Node_pool.value t.nodes e_id in
                              let d4_id = Fact_pool.id t.facts d4 in
                              let d4 = Fact_pool.value t.facts d4_id in
                              ignore
                                (add_summary t callee_key (e, e_id, d4, d4_id)))
                            sums;
                          true)
              in
              if not injected then begin
                let sc_id = Node_pool.id t.nodes s_callee in
                let s_callee = Node_pool.value t.nodes sc_id in
                propagate t ~sp:s_callee ~sp_id:sc_id ~d1:d3 ~d1_id:d3_id
                  s_callee d3
              end;
              (* apply already-known summaries *)
              match I2_tbl.find_opt t.end_summaries callee_key with
              | None -> ()
              | Some sums ->
                  List.iter
                    (fun (e, _, d4, _) ->
                      M.incr m_summary_apps;
                      List.iter
                        (fun r ->
                          M.incr m_flow_return;
                          List.iter
                            (fun d5 -> propagate_src r d5)
                            (P.return_flow ~call:n ~callee ~exit:e
                               ~return_site:r d4))
                        (P.succs n))
                    !sums)
            entry_facts)
        callees;
      (* call-to-return edge *)
      M.incr m_flow_c2r;
      List.iter
        (fun r ->
          List.iter (fun d3 -> propagate_src r d3) (P.call_to_return_flow n d2))
        (P.succs n)
    end
    else if P.is_exit n then begin
      (* install an end summary for this callee context and flow back
         into every caller context recorded in the incoming set *)
      let callee = P.proc_of n in
      let callee_id = Proc_pool.id t.procs callee in
      let callee_key = (callee_id, d1_id) in
      if add_summary t callee_key (n, it.it_n_id, d2, it.it_d2_id) then begin
        (match t.hooks with
        | Some h when not (I2_tbl.mem t.injected callee_key) ->
            h.sh_persist callee d1 ~exit:n d2
        | _ -> ());
        match I2_tbl.find_opt t.incoming callee_key with
        | None -> ()
        | Some inc ->
            List.iter
              (fun (c, c_id, _dc, dc_id) ->
                M.incr m_flow_return;
                (* the caller contexts that passed (c, dc) into this
                   callee, via the index (no table scan) *)
                let ctxs =
                  match I2_tbl.find_opt t.incoming_ctx (c_id, dc_id) with
                  | None -> []
                  | Some c -> !c
                in
                List.iter
                  (fun r ->
                    List.iter
                      (fun d5 ->
                        List.iter
                          (fun (spc, spc_id, d1c, d1c_id) ->
                            propagate t ~sp:spc ~sp_id:spc_id ~d1:d1c
                              ~d1_id:d1c_id r d5)
                          ctxs)
                      (P.return_flow ~call:c ~callee ~exit:n ~return_site:r d2))
                  (P.succs c))
              !inc
      end
    end
    else begin
      (* plain intra-procedural node (includes calls with no analysable
         callee: their flow is the caller's business via normal_flow) *)
      M.incr m_flow_normal;
      List.iter
        (fun m ->
          List.iter (fun d3 -> propagate_src m d3) (P.normal_flow n d2))
        (P.succs n)
    end

  (* rough live byte accounting for the gauge: I4 entries cost key
     tuple + bucket (~10 words), I2-indexed association cells ~8 words
     per element *)
  let table_bytes t =
    let i4 tbl = I4_tbl.length tbl * 10 in
    let lists tbl =
      I2_tbl.fold (fun _ cell acc -> acc + 3 + (8 * List.length !cell)) tbl 0
    in
    (i4 t.path_edges + i4 t.sum_seen + i4 t.inc_seen + i4 t.ctx_seen
    + I2_tbl.length t.results_seen * 8
    + lists t.end_summaries + lists t.incoming + lists t.incoming_ctx)
    * (Sys.word_size / 8)

  (** [solve ?budget ?proc_name ~seeds ()] runs the tabulation to a
      fixed point (or until [budget] trips — check {!outcome}
      afterwards).  Each seed [(n, d)] asserts that [d] holds just
      before [n] (typically [(entry, zero)]).  When [proc_name] is
      given, every pop's processing time is attributed to its
      procedure in the {!Fd_obs.Profile} registry.  [?in_slice]
      restricts descent to procedures inside the targeted slice; calls
      outside it degrade to call-to-return flow only. *)
  let solve ?budget ?proc_name ?summaries ?in_slice ~seeds () =
    let t = create ?budget ?hooks:summaries ?in_slice () in
    Flight.clear ();
    Flight.mark (Printf.sprintf "ifds.solve.start seeds=%d" (List.length seeds));
    List.iter
      (fun (n, d) ->
        let sp = P.start_of (P.proc_of n) in
        let sp_id = Node_pool.id t.nodes sp in
        let sp = Node_pool.value t.nodes sp_id in
        let z_id = Fact_pool.id t.facts P.zero in
        let z = Fact_pool.value t.facts z_id in
        (* context: the zero fact at the procedure start; seeds are
           unconditional *)
        propagate t ~sp ~sp_id ~d1:z ~d1_id:z_id n d;
        if not (P.fact_equal d P.zero) then
          propagate t ~sp ~sp_id ~d1:z ~d1_id:z_id n P.zero)
      seeds;
    (* profiler cells per interned procedure id, resolved lazily *)
    let prof_cells = Int_tbl.create 64 in
    let prof_cell name proc =
      let pid = Proc_pool.id t.procs proc in
      match Int_tbl.find_opt prof_cells pid with
      | Some c -> c
      | None ->
          let c = Fd_obs.Profile.cell (name proc) in
          Int_tbl.replace prof_cells pid c;
          c
    in
    while
      (not (Queue.is_empty t.worklist))
      && not (Fd_resilience.Budget.stopped t.budget)
    do
      let it = Queue.pop t.worklist in
      M.incr m_worklist_pops;
      Flight.record (fun () ->
          Printf.sprintf "ifds.pop n%d d%d" it.it_n_id it.it_d2_id);
      match proc_name with
      | None -> process t it
      | Some name ->
          let t0 = Fd_obs.Profile.now () in
          process t it;
          Fd_obs.Profile.add_pop
            (prof_cell name (P.proc_of it.it_n))
            ~seconds:(Fd_obs.Profile.now () -. t0)
    done;
    M.set_int g_intern_nodes (Node_pool.size t.nodes);
    M.set_int g_intern_procs (Proc_pool.size t.procs);
    M.set_int g_intern_facts (Fact_pool.size t.facts);
    M.set_int g_intern_hits (Fact_pool.hits t.facts);
    M.set_int g_intern_misses (Fact_pool.misses t.facts);
    M.set_int g_bytes_tables (table_bytes t);
    t

  (** [outcome t] is the typed termination state of the solve
      ([Complete] unless the budget tripped). *)
  let outcome t = Fd_resilience.Budget.outcome t.budget

  (** [results_at t n] is every fact that may hold just before [n]. *)
  let results_at t n =
    match Node_pool.find_id t.nodes n with
    | None -> []
    | Some n_id -> (
        match Int_tbl.find_opt t.results_facts n_id with
        | None -> []
        | Some c -> !c)

  (** [edge_count t] is the number of discovered path edges (a size
      metric for benchmarks). *)
  let edge_count t = t.edge_count
end
