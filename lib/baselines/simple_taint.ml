(** Simulated commercial comparators (Section 6.1).

    IBM AppScan Source and HP Fortify SCA are closed tools; DESIGN.md's
    substitution builds *genuinely simpler analyses* whose structural
    weaknesses reproduce the per-category failures Table 1 attributes
    to them, rather than hard-coding verdicts:

    - both lack a lifecycle model: every method of every component (and
      listener) class is an isolated entry point, so flows staged
      through component state between callbacks are invisible;
    - both ignore layout XML (no password-field sources);
    - the {b AppScan-like} engine is field-insensitive (whole-object
      tainting — the FieldSensitivity false positives) and drops taint
      at array stores;
    - the {b Fortify-like} engine is field-sensitive but treats static
      fields in a flow-insensitive "special way" — a global set of
      tainted statics — which is exactly what lets it find 4 of the 6
      lifecycle leaks "by chance" (Section 6.1), and it analyses static
      initialisers as entry points;
    - both ship a more aggressive sink list ([Activity.setResult]
      counts as a sink) and ignore the manifest's
      enabled-components flag (the InactiveActivity/UnreachableCode
      false positives).

    The engines run on the textbook forward-only IFDS solver
    ({!Fd_ifds.Ifds}); there is no on-demand alias analysis and no
    activation machinery. *)

open Fd_ir
open Fd_callgraph
module AP = Fd_core.Access_path
module SS = Fd_frontend.Sourcesink

type opts = {
  name : string;
  field_sensitive : bool;
  whole_array : bool;  (** false: taint dies at array stores *)
  global_statics : bool;  (** Fortify's flow-insensitive static model *)
  param_sources : bool;
  aggressive_sinks : bool;
  clinit_entries : bool;
  max_access_path : int;
}

(** The AppScan-Source-like configuration. *)
let appscan_like =
  {
    name = "AppScan";
    field_sensitive = false;
    whole_array = false;
    global_statics = false;
    param_sources = true;
    aggressive_sinks = true;
    clinit_entries = false;
    max_access_path = 1;
  }

(** The Fortify-SCA-like configuration. *)
let fortify_like =
  {
    name = "Fortify";
    field_sensitive = true;
    whole_array = true;
    global_statics = true;
    param_sources = false;
    aggressive_sinks = true;
    clinit_entries = true;
    max_access_path = 5;
  }

(* taint fact: an access path plus the source it came from *)
type taint = { tp : AP.t; t_src_tag : string option; t_src_id : int }

type fact = Zero | T of taint

let fact_equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | T x, T y -> AP.equal x.tp y.tp && x.t_src_id = y.t_src_id
  | _ -> false

let fact_hash = function
  | Zero -> 0
  | T x -> Hashtbl.hash (AP.hash x.tp, x.t_src_id)

type state = {
  st_opts : opts;
  st_icfg : Icfg.t;
  st_scene : Scene.t;
  st_mgr : Fd_core.Srcsink_mgr.t;
  st_wrappers : Fd_frontend.Rules.t;
  st_natives : Fd_frontend.Rules.t;
  (* findings: (source tag, sink tag) pairs *)
  mutable st_findings : (string option * string option) list;
  (* Fortify's global static model *)
  tainted_statics : (string * string, string option * int) Hashtbl.t;
  mutable statics_changed : bool;
}

(* one mutable cell per domain: the solver functor's flow functions
   read the current run's state from here.  Runs are sequential within
   a domain; domain-local storage keeps parallel app-level runs
   ({!Fd_util.Pool}) from clobbering each other's state *)
let current : state option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let st () = Option.get (Domain.DLS.get current)

module Problem = struct
  type proc = Mkey.t
  type node = Icfg.node
  type nonrec fact = fact

  let proc_equal = Mkey.equal
  let proc_hash = Mkey.hash
  let node_equal = Icfg.equal_node
  let node_hash = Icfg.hash_node
  let fact_equal = fact_equal
  let fact_hash = fact_hash
  let zero = Zero
  let proc_of (n : Icfg.node) = n.Icfg.n_method
  let start_of p = Icfg.start_node (st ()).st_icfg p
  let succs n = Icfg.succs (st ()).st_icfg n
  let is_exit n = Icfg.is_exit (st ()).st_icfg n

  let callees n =
    let s = st () in
    match Icfg.invoke s.st_icfg n with
    | None -> []
    | Some inv ->
        (* wrappers are exclusive here too *)
        if Fd_core.Srcsink_mgr.wrapper_effects s.st_wrappers s.st_mgr inv <> None
        then []
        else Icfg.callees s.st_icfg n

  let k () = (st ()).st_opts.max_access_path

  let ap_of_lvalue lv =
    let s = st () in
    match lv with
    | Stmt.Llocal x -> Some (AP.of_local x)
    | Stmt.Lfield (x, f) ->
        Some
          (if s.st_opts.field_sensitive then AP.of_field x f
           else AP.of_local x)
    | Stmt.Lstatic f -> Some (AP.of_static f)
    | Stmt.Larray (x, _) ->
        if s.st_opts.whole_array then Some (AP.of_local x) else None

  let aps_of_expr e =
    let s = st () in
    let fieldy x f =
      if s.st_opts.field_sensitive then AP.of_field x f else AP.of_local x
    in
    match e with
    | Stmt.Eimm (Stmt.Iloc y) -> [ AP.of_local y ]
    | Stmt.Efield (y, f) -> [ fieldy y f ]
    | Stmt.Estatic f -> [ AP.of_static f ]
    | Stmt.Earray (y, _) -> [ AP.of_local y ]
    | Stmt.Ebinop (_, a, b) ->
        List.filter_map
          (function Stmt.Iloc y -> Some (AP.of_local y) | _ -> None)
          [ a; b ]
    | Stmt.Eunop (_, a) | Stmt.Ecast (_, a) | Stmt.Einstanceof (a, _) ->
        List.filter_map
          (function Stmt.Iloc y -> Some (AP.of_local y) | _ -> None)
          [ a ]
    | Stmt.Elength y -> [ AP.of_local y ]
    | _ -> []

  let rebase_all ~from ~to_ (t : taint) =
    match AP.rebase ~k:(k ()) ~from ~to_ t.tp with
    | Some ap -> [ { t with tp = ap } ]
    | None ->
        (* reading below a tainted prefix also yields a tainted value *)
        if AP.has_prefix ~prefix:t.tp from then [ { t with tp = to_ } ] else []

  (* record/consult the Fortify-style global static set *)
  let handle_static_store (t : taint) f =
    let s = st () in
    if s.st_opts.global_statics then begin
      let key = (f.Types.f_class, f.Types.f_name) in
      if not (Hashtbl.mem s.tainted_statics key) then begin
        Hashtbl.replace s.tainted_statics key (t.t_src_tag, t.t_src_id);
        s.statics_changed <- true
      end;
      false (* statics handled globally, not as flowing facts *)
    end
    else true

  (* flow across a non-call statement; calls are dispatched to the
     call-to-return function below (the generic solver routes calls
     without analysable callees through normal_flow) *)
  let plain_flow n (fact : fact) =
    let s = st () in
    let stmt = Icfg.stmt s.st_icfg n in
    match fact with
    | Zero -> (
        let zs = [ Zero ] in
        match stmt.Stmt.s_kind with
        | Stmt.Identity (l, Stmt.Iparam i) when s.st_opts.param_sources -> (
            let cls = n.Icfg.n_method.Mkey.mk_class in
            let mname = n.Icfg.n_method.Mkey.mk_name in
            match Fd_core.Srcsink_mgr.param_source s.st_mgr ~cls ~mname with
            | Some (params, _) when List.mem i params ->
                T
                  {
                    tp = AP.of_local l;
                    t_src_tag = stmt.Stmt.s_tag;
                    t_src_id = Icfg.hash_node n;
                  }
                :: zs
            | _ -> zs)
        | Stmt.Assign (Stmt.Lstatic f, e) when s.st_opts.global_statics -> (
            (* a store of a *globally tainted* static's value? only
               direct statics matter for Zero; loads handled below *)
            ignore e;
            ignore f;
            zs)
        | Stmt.Assign (Stmt.Llocal x, Stmt.Estatic f)
          when s.st_opts.global_statics -> (
            match Hashtbl.find_opt s.tainted_statics (f.Types.f_class, f.Types.f_name) with
            | Some (tag, id) ->
                T { tp = AP.of_local x; t_src_tag = tag; t_src_id = id } :: zs
            | None -> zs)
        | _ -> zs)
    | T t -> (
        match stmt.Stmt.s_kind with
        | Stmt.Assign (lv, e) ->
            let killed =
              match lv with
              | Stmt.Llocal x -> (
                  match t.tp.AP.base with
                  | AP.Bloc b -> Stmt.equal_local b x
                  | AP.Bstatic _ -> false)
              | _ -> false
            in
            let gens =
              match ap_of_lvalue lv with
              | None -> []
              | Some lap ->
                  List.concat_map
                    (fun src_ap ->
                      List.filter_map
                        (fun (g : taint) ->
                          (* static stores may divert into the global set *)
                          match lv with
                          | Stmt.Lstatic f ->
                              if handle_static_store g f then Some (T g)
                              else None
                          | _ -> Some (T g))
                        (rebase_all ~from:src_ap ~to_:lap t))
                    (aps_of_expr e)
            in
            let survivors = if killed then [] else [ T t ] in
            survivors @ gens
        | _ -> [ T t ])

  let params_of callee =
    let s = st () in
    match Callgraph.body_of s.st_icfg.Icfg.cg callee with
    | exception Not_found -> (None, [])
    | body -> Body.param_locals body

  let call_flow n callee (fact : fact) =
    let s = st () in
    match fact with
    | Zero -> [ Zero ]
    | T t -> (
        match Icfg.invoke s.st_icfg n with
        | None -> []
        | Some inv ->
            let this_l, params = params_of callee in
            let out = ref [] in
            if AP.is_static t.tp && not s.st_opts.global_statics then
              out := T t :: !out;
            (match (inv.Stmt.i_recv, this_l) with
            | Some r, Some tl ->
                out :=
                  List.map (fun g -> T g)
                    (rebase_all ~from:(AP.of_local r) ~to_:(AP.of_local tl) t)
                  @ !out
            | _ -> ());
            List.iteri
              (fun i arg ->
                match (arg, List.assoc_opt i params) with
                | Stmt.Iloc a, Some p ->
                    out :=
                      List.map (fun g -> T g)
                        (rebase_all ~from:(AP.of_local a) ~to_:(AP.of_local p) t)
                      @ !out
                | _ -> ())
              inv.Stmt.i_args;
            !out)

  let return_flow ~call ~callee ~exit ~return_site (fact : fact) =
    let s = st () in
    ignore return_site;
    match fact with
    | Zero -> []
    | T t -> (
        match Icfg.invoke s.st_icfg call with
        | None -> []
        | Some inv ->
            let this_l, params = params_of callee in
            (* with whole-object tainting, receiver/argument taints map
               back at any length; field-sensitive engines only map
               back heap mutations (length > 0) *)
            let min_len = if s.st_opts.field_sensitive then 1 else 0 in
            let out = ref [] in
            if AP.is_static t.tp && not s.st_opts.global_statics then
              out := T t :: !out;
            (match (inv.Stmt.i_recv, this_l) with
            | Some r, Some tl when AP.length t.tp >= min_len ->
                out :=
                  List.map (fun g -> T g)
                    (rebase_all ~from:(AP.of_local tl) ~to_:(AP.of_local r) t)
                  @ !out
            | _ -> ());
            List.iteri
              (fun i arg ->
                match (arg, List.assoc_opt i params) with
                | Stmt.Iloc a, Some p when AP.length t.tp >= min_len ->
                    out :=
                      List.map (fun g -> T g)
                        (rebase_all ~from:(AP.of_local p) ~to_:(AP.of_local a) t)
                      @ !out
                | _ -> ())
              inv.Stmt.i_args;
            (match
               ( (Icfg.stmt s.st_icfg exit).Stmt.s_kind,
                 (Icfg.stmt s.st_icfg call).Stmt.s_kind )
             with
            | Stmt.Return (Some (Stmt.Iloc rl)), Stmt.Assign (Stmt.Llocal x, _)
              ->
                out :=
                  List.map (fun g -> T g)
                    (rebase_all ~from:(AP.of_local rl) ~to_:(AP.of_local x) t)
                  @ !out
            | _ -> ());
            !out)

  let report t sink_tag =
    let s = st () in
    let key = (t.t_src_tag, sink_tag) in
    if not (List.mem key s.st_findings) then
      s.st_findings <- key :: s.st_findings

  let check_sink n (t : taint) =
    let s = st () in
    match Icfg.invoke s.st_icfg n with
    | None -> ()
    | Some inv ->
        let is_sink =
          Fd_core.Srcsink_mgr.sink s.st_mgr inv <> None
          || s.st_opts.aggressive_sinks
             && List.mem inv.Stmt.i_sig.Types.m_name [ "setResult" ]
        in
        if is_sink then
          let stmt = Icfg.stmt s.st_icfg n in
          if
            List.exists
              (function
                | Stmt.Iloc a -> (
                    match t.tp.AP.base with
                    | AP.Bloc b -> Stmt.equal_local a b
                    | AP.Bstatic _ -> false)
                | Stmt.Iconst _ -> false)
              inv.Stmt.i_args
          then report t stmt.Stmt.s_tag

  let ctr_flow n (fact : fact) =
    let s = st () in
    let stmt = Icfg.stmt s.st_icfg n in
    match Icfg.invoke s.st_icfg n with
    | None -> ( match fact with Zero -> [ Zero ] | T t -> [ T t ])
    | Some inv -> (
        let ret_local =
          match stmt.Stmt.s_kind with
          | Stmt.Assign (Stmt.Llocal x, Stmt.Einvoke _) -> Some x
          | _ -> None
        in
        match fact with
        | Zero -> (
            (* sources *)
            match ret_local with
            | None -> [ Zero ]
            | Some x -> (
                match Fd_core.Srcsink_mgr.return_source s.st_mgr inv with
                | Some _ ->
                    [
                      Zero;
                      T
                        {
                          tp = AP.of_local x;
                          t_src_tag = stmt.Stmt.s_tag;
                          t_src_id = Icfg.hash_node n;
                        };
                    ]
                | None -> [ Zero ]))
        | T t ->
            check_sink n t;
            let effects =
              match
                Fd_core.Srcsink_mgr.wrapper_effects s.st_wrappers s.st_mgr inv
              with
              | Some effs -> Some effs
              | None ->
                  if Icfg.callees s.st_icfg n = [] then
                    match
                      Fd_core.Srcsink_mgr.wrapper_effects s.st_natives s.st_mgr
                        inv
                    with
                    | Some effs -> Some effs
                    | None ->
                        Some
                          Fd_frontend.Rules.
                            [
                              { eff_to = To_ret; eff_from = From_any_arg };
                              { eff_to = To_ret; eff_from = From_recv };
                            ]
                  else None
            in
            let derived =
              match effects with
              | None -> []
              | Some effs ->
                  let arg_local i =
                    match List.nth_opt inv.Stmt.i_args i with
                    | Some (Stmt.Iloc a) -> Some a
                    | _ -> None
                  in
                  let rooted l =
                    match t.tp.AP.base with
                    | AP.Bloc b -> Stmt.equal_local b l
                    | AP.Bstatic _ -> false
                  in
                  List.filter_map
                    (fun (eff : Fd_frontend.Rules.effect) ->
                      let from_ok =
                        match eff.Fd_frontend.Rules.eff_from with
                        | Fd_frontend.Rules.From_recv -> (
                            match inv.Stmt.i_recv with
                            | Some r -> rooted r
                            | None -> false)
                        | Fd_frontend.Rules.From_any_arg ->
                            List.exists
                              (function
                                | Stmt.Iloc a -> rooted a
                                | Stmt.Iconst _ -> false)
                              inv.Stmt.i_args
                        | Fd_frontend.Rules.From_arg i -> (
                            match arg_local i with
                            | Some a -> rooted a
                            | None -> false)
                      in
                      if not from_ok then None
                      else
                        let tgt =
                          match eff.Fd_frontend.Rules.eff_to with
                          | Fd_frontend.Rules.To_ret -> ret_local
                          | Fd_frontend.Rules.To_recv -> inv.Stmt.i_recv
                          | Fd_frontend.Rules.To_arg i -> arg_local i
                        in
                        Option.map
                          (fun l -> T { t with tp = AP.of_local l })
                          tgt)
                    effs
            in
            let killed =
              match (ret_local, t.tp.AP.base) with
              | Some x, AP.Bloc b -> Stmt.equal_local x b
              | _ -> false
            in
            (if killed then [] else [ T t ]) @ derived)

  let call_to_return_flow = ctr_flow

  let normal_flow n (fact : fact) =
    if Icfg.invoke (st ()).st_icfg n <> None then ctr_flow n fact
    else plain_flow n fact
end

module Solver = Fd_ifds.Ifds.Make (Problem)

(* entry points: every bodied method of manifest-declared component
   classes and of callback-listener classes, regardless of the enabled
   flag; optionally static initialisers of every application class *)
let entries opts (loaded : Fd_frontend.Apk.loaded) =
  let scene = loaded.Fd_frontend.Apk.scene in
  let manifest = loaded.Fd_frontend.Apk.manifest in
  let comp_classes =
    List.map
      (fun (c : Fd_frontend.Manifest.component) -> c.Fd_frontend.Manifest.comp_class)
      manifest.Fd_frontend.Manifest.components
  in
  let listener_classes =
    List.filter_map
      (fun (c : Jclass.t) ->
        if
          (not c.Jclass.c_phantom)
          && Fd_frontend.Framework.is_callback_interface scene c.Jclass.c_name
          && not c.Jclass.c_is_interface
        then Some c.Jclass.c_name
        else None)
      (Scene.all_classes scene)
  in
  let of_class cls =
    match Scene.find_class scene cls with
    | None -> []
    | Some c ->
        List.filter_map
          (fun (m : Jclass.jmethod) ->
            if Jclass.has_body m && m.Jclass.jm_sig.Types.m_name <> "<clinit>"
            then Some (Mkey.of_method c m)
            else None)
          c.Jclass.c_methods
  in
  let clinits =
    if not opts.clinit_entries then []
    else
      List.concat_map
        (fun (c : Jclass.t) ->
          List.filter_map
            (fun (m : Jclass.jmethod) ->
              if Jclass.has_body m && m.Jclass.jm_sig.Types.m_name = "<clinit>"
              then Some (Mkey.of_method c m)
              else None)
            c.Jclass.c_methods)
        (Scene.application_classes scene)
  in
  List.sort_uniq Mkey.compare
    (List.concat_map of_class (comp_classes @ listener_classes) @ clinits)

(** [run opts apk] analyses [apk] and returns the findings as (source
    tag, sink tag) pairs. *)
let run opts apk =
  let loaded = Fd_frontend.Apk.load apk in
  let scene = loaded.Fd_frontend.Apk.scene in
  let defs = SS.default () in
  let mgr =
    Fd_core.Srcsink_mgr.create_plain ~scene ~defs
    (* deliberately no layout: the comparators do not model UI sources *)
  in
  let entry = entries opts loaded in
  let cg = Callgraph.build scene ~entry () in
  let icfg = Icfg.create cg in
  let state =
    {
      st_opts = opts;
      st_icfg = icfg;
      st_scene = scene;
      st_mgr = mgr;
      st_wrappers = Fd_frontend.Rules.default_wrappers ();
      st_natives = Fd_frontend.Rules.default_natives ();
      st_findings = [];
      tainted_statics = Hashtbl.create 7;
      statics_changed = false;
    }
  in
  Domain.DLS.set current (Some state);
  let seeds = List.map (fun m -> (Icfg.start_node icfg m, Zero)) entry in
  (* the global-statics model needs iteration: statics discovered in
     round i seed loads in round i+1 *)
  let rec iterate n =
    state.statics_changed <- false;
    state.st_findings <- state.st_findings;
    ignore (Solver.solve ~seeds ());
    if state.statics_changed && n < 5 then iterate (n + 1)
  in
  iterate 0;
  Domain.DLS.set current None;
  List.rev state.st_findings

(** [run_appscan apk] / [run_fortify apk]: the two comparators. *)
let run_appscan apk = run appscan_like apk

let run_fortify apk = run fortify_like apk
