(** Result reporting: FlowDroid-style XML output and text summaries.

    The reports "include full path information" (Section 5): each
    result carries the sink, the source, and the reconstructed chain
    of propagation statements, serialised in the XML shape FlowDroid's
    result files use ([DataFlowResults]/[Results]/[Result]/
    [Sink]+[Sources]). *)

open Fd_callgraph
module X = Fd_xml.Xml
module SS = Fd_frontend.Sourcesink

let node_attr n = Icfg.string_of_node n

(** [finding_to_xml fd] serialises one flow. *)
let finding_to_xml (fd : Bidi.finding) =
  X.Element
    ( "Result",
      [],
      [
        X.Element
          ( "Sink",
            [
              ("Statement", node_attr fd.Bidi.f_sink_node);
              ("Category", SS.string_of_category fd.Bidi.f_sink_cat);
            ]
            @ (match fd.Bidi.f_sink_tag with
              | Some t -> [ ("Tag", t) ]
              | None -> []),
            [] );
        X.Element
          ( "Sources",
            [],
            [
              X.Element
                ( "Source",
                  [
                    ("Statement", node_attr fd.Bidi.f_source.Taint.si_node);
                    ( "Category",
                      SS.string_of_category fd.Bidi.f_source.Taint.si_category );
                    ("Description", fd.Bidi.f_source.Taint.si_desc);
                  ]
                  @ (match fd.Bidi.f_source.Taint.si_tag with
                    | Some t -> [ ("Tag", t) ]
                    | None -> []),
                  [
                    X.Element
                      ( "TaintPath",
                        [],
                        List.map
                          (fun n ->
                            X.Element
                              ("PathElement", [ ("Statement", node_attr n) ], []))
                          fd.Bidi.f_path );
                  ] );
            ] );
      ] )

(* TerminationState values mirror FlowDroid's result-file vocabulary,
   extended with the deadline/cancel/crash states of the resilience
   layer *)
let termination_state (o : Fd_resilience.Outcome.t) =
  match o with
  | Fd_resilience.Outcome.Complete -> "Success"
  | Fd_resilience.Outcome.Budget_exhausted -> "DataFlowIncomplete"
  | Fd_resilience.Outcome.Deadline_exceeded -> "DataFlowTimeout"
  | Fd_resilience.Outcome.Cancelled -> "Cancelled"
  | Fd_resilience.Outcome.Crashed _ -> "Crashed"

(** [to_xml ?completeness result] serialises a whole analysis result;
    [completeness] (from the degradation ladder) is attached as an
    attribute when given. *)
let to_xml ?completeness (result : Infoflow.result) =
  let stats = result.Infoflow.r_stats in
  X.Element
    ( "DataFlowResults",
      [ ("FileFormatVersion", "100");
        ("TerminationState", termination_state stats.Infoflow.st_outcome) ]
      @ (match completeness with
        | Some c -> [ ("Completeness", c) ]
        | None -> []),
      [
        X.Element
          ( "Results",
            [],
            List.map finding_to_xml result.Infoflow.r_findings );
        X.Element
          ( "PerformanceData",
            [],
            [
              X.Element
                ( "PerformanceEntry",
                  [ ("Name", "TotalRuntimeSeconds");
                    ("Value", Printf.sprintf "%.4f" stats.Infoflow.st_time) ],
                  [] );
              X.Element
                ( "PerformanceEntry",
                  [ ("Name", "ReachableMethods");
                    ("Value", string_of_int stats.Infoflow.st_reachable) ],
                  [] );
              X.Element
                ( "PerformanceEntry",
                  [ ("Name", "PathEdgePropagations");
                    ("Value", string_of_int stats.Infoflow.st_propagations) ],
                  [] );
            ] );
      ] )

(** [to_xml_string ?completeness result] renders the XML document. *)
let to_xml_string ?completeness result =
  "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"
  ^ X.to_string (to_xml ?completeness result)

(** [fallback_to_xml_string fb] renders a ladder run: the winning
    result stamped with its completeness marker. *)
let fallback_to_xml_string (fb : Infoflow.fallback) =
  to_xml_string
    ~completeness:(Infoflow.string_of_completeness fb.Infoflow.fb_completeness)
    fb.Infoflow.fb_result

(** [summary result] is a short human-readable digest. *)
let summary (result : Infoflow.result) =
  let n = List.length result.Infoflow.r_findings in
  let by_cat =
    List.fold_left
      (fun acc (fd : Bidi.finding) ->
        let c = SS.string_of_category fd.Bidi.f_sink_cat in
        let prev = Option.value (List.assoc_opt c acc) ~default:0 in
        (c, prev + 1) :: List.remove_assoc c acc)
      [] result.Infoflow.r_findings
  in
  Printf.sprintf "%d flow(s)%s; %.3f s, %d reachable methods, %d propagations"
    n
    (if by_cat = [] then ""
     else
       " ("
       ^ String.concat ", "
           (List.map (fun (c, k) -> Printf.sprintf "%s: %d" c k) by_cat)
       ^ ")")
    result.Infoflow.r_stats.Infoflow.st_time
    result.Infoflow.r_stats.Infoflow.st_reachable
    result.Infoflow.r_stats.Infoflow.st_propagations

(** [outcome_line result] is the one-line [outcome:] summary the CLI
    prints for incomplete runs. *)
let outcome_line (result : Infoflow.result) =
  Printf.sprintf "outcome: %s"
    (Fd_resilience.Outcome.to_string result.Infoflow.r_stats.Infoflow.st_outcome)

(** [fallback_summary fb] is a one-line digest of a ladder run:
    completeness, per-rung outcomes, final flow count. *)
let fallback_summary (fb : Infoflow.fallback) =
  Printf.sprintf "outcome: %s [%s]; %d flow(s)"
    (Infoflow.string_of_completeness fb.Infoflow.fb_completeness)
    (String.concat "; "
       (List.map
          (fun (a : Infoflow.attempt) ->
            Printf.sprintf "%s: %s" a.Infoflow.at_label
              (Fd_resilience.Outcome.to_string a.Infoflow.at_outcome))
          fb.Infoflow.fb_attempts))
    (List.length fb.Infoflow.fb_result.Infoflow.r_findings)

(* ---------------- provenance witnesses ---------------- *)

(** [witness_lines fd] renders a finding's provenance witness for the
    CLI's [--explain] output, one indented line per step. *)
let witness_lines (fd : Bidi.finding) =
  List.map
    (fun (ws : Bidi.witness_step) ->
      Printf.sprintf "      [%-14s] %s  %s   {%s}" ws.Bidi.ws_kind
        (node_attr ws.Bidi.ws_node) ws.Bidi.ws_stmt ws.Bidi.ws_fact)
    fd.Bidi.f_witness

let json_of_tag = function
  | Some t -> Fd_obs.Json.String t
  | None -> Fd_obs.Json.Null

(** [witnesses_json findings] is the [witnesses] array for
    [--stats-json]: one entry per finding that carries a witness, with
    the source/sink endpoints and every derivation step. *)
let witnesses_json findings =
  Fd_obs.Json.List
    (List.filter_map
       (fun (fd : Bidi.finding) ->
         match fd.Bidi.f_witness with
         | [] -> None
         | steps ->
             Some
               (Fd_obs.Json.Obj
                  [
                    ( "source",
                      Fd_obs.Json.String (node_attr fd.Bidi.f_source.Taint.si_node)
                    );
                    ("source_tag", json_of_tag fd.Bidi.f_source.Taint.si_tag);
                    ("sink", Fd_obs.Json.String (node_attr fd.Bidi.f_sink_node));
                    ("sink_tag", json_of_tag fd.Bidi.f_sink_tag);
                    ( "steps",
                      Fd_obs.Json.List
                        (List.map
                           (fun (ws : Bidi.witness_step) ->
                             Fd_obs.Json.Obj
                               [
                                 ( "node",
                                   Fd_obs.Json.String (node_attr ws.Bidi.ws_node)
                                 );
                                 ("stmt", Fd_obs.Json.String ws.Bidi.ws_stmt);
                                 ("fact", Fd_obs.Json.String ws.Bidi.ws_fact);
                                 ("kind", Fd_obs.Json.String ws.Bidi.ws_kind);
                               ])
                           steps) );
                  ]))
       findings)
