(** Access paths (Section 4.1).

    An access path is [x.f.g] where [x] is a local (or a static field
    for globals) and [f], [g] are fields, with a user-customisable
    maximal length (5 by default).  An access path *implicitly
    describes all objects reachable through it*: [x.f] covers [x.f.g],
    [x.f.h], and so on — matching is therefore prefix matching, and
    truncation at the maximal length only widens the abstraction. *)

open Fd_ir

type base =
  | Bloc of Stmt.local
  | Bstatic of Types.field_sig  (** static-field-rooted paths *)

type t = {
  base : base;
  fields : Types.field_sig list;  (** outermost access first *)
}

let equal_base a b =
  match (a, b) with
  | Bloc x, Bloc y -> Stmt.equal_local x y
  | Bstatic f, Bstatic g -> Types.equal_field_sig f g
  | _ -> false

let rec equal_fields xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs', y :: ys' -> Types.equal_field_sig x y && equal_fields xs' ys'
  | _ -> false

let equal a b =
  a == b || (equal_base a.base b.base && equal_fields a.fields b.fields)

let compare_base a b =
  match (a, b) with
  | Bloc x, Bloc y -> Stmt.compare_local x y
  | Bstatic f, Bstatic g -> Types.compare_field_sig f g
  | Bloc _, Bstatic _ -> -1
  | Bstatic _, Bloc _ -> 1

let compare a b =
  match compare_base a.base b.base with
  | 0 -> List.compare Types.compare_field_sig a.fields b.fields
  | c -> c

(* a fold over the base and *every* field segment: [Hashtbl.hash]
   stops at its meaningful-node limit, so paths differing only deep in
   the chain used to collide (and the old version allocated a whole
   shadow list per hash) *)
let hash_base = function
  | Bloc l -> Fd_util.Intern.combine 1 (Stmt.hash_local l)
  | Bstatic f -> Fd_util.Intern.combine 2 (Types.hash_field_sig f)

let hash t =
  Fd_util.Intern.fold_hash Types.hash_field_sig (hash_base t.base) t.fields

let to_string t =
  let b =
    match t.base with
    | Bloc l -> l.Stmt.l_name
    | Bstatic f -> "<" ^ Types.string_of_field_sig f ^ ">"
  in
  List.fold_left (fun acc f -> acc ^ "." ^ f.Types.f_name) b t.fields

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** [of_local l] is the length-0 path [l]. *)
let of_local l = { base = Bloc l; fields = [] }

(** [of_field l f] is [l.f]. *)
let of_field l f = { base = Bloc l; fields = [ f ] }

(** [of_static f] is the static-field root. *)
let of_static f = { base = Bstatic f; fields = [] }

(** [length t] is the number of field accesses. *)
let length t = List.length t.fields

(** [truncate ~k t] drops fields beyond the maximal length [k]; by the
    implicit-suffix semantics this only widens the set of described
    objects, never loses it. *)
let truncate ~k t =
  if length t <= k then t
  else { t with fields = List.filteri (fun i _ -> i < k) t.fields }

(** [append ~k t f] is [t.f], truncated to length [k]. *)
let append ~k t f = truncate ~k { t with fields = t.fields @ [ f ] }

(** [base_local t] is the base if it is a local. *)
let base_local t = match t.base with Bloc l -> Some l | Bstatic _ -> None

(** [is_static t] holds for static-field-rooted paths. *)
let is_static t = match t.base with Bstatic _ -> true | Bloc _ -> false

(** [has_prefix ~prefix t]: does [t] extend (or equal) [prefix]?  This
    is the reading-direction match: if [prefix] is tainted then the
    value at [t] is reachable from tainted data. *)
let has_prefix ~prefix t =
  equal_base prefix.base t.base
  &&
  let rec go ps ts =
    match (ps, ts) with
    | [], _ -> true
    | p :: ps', t :: ts' -> Types.equal_field_sig p t && go ps' ts'
    | _ :: _, [] -> false
  in
  go prefix.fields t.fields

(** [covers ~taint t]: does a taint on [taint] make the value at [t]
    tainted?  By the implicit-suffix semantics a taint on [x.f] covers
    any [x.f....]; additionally, because truncation widens, a taint
    on a *longer* path does not cover a shorter one — except that
    FlowDroid reports an object as tainted as soon as any of its
    sub-fields is tainted when it is passed somewhere whole, which is
    the [reaches] relation below. *)
let covers ~taint t = has_prefix ~prefix:taint t

(** [reaches ~taint t]: is tainted data reachable from the value at
    [t]?  True when one is a prefix of the other: a taint on [x.f]
    makes [x] a carrier of tainted data (passing [x] to a sink leaks),
    and a taint on [x] covers [x.f]. *)
let reaches ~taint t = has_prefix ~prefix:taint t || has_prefix ~prefix:t taint

(** [rebase ~k ~from ~to_ t] rewrites [t] by replacing its prefix
    [from] with [to_], truncating to [k]: the core operation of every
    assignment flow function.  [None] when [from] is not a prefix of
    [t]. *)
let rebase ~k ~from ~to_ t =
  if not (has_prefix ~prefix:from t) then None
  else begin
    let rec drop n xs = if n = 0 then xs else drop (n - 1) (List.tl xs) in
    let suffix = drop (List.length from.fields) t.fields in
    Some (truncate ~k { base = to_.base; fields = to_.fields @ suffix })
  end

(* ------------------------------------------------------------------ *)
(* constant-index array cells (precision pass, Config.array_index)     *)
(* ------------------------------------------------------------------ *)

(* the reserved declaring-class marker of index pseudo-fields; no real
   µJimple field can carry it (class names never start with '<') *)
let index_class = "<array>"

(** [index_field i] is the pseudo-field [<idx:i>] denoting the [i]-th
    cell of an array; access paths treat it like any other field, so
    k-limiting and prefix matching apply unchanged.  (Pure constructor
    — field_sig equality is structural, so no memoisation is needed
    and the function stays domain-safe.) *)
let index_field i =
  {
    Types.f_class = index_class;
    f_name = Printf.sprintf "<idx:%d>" i;
    f_type = Types.Ref Types.object_class;
  }

(** [is_index_field f] recognises {!index_field} pseudo-fields. *)
let is_index_field (f : Types.field_sig) = String.equal f.Types.f_class index_class
