(** The analysis driver: Figure 4's pipeline.

    [parse manifest] → [parse layout XMLs] → [parse code] →
    [source/sink/entry-point detection] → [generate dummy main] →
    [build call graph] → [perform taint analysis].

    Two entry modes exist: {!analyze_apk} runs the full Android
    pipeline; {!analyze_plain} analyses ordinary Java-style programs
    with explicitly given entry points (SecuriBench Micro, the paper's
    listings — RQ4's "nothing precludes applying FlowDroid to Java"). *)

open Fd_ir
open Fd_callgraph
module FW = Fd_frontend.Framework

type stats = {
  st_time : float;  (** analysis wall time, seconds *)
  st_reachable : int;  (** reachable methods in the final call graph *)
  st_cg_edges : int;
  st_propagations : int;  (** path-edge propagations of both solvers *)
  st_outcome : Fd_resilience.Outcome.t;
      (** typed termination state; anything but [Complete] means the
          findings are a partial under-approximation *)
  st_metrics : Fd_obs.Metrics.snapshot;
      (** registry snapshot taken when the run finished (counters are
          process-cumulative; reset before the run for per-run
          numbers) *)
}

type result = {
  r_findings : Bidi.finding list;
  r_entries : Mkey.t list;
  r_stats : stats;
  r_engine : Bidi.t;  (** for inspection (per-node taints) *)
  r_icfg : Icfg.t;
  r_diags : Fd_resilience.Diag.t list;
      (** frontend diagnostics (lenient-mode skips); [[]] in strict
          mode *)
  r_icc : Icc.report option;
      (** the ICC resolver's report when the {!Config.t.icc} tier ran
          (its findings are already merged into [r_findings]) *)
}

type phase_hook = string -> unit
(** called with a phase name as the pipeline advances (used by the
    pipeline-trace example) *)

let no_hook : phase_hook = fun _ -> ()

let log_src = Logs.Src.create "flowdroid" ~doc:"FlowDroid analysis pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* run latency histograms: real samples for the log-scale buckets *)
let h_analysis = Fd_obs.Metrics.histogram "core.analysis_seconds"
let h_solve = Fd_obs.Metrics.histogram "ifds.solve_seconds"

(* which opt-in precision passes the run used, visible in --stats-json *)
let g_prec_must_alias = Fd_obs.Metrics.gauge "precision.must_alias"
let g_prec_array_index = Fd_obs.Metrics.gauge "precision.array_index"
let g_prec_reflection = Fd_obs.Metrics.gauge "precision.reflection"
let g_prec_clinit = Fd_obs.Metrics.gauge "precision.clinit"

let record_precision (p : Config.precision) =
  let b g v = Fd_obs.Metrics.set_int g (if v then 1 else 0) in
  b g_prec_must_alias p.Config.must_alias;
  b g_prec_array_index p.Config.array_index;
  b g_prec_reflection p.Config.reflection;
  b g_prec_clinit p.Config.clinit

(* targeted-mode entry metrics *)
let g_entries_kept = Fd_obs.Metrics.gauge "targeted.entries_kept"
let g_entries_dropped = Fd_obs.Metrics.gauge "targeted.entries_dropped"

(** [restrict_findings ~icfg ~patterns findings] keeps the findings
    whose sink invoke site matches one of the targeted patterns — the
    projection targeted mode applies to its own output, exported so
    the verdict-identity gate can apply the {e same} projection to a
    full-mode run before comparing. *)
let restrict_findings ~icfg ~patterns findings =
  let scene = Callgraph.cg_scene icfg.Icfg.cg in
  List.filter
    (fun (f : Bidi.finding) ->
      match Icfg.invoke icfg f.Bidi.f_sink_node with
      | Some inv -> Ondemand.invoke_matches scene ~patterns inv
      | None -> false)
    findings

let run_engine ?(config = Config.default) ?(phase = no_hook) ?budget
    ?(diags = []) ~scene ~mgr ~wrappers ~natives ~entries () =
  Fd_obs.Metrics.time h_analysis @@ fun () ->
  record_precision config.Config.precision;
  let t0 = Sys.time () in
  Log.debug (fun m ->
      m "analysis starting with %d entry point(s)" (List.length entries));
  (* demand-driven targeted mode: text-index the scene for matching
     sink sites and keep only the entry points inside the backward
     slice.  Building the call graph from those entries alone IS the
     on-the-fly extension: edges are discovered along the slice and
     nowhere else.  With [targeted = []] (the default) none of this
     runs and the output is byte-identical to previous releases. *)
  let slice =
    match config.Config.targeted with
    | [] -> None
    | patterns ->
        phase "targeted sink search";
        Some (Ondemand.compute scene ~patterns)
  in
  let entries =
    match slice with
    | None -> entries
    | Some sl ->
        let kept, dropped = List.partition (Ondemand.mem sl) entries in
        Fd_obs.Metrics.set_int g_entries_kept (List.length kept);
        Fd_obs.Metrics.set_int g_entries_dropped (List.length dropped);
        Log.debug (fun m ->
            m "targeted slice: %d/%d methods, %d sink site(s), %d/%d entries kept"
              (Ondemand.sliced_methods sl)
              (Ondemand.total_methods sl)
              (Ondemand.sink_sites sl) (List.length kept)
              (List.length kept + List.length dropped));
        kept
  in
  phase "build call graph";
  let cg =
    Callgraph.build scene ~entry:entries ~algorithm:config.Config.cg_algorithm
      ~clinit_first_use:config.Config.precision.Config.clinit
      ~reflection:config.Config.precision.Config.reflection ()
  in
  let icfg = Icfg.create cg in
  phase "perform taint analysis";
  (* persistent summary store: hooks resolve to [None] unless
     [config.summary_store] is set, the config is store-compatible and
     a backend library is linked — the solver is then untouched *)
  let store =
    Summary.make_hooks ~icfg ~config ~sources:(Srcsink_mgr.defs mgr) ~wrappers
      ~natives
  in
  (* the slice membership predicate handed to the worklist loops is
     restricted-call-graph reachability — every callee the restricted
     graph resolves already satisfies it, so within the kept entries
     the solve is bit-identical to full mode, while structurally
     guaranteeing no descent outside the slice *)
  let in_slice =
    match slice with
    | None -> None
    | Some _ -> Some (fun k -> Callgraph.is_reachable cg k)
  in
  let engine =
    Bidi.create ?budget ?store ?in_slice ~config ~icfg ~scene ~mgr ~wrappers
      ~natives ()
  in
  Fd_obs.Trace.with_span "taint.solve" (fun () ->
      Fd_obs.Metrics.time h_solve (fun () -> Bidi.run engine ~entries));
  let t1 = Sys.time () in
  let outcome = Bidi.outcome engine in
  let diags =
    if Fd_resilience.Outcome.is_complete outcome then diags
    else begin
      Log.warn (fun m ->
          m "solve stopped early (%s): results may be incomplete"
            (Fd_resilience.Outcome.to_string outcome));
      (* attach the flight recorder's recent-event context: what the
         solver was doing when the budget tripped *)
      diags
      @ [
          Fd_resilience.Diag.make ~file:"flight-recorder"
            (Printf.sprintf "%s: %s"
               (Fd_resilience.Outcome.to_string outcome)
               (Fd_obs.Ring.Flight.dump_line ~limit:12 ()));
        ]
    end
  in
  (* targeted mode only reports flows into the targeted sinks; other
     rule-set sinks inside the slice are analysed (the worklists don't
     know which sink a fact will reach) but projected out here *)
  let findings =
    match slice with
    | None -> Bidi.findings engine
    | Some sl ->
        restrict_findings ~icfg ~patterns:(Ondemand.patterns sl)
          (Bidi.findings engine)
  in
  Log.debug (fun m ->
      m "done: %d finding(s), %d propagations, %.4fs"
        (List.length findings)
        (Bidi.propagation_count engine)
        (t1 -. t0));
  {
    r_findings = findings;
    r_entries = entries;
    r_stats =
      {
        st_time = t1 -. t0;
        st_reachable = List.length (Callgraph.reachable_methods cg);
        st_cg_edges = Callgraph.edge_count cg;
        st_propagations = Bidi.propagation_count engine;
        st_outcome = outcome;
        st_metrics = Fd_obs.Metrics.snapshot ();
      };
    r_engine = engine;
    r_icfg = icfg;
    r_diags = diags;
    r_icc = None;
  }

(** [android_entries ~config loaded] computes the entry points for an
    Android app: with lifecycle modelling on, the generated dummy
    main; with it off, every lifecycle and callback method as an
    isolated entry (the comparator-tool behaviour). *)
let android_entries ~(config : Config.t) ~phase
    (loaded : Fd_frontend.Apk.loaded) =
  Fd_obs.Trace.with_span "lifecycle.entrypoints" @@ fun () ->
  phase "source, sink and entry-point detection";
  let ccs =
    if config.Config.callbacks then Fd_lifecycle.Callbacks.discover_all loaded
    else
      (* callbacks off: lifecycle methods only *)
      List.map
        (fun (c : Fd_frontend.Manifest.component) ->
          Fd_lifecycle.Callbacks.
            {
              cc_component = c.Fd_frontend.Manifest.comp_class;
              cc_kind = c.Fd_frontend.Manifest.comp_kind;
              cc_lifecycle =
                Fd_lifecycle.Lifecycle.implemented_methods
                  loaded.Fd_frontend.Apk.scene
                  c.Fd_frontend.Manifest.comp_class
                  c.Fd_frontend.Manifest.comp_kind
                |> List.map (fun (decl, m) -> Mkey.of_method decl m);
              cc_callbacks = [];
              cc_listener_classes = [];
              cc_async_tasks = [];
              cc_fragments = [];
            })
        loaded.Fd_frontend.Apk.components
  in
  let ccs =
    if config.Config.per_component_callbacks then ccs
    else begin
      (* ablation: every callback is attached to every component *)
      let all_cbs =
        List.concat_map (fun cc -> cc.Fd_lifecycle.Callbacks.cc_callbacks) ccs
      in
      let all_listeners =
        List.sort_uniq compare
          (List.concat_map
             (fun cc -> cc.Fd_lifecycle.Callbacks.cc_listener_classes)
             ccs)
      in
      List.map
        (fun cc ->
          {
            cc with
            Fd_lifecycle.Callbacks.cc_callbacks =
              List.map
                (fun cb ->
                  {
                    cb with
                    Fd_lifecycle.Callbacks.cb_on_component =
                      cb.Fd_lifecycle.Callbacks.cb_class
                      = cc.Fd_lifecycle.Callbacks.cc_component;
                  })
                all_cbs;
            Fd_lifecycle.Callbacks.cc_listener_classes =
              List.sort_uniq compare
                (all_listeners
                @ List.filter_map
                    (fun cb ->
                      if
                        cb.Fd_lifecycle.Callbacks.cb_class
                        <> cc.Fd_lifecycle.Callbacks.cc_component
                      then Some cb.Fd_lifecycle.Callbacks.cb_class
                      else None)
                    all_cbs);
          })
        ccs
    end
  in
  if config.Config.lifecycle then begin
    phase "generate main method";
    [ Fd_lifecycle.Dummy_main.generate loaded.Fd_frontend.Apk.scene ccs ]
  end
  else
    List.concat_map
      (fun cc ->
        cc.Fd_lifecycle.Callbacks.cc_lifecycle
        @ List.map
            (fun cb ->
              Mkey.of_sig
                {
                  cb.Fd_lifecycle.Callbacks.cb_method.Jclass.jm_sig with
                  Types.m_class = cb.Fd_lifecycle.Callbacks.cb_class;
                })
            cc.Fd_lifecycle.Callbacks.cc_callbacks)
      ccs
    |> List.sort_uniq Mkey.compare

(* run the ICC link resolver over the solved engine and fold its
   stitched/dropped findings into the result (the {!Config.t.icc}
   tier).  Re-snapshots the metrics so the [icc.*] gauges reach
   [--stats-json]. *)
let apply_icc ~(config : Config.t) ~phase ~scene ~apps ~app_of (r : result) =
  if not config.Config.icc then r
  else begin
    phase "icc link resolution";
    let report =
      Icc.analyze ~icfg:r.r_icfg ~scene ~engine:r.r_engine
        ~provenance:config.Config.provenance ~apps ~app_of r.r_findings
    in
    {
      r with
      r_findings = Icc.apply report r.r_findings;
      r_icc = Some report;
      r_stats = { r.r_stats with st_metrics = Fd_obs.Metrics.snapshot () };
    }
  end

(* the shared Android pipeline body; [apps]/[app_of] parameterise the
   ICC resolver's manifest view (one app, or the per-app manifests of
   a merged scene) *)
let analyze_loaded_gen ?(config = Config.default)
    ?(defs = Fd_frontend.Sourcesink.default ())
    ?(wrappers = Fd_frontend.Rules.default_wrappers ())
    ?(natives = Fd_frontend.Rules.default_natives ()) ?(phase = no_hook)
    ?budget ~apps ~app_of (loaded : Fd_frontend.Apk.loaded) =
  let scene = loaded.Fd_frontend.Apk.scene in
  let mgr =
    Srcsink_mgr.create ~scene ~defs ~layout:loaded.Fd_frontend.Apk.layout
  in
  let entries = android_entries ~config ~phase loaded in
  run_engine ~config ~phase ?budget ~diags:loaded.Fd_frontend.Apk.diags ~scene
    ~mgr ~wrappers ~natives ~entries ()
  |> apply_icc ~config ~phase ~scene ~apps ~app_of

(** [analyze_loaded ?config ?defs ?wrappers ?natives ?phase loaded]
    analyses an already-loaded APK. *)
let analyze_loaded ?config ?defs ?wrappers ?natives ?phase ?budget
    (loaded : Fd_frontend.Apk.loaded) =
  analyze_loaded_gen ?config ?defs ?wrappers ?natives ?phase ?budget
    ~apps:[ (loaded.Fd_frontend.Apk.name, loaded.Fd_frontend.Apk.manifest) ]
    ~app_of:(fun _ -> Some loaded.Fd_frontend.Apk.name)
    loaded

(** [analyze_merged ?config m] analyses several apps sharing one
    merged Scene — the inter-app setting.  The dummy main exercises
    every app's components; with the {!Config.t.icc} tier on, the
    resolver consults the per-app manifests, applies the exported gate
    across app boundaries, and stitches collusion flows. *)
let analyze_merged ?config ?defs ?wrappers ?natives ?phase ?budget
    (m : Fd_frontend.Apk.merged) =
  analyze_loaded_gen ?config ?defs ?wrappers ?natives ?phase ?budget
    ~apps:m.Fd_frontend.Apk.m_apps ~app_of:m.Fd_frontend.Apk.m_app_of
    m.Fd_frontend.Apk.m_loaded

(** [analyze_pair ?config a b] loads two apps into one merged scene
    and analyses them together — the two-app collusion setting of the
    ICC campaign. *)
let analyze_pair ?config ?defs ?wrappers ?natives ?phase ?mode ?budget a b =
  analyze_merged ?config ?defs ?wrappers ?natives ?phase ?budget
    (Fd_frontend.Apk.load_merged ?mode [ a; b ])

(** [analyze_apk ?config ?mode apk] runs the full pipeline from an APK
    bundle; [mode] selects strict (default) or lenient frontend
    parsing. *)
let analyze_apk ?config ?defs ?wrappers ?natives ?(phase = no_hook) ?mode
    ?budget apk =
  phase "parse manifest file";
  phase "parse layout xmls";
  phase "parse code";
  let loaded = Fd_frontend.Apk.load ?mode apk in
  analyze_loaded ?config ?defs ?wrappers ?natives ~phase ?budget loaded

(** [analyze_plain ?config ~classes ~entries ~defs ()] analyses a
    plain (non-Android) program: [classes] are added to a fresh scene
    with the framework skeleton, [entries] are the explicit entry
    points, [defs] the manually supplied sources and sinks (the
    SecuriBench setup of Section 6.4).  With [~synthetic_main:true]
    the entry points are wrapped in a generated main in which they can
    run in any sequential order — FlowDroid's default entry-point
    creator, needed when flows stage data in static state between
    entry points. *)
let analyze_plain ?(config = Config.default) ?(synthetic_main = false)
    ~classes ~entries
    ?(defs = Fd_frontend.Sourcesink.default ())
    ?(wrappers = Fd_frontend.Rules.default_wrappers ())
    ?(natives = Fd_frontend.Rules.default_natives ()) () =
  let scene = FW.fresh_scene () in
  List.iter (Scene.add_class scene) classes;
  let mgr = Srcsink_mgr.create_plain ~scene ~defs in
  let entries =
    if synthetic_main then
      [ Fd_lifecycle.Dummy_main.generate_plain scene entries ]
    else entries
  in
  run_engine ~config ~scene ~mgr ~wrappers ~natives ~entries ()

(** [warm_templates ()] forces every lazily-built shared template the
    pipeline clones per run — the framework-skeleton scene and the
    default source/sink, taint-wrapper and native rule sets — so a
    long-lived server amortises their construction to exactly one
    payment at startup.  Idempotent and cheap once forced. *)
let warm_templates () =
  Fd_frontend.Framework.warm ();
  ignore (Fd_frontend.Sourcesink.default ());
  ignore (Fd_frontend.Rules.default_wrappers ());
  ignore (Fd_frontend.Rules.default_natives ())

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

module Outcome = Fd_resilience.Outcome

let m_ladder_retries = Fd_obs.Metrics.counter "resilience.ladder_retries"
let m_degraded_runs = Fd_obs.Metrics.counter "resilience.degraded_runs"

type attempt = {
  at_label : string;  (** ladder rung, e.g. ["full"], ["k=3"] *)
  at_outcome : Outcome.t;
  at_findings : int;
  at_time : float;
}

type completeness =
  | Precise  (** the first rung completed: full-precision results *)
  | Degraded of string  (** completed at the named cheaper rung *)
  | Partial of string
      (** no rung completed; results are the named rung's partial
          under-approximation *)

type fallback = {
  fb_result : result;
  fb_attempts : attempt list;  (** in execution order *)
  fb_completeness : completeness;
}

exception Fallback_failed of attempt list
(** every ladder rung crashed without producing any result *)

let string_of_completeness = function
  | Precise -> "precise"
  | Degraded label -> "degraded(" ^ label ^ ")"
  | Partial label -> "partial(" ^ label ^ ")"

(** [with_fallback ~config run] drives [run] down the degradation
    ladder: the base config first, then progressively cheaper rungs
    ([k] 5→3→1, then no alias search) until one completes — mirroring
    how FlowDroid trades precision for termination under a timeout.
    An incomplete or crashed rung triggers the next one; when no rung
    completes, the last rung that produced {e any} result is returned
    with a [Partial] marker.
    @raise Fallback_failed when every rung crashed. *)
let with_fallback ~(config : Config.t) (run : label:string -> Config.t -> result)
    =
  let ladder = Config.degradation_ladder config in
  (* flight-recorder diagnostics of earlier rungs, kept so the final
     report explains *why* the ladder stepped down; each degraded rung
     attached its own dump in [run_engine], crashed rungs are captured
     here before the next rung's solve clears the ring *)
  let flight_diags result =
    List.filter
      (fun d -> String.equal d.Fd_resilience.Diag.d_file "flight-recorder")
      result.r_diags
  in
  let stash_best stash best =
    match best with
    | Some (_, prev) -> stash @ flight_diags prev
    | None -> stash
  in
  let with_stash stash result =
    if stash = [] then result
    else { result with r_diags = result.r_diags @ stash }
  in
  let rec go attempts best stash = function
    | [] -> (
        match best with
        | Some (label, result) ->
            Fd_obs.Metrics.incr m_degraded_runs;
            {
              fb_result = with_stash stash result;
              fb_attempts = List.rev attempts;
              fb_completeness = Partial label;
            }
        | None -> raise (Fallback_failed (List.rev attempts)))
    | (label, cfg) :: rest -> (
        if attempts <> [] then Fd_obs.Metrics.incr m_ladder_retries;
        let t0 = Sys.time () in
        match
          Fd_resilience.Barrier.protect ~label (fun () -> run ~label cfg)
        with
        | Ok result ->
            let at =
              {
                at_label = label;
                at_outcome = result.r_stats.st_outcome;
                at_findings = List.length result.r_findings;
                at_time = Sys.time () -. t0;
              }
            in
            if Outcome.is_complete result.r_stats.st_outcome then begin
              let attempts = List.rev (at :: attempts) in
              if List.length attempts > 1 then
                Fd_obs.Metrics.incr m_degraded_runs;
              {
                fb_result = with_stash (stash_best stash best) result;
                fb_attempts = attempts;
                fb_completeness =
                  (if List.length attempts = 1 then Precise
                   else Degraded label);
              }
            end
            else
              (* keep the partial result in case no rung completes;
                 later rungs overwrite earlier ones (they got further
                 through their cheaper state space) — but the replaced
                 rung's flight dump survives in the stash *)
              go (at :: attempts)
                (Some (label, result))
                (stash_best stash best) rest
        | Error outcome ->
            let at =
              {
                at_label = label;
                at_outcome = outcome;
                at_findings = 0;
                at_time = Sys.time () -. t0;
              }
            in
            let stash =
              stash
              @ [
                  Fd_resilience.Diag.make ~file:"flight-recorder"
                    (Printf.sprintf "%s crashed: %s" label
                       (Fd_obs.Ring.Flight.dump_line ~limit:12 ()));
                ]
            in
            go (at :: attempts) best stash rest)
  in
  go [] None [] ladder

(** [analyze_with_fallback ?config ?mode apk] is {!analyze_apk} under
    the degradation ladder: when a run exhausts its budget or crashes,
    it is retried under progressively cheaper configs and the final
    report carries a completeness marker.
    @raise Fd_frontend.Apk.Load_error when the (strict-mode) frontend
    rejects the app;
    @raise Fallback_failed when every ladder rung crashed. *)
let analyze_with_fallback ?(config = Config.default) ?defs ?wrappers ?natives
    ?(phase = no_hook) ?mode ?chaos apk =
  phase "parse manifest file";
  phase "parse layout xmls";
  phase "parse code";
  let loaded = Fd_frontend.Apk.load ?mode apk in
  with_fallback ~config (fun ~label:_ cfg ->
      let budget =
        Fd_resilience.Budget.create ?deadline_s:cfg.Config.deadline_s
          ~max_propagations:cfg.Config.max_propagations ?chaos ()
      in
      analyze_loaded ~config:cfg ?defs ?wrappers ?natives ~phase ~budget
        loaded)
