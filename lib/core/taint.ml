(** Taint abstractions: the data-flow facts of both IFDS solvers.

    A taint is an access path plus the flow-sensitivity machinery of
    Section 4.2: aliases discovered by the backward analysis are
    *inactive* and carry their *activation statement* — the heap write
    that made the alias tainted; only after the forward analysis
    propagates them across that statement (or across a call that
    transitively executes it) do they become active and able to cause
    leak reports.

    Each abstraction also links to its predecessor and the statement
    that derived it, so the reporting component can reconstruct full
    source-to-sink paths (Section 5); these links are excluded from
    equality and hashing, exactly as in FlowDroid. *)

open Fd_callgraph

type source_info = {
  si_category : Fd_frontend.Sourcesink.category;
  si_node : Icfg.node;  (** the statement that produced the source value *)
  si_tag : string option;  (** ground-truth tag of the source statement *)
  si_desc : string;  (** human-readable description, e.g. the method name *)
}

let equal_source a b =
  Icfg.equal_node a.si_node b.si_node && a.si_tag = b.si_tag

type t = {
  ap : Access_path.t;
  active : bool;
  activation : Icfg.node option;
      (** the heap-write statement that activates this alias; [None]
          for taints created directly at sources *)
  source : source_info;
  (* --- path reconstruction only; excluded from equality --- *)
  pred : t option;
  at : Icfg.node option;  (** statement where this abstraction arose *)
  mutable t_memo : int;
      (** cached {!hash_taint} (0 = not yet computed); taints are
          hashed once per solver-table interning, then reused *)
}

type fact = Zero | T of t

let equal_taint a b =
  a == b
  || (Access_path.equal a.ap b.ap
     && a.active = b.active
     && (match (a.activation, b.activation) with
        | None, None -> true
        | Some x, Some y -> Icfg.equal_node x y
        | _ -> false)
     && equal_source a.source b.source)

let equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | T x, T y -> equal_taint x y
  | _ -> false

(* a fold over every equality-relevant component ([Hashtbl.hash]'s
   node limit used to drop deep access-path segments), memoised in
   [t_memo] since taints are immutable once built *)
let hash_taint t =
  if t.t_memo <> 0 then t.t_memo
  else begin
    let ( ** ) = Fd_util.Intern.combine in
    let h = Access_path.hash t.ap ** if t.active then 3 else 5 in
    let h =
      h ** (match t.activation with None -> 0 | Some n -> Icfg.hash_node n)
    in
    let h = h ** Icfg.hash_node t.source.si_node in
    let h = h ** Hashtbl.hash t.source.si_tag in
    let h = if h = 0 then 1 else h in
    t.t_memo <- h;
    h
  end

let hash = function Zero -> 0 | T t -> hash_taint t

(** [make ~ap ~source ~at ()] is a fresh, active source taint. *)
let make ~ap ~source ~at () =
  { ap; active = true; activation = None; source; pred = None; at = Some at;
    t_memo = 0 }

(** [derive t ~ap ~at] is [t] rebased onto a new access path at
    statement [at], keeping activation state and source, and recording
    the derivation for path reconstruction. *)
let derive t ~ap ~at =
  { t with ap; pred = Some t; at = Some at; t_memo = 0 }

(** [inactive_alias t ~ap ~activation ~at] is the abstraction the
    backward analysis propagates: same source, new path, inactive,
    activated at [activation]. *)
let inactive_alias t ~ap ~activation ~at =
  { t with ap; active = false; activation = Some activation; pred = Some t;
    at = Some at; t_memo = 0 }

(** [active_alias t ~ap ~at] is the ablation variant of
    {!inactive_alias}: the alias is born active with no activation
    statement (flow-insensitive Andromeda-style handover). *)
let active_alias t ~ap ~at =
  { t with ap; active = true; activation = None; pred = Some t; at = Some at;
    t_memo = 0 }

(** [activate t ~at] turns an inactive alias into a reportable taint
    (it crossed its activation statement). *)
let activate t ~at =
  if t.active then t
  else { t with active = true; pred = Some t; at = Some at; t_memo = 0 }

let to_string t =
  Printf.sprintf "%s%s%s" (Access_path.to_string t.ap)
    (if t.active then "" else "*inactive*")
    (match t.activation with
    | Some n -> Printf.sprintf "@act:%s" (Icfg.string_of_node n)
    | None -> "")

let fact_to_string = function Zero -> "0" | T t -> to_string t

(** [path t] reconstructs the statement trail from the source to this
    abstraction, oldest first. *)
let path t =
  let rec go acc t =
    let acc = match t.at with Some n -> n :: acc | None -> acc in
    match t.pred with Some p -> go acc p | None -> acc
  in
  go [] t
