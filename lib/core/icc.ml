(** The ICC link resolver: inter-component and inter-app taint flows.

    FlowDroid over-approximates ICC (intent send = sink, intent
    reception = source) and names EPICC/IccTA-style integration as
    future work.  This module is that integration, behind
    {!Config.t.icc}:

    + an {e intent constant analysis} (driven by
      {!Fd_precision.Const_prop}) abstracts every intent-typed local
      into the explicit targets, actions, categories, data URIs and
      constant extra keys assigned to it — [setAction] / [setClass] /
      [setData] / [putExtra] chains through local copies;
    + the {e link resolver} matches those abstract intents against the
      manifests' intent filters with Android's resolution rules
      ({!Fd_frontend.Manifest.filter_matches}); across app boundaries
      a target must additionally be exported;
    + {e flow composition} stitches a sending-side flow
      [src → send(i)] whose intent resolves to component [T] with
      every reception-sourced flow [reception → sink] inside [T],
      refined per extra key: a flow into [putExtra("k", v)] only
      stitches to receptions reading key ["k"] (or reading the whole
      bundle).  Resolved sends stop being leaks by themselves;
      unresolved or external sends stay sinks and are reported as the
      app's attack surface, and tainted [setResult] payloads become
      leaks to the (unknown, possibly hostile) external caller.

    Stitched findings carry real concatenated witnesses: the sender's
    witness, then the receiver's with its first step re-kinded to
    ["icc"] — the marker witness validation accepts as a cross-
    component boundary. *)

open Fd_ir
open Fd_callgraph
module SS = Fd_frontend.Sourcesink
module M = Fd_frontend.Manifest
module CP = Fd_precision.Const_prop

let send_methods =
  [ "startActivity"; "startService"; "sendBroadcast"; "startActivityForResult" ]

let result_methods = [ "setResult" ]

(* tier observability: what the resolver did, in --stats-json *)
let g_sites = Fd_obs.Metrics.gauge "icc.send_sites"
let g_resolved = Fd_obs.Metrics.gauge "icc.resolved_sends"
let g_unmatched = Fd_obs.Metrics.gauge "icc.unmatched_sends"
let g_stitched = Fd_obs.Metrics.gauge "icc.stitched_flows"
let g_dropped = Fd_obs.Metrics.gauge "icc.dropped_sends"
let g_result_leaks = Fd_obs.Metrics.gauge "icc.result_leaks"
let g_exported = Fd_obs.Metrics.gauge "icc.exported_components"

(* ------------------------------------------------------------------ *)
(* Intent constant analysis                                            *)
(* ------------------------------------------------------------------ *)

(* the abstract value of one intent object: everything the constant
   analysis proved its setter chains assign.  Mutable accumulator
   shared between copy-related locals. *)
type abs_intent = {
  mutable ab_classes : string list;  (** possible explicit targets *)
  mutable ab_actions : string list;
  mutable ab_categories : string list;
  mutable ab_data : (string option * string option) list;  (** scheme, host *)
  mutable ab_mimes : string list;
  mutable ab_extras : (string * int) list;  (** constant key → putExtra idx *)
  mutable ab_extras_unknown : bool;
      (** a [putExtra] with non-constant key, or [putExtras] *)
  mutable ab_opaque : bool;
      (** a targeting setter took a non-constant argument: the true
          target set is unknowable, the send must stay a sink *)
}

let fresh_abs () =
  {
    ab_classes = [];
    ab_actions = [];
    ab_categories = [];
    ab_data = [];
    ab_mimes = [];
    ab_extras = [];
    ab_extras_unknown = false;
    ab_opaque = false;
  }

let add_uniq x xs = if List.mem x xs then xs else x :: xs

(* "scheme://host/path" or "scheme:rest" → (scheme, host) *)
let parse_uri s =
  match String.index_opt s ':' with
  | None -> (None, None)
  | Some i ->
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let host =
        if String.length rest >= 2 && String.sub rest 0 2 = "//" then
          let h = String.sub rest 2 (String.length rest - 2) in
          match String.index_opt h '/' with
          | Some j -> Some (String.sub h 0 j)
          | None -> Some h
        else None
      in
      (Some scheme, host)

let str_of cp ~at imm =
  match imm with
  | Stmt.Iconst (Stmt.CStr s) -> Some s
  | _ -> (
      match CP.imm_value cp ~at imm with Some (CP.Vstr s) -> Some s | _ -> None)

let cls_of cp ~at imm =
  match imm with
  | Stmt.Iconst (Stmt.CClassRef c) -> Some c
  | _ -> (
      match CP.imm_value cp ~at imm with
      | Some (CP.Vclass c) -> Some c
      | _ -> None)

(* the Intent mutators the abstraction interprets; everything else on
   an intent (getters, flags, …) is target-neutral *)
let intent_setters =
  [
    "<init>"; "setClass"; "setClassName"; "setComponent"; "setAction";
    "addCategory"; "setData"; "setType"; "setDataAndType"; "putExtra";
    "putExtras";
  ]

let apply_setter cp ab (inv : Stmt.invoke) ~at =
  let str = str_of cp ~at and cls = cls_of cp ~at in
  match inv.Stmt.i_sig.Types.m_name with
  | "<init>" ->
      (* new Intent() / new Intent(action) / new Intent(ctx, C.class):
         a dotted string constant is read as either an action or an
         explicit class name — resolution tries both *)
      List.iter
        (fun a ->
          match cls a with
          | Some c -> ab.ab_classes <- add_uniq c ab.ab_classes
          | None -> (
              match str a with
              | Some s when String.contains s ':' ->
                  ab.ab_data <- add_uniq (parse_uri s) ab.ab_data
              | Some s ->
                  ab.ab_actions <- add_uniq s ab.ab_actions;
                  if String.contains s '.' then
                    ab.ab_classes <- add_uniq s ab.ab_classes
              | None -> ()))
        inv.Stmt.i_args
  | "setClass" | "setClassName" | "setComponent" ->
      let found = ref false in
      List.iter
        (fun a ->
          match cls a with
          | Some c ->
              found := true;
              ab.ab_classes <- add_uniq c ab.ab_classes
          | None -> (
              match str a with
              | Some c ->
                  found := true;
                  ab.ab_classes <- add_uniq c ab.ab_classes
              | None -> ()))
        inv.Stmt.i_args;
      if not !found then ab.ab_opaque <- true
  | "setAction" -> (
      match inv.Stmt.i_args with
      | a :: _ -> (
          match str a with
          | Some s -> ab.ab_actions <- add_uniq s ab.ab_actions
          | None -> ab.ab_opaque <- true)
      | [] -> ())
  | "addCategory" -> (
      (* an unknown category only *narrows* the filter match; ignoring
         it over-approximates the target set, which is the safe
         direction for the drop-resolved-sends decision *)
      match inv.Stmt.i_args with
      | a :: _ -> (
          match str a with
          | Some s -> ab.ab_categories <- add_uniq s ab.ab_categories
          | None -> ())
      | [] -> ())
  | "setData" -> (
      match inv.Stmt.i_args with
      | a :: _ -> (
          match str a with
          | Some s -> ab.ab_data <- add_uniq (parse_uri s) ab.ab_data
          | None -> ab.ab_opaque <- true)
      | [] -> ())
  | "setType" -> (
      match inv.Stmt.i_args with
      | a :: _ -> (
          match str a with
          | Some s -> ab.ab_mimes <- add_uniq s ab.ab_mimes
          | None -> ab.ab_opaque <- true)
      | [] -> ())
  | "setDataAndType" -> (
      match inv.Stmt.i_args with
      | d :: t :: _ ->
          (match str d with
          | Some s -> ab.ab_data <- add_uniq (parse_uri s) ab.ab_data
          | None -> ab.ab_opaque <- true);
          (match str t with
          | Some s -> ab.ab_mimes <- add_uniq s ab.ab_mimes
          | None -> ab.ab_opaque <- true)
      | _ -> ())
  | "putExtra" -> (
      match inv.Stmt.i_args with
      | k :: _ :: _ -> (
          match str k with
          | Some key -> ab.ab_extras <- add_uniq (key, at) ab.ab_extras
          | None -> ab.ab_extras_unknown <- true)
      | _ -> ())
  | "putExtras" -> ab.ab_extras_unknown <- true
  | _ -> ()

let intent_class = "android.content.Intent"

let is_intent_call (inv : Stmt.invoke) =
  inv.Stmt.i_recv <> None
  && (inv.Stmt.i_sig.Types.m_class = intent_class
     || List.mem inv.Stmt.i_sig.Types.m_name intent_setters)
  && List.mem inv.Stmt.i_sig.Types.m_name intent_setters

(** [intents_in_body body] — one shared {!abs_intent} per copy-related
    family of intent locals (flow-insensitive per method; intents are
    short-lived locals in practice). *)
let intents_in_body body =
  let cp = CP.analyze body in
  (* union-find over local names: copies share one accumulator *)
  let parent : (string, string) Hashtbl.t = Hashtbl.create 7 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
    | _ -> x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  Body.iter body (fun s ->
      match s.Stmt.s_kind with
      | Stmt.Assign (Stmt.Llocal dst, Stmt.Eimm (Stmt.Iloc src)) ->
          union dst.Stmt.l_name src.Stmt.l_name
      | _ -> ());
  let accs : (string, abs_intent) Hashtbl.t = Hashtbl.create 7 in
  let acc_of l =
    let r = find l in
    match Hashtbl.find_opt accs r with
    | Some a -> a
    | None ->
        let a = fresh_abs () in
        Hashtbl.replace accs r a;
        a
  in
  Body.iter body (fun s ->
      match Stmt.invoke_of s with
      | Some inv when is_intent_call inv -> (
          match inv.Stmt.i_recv with
          | Some r ->
              apply_setter cp (acc_of r.Stmt.l_name) inv ~at:s.Stmt.s_idx
          | None -> ())
      | _ -> ());
  fun l -> Hashtbl.find_opt accs (find l)

(* abstract intent → the possible intent descriptors to resolve
   ([None] = nothing provable, treat as an unknown send) *)
let descs_of ab : M.intent_desc list option =
  if ab.ab_opaque then None
  else
    let data_combos =
      match (ab.ab_data, ab.ab_mimes) with
      | [], [] -> [ (None, None, None) ]
      | ds, [] -> List.map (fun (s, h) -> (s, h, None)) ds
      | [], ms -> List.map (fun m -> (None, None, Some m)) ms
      | ds, ms ->
          List.concat_map
            (fun (s, h) -> List.map (fun m -> (s, h, Some m)) ms)
            ds
    in
    let with_data base =
      List.map
        (fun (s, h, m) ->
          { base with M.it_scheme = s; M.it_host = h; M.it_mime = m })
        data_combos
    in
    let explicit =
      List.map
        (fun c -> { M.blank_intent with M.it_class = Some c })
        ab.ab_classes
    in
    let implicit =
      match ab.ab_actions with
      | [] ->
          if ab.ab_data <> [] || ab.ab_mimes <> [] then
            with_data
              { M.blank_intent with M.it_categories = ab.ab_categories }
          else []
      | acts ->
          List.concat_map
            (fun a ->
              with_data
                {
                  M.blank_intent with
                  M.it_action = Some a;
                  M.it_categories = ab.ab_categories;
                })
            acts
    in
    match explicit @ implicit with [] -> None | ds -> Some ds

(* ------------------------------------------------------------------ *)
(* Send sites                                                          *)
(* ------------------------------------------------------------------ *)

type send_site = {
  ss_node : Icfg.node;  (** the startActivity / sendBroadcast call *)
  ss_method : string;  (** the send method's name *)
  ss_descs : M.intent_desc list option;
      (** possible intents; [None] = unknown (the send stays a sink) *)
  ss_extras : (string * Icfg.node) list;
      (** constant extra key → the [putExtra] site that wrote it *)
  ss_extras_unknown : bool;
}

(* the intent argument of a send/setResult call: the first local
   argument with intent info, else the first intent-typed local *)
let intent_arg lookup (inv : Stmt.invoke) =
  let locs =
    List.filter_map
      (function Stmt.Iloc l -> Some l | Stmt.Iconst _ -> None)
      inv.Stmt.i_args
  in
  match List.find_opt (fun l -> lookup l.Stmt.l_name <> None) locs with
  | Some l -> Some l
  | None ->
      List.find_opt
        (fun (l : Stmt.local) ->
          match l.Stmt.l_type with
          | Types.Ref c -> c = intent_class
          | _ -> false)
        locs

(** [send_sites icfg] — every intent-send call site among the
    reachable methods, with its abstract intent; and every [setResult]
    site with its intent local. *)
let send_sites (icfg : Icfg.t) =
  let sites = ref [] and results = ref [] in
  List.iter
    (fun mkey ->
      match Callgraph.body_of icfg.Icfg.cg mkey with
      | exception Not_found -> ()
      | body ->
          let lookup = intents_in_body body in
          Body.iter body (fun s ->
              match Stmt.invoke_of s with
              | Some inv
                when List.mem inv.Stmt.i_sig.Types.m_name send_methods -> (
                  let node = Icfg.{ n_method = mkey; n_idx = s.Stmt.s_idx } in
                  match intent_arg lookup inv with
                  | None -> ()
                  | Some l ->
                      let ab =
                        Option.value (lookup l.Stmt.l_name)
                          ~default:(fresh_abs ())
                      in
                      sites :=
                        {
                          ss_node = node;
                          ss_method = inv.Stmt.i_sig.Types.m_name;
                          ss_descs = descs_of ab;
                          ss_extras =
                            List.map
                              (fun (k, idx) ->
                                (k, Icfg.{ n_method = mkey; n_idx = idx }))
                              ab.ab_extras;
                          ss_extras_unknown = ab.ab_extras_unknown;
                        }
                        :: !sites)
              | Some inv
                when List.mem inv.Stmt.i_sig.Types.m_name result_methods -> (
                  match intent_arg lookup inv with
                  | Some l ->
                      results :=
                        ( Icfg.{ n_method = mkey; n_idx = s.Stmt.s_idx },
                          l,
                          s.Stmt.s_tag )
                        :: !results
                  | None -> ())
              | _ -> ()))
    (Callgraph.reachable_methods icfg.Icfg.cg);
  (List.rev !sites, List.rev !results)

(* ------------------------------------------------------------------ *)
(* Link resolution                                                     *)
(* ------------------------------------------------------------------ *)

(** [resolve ~apps ~app_of ~sender descs] — the components (with their
    owning app) an intent matching one of [descs] can reach: within
    the sender's own app any enabled matching component, across app
    boundaries only exported ones. *)
let resolve ~(apps : (string * M.t) list) ~app_of ~sender descs =
  let sender_app = app_of sender in
  List.concat_map
    (fun (app_name, m) ->
      let same_app = sender_app = Some app_name in
      List.filter_map
        (fun (c : M.component) ->
          if
            (same_app || c.M.comp_exported)
            && List.exists (fun d -> M.component_receives c d) descs
          then Some (app_name, c)
          else None)
        m.M.components)
    apps

(* does any manifest declare this class (as a component)? *)
let declared apps cls =
  List.exists (fun (_, m) -> M.find m cls <> None) apps

(* ------------------------------------------------------------------ *)
(* Flow composition                                                    *)
(* ------------------------------------------------------------------ *)

let is_reception_source (fd : Bidi.finding) =
  fd.Bidi.f_source.Taint.si_category = SS.Intent_data

(* the source of [fd] sits in component [cls]'s code (or an app-level
   supertype of it) *)
let receives_in scene cls (fd : Bidi.finding) =
  is_reception_source fd
  &&
  let owner = fd.Bidi.f_source.Taint.si_node.Icfg.n_method.Mkey.mk_class in
  Scene.is_subtype scene owner cls || owner = cls

(* bundle-reading source methods that name their key as a constant
   first argument; anything else reads the whole payload *)
let keyed_readers =
  [ "getStringExtra"; "getString"; "getCharSequenceExtra"; "getIntExtra" ]

(** [reception_key icfg fd] — the extra key a reception-sourced
    finding reads, when its source statement names one as a constant
    ([None] = reads the whole intent/bundle, matches any key). *)
let reception_key (icfg : Icfg.t) (fd : Bidi.finding) =
  match Icfg.stmt icfg fd.Bidi.f_source.Taint.si_node with
  | exception Not_found -> None
  | s -> (
      match Stmt.invoke_of s with
      | Some inv when List.mem inv.Stmt.i_sig.Types.m_name keyed_readers -> (
          match inv.Stmt.i_args with
          | Stmt.Iconst (Stmt.CStr k) :: _ -> Some k
          | _ -> None)
      | _ -> None)

(* the active taints covering an immediate just before [node] *)
let taints_reaching engine node imm =
  match imm with
  | Stmt.Iconst _ -> []
  | Stmt.Iloc l ->
      let ap = Access_path.of_local l in
      List.filter
        (fun (t : Taint.t) ->
          t.Taint.active && Access_path.reaches ~taint:t.Taint.ap ap)
        (Bidi.results_at engine node)

(* distinct sources flowing into each constant extra key of a site *)
let key_sources engine (icfg : Icfg.t) site =
  List.filter_map
    (fun (key, node) ->
      match Icfg.stmt icfg node with
      | exception Not_found -> None
      | s -> (
          match Stmt.invoke_of s with
          | Some inv -> (
              match inv.Stmt.i_args with
              | _ :: v :: _ -> (
                  match taints_reaching engine node v with
                  | [] -> None
                  | ts ->
                      let srcs =
                        List.fold_left
                          (fun acc (t : Taint.t) ->
                            if
                              List.exists
                                (Taint.equal_source t.Taint.source)
                                acc
                            then acc
                            else t.Taint.source :: acc)
                          [] ts
                      in
                      Some (key, List.rev srcs))
              | _ -> None)
          | None -> None))
    site.ss_extras

type stitched = {
  st_finding : Bidi.finding;
  st_via : Icfg.node;  (** the resolved intent-send site *)
  st_target : string;  (** receiving component class *)
  st_key : string option;  (** matched extra key; [None] = whole intent *)
}

type surface_reason =
  | Unknown_intent  (** the constant analysis could not pin the target *)
  | No_match  (** a known intent no declared component receives *)
  | External of string  (** explicit target class outside the scene *)

type surface_entry = {
  su_node : Icfg.node;
  su_method : string;
  su_reason : surface_reason;
}

let string_of_reason = function
  | Unknown_intent -> "unknown-intent"
  | No_match -> "no-match"
  | External c -> "external:" ^ c

type report = {
  ic_send_sites : int;
  ic_resolved : int;  (** sites with ≥ 1 in-scene receiving component *)
  ic_stitched : stitched list;
  ic_result_leaks : Bidi.finding list;
      (** tainted [setResult] payloads handed to the external caller *)
  ic_dropped : Bidi.finding list;
      (** resolved send-as-sink findings replaced by stitched flows *)
  ic_surface : surface_entry list;  (** sends that leave the scene *)
  ic_exported : (string * string) list;
      (** the exported attack surface: (app, component class) *)
}

(* stitch one sender flow to one reception flow *)
let stitch (sender : Bidi.finding) ~via ~target ~key (rx : Bidi.finding) =
  let witness =
    match (sender.Bidi.f_witness, rx.Bidi.f_witness) with
    | (_ :: _ as sw), r0 :: rrest ->
        sw @ ({ r0 with Bidi.ws_kind = "icc" } :: rrest)
    | _ -> []
  in
  {
    st_finding =
      {
        Bidi.f_source = sender.Bidi.f_source;
        Bidi.f_sink_node = rx.Bidi.f_sink_node;
        Bidi.f_sink_tag = rx.Bidi.f_sink_tag;
        Bidi.f_sink_cat = rx.Bidi.f_sink_cat;
        Bidi.f_path = sender.Bidi.f_path @ rx.Bidi.f_path;
        Bidi.f_witness = witness;
      };
    st_via = via;
    st_target = target;
    st_key = key;
  }

let finding_key (f : Bidi.finding) =
  ( f.Bidi.f_source.Taint.si_tag,
    f.Bidi.f_source.Taint.si_node,
    f.Bidi.f_sink_node,
    f.Bidi.f_sink_tag )

(** [analyze ~icfg ~scene ~engine ~apps ~app_of findings] runs the
    resolver over a solved engine: finds and resolves the send sites,
    stitches flows (iterating so relayed intents A→B→C compose
    transitively), synthesises [setResult] leaks and the attack
    surface, and records the [icc.*] gauges. *)
let analyze ~(icfg : Icfg.t) ~scene ~engine ~(provenance : bool)
    ~(apps : (string * M.t) list) ~app_of (findings : Bidi.finding list) =
  let sites, result_sites = send_sites icfg in
  (* resolve every site once *)
  let resolved_of site =
    match site.ss_descs with
    | None -> []
    | Some descs ->
        resolve ~apps ~app_of ~sender:site.ss_node.Icfg.n_method.Mkey.mk_class
          descs
  in
  let site_targets = List.map (fun s -> (s, resolved_of s)) sites in
  let resolved_sites =
    List.filter_map (fun (s, ts) -> if ts <> [] then Some s else None)
      site_targets
  in
  let is_resolved_node n =
    List.exists (fun s -> Icfg.equal_node s.ss_node n) resolved_sites
  in
  let receptions = List.filter is_reception_source findings in
  (* hop 1: per-extra-key precision — a sender source stitches through
     key "k" only to receptions reading "k" (or the whole payload) *)
  let compose_site (site, targets) =
    if targets = [] then []
    else begin
      let keyed = key_sources engine icfg site in
      let base_senders =
        List.filter
          (fun (f : Bidi.finding) ->
            Icfg.equal_node f.Bidi.f_sink_node site.ss_node)
          findings
      in
      let sender_for src =
        List.find_opt
          (fun (f : Bidi.finding) ->
            Taint.equal_source f.Bidi.f_source src)
          base_senders
      in
      List.concat_map
        (fun (_, (comp : M.component)) ->
          let rxs =
            List.filter (receives_in scene comp.M.comp_class) receptions
          in
          List.concat_map
            (fun (rx : Bidi.finding) ->
              let rx_key = reception_key icfg rx in
              (* sources reaching the key the reception reads *)
              let keyed_hits =
                List.concat_map
                  (fun (k, srcs) ->
                    match rx_key with
                    | Some rk when rk <> k -> []
                    | _ -> List.map (fun s -> (Some k, s)) srcs)
                  keyed
              in
              (* whole-intent fallback: unknown extra keys mean any
                 sender flow into the site may reach any reader *)
              let whole_hits =
                if site.ss_extras_unknown then
                  List.map
                    (fun (f : Bidi.finding) -> (None, f.Bidi.f_source))
                    base_senders
                else []
              in
              List.filter_map
                (fun (key, src) ->
                  match sender_for src with
                  | Some sender ->
                      Some
                        (stitch sender ~via:site.ss_node
                           ~target:comp.M.comp_class ~key rx)
                  | None -> None)
                (keyed_hits @ whole_hits))
            rxs)
        targets
    end
  in
  let hop1 = List.concat_map compose_site site_targets in
  (* further hops: a stitched flow whose sink is itself a resolved
     send relays onward (A→B→C); key precision is exhausted after the
     first hop, so any tainted reception in the next target matches *)
  let compose_from (flows : stitched list) =
    List.concat_map
      (fun st ->
        let f = st.st_finding in
        match
          List.find_opt
            (fun (s, ts) ->
              ts <> [] && Icfg.equal_node s.ss_node f.Bidi.f_sink_node)
            site_targets
        with
        | None -> []
        | Some (site, targets) ->
            List.concat_map
              (fun (_, (comp : M.component)) ->
                List.filter_map
                  (fun (rx : Bidi.finding) ->
                    if receives_in scene comp.M.comp_class rx then
                      Some
                        (stitch f ~via:site.ss_node
                           ~target:comp.M.comp_class ~key:st.st_key rx)
                    else None)
                  receptions)
              targets)
      flows
  in
  let rec fixpoint seen frontier rounds =
    if frontier = [] || rounds = 0 then seen
    else begin
      let next = compose_from frontier in
      let fresh =
        List.filter
          (fun st ->
            not
              (List.exists
                 (fun st' ->
                   finding_key st'.st_finding = finding_key st.st_finding)
                 seen))
          next
      in
      fixpoint (seen @ fresh) fresh (rounds - 1)
    end
  in
  let all_stitched = fixpoint hop1 hop1 3 in
  (* flows whose sink is an intermediate resolved send are relays, not
     final findings *)
  let final_stitched =
    List.filter
      (fun st -> not (is_resolved_node st.st_finding.Bidi.f_sink_node))
      all_stitched
  in
  (* dedupe: the same end-to-end flow can stitch via several targets *)
  let final_stitched =
    List.rev
      (List.fold_left
         (fun acc st ->
           if
             List.exists
               (fun st' -> finding_key st'.st_finding = finding_key st.st_finding)
               acc
           then acc
           else st :: acc)
         [] final_stitched)
  in
  (* tainted setResult payloads: handed back to an external (possibly
     hostile) caller — a leak the send = sink over-approximation
     misses entirely (DroidBench IntentSink1) *)
  let result_leaks =
    List.concat_map
      (fun (node, l, tag) ->
        let ts = taints_reaching engine node (Stmt.Iloc l) in
        let srcs =
          List.fold_left
            (fun acc (t : Taint.t) ->
              if
                List.exists
                  (fun (s, _) -> Taint.equal_source s t.Taint.source)
                  acc
              then acc
              else (t.Taint.source, t) :: acc)
            [] ts
        in
        List.map
          (fun ((src : Taint.source_info), (t : Taint.t)) ->
            let witness =
              (* a minimal two-step witness; the boundary step's "icc"
                 kind marks the framework hand-off validation accepts *)
              if not provenance then []
              else
                match Icfg.stmt icfg node with
                | exception Not_found -> []
                | s ->
                    [
                      {
                        Bidi.ws_node = src.Taint.si_node;
                        Bidi.ws_stmt =
                          (match Icfg.stmt icfg src.Taint.si_node with
                          | stmt -> Stmt.to_string stmt
                          | exception Not_found -> "<source>");
                        Bidi.ws_fact = Taint.to_string t;
                        Bidi.ws_kind = "source";
                      };
                      {
                        Bidi.ws_node = node;
                        Bidi.ws_stmt = Stmt.to_string s;
                        Bidi.ws_fact = Taint.to_string t;
                        Bidi.ws_kind = "icc";
                      };
                    ]
            in
            {
              Bidi.f_source = src;
              Bidi.f_sink_node = node;
              Bidi.f_sink_tag = tag;
              Bidi.f_sink_cat = SS.Intent_data;
              Bidi.f_path = Taint.path t @ [ node ];
              Bidi.f_witness = witness;
            })
          (List.rev srcs))
      result_sites
  in
  (* resolved sends stop being leaks; everything else is surface *)
  let dropped =
    List.filter
      (fun (f : Bidi.finding) -> is_resolved_node f.Bidi.f_sink_node)
      findings
  in
  let surface =
    List.filter_map
      (fun (site, targets) ->
        if targets <> [] then None
        else
          let reason =
            match site.ss_descs with
            | None -> Unknown_intent
            | Some descs -> (
                match
                  List.find_map
                    (fun (d : M.intent_desc) ->
                      match d.M.it_class with
                      | Some c when not (declared apps c) -> Some c
                      | _ -> None)
                    descs
                with
                | Some c -> External c
                | None -> No_match)
          in
          Some
            {
              su_node = site.ss_node;
              su_method = site.ss_method;
              su_reason = reason;
            })
      site_targets
  in
  let exported =
    List.concat_map
      (fun (app_name, m) ->
        List.filter_map
          (fun (c : M.component) ->
            if c.M.comp_enabled && c.M.comp_exported then
              Some (app_name, c.M.comp_class)
            else None)
          m.M.components)
      apps
  in
  let report =
    {
      ic_send_sites = List.length sites;
      ic_resolved = List.length resolved_sites;
      ic_stitched = final_stitched;
      ic_result_leaks = result_leaks;
      ic_dropped = dropped;
      ic_surface = surface;
      ic_exported = exported;
    }
  in
  Fd_obs.Metrics.set_int g_sites report.ic_send_sites;
  Fd_obs.Metrics.set_int g_resolved report.ic_resolved;
  Fd_obs.Metrics.set_int g_unmatched (List.length report.ic_surface);
  Fd_obs.Metrics.set_int g_stitched (List.length report.ic_stitched);
  Fd_obs.Metrics.set_int g_dropped (List.length report.ic_dropped);
  Fd_obs.Metrics.set_int g_result_leaks (List.length report.ic_result_leaks);
  Fd_obs.Metrics.set_int g_exported (List.length report.ic_exported);
  report

(** [added report] — the findings the tier adds (stitched flows plus
    [setResult] leaks), in a deterministic order. *)
let added report =
  let fds =
    List.map (fun st -> st.st_finding) report.ic_stitched
    @ report.ic_result_leaks
  in
  List.sort_uniq
    (fun (a : Bidi.finding) (b : Bidi.finding) ->
      compare (finding_key a) (finding_key b))
    fds

(** [apply report findings] — the tier-on view: the base findings
    minus the resolved send-as-sink ones, plus {!added}.  Stable: base
    findings keep their order, additions are appended sorted. *)
let apply report (findings : Bidi.finding list) =
  let keep =
    List.filter
      (fun (f : Bidi.finding) ->
        not
          (List.exists
             (fun (d : Bidi.finding) -> finding_key d = finding_key f)
             report.ic_dropped))
      findings
  in
  let base_keys = List.map finding_key keep in
  keep
  @ List.filter (fun f -> not (List.mem (finding_key f) base_keys))
      (added report)
