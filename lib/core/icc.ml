(** EPICC-lite: inter-component communication resolution.

    FlowDroid itself over-approximates ICC (intent send = sink, intent
    reception = source); the paper's stated future work is integrating
    EPICC [Octeau et al., USENIX Security'13], a string analysis that
    resolves which component an intent reaches.  This module is a
    small-scale version of that integration:

    + a constant-propagation-style {e intent analysis} finds, for every
      intent-send site, the possible target components: explicit
      targets ([new Intent(C.class)] / [setClass(...)] with constant
      operands) and implicit targets (constant action strings matched
      against the manifest's intent filters);
    + {e flow composition} then stitches analysis results end-to-end:
      a flow [src → send(i)] whose intent resolves to component [T]
      composes with every flow [intent-reception → sink] inside [T],
      yielding the transitive leak [src → sink] with the full
      concatenated path.

    The result refines the paper's over-approximation: sends whose
    target is inside the app stop being leaks by themselves and
    instead extend to wherever the receiving component lets the data
    escape. *)

open Fd_ir
open Fd_callgraph
module SS = Fd_frontend.Sourcesink

type target =
  | Explicit of string  (** target component class *)
  | Action of string  (** implicit: intent action string *)

type send_site = {
  ss_node : Icfg.node;  (** the startActivity / sendBroadcast call *)
  ss_targets : string list;  (** resolved receiving component classes *)
}

let send_methods =
  [ "startActivity"; "startService"; "sendBroadcast"; "startActivityForResult" ]


(* intra-procedural constant intent tracking: map each intent-typed
   local to the targets assigned to it so far (flow-insensitively per
   method — intents are short-lived locals in practice) *)
let intent_targets_in_body body =
  let targets : (string, target list) Hashtbl.t = Hashtbl.create 7 in
  let add l t =
    let prev = Option.value (Hashtbl.find_opt targets l) ~default:[] in
    if not (List.mem t prev) then Hashtbl.replace targets l (t :: prev)
  in
  Body.iter body (fun s ->
      match Stmt.invoke_of s with
      | Some inv
        when inv.Stmt.i_sig.Types.m_class = "android.content.Intent"
             || inv.Stmt.i_sig.Types.m_name = "setClass"
             || inv.Stmt.i_sig.Types.m_name = "setAction" -> (
          let recv_name =
            match inv.Stmt.i_recv with
            | Some r -> Some r.Stmt.l_name
            | None -> None
          in
          match (recv_name, inv.Stmt.i_sig.Types.m_name) with
          | Some r, "<init>" ->
              List.iter
                (function
                  | Stmt.Iconst (Stmt.CClassRef c) -> add r (Explicit c)
                  | Stmt.Iconst (Stmt.CStr a) when String.contains a '.' ->
                      (* a dotted constant in the constructor is read as
                         either an explicit class or an action; try both *)
                      add r (Explicit a);
                      add r (Action a)
                  | _ -> ())
                inv.Stmt.i_args
          | Some r, "setClass" | Some r, "setClassName" ->
              List.iter
                (function
                  | Stmt.Iconst (Stmt.CClassRef c) -> add r (Explicit c)
                  | Stmt.Iconst (Stmt.CStr c) -> add r (Explicit c)
                  | _ -> ())
                inv.Stmt.i_args
          | Some r, "setAction" ->
              List.iter
                (function
                  | Stmt.Iconst (Stmt.CStr a) -> add r (Action a)
                  | _ -> ())
                inv.Stmt.i_args
          | _ -> ())
      | _ -> ());
  (* propagate through local copies: i2 = i1 *)
  let changed = ref true in
  while !changed do
    changed := false;
    Body.iter body (fun s ->
        match s.Stmt.s_kind with
        | Stmt.Assign (Stmt.Llocal dst, Stmt.Eimm (Stmt.Iloc src)) -> (
            match Hashtbl.find_opt targets src.Stmt.l_name with
            | Some ts ->
                List.iter
                  (fun t ->
                    let prev =
                      Option.value
                        (Hashtbl.find_opt targets dst.Stmt.l_name)
                        ~default:[]
                    in
                    if not (List.mem t prev) then begin
                      Hashtbl.replace targets dst.Stmt.l_name (t :: prev);
                      changed := true
                    end)
                  ts
            | None -> ())
        | _ -> ());
  done;
  targets

(* match a resolved target against the manifest *)
let components_for (manifest : Fd_frontend.Manifest.t) = function
  | Explicit cls ->
      Fd_frontend.Manifest.enabled_components manifest
      |> List.filter_map (fun (c : Fd_frontend.Manifest.component) ->
             if c.Fd_frontend.Manifest.comp_class = cls then
               Some c.Fd_frontend.Manifest.comp_class
             else None)
  | Action a ->
      Fd_frontend.Manifest.enabled_components manifest
      |> List.filter_map (fun (c : Fd_frontend.Manifest.component) ->
             if List.mem a c.Fd_frontend.Manifest.comp_actions then
               Some c.Fd_frontend.Manifest.comp_class
             else None)

(** [send_sites icfg manifest] finds every intent-send call site in the
    analysed code together with its resolved in-app targets. *)
let send_sites (icfg : Icfg.t) (manifest : Fd_frontend.Manifest.t) =
  let sites = ref [] in
  List.iter
    (fun mkey ->
      match Callgraph.body_of icfg.Icfg.cg mkey with
      | exception Not_found -> ()
      | body ->
          let targets = intent_targets_in_body body in
          Body.iter body (fun s ->
              match Stmt.invoke_of s with
              | Some inv
                when List.mem inv.Stmt.i_sig.Types.m_name send_methods -> (
                  (* the intent argument *)
                  let intent_arg =
                    List.find_map
                      (function
                        | Stmt.Iloc l -> Hashtbl.find_opt targets l.Stmt.l_name
                        | Stmt.Iconst _ -> None)
                      inv.Stmt.i_args
                  in
                  match intent_arg with
                  | Some ts ->
                      let resolved =
                        List.concat_map (components_for manifest) ts
                        |> List.sort_uniq compare
                      in
                      sites :=
                        {
                          ss_node =
                            Icfg.{ n_method = mkey; n_idx = s.Stmt.s_idx };
                          ss_targets = resolved;
                        }
                        :: !sites
                  | None -> ())
              | _ -> ()))
    (Callgraph.reachable_methods icfg.Icfg.cg);
  !sites

(* does a finding's sink sit at one of the send sites? *)
let site_of_finding sites (fd : Bidi.finding) =
  List.find_opt
    (fun site -> Icfg.equal_node site.ss_node fd.Bidi.f_sink_node)
    sites

(* does a finding originate from an intent-reception source inside
   component [cls]? *)
let receives_in scene cls (fd : Bidi.finding) =
  fd.Bidi.f_source.Taint.si_category = SS.Intent_data
  &&
  let owner = fd.Bidi.f_source.Taint.si_node.Icfg.n_method.Mkey.mk_class in
  (* the source may sit in the component itself or any of its app-level
     supertypes' code *)
  Scene.is_subtype scene owner cls || owner = cls

(* is this source an intent reception at all (vs. e.g. the IMEI)? *)
let is_reception_source (fd : Bidi.finding) =
  fd.Bidi.f_source.Taint.si_category = SS.Intent_data

type composed = {
  comp_source : Taint.source_info;  (** the original (sending-side) source *)
  comp_via : Icfg.node;  (** the resolved intent-send site *)
  comp_target : string;  (** receiving component *)
  comp_sink_node : Icfg.node;
  comp_sink_tag : string option;
  comp_sink_cat : SS.category;
  comp_path : Icfg.node list;
}

(** [compose ~icfg ~scene ~manifest findings] resolves intent sends and
    stitches sending-side flows to receiving-side flows.  Returns the
    composed transitive flows; the caller decides whether to keep the
    raw send-as-sink findings as well (FlowDroid's over-approximation)
    or replace the resolved ones. *)
let compose ~icfg ~scene ~manifest (findings : Bidi.finding list) =
  let sites = send_sites icfg manifest in
  List.concat_map
    (fun (fd : Bidi.finding) ->
      if is_reception_source fd then []
      else
        match site_of_finding sites fd with
        | None -> []
        | Some site ->
            List.concat_map
              (fun target ->
                findings
                |> List.filter (fun rx ->
                       is_reception_source rx && receives_in scene target rx)
                |> List.map (fun (rx : Bidi.finding) ->
                       {
                         comp_source = fd.Bidi.f_source;
                         comp_via = site.ss_node;
                         comp_target = target;
                         comp_sink_node = rx.Bidi.f_sink_node;
                         comp_sink_tag = rx.Bidi.f_sink_tag;
                         comp_sink_cat = rx.Bidi.f_sink_cat;
                         comp_path = fd.Bidi.f_path @ rx.Bidi.f_path;
                       }))
              site.ss_targets)
    findings

(** [composed_to_findings cs] views composed flows as ordinary findings
    (for uniform scoring/reporting). *)
let composed_to_findings cs =
  List.map
    (fun c ->
      {
        Bidi.f_source = c.comp_source;
        Bidi.f_sink_node = c.comp_sink_node;
        Bidi.f_sink_tag = c.comp_sink_tag;
        Bidi.f_sink_cat = c.comp_sink_cat;
        Bidi.f_path = c.comp_path;
        (* composed flows stitch two single-component findings; their
           witnesses do not concatenate soundly, so none is attached *)
        Bidi.f_witness = [];
      })
    cs
