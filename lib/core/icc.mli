(** The ICC link resolver (the {!Config.t.icc} tier): EPICC/IccTA-style
    inter-component and inter-app flow stitching.

    An intent constant analysis (driven by
    {!Fd_precision.Const_prop}) abstracts each intent local's
    [setAction] / [setClass] / [setData] / [putExtra] chains; the link
    resolver matches the result against the manifests' intent filters
    with Android's resolution rules (cross-app targets must be
    exported); flow composition stitches sending-side flows to
    reception-sourced flows in the resolved targets, refined per
    constant extra key.  Resolved sends stop being leaks by
    themselves; unresolved sends stay sinks and feed the
    attack-surface report, and tainted [setResult] payloads become
    leaks to the external caller. *)

open Fd_callgraph

val send_methods : string list
(** the framework methods that launch an intent *)

type send_site = {
  ss_node : Icfg.node;  (** the startActivity / sendBroadcast call *)
  ss_method : string;  (** the send method's name *)
  ss_descs : Fd_frontend.Manifest.intent_desc list option;
      (** possible intents; [None] = unknown (the send stays a sink) *)
  ss_extras : (string * Icfg.node) list;
      (** constant extra key → the [putExtra] site that wrote it *)
  ss_extras_unknown : bool;
      (** a [putExtra] with non-constant key, or [putExtras] *)
}

val send_sites :
  Icfg.t -> send_site list * (Icfg.node * Fd_ir.Stmt.local * string option) list
(** every intent-send call site among the reachable methods with its
    abstract intent, plus every [setResult] site as
    [(node, intent local, statement tag)] *)

type stitched = {
  st_finding : Bidi.finding;  (** the composed end-to-end flow *)
  st_via : Icfg.node;  (** the resolved intent-send site *)
  st_target : string;  (** receiving component class *)
  st_key : string option;  (** matched extra key; [None] = whole intent *)
}

type surface_reason =
  | Unknown_intent  (** the constant analysis could not pin the target *)
  | No_match  (** a known intent no declared component receives *)
  | External of string  (** explicit target class outside the scene *)

type surface_entry = {
  su_node : Icfg.node;
  su_method : string;
  su_reason : surface_reason;
}

val string_of_reason : surface_reason -> string

type report = {
  ic_send_sites : int;
  ic_resolved : int;  (** sites with ≥ 1 in-scene receiving component *)
  ic_stitched : stitched list;
  ic_result_leaks : Bidi.finding list;
      (** tainted [setResult] payloads handed to the external caller *)
  ic_dropped : Bidi.finding list;
      (** resolved send-as-sink findings replaced by stitched flows *)
  ic_surface : surface_entry list;  (** sends that leave the scene *)
  ic_exported : (string * string) list;
      (** the exported attack surface: (app, component class) *)
}

val analyze :
  icfg:Icfg.t ->
  scene:Fd_ir.Scene.t ->
  engine:Bidi.t ->
  provenance:bool ->
  apps:(string * Fd_frontend.Manifest.t) list ->
  app_of:(string -> string option) ->
  Bidi.finding list ->
  report
(** [analyze ~icfg ~scene ~engine ~provenance ~apps ~app_of findings]
    runs the resolver over a solved engine: resolves the send sites
    against [apps]' manifests ([app_of] maps a class to its owning app
    for the exported-across-apps gate), stitches flows (iterating so
    relayed intents A→B→C compose transitively, with per-extra-key
    refinement on the first hop), synthesises [setResult] leaks and
    the attack surface, and records the [icc.*] gauges.  Stitched
    witnesses concatenate the sender's and receiver's witnesses with
    the boundary step re-kinded to ["icc"] (only when [provenance]). *)

val added : report -> Bidi.finding list
(** the findings the tier adds (stitched flows plus [setResult]
    leaks), deterministically ordered *)

val apply : report -> Bidi.finding list -> Bidi.finding list
(** the tier-on view of a finding list: base findings minus the
    resolved send-as-sink ones, plus {!added} (base order preserved,
    additions appended) *)
