(** The analysis driver: Figure 4's pipeline.

    [parse manifest] → [parse layout XMLs] → [parse code] →
    [source/sink/entry-point detection] → [generate dummy main] →
    [build call graph] → [perform taint analysis].

    {!analyze_apk} runs the full Android pipeline; {!analyze_plain}
    analyses ordinary Java-style programs with explicit entry points
    (SecuriBench Micro, the paper's listings — RQ4). *)

open Fd_callgraph

type stats = {
  st_time : float;  (** analysis wall time, seconds *)
  st_reachable : int;  (** reachable methods in the final call graph *)
  st_cg_edges : int;
  st_propagations : int;  (** path-edge propagations of both solvers *)
  st_outcome : Fd_resilience.Outcome.t;
      (** typed termination state; anything but [Complete] means the
          findings are a partial under-approximation *)
  st_metrics : Fd_obs.Metrics.snapshot;
      (** registry snapshot taken when the run finished: the [ifds.*],
          [bidi.*], [cg.*], [frontend.*], [lifecycle.*] and
          [resilience.*] series.  Counters are process-cumulative;
          call {!Fd_obs.Metrics.reset} before the run for per-run
          numbers. *)
}

type result = {
  r_findings : Bidi.finding list;
  r_entries : Mkey.t list;
  r_stats : stats;
  r_engine : Bidi.t;  (** for inspection (per-node taints) *)
  r_icfg : Icfg.t;
  r_diags : Fd_resilience.Diag.t list;
      (** frontend diagnostics (lenient-mode skips); [[]] in strict
          mode *)
  r_icc : Icc.report option;
      (** the ICC resolver's report when the {!Config.t.icc} tier ran
          (its findings are already merged into [r_findings]) *)
}

type phase_hook = string -> unit
(** called with a phase name as the pipeline advances (used by the
    pipeline-trace example) *)

val no_hook : phase_hook

val log_src : Logs.src
(** The [Logs] source the pipeline reports through ([flowdroid]):
    phase progress at debug level, budget exhaustion at warning
    level. *)

val analyze_apk :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  ?mode:Fd_frontend.Apk.mode ->
  ?budget:Fd_resilience.Budget.t ->
  Fd_frontend.Apk.t ->
  result
(** [analyze_apk apk] runs the full pipeline from an APK bundle.
    [mode] selects strict (default) or lenient frontend parsing;
    [budget] overrides the config-derived work/deadline budget.
    @raise Fd_frontend.Apk.Load_error on malformed inputs (strict
    mode). *)

val analyze_loaded :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  ?budget:Fd_resilience.Budget.t ->
  Fd_frontend.Apk.loaded ->
  result
(** [analyze_loaded loaded] analyses an already-loaded APK. *)

val analyze_merged :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  ?budget:Fd_resilience.Budget.t ->
  Fd_frontend.Apk.merged ->
  result
(** [analyze_merged m] analyses several apps sharing one merged Scene
    — the inter-app setting.  With the {!Config.t.icc} tier on, the
    resolver consults the per-app manifests, applies the exported gate
    across app boundaries, and stitches collusion flows. *)

val analyze_pair :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  ?mode:Fd_frontend.Apk.mode ->
  ?budget:Fd_resilience.Budget.t ->
  Fd_frontend.Apk.t ->
  Fd_frontend.Apk.t ->
  result
(** [analyze_pair a b] loads two apps into one merged scene and
    analyses them together — the two-app collusion setting.
    @raise Fd_frontend.Apk.Load_error on clashes (strict mode). *)

val analyze_plain :
  ?config:Config.t ->
  ?synthetic_main:bool ->
  classes:Fd_ir.Jclass.t list ->
  entries:Mkey.t list ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  unit ->
  result
(** [analyze_plain ~classes ~entries ()] analyses a plain (non-Android)
    program with explicitly given entry points and manually supplied
    sources/sinks.  With [~synthetic_main:true], the entry points are
    wrapped in a generated main in which they can run in any sequential
    order (FlowDroid's default entry-point creator) — required when
    flows stage data in static state between entry points. *)

val restrict_findings :
  icfg:Icfg.t -> patterns:string list -> Bidi.finding list -> Bidi.finding list
(** keep the findings whose sink invoke site matches one of the
    [--targeted] patterns — exactly the projection targeted mode
    applies to its own output.  Exported so the verdict-identity gate
    can apply the same projection to a full-mode run before
    comparing. *)

val warm_templates : unit -> unit
(** Force every lazily-built shared template the pipeline clones per
    run — the framework-skeleton scene ({!Fd_frontend.Framework}) and
    the default source/sink, taint-wrapper and native rule sets — so a
    long-lived server (the serve daemon) pays their construction once
    at startup instead of on its first request.  Idempotent. *)

(** {1 Degradation ladder}

    When a run exhausts its budget (propagation cap or wall-clock
    deadline) or crashes, {!analyze_with_fallback} retries it under
    progressively cheaper configurations
    ({!Config.degradation_ladder}) so a hostile app still yields a
    terminating, tagged result — precision is traded for termination
    the way FlowDroid trades it under timeouts. *)

type attempt = {
  at_label : string;  (** ladder rung, e.g. ["full"], ["k=3"] *)
  at_outcome : Fd_resilience.Outcome.t;
  at_findings : int;
  at_time : float;  (** CPU seconds spent on this rung *)
}

type completeness =
  | Precise  (** the first rung completed: full-precision results *)
  | Degraded of string  (** completed at the named cheaper rung *)
  | Partial of string
      (** no rung completed; results are the named rung's partial
          under-approximation *)

type fallback = {
  fb_result : result;
  fb_attempts : attempt list;  (** in execution order *)
  fb_completeness : completeness;
}

exception Fallback_failed of attempt list
(** every ladder rung crashed without producing any result *)

val string_of_completeness : completeness -> string
(** [precise], [degraded(label)] or [partial(label)] *)

val with_fallback :
  config:Config.t -> (label:string -> Config.t -> result) -> fallback
(** [with_fallback ~config run] drives [run] down the degradation
    ladder until a rung completes; crashes are caught by an exception
    barrier and count as failed rungs.
    @raise Fallback_failed when every rung crashed. *)

val analyze_with_fallback :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  ?mode:Fd_frontend.Apk.mode ->
  ?chaos:Fd_resilience.Chaos.t ->
  Fd_frontend.Apk.t ->
  fallback
(** {!analyze_apk} under the ladder.  [chaos] attaches a fault
    harness to each rung's budget (solver-step faults, for the
    resilience tests).
    @raise Fd_frontend.Apk.Load_error on strict-mode frontend
    rejection;
    @raise Fallback_failed when every rung crashed. *)
