(** The analysis driver: Figure 4's pipeline.

    [parse manifest] → [parse layout XMLs] → [parse code] →
    [source/sink/entry-point detection] → [generate dummy main] →
    [build call graph] → [perform taint analysis].

    {!analyze_apk} runs the full Android pipeline; {!analyze_plain}
    analyses ordinary Java-style programs with explicit entry points
    (SecuriBench Micro, the paper's listings — RQ4). *)

open Fd_callgraph

type stats = {
  st_time : float;  (** analysis wall time, seconds *)
  st_reachable : int;  (** reachable methods in the final call graph *)
  st_cg_edges : int;
  st_propagations : int;  (** path-edge propagations of both solvers *)
  st_budget_exhausted : bool;
  st_metrics : Fd_obs.Metrics.snapshot;
      (** registry snapshot taken when the run finished: the [ifds.*],
          [bidi.*], [cg.*], [frontend.*] and [lifecycle.*] series.
          Counters are process-cumulative; call {!Fd_obs.Metrics.reset}
          before the run for per-run numbers. *)
}

type result = {
  r_findings : Bidi.finding list;
  r_entries : Mkey.t list;
  r_stats : stats;
  r_engine : Bidi.t;  (** for inspection (per-node taints) *)
  r_icfg : Icfg.t;
}

type phase_hook = string -> unit
(** called with a phase name as the pipeline advances (used by the
    pipeline-trace example) *)

val no_hook : phase_hook

val log_src : Logs.src
(** The [Logs] source the pipeline reports through ([flowdroid]):
    phase progress at debug level, budget exhaustion at warning
    level. *)

val analyze_apk :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  Fd_frontend.Apk.t ->
  result
(** [analyze_apk apk] runs the full pipeline from an APK bundle.
    @raise Fd_frontend.Apk.Load_error on malformed inputs. *)

val analyze_loaded :
  ?config:Config.t ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  ?phase:phase_hook ->
  Fd_frontend.Apk.loaded ->
  result
(** [analyze_loaded loaded] analyses an already-loaded APK. *)

val analyze_plain :
  ?config:Config.t ->
  ?synthetic_main:bool ->
  classes:Fd_ir.Jclass.t list ->
  entries:Mkey.t list ->
  ?defs:Fd_frontend.Sourcesink.t ->
  ?wrappers:Fd_frontend.Rules.t ->
  ?natives:Fd_frontend.Rules.t ->
  unit ->
  result
(** [analyze_plain ~classes ~entries ()] analyses a plain (non-Android)
    program with explicitly given entry points and manually supplied
    sources/sinks.  With [~synthetic_main:true], the entry points are
    wrapped in a generated main in which they can run in any sequential
    order (FlowDroid's default entry-point creator) — required when
    flows stage data in static state between entry points. *)
