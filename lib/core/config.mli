(** Engine configuration: FlowDroid's defaults plus the ablation
    switches the benchmark harness sweeps (DESIGN.md experiments
    A1–A3, F3, L3). *)

(** The opt-in precision pass suite.  Every field defaults to [false];
    with all flags off the engine's output is bit-identical to the
    faithful Table 1 reproduction (the documented imprecisions are
    preserved). *)
type precision = {
  must_alias : bool;
      (** strong updates via flow-sensitive must-alias analysis *)
  array_index : bool;  (** constant-index array cells as pseudo-fields *)
  reflection : bool;  (** constant-string reflective call edges *)
  clinit : bool;  (** first-use-site [<clinit>] placement *)
}

val no_precision : precision
(** all passes off — the paper-faithful default *)

val all_precision : precision
(** every pass on *)

val precision_enabled : precision -> bool
(** at least one pass on *)

val string_of_precision : precision -> string
(** "none", "all", or the comma-separated enabled passes *)

val precision_of_string : string -> (precision, string) result
(** parse "all"/"none" or a comma-separated subset of
    must-alias, array-index, reflection, clinit *)

type t = {
  max_access_path : int;
      (** maximal access-path length [k]; the paper's default is 5 *)
  lifecycle : bool;
      (** model the component lifecycle via the dummy main; when off,
          each lifecycle/callback method is analysed as an isolated
          entry point (the comparator-tool behaviour) *)
  callbacks : bool;  (** discover and include callbacks *)
  per_component_callbacks : bool;
      (** associate callbacks with their owning component (paper
          default); off = all callbacks attached to every component *)
  context_injection : bool;
      (** inject the forward context into spawned backward searches
          (Figure 3); off = the naive 0-rooted handover *)
  activation_statements : bool;
      (** flow-sensitive alias activation (Listing 3); off = aliases
          are born active, i.e. Andromeda-style flow-insensitivity *)
  alias_search : bool;
      (** run the on-demand backward alias analysis at all *)
  cg_algorithm : Fd_callgraph.Callgraph.algorithm;
  max_propagations : int;
      (** safety valve on solver work (path-edge budget) *)
  deadline_s : float option;
      (** wall-clock deadline for the solve, in seconds; [None] =
          unlimited.  Expiry yields a [Deadline_exceeded] outcome with
          partial results rather than an abort. *)
  precision : precision;
      (** the opt-in precision pass suite; {!no_precision} by
          default *)
  provenance : bool;
      (** record provenance edges and attach witness paths to findings
          ([--explain]); off by default *)
  profile : bool;
      (** attribute solver work to methods in the per-method profiler
          ([--profile-out]) *)
  summary_store : string option;
      (** directory of the persistent cross-app summary store
          ([--summary-store DIR]); [None] (the default) disables the
          store — output is then byte-identical to a build without the
          store compiled in *)
  targeted : string list;
      (** demand-driven targeted mode ([--targeted SIG]): sink
          signature patterns (substring match on ["Class.method"],
          supertypes included).  Non-empty = slice backward from
          matching sinks and only report flows into them; [[]] (the
          default) = full analysis, byte-identical output. *)
  icc : bool;
      (** the ICC link-resolution tier ([--icc]): stitch resolved
          intent sends to their receiving components (IccTA-style) and
          report the exported attack surface; [false] (the default)
          keeps the paper's send = sink / reception = source
          over-approximation with byte-identical output. *)
}

val default : t
(** The configuration the paper evaluates: k = 5, full lifecycle and
    callback modelling, context injection and activation statements
    on, CHA call graphs, no deadline. *)

val degradation_ladder : t -> (string * t) list
(** [(label, config)] rungs for the fallback driver: the original
    config, then [k = 3], [k = 1], and [k = 1] with the alias search
    off — each strictly cheaper than the last (already-cheap bases
    yield shorter ladders). *)
