(** The engine-facing source/sink manager: combines the configured
    source/sink lists with the layout model (a [findViewById] call
    whose id resolves to a password control is a source — the case the
    paper gives for why code-only analysis cannot find all sources).
    Method matching walks the static receiver class and its
    supertypes. *)

open Fd_ir
module SS = Fd_frontend.Sourcesink

type t

val create :
  scene:Scene.t -> defs:SS.t -> layout:Fd_frontend.Layout.t -> t

val create_plain : scene:Scene.t -> defs:SS.t -> t
(** no layout: plain Java programs (SecuriBench, the listings) *)

val defs : t -> SS.t
(** the configured source/sink list (digested into the summary
    store's analysis-config key) *)

val return_source : t -> Stmt.invoke -> SS.category option
(** is the call a return-value source? *)

val ui_source :
  t -> ?body:Body.t -> ?at:int -> Stmt.invoke ->
  Fd_frontend.Layout.control option
(** is the call a [findViewById] whose id — an immediate constant or a
    local with a straight-line constant definition in [body] before
    index [at] — names a password control? *)

val param_source :
  t -> cls:string -> mname:string -> (int list * SS.category) option
(** is a parameter of the callback (declared on [cls] or a supertype)
    a source, e.g. [onLocationChanged]? *)

val sink : t -> Stmt.invoke -> SS.category option

val wrapper_effects :
  Fd_frontend.Rules.t -> t -> Stmt.invoke ->
  Fd_frontend.Rules.effect list option
(** taint-wrapper effects for a call, trying the static class then its
    supertypes *)
