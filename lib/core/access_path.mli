(** Access paths (Section 4.1 of the paper).

    An access path is [x.f.g] where [x] is a local (or a static field
    for globals) and [f], [g] are fields, with a user-customisable
    maximal length (5 by default).  An access path implicitly
    describes all objects reachable through it — matching is prefix
    matching, and truncation at the maximal length only widens the
    abstraction. *)

open Fd_ir

type base =
  | Bloc of Stmt.local  (** rooted at a method-local *)
  | Bstatic of Types.field_sig  (** rooted at a static field *)

type t = {
  base : base;
  fields : Types.field_sig list;  (** outermost access first *)
}

val equal : t -> t -> bool
val equal_base : base -> base -> bool
val compare : t -> t -> int

val hash : t -> int
(** a fold over the base and {e every} field segment — paths that
    differ only deep in the chain hash apart (consistent with
    {!equal}) *)

val to_string : t -> string
(** e.g. ["x.f.g"] or ["<C#f>.g"] for static roots. *)

val pp : Format.formatter -> t -> unit

val of_local : Stmt.local -> t
(** [of_local l] is the length-0 path [l]. *)

val of_field : Stmt.local -> Types.field_sig -> t
(** [of_field l f] is [l.f]. *)

val of_static : Types.field_sig -> t
(** [of_static f] is the static-field root. *)

val length : t -> int
(** [length t] is the number of field accesses. *)

val truncate : k:int -> t -> t
(** [truncate ~k t] drops fields beyond the maximal length [k]; by the
    implicit-suffix semantics this only widens the described set. *)

val append : k:int -> t -> Types.field_sig -> t
(** [append ~k t f] is [t.f], truncated to length [k]. *)

val base_local : t -> Stmt.local option
(** [base_local t] is the base if it is a local. *)

val is_static : t -> bool
(** [is_static t] holds for static-field-rooted paths. *)

val has_prefix : prefix:t -> t -> bool
(** [has_prefix ~prefix t]: does [t] extend (or equal) [prefix]? *)

val covers : taint:t -> t -> bool
(** [covers ~taint t]: a taint on [taint] makes the value at [t]
    tainted (implicit-suffix semantics). *)

val reaches : taint:t -> t -> bool
(** [reaches ~taint t]: tainted data is reachable from the value at
    [t] — true when either is a prefix of the other. *)

val rebase : k:int -> from:t -> to_:t -> t -> t option
(** [rebase ~k ~from ~to_ t] rewrites [t] by replacing its prefix
    [from] with [to_], truncating to [k] — the core operation of every
    assignment flow function.  [None] when [from] is not a prefix of
    [t]. *)

val index_field : int -> Types.field_sig
(** [index_field i] — the [<idx:i>] pseudo-field denoting the [i]-th
    cell of an array under the constant-index precision pass; treated
    like any other field by k-limiting and prefix matching. *)

val is_index_field : Types.field_sig -> bool
(** recognises {!index_field} pseudo-fields (reserved declaring class
    ["<array>"]) *)
