(** Persistent summary support: stable structural encodings of IFDS
    end summaries, content-addressed method digests, and the hook
    interface the {!Bidi} solver uses to reuse summaries across
    processes.

    The engine's facts are hash-consed per process — intern ids are
    dense and depend on discovery order, so they cannot be written to
    disk.  This module re-encodes every equality-relevant component of
    an {!Access_path.t} / {!Taint.fact} structurally (names, types,
    statement coordinates), which makes the encoding stable across
    independent intern pools, processes and machines.

    Addressing is content-based: a summary is valid for any method
    whose {e transitive} body digest matches — the Merkle digest of
    its SCC in the call-graph condensation (own body text, per-site
    resolved callee keys, child-SCC digests).  Analysis semantics are
    captured separately by {!config_digest}.  Together the two digests
    form the store key, so invalidation is automatic: change a body,
    a callee binding, the k-limit or a rule set and the key changes.

    The on-disk backend itself lives in [fd_store] (a separate
    library, so [fd_core] carries no I/O); it registers through
    {!provider}. *)

open Fd_ir
open Fd_callgraph
module Json = Fd_obs.Json
module SS = Fd_frontend.Sourcesink

let format_version = 1

(* ------------------------------------------------------------------ *)
(* Canonical structural encoding                                       *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let jstr = function Json.String s -> s | _ -> fail "expected string"
let jint = function Json.Int i -> i | _ -> fail "expected int"
let jbool = function Json.Bool b -> b | _ -> fail "expected bool"
let jlist = function Json.List l -> l | _ -> fail "expected list"

let jfield k v =
  match Json.member k v with Some x -> x | None -> fail "missing field %s" k

let enc_local (l : Stmt.local) =
  Json.Obj
    [ ("n", String l.Stmt.l_name); ("t", String (Types.string_of_typ l.Stmt.l_type)) ]

let dec_local j =
  Stmt.mk_local ~ty:(Types.typ_of_string (jstr (jfield "t" j))) (jstr (jfield "n" j))

let enc_field (f : Types.field_sig) =
  Json.Obj
    [
      ("c", String f.Types.f_class);
      ("n", String f.Types.f_name);
      ("t", String (Types.string_of_typ f.Types.f_type));
    ]

let dec_field j =
  Types.mk_field
    ~ty:(Types.typ_of_string (jstr (jfield "t" j)))
    (jstr (jfield "c" j))
    (jstr (jfield "n" j))

let enc_base = function
  | Access_path.Bloc l -> Json.Obj [ ("k", String "l"); ("v", enc_local l) ]
  | Access_path.Bstatic f -> Json.Obj [ ("k", String "s"); ("v", enc_field f) ]

let dec_base j =
  match jstr (jfield "k" j) with
  | "l" -> Access_path.Bloc (dec_local (jfield "v" j))
  | "s" -> Access_path.Bstatic (dec_field (jfield "v" j))
  | k -> fail "bad base kind %s" k

let enc_ap (ap : Access_path.t) =
  Json.Obj
    [
      ("b", enc_base ap.Access_path.base);
      ("f", List (List.map enc_field ap.Access_path.fields));
    ]

let dec_ap j =
  {
    Access_path.base = dec_base (jfield "b" j);
    fields = List.map dec_field (jlist (jfield "f" j));
  }

let enc_node (n : Icfg.node) =
  Json.Obj
    [
      ("c", String n.Icfg.n_method.Mkey.mk_class);
      ("m", String n.Icfg.n_method.Mkey.mk_name);
      ("a", Int n.Icfg.n_method.Mkey.mk_arity);
      ("i", Int n.Icfg.n_idx);
    ]

let dec_node j =
  {
    Icfg.n_method =
      {
        Mkey.mk_class = jstr (jfield "c" j);
        mk_name = jstr (jfield "m" j);
        mk_arity = jint (jfield "a" j);
      };
    n_idx = jint (jfield "i" j);
  }

(* A source is either the {e caller's} source carried in by the entry
   fact — position-independent, encoded as the ["entry"] placeholder
   and substituted with the real source at decode — or a source
   statement inside the analysed subtree, encoded structurally. *)
let enc_source ~(entry_source : Taint.source_info option)
    (s : Taint.source_info) =
  match entry_source with
  | Some es when Taint.equal_source es s -> Json.String "entry"
  | _ ->
      Json.Obj
        ([
           ("cat", Json.String (SS.string_of_category s.Taint.si_category));
           ("n", enc_node s.Taint.si_node);
           ("d", String s.Taint.si_desc);
         ]
        @ match s.Taint.si_tag with
          | Some tag -> [ ("tag", Json.String tag) ]
          | None -> [])

let dec_source ~(entry_source : Taint.source_info option) = function
  | Json.String "entry" -> (
      match entry_source with
      | Some es -> es
      | None -> fail "entry source placeholder in a zero-entry context")
  | j ->
      {
        Taint.si_category = SS.category_of_string (jstr (jfield "cat" j));
        si_node = dec_node (jfield "n" j);
        si_tag = Option.map jstr (Json.member "tag" j);
        si_desc = jstr (jfield "d" j);
      }

let enc_fact ~entry_source = function
  | Taint.Zero -> Json.String "0"
  | Taint.T t ->
      Json.Obj
        ([
           ("ap", enc_ap t.Taint.ap);
           ("act", Json.Bool t.Taint.active);
           ("src", enc_source ~entry_source t.Taint.source);
         ]
        @ match t.Taint.activation with
          | Some a -> [ ("an", enc_node a) ]
          | None -> [])

let dec_fact ~entry_source = function
  | Json.String "0" -> Taint.Zero
  | j ->
      Taint.T
        {
          Taint.ap = dec_ap (jfield "ap" j);
          active = jbool (jfield "act" j);
          activation = Option.map dec_node (Json.member "an" j);
          source = dec_source ~entry_source (jfield "src" j);
          pred = None;
          at = None;
          t_memo = 0;
        }

(* ------------------------------------------------------------------ *)
(* Sink reports                                                        *)
(* ------------------------------------------------------------------ *)

(** a leak detected inside a summarised subtree; stored alongside the
    summary edges and replayed on every store hit, so skipping the
    subtree never loses a verdict *)
type sink_report = {
  sr_source : Taint.source_info;
  sr_sink : Icfg.node;
  sr_tag : string option;  (** ground-truth tag of the sink statement *)
  sr_cat : SS.category;  (** sink category *)
}

let report_key r =
  Printf.sprintf "%s|%s|%s|%s"
    (Icfg.string_of_node r.sr_source.Taint.si_node)
    (Option.value r.sr_source.Taint.si_tag ~default:"-")
    (Icfg.string_of_node r.sr_sink)
    (SS.string_of_category r.sr_cat)

let enc_report ~entry_source r =
  Json.Obj
    ([
       ("src", enc_source ~entry_source r.sr_source);
       ("sink", enc_node r.sr_sink);
       ("cat", String (SS.string_of_category r.sr_cat));
     ]
    @ match r.sr_tag with Some t -> [ ("tag", Json.String t) ] | None -> [])

let dec_report ~entry_source j =
  {
    sr_source = dec_source ~entry_source (jfield "src" j);
    sr_sink = dec_node (jfield "sink" j);
    sr_tag = Option.map jstr (Json.member "tag" j);
    sr_cat = SS.category_of_string (jstr (jfield "cat" j));
  }

(* ------------------------------------------------------------------ *)
(* Entry facts and context keys                                        *)
(* ------------------------------------------------------------------ *)

(** [eligible_entry f]: only contexts whose entry fact is the zero
    fact or a plain active taint (no pending activation statement) are
    stored — an inactive entry's activation node lies in the {e
    caller}, outside the summarised subtree, so its summaries are not
    position-independent.  Such contexts simply run cold. *)
let eligible_entry = function
  | Taint.Zero -> true
  | Taint.T t -> t.Taint.active && t.Taint.activation = None

(** [entry_key f] is the canonical context key of an eligible entry
    fact: its structural encoding with the source abstracted to the
    ["entry"] placeholder, so callers with distinct sources but the
    same incoming access path share one stored context. *)
let entry_key = function
  | Taint.Zero -> "0"
  | Taint.T t as f ->
      Json.to_string (enc_fact ~entry_source:(Some t.Taint.source) f)

let entry_source = function
  | Taint.Zero -> None
  | Taint.T t -> Some t.Taint.source

(* ------------------------------------------------------------------ *)
(* Analysis-config digest                                              *)
(* ------------------------------------------------------------------ *)

(** [config_allows config] — store support is restricted to the
    semantics the canonical encoding can replay faithfully:
    - [activation_statements], [context_injection] and [alias_search]
      on (the paper defaults): the ablations change how alias facts
      cross summary boundaries;
    - no [provenance]: witness paths record intra-subtree hops that a
      skipped subtree cannot reproduce;
    - no first-use [<clinit>] placement: clinit exit relays jump to
      first-use sites {e outside} the caller's subtree, breaking the
      containment the store relies on;
    - no ICC tier: the resolver reads per-site [putExtra] taints from
      the solved engine, and a store-skipped subtree has no per-node
      results to read. *)
let config_allows (c : Config.t) =
  c.Config.activation_statements && c.Config.context_injection
  && c.Config.alias_search && (not c.Config.provenance)
  && (not c.Config.precision.Config.clinit)
  && not c.Config.icc

let string_of_algorithm = function Callgraph.Cha -> "cha" | Callgraph.Rta -> "rta"

(** [config_digest ~config ~sources ~wrappers ~natives] keys every
    analysis input that changes what a summary {e means}: the encoding
    format version, the k-limit, the precision passes, the call-graph
    algorithm, the flow-sensitivity switches and the digests of the
    three rule sets.  Budget knobs (deadline, max propagations) are
    excluded — only [Complete] runs persist, and a complete summary's
    content does not depend on how much budget was left. *)
let config_digest ~(config : Config.t) ~sources ~wrappers ~natives =
  let b v = if v then "1" else "0" in
  let parts =
    [
      Printf.sprintf "v%d" format_version;
      Printf.sprintf "k=%d" config.Config.max_access_path;
      "prec=" ^ Config.string_of_precision config.Config.precision;
      "cg=" ^ string_of_algorithm config.Config.cg_algorithm;
      "act=" ^ b config.Config.activation_statements;
      "cxi=" ^ b config.Config.context_injection;
      "alias=" ^ b config.Config.alias_search;
      "srcs=" ^ SS.digest sources;
      "wrap=" ^ Fd_frontend.Rules.digest wrappers;
      "nat=" ^ Fd_frontend.Rules.digest natives;
      (* targeted mode restricts which sinks are even considered, so
         hot entries must never cross between modes (or between
         different targeted sink sets) *)
      "targeted="
      ^ String.concat "," (List.sort_uniq compare config.Config.targeted);
      (* the ICC tier adds/drops findings post-solve; digests must not
         cross between tiers even though the solver is unchanged *)
      "icc=" ^ b config.Config.icc;
    ]
  in
  Digest.to_hex (Digest.string (String.concat ";" parts))

(* ------------------------------------------------------------------ *)
(* Transitive method digests (Merkle over the SCC condensation)        *)
(* ------------------------------------------------------------------ *)

type method_entry = {
  me_digest : string;  (** transitive body digest, MD5 hex *)
  me_eligible : bool;
      (** false when the method's subtree contains a layout-dependent
          UI source ([findViewById]) — those verdicts depend on
          per-app resource files, not on code digests *)
}

(* layout-registry sources resolve through the per-app XML resources;
   two apps with byte-identical code can disagree on them *)
let layout_dependent_call (inv : Stmt.invoke) =
  inv.Stmt.i_sig.Types.m_name = "findViewById"

let digest_methods (icfg : Icfg.t) : method_entry Mkey.Tbl.t =
  let methods = Callgraph.reachable_methods icfg.Icfg.cg in
  let bodies = Mkey.Tbl.create 256 in
  List.iter
    (fun mk ->
      match Icfg.body icfg mk with
      | body -> Mkey.Tbl.replace bodies mk body
      | exception Not_found -> ())
    methods;
  (* per-method local string: own identity, body text, and the
     per-site resolved callee keys (direct, clinit, reflective) —
     bodyless targets are kept in the string with a marker, their
     semantics being covered by the rule-set digests *)
  let site_targets = Mkey.Tbl.create 256 in
  let local_string mk (body : Body.t) =
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Mkey.to_string mk);
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Pretty.body_to_string body);
    let targets = ref [] in
    Array.iteri
      (fun idx _ ->
        let node = { Icfg.n_method = mk; n_idx = idx } in
        let add tag mks =
          List.iter
            (fun t ->
              let marker = if Mkey.Tbl.mem bodies t then "" else "?" in
              targets := (t, Printf.sprintf "%d %s%s%s" idx tag marker (Mkey.to_string t)) :: !targets)
            mks
        in
        add "c:" (Icfg.callees icfg node);
        add "k:" (Icfg.clinit_callees icfg node);
        add "r:" (Icfg.refl_callees icfg node))
      body.Body.stmts;
    Mkey.Tbl.replace site_targets mk
      (List.filter (fun t -> Mkey.Tbl.mem bodies t) (List.map fst !targets));
    List.iter
      (fun line ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf line)
      (List.sort compare (List.map snd !targets));
    Buffer.contents buf
  in
  let locals = Mkey.Tbl.create 256 in
  let ui_dependent = Mkey.Tbl.create 16 in
  Mkey.Tbl.iter
    (fun mk body ->
      Mkey.Tbl.replace locals mk (local_string mk body);
      if
        Array.exists
          (fun s ->
            match Stmt.invoke_of s with
            | Some inv -> layout_dependent_call inv
            | None -> false)
          body.Body.stmts
      then Mkey.Tbl.replace ui_dependent mk ())
    bodies;
  (* iterative Tarjan over the bodied-callee graph; an SCC is popped
     only after every SCC it reaches is finalised, so digests compose
     bottom-up as we go *)
  let index = Mkey.Tbl.create 256 in
  let lowlink = Mkey.Tbl.create 256 in
  let on_stack = Mkey.Tbl.create 256 in
  let stack = ref [] in
  let next_index = ref 0 in
  let scc_digest = Mkey.Tbl.create 256 in
  let scc_eligible = Mkey.Tbl.create 256 in
  let finalize_scc members =
    let member_locals =
      List.sort compare (List.map (fun m -> Mkey.Tbl.find locals m) members)
    in
    let child_digests = ref [] in
    let eligible = ref true in
    List.iter
      (fun m ->
        if Mkey.Tbl.mem ui_dependent m then eligible := false;
        List.iter
          (fun t ->
            if not (List.exists (Mkey.equal t) members) then begin
              (* popped after us ⇒ already finalised *)
              child_digests := Mkey.Tbl.find scc_digest t :: !child_digests;
              if not (Mkey.Tbl.find scc_eligible t) then eligible := false
            end)
          (Mkey.Tbl.find site_targets m))
      members;
    let d =
      Digest.to_hex
        (Digest.string
           (String.concat "\x00" member_locals
           ^ "\x01"
           ^ String.concat "\x00"
               (List.sort_uniq compare !child_digests)))
    in
    List.iter
      (fun m ->
        Mkey.Tbl.replace scc_digest m d;
        Mkey.Tbl.replace scc_eligible m !eligible)
      members
  in
  let strongconnect v =
    (* explicit work stack: frames are (node, remaining callees) *)
    let work = ref [ (v, ref (Mkey.Tbl.find site_targets v)) ] in
    Mkey.Tbl.replace index v !next_index;
    Mkey.Tbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Mkey.Tbl.replace on_stack v ();
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, rest) :: tail -> (
          match !rest with
          | w :: ws ->
              rest := ws;
              if not (Mkey.Tbl.mem index w) then begin
                Mkey.Tbl.replace index w !next_index;
                Mkey.Tbl.replace lowlink w !next_index;
                incr next_index;
                stack := w :: !stack;
                Mkey.Tbl.replace on_stack w ();
                work := (w, ref (Mkey.Tbl.find site_targets w)) :: !work
              end
              else if Mkey.Tbl.mem on_stack w then
                Mkey.Tbl.replace lowlink v
                  (min (Mkey.Tbl.find lowlink v) (Mkey.Tbl.find index w))
          | [] ->
              work := tail;
              (match tail with
              | (parent, _) :: _ ->
                  Mkey.Tbl.replace lowlink parent
                    (min
                       (Mkey.Tbl.find lowlink parent)
                       (Mkey.Tbl.find lowlink v))
              | [] -> ());
              if Mkey.Tbl.find lowlink v = Mkey.Tbl.find index v then begin
                let members = ref [] in
                let continue = ref true in
                while !continue do
                  match !stack with
                  | w :: rest ->
                      stack := rest;
                      Mkey.Tbl.remove on_stack w;
                      members := w :: !members;
                      if Mkey.equal w v then continue := false
                  | [] -> continue := false
                done;
                finalize_scc !members
              end)
    done
  in
  Mkey.Tbl.iter
    (fun mk _ -> if not (Mkey.Tbl.mem index mk) then strongconnect mk)
    bodies;
  let out = Mkey.Tbl.create 256 in
  Mkey.Tbl.iter
    (fun mk _ ->
      Mkey.Tbl.replace out mk
        {
          me_digest =
            Digest.to_hex
              (Digest.string
                 (Mkey.to_string mk ^ "\x00" ^ Mkey.Tbl.find scc_digest mk));
          me_eligible = Mkey.Tbl.find scc_eligible mk;
        })
    bodies;
  out

(* ------------------------------------------------------------------ *)
(* Solver hook interface                                               *)
(* ------------------------------------------------------------------ *)

(** what a store hit injects in place of descending into a callee *)
type injection = {
  inj_summaries : (int * Taint.fact) list;
      (** (exit statement index, decoded exit fact) pairs — the end
          summaries of the stored context *)
  inj_reports : sink_report list;
      (** leaks recorded inside the subtree, sources already
          substituted for this caller *)
}

(** one solved context of a method, as handed to the persistence hook *)
type persist_context = {
  pc_entry : Taint.fact;
  pc_summaries : (int * Taint.fact) list;
  pc_reports : sink_report list;
}

type hooks = {
  h_eligible : Mkey.t -> bool;
      (** digested and transitively layout-independent *)
  h_lookup : callee:Mkey.t -> entry:Taint.fact -> injection option;
      (** [None] = miss: descend as usual *)
  h_persist : callee:Mkey.t -> persist_context list -> unit;
      (** write-behind persistence of freshly solved contexts *)
}

(* ------------------------------------------------------------------ *)
(* Backend provider (implemented by fd_store)                          *)
(* ------------------------------------------------------------------ *)

(** the raw storage interface [fd_core] programs against: payloads are
    whole-method JSON objects [{"m": key, "cxs": {entry-key: ctx}}];
    the backend owns framing, checksums, atomicity and merging *)
type backend = {
  be_load : method_digest:string -> Json.t option;
      (** decoded payload, or [None] on miss {e and} on any corrupt /
          truncated / mismatched entry (backends must degrade, never
          raise) *)
  be_store : method_digest:string -> payload:Json.t -> unit;
      (** atomically merge [payload] into the entry, keeping existing
          contexts on key collisions *)
  be_diag : Fd_resilience.Diag.t -> unit;
      (** report a non-fatal store anomaly *)
}

(** set by [Fd_store.install ()]; [fd_core] itself ships no backend,
    so linking the store library is what turns the flag on *)
let provider : (dir:string -> config_digest:string -> backend option) ref =
  ref (fun ~dir:_ ~config_digest:_ -> None)

(* ------------------------------------------------------------------ *)
(* Hook construction                                                   *)
(* ------------------------------------------------------------------ *)

let dec_context ~entry cx =
  let entry_source = entry_source entry in
  let summaries =
    List.map
      (fun j ->
        match j with
        | Json.List [ idx; f ] -> (jint idx, dec_fact ~entry_source f)
        | _ -> fail "bad summary pair")
      (jlist (jfield "s" cx))
  in
  let reports = List.map (dec_report ~entry_source) (jlist (jfield "r" cx)) in
  { inj_summaries = summaries; inj_reports = reports }

let enc_context pc =
  let entry_source = entry_source pc.pc_entry in
  Json.Obj
    [
      ( "s",
        List
          (List.map
             (fun (idx, f) ->
               Json.List [ Json.Int idx; enc_fact ~entry_source f ])
             pc.pc_summaries) );
      ("r", List (List.map (enc_report ~entry_source) pc.pc_reports));
    ]

(** [make_hooks ~icfg ~config ~sources ~wrappers ~natives] builds the
    solver hooks for one analysis run, or [None] when the store is
    disabled ([summary_store = None]), the configuration is outside
    {!config_allows}, or no backend is linked/installable.  Digesting
    every reachable method happens here, once per app. *)
let make_hooks ~icfg ~(config : Config.t) ~sources ~wrappers ~natives =
  match config.Config.summary_store with
  | None -> None
  | Some _ when not (config_allows config) -> None
  | Some dir -> (
      let cfg_digest = config_digest ~config ~sources ~wrappers ~natives in
      match !provider ~dir ~config_digest:cfg_digest with
      | None -> None
      | Some be ->
          let table = digest_methods icfg in
          let m_hits = Fd_obs.Metrics.counter "store.hits" in
          let m_misses = Fd_obs.Metrics.counter "store.misses" in
          (* per-run cache of decoded payloads, keyed by method digest:
             one disk read per method, not per context *)
          let loaded : (string, (string * Json.t) list option) Hashtbl.t =
            Hashtbl.create 64
          in
          let payload_contexts digest =
            match Hashtbl.find_opt loaded digest with
            | Some cxs -> cxs
            | None ->
                let cxs =
                  match be.be_load ~method_digest:digest with
                  | None -> None
                  | Some payload -> (
                      match Json.member "cxs" payload with
                      | Some (Json.Obj kvs) -> Some kvs
                      | _ ->
                          be.be_diag
                            (Fd_resilience.Diag.make ~file:"summary-store"
                               (Printf.sprintf
                                  "malformed payload for %s: no contexts \
                                   object"
                                  digest));
                          None)
                in
                Hashtbl.replace loaded digest cxs;
                cxs
          in
          let h_eligible mk =
            match Mkey.Tbl.find_opt table mk with
            | Some me -> me.me_eligible
            | None -> false
          in
          let h_lookup ~callee ~entry =
            match Mkey.Tbl.find_opt table callee with
            | Some me when me.me_eligible && eligible_entry entry -> (
                match payload_contexts me.me_digest with
                | None ->
                    Fd_obs.Metrics.incr m_misses;
                    None
                | Some cxs -> (
                    match List.assoc_opt (entry_key entry) cxs with
                    | None ->
                        Fd_obs.Metrics.incr m_misses;
                        None
                    | Some cx -> (
                        match dec_context ~entry cx with
                        | inj ->
                            Fd_obs.Metrics.incr m_hits;
                            Some inj
                        | exception Decode_error msg ->
                            be.be_diag
                              (Fd_resilience.Diag.make ~file:"summary-store"
                                 (Printf.sprintf
                                    "undecodable context for %s (%s): \
                                     treated as a miss"
                                    (Mkey.to_string callee) msg));
                            Fd_obs.Metrics.incr m_misses;
                            None)))
            | _ -> None
          in
          let h_persist ~callee cxs =
            match Mkey.Tbl.find_opt table callee with
            | Some me when me.me_eligible && cxs <> [] ->
                let payload =
                  Json.Obj
                    [
                      ("m", String (Mkey.to_string callee));
                      ( "cxs",
                        Obj
                          (List.map
                             (fun pc -> (entry_key pc.pc_entry, enc_context pc))
                             cxs) );
                    ]
                in
                be.be_store ~method_digest:me.me_digest ~payload
            | _ -> ()
          in
          Some { h_eligible; h_lookup; h_persist })
