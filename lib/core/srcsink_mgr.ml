(** The engine-facing source/sink manager.

    Combines the configured source/sink lists ({!Fd_frontend.Sourcesink})
    with the layout model: a [findViewById] call whose constant
    argument resolves to a password control is a source — exactly the
    case the paper gives for why code-only analysis cannot find all
    sources.  Method matching walks the static receiver class and its
    supertypes so a list entry on [android.content.Context] also
    covers calls through [ContextWrapper] subclasses. *)

open Fd_ir
module SS = Fd_frontend.Sourcesink

type t = {
  scene : Scene.t;
  defs : SS.t;
  layout : Fd_frontend.Layout.t;
}

let create ~scene ~defs ~layout = { scene; defs; layout }

(** [defs t] is the configured source/sink list (the summary store
    digests it into the analysis-config key). *)
let defs t = t.defs

(** [create_plain ~scene ~defs] is a manager with no layout (plain
    Java programs: SecuriBench, the paper's listings). *)
let create_plain ~scene ~defs =
  { scene; defs; layout = Fd_frontend.Layout.parse [] }

let rec first_some f = function
  | [] -> None
  | x :: xs -> ( match f x with Some r -> Some r | None -> first_some f xs)

let with_supertypes t cls f =
  match f cls with
  | Some r -> Some r
  | None -> first_some f (Scene.supertypes t.scene cls)

(** [return_source t inv] classifies a call as a return-value source. *)
let return_source t (inv : Stmt.invoke) =
  let mname = inv.Stmt.i_sig.Types.m_name in
  with_supertypes t inv.Stmt.i_sig.Types.m_class (fun cls ->
      SS.is_return_source t.defs ~cls ~mname)

(* resolve an int argument to a constant: either an immediate constant
   or a local whose unique dominating definition in the same body is a
   constant assignment (the straight-line constant propagation Jimple
   performs before FlowDroid sees the code) *)
let resolve_const_int body_opt at_idx (arg : Stmt.imm) =
  match arg with
  | Stmt.Iconst (Stmt.CInt id) -> Some id
  | Stmt.Iloc l -> (
      match body_opt with
      | None -> None
      | Some body ->
          (* scan backwards from the call: the nearest definition of
             [l] wins; anything but a constant store blocks *)
          let rec scan i =
            if i < 0 then None
            else
              let st = Fd_ir.Body.stmt body i in
              match st.Stmt.s_kind with
              | Stmt.Assign (Stmt.Llocal x, Stmt.Eimm (Stmt.Iconst (Stmt.CInt v)))
                when Stmt.equal_local x l ->
                  Some v
              | _ when Stmt.def_local st = Some l -> None
              | _ -> scan (i - 1)
          in
          scan (at_idx - 1))
  | Stmt.Iconst _ -> None

(** [ui_source t ?body ?at inv] classifies a [findViewById] call whose
    id resolves to a sensitive (password) layout control.  The id may
    be an immediate constant or a local defined by a straight-line
    constant assignment in [body] before index [at].  Returns the
    control when sensitive. *)
let ui_source t ?body ?(at = 0) (inv : Stmt.invoke) =
  if inv.Stmt.i_sig.Types.m_name <> "findViewById" then None
  else
    match inv.Stmt.i_args with
    | [ arg ] -> (
        match resolve_const_int body at arg with
        | Some id -> (
            match Fd_frontend.Layout.control_by_id t.layout id with
            | Some c when c.Fd_frontend.Layout.ctl_password -> Some c
            | _ -> None)
        | None -> None)
    | _ -> None

(** [param_source t ~cls ~mname] — is parameter [i] of the callback
    [mname], declared on [cls] or any supertype, a source (e.g.
    [onLocationChanged])? *)
let param_source t ~cls ~mname =
  with_supertypes t cls (fun cls -> SS.param_source t.defs ~cls ~mname)

(** [sink t inv] classifies a call as a sink. *)
let sink t (inv : Stmt.invoke) =
  let mname = inv.Stmt.i_sig.Types.m_name in
  with_supertypes t inv.Stmt.i_sig.Types.m_class (fun cls ->
      SS.is_sink t.defs ~cls ~mname)

(** [wrapper_effects rules t inv] finds taint-wrapper effects for a
    call, trying the static class then its supertypes. *)
let wrapper_effects rules t (inv : Stmt.invoke) =
  let mname = inv.Stmt.i_sig.Types.m_name in
  with_supertypes t inv.Stmt.i_sig.Types.m_class (fun cls ->
      Fd_frontend.Rules.lookup rules ~cls ~mname)
