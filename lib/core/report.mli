(** Result reporting: FlowDroid-style XML output and text summaries.

    Reports "include full path information" (Section 5): each result
    carries the sink, the source, and the reconstructed chain of
    propagation statements, in the XML shape FlowDroid's result files
    use ([DataFlowResults]/[Results]/[Result]/[Sink]+[Sources]). *)

val finding_to_xml : Bidi.finding -> Fd_xml.Xml.t

val termination_state : Fd_resilience.Outcome.t -> string
(** the FlowDroid-style [TerminationState] attribute value:
    [Success], [DataFlowIncomplete], [DataFlowTimeout], [Cancelled]
    or [Crashed] *)

val to_xml : ?completeness:string -> Infoflow.result -> Fd_xml.Xml.t
(** [to_xml ?completeness result] serialises the result; the root
    element carries a [TerminationState] attribute from the run's
    outcome, plus a [Completeness] attribute when the degradation
    ladder supplied one. *)

val to_xml_string : ?completeness:string -> Infoflow.result -> string
(** the rendered document, with XML declaration; parses back with
    {!Fd_xml.Xml.parse_string} *)

val fallback_to_xml_string : Infoflow.fallback -> string
(** a ladder run's winning result, stamped with its completeness
    marker *)

val summary : Infoflow.result -> string
(** one-line digest: flow count by sink category, time, reachable
    methods, propagations *)

val outcome_line : Infoflow.result -> string
(** [outcome: <state>] — the one-line summary the CLI prints for
    incomplete runs *)

val fallback_summary : Infoflow.fallback -> string
(** one-line digest of a ladder run: completeness, per-rung outcomes,
    final flow count *)

val witness_lines : Bidi.finding -> string list
(** a finding's provenance witness rendered for the CLI's
    [--explain] output, one indented line per derivation step; [[]]
    when the finding carries no witness *)

val witnesses_json : Bidi.finding list -> Fd_obs.Json.t
(** the [witnesses] array for [--stats-json]: per witnessed finding,
    the source/sink endpoints (statement ids and tags) and the full
    step list ([node]/[stmt]/[fact]/[kind] per step) *)
