(** Taint abstractions: the data-flow facts of both IFDS solvers.

    A taint is an access path plus the flow-sensitivity machinery of
    Section 4.2: aliases discovered by the backward analysis are
    {e inactive} and carry their {e activation statement} — the heap
    write that made the alias tainted; only after the forward analysis
    propagates them across that statement (or a call that transitively
    executes it) do they activate and become able to cause leak
    reports.

    Predecessor/derivation links support full path reconstruction and
    are excluded from equality and hashing, exactly as in FlowDroid. *)

open Fd_callgraph

type source_info = {
  si_category : Fd_frontend.Sourcesink.category;
  si_node : Icfg.node;  (** the statement that produced the source value *)
  si_tag : string option;  (** ground-truth tag of the source statement *)
  si_desc : string;  (** human-readable description *)
}

val equal_source : source_info -> source_info -> bool

type t = {
  ap : Access_path.t;
  active : bool;
  activation : Icfg.node option;
      (** the heap-write statement that activates this alias; [None]
          for taints created directly at sources *)
  source : source_info;
  pred : t option;  (** derivation link (excluded from equality) *)
  at : Icfg.node option;  (** statement where this abstraction arose *)
  mutable t_memo : int;
      (** cached {!hash_taint}; construct taints only through the
          functions below so the cache is reset on every copy *)
}

type fact = Zero | T of t

val equal_taint : t -> t -> bool
val equal : fact -> fact -> bool

val hash_taint : t -> int
(** a memoised fold over every equality-relevant component, access
    path in full (consistent with {!equal_taint}) *)

val hash : fact -> int

val make :
  ap:Access_path.t -> source:source_info -> at:Icfg.node -> unit -> t
(** [make ~ap ~source ~at ()] is a fresh, active source taint. *)

val derive : t -> ap:Access_path.t -> at:Icfg.node -> t
(** [derive t ~ap ~at] rebases [t] onto a new access path, keeping
    activation state and source, recording the derivation. *)

val inactive_alias :
  t -> ap:Access_path.t -> activation:Icfg.node -> at:Icfg.node -> t
(** [inactive_alias t ~ap ~activation ~at] is the abstraction the
    backward analysis propagates: same source, new path, inactive. *)

val active_alias : t -> ap:Access_path.t -> at:Icfg.node -> t
(** [active_alias t ~ap ~at] is the ablation variant of
    {!inactive_alias}: born active, no activation statement. *)

val activate : t -> at:Icfg.node -> t
(** [activate t ~at] turns an inactive alias into a reportable taint
    (it crossed its activation statement). *)

val to_string : t -> string
val fact_to_string : fact -> string

val path : t -> Icfg.node list
(** [path t] reconstructs the statement trail from the source to this
    abstraction, oldest first. *)
