(** The bidirectional taint solver: Algorithms 1 and 2 of the paper.

    Two IFDS-style worklist solvers run interleaved over the same
    inter-procedural CFG:

    - the {b forward} solver propagates taint abstractions along
      control flow, with the standard IFDS machinery (path edges, end
      summaries, incoming sets per Naeem–Lhoták);
    - the {b backward} solver is spawned on demand whenever a tainted
      value is assigned to a heap location; it searches *upwards* for
      aliases of the written access path.

    The handover implements the two precision mechanisms Section 4.2
    claims as novel:

    + {b context injection}: a spawned backward edge inherits the
      forward path edge's context [⟨sp, d1⟩] (and vice versa), so the
      combined analysis never produces facts along unrealizable paths
      with conflicting contexts (Figure 3).  The backward analysis
      never returns into callers on its own — when it reaches a
      method's first statement it hands the fact to the forward
      solver, injecting its incoming information so the forward pass
      returns only into the right callers.
    + {b activation statements}: every alias is born *inactive*,
      tagged with the heap-write statement that will make it tainted;
      only once the forward analysis carries it across that statement
      (or across a call that transitively contains it, tracked by the
      global activation-site association) does it activate and become
      able to trigger leak reports (Listing 3).

    Both mechanisms can be disabled through {!Config.t} to reproduce
    the naive handover and the Andromeda-style flow-insensitive
    behaviour in the ablation benchmarks. *)

open Fd_ir
open Fd_callgraph
module AP = Access_path
module SS = Fd_frontend.Sourcesink

(* solver metrics (namespaces: ifds.* for the shared tabulation
   machinery — the same counters the generic [Fd_ifds] solver uses —
   and bidi.* for the bidirectional-specific mechanisms); handles are
   resolved once so hot-path updates are single field increments *)
module M = Fd_obs.Metrics

let m_path_edges = M.counter "ifds.path_edges"
let m_worklist_pushes = M.counter "ifds.worklist_pushes"
let m_worklist_pops = M.counter "ifds.worklist_pops"
let m_summaries = M.counter "ifds.summaries_installed"
let m_summary_apps = M.counter "ifds.summary_applications"
let m_flow_normal = M.counter "ifds.flow.normal"
let m_flow_call = M.counter "ifds.flow.call"
let m_flow_return = M.counter "ifds.flow.return"
let m_flow_c2r = M.counter "ifds.flow.call_to_return"
let m_fw_props = M.counter "bidi.fw_propagations"
let m_bw_props = M.counter "bidi.bw_propagations"
let m_alias_queries = M.counter "bidi.alias_queries"
let m_fw_injections = M.counter "bidi.fw_injections"
let m_bw_steps = M.counter "bidi.backward_steps"
let m_activations = M.counter "bidi.activations"
let m_findings = M.counter "core.findings"

type finding = {
  f_source : Taint.source_info;
  f_sink_node : Icfg.node;
  f_sink_tag : string option;
  f_sink_cat : SS.category;
  f_path : Icfg.node list;
}

type ctx = { cx_proc : Mkey.t; cx_fact : Taint.fact }

let equal_ctx a b =
  Mkey.equal a.cx_proc b.cx_proc && Taint.equal a.cx_fact b.cx_fact

let hash_ctx a = Hashtbl.hash (Mkey.hash a.cx_proc, Taint.hash a.cx_fact)

module Edge_tbl = Hashtbl.Make (struct
  type t = ctx * Icfg.node * Taint.fact

  let equal (c1, n1, f1) (c2, n2, f2) =
    equal_ctx c1 c2 && Icfg.equal_node n1 n2 && Taint.equal f1 f2

  let hash (c, n, f) = Hashtbl.hash (hash_ctx c, Icfg.hash_node n, Taint.hash f)
end)

module Ctx_tbl = Hashtbl.Make (struct
  type t = ctx

  let equal = equal_ctx
  let hash = hash_ctx
end)

module Node_tbl = Icfg.Node_tbl

type solver = {
  s_edges : unit Edge_tbl.t;
  s_summaries : (Icfg.node * Taint.fact) list ref Ctx_tbl.t;
      (** (proc entry context) -> exit facts *)
  s_incoming : (Icfg.node * ctx) list ref Ctx_tbl.t;
      (** (callee entry context) -> call sites with caller contexts *)
  s_work : (ctx * Icfg.node * Taint.fact) Queue.t;
}

let mk_solver () =
  {
    s_edges = Edge_tbl.create 4096;
    s_summaries = Ctx_tbl.create 256;
    s_incoming = Ctx_tbl.create 256;
    s_work = Queue.create ();
  }

type t = {
  cfg : Config.t;
  icfg : Icfg.t;
  scene : Scene.t;
  mgr : Srcsink_mgr.t;
  wrappers : Fd_frontend.Rules.t;
  natives : Fd_frontend.Rules.t;
  fw : solver;
  bw : solver;
  mutable findings : finding list;
  finding_keys : (string, unit) Hashtbl.t;
  (* activation statement -> call sites whose completion implies the
     activation has executed, and the methods those call sites live in *)
  act_sites : unit Node_tbl.t Node_tbl.t;
  act_methods : unit Mkey.Tbl.t Node_tbl.t;
  (* forward results per node, for inspection and tests *)
  results : Taint.t list ref Node_tbl.t;
  budget : Fd_resilience.Budget.t;
}

let create ?budget ~config ~icfg ~scene ~mgr ~wrappers ~natives () =
  let budget =
    match budget with
    | Some b -> b
    | None ->
        Fd_resilience.Budget.create ?deadline_s:config.Config.deadline_s
          ~max_propagations:config.Config.max_propagations ()
  in
  {
    cfg = config;
    icfg;
    scene;
    mgr;
    wrappers;
    natives;
    fw = mk_solver ();
    bw = mk_solver ();
    findings = [];
    finding_keys = Hashtbl.create 64;
    act_sites = Node_tbl.create 16;
    act_methods = Node_tbl.create 16;
    results = Node_tbl.create 1024;
    budget;
  }

let k t = t.cfg.Config.max_access_path

(* ---------------- propagation ---------------- *)

let record_result t n fact =
  match fact with
  | Taint.Zero -> ()
  | Taint.T taint ->
      let cell =
        match Node_tbl.find_opt t.results n with
        | Some c -> c
        | None ->
            let c = ref [] in
            Node_tbl.replace t.results n c;
            c
      in
      if not (List.exists (Taint.equal_taint taint) !cell) then
        cell := taint :: !cell

let propagate t solver cx n fact =
  let key = (cx, n, fact) in
  if not (Edge_tbl.mem solver.s_edges key) then begin
    if Fd_resilience.Budget.tick t.budget then begin
      M.incr m_path_edges;
      M.incr m_worklist_pushes;
      if solver == t.fw then begin
        M.incr m_fw_props;
        record_result t n fact
      end
      else M.incr m_bw_props;
      Edge_tbl.replace solver.s_edges key ();
      Queue.add key solver.s_work
    end
  end

let propagate_fw t cx n fact = propagate t t.fw cx n fact
let propagate_bw t cx n fact = propagate t t.bw cx n fact

let add_incoming solver cx_callee entry =
  let cell =
    match Ctx_tbl.find_opt solver.s_incoming cx_callee with
    | Some c -> c
    | None ->
        let c = ref [] in
        Ctx_tbl.replace solver.s_incoming cx_callee c;
        c
  in
  if
    not
      (List.exists
         (fun (n, cx) ->
           Icfg.equal_node n (fst entry) && equal_ctx cx (snd entry))
         !cell)
  then cell := entry :: !cell

let incoming_of solver cx_callee =
  match Ctx_tbl.find_opt solver.s_incoming cx_callee with
  | Some c -> !c
  | None -> []

let add_summary solver cx_callee exit_pair =
  let cell =
    match Ctx_tbl.find_opt solver.s_summaries cx_callee with
    | Some c -> c
    | None ->
        let c = ref [] in
        Ctx_tbl.replace solver.s_summaries cx_callee c;
        c
  in
  if
    List.exists
      (fun (n, f) ->
        Icfg.equal_node n (fst exit_pair) && Taint.equal f (snd exit_pair))
      !cell
  then false
  else begin
    cell := exit_pair :: !cell;
    M.incr m_summaries;
    true
  end

let summaries_of solver cx_callee =
  match Ctx_tbl.find_opt solver.s_summaries cx_callee with
  | Some c -> !c
  | None -> []

(* ---------------- findings ---------------- *)

let report t ~(source : Taint.source_info) ~sink_node ~sink_tag ~sink_cat
    ~taint =
  let key =
    Printf.sprintf "%s|%s|%s"
      (Icfg.string_of_node source.Taint.si_node)
      (Option.value source.Taint.si_tag ~default:"")
      (Icfg.string_of_node sink_node)
  in
  if not (Hashtbl.mem t.finding_keys key) then begin
    Hashtbl.replace t.finding_keys key ();
    M.incr m_findings;
    t.findings <-
      {
        f_source = source;
        f_sink_node = sink_node;
        f_sink_tag = sink_tag;
        f_sink_cat = sink_cat;
        f_path = Taint.path taint @ [ sink_node ];
      }
      :: t.findings
  end

(* ---------------- activation machinery ---------------- *)

let node_set_add tbl key node =
  let set =
    match Node_tbl.find_opt tbl key with
    | Some s -> s
    | None ->
        let s = Node_tbl.create 4 in
        Node_tbl.replace tbl key s;
        s
  in
  Node_tbl.replace set node ()

let mkey_set_add tbl key mk =
  let set =
    match Node_tbl.find_opt tbl key with
    | Some s -> s
    | None ->
        let s = Mkey.Tbl.create 4 in
        Node_tbl.replace tbl key s;
        s
  in
  Mkey.Tbl.replace set mk ()

let is_act_site t ~activation n =
  match Node_tbl.find_opt t.act_sites activation with
  | Some s -> Node_tbl.mem s n
  | None -> false

let act_method_implies t ~activation mk =
  Mkey.equal activation.Icfg.n_method mk
  ||
  match Node_tbl.find_opt t.act_methods activation with
  | Some s -> Mkey.Tbl.mem s mk
  | None -> false

(* activate an outgoing taint when it crosses its activation node or a
   call site associated with it *)
let maybe_activate t n (taint : Taint.t) =
  if taint.Taint.active then taint
  else
    match taint.Taint.activation with
    | Some a when Icfg.equal_node a n || is_act_site t ~activation:a n ->
        M.incr m_activations;
        Taint.activate taint ~at:n
    | _ -> taint

(* ---------------- access-path helpers ---------------- *)

let ap_of_lvalue lv : AP.t =
  match lv with
  | Stmt.Llocal x -> AP.of_local x
  | Stmt.Lfield (x, f) -> AP.of_field x f
  | Stmt.Lstatic f -> AP.of_static f
  | Stmt.Larray (x, _) -> AP.of_local x (* whole-array abstraction *)

(* access paths readable from an expression, for taint matching: a
   taint whose path extends one of these flows into the assignment *)
let aps_of_expr (e : Stmt.expr) : AP.t list =
  match e with
  | Stmt.Eimm (Stmt.Iloc y) -> [ AP.of_local y ]
  | Stmt.Eimm (Stmt.Iconst _) -> []
  | Stmt.Efield (y, f) -> [ AP.of_field y f ]
  | Stmt.Estatic f -> [ AP.of_static f ]
  | Stmt.Earray (y, _) -> [ AP.of_local y ]
  | Stmt.Ebinop (_, a, b) ->
      List.filter_map
        (function Stmt.Iloc y -> Some (AP.of_local y) | Stmt.Iconst _ -> None)
        [ a; b ]
  | Stmt.Eunop (_, a) | Stmt.Ecast (_, a) | Stmt.Einstanceof (a, _) ->
      List.filter_map
        (function Stmt.Iloc y -> Some (AP.of_local y) | Stmt.Iconst _ -> None)
        [ a ]
  | Stmt.Elength y -> [ AP.of_local y ]
  | Stmt.Enew _ | Stmt.Enewarray _ | Stmt.Einvoke _ -> []

(* a single-valued alias-preserving view of the rhs, used by the
   backward analysis: only expressions that denote a heap location or
   a copy can be rewritten through *)
let alias_ap_of_expr (e : Stmt.expr) : AP.t option =
  match e with
  | Stmt.Eimm (Stmt.Iloc y) -> Some (AP.of_local y)
  | Stmt.Ecast (_, Stmt.Iloc y) -> Some (AP.of_local y)
  | Stmt.Efield (y, f) -> Some (AP.of_field y f)
  | Stmt.Estatic f -> Some (AP.of_static f)
  | Stmt.Earray (y, _) -> Some (AP.of_local y)
  | _ -> None

(* ---------------- backward spawning (Algorithm 1, line 16) -------- *)

(* spawn an alias search for the heap access path [ap] written at node
   [n], under the forward context [cx] (context injection) *)
let spawn_alias_search t cx n (origin : Taint.t) ap =
  if t.cfg.Config.alias_search && not (AP.is_static ap) then begin
    M.incr m_alias_queries;
    let cx =
      if t.cfg.Config.context_injection then cx
      else { cx_proc = n.Icfg.n_method; cx_fact = Taint.Zero }
    in
    let alias =
      if t.cfg.Config.activation_statements then
        Taint.inactive_alias origin ~ap ~activation:n ~at:n
      else
        (* ablation: aliases are born active (flow-insensitive
           Andromeda-style behaviour) *)
        { origin with Taint.ap; Taint.active = true; Taint.activation = None;
          Taint.pred = Some origin; Taint.at = Some n }
    in
    propagate_bw t cx n (Taint.T alias)
  end

(* ---------------- forward flow functions ---------------- *)

(* taints generated across an assignment for an incoming taint *)
let assign_gen t n lv e (taint : Taint.t) =
  let lap = ap_of_lvalue lv in
  let gen_from src_ap =
    match AP.rebase ~k:(k t) ~from:src_ap ~to_:lap taint.Taint.ap with
    | Some ap -> [ Taint.derive taint ~ap ~at:n ]
    | None -> (
        (* a tainted value reachable *below* the read path also flows:
           reading x.f when x is tainted yields a tainted value *)
        match e with
        | Stmt.Ebinop _ | Stmt.Elength _ ->
            (* operators collapse to a whole-value taint *)
            if AP.has_prefix ~prefix:taint.Taint.ap src_ap then
              [ Taint.derive taint ~ap:lap ~at:n ]
            else []
        | _ ->
            if AP.has_prefix ~prefix:taint.Taint.ap src_ap then
              [ Taint.derive taint ~ap:lap ~at:n ]
            else [])
  in
  List.concat_map gen_from (aps_of_expr e)

(* forward flow across a non-call statement; returns outgoing facts
   and performs alias-search side effects *)
let normal_flow t cx n (fact : Taint.fact) : Taint.fact list =
  M.incr m_flow_normal;
  let stmt = Icfg.stmt t.icfg n in
  match fact with
  | Taint.Zero -> (
      (* source generation at parameter identities (callback parameter
         sources such as onLocationChanged) *)
      match stmt.Stmt.s_kind with
      | Stmt.Identity (l, Stmt.Iparam i) -> (
          let cls = n.Icfg.n_method.Mkey.mk_class in
          let mname = n.Icfg.n_method.Mkey.mk_name in
          match Srcsink_mgr.param_source t.mgr ~cls ~mname with
          | Some (params, cat) when List.mem i params ->
              let source =
                Taint.
                  {
                    si_category = cat;
                    si_node = n;
                    si_tag = stmt.Stmt.s_tag;
                    si_desc = Printf.sprintf "parameter %d of %s.%s" i cls mname;
                  }
              in
              [ Taint.Zero;
                Taint.T (Taint.make ~ap:(AP.of_local l) ~source ~at:n ()) ]
          | _ -> [ Taint.Zero ])
      | _ -> [ Taint.Zero ])
  | Taint.T taint -> (
      let taint = maybe_activate t n taint in
      match stmt.Stmt.s_kind with
      | Stmt.Assign (lv, e) ->
          let killed =
            (* strong update on locals only: x = ... kills taints
               rooted at x (heap locations are never strongly
               updated) *)
            match lv with
            | Stmt.Llocal x -> (
                match taint.Taint.ap.AP.base with
                | AP.Bloc b -> Stmt.equal_local b x
                | AP.Bstatic _ -> false)
            | _ -> false
          in
          let gens = assign_gen t n lv e taint in
          (* alias search for every taint newly written to the heap *)
          List.iter
            (fun (g : Taint.t) ->
              match lv with
              | Stmt.Lfield _ | Stmt.Larray _ ->
                  spawn_alias_search t cx n g g.Taint.ap
              | Stmt.Llocal _ | Stmt.Lstatic _ -> ())
            gens;
          let survivors = if killed then [] else [ Taint.T taint ] in
          survivors @ List.map (fun g -> Taint.T g) gens
      | Stmt.Identity (l, _) ->
          (* identity statements bind parameters; call_flow already
             rebased taints onto the parameter locals, so facts pass
             through (nothing can be rooted at [l] before its
             definition) *)
          ignore l;
          [ Taint.T taint ]
      | Stmt.If _ | Stmt.Goto _ | Stmt.Nop | Stmt.Return _ | Stmt.Throw _ ->
          [ Taint.T taint ]
      | Stmt.InvokeStmt _ -> [ Taint.T taint ])

(* map caller facts into a callee (argument passing) *)
let call_flow t n (inv : Stmt.invoke) callee (fact : Taint.fact) :
    Taint.fact list =
  M.incr m_flow_call;
  match fact with
  | Taint.Zero -> [ Taint.Zero ]
  | Taint.T taint -> (
      (* no activation here: an activation associated with this call
         site fires only once the call has *completed*, i.e. on the
         call-to-return edge, not on entry into the callee *)
      match Callgraph.body_of (t.icfg.Icfg.cg) callee with
      | exception Not_found -> []
      | body ->
          let this_l, params = Body.param_locals body in
          let mapped = ref [] in
          (* static-rooted taints flow into callees unchanged *)
          if AP.is_static taint.Taint.ap then
            mapped := Taint.T taint :: !mapped;
          (* receiver -> @this *)
          (match (inv.Stmt.i_recv, this_l) with
          | Some r, Some tl -> (
              match
                AP.rebase ~k:(k t) ~from:(AP.of_local r)
                  ~to_:(AP.of_local tl) taint.Taint.ap
              with
              | Some ap -> mapped := Taint.T (Taint.derive taint ~ap ~at:n) :: !mapped
              | None -> ())
          | _ -> ());
          (* actuals -> formals *)
          List.iteri
            (fun i arg ->
              match arg with
              | Stmt.Iloc a -> (
                  match List.assoc_opt i params with
                  | Some p -> (
                      match
                        AP.rebase ~k:(k t) ~from:(AP.of_local a)
                          ~to_:(AP.of_local p) taint.Taint.ap
                      with
                      | Some ap ->
                          mapped :=
                            Taint.T (Taint.derive taint ~ap ~at:n) :: !mapped
                      | None -> ())
                  | None -> ())
              | Stmt.Iconst _ -> ())
            inv.Stmt.i_args;
          !mapped)

(* map callee exit facts back to the caller *)
let return_flow t ~call:c ~callee ~exit_node (inv : Stmt.invoke)
    (fact : Taint.fact) : Taint.fact list =
  M.incr m_flow_return;
  match fact with
  | Taint.Zero -> []
  | Taint.T taint -> (
      match Callgraph.body_of (t.icfg.Icfg.cg) callee with
      | exception Not_found -> []
      | body ->
          (* activation association: if this taint's activation lies in
             the callee (transitively), completing this call implies the
             activation executed (Section 4.2) *)
          (match taint.Taint.activation with
          | Some a when act_method_implies t ~activation:a callee ->
              node_set_add t.act_sites a c;
              mkey_set_add t.act_methods a c.Icfg.n_method
          | _ -> ());
          let this_l, params = Body.param_locals body in
          let out = ref [] in
          let add taint' =
            out := taint' :: !out;
            (* a heap taint arriving in the caller may have caller-side
               aliases: spawn a new search at the call site *)
            if
              (not (AP.is_static taint'.Taint.ap))
              && AP.length taint'.Taint.ap > 0
            then ()
          in
          if AP.is_static taint.Taint.ap then
            add (Taint.derive taint ~ap:taint.Taint.ap ~at:c);
          (* @this -> receiver: only heap mutations travel back *)
          (match (inv.Stmt.i_recv, this_l) with
          | Some r, Some tl when AP.length taint.Taint.ap > 0 -> (
              match
                AP.rebase ~k:(k t) ~from:(AP.of_local tl)
                  ~to_:(AP.of_local r) taint.Taint.ap
              with
              | Some ap -> add (Taint.derive taint ~ap ~at:c)
              | None -> ())
          | _ -> ());
          (* formals -> actuals: only field-bearing paths (a callee
             cannot reassign the caller's local itself) *)
          List.iteri
            (fun i arg ->
              match (arg, List.assoc_opt i params) with
              | Stmt.Iloc a, Some p when AP.length taint.Taint.ap > 0 -> (
                  match
                    AP.rebase ~k:(k t) ~from:(AP.of_local p)
                      ~to_:(AP.of_local a) taint.Taint.ap
                  with
                  | Some ap -> add (Taint.derive taint ~ap ~at:c)
                  | None -> ())
              | _ -> ())
            inv.Stmt.i_args;
          (* return value *)
          (match ((Icfg.stmt t.icfg exit_node).Stmt.s_kind,
                  (Icfg.stmt t.icfg c).Stmt.s_kind) with
          | Stmt.Return (Some (Stmt.Iloc rl)), Stmt.Assign (Stmt.Llocal x, _)
            -> (
              match
                AP.rebase ~k:(k t) ~from:(AP.of_local rl)
                  ~to_:(AP.of_local x) taint.Taint.ap
              with
              | Some ap -> add (Taint.derive taint ~ap ~at:c)
              | None -> ())
          | _ -> ());
          List.map (fun tt -> Taint.T tt) !out)

(* sink detection at a call site *)
let check_sink t n (inv : Stmt.invoke) (fact : Taint.fact) =
  match fact with
  | Taint.Zero -> ()
  | Taint.T taint ->
      if taint.Taint.active then begin
        match Srcsink_mgr.sink t.mgr inv with
        | None -> ()
        | Some cat ->
            let stmt = Icfg.stmt t.icfg n in
            let hits =
              List.exists
                (fun arg ->
                  match arg with
                  | Stmt.Iloc a -> (
                      match taint.Taint.ap.AP.base with
                      | AP.Bloc b -> Stmt.equal_local a b
                      | AP.Bstatic _ -> false)
                  | Stmt.Iconst _ -> false)
                inv.Stmt.i_args
            in
            if hits then
              report t ~source:taint.Taint.source ~sink_node:n
                ~sink_tag:stmt.Stmt.s_tag ~sink_cat:cat ~taint
      end

(* source generation at a call site (return-value and UI sources);
   requires the zero fact *)
let gen_sources t n (inv : Stmt.invoke) : Taint.t list =
  let stmt = Icfg.stmt t.icfg n in
  let ret_local =
    match stmt.Stmt.s_kind with
    | Stmt.Assign (Stmt.Llocal x, Stmt.Einvoke _) -> Some x
    | _ -> None
  in
  match ret_local with
  | None -> []
  | Some x -> (
      let mk cat desc =
        let source =
          Taint.{ si_category = cat; si_node = n; si_tag = stmt.Stmt.s_tag;
                  si_desc = desc }
        in
        [ Taint.make ~ap:(AP.of_local x) ~source ~at:n () ]
      in
      match Srcsink_mgr.return_source t.mgr inv with
      | Some cat ->
          mk cat
            (Printf.sprintf "%s.%s()" inv.Stmt.i_sig.Types.m_class
               inv.Stmt.i_sig.Types.m_name)
      | None -> (
          match
            Srcsink_mgr.ui_source t.mgr
              ~body:(Callgraph.body_of t.icfg.Icfg.cg n.Icfg.n_method)
              ~at:n.Icfg.n_idx inv
          with
          | Some ctl ->
              mk SS.Password
                (Printf.sprintf "password field %s (layout %s)"
                   ctl.Fd_frontend.Layout.ctl_name
                   ctl.Fd_frontend.Layout.ctl_layout)
          | None -> []))

(* wrapper / native / default-model effects for one incoming fact *)
let library_effects t n (inv : Stmt.invoke) effects (fact : Taint.fact) :
    Taint.t list =
  match fact with
  | Taint.Zero -> []
  | Taint.T taint ->
      let taint = maybe_activate t n taint in
      let stmt = Icfg.stmt t.icfg n in
      let ret_local =
        match stmt.Stmt.s_kind with
        | Stmt.Assign (Stmt.Llocal x, Stmt.Einvoke _) -> Some x
        | _ -> None
      in
      let arg_local i =
        match List.nth_opt inv.Stmt.i_args i with
        | Some (Stmt.Iloc a) -> Some a
        | _ -> None
      in
      let origin_matches (origin : Fd_frontend.Rules.origin) =
        let rooted l =
          match taint.Taint.ap.AP.base with
          | AP.Bloc b -> Stmt.equal_local b l
          | AP.Bstatic _ -> false
        in
        match origin with
        | Fd_frontend.Rules.From_recv -> (
            match inv.Stmt.i_recv with Some r -> rooted r | None -> false)
        | Fd_frontend.Rules.From_any_arg ->
            List.exists
              (function Stmt.Iloc a -> rooted a | Stmt.Iconst _ -> false)
              inv.Stmt.i_args
        | Fd_frontend.Rules.From_arg i -> (
            match arg_local i with Some a -> rooted a | None -> false)
      in
      let target_local (tgt : Fd_frontend.Rules.target) =
        match tgt with
        | Fd_frontend.Rules.To_ret -> ret_local
        | Fd_frontend.Rules.To_recv -> inv.Stmt.i_recv
        | Fd_frontend.Rules.To_arg i -> arg_local i
      in
      List.filter_map
        (fun (eff : Fd_frontend.Rules.effect) ->
          if origin_matches eff.Fd_frontend.Rules.eff_from then
            match target_local eff.Fd_frontend.Rules.eff_to with
            | Some l ->
                let g = Taint.derive taint ~ap:(AP.of_local l) ~at:n in
                (* writing taint into the receiver/argument heap object
                   may create aliases worth searching for *)
                Some g
            | None -> None
          else None)
        effects

(* default model for un-modelled phantom/native methods: the return
   value becomes tainted if the receiver or any argument is (the
   paper's "neither entirely sound nor maximally precise, but the best
   practical approximation") — and for *native* methods additionally
   the arguments become tainted. *)
let default_library_effects ~native : Fd_frontend.Rules.effect list =
  let open Fd_frontend.Rules in
  let base =
    [ { eff_to = To_ret; eff_from = From_any_arg };
      { eff_to = To_ret; eff_from = From_recv } ]
  in
  if native then
    base
    @ [ { eff_to = To_arg 0; eff_from = From_any_arg };
        { eff_to = To_arg 1; eff_from = From_any_arg };
        { eff_to = To_arg 2; eff_from = From_any_arg } ]
  else base

let is_native_target t (inv : Stmt.invoke) =
  match
    Scene.resolve_concrete t.scene inv.Stmt.i_sig.Types.m_class
      (inv.Stmt.i_sig.Types.m_name, inv.Stmt.i_sig.Types.m_params)
  with
  | Some (_, m) -> m.Jclass.jm_native
  | None -> false

(* ---------------- forward solver main loop case: call node -------- *)

let process_call_fw t cx n (fact : Taint.fact) inv =
  check_sink t n inv fact;
  let callees = Icfg.callees t.icfg n in
  let wrapper = Srcsink_mgr.wrapper_effects t.wrappers t.mgr inv in
  let stmt = Icfg.stmt t.icfg n in
  let ret_local =
    match stmt.Stmt.s_kind with
    | Stmt.Assign (Stmt.Llocal x, Stmt.Einvoke _) -> Some x
    | _ -> None
  in
  (* descend into analysable callees unless a wrapper shortcut is
     defined (wrappers are exclusive, Section 5) *)
  if callees <> [] && wrapper = None then
    List.iter
      (fun callee ->
        let entry_facts = call_flow t n inv callee fact in
        let s_callee = Icfg.start_node t.icfg callee in
        List.iter
          (fun d3 ->
            let cx_callee = { cx_proc = callee; cx_fact = d3 } in
            add_incoming t.fw cx_callee (n, cx);
            propagate_fw t cx_callee s_callee d3;
            List.iter
              (fun (e, d4) ->
                M.incr m_summary_apps;
                let rets =
                  return_flow t ~call:n ~callee ~exit_node:e inv d4
                in
                List.iter
                  (fun r ->
                    List.iter
                      (fun d5 ->
                        (match d5 with
                        | Taint.T tt when AP.length tt.Taint.ap > 0 ->
                            spawn_alias_search t cx n tt tt.Taint.ap
                        | _ -> ());
                        propagate_fw t cx r d5)
                      rets)
                  (Icfg.succs t.icfg n))
              (summaries_of t.fw cx_callee))
          entry_facts)
      callees;
  (* call-to-return: sources, library models, pass-through *)
  M.incr m_flow_c2r;
  let derived =
    match fact with
    | Taint.Zero -> List.map (fun g -> Taint.T g) (gen_sources t n inv)
    | Taint.T _ ->
        let effects =
          match wrapper with
          | Some effs -> Some effs
          | None ->
              if callees = [] then
                (* un-analysable target: explicit native rule or the
                   default black-box model *)
                match Srcsink_mgr.wrapper_effects t.natives t.mgr inv with
                | Some effs -> Some effs
                | None ->
                    Some
                      (default_library_effects
                         ~native:(is_native_target t inv))
              else None
        in
        (match effects with
        | Some effs ->
            List.map (fun g -> Taint.T g) (library_effects t n inv effs fact)
        | None -> [])
  in
  (* heap writes performed by library effects (e.g. putExtra tainting
     the receiver) get alias searches too *)
  List.iter
    (function
      | Taint.T (g : Taint.t) -> (
          match g.Taint.ap.AP.base with
          | AP.Bloc l ->
              let is_ret =
                match ret_local with
                | Some x -> Stmt.equal_local x l
                | None -> false
              in
              if not is_ret then spawn_alias_search t cx n g g.Taint.ap
          | AP.Bstatic _ -> ())
      | Taint.Zero -> ())
    derived;
  let pass_through =
    match fact with
    | Taint.Zero -> [ Taint.Zero ]
    | Taint.T taint ->
        let taint = maybe_activate t n taint in
        let killed =
          match (ret_local, taint.Taint.ap.AP.base) with
          | Some x, AP.Bloc b -> Stmt.equal_local x b
          | _ -> false
        in
        if killed then [] else [ Taint.T taint ]
  in
  List.iter
    (fun r ->
      List.iter (fun d -> propagate_fw t cx r d) (pass_through @ derived))
    (Icfg.succs t.icfg n)

let process_exit_fw t cx n (fact : Taint.fact) =
  if add_summary t.fw cx (n, fact) then
    List.iter
      (fun (c, caller_cx) ->
        match Icfg.invoke t.icfg c with
        | None -> ()
        | Some inv ->
            let rets =
              return_flow t ~call:c ~callee:cx.cx_proc ~exit_node:n inv fact
            in
            List.iter
              (fun r ->
                List.iter
                  (fun d5 ->
                    (match d5 with
                    | Taint.T tt when AP.length tt.Taint.ap > 0 ->
                        spawn_alias_search t caller_cx c tt tt.Taint.ap
                    | _ -> ());
                    propagate_fw t caller_cx r d5)
                  rets)
              (Icfg.succs t.icfg c))
      (incoming_of t.fw cx)

let process_fw t cx n fact =
  if Icfg.is_exit t.icfg n then begin
    (* sinks can also sit on an exit-adjacent call; exits themselves
       carry no invoke in µJimple *)
    process_exit_fw t cx n fact
  end
  else
    match Icfg.invoke t.icfg n with
    | Some inv -> process_call_fw t cx n fact inv
    | None ->
        let outs = normal_flow t cx n fact in
        List.iter
          (fun m -> List.iter (fun d -> propagate_fw t cx m d) outs)
          (Icfg.succs t.icfg n)

(* ---------------- backward solver (Algorithm 2) ---------------- *)

(* inject a discovered alias into the forward analysis at node [n] *)
let inject_fw t cx n (alias : Taint.t) =
  M.incr m_fw_injections;
  propagate_fw t cx n (Taint.T alias)

(* backward descent into a call's callees for a fact rooted at the
   receiver or an actual argument: the callee may have created aliases
   involving those objects (Algorithm 2, call-statement case) *)
let backward_descend_args t cx m (inv : Stmt.invoke) (taint : Taint.t) =
  List.iter
    (fun callee ->
      match Callgraph.body_of t.icfg.Icfg.cg callee with
      | exception Not_found -> ()
      | body ->
          let this_l, params = Body.param_locals body in
          let descend ap_from ap_to =
            match
              AP.rebase ~k:(k t) ~from:ap_from ~to_:ap_to taint.Taint.ap
            with
            | Some ap ->
                let d = Taint.derive taint ~ap ~at:m in
                let cx_callee = { cx_proc = callee; cx_fact = Taint.T d } in
                add_incoming t.fw cx_callee (m, cx);
                List.iter
                  (fun e_idx ->
                    propagate_bw t cx_callee
                      Icfg.{ n_method = callee; n_idx = e_idx }
                      (Taint.T d))
                  (Body.exit_stmts body)
            | None -> ()
          in
          (match (inv.Stmt.i_recv, this_l) with
          | Some r, Some tl when AP.length taint.Taint.ap > 0 ->
              descend (AP.of_local r) (AP.of_local tl)
          | _ -> ());
          List.iteri
            (fun i arg ->
              match (arg, List.assoc_opt i params) with
              | Stmt.Iloc a, Some p when AP.length taint.Taint.ap > 0 ->
                  descend (AP.of_local a) (AP.of_local p)
              | _ -> ())
            inv.Stmt.i_args)
    (Icfg.callees t.icfg m)

(* backward flow across the *predecessor* statement [m] for fact
   valid before [n]; may inject forward facts and descend into
   callees *)
let backward_step t cx m (taint : Taint.t) =
  M.incr m_bw_steps;
  let stmt = Icfg.stmt t.icfg m in
  let continue_with tt = propagate_bw t cx m (Taint.T tt) in
  match stmt.Stmt.s_kind with
  | Stmt.Assign (lv, e) -> (
      let lap = ap_of_lvalue lv in
      let strong_def =
        (* only a whole-local definition removes the path upstream *)
        match lv with Stmt.Llocal _ -> true | _ -> false
      in
      if AP.has_prefix ~prefix:lap taint.Taint.ap then begin
        (* the written location is (a prefix of) our alias: rewrite
           through the assignment *)
        match e with
        | Stmt.Einvoke inv ->
            (* value came from a callee's return: descend (Algorithm 2,
               call-statement case) *)
            let callees = Icfg.callees t.icfg m in
            List.iter
              (fun callee ->
                match Callgraph.body_of t.icfg.Icfg.cg callee with
                | exception Not_found -> ()
                | body ->
                    List.iter
                      (fun e_idx ->
                        let e_node =
                          Icfg.{ n_method = callee; n_idx = e_idx }
                        in
                        match (Body.stmt body e_idx).Stmt.s_kind with
                        | Stmt.Return (Some (Stmt.Iloc rl)) -> (
                            match
                              AP.rebase ~k:(k t) ~from:lap
                                ~to_:(AP.of_local rl) taint.Taint.ap
                            with
                            | Some ap ->
                                let d = Taint.derive taint ~ap ~at:m in
                                let cx_callee =
                                  { cx_proc = callee; cx_fact = Taint.T d }
                                in
                                add_incoming t.fw cx_callee (m, cx);
                                propagate_bw t cx_callee e_node (Taint.T d)
                            | None -> ())
                        | _ -> ())
                      (Body.exit_stmts body))
              callees;
            ignore inv
        | Stmt.Enew _ | Stmt.Enewarray _ ->
            (* freshly allocated: nothing aliases it upstream *)
            ()
        | _ -> (
            match alias_ap_of_expr e with
            | Some rap -> (
                match
                  AP.rebase ~k:(k t) ~from:lap ~to_:rap taint.Taint.ap
                with
                | Some ap ->
                    let d = Taint.derive taint ~ap ~at:m in
                    (* found an upstream alias: continue the search and
                       hand it to the forward analysis (Algorithm 2,
                       line 17) *)
                    inject_fw t cx m d;
                    continue_with d
                | None -> ())
            | None ->
                (* rhs is a constant or operator result: value created
                   here *)
                ())
      end
      else begin
        (* unrelated write; but the rhs may *read* our alias path,
           making the lhs a downstream alias (Figure 2, step 7:
           b = a.g with fact a.g.f gives alias b.f).  The alias holds
           only *after* [m] (the statement defines it), so the forward
           injection lands on [m]'s successors; and the new alias is
           itself searched backward so chains of heap assignments
           (o.a = c1; c1.a = c2; ...) compose. *)
        ignore strong_def;
        (match alias_ap_of_expr e with
        | Some rap -> (
            match AP.rebase ~k:(k t) ~from:rap ~to_:lap taint.Taint.ap with
            | Some ap ->
                let d = Taint.derive taint ~ap ~at:m in
                List.iter (fun s -> inject_fw t cx s d) (Icfg.succs t.icfg m);
                continue_with d
            | None -> ())
        | None -> ());
        (* a call whose result is stored elsewhere may still have
           mutated our alias's object through the arguments *)
        (match e with
        | Stmt.Einvoke inv -> backward_descend_args t cx m inv taint
        | _ -> ());
        (* does this statement *define* our base outright? then the
           path does not exist upstream *)
        let killed =
          match lv with
          | Stmt.Llocal x -> (
              match taint.Taint.ap.AP.base with
              | AP.Bloc b -> Stmt.equal_local b x
              | AP.Bstatic _ -> false)
          | _ -> false
        in
        if not killed then continue_with taint
      end)
  | Stmt.InvokeStmt inv ->
      (* a call the fact merely passes: descend with facts rooted at
         the receiver or actuals *)
      backward_descend_args t cx m inv taint;
      continue_with taint
  | Stmt.Identity _ | Stmt.If _ | Stmt.Goto _ | Stmt.Nop | Stmt.Return _
  | Stmt.Throw _ ->
      continue_with taint

let process_bw t cx n (fact : Taint.fact) =
  match fact with
  | Taint.Zero -> ()
  | Taint.T taint ->
      if n.Icfg.n_idx = 0 then begin
        (* Algorithm 2, method's-first-statement case: hand over to the
           forward analysis (which owns all returning into callers) and
           kill the backward fact *)
        ignore (add_summary t.bw cx (n, fact));
        inject_fw t cx n taint
      end
      else
        List.iter (fun m -> backward_step t cx m taint) (Icfg.preds t.icfg n)

(* ---------------- driver ---------------- *)

(** [run t ~entries] seeds the zero fact at each entry method and runs
    both solvers to exhaustion (or to the propagation budget). *)
let run t ~entries =
  List.iter
    (fun m ->
      let cx = { cx_proc = m; cx_fact = Taint.Zero } in
      propagate_fw t cx (Icfg.start_node t.icfg m) Taint.Zero)
    entries;
  let rec loop () =
    (* cooperative stop: once the budget trips (cap, deadline or
       cancellation) the remaining worklist is abandoned — results so
       far stay valid as a partial under-approximation *)
    if Fd_resilience.Budget.stopped t.budget then ()
    else if not (Queue.is_empty t.fw.s_work) then begin
      let cx, n, fact = Queue.pop t.fw.s_work in
      M.incr m_worklist_pops;
      process_fw t cx n fact;
      loop ()
    end
    else if not (Queue.is_empty t.bw.s_work) then begin
      let cx, n, fact = Queue.pop t.bw.s_work in
      M.incr m_worklist_pops;
      process_bw t cx n fact;
      loop ()
    end
  in
  loop ();
  t.findings <- List.rev t.findings

(** [findings t] is the reported source-to-sink flows. *)
let findings t = t.findings

(** [results_at t n] is the taints that may hold just before [n]
    (forward solver facts, for tests and inspection). *)
let results_at t n =
  match Node_tbl.find_opt t.results n with Some c -> !c | None -> []

(** [propagation_count t] is the number of path-edge propagations
    performed (the work metric reported by the benchmarks). *)
let propagation_count t = Fd_resilience.Budget.propagations t.budget

(** [outcome t] is the typed termination state of the solve:
    [Complete], or the budget's stop reason. *)
let outcome t = Fd_resilience.Budget.outcome t.budget

(** [budget t] is the engine's budget handle (e.g. for cooperative
    cancellation from a signal handler). *)
let budget t = t.budget

(** [budget_exhausted t] reports whether the propagation budget was
    hit (results may then be incomplete); see {!outcome} for the full
    taxonomy. *)
let budget_exhausted t =
  Fd_resilience.Outcome.equal (outcome t) Fd_resilience.Outcome.Budget_exhausted
