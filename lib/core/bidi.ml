(** The bidirectional taint solver: Algorithms 1 and 2 of the paper.

    Two IFDS-style worklist solvers run interleaved over the same
    inter-procedural CFG:

    - the {b forward} solver propagates taint abstractions along
      control flow, with the standard IFDS machinery (path edges, end
      summaries, incoming sets per Naeem–Lhoták);
    - the {b backward} solver is spawned on demand whenever a tainted
      value is assigned to a heap location; it searches *upwards* for
      aliases of the written access path.

    The handover implements the two precision mechanisms Section 4.2
    claims as novel:

    + {b context injection}: a spawned backward edge inherits the
      forward path edge's context [⟨sp, d1⟩] (and vice versa), so the
      combined analysis never produces facts along unrealizable paths
      with conflicting contexts (Figure 3).  The backward analysis
      never returns into callers on its own — when it reaches a
      method's first statement it hands the fact to the forward
      solver, injecting its incoming information so the forward pass
      returns only into the right callers.
    + {b activation statements}: every alias is born *inactive*,
      tagged with the heap-write statement that will make it tainted;
      only once the forward analysis carries it across that statement
      (or across a call that transitively contains it, tracked by the
      global activation-site association) does it activate and become
      able to trigger leak reports (Listing 3).

    Both mechanisms can be disabled through {!Config.t} to reproduce
    the naive handover and the Andromeda-style flow-insensitive
    behaviour in the ablation benchmarks. *)

open Fd_ir
open Fd_callgraph
module AP = Access_path
module SS = Fd_frontend.Sourcesink

(* solver metrics (namespaces: ifds.* for the shared tabulation
   machinery — the same counters the generic [Fd_ifds] solver uses —
   and bidi.* for the bidirectional-specific mechanisms); handles are
   resolved once so hot-path updates are single field increments *)
module M = Fd_obs.Metrics
module Prov = Fd_obs.Provenance
module Flight = Fd_obs.Ring.Flight

let m_path_edges = M.counter "ifds.path_edges"
let m_worklist_pushes = M.counter "ifds.worklist_pushes"
let m_worklist_pops = M.counter "ifds.worklist_pops"
let m_summaries = M.counter "ifds.summaries_installed"
let m_summary_apps = M.counter "ifds.summary_applications"
let m_flow_normal = M.counter "ifds.flow.normal"
let m_flow_call = M.counter "ifds.flow.call"
let m_flow_return = M.counter "ifds.flow.return"
let m_flow_c2r = M.counter "ifds.flow.call_to_return"
let m_fw_props = M.counter "bidi.fw_propagations"
let m_bw_props = M.counter "bidi.bw_propagations"
let m_alias_queries = M.counter "bidi.alias_queries"
let m_fw_injections = M.counter "bidi.fw_injections"
let m_bw_steps = M.counter "bidi.backward_steps"
let m_activations = M.counter "bidi.activations"
let m_findings = M.counter "core.findings"

(* one step of a provenance witness: the program point, its statement
   and the solver fact that held there, plus the flow-function kind
   that derived it from the previous step *)
type witness_step = {
  ws_node : Icfg.node;
  ws_stmt : string;
  ws_fact : string;
  ws_kind : string;
}

type finding = {
  f_source : Taint.source_info;
  f_sink_node : Icfg.node;
  f_sink_tag : string option;
  f_sink_cat : SS.category;
  f_path : Icfg.node list;
  f_witness : witness_step list;
      (** source-to-sink derivation reconstructed from provenance
          edges; [[]] unless {!Config.t.provenance} was on *)
}

(* ---------------- interned solver state ----------------

   Facts, contexts and program points are interned into dense integer
   ids at the propagation boundary; every solver table is then keyed
   on small int tuples (O(1) compares, no repeated deep structural
   hashing), and the per-node / per-method views the flow functions
   consume — statement, successors, predecessors, callees, parameter
   locals, source/sink classifications — are resolved once and cached
   against the id.  All pools live inside the engine value, so
   engines on different domains never share mutable state. *)

let m_dedup_hits = M.counter "ifds.worklist_dedup_hits"
let g_intern_facts = M.gauge "intern.facts.size"
let g_intern_fact_hits = M.gauge "intern.facts.hits"
let g_intern_fact_misses = M.gauge "intern.facts.misses"
let g_intern_nodes = M.gauge "intern.nodes.size"
let g_intern_methods = M.gauge "intern.methods.size"
let g_intern_ctxs = M.gauge "intern.ctxs.size"

(* live byte-size accounting for the solver tables (estimates: entry
   counts times per-entry footprint; see [publish_memory_gauges]) *)
let g_bytes_fw = M.gauge "mem.fw_tables.bytes"
let g_bytes_bw = M.gauge "mem.bw_tables.bytes"
let g_bytes_facts = M.gauge "mem.fact_pool.bytes"
let g_bytes_prov = M.gauge "mem.provenance.bytes"

module Int_tbl = Hashtbl.Make (Int)

module I2_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = Fd_util.Intern.combine a b
end)

module I3_tbl = Hashtbl.Make (struct
  type t = int * int * int

  let equal (a, b, c) (d, e, f) = a = d && b = e && c = f
  let hash (a, b, c) = Fd_util.Intern.combine (Fd_util.Intern.combine a b) c
end)

module Fact_pool = Fd_util.Intern.Make (struct
  type t = Taint.fact

  let equal = Taint.equal
  let hash = Taint.hash
end)

module Node_tbl = Icfg.Node_tbl

(* per-method view: body, parameter binding and exit points, resolved
   once per method instead of per call edge *)
type minfo = {
  mi_id : int;
  mi_key : Mkey.t;
  mi_body : Body.t option;  (** [None] for un-analysable targets *)
  mi_this : Stmt.local option;
  mi_params : (int * Stmt.local) list;
  mi_exits : int list;
  mutable mi_start_ni : ninfo option;
  mutable mi_exit_nis : ninfo list option;
  mutable mi_prof : Fd_obs.Profile.cell option;
      (** cached profiler cell, resolved on first pop when profiling *)
}

(* per-node view: everything the solver used to recompute on every
   worklist pop (each recomputation re-hashed the method key's
   strings) *)
and ninfo = {
  ni_id : int;
  ni_node : Icfg.node;
  ni_minfo : minfo;
  ni_stmt : Stmt.t;
  ni_invoke : Stmt.invoke option;
  ni_is_exit : bool;
  mutable ni_succs : ninfo list option;
  mutable ni_preds : ninfo list option;
  mutable ni_callees : minfo list option;
  mutable ni_call : callinfo option;  (** cached call-site data *)
  mutable ni_zero_gen : Taint.t list option;
      (** parameter-source taints generated under the zero fact *)
}

(* node-constant call-site classifications (sink category, wrapper /
   native / default library model, return local, generated sources) *)
and callinfo = {
  ci_sink : SS.category option;
  ci_wrapper : Fd_frontend.Rules.effect list option;
  ci_ret : Stmt.local option;
  ci_sources : Taint.t list;
  ci_c2r : Fd_frontend.Rules.effect list option;
      (** effects applied on the call-to-return edge *)
}

type cctx = { cc_id : int; cc_proc : minfo; cc_fact : Taint.fact }
(** an IFDS context [⟨sp, d1⟩], interned: equal contexts are the same
    value and carry the same id *)

type solver = {
  s_edges : unit I3_tbl.t;  (** path edges, keyed (ctx, node, fact) ids *)
  s_summaries : (ninfo * Taint.fact) list ref Int_tbl.t;
      (** (proc entry context id) -> exit facts *)
  s_sum_seen : unit I3_tbl.t;  (** (ctx, exit node, fact) ids *)
  s_incoming : (ninfo * cctx) list ref Int_tbl.t;
      (** (callee entry context id) -> call sites with caller contexts *)
  s_inc_seen : unit I3_tbl.t;  (** (ctx, call node, caller ctx) ids *)
  s_work : (cctx * ninfo * Taint.fact) Queue.t;
}

let mk_solver () =
  {
    s_edges = I3_tbl.create 512;
    s_summaries = Int_tbl.create 256;
    s_sum_seen = I3_tbl.create 256;
    s_incoming = Int_tbl.create 256;
    s_inc_seen = I3_tbl.create 256;
    s_work = Queue.create ();
  }

type t = {
  cfg : Config.t;
  icfg : Icfg.t;
  scene : Scene.t;
  mgr : Srcsink_mgr.t;
  wrappers : Fd_frontend.Rules.t;
  natives : Fd_frontend.Rules.t;
  (* interning pools — one set per engine instance *)
  facts : Fact_pool.pool;
  minfos : minfo Mkey.Tbl.t;
  mutable n_minfos : int;
  ninfos : ninfo Node_tbl.t;
  mutable n_ninfos : int;
  cctxs : cctx I2_tbl.t;  (** (method id, fact id) -> context *)
  mutable n_cctxs : int;
  fw : solver;
  bw : solver;
  mutable findings : finding list;
  finding_keys : (string, unit) Hashtbl.t;
  (* activation statement -> call sites whose completion implies the
     activation has executed, and the methods those call sites live in *)
  act_sites : unit Node_tbl.t Node_tbl.t;
  act_methods : unit Mkey.Tbl.t Node_tbl.t;
  (* forward results per node id, for inspection and tests *)
  results_list : Taint.t list ref Int_tbl.t;
  results_seen : unit I2_tbl.t;  (** (node id, fact id) *)
  budget : Fd_resilience.Budget.t;
  (* per-method must-alias results, computed lazily when the
     strong-update precision pass is on *)
  ma_cache : Fd_precision.Must_alias.t Mkey.Tbl.t;
  (* provenance: the edge store ([None] = off), the interned id of the
     zero fact, the node/fact ids of the worklist item currently being
     processed (every propagation's predecessor), and an id-indexed
     node view for witness reconstruction *)
  prov : Prov.t option;
  zero_fid : int;
  mutable cur_node : int;
  mutable cur_fact : int;
  ninfos_by_id : ninfo Int_tbl.t;
  (* persistent summary store ([None] = off, the default): the solver
     hooks, the sink reports recorded per context (captured before
     global dedup so a stored context is self-contained), and the
     contexts whose summaries came from the store (replayed, never
     re-persisted) *)
  store : Summary.hooks option;
  cx_reports : Summary.sink_report list ref Int_tbl.t;
  injected_cxs : unit Int_tbl.t;
  (* targeted-mode slice membership: both worklist loops refuse to
     descend into methods outside it.  The default (const true) takes
     no new code path; the targeted driver passes restricted-call-graph
     reachability, which the graph built from the sliced entry set
     already satisfies for every callee it resolves. *)
  in_slice : Mkey.t -> bool;
}

let create ?budget ?store ?(in_slice = fun _ -> true) ~config ~icfg ~scene
    ~mgr ~wrappers ~natives () =
  let budget =
    match budget with
    | Some b -> b
    | None ->
        Fd_resilience.Budget.create ?deadline_s:config.Config.deadline_s
          ~max_propagations:config.Config.max_propagations ()
  in
  let facts = Fact_pool.create ~size:512 () in
  let prov = if config.Config.provenance then Some (Prov.create ()) else None in
  (* the zero fact's pool id, for witness-prefix trimming; interned
     only when provenance is on so a default run's pool statistics are
     untouched *)
  let zero_fid =
    match prov with Some _ -> Fact_pool.id facts Taint.Zero | None -> -2
  in
  {
    cfg = config;
    icfg;
    scene;
    mgr;
    wrappers;
    natives;
    facts;
    minfos = Mkey.Tbl.create 256;
    n_minfos = 0;
    ninfos = Node_tbl.create 512;
    n_ninfos = 0;
    cctxs = I2_tbl.create 256;
    n_cctxs = 0;
    fw = mk_solver ();
    bw = mk_solver ();
    findings = [];
    finding_keys = Hashtbl.create 64;
    act_sites = Node_tbl.create 16;
    act_methods = Node_tbl.create 16;
    results_list = Int_tbl.create 256;
    results_seen = I2_tbl.create 256;
    budget;
    ma_cache = Mkey.Tbl.create 16;
    prov;
    zero_fid;
    cur_node = -1;
    cur_fact = -1;
    ninfos_by_id = Int_tbl.create 512;
    store;
    cx_reports = Int_tbl.create 64;
    injected_cxs = Int_tbl.create 64;
    in_slice;
  }

let k t = t.cfg.Config.max_access_path
let prec t = t.cfg.Config.precision

(* ---------------- program-view resolution ---------------- *)

let minfo_of t mk =
  match Mkey.Tbl.find_opt t.minfos mk with
  | Some mi -> mi
  | None ->
      let body =
        match Callgraph.body_of t.icfg.Icfg.cg mk with
        | b -> Some b
        | exception Not_found -> None
      in
      let this_l, params =
        match body with Some b -> Body.param_locals b | None -> (None, [])
      in
      let exits =
        match body with Some b -> Body.exit_stmts b | None -> []
      in
      let mi =
        {
          mi_id = t.n_minfos;
          mi_key = mk;
          mi_body = body;
          mi_this = this_l;
          mi_params = params;
          mi_exits = exits;
          mi_start_ni = None;
          mi_exit_nis = None;
          mi_prof = None;
        }
      in
      t.n_minfos <- t.n_minfos + 1;
      Mkey.Tbl.replace t.minfos mk mi;
      mi

let ninfo_of t (n : Icfg.node) =
  match Node_tbl.find_opt t.ninfos n with
  | Some ni -> ni
  | None ->
      let mi = minfo_of t n.Icfg.n_method in
      let body = match mi.mi_body with Some b -> b | None -> raise Not_found in
      let stmt = Body.stmt body n.Icfg.n_idx in
      let ni =
        {
          ni_id = t.n_ninfos;
          ni_node = n;
          ni_minfo = mi;
          ni_stmt = stmt;
          ni_invoke = Stmt.invoke_of stmt;
          ni_is_exit =
            (match stmt.Stmt.s_kind with
            | Stmt.Return _ | Stmt.Throw _ -> true
            | _ -> false);
          ni_succs = None;
          ni_preds = None;
          ni_callees = None;
          ni_call = None;
          ni_zero_gen = None;
        }
      in
      t.n_ninfos <- t.n_ninfos + 1;
      Node_tbl.replace t.ninfos n ni;
      Int_tbl.replace t.ninfos_by_id ni.ni_id ni;
      ni

let node_at mi idx = Icfg.{ n_method = mi.mi_key; n_idx = idx }

let succs t (ni : ninfo) =
  match ni.ni_succs with
  | Some s -> s
  | None ->
      let body = Option.get ni.ni_minfo.mi_body in
      let s =
        List.map
          (fun i -> ninfo_of t (node_at ni.ni_minfo i))
          (Body.succs body ni.ni_node.Icfg.n_idx)
      in
      ni.ni_succs <- Some s;
      s

let preds t (ni : ninfo) =
  match ni.ni_preds with
  | Some s -> s
  | None ->
      let body = Option.get ni.ni_minfo.mi_body in
      let s =
        List.map
          (fun i -> ninfo_of t (node_at ni.ni_minfo i))
          (Body.preds body ni.ni_node.Icfg.n_idx)
      in
      ni.ni_preds <- Some s;
      s

let callees t (ni : ninfo) =
  match ni.ni_callees with
  | Some cs -> cs
  | None ->
      let cs =
        List.map (minfo_of t)
          (List.filter t.in_slice
             (Callgraph.callees t.icfg.Icfg.cg ni.ni_node.Icfg.n_method
                ni.ni_node.Icfg.n_idx))
      in
      ni.ni_callees <- Some cs;
      cs

let start_ni t (mi : minfo) =
  match mi.mi_start_ni with
  | Some ni -> ni
  | None ->
      let ni = ninfo_of t (node_at mi 0) in
      mi.mi_start_ni <- Some ni;
      ni

let exit_nis t (mi : minfo) =
  match mi.mi_exit_nis with
  | Some nis -> nis
  | None ->
      let nis = List.map (fun i -> ninfo_of t (node_at mi i)) mi.mi_exits in
      mi.mi_exit_nis <- Some nis;
      nis

(* intern a fact: id plus the canonical (first-seen) representative,
   so downstream equality checks hit the physical-equality fast
   path *)
let intern_fact t fact =
  let fid = Fact_pool.id t.facts fact in
  (fid, Fact_pool.value t.facts fid)

let cctx t (mi : minfo) fact =
  let fid, fact = intern_fact t fact in
  let key = (mi.mi_id, fid) in
  match I2_tbl.find_opt t.cctxs key with
  | Some c -> c
  | None ->
      let c = { cc_id = t.n_cctxs; cc_proc = mi; cc_fact = fact } in
      t.n_cctxs <- t.n_cctxs + 1;
      I2_tbl.replace t.cctxs key c;
      c

(* ---------------- propagation ---------------- *)

let record_result t (ni : ninfo) fid fact =
  match fact with
  | Taint.Zero -> ()
  | Taint.T taint ->
      let key = (ni.ni_id, fid) in
      if not (I2_tbl.mem t.results_seen key) then begin
        I2_tbl.replace t.results_seen key ();
        let cell =
          match Int_tbl.find_opt t.results_list ni.ni_id with
          | Some c -> c
          | None ->
              let c = ref [] in
              Int_tbl.replace t.results_list ni.ni_id c;
              c
        in
        cell := taint :: !cell
      end

(* profiler cell for a method, resolved once and cached on the minfo *)
let prof_cell (mi : minfo) =
  match mi.mi_prof with
  | Some c -> c
  | None ->
      let c = Fd_obs.Profile.cell (Mkey.to_string mi.mi_key) in
      mi.mi_prof <- Some c;
      c

let propagate ?(kind = Prov.Normal) t solver cx (ni : ninfo) fact =
  let fid, fact = intern_fact t fact in
  let key = (cx.cc_id, ni.ni_id, fid) in
  if I3_tbl.mem solver.s_edges key then M.incr m_dedup_hits
  else if Fd_resilience.Budget.tick t.budget then begin
    M.incr m_path_edges;
    M.incr m_worklist_pushes;
    if solver == t.fw then begin
      M.incr m_fw_props;
      record_result t ni fid fact
    end
    else M.incr m_bw_props;
    (match t.prov with
    | Some prov ->
        (* first taint derived from the zero fact is the source step,
           whatever edge carried it (assignment source, call-site
           return source, parameter source) *)
        let kind =
          if
            t.cur_fact = t.zero_fid && fid <> t.zero_fid
            && kind <> Prov.Seed
          then Prov.Source
          else kind
        in
        Prov.record prov ~node:ni.ni_id ~fact:fid ~pred_node:t.cur_node
          ~pred_fact:t.cur_fact ~kind
    | None -> ());
    if t.cfg.Config.profile then Fd_obs.Profile.add_fact (prof_cell ni.ni_minfo);
    I3_tbl.replace solver.s_edges key ();
    Queue.add (cx, ni, fact) solver.s_work
  end

let propagate_fw ?kind t cx ni fact = propagate ?kind t t.fw cx ni fact
let propagate_bw ?kind t cx ni fact = propagate ?kind t t.bw cx ni fact

let int_cell tbl id =
  match Int_tbl.find_opt tbl id with
  | Some c -> c
  | None ->
      let c = ref [] in
      Int_tbl.replace tbl id c;
      c

let add_incoming t solver cx_callee ((ni : ninfo), (caller_cx : cctx)) =
  ignore t;
  let key = (cx_callee.cc_id, ni.ni_id, caller_cx.cc_id) in
  if not (I3_tbl.mem solver.s_inc_seen key) then begin
    I3_tbl.replace solver.s_inc_seen key ();
    Flight.record (fun () ->
        Printf.sprintf "call-edge %s -> %s"
          (Icfg.string_of_node ni.ni_node)
          (Mkey.to_string cx_callee.cc_proc.mi_key));
    let cell = int_cell solver.s_incoming cx_callee.cc_id in
    cell := (ni, caller_cx) :: !cell
  end

let incoming_of solver cx_callee =
  match Int_tbl.find_opt solver.s_incoming cx_callee.cc_id with
  | Some c -> !c
  | None -> []

let add_summary t solver cx_callee ((ni : ninfo), fact) =
  let fid, fact = intern_fact t fact in
  let key = (cx_callee.cc_id, ni.ni_id, fid) in
  if I3_tbl.mem solver.s_sum_seen key then false
  else begin
    I3_tbl.replace solver.s_sum_seen key ();
    Flight.record (fun () ->
        Printf.sprintf "return-edge %s %s"
          (Icfg.string_of_node ni.ni_node)
          (Taint.fact_to_string fact));
    let cell = int_cell solver.s_summaries cx_callee.cc_id in
    cell := (ni, fact) :: !cell;
    M.incr m_summaries;
    true
  end

let summaries_of solver cx_callee =
  match Int_tbl.find_opt solver.s_summaries cx_callee.cc_id with
  | Some c -> !c
  | None -> []

(* ---------------- findings ---------------- *)

(* reconstruct the witness for the finding being reported: walk the
   provenance chain of the (node, fact) pair currently popped (the
   sink check runs on the popped item, so the ambient cur_node /
   cur_fact IS the sink endpoint), then trim the zero-fact seed prefix
   down to its last element — the statement where the source taint was
   generated *)
let witness_of_current t =
  match t.prov with
  | None -> []
  | Some prov ->
      let chain = Prov.trace prov ~node:t.cur_node ~fact:t.cur_fact in
      let is_zero (_, fid, _) = fid = t.zero_fid in
      let rec trim = function
        | a :: (b :: _ as rest) when is_zero a && is_zero b -> trim rest
        | l -> l
      in
      List.filter_map
        (fun (nid, fid, kind) ->
          match Int_tbl.find_opt t.ninfos_by_id nid with
          | None -> None
          | Some ni ->
              Some
                {
                  ws_node = ni.ni_node;
                  ws_stmt = Stmt.to_string ni.ni_stmt;
                  ws_fact = Taint.fact_to_string (Fact_pool.value t.facts fid);
                  ws_kind = Prov.string_of_kind kind;
                })
        (trim chain)

let report t ~cx ?taint ~(source : Taint.source_info) ~sink_node ~sink_tag
    ~sink_cat () =
  (* capture for the summary store *before* the global dedup: a stored
     context must carry every leak of its subtree, even when another
     context already reported the same flow.  [taint] is absent for
     store replays — their paths were not walked in this process. *)
  (match t.store with
  | None -> ()
  | Some _ ->
      let r =
        { Summary.sr_source = source; sr_sink = sink_node; sr_tag = sink_tag;
          sr_cat = sink_cat }
      in
      let cell = int_cell t.cx_reports cx.cc_id in
      let rkey = Summary.report_key r in
      if
        not
          (List.exists
             (fun x -> String.equal (Summary.report_key x) rkey)
             !cell)
      then cell := r :: !cell);
  let key =
    Printf.sprintf "%s|%s|%s"
      (Icfg.string_of_node source.Taint.si_node)
      (Option.value source.Taint.si_tag ~default:"")
      (Icfg.string_of_node sink_node)
  in
  if not (Hashtbl.mem t.finding_keys key) then begin
    Hashtbl.replace t.finding_keys key ();
    M.incr m_findings;
    t.findings <-
      {
        f_source = source;
        f_sink_node = sink_node;
        f_sink_tag = sink_tag;
        f_sink_cat = sink_cat;
        f_path =
          (match taint with
          | Some taint -> Taint.path taint @ [ sink_node ]
          | None -> [ sink_node ]);
        f_witness = witness_of_current t;
      }
      :: t.findings
  end

(* ---------------- activation machinery ---------------- *)

let node_set_add tbl key node =
  let set =
    match Node_tbl.find_opt tbl key with
    | Some s -> s
    | None ->
        let s = Node_tbl.create 4 in
        Node_tbl.replace tbl key s;
        s
  in
  Node_tbl.replace set node ()

let mkey_set_add tbl key mk =
  let set =
    match Node_tbl.find_opt tbl key with
    | Some s -> s
    | None ->
        let s = Mkey.Tbl.create 4 in
        Node_tbl.replace tbl key s;
        s
  in
  Mkey.Tbl.replace set mk ()

let is_act_site t ~activation n =
  Node_tbl.length t.act_sites > 0
  &&
  match Node_tbl.find_opt t.act_sites activation with
  | Some s -> Node_tbl.mem s n
  | None -> false

let act_method_implies t ~activation mk =
  Mkey.equal activation.Icfg.n_method mk
  || (Node_tbl.length t.act_methods > 0
     &&
     match Node_tbl.find_opt t.act_methods activation with
     | Some s -> Mkey.Tbl.mem s mk
     | None -> false)

(* ---------------- summary-store injection ---------------- *)

(* On a store hit for (callee, entry fact), install the decoded end
   summaries and replay the subtree's sink reports instead of seeding
   the callee — the caller's summary-application loop then maps them
   through [return_flow] exactly as if the subtree had been analysed.
   Returns true when the descent seed must be skipped.  Two pieces of
   cold-run bookkeeping are reproduced explicitly:

   - every decoded inactive fact's activation statement is associated
     with the callee ([act_methods]), the invariant the skipped
     returns would have established bottom-up, so [return_flow]'s
     activation-site registration fires for the caller as usual;
   - replayed reports are recorded under the *injected* context, so a
     store-eligible ancestor persisting its own subtree still sees
     them. *)
let inject_stored_summaries t (cx_callee : cctx) =
  match t.store with
  | None -> false
  | Some h -> (
      if Int_tbl.mem t.injected_cxs cx_callee.cc_id then true
      else if not (Summary.eligible_entry cx_callee.cc_fact) then false
      else
        match
          h.Summary.h_lookup ~callee:cx_callee.cc_proc.mi_key
            ~entry:cx_callee.cc_fact
        with
        | None -> false
        | Some inj ->
            Int_tbl.replace t.injected_cxs cx_callee.cc_id ();
            let exits = exit_nis t cx_callee.cc_proc in
            List.iter
              (fun (idx, f) ->
                match
                  List.find_opt
                    (fun (e : ninfo) -> e.ni_node.Icfg.n_idx = idx)
                    exits
                with
                | None -> ()
                | Some eni ->
                    (match f with
                    | Taint.T tt when not tt.Taint.active -> (
                        match tt.Taint.activation with
                        | Some a ->
                            mkey_set_add t.act_methods a
                              cx_callee.cc_proc.mi_key
                        | None -> ())
                    | _ -> ());
                    ignore (add_summary t t.fw cx_callee (eni, f)))
              inj.Summary.inj_summaries;
            List.iter
              (fun (r : Summary.sink_report) ->
                report t ~cx:cx_callee ~source:r.Summary.sr_source
                  ~sink_node:r.Summary.sr_sink ~sink_tag:r.Summary.sr_tag
                  ~sink_cat:r.Summary.sr_cat ())
              inj.Summary.inj_reports;
            true)

(* activate an outgoing taint when it crosses its activation node or a
   call site associated with it *)
let maybe_activate t n (taint : Taint.t) =
  if taint.Taint.active then taint
  else
    match taint.Taint.activation with
    | Some a when Icfg.equal_node a n || is_act_site t ~activation:a n ->
        M.incr m_activations;
        Taint.activate taint ~at:n
    | _ -> taint

(* ---------------- access-path helpers ---------------- *)

(* [arr] gates the constant-index precision pass (Config.array_index):
   when on, [a[c]] with a compile-time-constant index denotes the
   pseudo-field cell [a.<idx:c>]; every other index keeps the
   whole-array abstraction *)

let array_cell ~arr x i : AP.t =
  match i with
  | Stmt.Iconst (Stmt.CInt c) when arr -> AP.of_field x (AP.index_field c)
  | _ -> AP.of_local x (* whole-array abstraction *)

let ap_of_lvalue ~arr lv : AP.t =
  match lv with
  | Stmt.Llocal x -> AP.of_local x
  | Stmt.Lfield (x, f) -> AP.of_field x f
  | Stmt.Lstatic f -> AP.of_static f
  | Stmt.Larray (x, i) -> array_cell ~arr x i

(* access paths readable from an expression, for taint matching: a
   taint whose path extends one of these flows into the assignment *)
let aps_of_expr ~arr (e : Stmt.expr) : AP.t list =
  match e with
  | Stmt.Eimm (Stmt.Iloc y) -> [ AP.of_local y ]
  | Stmt.Eimm (Stmt.Iconst _) -> []
  | Stmt.Efield (y, f) -> [ AP.of_field y f ]
  | Stmt.Estatic f -> [ AP.of_static f ]
  | Stmt.Earray (y, i) -> [ array_cell ~arr y i ]
  | Stmt.Ebinop (_, a, b) ->
      List.filter_map
        (function Stmt.Iloc y -> Some (AP.of_local y) | Stmt.Iconst _ -> None)
        [ a; b ]
  | Stmt.Eunop (_, a) | Stmt.Ecast (_, a) | Stmt.Einstanceof (a, _) ->
      List.filter_map
        (function Stmt.Iloc y -> Some (AP.of_local y) | Stmt.Iconst _ -> None)
        [ a ]
  | Stmt.Elength y -> [ AP.of_local y ]
  | Stmt.Enew _ | Stmt.Enewarray _ | Stmt.Einvoke _ -> []

(* a single-valued alias-preserving view of the rhs, used by the
   backward analysis: only expressions that denote a heap location or
   a copy can be rewritten through *)
let alias_ap_of_expr ~arr (e : Stmt.expr) : AP.t option =
  match e with
  | Stmt.Eimm (Stmt.Iloc y) -> Some (AP.of_local y)
  | Stmt.Ecast (_, Stmt.Iloc y) -> Some (AP.of_local y)
  | Stmt.Efield (y, f) -> Some (AP.of_field y f)
  | Stmt.Estatic f -> Some (AP.of_static f)
  | Stmt.Earray (y, i) -> Some (array_cell ~arr y i)
  | _ -> None

(* under the array-index pass, a read through a *non-constant* index
   may return any cell: per-cell taints collapse onto the destination
   (drop the cell selector the rebase carried over) rather than keep a
   spurious [<idx:c>] selector on a non-array value *)
let widen_cell_suffix ~lap (ap : AP.t) : AP.t =
  let nl = List.length lap.AP.fields in
  let rec go i = function
    | [] -> []
    | f :: rest when i = nl && AP.is_index_field f -> rest
    | f :: rest -> f :: go (i + 1) rest
  in
  { ap with AP.fields = go 0 ap.AP.fields }

(* ---------------- backward spawning (Algorithm 1, line 16) -------- *)

(* spawn an alias search for the heap access path [ap] written at node
   [ni], under the forward context [cx] (context injection) *)
let spawn_alias_search t cx (ni : ninfo) (origin : Taint.t) ap =
  if t.cfg.Config.alias_search && not (AP.is_static ap) then begin
    M.incr m_alias_queries;
    let n = ni.ni_node in
    let cx =
      if t.cfg.Config.context_injection then cx
      else cctx t ni.ni_minfo Taint.Zero
    in
    let alias =
      if t.cfg.Config.activation_statements then
        Taint.inactive_alias origin ~ap ~activation:n ~at:n
      else
        (* ablation: aliases are born active (flow-insensitive
           Andromeda-style behaviour) *)
        Taint.active_alias origin ~ap ~at:n
    in
    propagate_bw ~kind:Prov.Alias t cx ni (Taint.T alias)
  end

(* ---------------- forward flow functions ---------------- *)

(* taints generated across an assignment for an incoming taint *)
let assign_gen t n lv e (taint : Taint.t) =
  let arr = (prec t).Config.array_index in
  let lap = ap_of_lvalue ~arr lv in
  (* non-constant array read under the array-index pass: the result
     may be any cell, so per-cell taints widen to the whole value *)
  let nonconst_read =
    arr
    &&
    match e with
    | Stmt.Earray (_, Stmt.Iconst (Stmt.CInt _)) -> false
    | Stmt.Earray _ -> true
    | _ -> false
  in
  let gen_from src_ap =
    match AP.rebase ~k:(k t) ~from:src_ap ~to_:lap taint.Taint.ap with
    | Some ap ->
        let ap = if nonconst_read then widen_cell_suffix ~lap ap else ap in
        [ Taint.derive taint ~ap ~at:n ]
    | None -> (
        (* a tainted value reachable *below* the read path also flows:
           reading x.f when x is tainted yields a tainted value *)
        match e with
        | Stmt.Ebinop _ | Stmt.Elength _ ->
            (* operators collapse to a whole-value taint *)
            if AP.has_prefix ~prefix:taint.Taint.ap src_ap then
              [ Taint.derive taint ~ap:lap ~at:n ]
            else []
        | _ ->
            if AP.has_prefix ~prefix:taint.Taint.ap src_ap then
              [ Taint.derive taint ~ap:lap ~at:n ]
            else [])
  in
  List.concat_map gen_from (aps_of_expr ~arr e)

(* parameter-source taints generated at [ni] under the zero fact
   (callback parameter sources such as onLocationChanged); the result
   is node-constant, so it is computed once and cached *)
let zero_gen t (ni : ninfo) =
  match ni.ni_zero_gen with
  | Some g -> g
  | None ->
      let n = ni.ni_node in
      let stmt = ni.ni_stmt in
      let g =
        match stmt.Stmt.s_kind with
        | Stmt.Identity (l, Stmt.Iparam i) -> (
            let cls = n.Icfg.n_method.Mkey.mk_class in
            let mname = n.Icfg.n_method.Mkey.mk_name in
            match Srcsink_mgr.param_source t.mgr ~cls ~mname with
            | Some (params, cat) when List.mem i params ->
                let source =
                  Taint.
                    {
                      si_category = cat;
                      si_node = n;
                      si_tag = stmt.Stmt.s_tag;
                      si_desc =
                        Printf.sprintf "parameter %d of %s.%s" i cls mname;
                    }
                in
                [ Taint.make ~ap:(AP.of_local l) ~source ~at:n () ]
            | _ -> [])
        | _ -> []
      in
      ni.ni_zero_gen <- Some g;
      g

(* must-alias query for the strong-update pass, lazily computing and
   caching the per-method partition dataflow *)
let must_alias_at t (ni : ninfo) b x =
  match ni.ni_minfo.mi_body with
  | None -> false
  | Some body ->
      let ma =
        match Mkey.Tbl.find_opt t.ma_cache ni.ni_minfo.mi_key with
        | Some ma -> ma
        | None ->
            let ma = Fd_precision.Must_alias.analyze body in
            Mkey.Tbl.replace t.ma_cache ni.ni_minfo.mi_key ma;
            ma
      in
      Fd_precision.Must_alias.must_alias ma ~at:ni.ni_node.Icfg.n_idx b x

(* forward flow across a non-call statement; returns outgoing facts
   and performs alias-search side effects *)
let normal_flow t cx (ni : ninfo) (fact : Taint.fact) : Taint.fact list =
  M.incr m_flow_normal;
  let n = ni.ni_node in
  let stmt = ni.ni_stmt in
  match fact with
  | Taint.Zero ->
      Taint.Zero :: List.map (fun g -> Taint.T g) (zero_gen t ni)
  | Taint.T taint -> (
      let taint = maybe_activate t n taint in
      match stmt.Stmt.s_kind with
      | Stmt.Assign (lv, e) ->
          let killed =
            (* strong update on locals: x = ... kills taints rooted at
               x.  Heap locations are only strongly updated under the
               must-alias precision pass: a write x.f := e kills b.f...
               when b provably holds the same reference as x on every
               path reaching the write. *)
            match lv with
            | Stmt.Llocal x -> (
                match taint.Taint.ap.AP.base with
                | AP.Bloc b -> Stmt.equal_local b x
                | AP.Bstatic _ -> false)
            | Stmt.Lfield (x, f) when (prec t).Config.must_alias -> (
                match
                  (taint.Taint.ap.AP.base, taint.Taint.ap.AP.fields)
                with
                | AP.Bloc b, f0 :: _ ->
                    Types.equal_field_sig f0 f && must_alias_at t ni b x
                | _ -> false)
            | _ -> false
          in
          let gens = assign_gen t n lv e taint in
          (* alias search for every taint newly written to the heap *)
          List.iter
            (fun (g : Taint.t) ->
              match lv with
              | Stmt.Lfield _ | Stmt.Larray _ ->
                  spawn_alias_search t cx ni g g.Taint.ap
              | Stmt.Llocal _ | Stmt.Lstatic _ -> ())
            gens;
          let survivors = if killed then [] else [ Taint.T taint ] in
          survivors @ List.map (fun g -> Taint.T g) gens
      | Stmt.Identity (l, _) ->
          (* identity statements bind parameters; call_flow already
             rebased taints onto the parameter locals, so facts pass
             through (nothing can be rooted at [l] before its
             definition) *)
          ignore l;
          [ Taint.T taint ]
      | Stmt.If _ | Stmt.Goto _ | Stmt.Nop | Stmt.Return _ | Stmt.Throw _ ->
          [ Taint.T taint ]
      | Stmt.InvokeStmt _ -> [ Taint.T taint ])

(* map caller facts into a callee (argument passing) *)
let call_flow t (ni : ninfo) (inv : Stmt.invoke) (callee : minfo)
    (fact : Taint.fact) : Taint.fact list =
  M.incr m_flow_call;
  match fact with
  | Taint.Zero -> [ Taint.Zero ]
  | Taint.T taint -> (
      (* no activation here: an activation associated with this call
         site fires only once the call has *completed*, i.e. on the
         call-to-return edge, not on entry into the callee *)
      match callee.mi_body with
      | None -> []
      | Some _ ->
          let n = ni.ni_node in
          let this_l = callee.mi_this and params = callee.mi_params in
          let mapped = ref [] in
          (* static-rooted taints flow into callees unchanged *)
          if AP.is_static taint.Taint.ap then
            mapped := Taint.T taint :: !mapped;
          (* receiver -> @this *)
          (match (inv.Stmt.i_recv, this_l) with
          | Some r, Some tl -> (
              match
                AP.rebase ~k:(k t) ~from:(AP.of_local r)
                  ~to_:(AP.of_local tl) taint.Taint.ap
              with
              | Some ap -> mapped := Taint.T (Taint.derive taint ~ap ~at:n) :: !mapped
              | None -> ())
          | _ -> ());
          (* actuals -> formals *)
          List.iteri
            (fun i arg ->
              match arg with
              | Stmt.Iloc a -> (
                  match List.assoc_opt i params with
                  | Some p -> (
                      match
                        AP.rebase ~k:(k t) ~from:(AP.of_local a)
                          ~to_:(AP.of_local p) taint.Taint.ap
                      with
                      | Some ap ->
                          mapped :=
                            Taint.T (Taint.derive taint ~ap ~at:n) :: !mapped
                      | None -> ())
                  | None -> ())
              | Stmt.Iconst _ -> ())
            inv.Stmt.i_args;
          !mapped)

(* map callee exit facts back to the caller *)
let return_flow t ~call:(cni : ninfo) ~(callee : minfo) ~exit_ni:(eni : ninfo)
    (inv : Stmt.invoke) (fact : Taint.fact) : Taint.fact list =
  M.incr m_flow_return;
  match fact with
  | Taint.Zero -> []
  | Taint.T taint -> (
      match callee.mi_body with
      | None -> []
      | Some _ ->
          let c = cni.ni_node in
          (* activation association: if this taint's activation lies in
             the callee (transitively), completing this call implies the
             activation executed (Section 4.2) *)
          (match taint.Taint.activation with
          | Some a when act_method_implies t ~activation:a callee.mi_key ->
              node_set_add t.act_sites a c;
              mkey_set_add t.act_methods a c.Icfg.n_method
          | _ -> ());
          let this_l = callee.mi_this and params = callee.mi_params in
          let out = ref [] in
          let add taint' =
            out := taint' :: !out;
            (* a heap taint arriving in the caller may have caller-side
               aliases: spawn a new search at the call site *)
            if
              (not (AP.is_static taint'.Taint.ap))
              && AP.length taint'.Taint.ap > 0
            then ()
          in
          if AP.is_static taint.Taint.ap then
            add (Taint.derive taint ~ap:taint.Taint.ap ~at:c);
          (* @this -> receiver: only heap mutations travel back *)
          (match (inv.Stmt.i_recv, this_l) with
          | Some r, Some tl when AP.length taint.Taint.ap > 0 -> (
              match
                AP.rebase ~k:(k t) ~from:(AP.of_local tl)
                  ~to_:(AP.of_local r) taint.Taint.ap
              with
              | Some ap -> add (Taint.derive taint ~ap ~at:c)
              | None -> ())
          | _ -> ());
          (* formals -> actuals: only field-bearing paths (a callee
             cannot reassign the caller's local itself) *)
          List.iteri
            (fun i arg ->
              match (arg, List.assoc_opt i params) with
              | Stmt.Iloc a, Some p when AP.length taint.Taint.ap > 0 -> (
                  match
                    AP.rebase ~k:(k t) ~from:(AP.of_local p)
                      ~to_:(AP.of_local a) taint.Taint.ap
                  with
                  | Some ap -> add (Taint.derive taint ~ap ~at:c)
                  | None -> ())
              | _ -> ())
            inv.Stmt.i_args;
          (* return value *)
          (match (eni.ni_stmt.Stmt.s_kind, cni.ni_stmt.Stmt.s_kind) with
          | Stmt.Return (Some (Stmt.Iloc rl)), Stmt.Assign (Stmt.Llocal x, _)
            -> (
              match
                AP.rebase ~k:(k t) ~from:(AP.of_local rl)
                  ~to_:(AP.of_local x) taint.Taint.ap
              with
              | Some ap -> add (Taint.derive taint ~ap ~at:c)
              | None -> ())
          | _ -> ());
          List.map (fun tt -> Taint.T tt) !out)

(* sink detection at a call site *)
let check_sink t cx (ni : ninfo) (ci : callinfo) (inv : Stmt.invoke)
    (fact : Taint.fact) =
  match fact with
  | Taint.Zero -> ()
  | Taint.T taint ->
      if taint.Taint.active then begin
        match ci.ci_sink with
        | None -> ()
        | Some cat ->
            let hits =
              List.exists
                (fun arg ->
                  match arg with
                  | Stmt.Iloc a -> (
                      match taint.Taint.ap.AP.base with
                      | AP.Bloc b -> Stmt.equal_local a b
                      | AP.Bstatic _ -> false)
                  | Stmt.Iconst _ -> false)
                inv.Stmt.i_args
            in
            if hits then
              report t ~cx ~taint ~source:taint.Taint.source
                ~sink_node:ni.ni_node ~sink_tag:ni.ni_stmt.Stmt.s_tag
                ~sink_cat:cat ()
      end

(* source generation at a call site (return-value and UI sources);
   the result is node-constant and cached in the callinfo *)
let gen_sources t (ni : ninfo) (inv : Stmt.invoke) ret_local : Taint.t list =
  let n = ni.ni_node in
  let stmt = ni.ni_stmt in
  match ret_local with
  | None -> []
  | Some x -> (
      let mk cat desc =
        let source =
          Taint.{ si_category = cat; si_node = n; si_tag = stmt.Stmt.s_tag;
                  si_desc = desc }
        in
        [ Taint.make ~ap:(AP.of_local x) ~source ~at:n () ]
      in
      match Srcsink_mgr.return_source t.mgr inv with
      | Some cat ->
          mk cat
            (Printf.sprintf "%s.%s()" inv.Stmt.i_sig.Types.m_class
               inv.Stmt.i_sig.Types.m_name)
      | None -> (
          match
            Srcsink_mgr.ui_source t.mgr
              ~body:(Option.get ni.ni_minfo.mi_body)
              ~at:n.Icfg.n_idx inv
          with
          | Some ctl ->
              mk SS.Password
                (Printf.sprintf "password field %s (layout %s)"
                   ctl.Fd_frontend.Layout.ctl_name
                   ctl.Fd_frontend.Layout.ctl_layout)
          | None -> []))

(* wrapper / native / default-model effects for one incoming fact *)
let library_effects t (ni : ninfo) ret_local (inv : Stmt.invoke) effects
    (fact : Taint.fact) : Taint.t list =
  match fact with
  | Taint.Zero -> []
  | Taint.T taint ->
      let n = ni.ni_node in
      let taint = maybe_activate t n taint in
      let arg_local i =
        match List.nth_opt inv.Stmt.i_args i with
        | Some (Stmt.Iloc a) -> Some a
        | _ -> None
      in
      let origin_matches (origin : Fd_frontend.Rules.origin) =
        let rooted l =
          match taint.Taint.ap.AP.base with
          | AP.Bloc b -> Stmt.equal_local b l
          | AP.Bstatic _ -> false
        in
        match origin with
        | Fd_frontend.Rules.From_recv -> (
            match inv.Stmt.i_recv with Some r -> rooted r | None -> false)
        | Fd_frontend.Rules.From_any_arg ->
            List.exists
              (function Stmt.Iloc a -> rooted a | Stmt.Iconst _ -> false)
              inv.Stmt.i_args
        | Fd_frontend.Rules.From_arg i -> (
            match arg_local i with Some a -> rooted a | None -> false)
      in
      let target_local (tgt : Fd_frontend.Rules.target) =
        match tgt with
        | Fd_frontend.Rules.To_ret -> ret_local
        | Fd_frontend.Rules.To_recv -> inv.Stmt.i_recv
        | Fd_frontend.Rules.To_arg i -> arg_local i
      in
      List.filter_map
        (fun (eff : Fd_frontend.Rules.effect) ->
          if origin_matches eff.Fd_frontend.Rules.eff_from then
            match target_local eff.Fd_frontend.Rules.eff_to with
            | Some l ->
                let g = Taint.derive taint ~ap:(AP.of_local l) ~at:n in
                (* writing taint into the receiver/argument heap object
                   may create aliases worth searching for *)
                Some g
            | None -> None
          else None)
        effects

(* default model for un-modelled phantom/native methods: the return
   value becomes tainted if the receiver or any argument is (the
   paper's "neither entirely sound nor maximally precise, but the best
   practical approximation") — and for *native* methods additionally
   the arguments become tainted. *)
let default_library_effects ~native : Fd_frontend.Rules.effect list =
  let open Fd_frontend.Rules in
  let base =
    [ { eff_to = To_ret; eff_from = From_any_arg };
      { eff_to = To_ret; eff_from = From_recv } ]
  in
  if native then
    base
    @ [ { eff_to = To_arg 0; eff_from = From_any_arg };
        { eff_to = To_arg 1; eff_from = From_any_arg };
        { eff_to = To_arg 2; eff_from = From_any_arg } ]
  else base

let is_native_target t (inv : Stmt.invoke) =
  match
    Scene.resolve_concrete t.scene inv.Stmt.i_sig.Types.m_class
      (inv.Stmt.i_sig.Types.m_name, inv.Stmt.i_sig.Types.m_params)
  with
  | Some (_, m) -> m.Jclass.jm_native
  | None -> false

(* ---------------- forward solver main loop case: call node -------- *)

(* resolve the node-constant call-site data once: sink category,
   wrapper shortcut, return local, generated sources and the effect
   list applied on the call-to-return edge *)
let callinfo_of t (ni : ninfo) (inv : Stmt.invoke) =
  match ni.ni_call with
  | Some ci -> ci
  | None ->
      let ret_local =
        match ni.ni_stmt.Stmt.s_kind with
        | Stmt.Assign (Stmt.Llocal x, Stmt.Einvoke _) -> Some x
        | _ -> None
      in
      let wrapper = Srcsink_mgr.wrapper_effects t.wrappers t.mgr inv in
      let c2r =
        match wrapper with
        | Some effs -> Some effs
        | None ->
            if callees t ni = [] then
              (* un-analysable target: explicit native rule or the
                 default black-box model *)
              Some
                (match Srcsink_mgr.wrapper_effects t.natives t.mgr inv with
                | Some effs -> effs
                | None ->
                    default_library_effects ~native:(is_native_target t inv))
            else None
      in
      let ci =
        {
          ci_sink = Srcsink_mgr.sink t.mgr inv;
          ci_wrapper = wrapper;
          ci_ret = ret_local;
          ci_sources = gen_sources t ni inv ret_local;
          ci_c2r = c2r;
        }
      in
      ni.ni_call <- Some ci;
      ci

(* rewrite [m.invoke(thisArg, args...)] as the direct virtual call it
   resolves to (reflection precision pass): the first reflective
   argument becomes the receiver, the rest the actuals, so the
   standard [call_flow]/[return_flow] parameter mapping lines up *)
let transform_reflective (inv : Stmt.invoke) : Stmt.invoke option =
  match inv.Stmt.i_args with
  | this_arg :: rest ->
      let recv =
        match this_arg with Stmt.Iloc l -> Some l | Stmt.Iconst _ -> None
      in
      Some { inv with Stmt.i_kind = Stmt.Virtual; i_recv = recv; i_args = rest }
  | [] -> None

(* the transformed invoke to map callee exit facts through: reflective
   edges return through the rewritten call, everything else through
   the syntactic one *)
let return_invoke t (c : ninfo) (callee_key : Mkey.t) (inv : Stmt.invoke) :
    Stmt.invoke =
  if
    (prec t).Config.reflection
    && List.exists (Mkey.equal callee_key)
         (Icfg.refl_callees t.icfg c.ni_node)
  then match transform_reflective inv with Some ri -> ri | None -> inv
  else inv

let process_call_fw t cx (ni : ninfo) (fact : Taint.fact) inv =
  let ci = callinfo_of t ni inv in
  check_sink t cx ni ci inv fact;
  let callee_list = callees t ni in
  let node_succs = succs t ni in
  (* descend into analysable callees unless a wrapper shortcut is
     defined (wrappers are exclusive, Section 5); [call_inv] is the
     invoke to map arguments through (the transformed one for
     reflective edges) *)
  let descend call_inv (callee : minfo) =
    let entry_facts = call_flow t ni call_inv callee fact in
    if entry_facts <> [] then begin
      let s_callee = start_ni t callee in
      List.iter
        (fun d3 ->
          let cx_callee = cctx t callee d3 in
          add_incoming t t.fw cx_callee (ni, cx);
          if not (inject_stored_summaries t cx_callee) then
            propagate_fw ~kind:Prov.Call t cx_callee s_callee d3;
          List.iter
            (fun (e, d4) ->
              M.incr m_summary_apps;
              let rets =
                return_flow t ~call:ni ~callee ~exit_ni:e call_inv d4
              in
              List.iter
                (fun r ->
                  List.iter
                    (fun d5 ->
                      (match d5 with
                      | Taint.T tt when AP.length tt.Taint.ap > 0 ->
                          spawn_alias_search t cx ni tt tt.Taint.ap
                      | _ -> ());
                      propagate_fw ~kind:Prov.Return t cx r d5)
                    rets)
                node_succs)
            (summaries_of t.fw cx_callee))
        entry_facts
    end
  in
  if callee_list <> [] && ci.ci_wrapper = None then
    List.iter (descend inv) callee_list;
  (* reflective descent (precision pass): constant-string-resolved
     [Method.invoke] targets, analysed through the transformed direct
     invoke *)
  (if (prec t).Config.reflection then
     match Icfg.refl_callees t.icfg ni.ni_node with
     | [] -> ()
     | refl_keys -> (
         match transform_reflective inv with
         | None -> ()
         | Some rinv ->
             List.iter
               (fun mk ->
                 if t.in_slice mk then descend rinv (minfo_of t mk))
               refl_keys));
  (* call-to-return: sources, library models, pass-through *)
  M.incr m_flow_c2r;
  let derived =
    match fact with
    | Taint.Zero -> List.map (fun g -> Taint.T g) ci.ci_sources
    | Taint.T _ -> (
        match ci.ci_c2r with
        | Some effs ->
            List.map
              (fun g -> Taint.T g)
              (library_effects t ni ci.ci_ret inv effs fact)
        | None -> [])
  in
  (* heap writes performed by library effects (e.g. putExtra tainting
     the receiver) get alias searches too *)
  List.iter
    (function
      | Taint.T (g : Taint.t) -> (
          match g.Taint.ap.AP.base with
          | AP.Bloc l ->
              let is_ret =
                match ci.ci_ret with
                | Some x -> Stmt.equal_local x l
                | None -> false
              in
              if not is_ret then spawn_alias_search t cx ni g g.Taint.ap
          | AP.Bstatic _ -> ())
      | Taint.Zero -> ())
    derived;
  let pass_through =
    match fact with
    | Taint.Zero -> [ Taint.Zero ]
    | Taint.T taint ->
        let taint = maybe_activate t ni.ni_node taint in
        let killed =
          match (ci.ci_ret, taint.Taint.ap.AP.base) with
          | Some x, AP.Bloc b -> Stmt.equal_local x b
          | _ -> false
        in
        if killed then [] else [ Taint.T taint ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun d -> propagate_fw ~kind:Prov.Call_to_return t cx r d)
        (pass_through @ derived))
    node_succs

let process_exit_fw t cx (ni : ninfo) (fact : Taint.fact) =
  if add_summary t t.fw cx (ni, fact) then begin
    List.iter
      (fun ((c : ninfo), caller_cx) ->
        match c.ni_invoke with
        | None -> ()
        | Some inv ->
            let inv = return_invoke t c cx.cc_proc.mi_key inv in
            let rets =
              return_flow t ~call:c ~callee:cx.cc_proc ~exit_ni:ni inv fact
            in
            List.iter
              (fun r ->
                List.iter
                  (fun d5 ->
                    (match d5 with
                    | Taint.T tt when AP.length tt.Taint.ap > 0 ->
                        spawn_alias_search t caller_cx c tt tt.Taint.ap
                    | _ -> ());
                    propagate_fw ~kind:Prov.Return t caller_cx r d5)
                  rets)
              (succs t c))
      (incoming_of t.fw cx);
    (* <clinit> exits reached through first-use edges (precision pass)
       have no syntactic call site: relay static-rooted facts,
       context-insensitively, to the successors of every first-use
       site (a class initializer runs at most once, before any of
       them) *)
    if
      (prec t).Config.clinit
      && String.equal ni.ni_node.Icfg.n_method.Mkey.mk_name "<clinit>"
    then
      match fact with
      | Taint.T taint when AP.is_static taint.Taint.ap ->
          List.iter
            (fun site ->
              let sni = ninfo_of t site in
              let site_cx = cctx t sni.ni_minfo Taint.Zero in
              List.iter
                (fun s -> propagate_fw ~kind:Prov.Return t site_cx s fact)
                (succs t sni))
            (Icfg.clinit_sites t.icfg ni.ni_node.Icfg.n_method)
      | _ -> ()
  end

(* first-use <clinit> placement (precision pass): seed the class
   initializer at its trigger site.  The edge is context-insensitive —
   <clinit> runs at most once per class — so the zero fact and
   static-rooted taints enter under the callee's own context; exits
   are handled by {!process_exit_fw} above. *)
let process_clinit_fw t (ni : ninfo) (fact : Taint.fact) =
  match Icfg.clinit_callees t.icfg ni.ni_node with
  | [] -> ()
  | keys ->
      let entry =
        match fact with
        | Taint.Zero -> Some fact
        | Taint.T taint ->
            if AP.is_static taint.Taint.ap then Some fact else None
      in
      List.iter
        (fun mk ->
          if t.in_slice mk then begin
            let callee = minfo_of t mk in
            match (callee.mi_body, entry) with
            | Some _, Some d ->
                propagate_fw ~kind:Prov.Call t (cctx t callee d)
                  (start_ni t callee) d
            | _ -> ()
          end)
        keys

let process_fw t cx (ni : ninfo) fact =
  if (prec t).Config.clinit then process_clinit_fw t ni fact;
  if ni.ni_is_exit then begin
    (* sinks can also sit on an exit-adjacent call; exits themselves
       carry no invoke in µJimple *)
    process_exit_fw t cx ni fact
  end
  else
    match ni.ni_invoke with
    | Some inv -> process_call_fw t cx ni fact inv
    | None ->
        let outs = normal_flow t cx ni fact in
        List.iter
          (fun m -> List.iter (fun d -> propagate_fw t cx m d) outs)
          (succs t ni)

(* ---------------- backward solver (Algorithm 2) ---------------- *)

(* inject a discovered alias into the forward analysis at node [ni] *)
let inject_fw t cx (ni : ninfo) (alias : Taint.t) =
  M.incr m_fw_injections;
  propagate_fw ~kind:Prov.Inject t cx ni (Taint.T alias)

(* backward descent into a call's callees for a fact rooted at the
   receiver or an actual argument: the callee may have created aliases
   involving those objects (Algorithm 2, call-statement case) *)
let backward_descend_args t cx (mni : ninfo) (inv : Stmt.invoke)
    (taint : Taint.t) =
  List.iter
    (fun (callee : minfo) ->
      match callee.mi_body with
      | None -> ()
      | Some _ ->
          let m = mni.ni_node in
          let this_l = callee.mi_this and params = callee.mi_params in
          let descend ap_from ap_to =
            match
              AP.rebase ~k:(k t) ~from:ap_from ~to_:ap_to taint.Taint.ap
            with
            | Some ap ->
                let d = Taint.derive taint ~ap ~at:m in
                let cx_callee = cctx t callee (Taint.T d) in
                add_incoming t t.fw cx_callee (mni, cx);
                List.iter
                  (fun e_ni ->
                    propagate_bw ~kind:Prov.Backward t cx_callee e_ni
                      (Taint.T d))
                  (exit_nis t callee)
            | None -> ()
          in
          (match (inv.Stmt.i_recv, this_l) with
          | Some r, Some tl when AP.length taint.Taint.ap > 0 ->
              descend (AP.of_local r) (AP.of_local tl)
          | _ -> ());
          List.iteri
            (fun i arg ->
              match (arg, List.assoc_opt i params) with
              | Stmt.Iloc a, Some p when AP.length taint.Taint.ap > 0 ->
                  descend (AP.of_local a) (AP.of_local p)
              | _ -> ())
            inv.Stmt.i_args)
    (callees t mni)

(* backward flow across the *predecessor* statement [m] for fact
   valid before [n]; may inject forward facts and descend into
   callees *)
let backward_step t cx (mni : ninfo) (taint : Taint.t) =
  M.incr m_bw_steps;
  let m = mni.ni_node in
  let stmt = mni.ni_stmt in
  let arr = (prec t).Config.array_index in
  let continue_with tt = propagate_bw ~kind:Prov.Backward t cx mni (Taint.T tt) in
  match stmt.Stmt.s_kind with
  | Stmt.Assign (lv, e) -> (
      let lap = ap_of_lvalue ~arr lv in
      let strong_def =
        (* only a whole-local definition removes the path upstream *)
        match lv with Stmt.Llocal _ -> true | _ -> false
      in
      if AP.has_prefix ~prefix:lap taint.Taint.ap then begin
        (* the written location is (a prefix of) our alias: rewrite
           through the assignment *)
        match e with
        | Stmt.Einvoke inv ->
            (* value came from a callee's return: descend (Algorithm 2,
               call-statement case) *)
            List.iter
              (fun (callee : minfo) ->
                match callee.mi_body with
                | None -> ()
                | Some _ ->
                    List.iter
                      (fun (e_ni : ninfo) ->
                        match e_ni.ni_stmt.Stmt.s_kind with
                        | Stmt.Return (Some (Stmt.Iloc rl)) -> (
                            match
                              AP.rebase ~k:(k t) ~from:lap
                                ~to_:(AP.of_local rl) taint.Taint.ap
                            with
                            | Some ap ->
                                let d = Taint.derive taint ~ap ~at:m in
                                let cx_callee = cctx t callee (Taint.T d) in
                                add_incoming t t.fw cx_callee (mni, cx);
                                propagate_bw ~kind:Prov.Backward t cx_callee
                                  e_ni (Taint.T d)
                            | None -> ())
                        | _ -> ())
                      (exit_nis t callee))
              (callees t mni);
            ignore inv
        | Stmt.Enew _ | Stmt.Enewarray _ ->
            (* freshly allocated: nothing aliases it upstream *)
            ()
        | _ -> (
            match alias_ap_of_expr ~arr e with
            | Some rap -> (
                match
                  AP.rebase ~k:(k t) ~from:lap ~to_:rap taint.Taint.ap
                with
                | Some ap ->
                    let d = Taint.derive taint ~ap ~at:m in
                    (* found an upstream alias: continue the search and
                       hand it to the forward analysis (Algorithm 2,
                       line 17) *)
                    inject_fw t cx mni d;
                    continue_with d
                | None -> ())
            | None ->
                (* rhs is a constant or operator result: value created
                   here *)
                ())
      end
      else begin
        (* unrelated write; but the rhs may *read* our alias path,
           making the lhs a downstream alias (Figure 2, step 7:
           b = a.g with fact a.g.f gives alias b.f).  The alias holds
           only *after* [m] (the statement defines it), so the forward
           injection lands on [m]'s successors; and the new alias is
           itself searched backward so chains of heap assignments
           (o.a = c1; c1.a = c2; ...) compose. *)
        ignore strong_def;
        (match alias_ap_of_expr ~arr e with
        | Some rap -> (
            match AP.rebase ~k:(k t) ~from:rap ~to_:lap taint.Taint.ap with
            | Some ap ->
                let d = Taint.derive taint ~ap ~at:m in
                List.iter (fun s -> inject_fw t cx s d) (succs t mni);
                continue_with d
            | None -> ())
        | None -> ());
        (* a call whose result is stored elsewhere may still have
           mutated our alias's object through the arguments *)
        (match e with
        | Stmt.Einvoke inv -> backward_descend_args t cx mni inv taint
        | _ -> ());
        (* does this statement *define* our base outright? then the
           path does not exist upstream *)
        let killed =
          match lv with
          | Stmt.Llocal x -> (
              match taint.Taint.ap.AP.base with
              | AP.Bloc b -> Stmt.equal_local b x
              | AP.Bstatic _ -> false)
          | _ -> false
        in
        if not killed then continue_with taint
      end)
  | Stmt.InvokeStmt inv ->
      (* a call the fact merely passes: descend with facts rooted at
         the receiver or actuals *)
      backward_descend_args t cx mni inv taint;
      continue_with taint
  | Stmt.Identity _ | Stmt.If _ | Stmt.Goto _ | Stmt.Nop | Stmt.Return _
  | Stmt.Throw _ ->
      continue_with taint

let process_bw t cx (ni : ninfo) (fact : Taint.fact) =
  match fact with
  | Taint.Zero -> ()
  | Taint.T taint ->
      if ni.ni_node.Icfg.n_idx = 0 then begin
        (* Algorithm 2, method's-first-statement case: hand over to the
           forward analysis (which owns all returning into callers) and
           kill the backward fact *)
        ignore (add_summary t t.bw cx (ni, fact));
        inject_fw t cx ni taint
      end
      else List.iter (fun m -> backward_step t cx m taint) (preds t ni)

(* ---------------- driver ---------------- *)

(** [run t ~entries] seeds the zero fact at each entry method and runs
    both solvers to exhaustion (or to the propagation budget). *)
(* rough live byte estimates for the gauges: hash-table entries are
   costed at key tuple + bucket overhead (8 words for the I3 tables),
   association-list cells at ~6 words, interned facts at ~16 words *)
let bytes_of_words w = w * (Sys.word_size / 8)

let solver_bytes s =
  let i3 tbl = I3_tbl.length tbl * 8 in
  let lists tbl =
    Int_tbl.fold (fun _ cell acc -> acc + 2 + (6 * List.length !cell)) tbl 0
  in
  bytes_of_words
    (i3 s.s_edges + i3 s.s_sum_seen + i3 s.s_inc_seen + lists s.s_summaries
   + lists s.s_incoming)

let publish_memory_gauges t =
  M.set_int g_bytes_fw (solver_bytes t.fw);
  M.set_int g_bytes_bw (solver_bytes t.bw);
  M.set_int g_bytes_facts (bytes_of_words (Fact_pool.size t.facts * 16));
  M.set_int g_bytes_prov
    (match t.prov with Some p -> Prov.approx_bytes p | None -> 0)

(* ---------------- summary-store persistence ---------------- *)

(* Write-behind persistence after a [Complete] solve: hand every
   store-eligible context's end summaries — plus the sink reports
   recorded anywhere in its context subtree (the calls it descended
   into, transitively) — to the store hooks.  Contexts whose summaries
   were themselves injected are skipped: the store already holds them.
   Partial solves persist nothing; a truncated summary would replay as
   the wrong answer. *)
let persist_summaries t (h : Summary.hooks) =
  (* invert the incoming-call relation into context children *)
  let children : cctx list ref Int_tbl.t = Int_tbl.create 256 in
  I2_tbl.iter
    (fun _ cx_callee ->
      List.iter
        (fun ((_ : ninfo), (caller_cx : cctx)) ->
          let cell = int_cell children caller_cx.cc_id in
          cell := cx_callee :: !cell)
        (incoming_of t.fw cx_callee))
    t.cctxs;
  let reports_in_subtree cx =
    let seen_cx = Int_tbl.create 16 in
    let seen_r = Hashtbl.create 8 in
    let acc = ref [] in
    let rec go (c : cctx) =
      if not (Int_tbl.mem seen_cx c.cc_id) then begin
        Int_tbl.replace seen_cx c.cc_id ();
        (match Int_tbl.find_opt t.cx_reports c.cc_id with
        | Some rs ->
            List.iter
              (fun r ->
                let key = Summary.report_key r in
                if not (Hashtbl.mem seen_r key) then begin
                  Hashtbl.replace seen_r key ();
                  acc := r :: !acc
                end)
              (List.rev !rs)
        | None -> ());
        match Int_tbl.find_opt children c.cc_id with
        | Some cs -> List.iter go !cs
        | None -> ()
      end
    in
    go cx;
    List.rev !acc
  in
  let per_method : Summary.persist_context list ref Mkey.Tbl.t =
    Mkey.Tbl.create 64
  in
  I2_tbl.iter
    (fun _ cx ->
      if
        (not (Int_tbl.mem t.injected_cxs cx.cc_id))
        && Summary.eligible_entry cx.cc_fact
        && h.Summary.h_eligible cx.cc_proc.mi_key
      then begin
        let pc =
          {
            Summary.pc_entry = cx.cc_fact;
            pc_summaries =
              List.map
                (fun ((ni : ninfo), f) -> (ni.ni_node.Icfg.n_idx, f))
                (summaries_of t.fw cx);
            pc_reports = reports_in_subtree cx;
          }
        in
        let cell =
          match Mkey.Tbl.find_opt per_method cx.cc_proc.mi_key with
          | Some c -> c
          | None ->
              let c = ref [] in
              Mkey.Tbl.replace per_method cx.cc_proc.mi_key c;
              c
        in
        cell := pc :: !cell
      end)
    t.cctxs;
  Mkey.Tbl.iter (fun mk cell -> h.Summary.h_persist ~callee:mk !cell) per_method

let run t ~entries =
  (* arm the flight recorder for this solve: a later dump must never
     mix events from a previous run, and even a first-tick chaos fault
     (which can fire before any pop) must find a non-empty ring *)
  Flight.clear ();
  Flight.mark (Printf.sprintf "solve.start entries=%d" (List.length entries));
  List.iter
    (fun m ->
      let start = ninfo_of t (Icfg.start_node t.icfg m) in
      let cx = cctx t start.ni_minfo Taint.Zero in
      propagate_fw ~kind:Prov.Seed t cx start Taint.Zero)
    entries;
  let profiling = t.cfg.Config.profile in
  let track = t.prov <> None in
  let pop_item solver process =
    let cx, ni, fact = Queue.pop solver.s_work in
    M.incr m_worklist_pops;
    (* remember the popped pair: every propagation performed while
       processing it records this pair as its provenance predecessor *)
    if track then begin
      t.cur_node <- ni.ni_id;
      t.cur_fact <- fst (intern_fact t fact)
    end;
    Flight.record (fun () ->
        Printf.sprintf "%s %s %s"
          (if solver == t.fw then "fw.pop" else "bw.pop")
          (Icfg.string_of_node ni.ni_node)
          (Taint.fact_to_string fact));
    if profiling then begin
      let t0 = Fd_obs.Profile.now () in
      process t cx ni fact;
      Fd_obs.Profile.add_pop (prof_cell ni.ni_minfo)
        ~seconds:(Fd_obs.Profile.now () -. t0)
    end
    else process t cx ni fact
  in
  let rec loop () =
    (* cooperative stop: once the budget trips (cap, deadline or
       cancellation) the remaining worklist is abandoned — results so
       far stay valid as a partial under-approximation *)
    if Fd_resilience.Budget.stopped t.budget then ()
    else if not (Queue.is_empty t.fw.s_work) then begin
      pop_item t.fw process_fw;
      loop ()
    end
    else if not (Queue.is_empty t.bw.s_work) then begin
      pop_item t.bw process_bw;
      loop ()
    end
  in
  loop ();
  (match t.store with
  | Some h
    when Fd_resilience.Outcome.is_complete
           (Fd_resilience.Budget.outcome t.budget) ->
      persist_summaries t h
  | _ -> ());
  (* publish pool statistics so the interning layer is observable *)
  M.set_int g_intern_facts (Fact_pool.size t.facts);
  M.set_int g_intern_fact_hits (Fact_pool.hits t.facts);
  M.set_int g_intern_fact_misses (Fact_pool.misses t.facts);
  M.set_int g_intern_nodes t.n_ninfos;
  M.set_int g_intern_methods t.n_minfos;
  M.set_int g_intern_ctxs t.n_cctxs;
  publish_memory_gauges t;
  t.findings <- List.rev t.findings

(** [findings t] is the reported source-to-sink flows. *)
let findings t = t.findings

(** [results_at t n] is the taints that may hold just before [n]
    (forward solver facts, for tests and inspection). *)
let results_at t n =
  match Node_tbl.find_opt t.ninfos n with
  | None -> []
  | Some ni -> (
      match Int_tbl.find_opt t.results_list ni.ni_id with
      | Some c -> !c
      | None -> [])

(** [propagation_count t] is the number of path-edge propagations
    performed (the work metric reported by the benchmarks). *)
let propagation_count t = Fd_resilience.Budget.propagations t.budget

(** [outcome t] is the typed termination state of the solve:
    [Complete], or the budget's stop reason. *)
let outcome t = Fd_resilience.Budget.outcome t.budget

(** [budget t] is the engine's budget handle (e.g. for cooperative
    cancellation from a signal handler). *)
let budget t = t.budget

(** [budget_exhausted t] reports whether the propagation budget was
    hit (results may then be incomplete); see {!outcome} for the full
    taxonomy. *)
let budget_exhausted t =
  Fd_resilience.Outcome.equal (outcome t) Fd_resilience.Outcome.Budget_exhausted
