(** Engine configuration: FlowDroid's defaults plus the ablation
    switches the benchmark harness sweeps (DESIGN.md experiments
    A1–A3, F3, L3). *)

(** The opt-in precision pass suite (DESIGN.md, precision passes).
    Every field defaults to [false]; all-flags-off output is
    bit-identical to the faithful Table 1 reproduction. *)
type precision = {
  must_alias : bool;
      (** flow-sensitive must-alias analysis enabling strong updates:
          a field write through a must-aliased base kills the old
          taint (Button2-class FPs) *)
  array_index : bool;
      (** constant-index array cells as access-path pseudo-fields,
          widening to the whole-array summary on non-constant indices
          (ArrayAccess1/ListAccess1-class FPs) *)
  reflection : bool;
      (** constant-string reflection resolution:
          [Class.forName]/[getMethod]/[invoke] chains with
          string-constant arguments get real call edges *)
  clinit : bool;
      (** first-use-site [<clinit>] placement instead of
          program-start modelling (StaticInitialization1-class FNs) *)
}

let no_precision =
  { must_alias = false; array_index = false; reflection = false; clinit = false }

let all_precision =
  { must_alias = true; array_index = true; reflection = true; clinit = true }

let precision_enabled p = p <> no_precision

let string_of_precision p =
  if p = no_precision then "none"
  else if p = all_precision then "all"
  else
    String.concat ","
      (List.filter_map
         (fun (on, name) -> if on then Some name else None)
         [
           (p.must_alias, "must-alias");
           (p.array_index, "array-index");
           (p.reflection, "reflection");
           (p.clinit, "clinit");
         ])

(** [precision_of_string s] parses a comma-separated pass list
    ("must-alias,clinit"), or "all"/"none". *)
let precision_of_string s =
  let parts =
    List.filter_map
      (fun w -> match String.trim w with "" -> None | w -> Some w)
      (String.split_on_char ',' s)
  in
  List.fold_left
    (fun acc w ->
      Result.bind acc (fun p ->
          match w with
          | "none" -> Ok p
          | "all" -> Ok all_precision
          | "must-alias" -> Ok { p with must_alias = true }
          | "array-index" -> Ok { p with array_index = true }
          | "reflection" -> Ok { p with reflection = true }
          | "clinit" -> Ok { p with clinit = true }
          | w ->
              Error
                (Printf.sprintf
                   "unknown precision pass %S (expected \
                    all|none|must-alias|array-index|reflection|clinit)"
                   w)))
    (Ok no_precision) parts

type t = {
  max_access_path : int;
      (** maximal access-path length [k]; the paper's default is 5 *)
  lifecycle : bool;
      (** model the component lifecycle via the dummy main; when off,
          each lifecycle/callback method is analysed as an isolated
          entry point (the comparator-tool behaviour) *)
  callbacks : bool;  (** discover and include callbacks *)
  per_component_callbacks : bool;
      (** associate callbacks with their owning component (paper
          default); off = all callbacks attached to every component *)
  context_injection : bool;
      (** inject the forward context into spawned backward searches
          (Figure 3); off = the naive 0-rooted handover *)
  activation_statements : bool;
      (** flow-sensitive alias activation (Listing 3); off = aliases
          are born active, i.e. Andromeda-style flow-insensitivity *)
  alias_search : bool;
      (** run the on-demand backward alias analysis at all *)
  cg_algorithm : Fd_callgraph.Callgraph.algorithm;
  max_propagations : int;
      (** safety valve on solver work (path-edge budget); analyses of
          generated corpora are bounded, mirroring FlowDroid's
          timeouts *)
  deadline_s : float option;
      (** wall-clock deadline for the solve, in seconds; [None] =
          unlimited.  Checked cooperatively inside the worklist loops;
          expiry yields a [Deadline_exceeded] outcome with partial
          results rather than an abort. *)
  precision : precision;
      (** the opt-in precision pass suite; {!no_precision} (the
          default) reproduces the paper's documented imprecisions *)
  provenance : bool;
      (** record provenance edges during the solve and attach witness
          paths to findings ([--explain]); off by default — with it
          off the solver output is byte-identical to a run without
          this feature compiled in *)
  profile : bool;
      (** attribute worklist pops, facts and time to methods in the
          per-method profiler ([--profile-out]) *)
  summary_store : string option;
      (** directory of the persistent cross-app summary store
          ([--summary-store DIR]); [None] (the default) disables the
          store entirely — output is byte-identical to a build without
          the store compiled in *)
  targeted : string list;
      (** demand-driven targeted mode ([--targeted SIG]): sink
          signature patterns (substring match on ["Class.method"],
          supertypes included).  When non-empty the analysis slices
          backward from matching sink invoke sites, extends the call
          graph only along the slice and reports only flows into
          matching sinks.  [[]] (the default) runs the full analysis
          with byte-identical output to a build without this mode. *)
  icc : bool;
      (** the ICC link-resolution tier ([--icc]): resolve intent send
          sites against manifest intent filters (IccTA-style), replace
          resolved intent-send sink findings with stitched end-to-end
          source→sink flows into the receiving component, report
          tainted [setResult] payloads handed to external callers, and
          surface the exported-component attack surface.  [false] (the
          default) keeps the paper's over-approximation — send = sink,
          reception = source — with byte-identical output. *)
}

(** [default] is the configuration the paper evaluates: k = 5, full
    lifecycle and callback modelling, context injection and activation
    statements on. *)
let default =
  {
    max_access_path = 5;
    lifecycle = true;
    callbacks = true;
    per_component_callbacks = true;
    context_injection = true;
    activation_statements = true;
    alias_search = true;
    cg_algorithm = Fd_callgraph.Callgraph.Cha;
    max_propagations = 2_000_000;
    deadline_s = None;
    precision = no_precision;
    provenance = false;
    profile = false;
    summary_store = None;
    targeted = [];
    icc = false;
  }

(** [degradation_ladder config] is the sequence of progressively
    cheaper configurations the fallback driver retries under when a
    run exhausts its budget: the original, then access-path bounds
    3 and 1, then k = 1 with the alias search disabled — trading
    field-sensitivity precision for termination the way FlowDroid
    trades precision for timeouts.  Rungs no cheaper than the one
    before them are dropped, so a ladder starting from an already
    cheap config is short. *)
let degradation_ladder config =
  let rung label c = (label, c) in
  let candidates =
    [
      rung "full" config;
      rung "k=3" { config with max_access_path = min 3 config.max_access_path };
      rung "k=1" { config with max_access_path = min 1 config.max_access_path };
      rung "k=1,no-alias"
        { config with
          max_access_path = min 1 config.max_access_path;
          alias_search = false;
        };
    ]
  in
  (* drop rungs identical to their predecessor (already-cheap bases) *)
  let rec dedup = function
    | (l1, c1) :: (_, c2) :: rest when c1 = c2 -> dedup ((l1, c1) :: rest)
    | r :: rest -> r :: dedup rest
    | [] -> []
  in
  dedup candidates
