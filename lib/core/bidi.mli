(** The bidirectional taint solver: Algorithms 1 and 2 of the paper.

    A forward IFDS taint solver interleaved with an on-demand backward
    alias solver, with the paper's two precision mechanisms:
    {e context injection} (a spawned backward edge inherits the forward
    path edge's context [⟨sp, d1⟩], so no facts arise along
    unrealizable paths — Figure 3) and {e activation statements}
    (aliases are born inactive and only activate once the forward
    analysis carries them across the heap write that taints them — or
    across a call whose call tree contains it — Listing 3).

    Both mechanisms, and the alias search itself, can be disabled
    through {!Config.t} for the ablation benchmarks. *)

open Fd_ir
open Fd_callgraph

(** One step of a provenance witness: a program point the derivation
    visited, its statement text, the solver fact holding there, and
    the flow-function kind that derived it from the previous step
    (["seed"], ["source"], ["normal"], ["call"], ["return"],
    ["call-to-return"], ["alias"], ["backward"], ["inject"]). *)
type witness_step = {
  ws_node : Icfg.node;
  ws_stmt : string;
  ws_fact : string;
  ws_kind : string;
}

type finding = {
  f_source : Taint.source_info;
  f_sink_node : Icfg.node;
  f_sink_tag : string option;
  f_sink_cat : Fd_frontend.Sourcesink.category;
  f_path : Icfg.node list;  (** full propagation path, source first *)
  f_witness : witness_step list;
      (** shortest source-to-sink derivation reconstructed from
          provenance edges, source step first and sink step last;
          [[]] unless {!Config.t.provenance} was on *)
}

type t

val create :
  ?budget:Fd_resilience.Budget.t ->
  ?store:Summary.hooks ->
  ?in_slice:(Fd_callgraph.Mkey.t -> bool) ->
  config:Config.t ->
  icfg:Icfg.t ->
  scene:Scene.t ->
  mgr:Srcsink_mgr.t ->
  wrappers:Fd_frontend.Rules.t ->
  natives:Fd_frontend.Rules.t ->
  unit ->
  t
(** [create ~config … ()] builds an engine.  Without [?budget] one is
    derived from the config ([max_propagations] plus [deadline_s]);
    pass an explicit budget to share a deadline across phases or to
    enable cooperative cancellation / chaos injection.  [?store]
    connects the persistent summary store (see {!Summary.make_hooks}):
    stored callee summaries are injected in place of descents, and
    freshly solved contexts are persisted write-behind after a
    complete solve.  Absent hooks ⇒ behaviour and output are
    byte-identical to a store-free build.  [?in_slice] is the targeted
    mode's membership predicate: both worklist loops (and the clinit /
    reflection descents) skip callees outside it; the default accepts
    everything and takes no new code path. *)

val run : t -> entries:Mkey.t list -> unit
(** [run t ~entries] seeds the zero fact at each entry method's start
    point and runs both solvers to exhaustion (or to the propagation
    budget). *)

val findings : t -> finding list
(** [findings t] is the reported source-to-sink flows, in discovery
    order. *)

val results_at : t -> Icfg.node -> Taint.t list
(** [results_at t n] is the taints that may hold just before [n]
    (forward-solver facts; for tests and inspection). *)

val propagation_count : t -> int
(** [propagation_count t] is the number of path-edge propagations
    performed by both solvers (the work metric the benchmarks
    report). *)

val outcome : t -> Fd_resilience.Outcome.t
(** [outcome t] is the typed termination state of the solve:
    [Complete], [Budget_exhausted], [Deadline_exceeded] or
    [Cancelled].  On any state but [Complete] the findings are a
    partial under-approximation. *)

val budget : t -> Fd_resilience.Budget.t
(** the engine's budget handle (for cooperative cancellation) *)

val budget_exhausted : t -> bool
(** [budget_exhausted t] reports whether
    {!Config.t.max_propagations} was hit; results may then be
    incomplete.  See {!outcome} for the full taxonomy. *)
