(** Persistent summary support (DESIGN.md §13).

    Stable, intern-order-independent structural encodings of the
    solver's facts; content-addressed transitive method digests;
    the analysis-config digest; and the hook interface through which
    the {!Bidi} solver reuses end summaries across processes.  The
    on-disk backend lives in the separate [fd_store] library and
    registers through {!provider} — with no backend linked (or
    [Config.summary_store = None]) every hook constructor returns
    [None] and the engine is byte-identical to a store-free build. *)

open Fd_callgraph
module Json = Fd_obs.Json
module SS = Fd_frontend.Sourcesink

val format_version : int
(** bumped on any change to the canonical encoding; part of both the
    config digest and the on-disk entry header *)

exception Decode_error of string
(** raised by the [dec_*] family on malformed input; hook code turns
    it into a store miss plus a diagnostic, never a crash *)

(** {1 Canonical structural encoding}

    Stable across independent intern pools, processes and machines:
    facts are encoded by names, types and statement coordinates, never
    by intern ids. *)

val enc_fact : entry_source:Taint.source_info option -> Taint.fact -> Json.t
(** [entry_source] marks the caller-carried source: a fact source
    equal to it encodes as the position-independent ["entry"]
    placeholder *)

val dec_fact : entry_source:Taint.source_info option -> Json.t -> Taint.fact
(** inverse of {!enc_fact}; the ["entry"] placeholder resolves to
    [entry_source].  Decoded facts carry no derivation links. *)

val enc_node : Icfg.node -> Json.t
val dec_node : Json.t -> Icfg.node

(** {1 Sink reports} *)

(** a leak detected inside a summarised subtree; stored with the
    summary edges and replayed on every hit, so skipping the subtree
    never loses a verdict *)
type sink_report = {
  sr_source : Taint.source_info;
  sr_sink : Icfg.node;
  sr_tag : string option;
  sr_cat : SS.category;
}

val report_key : sink_report -> string
(** dedup key, aligned with the engine's finding dedup *)

(** {1 Context keys} *)

val eligible_entry : Taint.fact -> bool
(** zero or plain active (no pending activation statement) — the only
    entry shapes whose summaries are position-independent *)

val entry_key : Taint.fact -> string
(** canonical context key of an eligible entry fact (source
    abstracted, so callers with distinct sources share a context) *)

val entry_source : Taint.fact -> Taint.source_info option

(** {1 Digests} *)

val config_allows : Config.t -> bool
(** the configurations whose semantics the store can replay: paper
    defaults for the flow-sensitivity switches, no provenance, no
    first-use [<clinit>] placement *)

val config_digest :
  config:Config.t ->
  sources:SS.t ->
  wrappers:Fd_frontend.Rules.t ->
  natives:Fd_frontend.Rules.t ->
  string
(** MD5 hex over every input that changes what a summary means:
    format version, k-limit, precision passes, call-graph algorithm,
    flow-sensitivity switches, rule-set digests *)

type method_entry = {
  me_digest : string;
      (** transitive Merkle body digest over the SCC condensation *)
  me_eligible : bool;
      (** false when the subtree contains a layout-dependent UI
          source *)
}

val digest_methods : Icfg.t -> method_entry Mkey.Tbl.t
(** digest every reachable bodied method of one app, bottom-up over
    the call-graph condensation *)

(** {1 Solver hooks} *)

(** what a store hit injects in place of descending into a callee *)
type injection = {
  inj_summaries : (int * Taint.fact) list;
      (** (exit statement index, decoded exit fact) *)
  inj_reports : sink_report list;  (** sources already substituted *)
}

(** one solved context of a method, as handed to {!hooks.h_persist} *)
type persist_context = {
  pc_entry : Taint.fact;
  pc_summaries : (int * Taint.fact) list;
  pc_reports : sink_report list;
}

type hooks = {
  h_eligible : Mkey.t -> bool;
  h_lookup : callee:Mkey.t -> entry:Taint.fact -> injection option;
  h_persist : callee:Mkey.t -> persist_context list -> unit;
}

(** {1 Backend provider} *)

(** the raw storage interface [fd_core] programs against; backends own
    framing, checksums, atomicity and merging, and must degrade to
    misses (never raise) on damaged entries *)
type backend = {
  be_load : method_digest:string -> Json.t option;
  be_store : method_digest:string -> payload:Json.t -> unit;
  be_diag : Fd_resilience.Diag.t -> unit;
}

val provider : (dir:string -> config_digest:string -> backend option) ref
(** set by [Fd_store.install ()] *)

val make_hooks :
  icfg:Icfg.t ->
  config:Config.t ->
  sources:SS.t ->
  wrappers:Fd_frontend.Rules.t ->
  natives:Fd_frontend.Rules.t ->
  hooks option
(** build the solver hooks for one run; [None] when the store is
    disabled, the config is outside {!config_allows}, or no backend is
    installed.  Digests every reachable method once. *)
