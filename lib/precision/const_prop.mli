(** Intraprocedural constant propagation for strings, class handles
    and reflective method handles.

    This is the small abstract interpretation behind the
    constant-string reflection resolver: it tracks which locals hold a
    known string literal, a [java.lang.Class] handle for a known class
    name, or a [java.lang.reflect.Method] handle resolved to a known
    (class, method-name) pair — mirroring the dynamic interpreter's
    concrete reflection model ([Class.forName] / [getClass] /
    [getMethod]).  Values meet by equality (differing values on two
    paths drop to unknown). *)

open Fd_ir

type value =
  | Vstr of string  (** local holds this exact string literal *)
  | Vclass of string  (** a [Class] handle for the named class *)
  | Vmethod of string * string
      (** a [Method] handle: (target class, method name) *)

type t

val analyze : Body.t -> t
(** [analyze body] runs the propagation to fixpoint over the CFG. *)

val value_at : t -> at:int -> Stmt.local -> value option
(** [value_at t ~at l] — the known value of [l] on every path reaching
    statement index [at] (before it executes), if any. *)

val imm_value : t -> at:int -> Stmt.imm -> value option
(** [imm_value] on an immediate: constants evaluate directly, locals
    via {!value_at}. *)
