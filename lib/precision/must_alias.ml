(* Flow-sensitive must-alias analysis as a partition dataflow.

   States are partitions of the locals, encoded as an [int array]
   mapping local index -> class representative, kept in a canonical
   form (classes numbered by first occurrence) so that structural
   equality detects fixpoints.  [None] encodes the unreachable state
   (top), which is the identity of the join. *)

open Fd_ir

type t = {
  ma_index : (string, int) Hashtbl.t;  (* local name -> dense index *)
  ma_in : int array option array;  (* per stmt: canonical partition *)
}

(* canonical form: relabel classes in order of first occurrence *)
let norm (p : int array) : int array =
  let map = Hashtbl.create 8 in
  let next = ref 0 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt map c with
      | Some c' -> c'
      | None ->
          let c' = !next in
          incr next;
          Hashtbl.add map c c';
          c')
    p

(* partition intersection: same class in the result iff same class in
   both inputs *)
let join (a : int array) (b : int array) : int array =
  let map = Hashtbl.create 8 in
  let next = ref 0 in
  norm
    (Array.init (Array.length a) (fun i ->
         let key = (a.(i), b.(i)) in
         match Hashtbl.find_opt map key with
         | Some c -> c
         | None ->
             let c = !next in
             incr next;
             Hashtbl.add map key c;
             c))

(* transfer one statement over a copy of the state *)
let transfer index (p : int array) (s : Stmt.t) : int array =
  let isolate x =
    match Hashtbl.find_opt index x.Stmt.l_name with
    | None -> p
    | Some i ->
        let p' = Array.copy p in
        (* a fresh class id guaranteed unused: the array length *)
        p'.(i) <- Array.length p';
        norm p'
  in
  let copy_into x y =
    match
      ( Hashtbl.find_opt index x.Stmt.l_name,
        Hashtbl.find_opt index y.Stmt.l_name )
    with
    | Some i, Some j ->
        let p' = Array.copy p in
        p'.(i) <- p'.(j);
        norm p'
    | _ -> p
  in
  match s.Stmt.s_kind with
  | Stmt.Assign (Stmt.Llocal x, Stmt.Eimm (Stmt.Iloc y)) -> copy_into x y
  | Stmt.Assign (Stmt.Llocal x, Stmt.Ecast (_, Stmt.Iloc y)) -> copy_into x y
  | Stmt.Assign (Stmt.Llocal x, _) -> isolate x
  | Stmt.Identity (x, _) -> isolate x
  | _ -> p

let analyze (body : Body.t) : t =
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i (l : Stmt.local) ->
      if not (Hashtbl.mem index l.Stmt.l_name) then
        Hashtbl.add index l.Stmt.l_name i)
    body.Body.locals;
  let n = Body.length body in
  let nl = List.length body.Body.locals in
  let state = Array.make (max n 1) None in
  if n > 0 then begin
    (* entry: all singletons — parameters may alias at runtime, but
       assuming they don't is the safe (fewer-aliases) direction *)
    state.(0) <- Some (Array.init nl (fun i -> i));
    let work = Queue.create () in
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      match state.(i) with
      | None -> ()
      | Some p ->
          let out = transfer index p (Body.stmt body i) in
          List.iter
            (fun j ->
              let merged =
                match state.(j) with
                | None -> out
                | Some prev -> join prev out
              in
              if state.(j) <> Some merged then begin
                state.(j) <- Some merged;
                Queue.add j work
              end)
            (Body.succs body i)
    done
  end;
  { ma_index = index; ma_in = state }

let must_alias t ~at (x : Stmt.local) (y : Stmt.local) =
  String.equal x.Stmt.l_name y.Stmt.l_name
  || at >= 0
     && at < Array.length t.ma_in
     &&
     match t.ma_in.(at) with
     | None -> false
     | Some p -> (
         match
           ( Hashtbl.find_opt t.ma_index x.Stmt.l_name,
             Hashtbl.find_opt t.ma_index y.Stmt.l_name )
         with
         | Some i, Some j -> p.(i) = p.(j)
         | _ -> false)
