(** Intraprocedural flow-sensitive must-alias analysis.

    The abstraction is a partition of the method's locals at every
    program point: two locals in the same equivalence class are
    guaranteed to hold the same reference on {e every} execution
    reaching that point.  The safe direction for a must-analysis is
    {e fewer} aliases, so the entry state is all-singletons, the join
    is partition intersection (locals stay together only when both
    predecessors agree), and any definition whose right-hand side is
    not a plain copy isolates the defined local.

    The solver uses this to perform strong updates: a field write
    [x.f := e] may {e kill} an existing taint on [b.f] exactly when
    [b] must-aliases [x] at the write (DESIGN.md, precision passes). *)

open Fd_ir

type t

val analyze : Body.t -> t
(** [analyze body] runs the partition dataflow to fixpoint over the
    body's CFG. *)

val must_alias : t -> at:int -> Stmt.local -> Stmt.local -> bool
(** [must_alias t ~at x y] — do [x] and [y] hold the same reference on
    every path reaching statement index [at] (checked on the state
    {e before} the statement executes)?  Reflexive; [false] for locals
    the analysis does not know or for unreachable statements. *)
