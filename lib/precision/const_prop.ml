open Fd_ir

type value =
  | Vstr of string
  | Vclass of string
  | Vmethod of string * string

module Env = Map.Make (String)
(* local name -> known value; absence = unknown (top for one local);
   the whole-state [None] = unreachable *)

type env = value Env.t

type t = { cp_in : env option array }

let equal_value a b =
  match (a, b) with
  | Vstr x, Vstr y | Vclass x, Vclass y -> String.equal x y
  | Vmethod (c1, m1), Vmethod (c2, m2) ->
      String.equal c1 c2 && String.equal m1 m2
  | _ -> false

(* meet by equality: keep a binding only when both sides agree *)
let join (a : env) (b : env) : env =
  Env.merge
    (fun _ va vb ->
      match (va, vb) with
      | Some x, Some y when equal_value x y -> Some x
      | _ -> None)
    a b

let equal_env (a : env) (b : env) = Env.equal equal_value a b

let const_value = function
  | Stmt.CStr s -> Some (Vstr s)
  | Stmt.CClassRef c -> Some (Vclass c)
  | Stmt.CInt _ | Stmt.CNull -> None

let imm_value_env env = function
  | Stmt.Iconst c -> const_value c
  | Stmt.Iloc l -> Env.find_opt l.Stmt.l_name env

(* the declared reference type of a local, when informative *)
let declared_class (l : Stmt.local) =
  match l.Stmt.l_type with Types.Ref c -> Some c | _ -> None

(* abstract the reflection builtins the interpreter models concretely:
   Class.forName(name) / x.getClass() / cls.getMethod(name).  As in
   the interpreter, [getMethod]'s receiver may be either a genuine
   Class handle or an instance statically typed java.lang.Class — in
   the latter case the receiver's declared type names the target. *)
let invoke_value env (inv : Stmt.invoke) : value option =
  let cls = inv.Stmt.i_sig.Types.m_class in
  let name = inv.Stmt.i_sig.Types.m_name in
  match (cls, name, inv.Stmt.i_recv, inv.Stmt.i_args) with
  | "java.lang.Class", "forName", _, [ a ] -> (
      match imm_value_env env a with
      | Some (Vstr s) -> Some (Vclass s)
      | _ -> None)
  | _, "getClass", Some r, [] -> (
      match Env.find_opt r.Stmt.l_name env with
      | Some (Vclass _ as v) -> Some v
      | _ -> Option.map (fun c -> Vclass c) (declared_class r))
  | "java.lang.Class", "getMethod", Some r, a :: _ -> (
      let target =
        match Env.find_opt r.Stmt.l_name env with
        | Some (Vclass c) -> Some c
        | _ -> (
            match declared_class r with
            | Some c when c <> "java.lang.Class" -> Some c
            | _ -> None)
      in
      match (target, imm_value_env env a) with
      | Some c, Some (Vstr m) -> Some (Vmethod (c, m))
      | _ -> None)
  | _ -> None

let transfer (env : env) (s : Stmt.t) : env =
  let def x v =
    match v with
    | Some v -> Env.add x.Stmt.l_name v env
    | None -> Env.remove x.Stmt.l_name env
  in
  match s.Stmt.s_kind with
  | Stmt.Assign (Stmt.Llocal x, Stmt.Eimm i) -> def x (imm_value_env env i)
  | Stmt.Assign (Stmt.Llocal x, Stmt.Ecast (_, i)) -> def x (imm_value_env env i)
  | Stmt.Assign (Stmt.Llocal x, Stmt.Einvoke inv) -> def x (invoke_value env inv)
  | Stmt.Assign (Stmt.Llocal x, _) -> def x None
  | Stmt.Identity (x, _) -> def x None
  | _ -> env

let analyze (body : Body.t) : t =
  let n = Body.length body in
  let state = Array.make (max n 1) None in
  if n > 0 then begin
    state.(0) <- Some Env.empty;
    let work = Queue.create () in
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      match state.(i) with
      | None -> ()
      | Some env ->
          let out = transfer env (Body.stmt body i) in
          List.iter
            (fun j ->
              let merged, changed =
                match state.(j) with
                | None -> (out, true)
                | Some prev ->
                    let m = join prev out in
                    (m, not (equal_env m prev))
              in
              if changed then begin
                state.(j) <- Some merged;
                Queue.add j work
              end)
            (Body.succs body i)
    done
  end;
  { cp_in = state }

let value_at t ~at (l : Stmt.local) =
  if at < 0 || at >= Array.length t.cp_in then None
  else
    match t.cp_in.(at) with
    | None -> None
    | Some env -> Env.find_opt l.Stmt.l_name env

let imm_value t ~at = function
  | Stmt.Iconst c -> const_value c
  | Stmt.Iloc l -> value_at t ~at l
