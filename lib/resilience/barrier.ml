(** Crash isolation for batch runners (see the .mli). *)

let m_crashes = Fd_obs.Metrics.counter "resilience.crashes_caught"
let m_retries = Fd_obs.Metrics.counter "resilience.retries"

let message label exn =
  let base =
    match exn with
    | Chaos.Fault site -> Printf.sprintf "injected fault at %s" site
    | e -> Printexc.to_string e
  in
  (* append the flight recorder's last-events context so a crash
     report carries what the solver was doing when it died *)
  let flight =
    if Fd_obs.Ring.Flight.recorded () = 0 then ""
    else
      Printf.sprintf " [flight: %s]" (Fd_obs.Ring.Flight.dump_line ~limit:6 ())
  in
  Printf.sprintf "%s: %s%s" label base flight

let protect ~label f =
  match f () with
  | v -> Ok v
  | exception Stack_overflow ->
      Fd_obs.Metrics.incr m_crashes;
      Error (Outcome.Crashed (message label Stack_overflow))
  | exception e ->
      Fd_obs.Metrics.incr m_crashes;
      Error (Outcome.Crashed (message label e))

let protect_with_retry ~label f ~retry =
  match protect ~label f with
  | Ok v -> Ok v
  | Error first -> (
      Fd_obs.Metrics.incr m_retries;
      match protect ~label:(label ^ " (retry)") retry with
      | Ok v -> Ok v
      | Error _ ->
          (* report the first failure: the retry ran degraded, its
             crash is secondary *)
          Error first)
