(** The typed termination state of an analysis run.

    Every run of the solver pipeline ends in exactly one of these
    states; the lone [st_budget_exhausted] bool of earlier versions is
    subsumed.  Outcomes are ordered by "badness": {!worst} lets a
    batch runner fold per-app outcomes into a run-level verdict. *)

type t =
  | Complete  (** fixed point reached within every budget *)
  | Budget_exhausted  (** the propagation (path-edge) cap was hit *)
  | Deadline_exceeded  (** the wall-clock deadline fired mid-solve *)
  | Cancelled  (** cooperative cancellation was requested *)
  | Crashed of string  (** an exception escaped; message attached *)

val is_complete : t -> bool

val equal : t -> t -> bool
(** structural equality; [Crashed] messages are ignored. *)

val severity : t -> int
(** 0 = [Complete] … 4 = [Crashed]: position on the badness scale. *)

val worst : t -> t -> t
(** the higher-severity of the two *)

val to_string : t -> string
(** stable, machine-greppable rendering ([complete],
    [budget-exhausted], [deadline-exceeded], [cancelled],
    [crashed: msg]) *)
