(** Structured diagnostics for the lenient frontend (see the .mli). *)

let m_diags = Fd_obs.Metrics.counter "resilience.diagnostics"

type t = { d_file : string; d_line : int option; d_msg : string }

let make ?line ~file msg =
  Fd_obs.Metrics.incr m_diags;
  { d_file = file; d_line = line; d_msg = msg }

let to_string d =
  match d.d_line with
  | Some l -> Printf.sprintf "%s:%d: %s" d.d_file l d.d_msg
  | None -> Printf.sprintf "%s: %s" d.d_file d.d_msg
