(** The typed termination state of an analysis run (see the .mli). *)

type t =
  | Complete
  | Budget_exhausted
  | Deadline_exceeded
  | Cancelled
  | Crashed of string

let is_complete = function Complete -> true | _ -> false

let severity = function
  | Complete -> 0
  | Budget_exhausted -> 1
  | Deadline_exceeded -> 2
  | Cancelled -> 3
  | Crashed _ -> 4

let equal a b = severity a = severity b
let worst a b = if severity a >= severity b then a else b

let to_string = function
  | Complete -> "complete"
  | Budget_exhausted -> "budget-exhausted"
  | Deadline_exceeded -> "deadline-exceeded"
  | Cancelled -> "cancelled"
  | Crashed msg -> "crashed: " ^ msg
