(** Deterministic fault injection.

    A chaos harness seeded through {!Fd_util.Prng}: the same seed and
    rate produce the same fault schedule on every run and machine, so
    tests can prove that every degradation path is actually taken.

    Two fault families are offered:

    - {b input corruption} ({!corrupt_string}): with probability [p] a
      parser input (manifest, layout, µJimple unit) has a few bytes
      scrambled, driving the lenient-frontend recovery paths;
    - {b step faults} ({!should_fail}, {!fail_point}): with
      probability [p] a pipeline step raises {!Fault}, driving the
      exception barriers and the degradation ladder.

    Every injected fault bumps the [resilience.faults_injected]
    counter. *)

type t

exception Fault of string
(** the exception [fail_point] raises; carries the site label *)

val create : seed:int -> rate:float -> t
(** [create ~seed ~rate] makes a harness injecting faults with
    probability [rate] (clamped to [\[0, 1\]]) per opportunity. *)

val rate : t -> float
val seed : t -> int

val should_fail : t -> bool
(** advance the schedule by one Bernoulli([rate]) draw *)

val fail_point : t option -> string -> unit
(** [fail_point (Some c) site] raises [Fault site] with probability
    [rate]; [fail_point None _] is a no-op (the production path). *)

val corrupt_string : t -> string -> string
(** with probability [rate], scramble 1–8 bytes of the input (always
    at least one when it fires and the string is non-empty); otherwise
    return it unchanged *)

val faults_injected : t -> int
(** faults this harness has injected so far (corruptions + raises) *)
