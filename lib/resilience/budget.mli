(** Cooperative work/time budgets for the solvers.

    A [Budget.t] bundles every reason an analysis may be asked to stop
    early: a wall-clock deadline, a propagation (path-edge) cap,
    cooperative cancellation, and an optional chaos harness that
    injects solver-step faults.  The IFDS worklist loops call {!tick}
    once per propagation; the call is O(1) — the wall clock is only
    consulted every 256 ticks (and on the very first one, so
    zero-second deadlines fire even on tiny apps).

    Once any limit trips, the budget is {e stopped}: every further
    [tick] returns [false] immediately and {!outcome} reports the
    typed reason.  Stopping is sticky and first-reason-wins. *)

type t

val create :
  ?deadline_s:float ->
  ?max_propagations:int ->
  ?chaos:Chaos.t ->
  unit ->
  t
(** [create ()] is unlimited.  [deadline_s] is relative wall-clock
    seconds from now; [max_propagations] caps solver path-edge
    propagations; [chaos] makes periodic ticks raise
    {!Chaos.Fault} with the harness's rate (for barrier tests). *)

val unlimited : unit -> t

val tick : t -> bool
(** [tick t] accounts one unit of solver work.  [true] = keep going;
    [false] = a limit has tripped (now or earlier) and the caller must
    stop propagating.  May raise {!Chaos.Fault} when a chaos harness
    is attached (only at clock-check ticks).  Bumps the
    [resilience.budget_hits] / [resilience.deadline_hits] counters
    when a limit first trips. *)

val stopped : t -> bool
(** whether any limit has tripped (checks the deadline eagerly, so a
    worklist loop polling [stopped] terminates promptly even between
    ticks) *)

val cancel : t -> unit
(** request cooperative cancellation: the next {!tick} / {!stopped}
    observes it.  Safe to call from a signal handler.  Bumps
    [resilience.cancellations]. *)

val cancel_all : unit -> unit
(** request process-wide cooperative cancellation: every live budget —
    and every budget created afterwards — observes it at its next
    {!tick}/{!stopped}, yielding [Cancelled] outcomes.  Allocation-free
    and async-signal-safe, so the long-running runners install it as
    their SIGINT/SIGTERM handler and still print partial outcome
    tables. *)

val cancelling_all : unit -> bool
(** whether {!cancel_all} has been requested *)

val reset_cancel_all : unit -> unit
(** clear the process-wide cancellation (for tests and multi-campaign
    drivers that survive an interrupt) *)

val outcome : t -> Outcome.t
(** [Complete] while live; the stop reason once stopped *)

val propagations : t -> int
(** ticks consumed so far *)

val max_propagations : t -> int
(** the cap ([max_int] when unlimited) *)

val remaining_s : t -> float option
(** seconds until the deadline ([None] when no deadline is set);
    negative once overdue *)
