(** Structured diagnostics for the lenient frontend.

    When parsing runs in lenient mode, a malformed manifest component,
    layout file or µJimple unit is skipped instead of aborting the
    load; each skip is recorded as one diagnostic carrying the file
    (or artefact name), the line when known, and a message.  The
    [resilience.diagnostics] counter tracks how many were emitted
    process-wide. *)

type t = {
  d_file : string;  (** artefact name: file path, layout name, … *)
  d_line : int option;  (** 1-based line when the parser knows it *)
  d_msg : string;
}

val make : ?line:int -> file:string -> string -> t
(** [make ~file msg] records one diagnostic (and bumps the
    [resilience.diagnostics] counter). *)

val to_string : t -> string
(** ["file:line: msg"] (line omitted when unknown) *)
