(** Cooperative work/time budgets (see the .mli). *)

let m_budget_hits = Fd_obs.Metrics.counter "resilience.budget_hits"
let m_deadline_hits = Fd_obs.Metrics.counter "resilience.deadline_hits"
let m_cancellations = Fd_obs.Metrics.counter "resilience.cancellations"

(* how many ticks between wall-clock checks; the first tick always
   checks so zero-second deadlines fire even on tiny apps *)
let clock_period = 256

(* process-wide cooperative cancellation: set (async-signal-safely)
   by a SIGINT/SIGTERM handler, observed by every live budget at its
   next tick and by every budget created afterwards — so an
   interrupted campaign drains its per-app loop with [Cancelled]
   outcome rows instead of dying mid-write *)
let global_cancel = Atomic.make false

let cancel_all () = Atomic.set global_cancel true
let reset_cancel_all () = Atomic.set global_cancel false
let cancelling_all () = Atomic.get global_cancel

type t = {
  b_deadline : float option;  (** absolute Unix.gettimeofday value *)
  b_max_props : int;
  b_chaos : Chaos.t option;
  mutable b_props : int;
  mutable b_stop : Outcome.t option;  (** [None] while live *)
  mutable b_countdown : int;  (** ticks until the next clock check *)
  mutable b_cancel : bool;  (** set asynchronously, observed at ticks *)
}

let create ?deadline_s ?(max_propagations = max_int) ?chaos () =
  {
    b_deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    b_max_props = max_propagations;
    b_chaos = chaos;
    b_props = 0;
    b_stop = None;
    b_countdown = 1;
    b_cancel = false;
  }

let unlimited () = create ()

let stop t reason counter =
  if t.b_stop = None then begin
    t.b_stop <- Some reason;
    Fd_obs.Ring.Flight.mark
      (Printf.sprintf "budget.stop %s props=%d" (Outcome.to_string reason)
         t.b_props);
    Fd_obs.Metrics.incr counter
  end

(* [>=] so a zero-second deadline trips even when create and check
   land in the same clock microsecond *)
let deadline_passed t =
  match t.b_deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

let observe_cancel t =
  if t.b_cancel || Atomic.get global_cancel then
    stop t Outcome.Cancelled m_cancellations

let tick t =
  observe_cancel t;
  match t.b_stop with
  | Some _ -> false
  | None ->
      t.b_props <- t.b_props + 1;
      if t.b_props > t.b_max_props then begin
        stop t Outcome.Budget_exhausted m_budget_hits;
        false
      end
      else begin
        t.b_countdown <- t.b_countdown - 1;
        if t.b_countdown <= 0 then begin
          t.b_countdown <- clock_period;
          (let p = t.b_props in
           Fd_obs.Ring.Flight.record (fun () ->
               Printf.sprintf "budget.tick props=%d" p));
          Chaos.fail_point t.b_chaos "solver.step";
          if deadline_passed t then
            stop t Outcome.Deadline_exceeded m_deadline_hits
        end;
        t.b_stop = None
      end

let stopped t =
  observe_cancel t;
  (match t.b_stop with
  | None -> if deadline_passed t then stop t Outcome.Deadline_exceeded m_deadline_hits
  | Some _ -> ());
  t.b_stop <> None

let cancel t = t.b_cancel <- true

let outcome t =
  match t.b_stop with Some o -> o | None -> Outcome.Complete

let propagations t = t.b_props
let max_propagations t = t.b_max_props

let remaining_s t =
  Option.map (fun d -> d -. Unix.gettimeofday ()) t.b_deadline
