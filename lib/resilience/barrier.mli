(** Crash isolation for batch runners.

    [protect] runs one app's analysis under an exception barrier so a
    hostile input can never take the whole batch down: any exception —
    including {!Chaos.Fault} and [Stack_overflow] — is converted into
    an [Error (Crashed msg)] outcome and counted under
    [resilience.crashes_caught]. *)

val protect :
  label:string -> (unit -> 'a) -> ('a, Outcome.t) result
(** [protect ~label f] is [Ok (f ())], or [Error (Crashed msg)] when
    [f] raises; [label] prefixes the message so per-app reports name
    the offender. *)

val protect_with_retry :
  label:string -> (unit -> 'a) -> retry:(unit -> 'a) -> ('a, Outcome.t) result
(** [protect_with_retry ~label f ~retry] runs [f] under the barrier
    and, when it crashes, gives [retry] (typically the same analysis
    under a degraded config) one more chance before giving up.  A
    successful retry bumps [resilience.retries]. *)
