(** Deterministic fault injection (see the .mli). *)

module Prng = Fd_util.Prng

let m_faults = Fd_obs.Metrics.counter "resilience.faults_injected"

type t = {
  c_prng : Prng.t;
  c_rate : float;
  c_seed : int;
  mutable c_injected : int;
}

exception Fault of string

let create ~seed ~rate =
  { c_prng = Prng.create seed; c_rate = max 0.0 (min 1.0 rate);
    c_seed = seed; c_injected = 0 }

let rate c = c.c_rate
let seed c = c.c_seed

let fired c =
  c.c_injected <- c.c_injected + 1;
  Fd_obs.Metrics.incr m_faults

let should_fail c =
  let hit = c.c_rate > 0.0 && Prng.float c.c_prng 1.0 < c.c_rate in
  if hit then fired c;
  hit

let fail_point c site =
  match c with
  | None -> ()
  | Some c -> if should_fail c then raise (Fault site)

let corrupt_string c s =
  if c.c_rate <= 0.0 || String.length s = 0 then s
  else if Prng.float c.c_prng 1.0 >= c.c_rate then s
  else begin
    fired c;
    let b = Bytes.of_string s in
    let n = 1 + Prng.int c.c_prng 8 in
    for _ = 1 to n do
      let i = Prng.int c.c_prng (Bytes.length b) in
      Bytes.set b i (Char.chr (Prng.int c.c_prng 256))
    done;
    Bytes.to_string b
  end

let faults_injected c = c.c_injected
