(** The scene: the global class table and class-hierarchy queries.

    Mirrors Soot's [Scene].  Classes referenced but never defined
    (framework classes beyond the modelled skeleton, third-party
    libraries) are treated as *phantom*: they exist in the hierarchy
    directly below [java.lang.Object] unless a skeleton entry says
    otherwise, and their methods have no bodies. *)

open Jclass

type t = {
  classes : (string, Jclass.t) Hashtbl.t;
  (* memoised hierarchy queries — call graphs are rebuilt several
     times per app (callback discovery iterates), and every virtual
     site asks for its dispatch cone each build, so these dominate
     construction time when recomputed; any class-table mutation
     clears them *)
  sc_supertypes : (string, string list) Hashtbl.t;
  sc_subtypes : (string, Jclass.t list) Hashtbl.t;
  sc_dispatch :
    (string * string * Types.typ list, (Jclass.t * Jclass.jmethod) list)
    Hashtbl.t;
  sc_concrete :
    (string * string * Types.typ list, (Jclass.t * Jclass.jmethod) option)
    Hashtbl.t;
}

exception Duplicate_class of string

let create () =
  {
    classes = Hashtbl.create 97;
    sc_supertypes = Hashtbl.create 97;
    sc_subtypes = Hashtbl.create 97;
    sc_dispatch = Hashtbl.create 97;
    sc_concrete = Hashtbl.create 97;
  }

(** [copy t] is an independent scene with the same classes: mutations
    of either copy never affect the other.  [Jclass.t] values are
    immutable, so the class table is copied shallowly; the memo caches
    are still valid for the copied table and are shared content-wise
    the same way. *)
let copy t =
  {
    classes = Hashtbl.copy t.classes;
    sc_supertypes = Hashtbl.copy t.sc_supertypes;
    sc_subtypes = Hashtbl.copy t.sc_subtypes;
    sc_dispatch = Hashtbl.copy t.sc_dispatch;
    sc_concrete = Hashtbl.copy t.sc_concrete;
  }

let invalidate t =
  Hashtbl.reset t.sc_supertypes;
  Hashtbl.reset t.sc_subtypes;
  Hashtbl.reset t.sc_dispatch;
  Hashtbl.reset t.sc_concrete

(** [add_class t c] registers [c].
    @raise Duplicate_class if a class of the same name exists. *)
let add_class t (c : Jclass.t) =
  if Hashtbl.mem t.classes c.c_name then raise (Duplicate_class c.c_name);
  invalidate t;
  Hashtbl.replace t.classes c.c_name c

(** [add_or_replace t c] registers [c], replacing any previous
    definition — used to upgrade a phantom skeleton entry to a real
    class. *)
let add_or_replace t (c : Jclass.t) =
  invalidate t;
  Hashtbl.replace t.classes c.c_name c

(** [find_class t name] is the registered class, if any. *)
let find_class t name = Hashtbl.find_opt t.classes name

(** [mem t name] holds when [name] is registered. *)
let mem t name = Hashtbl.mem t.classes name

(** [resolve t name] is like {!find_class} but materialises a phantom
    class (extending [java.lang.Object]) on a miss. *)
let resolve t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> c
  | None ->
      let c = Jclass.mk ~phantom:true name in
      invalidate t;
      Hashtbl.replace t.classes name c;
      c

(** [all_classes t] lists every registered class (unspecified order). *)
let all_classes t = Hashtbl.fold (fun _ c acc -> c :: acc) t.classes []

(** [application_classes t] lists non-phantom classes: the code under
    analysis. *)
let application_classes t =
  List.filter (fun c -> not c.c_phantom) (all_classes t)

(** [superclasses t name] is the chain of strict superclasses of
    [name], nearest first, ending at [java.lang.Object].  Cycles in
    malformed input are cut off rather than looping. *)
let superclasses t name =
  let rec go seen acc name =
    match find_class t name with
    | Some { c_super = Some s; _ } when not (List.mem s seen) ->
        go (s :: seen) (s :: acc) s
    | Some _ -> acc
    | None ->
        if name = Types.object_class || List.mem Types.object_class seen then
          acc
        else Types.object_class :: acc
  in
  List.rev (go [ name ] [] name)

let rec interfaces_closure t seen name =
  if List.mem name !seen then ()
  else begin
    seen := name :: !seen;
    match find_class t name with
    | None -> ()
    | Some c ->
        List.iter (interfaces_closure t seen) c.c_interfaces;
        (match c.c_super with
        | Some s -> interfaces_closure t seen s
        | None -> ())
  end

(** [supertypes t name] is all strict and non-strict supertypes of
    [name]: the class itself, its superclasses, and all transitively
    implemented interfaces. *)
let supertypes t name =
  match Hashtbl.find_opt t.sc_supertypes name with
  | Some sups -> sups
  | None ->
      let seen = ref [] in
      interfaces_closure t seen name;
      let sups =
        if List.mem Types.object_class !seen then !seen
        else Types.object_class :: !seen
      in
      Hashtbl.replace t.sc_supertypes name sups;
      sups

(** [is_subtype t sub sup] decides the subtype relation, treating every
    class as a subtype of [java.lang.Object] and of itself. *)
let is_subtype t sub sup =
  String.equal sub sup
  || String.equal sup Types.object_class
  || List.mem sup (supertypes t sub)

(** [subtypes t name] is every *registered* class that is a subtype of
    [name] (including [name] itself if registered).  This is the
    class-cone CHA uses to enumerate dispatch targets. *)
let subtypes t name =
  match Hashtbl.find_opt t.sc_subtypes name with
  | Some subs -> subs
  | None ->
      let subs =
        List.filter (fun c -> is_subtype t c.c_name name) (all_classes t)
      in
      Hashtbl.replace t.sc_subtypes name subs;
      subs

(** [resolve_concrete t cls subsig] walks the superclass chain starting
    at [cls] looking for a concrete (non-abstract) declaration of
    [subsig]; this is runtime virtual dispatch for an exact receiver
    class. *)
let resolve_concrete t cls (name, params) =
  let key = (cls, name, params) in
  match Hashtbl.find_opt t.sc_concrete key with
  | Some r -> r
  | None ->
      let rec go cls =
        match find_class t cls with
        | None -> None
        | Some c -> (
            match Jclass.find_method c name params with
            | Some m when not m.jm_abstract -> Some (c, m)
            | _ -> ( match c.c_super with Some s -> go s | None -> None))
      in
      let r = go cls in
      Hashtbl.replace t.sc_concrete key r;
      r

(** [resolve_concrete_named t cls name] is {!resolve_concrete} matching
    on the method name only (used where parameter types are not
    statically known). *)
let resolve_concrete_named t cls name =
  let rec go cls =
    match find_class t cls with
    | None -> None
    | Some c -> (
        match Jclass.find_method_named c name with
        | Some m when not m.jm_abstract -> Some (c, m)
        | _ -> ( match c.c_super with Some s -> go s | None -> None))
  in
  go cls

(** [dispatch_targets t ~static_type subsig] enumerates the concrete
    methods a virtual call with declared receiver type [static_type]
    may dispatch to, per Class Hierarchy Analysis: for every registered
    subtype of [static_type], the concrete resolution of [subsig].
    Duplicates (inherited methods shared by several subclasses) are
    collapsed. *)
let rec dispatch_targets t ~static_type ((name, params) as subsig) =
  match Hashtbl.find_opt t.sc_dispatch (static_type, name, params) with
  | Some ts -> ts
  | None ->
      let ts = dispatch_targets_uncached t ~static_type subsig in
      Hashtbl.replace t.sc_dispatch (static_type, name, params) ts;
      ts

and dispatch_targets_uncached t ~static_type ((name, params) as subsig) =
  ignore params;
  let seen = Hashtbl.create 7 in
  let cone = subtypes t static_type in
  let cone =
    (* the static type itself might be unregistered (phantom on the fly) *)
    if List.exists (fun c -> c.c_name = static_type) cone then cone
    else
      match find_class t static_type with
      | Some c -> c :: cone
      | None -> cone
  in
  List.filter_map
    (fun c ->
      if c.c_is_interface then None
      else
        match resolve_concrete t c.c_name subsig with
        | Some (decl, m) ->
            let key = (decl.c_name, name) in
            if Hashtbl.mem seen key then None
            else begin
              Hashtbl.replace seen key ();
              Some (decl, m)
            end
        | None -> None)
    cone

(** [find_method t msig] resolves a method signature to its declaration
    by exact class lookup followed by a walk up the hierarchy. *)
let find_method t (msig : Types.method_sig) =
  match
    resolve_concrete t msig.m_class (msig.m_name, msig.m_params)
  with
  | Some (c, m) -> Some (c, m)
  | None -> (
      (* abstract/interface declarations still resolve for signature
         purposes *)
      match find_class t msig.m_class with
      | Some c -> (
          match Jclass.find_method c msig.m_name msig.m_params with
          | Some m -> Some (c, m)
          | None -> None)
      | None -> None)

(** [methods_with_bodies t] lists every (class, method) pair carrying
    code, the analysable universe. *)
let methods_with_bodies t =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun m -> if Jclass.has_body m then Some (c, m) else None)
        c.c_methods)
    (all_classes t)
