(** µJimple linter (see the .mli for the defect classes). *)

type kind =
  | Use_before_def
  | Duplicate_label
  | Undefined_label
  | Arity_mismatch

type issue = {
  li_kind : kind;
  li_where : string;
  li_line : int option;
  li_msg : string;
}

let string_of_kind = function
  | Use_before_def -> "use-before-def"
  | Duplicate_label -> "duplicate-label"
  | Undefined_label -> "undefined-label"
  | Arity_mismatch -> "arity-mismatch"

let string_of_issue i =
  match i.li_line with
  | Some l ->
      Printf.sprintf "%s:%d: %s: %s" i.li_where l (string_of_kind i.li_kind)
        i.li_msg
  | None ->
      Printf.sprintf "%s: %s: %s" i.li_where (string_of_kind i.li_kind)
        i.li_msg

(* ------------------------------------------------------------------ *)
(* token-level: branch labels                                          *)
(* ------------------------------------------------------------------ *)

(* The parser hard-fails a whole unit on a duplicate or undefined
   label, so these checks must run below the parser: a straight token
   scan.  Method bodies sit at brace depth 2 (class { method { … } }).
   A label definition is [IDENT COLON] at the start of a statement —
   [local x : T;] is safe because its statement-start token is the
   keyword [local], and [x := @this: C] is safe because that colon
   follows mid-statement tokens.  A label use is the identifier after
   [goto]. *)
let lint_source ?file src =
  let where = Option.value file ~default:"<memory>" in
  let lx = Lexer.create src in
  let buf = ref None in
  let next () =
    match !buf with
    | Some t ->
        buf := None;
        t
    | None -> (
        match Lexer.next lx with
        | tok -> Some (tok, lx.Lexer.line)
        | exception Lexer.Lex_error _ -> None)
  in
  let peek () =
    match !buf with
    | Some t -> t
    | None ->
        let t = next () in
        buf := Some t;
        t
  in
  let issues = ref [] in
  let add kind line msg =
    issues := { li_kind = kind; li_where = where; li_line = Some line; li_msg = msg } :: !issues
  in
  let depth = ref 0 in
  let stmt_start = ref false in
  (* per-body label accounting, most recent first *)
  let defs = ref [] and uses = ref [] in
  let flush_body () =
    let defs = List.rev !defs and uses = List.rev !uses in
    List.iteri
      (fun i (n, line) ->
        match List.find_opt (fun (m, _) -> String.equal m n) (List.filteri (fun j _ -> j < i) defs) with
        | Some (_, first) ->
            add Duplicate_label line
              (Printf.sprintf "label %S already defined at line %d" n first)
        | None -> ())
      defs;
    List.iter
      (fun (n, line) ->
        if not (List.exists (fun (m, _) -> String.equal m n) defs) then
          add Undefined_label line (Printf.sprintf "goto to undefined label %S" n))
      uses
  in
  let running = ref true in
  while !running do
    match next () with
    | None | Some (Lexer.EOF, _) -> running := false
    | Some (tok, line) -> (
        match tok with
        | Lexer.LBRACE ->
            incr depth;
            if !depth = 2 then begin
              defs := [];
              uses := [];
              stmt_start := true
            end
        | Lexer.RBRACE ->
            if !depth = 2 then flush_body ();
            decr depth
        | Lexer.SEMI -> stmt_start := true
        | Lexer.IDENT "goto" when !depth = 2 ->
            (match peek () with
            | Some (Lexer.IDENT n, uline) ->
                ignore (next ());
                uses := (n, uline) :: !uses
            | _ -> ());
            stmt_start := false
        | Lexer.IDENT n when !depth = 2 && !stmt_start -> (
            match peek () with
            | Some (Lexer.COLON, _) ->
                ignore (next ());
                defs := (n, line) :: !defs
                (* the colon ends the label: the next token starts a
                   statement, so [stmt_start] stays true *)
            | _ -> stmt_start := false)
        | _ -> stmt_start := false)
  done;
  List.rev !issues

(* ------------------------------------------------------------------ *)
(* IR-level: use-before-def and call arity                             *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

(* May-assigned forward dataflow (union join) from the entry: a use is
   flagged only when NO path from the entry carries a prior
   definition — branch-dependent initialisation stays silent, and so
   do never-defined locals (µJimple null-initialises them; the
   checked-in reproducers rely on that). *)
let lint_body ~where (b : Body.t) =
  let candidates =
    Body.fold b
      (fun s acc ->
        match Stmt.def_local s with
        | Some l -> SS.add l.Stmt.l_name acc
        | None -> acc)
      SS.empty
  in
  if SS.is_empty candidates then []
  else begin
    let n = Body.length b in
    let reach = Array.make n None in
    let def_names i =
      match Stmt.def_local (Body.stmt b i) with
      | Some l -> SS.singleton l.Stmt.l_name
      | None -> SS.empty
    in
    let work = Queue.create () in
    reach.(0) <- Some SS.empty;
    Queue.add 0 work;
    while not (Queue.is_empty work) do
      let i = Queue.pop work in
      let out = SS.union (Option.get reach.(i)) (def_names i) in
      List.iter
        (fun j ->
          let changed =
            match reach.(j) with
            | None ->
                reach.(j) <- Some out;
                true
            | Some s ->
                let merged = SS.union s out in
                if SS.equal s merged then false
                else begin
                  reach.(j) <- Some merged;
                  true
                end
          in
          if changed then Queue.add j work)
        (Body.succs b i)
    done;
    let flagged = ref SS.empty and issues = ref [] in
    for i = 0 to n - 1 do
      match reach.(i) with
      | None -> () (* unreachable *)
      | Some assigned ->
          SS.iter
            (fun name ->
              if
                (not (SS.mem name assigned))
                && (not (SS.mem name !flagged))
                && Body.uses_local (Body.stmt b i) (Stmt.mk_local name)
              then begin
                flagged := SS.add name !flagged;
                issues :=
                  {
                    li_kind = Use_before_def;
                    li_where = where;
                    li_line = None;
                    li_msg =
                      Printf.sprintf
                        "local %s is read at statement %d before any \
                         assignment can reach it (first definition comes \
                         later)"
                        name i;
                  }
                  :: !issues
              end)
            candidates
    done;
    List.rev !issues
  end

let lint_classes (classes : Jclass.t list) =
  let by_name = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace by_name c.Jclass.c_name c) classes;
  (* every declared arity of [mname] along [cname]'s declared
     superclass chain; [] when no declared class in the chain names it
     (an inherited framework method — not ours to judge) *)
  let rec declared_arities cname mname fuel =
    if fuel = 0 then []
    else
      match Hashtbl.find_opt by_name cname with
      | None -> []
      | Some c ->
          List.filter_map
            (fun (m : Jclass.jmethod) ->
              if String.equal m.Jclass.jm_sig.Types.m_name mname then
                Some (List.length m.Jclass.jm_sig.Types.m_params)
              else None)
            c.Jclass.c_methods
          @ (match c.Jclass.c_super with
            | Some s -> declared_arities s mname (fuel - 1)
            | None -> [])
  in
  let issues = ref [] in
  let check_invoke ~where (inv : Stmt.invoke) =
    let cls = inv.Stmt.i_sig.Types.m_class in
    let name = inv.Stmt.i_sig.Types.m_name in
    if Hashtbl.mem by_name cls then begin
      let arities = declared_arities cls name 32 in
      let n_args = List.length inv.Stmt.i_args in
      if arities <> [] && not (List.mem n_args arities) then
        issues :=
          {
            li_kind = Arity_mismatch;
            li_where = where;
            li_line = None;
            li_msg =
              Printf.sprintf
                "call to %s#%s passes %d argument(s) but the declared \
                 overload(s) take %s"
                cls name n_args
                (String.concat " or "
                   (List.map string_of_int (List.sort_uniq compare arities)));
          }
          :: !issues
    end
  in
  List.iter
    (fun (c : Jclass.t) ->
      List.iter
        (fun (m : Jclass.jmethod) ->
          match m.Jclass.jm_body with
          | None -> ()
          | Some body ->
              let where =
                Printf.sprintf "%s.%s" c.Jclass.c_name
                  m.Jclass.jm_sig.Types.m_name
              in
              issues := List.rev_append (lint_body ~where body) !issues;
              Body.iter body (fun s ->
                  match s.Stmt.s_kind with
                  | Stmt.Assign (_, Stmt.Einvoke inv)
                  | Stmt.InvokeStmt inv ->
                      check_invoke ~where inv
                  | _ -> ()))
        c.Jclass.c_methods)
    classes;
  List.rev !issues
