(** µJimple statements: three-address code in Jimple's statement
    taxonomy (assignments, identity statements, invokes, branches,
    returns).

    Branch targets are statement indices within the enclosing
    {!Body.t}; the builder DSL and the textual parser both work with
    symbolic labels and resolve them to indices when the body is
    sealed. *)

open Types

type local = { l_name : string; l_type : typ }
(** A method-local variable or parameter.  Locals are identified by
    name within their method; the builder interns them so that equal
    names are physically shared. *)

let equal_local a b = a == b || String.equal a.l_name b.l_name
let compare_local a b = String.compare a.l_name b.l_name
let hash_local l = Hashtbl.hash l.l_name
let pp_local fmt l = Format.pp_print_string fmt l.l_name
let mk_local ?(ty = Ref Types.object_class) l_name = { l_name; l_type = ty }

type const =
  | CInt of int
  | CStr of string
  | CNull
  | CClassRef of string  (** a class literal, [C.class] *)

let equal_const a b =
  match (a, b) with
  | CInt x, CInt y -> x = y
  | CStr x, CStr y -> String.equal x y
  | CNull, CNull -> true
  | CClassRef x, CClassRef y -> String.equal x y
  | _ -> false

let string_of_const = function
  | CInt i -> string_of_int i
  | CStr s -> Printf.sprintf "%S" s
  | CNull -> "null"
  | CClassRef c -> c ^ ".class"

(** An immediate operand: a local or a constant (Jimple restricts all
    non-trivial expressions to operate on immediates only). *)
type imm = Iloc of local | Iconst of const

let equal_imm a b =
  match (a, b) with
  | Iloc x, Iloc y -> equal_local x y
  | Iconst x, Iconst y -> equal_const x y
  | _ -> false

let string_of_imm = function
  | Iloc l -> l.l_name
  | Iconst c -> string_of_const c

(** [imm_local i] extracts the local if [i] is one. *)
let imm_local = function Iloc l -> Some l | Iconst _ -> None

type invoke_kind =
  | Virtual  (** virtual or interface dispatch on the receiver *)
  | Special  (** constructors, [super] calls, private methods *)
  | Static

type invoke = {
  i_kind : invoke_kind;
  i_sig : method_sig;  (** the statically named target *)
  i_recv : local option;  (** [None] exactly for static calls *)
  i_args : imm list;
}

let string_of_invoke inv =
  let kind =
    match inv.i_kind with
    | Virtual -> "virtualinvoke"
    | Special -> "specialinvoke"
    | Static -> "staticinvoke"
  in
  let recv = match inv.i_recv with Some r -> r.l_name ^ "." | None -> "" in
  Printf.sprintf "%s %s%s#%s(%s)" kind recv inv.i_sig.m_class
    inv.i_sig.m_name
    (String.concat ", " (List.map string_of_imm inv.i_args))

(** Right-hand sides of assignments. *)
type expr =
  | Eimm of imm
  | Efield of local * field_sig  (** instance field load [x.f] *)
  | Estatic of field_sig  (** static field load *)
  | Earray of local * imm  (** array load [x\[i\]] *)
  | Ebinop of string * imm * imm  (** e.g. ["+"], ["cmp"]; operator is opaque *)
  | Eunop of string * imm
  | Ecast of typ * imm
  | Einstanceof of imm * typ
  | Enew of string  (** allocation of a class instance *)
  | Enewarray of typ * imm
  | Elength of local
  | Einvoke of invoke  (** call whose result is assigned *)

let string_of_expr = function
  | Eimm i -> string_of_imm i
  | Efield (x, f) -> Printf.sprintf "%s.%s" x.l_name (string_of_field_sig f)
  | Estatic f -> "static " ^ string_of_field_sig f
  | Earray (x, i) -> Printf.sprintf "%s[%s]" x.l_name (string_of_imm i)
  | Ebinop (op, a, b) ->
      Printf.sprintf "%s %s %s" (string_of_imm a) op (string_of_imm b)
  | Eunop (op, a) -> Printf.sprintf "%s %s" op (string_of_imm a)
  | Ecast (t, a) -> Printf.sprintf "(%s) %s" (string_of_typ t) (string_of_imm a)
  | Einstanceof (a, t) ->
      Printf.sprintf "%s instanceof %s" (string_of_imm a) (string_of_typ t)
  | Enew c -> "new " ^ c
  | Enewarray (t, n) ->
      Printf.sprintf "newarray %s[%s]" (string_of_typ t) (string_of_imm n)
  | Elength x -> Printf.sprintf "lengthof %s" x.l_name
  | Einvoke inv -> string_of_invoke inv

(** Assignment targets. *)
type lvalue =
  | Llocal of local
  | Lfield of local * field_sig  (** instance field store [x.f = ...] *)
  | Lstatic of field_sig
  | Larray of local * imm

let string_of_lvalue = function
  | Llocal l -> l.l_name
  | Lfield (x, f) -> Printf.sprintf "%s.%s" x.l_name (string_of_field_sig f)
  | Lstatic f -> "static " ^ string_of_field_sig f
  | Larray (x, i) -> Printf.sprintf "%s[%s]" x.l_name (string_of_imm i)

(** Comparison operators of conditional branches.  FlowDroid never
    evaluates branch conditions (both sides of every branch are
    analysed), so the operator is only kept for printing. *)
type cmpop = Ceq | Cne | Clt | Cle | Cgt | Cge

let string_of_cmpop = function
  | Ceq -> "==" | Cne -> "!=" | Clt -> "<" | Cle -> "<=" | Cgt -> ">" | Cge -> ">="

type cond = { c_op : cmpop; c_left : imm; c_right : imm }

let string_of_cond c =
  Printf.sprintf "%s %s %s" (string_of_imm c.c_left)
    (string_of_cmpop c.c_op) (string_of_imm c.c_right)

(** Identity right-hand sides: how parameters enter a Jimple body. *)
type identity_ref =
  | Ithis of string  (** [@this: C] *)
  | Iparam of int  (** [@parameter n] *)

type kind =
  | Assign of lvalue * expr
  | InvokeStmt of invoke  (** a call whose result is discarded *)
  | Identity of local * identity_ref
  | If of cond * int  (** conditional branch to a statement index *)
  | Goto of int
  | Return of imm option
  | Throw of imm
  | Nop

type t = {
  s_idx : int;  (** position within the enclosing body *)
  s_kind : kind;
  s_tag : string option;
      (** benchmark ground-truth marker; carried through to analysis
          results so the evaluation harness can match found leaks
          against expected ones *)
}

let string_of_kind = function
  | Assign (lv, e) ->
      Printf.sprintf "%s = %s" (string_of_lvalue lv) (string_of_expr e)
  | InvokeStmt inv -> string_of_invoke inv
  | Identity (l, Ithis c) -> Printf.sprintf "%s := @this: %s" l.l_name c
  | Identity (l, Iparam n) -> Printf.sprintf "%s := @parameter%d" l.l_name n
  | If (c, tgt) -> Printf.sprintf "if %s goto %d" (string_of_cond c) tgt
  | Goto tgt -> Printf.sprintf "goto %d" tgt
  | Return None -> "return"
  | Return (Some i) -> "return " ^ string_of_imm i
  | Throw i -> "throw " ^ string_of_imm i
  | Nop -> "nop"

let to_string s =
  let tag = match s.s_tag with Some t -> Printf.sprintf " @%S" t | None -> "" in
  Printf.sprintf "%s%s" (string_of_kind s.s_kind) tag

(** [invoke_of s] extracts the call of [s] whether it appears as an
    invoke statement or on the right-hand side of an assignment. *)
let invoke_of s =
  match s.s_kind with
  | InvokeStmt inv -> Some inv
  | Assign (_, Einvoke inv) -> Some inv
  | _ -> None

(** [is_call s] holds when [s] contains a method call. *)
let is_call s = Option.is_some (invoke_of s)

(** [def_local s] is the local defined (fully overwritten) by [s], if
    any.  Field/array stores do not fully define their base local. *)
let def_local s =
  match s.s_kind with
  | Assign (Llocal l, _) -> Some l
  | Identity (l, _) -> Some l
  | _ -> None
