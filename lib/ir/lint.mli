(** Static well-formedness linter for µJimple.

    Three defect classes the parser either cannot see (it synthesizes
    invoke parameter types from the argument count, so arity drift
    against the declared signature goes unnoticed) or rejects too
    late with a hard failure (duplicate and undefined branch labels
    abort the parse of the whole unit):

    - {b use-before-def}: a local that has at least one definition in
      its body, but is read on some path before any definition can
      have executed.  Never-defined locals are deliberately {e not}
      flagged — µJimple treats them as null-initialised, and the
      checked-in reproducers rely on that;
    - {b duplicate / undefined branch labels}: detected token-level on
      the raw source, so issues are reported per label with line
      numbers even though the parser would refuse the unit;
    - {b call-arity mismatch}: an invoke whose statically named class
      is declared in the app and declares (possibly via a declared
      superclass) the target method name, but with no overload of the
      call's argument count.

    The linter never modifies or rejects anything: it reports.  The
    lenient frontend surfaces its findings as {!Fd_resilience.Diag}
    warnings; [flowdroid_cli --lint] prints them directly. *)

type kind =
  | Use_before_def
  | Duplicate_label
  | Undefined_label
  | Arity_mismatch

type issue = {
  li_kind : kind;
  li_where : string;  (** file, or [Class.method] for IR-level checks *)
  li_line : int option;  (** source line for token-level checks *)
  li_msg : string;
}

val string_of_kind : kind -> string

val string_of_issue : issue -> string
(** [where[:line]: kind: msg] — stable, one line. *)

val lint_source : ?file:string -> string -> issue list
(** Token-level checks on one raw µJimple compilation unit: duplicate
    and undefined branch labels per method body.  Works on sources the
    parser rejects; a lexically broken tail merely truncates the scan
    (the frontend reports the lex error itself). *)

val lint_classes : Jclass.t list -> issue list
(** IR-level checks over the parsed classes of one app: use-before-def
    locals (per concrete method body) and call-arity mismatches
    against the app's declared method signatures. *)
