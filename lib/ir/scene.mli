(** The scene: the global class table and class-hierarchy queries
    (mirrors Soot's [Scene]).

    Classes referenced but never defined (framework classes beyond the
    modelled skeleton, third-party libraries) are treated as
    {e phantom}: they exist in the hierarchy directly below
    [java.lang.Object] unless a skeleton entry says otherwise, and
    their methods have no bodies. *)

type t

exception Duplicate_class of string

val create : unit -> t

val copy : t -> t
(** an independent scene with the same classes; mutations of either
    copy never affect the other (used to stamp out per-app scenes from
    the framework-skeleton template) *)

val add_class : t -> Jclass.t -> unit
(** @raise Duplicate_class if a class of the same name exists. *)

val add_or_replace : t -> Jclass.t -> unit
(** registers a class, replacing any previous definition — used to
    upgrade a phantom skeleton entry or regenerate the dummy main *)

val find_class : t -> string -> Jclass.t option
val mem : t -> string -> bool

val resolve : t -> string -> Jclass.t
(** like {!find_class}, materialising a phantom class on a miss *)

val all_classes : t -> Jclass.t list
(** every registered class, unspecified order *)

val application_classes : t -> Jclass.t list
(** non-phantom classes: the code under analysis *)

val superclasses : t -> string -> string list
(** the chain of strict superclasses, nearest first, ending at
    [java.lang.Object]; cycles in malformed input are cut off *)

val supertypes : t -> string -> string list
(** all strict and non-strict supertypes: the class itself, its
    superclasses, and all transitively implemented interfaces *)

val is_subtype : t -> string -> string -> bool
(** [is_subtype t sub sup] — reflexive; everything is a subtype of
    [java.lang.Object] *)

val subtypes : t -> string -> Jclass.t list
(** every registered class that is a subtype of the given one: the
    class cone CHA enumerates dispatch targets over *)

val resolve_concrete :
  t -> string -> string * Types.typ list -> (Jclass.t * Jclass.jmethod) option
(** [resolve_concrete t cls (name, params)] walks the superclass chain
    from [cls] to the nearest concrete declaration — runtime virtual
    dispatch for an exact receiver class.  Matching is by name and
    arity (see DESIGN.md). *)

val resolve_concrete_named :
  t -> string -> string -> (Jclass.t * Jclass.jmethod) option
(** {!resolve_concrete} matching on the method name only *)

val dispatch_targets :
  t ->
  static_type:string ->
  string * Types.typ list ->
  (Jclass.t * Jclass.jmethod) list
(** CHA: the concrete methods a virtual call with the given declared
    receiver type may dispatch to, deduplicated *)

val find_method :
  t -> Types.method_sig -> (Jclass.t * Jclass.jmethod) option
(** resolve a method signature by exact class lookup followed by a
    walk up the hierarchy *)

val methods_with_bodies : t -> (Jclass.t * Jclass.jmethod) list
(** every (class, method) pair carrying code: the analysable
    universe *)
