(** Types and symbol signatures for the µJimple IR (the Jimple-level
    representation all analysis phases operate on). *)

type typ =
  | Void
  | Bool
  | Char
  | Int
  | Long
  | Float
  | Double
  | Ref of string  (** class or interface type, fully-qualified *)
  | Array of typ

val equal_typ : typ -> typ -> bool
val compare_typ : typ -> typ -> int

val hash_typ : typ -> int
(** structural fold over the whole type, arbitrarily deep arrays
    included (unlike [Hashtbl.hash], which truncates) *)

val string_of_typ : typ -> string
(** Java source syntax: ["int"], ["java.lang.String"], ["byte[]"] *)

val typ_of_string : string -> typ
(** inverse of {!string_of_typ}; unknown names read as class types *)

val is_primitive : typ -> bool
val pp_typ : Format.formatter -> typ -> unit

type field_sig = {
  f_class : string;  (** declaring class *)
  f_name : string;
  f_type : typ;
}
(** global field identifier, written [class#name] in the textual
    format *)

val equal_field_sig : field_sig -> field_sig -> bool
(** by declaring class and name *)

val compare_field_sig : field_sig -> field_sig -> int

val hash_field_sig : field_sig -> int
(** consistent with {!equal_field_sig}: hashes declaring class and
    name, both in full *)

val mk_field : ?ty:typ -> string -> string -> field_sig
val string_of_field_sig : field_sig -> string
val pp_field_sig : Format.formatter -> field_sig -> unit

type method_sig = {
  m_class : string;  (** declaring (or statically-resolved) class *)
  m_name : string;
  m_params : typ list;
  m_ret : typ;
}

val equal_method_sig : method_sig -> method_sig -> bool
val compare_method_sig : method_sig -> method_sig -> int

val hash_method_sig : method_sig -> int
(** consistent with {!equal_method_sig}: folds over class, name and
    {e every} parameter type *)

val sub_signature : method_sig -> string * typ list
(** identity up to the declaring class: the key for override
    resolution *)

val equal_sub_signature : method_sig -> method_sig -> bool
val mk_method : ?params:typ list -> ?ret:typ -> string -> string -> method_sig

val string_of_method_sig : method_sig -> string
(** Jimple style: ["<a.B: void foo(int,java.lang.String)>"] *)

val pp_method_sig : Format.formatter -> method_sig -> unit

val object_class : string
(** ["java.lang.Object"] *)

val string_class : string
(** ["java.lang.String"] *)
