(** Types and symbol signatures for the µJimple IR.

    µJimple is this repository's stand-in for Soot's Jimple: a typed,
    three-address intermediate representation at exactly the level
    FlowDroid's analyses operate on.  Signatures identify fields and
    methods globally, as in Jimple's [<class: type name>] notation. *)

type typ =
  | Void
  | Bool
  | Char
  | Int
  | Long
  | Float
  | Double
  | Ref of string  (** a class or interface type, by fully-qualified name *)
  | Array of typ

let rec equal_typ a b =
  match (a, b) with
  | Void, Void | Bool, Bool | Char, Char | Int, Int | Long, Long
  | Float, Float | Double, Double ->
      true
  | Ref x, Ref y -> String.equal x y
  | Array x, Array y -> equal_typ x y
  | _ -> false

let rec hash_typ = function
  | Void -> 1
  | Bool -> 2
  | Char -> 3
  | Int -> 4
  | Long -> 5
  | Float -> 6
  | Double -> 7
  | Ref c -> Fd_util.Intern.combine 8 (Hashtbl.hash c)
  | Array t -> Fd_util.Intern.combine 9 (hash_typ t)

let rec compare_typ a b =
  let rank = function
    | Void -> 0 | Bool -> 1 | Char -> 2 | Int -> 3 | Long -> 4
    | Float -> 5 | Double -> 6 | Ref _ -> 7 | Array _ -> 8
  in
  match (a, b) with
  | Ref x, Ref y -> String.compare x y
  | Array x, Array y -> compare_typ x y
  | _ -> Int.compare (rank a) (rank b)

(** [string_of_typ t] renders [t] in Java source syntax,
    e.g. ["int"], ["java.lang.String"], ["byte[]"]. *)
let rec string_of_typ = function
  | Void -> "void"
  | Bool -> "boolean"
  | Char -> "char"
  | Int -> "int"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"
  | Ref c -> c
  | Array t -> string_of_typ t ^ "[]"

(** [typ_of_string s] inverts {!string_of_typ}; any dotted or plain
    identifier that is not a primitive name is read as a class type. *)
let rec typ_of_string s =
  let n = String.length s in
  if n > 2 && String.sub s (n - 2) 2 = "[]" then
    Array (typ_of_string (String.sub s 0 (n - 2)))
  else
    match s with
    | "void" -> Void
    | "boolean" -> Bool
    | "char" -> Char
    | "int" -> Int
    | "long" -> Long
    | "float" -> Float
    | "double" -> Double
    | c -> Ref c

(** [is_primitive t] holds for non-reference, non-array, non-void
    types. *)
let is_primitive = function
  | Bool | Char | Int | Long | Float | Double -> true
  | Void | Ref _ | Array _ -> false

let pp_typ fmt t = Format.pp_print_string fmt (string_of_typ t)

(* ------------------------------------------------------------------ *)

type field_sig = {
  f_class : string;  (** declaring class *)
  f_name : string;
  f_type : typ;
}
(** A global field identifier, written [class#name] in the textual
    format. *)

let equal_field_sig a b =
  a == b || (String.equal a.f_class b.f_class && String.equal a.f_name b.f_name)

(* hash exactly the fields [equal_field_sig] compares (the value type
   is deliberately excluded, as in Jimple field resolution) *)
let hash_field_sig f =
  Fd_util.Intern.combine (Hashtbl.hash f.f_class) (Hashtbl.hash f.f_name)

let compare_field_sig a b =
  match String.compare a.f_class b.f_class with
  | 0 -> String.compare a.f_name b.f_name
  | c -> c

let mk_field ?(ty = Ref "java.lang.Object") f_class f_name =
  { f_class; f_name; f_type = ty }

let string_of_field_sig f = Printf.sprintf "%s#%s" f.f_class f.f_name
let pp_field_sig fmt f = Format.pp_print_string fmt (string_of_field_sig f)

(* ------------------------------------------------------------------ *)

type method_sig = {
  m_class : string;  (** declaring (or statically-resolved) class *)
  m_name : string;
  m_params : typ list;
  m_ret : typ;
}
(** A global method identifier.  Virtual dispatch resolves the same
    sub-signature (name, params, return) against the runtime class. *)

let equal_method_sig a b =
  String.equal a.m_class b.m_class
  && String.equal a.m_name b.m_name
  && List.length a.m_params = List.length b.m_params
  && List.for_all2 equal_typ a.m_params b.m_params

let compare_method_sig a b =
  match String.compare a.m_class b.m_class with
  | 0 -> (
      match String.compare a.m_name b.m_name with
      | 0 -> List.compare compare_typ a.m_params b.m_params
      | c -> c)
  | c -> c

(* hash the fields [equal_method_sig] compares: class, name and every
   parameter type — a fold, so signatures differing only in a late
   parameter still hash apart *)
let hash_method_sig m =
  Fd_util.Intern.fold_hash hash_typ
    (Fd_util.Intern.combine (Hashtbl.hash m.m_class) (Hashtbl.hash m.m_name))
    m.m_params

(** [sub_signature m] identifies [m] up to the declaring class: the key
    used when resolving overrides along the class hierarchy. *)
let sub_signature m = (m.m_name, m.m_params)

let equal_sub_signature a b =
  String.equal a.m_name b.m_name
  && List.length a.m_params = List.length b.m_params
  && List.for_all2 equal_typ a.m_params b.m_params

let mk_method ?(params = []) ?(ret = Void) m_class m_name =
  { m_class; m_name; m_params = params; m_ret = ret }

let string_of_method_sig m =
  Printf.sprintf "<%s: %s %s(%s)>" m.m_class (string_of_typ m.m_ret) m.m_name
    (String.concat "," (List.map string_of_typ m.m_params))

let pp_method_sig fmt m = Format.pp_print_string fmt (string_of_method_sig m)

(** Well-known class names used throughout the Android model. *)
let object_class = "java.lang.Object"

let string_class = "java.lang.String"
