(** The on-disk backend of the persistent summary store.

    Layout (content-addressed, one file per method):
    {v
    DIR/format-v1/<config-digest>/<dd>/<method-digest>.fdss
    v}
    where [<dd>] is the first two hex digits of the method digest (a
    fan-out shard, keeping directories small at fleet scale).  Every
    entry is self-describing:
    {v
    FDSS1 <config-digest> <method-digest> <md5-of-payload>
    <payload JSON>
    v}
    The header pins the format version and both halves of the key, so
    a file that was truncated, bit-rotted, renamed or produced by an
    incompatible build is detected before its payload is trusted; any
    such damage is a {e miss} plus a diagnostic — never a crash and
    never a wrong summary.

    Writes are read-merge-write with an atomic same-directory
    temp-and-rename, so concurrent writers ([--jobs] domains, daemon
    workers, whole fleets sharing one directory) can race freely:
    readers only ever observe complete entries, and the losing
    writer's contexts are merely re-computed next time.  An unwritable
    store degrades to read-only with a warning — analyses never fail
    because the cache is full or readonly. *)

module Json = Fd_obs.Json
module Summary = Fd_core.Summary

let log_src = Logs.Src.create "flowdroid.store" ~doc:"persistent summary store"

module Log = (val Logs.src_log log_src : Logs.LOG)

let magic = "FDSS1"
let entry_ext = ".fdss"
let format_dir = Printf.sprintf "format-v%d" Summary.format_version

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

(* bounded, process-wide anomaly log, drained by the maintenance CLI
   and the tests; every entry is also a [Logs] warning *)
let diag_lock = Mutex.create ()
let diag_cap = 100
let diags_rev : Fd_resilience.Diag.t list ref = ref []
let diag_count = ref 0

let push_diag d =
  Log.warn (fun m -> m "%s" d.Fd_resilience.Diag.d_msg);
  Mutex.lock diag_lock;
  if !diag_count < diag_cap then begin
    diags_rev := d :: !diags_rev;
    incr diag_count
  end;
  Mutex.unlock diag_lock

let drain_diags () =
  Mutex.lock diag_lock;
  let ds = List.rev !diags_rev in
  diags_rev := [];
  diag_count := 0;
  Mutex.unlock diag_lock;
  ds

let diag fmt =
  Printf.ksprintf
    (fun msg -> push_diag (Fd_resilience.Diag.make ~file:"summary-store" msg))
    fmt

(* ------------------------------------------------------------------ *)
(* Paths and low-level I/O                                             *)
(* ------------------------------------------------------------------ *)

let shard_of digest = if String.length digest >= 2 then String.sub digest 0 2 else "xx"

let entry_path ~dir ~config_digest ~method_digest =
  Filename.concat
    (Filename.concat
       (Filename.concat dir format_dir)
       config_digest)
    (Filename.concat (shard_of method_digest) (method_digest ^ entry_ext))

let rec mkdir_p path =
  if Sys.file_exists path then Sys.is_directory path
  else begin
    let parent = Filename.dirname path in
    (if String.length parent < String.length path then ignore (mkdir_p parent));
    match Unix.mkdir path 0o755 with
    | () -> true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Sys.is_directory path
    | exception Unix.Unix_error _ -> false
  end

let read_file path =
  let ic = In_channel.open_bin path in
  Fun.protect
    ~finally:(fun () -> In_channel.close ic)
    (fun () -> In_channel.input_all ic)

(* atomic write: temp file in the target directory, fsync-free rename *)
let write_atomic path contents =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:dir
      ("." ^ Filename.basename path) ".tmp"
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc contents)
  with
  | () -> ( match Sys.rename tmp path with () -> () | exception e -> cleanup (); raise e)
  | exception e ->
      cleanup ();
      raise e

(* ------------------------------------------------------------------ *)
(* Entry framing                                                       *)
(* ------------------------------------------------------------------ *)

let frame ~config_digest ~method_digest payload_str =
  Printf.sprintf "%s %s %s %s\n%s" magic config_digest method_digest
    (Digest.to_hex (Digest.string payload_str))
    payload_str

(** parse and fully validate an entry's bytes; [Error reason] on any
    damage *)
let parse_entry ~config_digest ~method_digest bytes =
  match String.index_opt bytes '\n' with
  | None -> Error "truncated entry (no header line)"
  | Some nl -> (
      let header = String.sub bytes 0 nl in
      let payload = String.sub bytes (nl + 1) (String.length bytes - nl - 1) in
      match String.split_on_char ' ' header with
      | [ m; cfg; md; sum ] ->
          if not (String.equal m magic) then
            Error (Printf.sprintf "bad magic %S (format-version mismatch)" m)
          else if not (String.equal cfg config_digest) then
            Error "config-digest mismatch"
          else if not (String.equal md method_digest) then
            Error "method-digest mismatch (misplaced entry)"
          else if
            not (String.equal sum (Digest.to_hex (Digest.string payload)))
          then Error "checksum mismatch (corrupt payload)"
          else (
            match Json.parse_string payload with
            | j -> Ok j
            | exception Json.Parse_error (line, msg) ->
                Error (Printf.sprintf "unparsable payload (line %d: %s)" line msg))
      | _ -> Error "malformed header"
  )

(* ------------------------------------------------------------------ *)
(* Backend                                                             *)
(* ------------------------------------------------------------------ *)

type backend_state = {
  bs_dir : string;
  bs_cfg : string;
  mutable bs_read_only : bool;  (** set on the first failed write *)
  bs_write_lock : Mutex.t;  (** serialises read-merge-write per process *)
}

(* lazily registered so a store-off run's metric export is untouched *)
let m_bytes_read () = Fd_obs.Metrics.counter "store.bytes_read"
let m_bytes_written () = Fd_obs.Metrics.counter "store.bytes_written"

let load st ~method_digest =
  let path =
    entry_path ~dir:st.bs_dir ~config_digest:st.bs_cfg ~method_digest
  in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | exception Sys_error msg ->
        diag "unreadable entry %s: %s (treated as a miss)" path msg;
        None
    | bytes -> (
        Fd_obs.Metrics.add (m_bytes_read ()) (String.length bytes);
        match
          parse_entry ~config_digest:st.bs_cfg ~method_digest bytes
        with
        | Ok payload -> Some payload
        | Error reason ->
            diag "invalid entry %s: %s (treated as a miss)" path reason;
            None)

(* merge two context maps, keeping the existing binding on collisions:
   the established entry may come from a richer analysis of the same
   digest, and hot/cold equivalence only needs agreed keys to agree *)
let merge_contexts ~existing ~fresh =
  let keys = List.map fst existing in
  existing
  @ List.filter (fun (k, _) -> not (List.mem k keys)) fresh

let contexts_of payload =
  match Json.member "cxs" payload with Some (Json.Obj kvs) -> kvs | _ -> []

let store st ~method_digest ~payload =
  if not st.bs_read_only then begin
    let path =
      entry_path ~dir:st.bs_dir ~config_digest:st.bs_cfg ~method_digest
    in
    Mutex.lock st.bs_write_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.bs_write_lock)
      (fun () ->
        let merged =
          match load st ~method_digest with
          | None -> payload
          | Some existing ->
              let cxs =
                merge_contexts ~existing:(contexts_of existing)
                  ~fresh:(contexts_of payload)
              in
              let meta =
                match Json.member "m" payload with
                | Some m -> [ ("m", m) ]
                | None -> []
              in
              Json.Obj
                (meta
                @ [ ("cxs", Json.Obj (List.sort compare cxs)) ])
        in
        let body = Json.to_string merged in
        let framed =
          frame ~config_digest:st.bs_cfg ~method_digest body
        in
        if not (mkdir_p (Filename.dirname path)) then begin
          diag "cannot create %s: store is now read-only"
            (Filename.dirname path);
          st.bs_read_only <- true
        end
        else
          match write_atomic path framed with
          | () ->
              Fd_obs.Metrics.add (m_bytes_written ()) (String.length framed)
          | exception Sys_error msg ->
              diag "write failed for %s: %s — store is now read-only" path msg;
              st.bs_read_only <- true)
  end

(* one backend per (dir, config digest), shared across the apps of a
   campaign so read-only degradation sticks for the whole process *)
let backends : (string * string, backend_state) Hashtbl.t = Hashtbl.create 4
let backends_lock = Mutex.create ()

let backend ~dir ~config_digest =
  Mutex.lock backends_lock;
  let st =
    match Hashtbl.find_opt backends (dir, config_digest) with
    | Some st -> st
    | None ->
        let st =
          {
            bs_dir = dir;
            bs_cfg = config_digest;
            bs_read_only = false;
            bs_write_lock = Mutex.create ();
          }
        in
        (* probe writability once up front; a read-only cache is still
           a useful cache *)
        if
          not
            (mkdir_p
               (Filename.concat (Filename.concat dir format_dir) config_digest))
        then begin
          diag "summary store %s is not writable: running read-only" dir;
          st.bs_read_only <- true
        end;
        Hashtbl.replace backends (dir, config_digest) st;
        st
  in
  Mutex.unlock backends_lock;
  Some
    {
      Summary.be_load = (fun ~method_digest -> load st ~method_digest);
      be_store =
        (fun ~method_digest ~payload -> store st ~method_digest ~payload);
      be_diag = push_diag;
    }

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Summary.provider := fun ~dir ~config_digest -> backend ~dir ~config_digest
  end

(* ------------------------------------------------------------------ *)
(* Maintenance (the flowdroid_store CLI)                               *)
(* ------------------------------------------------------------------ *)

type entry_info = {
  ei_path : string;
  ei_config : string;  (** config-digest directory the entry lives in *)
  ei_method : string;  (** method digest, from the file name *)
  ei_bytes : int;
  ei_mtime : float;
}

(** every entry file under [dir], across all config digests *)
let scan dir =
  let acc = ref [] in
  let root = Filename.concat dir format_dir in
  let safe_readdir d = try Sys.readdir d with Sys_error _ -> [||] in
  if Sys.file_exists root && Sys.is_directory root then
    Array.iter
      (fun cfg ->
        let cfg_dir = Filename.concat root cfg in
        if Sys.is_directory cfg_dir then
          Array.iter
            (fun shard ->
              let shard_dir = Filename.concat cfg_dir shard in
              if Sys.is_directory shard_dir then
                Array.iter
                  (fun f ->
                    if Filename.check_suffix f entry_ext then begin
                      let path = Filename.concat shard_dir f in
                      match Unix.stat path with
                      | st ->
                          acc :=
                            {
                              ei_path = path;
                              ei_config = cfg;
                              ei_method = Filename.chop_suffix f entry_ext;
                              ei_bytes = st.Unix.st_size;
                              ei_mtime = st.Unix.st_mtime;
                            }
                            :: !acc
                      | exception Unix.Unix_error _ -> ()
                    end)
                  (safe_readdir shard_dir))
            (safe_readdir cfg_dir))
      (safe_readdir root);
  List.sort (fun a b -> compare a.ei_path b.ei_path) !acc

(** re-validate one entry on disk (header, digests, checksum, JSON) *)
let verify_entry (ei : entry_info) =
  match read_file ei.ei_path with
  | exception Sys_error msg -> Error msg
  | bytes -> (
      match
        parse_entry ~config_digest:ei.ei_config ~method_digest:ei.ei_method
          bytes
      with
      | Ok _ -> Ok ()
      | Error reason -> Error reason)

(** evict least-recently-used entries (by mtime, ties broken by path)
    until the store fits [max_bytes]; returns (deleted entries, freed
    bytes).  The (mtime, path) key makes eviction deterministic: two
    shards gc'ing the same store agree on the survivors even though
    [readdir] enumerates in different orders. *)
let gc dir ~max_bytes =
  let entries = scan dir in
  let total = List.fold_left (fun a e -> a + e.ei_bytes) 0 entries in
  if total <= max_bytes then (0, 0)
  else begin
    let by_age =
      List.sort
        (fun a b -> compare (a.ei_mtime, a.ei_path) (b.ei_mtime, b.ei_path))
        entries
    in
    let deleted = ref 0 and freed = ref 0 in
    let excess = ref (total - max_bytes) in
    List.iter
      (fun e ->
        if !excess > 0 then
          match Sys.remove e.ei_path with
          | () ->
              incr deleted;
              freed := !freed + e.ei_bytes;
              excess := !excess - e.ei_bytes
          | exception Sys_error _ -> ())
      by_age;
    (!deleted, !freed)
  end
