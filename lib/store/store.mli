(** On-disk backend of the persistent cross-app summary store
    (DESIGN.md §13).

    Content-addressed layout, one self-describing entry file per
    (config digest × method digest); damaged entries degrade to misses
    with diagnostics, unwritable directories degrade to read-only.
    Linking this library and calling {!install} is what makes
    [--summary-store DIR] effective — [fd_core] alone ships no
    backend. *)

val install : unit -> unit
(** register the file backend with [Fd_core.Summary.provider];
    idempotent *)

val drain_diags : unit -> Fd_resilience.Diag.t list
(** collect (and clear) the store anomalies recorded so far —
    corrupt/truncated/mismatched entries, failed writes *)

(** {1 Maintenance} (the [flowdroid_store] CLI) *)

type entry_info = {
  ei_path : string;
  ei_config : string;  (** config digest the entry is filed under *)
  ei_method : string;  (** method digest (file name) *)
  ei_bytes : int;
  ei_mtime : float;
}

val scan : string -> entry_info list
(** every entry file under a store directory, across config digests *)

val verify_entry : entry_info -> (unit, string) result
(** full re-validation: header framing, digest match, checksum, JSON *)

val gc : string -> max_bytes:int -> int * int
(** evict least-recently-used entries until the store fits;
    [(deleted, freed_bytes)].  Candidates are ordered by (mtime, path)
    so eviction is deterministic regardless of directory enumeration
    order — concurrent shards keep the same survivors. *)

(**/**)

val entry_path :
  dir:string -> config_digest:string -> method_digest:string -> string
(** exposed for the tests (corruption injection) *)
