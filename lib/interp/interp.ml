(** A concrete interpreter for µJimple with dynamic taint tracking.

    The execution substrate for the TaintDroid-style comparison
    (Section 7 of the paper): values flow concretely, taint labels ride
    on values, fields and array cells individually — so the dynamic
    analysis is exactly as precise as the execution (no whole-array or
    whole-container over-approximation, real strong updates) and
    exactly as complete as the driven coverage.

    Framework behaviour (telephony, UI views, intents, collections,
    strings) is emulated by built-in models in {!Builtins}; application
    classes execute their real µJimple bodies, with static
    initialisers run at first use of a class (the dynamically correct
    semantics that the static analysis deliberately gets wrong on
    StaticInitialization1). *)

open Fd_ir
open Value
module SS = Fd_frontend.Sourcesink

exception Budget_exhausted
exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type state = {
  scene : Scene.t;
  defs : SS.t;
  layout : Fd_frontend.Layout.t;
  heap_objs : (obj_id, hobj) Hashtbl.t;
  heap_arrs : (obj_id, harr) Hashtbl.t;
  statics : (string, tvalue) Hashtbl.t;
  mutable next_id : int;
  mutable leaks : leak list;
  leak_keys : (string, unit) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
  clinit_done : (string, unit) Hashtbl.t;
  views : (int, obj_id) Hashtbl.t;  (** resource id -> view object *)
  mutable sent_intents : (string * tvalue) list;  (** send method, intent *)
  mutable sink_filter : string -> tvalue list -> bool;
      (** [sink_filter mname args = true] suppresses the generic sink
          event for this call — the ICC driver uses it to stop
          counting a deliverable intent-send as a leak by itself (the
          leak is observed at the real sink in the receiver) *)
  mutable builtin : builtin_fn;
      (** the framework model, installed by {!Builtins.install} (kept
          as a state field to break the module cycle) *)
}

and builtin_fn =
  state ->
  tag:string option ->
  cls:string ->
  runtime_cls:string ->
  mname:string ->
  recv:tvalue option ->
  args:tvalue list ->
  tvalue option

let create ?(max_steps = 2_000_000) ~scene ~defs ~layout () =
  {
    scene;
    defs;
    layout;
    heap_objs = Hashtbl.create 256;
    heap_arrs = Hashtbl.create 64;
    statics = Hashtbl.create 32;
    next_id = 1;
    leaks = [];
    leak_keys = Hashtbl.create 32;
    steps = 0;
    max_steps;
    clinit_done = Hashtbl.create 16;
    views = Hashtbl.create 16;
    sent_intents = [];
    sink_filter = (fun _ _ -> false);
    builtin = (fun _ ~tag:_ ~cls:_ ~runtime_cls:_ ~mname:_ ~recv:_ ~args:_ -> None);
  }

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

(** [alloc_obj st ?payload cls] allocates a heap object. *)
let alloc_obj st ?(payload = Pnone) cls =
  let id = fresh_id st in
  Hashtbl.replace st.heap_objs id
    { h_cls = cls; h_fields = Hashtbl.create 4; h_payload = payload };
  id

let alloc_arr st elem n =
  let id = fresh_id st in
  Hashtbl.replace st.heap_arrs id
    { a_elem = elem; a_cells = Array.make (max n 0) (untainted Vnull) };
  id

let obj st id =
  match Hashtbl.find_opt st.heap_objs id with
  | Some o -> o
  | None -> err "dangling object #%d" id

let arr st id =
  match Hashtbl.find_opt st.heap_arrs id with
  | Some a -> a
  | None -> err "dangling array #%d" id

let static_key (f : Types.field_sig) = f.Types.f_class ^ "#" ^ f.Types.f_name

let record_leak st ~labels ~sink_tag ~sink_cat ~where =
  Labels.iter
    (fun lb ->
      let key =
        Printf.sprintf "%s|%s|%s"
          (Option.value lb.lb_tag ~default:lb.lb_desc)
          (Option.value sink_tag ~default:"?")
          where
      in
      if not (Hashtbl.mem st.leak_keys key) then begin
        Hashtbl.replace st.leak_keys key ();
        st.leaks <-
          { lk_labels = [ lb ]; lk_sink_tag = sink_tag; lk_sink_cat = sink_cat;
            lk_where = where }
          :: st.leaks
      end)
    labels

(* supertype-aware source/sink lookup (the dynamic monitor knows the
   same lists as the static analysis) *)
let rec first_some f = function
  | [] -> None
  | x :: xs -> ( match f x with Some r -> Some r | None -> first_some f xs)

let with_supertypes st cls f =
  match f cls with
  | Some r -> Some r
  | None -> first_some f (Scene.supertypes st.scene cls)

let sink_category st ~cls ~mname =
  with_supertypes st cls (fun cls -> SS.is_sink st.defs ~cls ~mname)

let source_category st ~cls ~mname =
  with_supertypes st cls (fun cls -> SS.is_return_source st.defs ~cls ~mname)

(** [deep_labels st tv] collects taint labels reachable from [tv]
    through object fields, payloads and array cells (bounded depth) —
    what a TaintDroid-style monitor sees when a compound value crosses
    the framework boundary (e.g. a tainted extra inside an intent
    passed to [startActivity]). *)
let deep_labels st tv =
  let acc = ref tv.labels in
  let seen = Hashtbl.create 8 in
  let rec go depth (tv : tvalue) =
    acc := join !acc tv.labels;
    if depth > 0 then
      match tv.v with
      | Vobj id when not (Hashtbl.mem seen id) -> (
          Hashtbl.replace seen id ();
          match Hashtbl.find_opt st.heap_objs id with
          | None -> ()
          | Some o ->
              Hashtbl.iter (fun _ f -> go (depth - 1) f) o.h_fields;
              (match o.h_payload with
              | Pnone -> ()
              | Pbuffer b -> acc := join !acc (snd !b)
              | Plist l -> List.iter (go (depth - 1)) !l
              | Pmap m -> List.iter (fun (_, v) -> go (depth - 1) v) !m
              | Pview pv -> go (depth - 1) pv.view_text))
      | Varr id when not (Hashtbl.mem seen (-id - 1)) -> (
          Hashtbl.replace seen (-id - 1) ();
          match Hashtbl.find_opt st.heap_arrs id with
          | None -> ()
          | Some a -> Array.iter (go (depth - 1)) a.a_cells)
      | _ -> ()
  in
  go 4 tv;
  !acc

(** [refine_tags st tag tv] rewrites the ground-truth tag on every
    label reachable from [tv] (bounded depth, in place on the heap):
    used when a tainted value crosses a tagged observation point such
    as a parameter-source identity statement. *)
let refine_tags st tag tv =
  let seen = Hashtbl.create 8 in
  let relabel labels = Labels.map (fun lb -> { lb with lb_tag = tag }) labels in
  let rec go depth (tv : tvalue) =
    let tv = { tv with labels = relabel tv.labels } in
    (if depth > 0 then
       match tv.v with
       | Vobj id when not (Hashtbl.mem seen id) -> (
           Hashtbl.replace seen id ();
           match Hashtbl.find_opt st.heap_objs id with
           | None -> ()
           | Some o ->
               let keys = Hashtbl.fold (fun k _ acc -> k :: acc) o.h_fields [] in
               List.iter
                 (fun k ->
                   let f = Hashtbl.find o.h_fields k in
                   Hashtbl.replace o.h_fields k (go (depth - 1) f))
                 keys;
               (match o.h_payload with
               | Pbuffer b ->
                   let str, lbl = !b in
                   b := (str, relabel lbl)
               | Plist l -> l := List.map (go (depth - 1)) !l
               | Pmap m -> m := List.map (fun (k, v) -> (k, go (depth - 1) v)) !m
               | Pview pv -> pv.view_text <- go (depth - 1) pv.view_text
               | Pnone -> ()))
       | Varr id when not (Hashtbl.mem seen (-id - 1)) -> (
           Hashtbl.replace seen (-id - 1) ();
           match Hashtbl.find_opt st.heap_arrs id with
           | None -> ()
           | Some a ->
               Array.iteri (fun i c -> a.a_cells.(i) <- go (depth - 1) c) a.a_cells)
       | _ -> ());
    tv
  in
  go 4 tv

(* ------------------------------------------------------------------ *)
(* frames                                                              *)
(* ------------------------------------------------------------------ *)

type frame = {
  fr_method : Types.method_sig;
  fr_locals : (string, tvalue) Hashtbl.t;
  fr_this : tvalue option;
  fr_args : tvalue list;
}

let local_get fr (l : Stmt.local) =
  match Hashtbl.find_opt fr.fr_locals l.Stmt.l_name with
  | Some tv -> tv
  | None -> untainted Vnull

let local_set fr (l : Stmt.local) tv = Hashtbl.replace fr.fr_locals l.Stmt.l_name tv

(* run <clinit> at first use of a class *)
let rec ensure_clinit st cls =
  if not (Hashtbl.mem st.clinit_done cls) then begin
    Hashtbl.replace st.clinit_done cls ();
    match Scene.find_class st.scene cls with
    | Some c -> (
        match Jclass.find_method c "<clinit>" [] with
        | Some m when Jclass.has_body m ->
            ignore
              (exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body)
                 ~this:None ~args:[])
        | _ -> ())
    | None -> ()
  end

(* ---------------- expression evaluation ---------------- *)

and eval_imm _st fr = function
  | Stmt.Iloc l -> local_get fr l
  | Stmt.Iconst (Stmt.CInt i) -> untainted (Vint i)
  | Stmt.Iconst (Stmt.CStr s) -> untainted (Vstr s)
  | Stmt.Iconst Stmt.CNull -> untainted Vnull
  | Stmt.Iconst (Stmt.CClassRef c) -> untainted (Vstr c)

and eval_binop op a b =
  let labels = join a.labels b.labels in
  let v =
    match (op, a.v, b.v) with
    | "+", Vint x, Vint y -> Vint (x + y)
    | "-", Vint x, Vint y -> Vint (x - y)
    | "*", Vint x, Vint y -> Vint (x * y)
    | "/", Vint x, Vint y -> Vint (if y = 0 then 0 else x / y)
    | "%", Vint x, Vint y -> Vint (if y = 0 then 0 else x mod y)
    | "<<", Vint x, Vint y -> Vint (x lsl (y land 62))
    | ">>", Vint x, Vint y -> Vint (x asr (y land 62))
    | "+", Vstr x, Vstr y -> Vstr (x ^ y)
    | "+", Vstr x, Vint y -> Vstr (x ^ string_of_int y)
    | "+", Vint x, Vstr y -> Vstr (string_of_int x ^ y)
    | "+", Vstr x, Vnull -> Vstr (x ^ "null")
    | "+", Vnull, Vstr y -> Vstr ("null" ^ y)
    | "+", Vstr x, (Vobj _ | Varr _) -> Vstr (x ^ "@obj")
    | "+", (Vobj _ | Varr _), Vstr y -> Vstr ("@obj" ^ y)
    | _, _, _ -> Vint 0
  in
  with_labels labels v

and eval_cond st fr (c : Stmt.cond) =
  let a = eval_imm st fr c.Stmt.c_left in
  let b = eval_imm st fr c.Stmt.c_right in
  let cmp =
    match (a.v, b.v) with
    | Vint x, Vint y -> compare x y
    | Vstr x, Vstr y -> compare x y
    | Vnull, Vnull -> 0
    | Vnull, _ -> -1
    | _, Vnull -> 1
    | Vobj x, Vobj y | Varr x, Varr y -> compare x y
    | _ -> -1
  in
  match c.Stmt.c_op with
  | Stmt.Ceq -> cmp = 0
  | Stmt.Cne -> cmp <> 0
  | Stmt.Clt -> cmp < 0
  | Stmt.Cle -> cmp <= 0
  | Stmt.Cgt -> cmp > 0
  | Stmt.Cge -> cmp >= 0

and eval_expr st fr (e : Stmt.expr) ~tag : tvalue =
  match e with
  | Stmt.Eimm i -> eval_imm st fr i
  | Stmt.Efield (x, f) -> (
      match (local_get fr x).v with
      | Vobj id -> (
          let o = obj st id in
          match Hashtbl.find_opt o.h_fields f.Types.f_name with
          | Some tv -> tv
          | None -> untainted Vnull)
      | Vnull -> untainted Vnull
      | _ -> err "field read on a non-object")
  | Stmt.Estatic f ->
      ensure_clinit st f.Types.f_class;
      Option.value (Hashtbl.find_opt st.statics (static_key f))
        ~default:(untainted Vnull)
  | Stmt.Earray (x, i) -> (
      match ((local_get fr x).v, (eval_imm st fr i).v) with
      | Varr id, Vint idx ->
          let a = arr st id in
          if idx >= 0 && idx < Array.length a.a_cells then a.a_cells.(idx)
          else untainted Vnull
      | Vnull, _ -> untainted Vnull
      | _ -> err "array read on a non-array")
  | Stmt.Ebinop (op, a, b) -> eval_binop op (eval_imm st fr a) (eval_imm st fr b)
  | Stmt.Eunop (_, a) ->
      let tv = eval_imm st fr a in
      let v = match tv.v with Vint x -> Vint (-x) | v -> v in
      { tv with v }
  | Stmt.Ecast (_, a) -> eval_imm st fr a
  | Stmt.Einstanceof (a, ty) -> (
      let tv = eval_imm st fr a in
      match (tv.v, ty) with
      | Vobj id, Types.Ref cls ->
          let o = obj st id in
          untainted (Vint (if Scene.is_subtype st.scene o.h_cls cls then 1 else 0))
      | _ -> untainted (Vint 0))
  | Stmt.Enew cls ->
      ensure_clinit st cls;
      untainted (Vobj (alloc_obj st cls))
  | Stmt.Enewarray (elem, n) -> (
      match (eval_imm st fr n).v with
      | Vint len -> untainted (Varr (alloc_arr st elem len))
      | _ -> err "non-integer array length")
  | Stmt.Elength x -> (
      match (local_get fr x).v with
      | Varr id -> untainted (Vint (Array.length (arr st id).a_cells))
      | _ -> untainted (Vint 0))
  | Stmt.Einvoke inv -> invoke st fr inv ~tag

(* ---------------- calls ---------------- *)

and invoke st fr (inv : Stmt.invoke) ~tag : tvalue =
  let args = List.map (eval_imm st fr) inv.Stmt.i_args in
  let recv = Option.map (fun r -> local_get fr r) inv.Stmt.i_recv in
  let static_cls = inv.Stmt.i_sig.Types.m_class in
  let mname = inv.Stmt.i_sig.Types.m_name in
  (* sink check first: the monitor sits at the framework boundary *)
  (match sink_category st ~cls:static_cls ~mname with
  | Some cat when not (st.sink_filter mname args) ->
      let labels =
        List.fold_left (fun acc a -> join acc (deep_labels st a)) Labels.empty args
      in
      if not (Labels.is_empty labels) then
        record_leak st ~labels ~sink_tag:tag ~sink_cat:cat
          ~where:(Printf.sprintf "%s.%s" static_cls mname)
  | Some _ | None -> ());
  (* dispatch: the receiver's runtime class for virtual calls *)
  let runtime_cls =
    match (inv.Stmt.i_kind, recv) with
    | Stmt.Virtual, Some { v = Vobj id; _ } -> (obj st id).h_cls
    | _ -> static_cls
  in
  ensure_clinit st runtime_cls;
  let resolved =
    match
      Scene.resolve_concrete st.scene runtime_cls
        (mname, inv.Stmt.i_sig.Types.m_params)
    with
    | Some (_, m) when Jclass.has_body m -> Some m
    | _ -> (
        match
          Scene.resolve_concrete st.scene static_cls
            (mname, inv.Stmt.i_sig.Types.m_params)
        with
        | Some (_, m) when Jclass.has_body m -> Some m
        | _ -> None)
  in
  match resolved with
  | Some m ->
      exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body) ~this:recv
        ~args
  | None -> (
      (* framework model *)
      match st.builtin st ~tag ~cls:static_cls ~runtime_cls ~mname ~recv ~args with
      | Some tv -> tv
      | None -> (
          (* return-value sources declared in the config *)
          match source_category st ~cls:static_cls ~mname with
          | Some cat ->
              let lb = label ?tag ~category:cat (static_cls ^ "." ^ mname) in
              with_labels (Labels.singleton lb) (Vstr "sensitive-data")
          | None ->
              (* unmodelled: join the labels conservatively *)
              let labels =
                List.fold_left
                  (fun acc a -> join acc a.labels)
                  (match recv with Some r -> r.labels | None -> Labels.empty)
                  args
              in
              with_labels labels Vnull))

(* ---------------- statement execution ---------------- *)

and exec_body st (msig : Types.method_sig) (body : Body.t) ~this ~args : tvalue
    =
  let fr =
    { fr_method = msig; fr_locals = Hashtbl.create 8; fr_this = this;
      fr_args = args }
  in
  let ret = ref (untainted Vnull) in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    st.steps <- st.steps + 1;
    if st.steps > st.max_steps then raise Budget_exhausted;
    let stmt = Body.stmt body !pc in
    let tag = stmt.Stmt.s_tag in
    (match stmt.Stmt.s_kind with
    | Stmt.Identity (l, Stmt.Ithis _) ->
        local_set fr l (Option.value this ~default:(untainted Vnull));
        incr pc
    | Stmt.Identity (l, Stmt.Iparam i) ->
        let tv =
          Option.value (List.nth_opt args i) ~default:(untainted Vnull)
        in
        (* ground-truth tags on parameter identities refine labels:
           this parameter is a declared source observation point *)
        let tv =
          match tag with
          | Some _ when not (Labels.is_empty (deep_labels st tv)) ->
              refine_tags st tag tv
          | _ -> tv
        in
        local_set fr l tv;
        incr pc
    | Stmt.Assign (lv, e) ->
        let tv = eval_expr st fr e ~tag in
        (match lv with
        | Stmt.Llocal x -> local_set fr x tv
        | Stmt.Lfield (x, f) -> (
            match (local_get fr x).v with
            | Vobj id -> Hashtbl.replace (obj st id).h_fields f.Types.f_name tv
            | Vnull -> () (* NPE: swallowed, execution continues *)
            | _ -> err "field write on a non-object")
        | Stmt.Lstatic f ->
            ensure_clinit st f.Types.f_class;
            Hashtbl.replace st.statics (static_key f) tv
        | Stmt.Larray (x, i) -> (
            match ((local_get fr x).v, (eval_imm st fr i).v) with
            | Varr id, Vint idx ->
                let a = arr st id in
                if idx >= 0 && idx < Array.length a.a_cells then
                  a.a_cells.(idx) <- tv
            | Vnull, _ -> ()
            | _ -> err "array write on a non-array"));
        incr pc
    | Stmt.InvokeStmt inv ->
        ignore (invoke st fr inv ~tag);
        incr pc
    | Stmt.If (c, tgt) -> if eval_cond st fr c then pc := tgt else incr pc
    | Stmt.Goto tgt -> pc := tgt
    | Stmt.Return None ->
        running := false
    | Stmt.Return (Some i) ->
        ret := eval_imm st fr i;
        running := false
    | Stmt.Throw _ ->
        (* exceptions terminate the frame (no handlers in µJimple) *)
        running := false
    | Stmt.Nop -> incr pc)
  done;
  !ret

(* ------------------------------------------------------------------ *)
(* public API                                                          *)
(* ------------------------------------------------------------------ *)

(** [call st ~cls ~mname ~this ~args] invokes a method by name on a
    class, running its real body when present.  Entry point for
    drivers. *)
let call st ~cls ~mname ~this ~args =
  ensure_clinit st cls;
  match Scene.resolve_concrete_named st.scene cls mname with
  | Some (_, m) when Jclass.has_body m ->
      exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body) ~this ~args
  | _ -> untainted Vnull

(** [new_instance st cls] allocates an instance and runs its no-arg
    constructor if present. *)
let new_instance st cls =
  ensure_clinit st cls;
  let id = alloc_obj st cls in
  let tv = untainted (Vobj id) in
  (match Scene.resolve_concrete st.scene cls ("<init>", []) with
  | Some (_, m) when Jclass.has_body m ->
      ignore
        (exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body)
           ~this:(Some tv) ~args:[])
  | _ -> ());
  tv

(** [leaks st] returns the recorded leaks, oldest first. *)
let leaks st = List.rev st.leaks
