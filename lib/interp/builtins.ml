(** Framework models for the µJimple interpreter: the concrete
    behaviour of the Android/JRE classes the benchmarks use.

    Sources return realistic tainted data (labelled with the call
    site's ground-truth tag), UI views hold per-control text that the
    driver pre-populates (tainted for password fields), collections
    and string builders behave concretely so the dynamic analysis gets
    per-element precision — everything the static analysis
    over-approximates.

    Install into an interpreter state with {!install}. *)

open Fd_ir
open Value
module SS = Fd_frontend.Sourcesink

let str s = untainted (Vstr s)
let vint i = untainted (Vint i)
let vnull = untainted Vnull

let join_all recv args =
  List.fold_left
    (fun acc (a : tvalue) -> join acc a.labels)
    (match recv with Some (r : tvalue) -> r.labels | None -> Labels.empty)
    args

let string_of_tv (tv : tvalue) =
  match tv.v with
  | Vstr s -> s
  | Vint i -> string_of_int i
  | Vnull -> "null"
  | Vobj id -> Printf.sprintf "obj#%d" id
  | Varr id -> Printf.sprintf "arr#%d" id

let map_key tv = string_of_tv tv

let payload_of st (recv : tvalue option) =
  match recv with
  | Some { v = Vobj id; _ } -> Some (Interp.obj st id)
  | _ -> None

(* Intent target setters keep their state under reserved "__" keys in
   the intent's map payload; the ICC driver reads them back to build a
   concrete intent description for resolution.  App extras never start
   with "__", so the namespaces cannot collide. *)
let intent_put st recv key v =
  match payload_of st recv with
  | Some { h_payload = Pmap m; _ } ->
      m := (key, v) :: List.remove_assoc key !m
  | _ -> ()

let intent_get st recv key =
  match payload_of st recv with
  | Some { h_payload = Pmap m; _ } -> (
      match List.assoc_opt key !m with
      | Some { v = Vstr s; _ } -> Some s
      | _ -> None)
  | _ -> None

(* lazily create the view object for a layout control *)
let view_for st (ctl : Fd_frontend.Layout.control) =
  match Hashtbl.find_opt st.Interp.views ctl.Fd_frontend.Layout.ctl_id with
  | Some id -> id
  | None ->
      let text =
        if ctl.Fd_frontend.Layout.ctl_password then
          with_labels
            (Labels.singleton
               (label ~category:SS.Password
                  (Printf.sprintf "password field %s" ctl.Fd_frontend.Layout.ctl_name)))
            (Vstr "s3cr3t-user-input")
        else untainted (Vstr ("input:" ^ ctl.Fd_frontend.Layout.ctl_name))
      in
      let id =
        Interp.alloc_obj st
          ~payload:
            (Pview { view_name = ctl.Fd_frontend.Layout.ctl_name; view_text = text })
          ctl.Fd_frontend.Layout.ctl_class
      in
      Hashtbl.replace st.Interp.views ctl.Fd_frontend.Layout.ctl_id id;
      id

let src_label st ~tag ~category desc =
  ignore st;
  Labels.singleton (label ?tag ~category desc)

(* the core dispatcher; [cls] is the statically named class, [runtime_cls]
   the receiver's allocated class when available *)
let call st ~tag ~cls ~runtime_cls ~mname ~recv ~args : tvalue option =
  let either_cls c =
    String.equal cls c || String.equal runtime_cls c
    || Scene.is_subtype st.Interp.scene runtime_cls c
    || Scene.is_subtype st.Interp.scene cls c
  in
  match mname with
  (* ---------------- telephony sources ---------------- *)
  | "getDeviceId" when either_cls "android.telephony.TelephonyManager" ->
      Some
        (with_labels
           (src_label st ~tag ~category:SS.Imei "TelephonyManager.getDeviceId")
           (Vstr "358240051111110"))
  | "getSubscriberId" | "getSimSerialNumber" | "getLine1Number"
    when either_cls "android.telephony.TelephonyManager" ->
      Some
        (with_labels
           (src_label st ~tag ~category:SS.Imei ("TelephonyManager." ^ mname))
           (Vstr "310260000000000"))
  (* ---------------- location ---------------- *)
  | "getLastKnownLocation" when either_cls "android.location.LocationManager"
    ->
      let loc = Interp.alloc_obj st "android.location.Location" in
      let lbl = src_label st ~tag ~category:SS.Location "LocationManager.getLastKnownLocation" in
      let o = Interp.obj st loc in
      Hashtbl.replace o.h_fields "lat" (with_labels lbl (Vstr "49.87"));
      Hashtbl.replace o.h_fields "lon" (with_labels lbl (Vstr "8.65"));
      Some (with_labels lbl (Vobj loc))
  | "getLatitude" | "getLongitude" when either_cls "android.location.Location"
    -> (
      match payload_of st recv with
      | Some o ->
          let f = if mname = "getLatitude" then "lat" else "lon" in
          Some
            (match Hashtbl.find_opt o.h_fields f with
            | Some tv -> tv
            | None ->
                (* a Location the app constructed itself: propagate the
                   object's labels *)
                with_labels (join_all recv args) (Vstr "0.0"))
      | None -> Some vnull)
  | "requestLocationUpdates" | "removeUpdates"
    when either_cls "android.location.LocationManager" ->
      Some vnull
  (* ---------------- UI ---------------- *)
  | "setContentView" -> Some vnull
  | "findViewById" -> (
      match args with
      | [ { v = Vint id; _ } ] -> (
          match Fd_frontend.Layout.control_by_id st.Interp.layout id with
          | Some ctl ->
              let oid = view_for st ctl in
              (* the call-site tag refines the password label for
                 ground-truth matching *)
              (match ((Interp.obj st oid).h_payload, tag) with
              | Pview pv, Some _ when is_tainted pv.view_text ->
                  pv.view_text <-
                    {
                      pv.view_text with
                      labels =
                        Labels.map
                          (fun lb -> { lb with lb_tag = tag })
                          pv.view_text.labels;
                    }
              | _ -> ());
              Some (untainted (Vobj oid))
          | None ->
              Some (untainted (Vobj (Interp.alloc_obj st "android.view.View"))))
      | _ -> Some vnull)
  | "getText" | "toString"
    when either_cls "android.widget.TextView"
         || either_cls "android.widget.EditText" -> (
      match payload_of st recv with
      | Some { h_payload = Pview pv; _ } -> Some pv.view_text
      | _ -> Some (with_labels (join_all recv args) (Vstr "")))
  | "setText"
    when either_cls "android.widget.TextView"
         || either_cls "android.widget.EditText" -> (
      match (payload_of st recv, args) with
      | Some { h_payload = Pview pv; _ }, [ tv ] ->
          pv.view_text <- tv;
          Some vnull
      | _ -> Some vnull)
  | "setOnClickListener" | "setOnLongClickListener" | "setOnTouchListener" ->
      Some vnull
  (* ---------------- SMS / logging / net sinks: the sink event is
     recorded generically by the interpreter before dispatch; here we
     only provide the concrete no-op behaviour ---------------- *)
  | "getDefault" when either_cls "android.telephony.SmsManager" ->
      Some (untainted (Vobj (Interp.alloc_obj st "android.telephony.SmsManager")))
  | "sendTextMessage" | "sendDataMessage"
    when either_cls "android.telephony.SmsManager" ->
      Some vnull
  | ("d" | "e" | "i" | "v" | "w") when either_cls "android.util.Log" ->
      Some (vint 1)
  | "write" | "sendRequest" | "openConnection" | "putString" ->
      (* stream/net/prefs sinks and Bundle.putString share names; for
         Bundle/Map semantics fall through below when a payload exists *)
      (match payload_of st recv with
      | Some { h_payload = Pmap m; _ } -> (
          match args with
          | [ k; v ] ->
              m := (map_key k, v) :: List.remove_assoc (map_key k) !m;
              Some vnull
          | _ -> Some vnull)
      | _ -> Some vnull)
  (* ---------------- intents / bundles ---------------- *)
  | "<init>"
    when either_cls "android.content.Intent"
         || either_cls "android.os.Bundle" ->
      (match payload_of st recv with
      | Some o -> (
          match o.h_payload with
          | Pmap _ -> ()
          | _ -> (
              (* re-allocate with a map payload: constructor ran on a
                 plain allocation *)
              match recv with
              | Some { v = Vobj id; _ } ->
                  Hashtbl.replace st.Interp.heap_objs id
                    { o with h_payload = Pmap (ref []) }
              | _ -> ()))
      | None -> ());
      (* new Intent(action) / new Intent(ctx, C.class): mirror the
         static abstraction — a string with ':' is a data URI, a
         dotted string is readable as action or explicit class (the
         dispatcher tries the class reading first) *)
      if either_cls "android.content.Intent" then
        List.iter
          (fun (a : tvalue) ->
            match a.v with
            | Vstr s when String.contains s ':' ->
                intent_put st recv "__data" a
            | Vstr s ->
                intent_put st recv "__action" a;
                if String.contains s '.' then intent_put st recv "__class" a
            | _ -> ())
          args;
      Some vnull
  | "setClass" | "setClassName" | "setComponent"
    when either_cls "android.content.Intent" ->
      (* the target class is the last string argument (setClassName
         takes the context or package name first) *)
      (match
         List.fold_left
           (fun acc (a : tvalue) ->
             match a.v with Vstr _ -> Some a | _ -> acc)
           None args
       with
      | Some a -> intent_put st recv "__class" a
      | None -> ());
      Some (Option.value recv ~default:vnull)
  | "setAction" when either_cls "android.content.Intent" ->
      (match args with
      | a :: _ -> intent_put st recv "__action" a
      | [] -> ());
      Some (Option.value recv ~default:vnull)
  | "addCategory" when either_cls "android.content.Intent" ->
      (match args with
      | a :: _ ->
          let prev =
            match intent_get st recv "__categories" with
            | Some s -> s ^ "\n"
            | None -> ""
          in
          intent_put st recv "__categories"
            (untainted (Vstr (prev ^ string_of_tv a)))
      | [] -> ());
      Some (Option.value recv ~default:vnull)
  | "setData" when either_cls "android.content.Intent" ->
      (match args with
      | a :: _ -> intent_put st recv "__data" a
      | [] -> ());
      Some (Option.value recv ~default:vnull)
  | "setType" when either_cls "android.content.Intent" ->
      (match args with
      | a :: _ -> intent_put st recv "__mime" a
      | [] -> ());
      Some (Option.value recv ~default:vnull)
  | "setDataAndType" when either_cls "android.content.Intent" ->
      (match args with
      | d :: t :: _ ->
          intent_put st recv "__data" d;
          intent_put st recv "__mime" t
      | _ -> ());
      Some (Option.value recv ~default:vnull)
  | "putExtra" | "putExtras" -> (
      match (payload_of st recv, args) with
      | Some { h_payload = Pmap m; _ }, [ k; v ] ->
          m := (map_key k, v) :: List.remove_assoc (map_key k) !m;
          Some (Option.value recv ~default:vnull)
      | _ -> Some (Option.value recv ~default:vnull))
  | "getStringExtra" | "getString" -> (
      match (payload_of st recv, args) with
      | Some { h_payload = Pmap m; _ }, [ k ] ->
          Some (Option.value (List.assoc_opt (map_key k) !m) ~default:vnull)
      | _ -> Some vnull)
  | "getExtras" -> Some (Option.value recv ~default:vnull)
  | "getIntent" -> (
      (* the intent the driver attached to the component instance *)
      match payload_of st recv with
      | Some o ->
          Some
            (Option.value
               (Hashtbl.find_opt o.h_fields "__intent")
               ~default:vnull)
      | None -> Some vnull)
  | "startActivity" | "startService" | "sendBroadcast"
  | "startActivityForResult" -> (
      match args with
      | intent :: _ ->
          st.Interp.sent_intents <- (mname, intent) :: st.Interp.sent_intents;
          Some vnull
      | [] -> Some vnull)
  | "setResult" ->
      (* handed back through the framework: not a monitored sink *)
      Some vnull
  (* ---------------- strings ---------------- *)
  | "concat" -> (
      match (recv, args) with
      | Some r, [ a ] ->
          Some
            (with_labels (join_all recv args)
               (Vstr (string_of_tv r ^ string_of_tv a)))
      | _ -> None)
  | "substring" -> (
      match (recv, args) with
      | Some r, ({ v = Vint i; _ } :: _) ->
          let s = string_of_tv r in
          let i = min (max i 0) (String.length s) in
          Some
            (with_labels (join_all recv args)
               (Vstr (String.sub s i (String.length s - i))))
      | _ -> None)
  | "toLowerCase" ->
      Option.map
        (fun (r : tvalue) ->
          with_labels r.labels (Vstr (String.lowercase_ascii (string_of_tv r))))
        recv
  | "toUpperCase" ->
      Option.map
        (fun (r : tvalue) ->
          with_labels r.labels (Vstr (String.uppercase_ascii (string_of_tv r))))
        recv
  | "trim" ->
      Option.map
        (fun (r : tvalue) ->
          with_labels r.labels (Vstr (String.trim (string_of_tv r))))
        recv
  | "intern" -> recv
  | "valueOf" | "format" when either_cls "java.lang.String" -> (
      match args with
      | [ { v = Varr id; _ } ] ->
          (* valueOf(char[]): rebuild the string from the cells, joining
             the per-cell labels *)
          let a = Interp.arr st id in
          let buf = Buffer.create (Array.length a.a_cells) in
          let lbl = ref Labels.empty in
          Array.iter
            (fun (c : tvalue) ->
              lbl := join !lbl c.labels;
              match c.v with
              | Vint i when i > 0 && i < 256 -> Buffer.add_char buf (Char.chr i)
              | _ -> ())
            a.a_cells;
          Some (with_labels !lbl (Vstr (Buffer.contents buf)))
      | _ ->
          Some
            (with_labels (join_all recv args)
               (Vstr (String.concat "" (List.map string_of_tv args)))))
  | "charAt" -> (
      match (recv, args) with
      | Some r, [ { v = Vint i; _ } ] ->
          let s = string_of_tv r in
          let c = if i >= 0 && i < String.length s then s.[i] else ' ' in
          Some (with_labels r.labels (Vint (Char.code c)))
      | _ -> None)
  | "length" when either_cls "java.lang.String" ->
      Option.map
        (fun (r : tvalue) ->
          (* length is a benign projection: TaintDroid-style monitors
             do not propagate here either *)
          untainted (Vint (String.length (string_of_tv r))))
        recv
  | "isEmpty" when either_cls "java.lang.String" ->
      Option.map
        (fun (r : tvalue) ->
          untainted (Vint (if string_of_tv r = "" then 1 else 0)))
        recv
  | "equals" ->
      Some
        (untainted
           (Vint
              (match (recv, args) with
              | Some r, [ a ] -> if string_of_tv r = string_of_tv a then 1 else 0
              | _ -> 0)))
  | "toCharArray" | "getBytes" -> (
      match recv with
      | Some r ->
          let s = string_of_tv r in
          let id = Interp.alloc_arr st Types.Char (String.length s) in
          let a = Interp.arr st id in
          String.iteri
            (fun i c -> a.a_cells.(i) <- with_labels r.labels (Vint (Char.code c)))
            s;
          Some (with_labels r.labels (Varr id))
      | None -> None)
  | "split" -> (
      match recv with
      | Some r ->
          let parts = String.split_on_char ',' (string_of_tv r) in
          let id = Interp.alloc_arr st (Types.Ref "java.lang.String") (List.length parts) in
          let a = Interp.arr st id in
          List.iteri (fun i p -> a.a_cells.(i) <- with_labels r.labels (Vstr p)) parts;
          Some (with_labels r.labels (Varr id))
      | None -> None)
  (* ---------------- string builders ---------------- *)
  | _
    when either_cls "java.lang.StringBuilder"
         || either_cls "java.lang.StringBuffer" -> (
      let buf o =
        match o.h_payload with
        | Pbuffer b -> Some b
        | _ -> None
      in
      match (mname, payload_of st recv) with
      | "<init>", Some o -> (
          match (buf o, recv) with
          | None, Some { v = Vobj id; _ } ->
              Hashtbl.replace st.Interp.heap_objs id
                { o with h_payload = Pbuffer (ref ("", Labels.empty)) };
              (* seed with a constructor argument if present *)
              (match (args, (Interp.obj st id).h_payload) with
              | [ a ], Pbuffer b -> b := (string_of_tv a, a.labels)
              | _ -> ());
              Some vnull
          | _ -> Some vnull)
      | ("append" | "insert"), Some o -> (
          match (buf o, args) with
          | Some b, a :: _ ->
              let s, lbl = !b in
              b := (s ^ string_of_tv a, join lbl a.labels);
              Some (Option.value recv ~default:vnull)
          | _ -> Some (Option.value recv ~default:vnull))
      | "toString", Some o -> (
          match buf o with
          | Some b ->
              let s, lbl = !b in
              Some (with_labels lbl (Vstr s))
          | None -> Some (str ""))
      | _ -> Some vnull)
  (* ---------------- collections ---------------- *)
  | _
    when either_cls "java.util.List" || either_cls "java.util.Set"
         || either_cls "java.util.ArrayList"
         || either_cls "java.util.LinkedList"
         || either_cls "java.util.HashSet"
         || either_cls "java.util.Iterator" -> (
      let lst o = match o.h_payload with Plist l -> Some l | _ -> None in
      match (mname, payload_of st recv) with
      | "<init>", Some o -> (
          match recv with
          | Some { v = Vobj id; _ } when lst o = None ->
              Hashtbl.replace st.Interp.heap_objs id
                { o with h_payload = Plist (ref []) };
              Some vnull
          | _ -> Some vnull)
      | "add", Some o -> (
          match (lst o, args) with
          | Some l, [ a ] ->
              l := !l @ [ a ];
              Some (vint 1)
          | _ -> Some (vint 1))
      | "get", Some o -> (
          match (lst o, args) with
          | Some l, [ { v = Vint i; _ } ] ->
              Some (Option.value (List.nth_opt !l i) ~default:vnull)
          | _ -> Some vnull)
      | "remove", Some o -> (
          match (lst o, args) with
          | Some l, [ { v = Vint i; _ } ] ->
              let removed = List.nth_opt !l i in
              l := List.filteri (fun j _ -> j <> i) !l;
              Some (Option.value removed ~default:vnull)
          | _ -> Some vnull)
      | "iterator", Some o -> (
          match lst o with
          | Some l ->
              let it =
                Interp.alloc_obj st ~payload:(Plist (ref !l)) "java.util.Iterator"
              in
              Some (untainted (Vobj it))
          | None -> Some vnull)
      | "next", Some o -> (
          match lst o with
          | Some l -> (
              match !l with
              | x :: rest ->
                  l := rest;
                  Some x
              | [] -> Some vnull)
          | None -> Some vnull)
      | "hasNext", Some o -> (
          match lst o with
          | Some l -> Some (vint (if !l = [] then 0 else 1))
          | None -> Some (vint 0))
      | "toArray", Some o -> (
          match lst o with
          | Some l ->
              let id =
                Interp.alloc_arr st (Types.Ref "java.lang.Object") (List.length !l)
              in
              let a = Interp.arr st id in
              List.iteri (fun i tv -> a.a_cells.(i) <- tv) !l;
              Some (untainted (Varr id))
          | None -> Some vnull)
      | "size", Some o -> (
          match lst o with
          | Some l -> Some (vint (List.length !l))
          | None -> Some (vint 0))
      | _ -> Some vnull)
  | _ when either_cls "java.util.Map" || either_cls "java.util.HashMap" -> (
      let themap o = match o.h_payload with Pmap m -> Some m | _ -> None in
      match (mname, payload_of st recv) with
      | "<init>", Some o -> (
          match recv with
          | Some { v = Vobj id; _ } when themap o = None ->
              Hashtbl.replace st.Interp.heap_objs id
                { o with h_payload = Pmap (ref []) };
              Some vnull
          | _ -> Some vnull)
      | "put", Some o -> (
          match (themap o, args) with
          | Some m, [ k; v ] ->
              let key = map_key k in
              let old = List.assoc_opt key !m in
              m := (key, v) :: List.remove_assoc key !m;
              Some (Option.value old ~default:vnull)
          | _ -> Some vnull)
      | "get", Some o -> (
          match (themap o, args) with
          | Some m, [ k ] ->
              Some (Option.value (List.assoc_opt (map_key k) !m) ~default:vnull)
          | _ -> Some vnull)
      | ("keySet" | "values"), Some o -> (
          match themap o with
          | Some m ->
              let pick (k, v) = if mname = "keySet" then str k else v in
              let id =
                Interp.alloc_obj st
                  ~payload:(Plist (ref (List.map pick !m)))
                  "java.util.HashSet"
              in
              Some (untainted (Vobj id))
          | None -> Some vnull)
      | _ -> Some vnull)
  (* ---------------- System ---------------- *)
  | "arraycopy" when either_cls "java.lang.System" -> (
      match args with
      | [ { v = Varr src; _ }; { v = Vint sp; _ }; { v = Varr dst; _ };
          { v = Vint dp; _ }; { v = Vint n; _ } ] ->
          let s = Interp.arr st src and d = Interp.arr st dst in
          for i = 0 to n - 1 do
            if
              sp + i < Array.length s.a_cells
              && dp + i < Array.length d.a_cells
            then d.a_cells.(dp + i) <- s.a_cells.(sp + i)
          done;
          Some vnull
      | _ -> Some vnull)
  (* ---------------- reflection ---------------- *)
  (* A dynamic monitor executes reflective calls like any other
     (Section 7) — the method handle is a concrete value, so the
     dispatch is exact.  The static analysis deliberately builds no
     reflective call edges (DESIGN.md §5 limitations), which makes
     these flows the canonical statics-miss/dynamics-find category the
     differential harness classifies as explained-FN(reflection). *)
  | "forName" when either_cls "java.lang.Class" -> (
      match args with
      | { v = Vstr target; _ } :: _ ->
          let id = Interp.alloc_obj st "java.lang.Class" in
          Hashtbl.replace (Interp.obj st id).h_fields "__target"
            (str target);
          Some (untainted (Vobj id))
      | _ -> Some vnull)
  | "getClass" -> (
      match recv with
      | Some { v = Vobj rid; _ } ->
          let id = Interp.alloc_obj st "java.lang.Class" in
          Hashtbl.replace (Interp.obj st id).h_fields "__target"
            (str (Interp.obj st rid).h_cls);
          Some (untainted (Vobj id))
      | _ -> Some vnull)
  | "getMethod" | "getDeclaredMethod" -> (
      (* the receiver is either a Class handle (getClass/forName) or —
         the DroidBench idiom — the instance itself statically typed
         as java.lang.Class; resolve the target class accordingly *)
      let target_cls =
        match recv with
        | Some { v = Vobj rid; _ } -> (
            let o = Interp.obj st rid in
            if String.equal o.h_cls "java.lang.Class" then
              match Hashtbl.find_opt o.h_fields "__target" with
              | Some { v = Vstr c; _ } -> Some c
              | _ -> None
            else Some o.h_cls)
        | _ -> None
      in
      match (target_cls, args) with
      | Some tc, { v = Vstr mname'; _ } :: _ ->
          let id = Interp.alloc_obj st "java.lang.reflect.Method" in
          let o = Interp.obj st id in
          Hashtbl.replace o.h_fields "__cls" (str tc);
          Hashtbl.replace o.h_fields "__mname" (str mname');
          Some (untainted (Vobj id))
      | _ -> Some vnull)
  | "invoke" when either_cls "java.lang.reflect.Method" -> (
      match recv with
      | Some { v = Vobj rid; _ } -> (
          let o = Interp.obj st rid in
          match
            ( Hashtbl.find_opt o.h_fields "__cls",
              Hashtbl.find_opt o.h_fields "__mname" )
          with
          | Some { v = Vstr tc; _ }, Some { v = Vstr mn; _ } ->
              let this, margs =
                match args with
                | ({ v = Vobj _; _ } as t) :: rest -> (Some t, rest)
                | _ :: rest -> (None, rest)
                | [] -> (None, [])
              in
              Some (Interp.call st ~cls:tc ~mname:mn ~this ~args:margs)
          | _ -> Some vnull)
      | _ -> Some vnull)
  (* ---------------- emulator detection (the evasion demo) --------- *)
  | "isDebuggerConnected" | "isMonitored" ->
      (* a dynamic monitor IS attached: malware probing for it sees 1
         (the Section 7 "Bouncerland" evasion) *)
      Some (vint 1)
  | "hashCode" -> Some (vint 42)
  | _ -> None

(** [install st] wires the framework model into an interpreter
    state. *)
let install st = st.Interp.builtin <- call
