(** The event driver: dynamic (TaintDroid-style) analysis of apps.

    Coverage is an explicit knob, reproducing the paper's Section 7
    observation that a dynamic monitor is only as complete as the test
    driver that exercises the app. *)

open Value

type coverage =
  | Basic  (** launch each component once: create → start → resume *)
  | Thorough
      (** full lifecycle excursions, every discovered callback fired
          between resume and pause, the component schedule run twice *)

val string_of_coverage : coverage -> string

val run :
  ?coverage:coverage ->
  ?max_steps:int ->
  ?icc:bool ->
  Fd_frontend.Apk.loaded ->
  leak list
(** [run loaded] concretely executes the app under the given coverage
    policy (default {!Thorough}) and returns the observed leaks.
    Framework behaviour comes from {!Builtins}; execution stops at
    [max_steps] interpreter steps.

    With [~icc:true] the driver concretely dispatches sent intents:
    each intent a component sends is resolved against the manifest
    (Android's filter tests on the concrete payload) and the receiving
    components run with the very intent object, so taint rides into
    them through the shared heap.  Deliverable sends stop counting as
    sinks themselves, and tainted [setResult] payloads become leaks —
    the dynamic counterpart of the static {!Fd_core.Config.t.icc}
    tier. *)

val run_merged :
  ?coverage:coverage ->
  ?max_steps:int ->
  ?icc:bool ->
  Fd_frontend.Apk.merged ->
  leak list
(** [run_merged m] dynamically executes several apps sharing one
    merged scene (collusion pairs); with [~icc:true] intents cross app
    boundaries only into exported components. *)

val run_plain :
  ?max_steps:int ->
  classes:Fd_ir.Jclass.t list ->
  entries:(string * string) list ->
  defs:Fd_frontend.Sourcesink.t ->
  unit ->
  leak list
(** [run_plain ~classes ~entries ~defs ()] dynamically executes a
    plain (non-Android) program: each [(class, method)] entry is
    invoked once with generic arguments; sources and sinks come from
    [defs] (the SecuriBench setup). *)

val findings : leak list -> (string option * string option) list
(** [findings leaks] views dynamic leaks as (source tag, sink tag)
    pairs for uniform scoring against benchmark ground truth. *)
