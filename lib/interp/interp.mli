(** A concrete interpreter for µJimple with dynamic taint tracking —
    the TaintDroid-counterpart substrate (Section 7): labels ride on
    values, fields and array cells individually; static initialisers
    run at first use; framework behaviour comes from the installed
    {!Builtins} model. *)

open Fd_ir
open Value

exception Budget_exhausted
exception Runtime_error of string

type state = {
  scene : Scene.t;
  defs : Fd_frontend.Sourcesink.t;
  layout : Fd_frontend.Layout.t;
  heap_objs : (obj_id, hobj) Hashtbl.t;
  heap_arrs : (obj_id, harr) Hashtbl.t;
  statics : (string, tvalue) Hashtbl.t;
  mutable next_id : int;
  mutable leaks : leak list;
  leak_keys : (string, unit) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
  clinit_done : (string, unit) Hashtbl.t;
  views : (int, obj_id) Hashtbl.t;  (** resource id -> view object *)
  mutable sent_intents : (string * tvalue) list;
  mutable sink_filter : string -> tvalue list -> bool;
      (** [sink_filter mname args = true] suppresses the generic sink
          event for this call — the ICC driver uses it to stop
          counting a deliverable intent-send as a leak by itself *)
  mutable builtin : builtin_fn;  (** installed by {!Builtins.install} *)
}

and builtin_fn =
  state ->
  tag:string option ->
  cls:string ->
  runtime_cls:string ->
  mname:string ->
  recv:tvalue option ->
  args:tvalue list ->
  tvalue option

val create :
  ?max_steps:int ->
  scene:Scene.t ->
  defs:Fd_frontend.Sourcesink.t ->
  layout:Fd_frontend.Layout.t ->
  unit ->
  state

val alloc_obj : state -> ?payload:payload -> string -> obj_id
val alloc_arr : state -> Types.typ -> int -> obj_id
val obj : state -> obj_id -> hobj
val arr : state -> obj_id -> harr

val record_leak :
  state ->
  labels:Labels.t ->
  sink_tag:string option ->
  sink_cat:Fd_frontend.Sourcesink.category ->
  where:string ->
  unit
(** record one leak per label (deduplicated on source tag, sink tag
    and location) — the ICC driver uses it for [setResult] payloads
    handed back to the external caller *)

val deep_labels : state -> tvalue -> Labels.t
(** labels reachable through object fields, payloads and array cells
    (bounded depth) — what the monitor sees when a compound value
    crosses the framework boundary *)

val exec_body :
  state -> Types.method_sig -> Body.t -> this:tvalue option ->
  args:tvalue list -> tvalue
(** execute one method body.
    @raise Budget_exhausted past [max_steps]
    @raise Runtime_error on type confusion *)

val call :
  state -> cls:string -> mname:string -> this:tvalue option ->
  args:tvalue list -> tvalue
(** invoke a method by name on a class, running its real body when
    present — the drivers' entry point *)

val new_instance : state -> string -> tvalue
(** allocate and run the no-argument constructor when present *)

val leaks : state -> leak list
(** recorded leaks, oldest first *)
