(** The event driver: dynamic analysis of Android apps.

    TaintDroid-style monitors only observe executions that actually
    happen; their completeness is bounded by how thoroughly a test
    driver exercises the app (Section 7: "TaintDroid can successfully
    detect malware only if paired with a dynamic testing approach that
    yields decent code coverage").  This driver makes that coverage an
    explicit knob:

    - {b Basic}: launch each component once and run only the startup
      path (create → start → resume) — the naive monkey-test level;
    - {b Thorough}: full lifecycle excursions (pause/resume cycles,
      stop/restart, destroy), every discovered callback fired between
      resume and pause, and the whole component schedule repeated so
      state staged in one round can leak in the next.

    The DroidBench comparison between the two coverage levels and the
    static analysis reproduces the paper's static-vs-dynamic
    trade-off: the dynamic monitor never reports a false positive
    (per-cell array precision, real strong updates, concrete map
    keys), finds the reflective/initialisation flows statics miss, and
    silently loses every leak its driver fails to exercise. *)

open Fd_ir
open Value
module SS = Fd_frontend.Sourcesink
module FW = Fd_frontend.Framework
module M = Fd_frontend.Manifest

type coverage = Basic | Thorough

let string_of_coverage = function Basic -> "basic" | Thorough -> "thorough"

(* a fresh intent carrying externally supplied (hence tainted) data,
   handed to receivers and getIntent *)
let make_external_intent st =
  let id = Interp.alloc_obj st ~payload:(Pmap (ref [])) "android.content.Intent" in
  let o = Interp.obj st id in
  (match o.h_payload with
  | Pmap m ->
      m :=
        [
          ( "data",
            with_labels
              (Labels.singleton
                 (label ~category:SS.Intent_data "external intent extra"))
              (Vstr "external-intent-data") );
        ]
  | _ -> ());
  untainted (Vobj id)

let make_location st =
  let id = Interp.alloc_obj st "android.location.Location" in
  let o = Interp.obj st id in
  let lbl =
    Labels.singleton (label ~category:SS.Location "framework location update")
  in
  Hashtbl.replace o.h_fields "lat" (with_labels lbl (Vstr "49.8728"));
  Hashtbl.replace o.h_fields "lon" (with_labels lbl (Vstr "8.6512"));
  with_labels lbl (Vobj id)

(* dummy argument values by parameter type *)
let arg_for st (ty : Types.typ) =
  match ty with
  | Types.Int | Types.Bool | Types.Char | Types.Long -> untainted (Vint 0)
  | Types.Ref "android.location.Location" -> make_location st
  | Types.Ref "android.content.Intent" -> make_external_intent st
  | Types.Ref "android.view.View" ->
      untainted (Vobj (Interp.alloc_obj st "android.view.View"))
  | Types.Ref "android.os.Bundle" ->
      untainted (Vobj (Interp.alloc_obj st ~payload:(Pmap (ref [])) "android.os.Bundle"))
  | Types.Ref "android.content.Context" ->
      untainted (Vobj (Interp.alloc_obj st "android.content.Context"))
  | _ -> untainted Vnull

let call_lc st ?intent inst _cls (m : Jclass.jmethod) =
  let args =
    List.map
      (fun ty ->
        match (ty, intent) with
        (* a concretely dispatched intent reaches the receiver's
           parameters (onReceive, onStartCommand, onNewIntent) *)
        | Types.Ref "android.content.Intent", Some tv -> tv
        | _ -> arg_for st ty)
      m.Jclass.jm_sig.Types.m_params
  in
  try
    ignore
      (Interp.exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body)
         ~this:(Some inst) ~args)
  with Interp.Runtime_error _ -> ()

let lc st scene ?intent inst cls name =
  match Scene.resolve_concrete_named scene cls name with
  | Some (_, m) when Jclass.has_body m -> call_lc st ?intent inst cls m
  | _ -> ()

(* fire the component's callbacks, on the component instance or fresh
   listener instances (with the component as outer reference) *)
let fire_callbacks st scene inst (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  List.iter
    (fun (cb : Fd_lifecycle.Callbacks.callback) ->
      let recv =
        if cb.Fd_lifecycle.Callbacks.cb_on_component then inst
        else begin
          let cls = cb.Fd_lifecycle.Callbacks.cb_class in
          let id = Interp.alloc_obj st cls in
          let tv = untainted (Vobj id) in
          (* prefer the outer-reference constructor *)
          (match
             Scene.resolve_concrete scene cls
               ("<init>", [ Types.Ref Types.object_class ])
           with
          | Some (_, m) when Jclass.has_body m ->
              ignore
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some tv) ~args:[ inst ])
          | _ -> (
              match Scene.resolve_concrete scene cls ("<init>", []) with
              | Some (_, m) when Jclass.has_body m ->
                  ignore
                    (Interp.exec_body st m.Jclass.jm_sig
                       (Option.get m.Jclass.jm_body) ~this:(Some tv) ~args:[])
              | _ -> ()));
          tv
        end
      in
      try call_lc st recv cb.Fd_lifecycle.Callbacks.cb_class
            cb.Fd_lifecycle.Callbacks.cb_method
      with Interp.Runtime_error _ -> ())
    cc.Fd_lifecycle.Callbacks.cc_callbacks

(* extension features under Thorough coverage: fire AsyncTasks with
   the doInBackground->onPostExecute result link, and run fragment
   lifecycles attached to the component *)
let fire_async_tasks st scene inst (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  List.iter
    (fun cls ->
      let task = untainted (Vobj (Interp.alloc_obj st cls)) in
      (match
         Scene.resolve_concrete scene cls
           ("<init>", [ Types.Ref Types.object_class ])
       with
      | Some (_, m) when Jclass.has_body m ->
          ignore
            (Interp.exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body)
               ~this:(Some task) ~args:[ inst ])
      | _ -> ());
      let call name args =
        match Scene.resolve_concrete_named scene cls name with
        | Some (_, m) when Jclass.has_body m -> (
            try
              Some
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some task) ~args)
            with Interp.Runtime_error _ -> None)
        | _ -> None
      in
      ignore (call "onPreExecute" []);
      let r =
        Option.value (call "doInBackground" [ untainted Vnull ])
          ~default:(untainted Vnull)
      in
      ignore (call "onPostExecute" [ r ]))
    cc.Fd_lifecycle.Callbacks.cc_async_tasks

let fragment_instances st scene inst (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  List.map
    (fun cls ->
      let frag = Interp.new_instance st cls in
      let call name args =
        match Scene.resolve_concrete_named scene cls name with
        | Some (_, m) when Jclass.has_body m -> (
            try
              ignore
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some frag) ~args)
            with Interp.Runtime_error _ -> ())
        | _ -> ()
      in
      call "onAttach" [ inst ];
      call "onCreate" [ untainted Vnull ];
      call "onCreateView" [ untainted Vnull ];
      call "onStart" [];
      call "onResume" [];
      (frag, cls))
    cc.Fd_lifecycle.Callbacks.cc_fragments

let teardown_fragments st scene frags =
  List.iter
    (fun (frag, cls) ->
      let call name =
        match Scene.resolve_concrete_named scene cls name with
        | Some (_, m) when Jclass.has_body m -> (
            try
              ignore
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some frag) ~args:[])
            with Interp.Runtime_error _ -> ())
        | _ -> ()
      in
      List.iter call
        [ "onPause"; "onStop"; "onDestroyView"; "onDestroy"; "onDetach" ])
    frags

let run_component st scene ~coverage ?intent
    (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  let cls = cc.Fd_lifecycle.Callbacks.cc_component in
  let inst = Interp.new_instance st cls in
  (* attach the dispatched intent (or a fresh external one) for
     getIntent *)
  (match inst.v with
  | Vobj id ->
      Hashtbl.replace (Interp.obj st id).h_fields "__intent"
        (match intent with
        | Some tv -> tv
        | None -> make_external_intent st)
  | _ -> ());
  let l = lc st scene ?intent inst cls in
  match cc.Fd_lifecycle.Callbacks.cc_kind with
  | FW.Activity -> (
      l "onCreate";
      l "onStart";
      l "onResume";
      match coverage with
      | Basic -> ()
      | Thorough ->
          let frags = fragment_instances st scene inst cc in
          fire_callbacks st scene inst cc;
          fire_async_tasks st scene inst cc;
          teardown_fragments st scene frags;
          l "onPause";
          (* resumed again without stopping *)
          l "onResume";
          fire_callbacks st scene inst cc;
          l "onPause";
          l "onStop";
          (* restart excursion *)
          l "onRestart";
          l "onStart";
          l "onResume";
          fire_callbacks st scene inst cc;
          (* framework-driven overrides such as onLowMemory *)
          l "onLowMemory";
          l "onBackPressed";
          l "onPause";
          l "onStop";
          l "onDestroy")
  | FW.Service -> (
      l "onCreate";
      (match Scene.resolve_concrete_named scene cls "onStartCommand" with
      | Some (_, m) when Jclass.has_body m -> call_lc st ?intent inst cls m
      | _ -> lc st scene ?intent inst cls "onStart");
      match coverage with
      | Basic -> ()
      | Thorough ->
          fire_callbacks st scene inst cc;
          lc st scene inst cls "onLowMemory";
          l "onDestroy")
  | FW.Receiver -> (
      l "onReceive";
      match coverage with
      | Basic -> ()
      | Thorough -> fire_callbacks st scene inst cc)
  | FW.Provider -> (
      l "onCreate";
      match coverage with
      | Basic -> ()
      | Thorough ->
          List.iter l [ "query"; "insert"; "update"; "delete" ];
          fire_callbacks st scene inst cc)

(* ------------------------------------------------------------------ *)
(* Concrete intent dispatch (the ICC driver)                           *)
(* ------------------------------------------------------------------ *)

let send_methods =
  [ "startActivity"; "startService"; "sendBroadcast"; "startActivityForResult" ]

(* "scheme://host/path" or "scheme:rest" → (scheme, host); mirrors the
   static resolver's reading so both sides agree on URI intents *)
let parse_uri s =
  match String.index_opt s ':' with
  | None -> (None, None)
  | Some i ->
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let host =
        if String.length rest >= 2 && String.sub rest 0 2 = "//" then
          let h = String.sub rest 2 (String.length rest - 2) in
          match String.index_opt h '/' with
          | Some j -> Some (String.sub h 0 j)
          | None -> Some h
        else None
      in
      (Some scheme, host)

(* read a sent intent's reserved "__" keys back into intent
   descriptions — the explicit-class reading plus the implicit one,
   the same duality the static abstraction uses *)
let descs_of_sent st (tv : tvalue) : M.intent_desc list =
  match tv.v with
  | Vobj id -> (
      match (Interp.obj st id).h_payload with
      | Pmap m ->
          let find k =
            match List.assoc_opt k !m with
            | Some { v = Vstr s; _ } -> Some s
            | _ -> None
          in
          let cats =
            match find "__categories" with
            | Some s -> String.split_on_char '\n' s
            | None -> []
          in
          let scheme, host =
            match find "__data" with
            | Some u -> parse_uri u
            | None -> (None, None)
          in
          let mime = find "__mime" in
          let explicit =
            match find "__class" with
            | Some c -> [ { M.blank_intent with M.it_class = Some c } ]
            | None -> []
          in
          let implicit =
            match find "__action" with
            | Some a ->
                [
                  {
                    M.blank_intent with
                    M.it_action = Some a;
                    M.it_categories = cats;
                    M.it_scheme = scheme;
                    M.it_host = host;
                    M.it_mime = mime;
                  };
                ]
            | None ->
                if scheme <> None || mime <> None then
                  [
                    {
                      M.blank_intent with
                      M.it_categories = cats;
                      M.it_scheme = scheme;
                      M.it_host = host;
                      M.it_mime = mime;
                    };
                  ]
                else []
          in
          explicit @ implicit
      | _ -> [])
  | _ -> []

(* the components able to receive any of [descs]: cross-app targets
   must be exported (the sender's own app sees everything) *)
let receivers_of ~apps ~sender_app descs =
  List.concat_map
    (fun (app, (m : M.t)) ->
      List.filter_map
        (fun (c : M.component) ->
          if
            (sender_app = Some app || c.M.comp_exported)
            && List.exists (M.component_receives c) descs
          then Some c.M.comp_class
          else None)
        m.M.components)
    apps
  |> List.sort_uniq compare

let run_gen ~coverage ~max_steps ~icc ~apps ~app_of
    (loaded : Fd_frontend.Apk.loaded) =
  let scene = loaded.Fd_frontend.Apk.scene in
  let st =
    Interp.create ~max_steps ~scene ~defs:(SS.default ())
      ~layout:loaded.Fd_frontend.Apk.layout ()
  in
  Builtins.install st;
  let ccs = Fd_lifecycle.Callbacks.discover_all loaded in
  let current_app = ref None in
  if icc then begin
    (* a deliverable send is not a leak by itself — the monitor
       follows the intent into the receiver instead (the dynamic
       counterpart of the static tier dropping resolved sends) *)
    st.Interp.sink_filter <-
      (fun mname args ->
        List.mem mname send_methods
        &&
        match args with
        | intent :: _ ->
            receivers_of ~apps ~sender_app:!current_app
              (descs_of_sent st intent)
            <> []
        | [] -> false);
    (* a tainted setResult payload is handed back to the external
       caller: a leak the plain driver does not monitor *)
    let base = st.Interp.builtin in
    st.Interp.builtin <-
      (fun st ~tag ~cls ~runtime_cls ~mname ~recv ~args ->
        (match mname with
        | "setResult" ->
            let labels =
              List.fold_left
                (fun acc a -> join acc (Interp.deep_labels st a))
                Labels.empty args
            in
            if not (Labels.is_empty labels) then
              Interp.record_leak st ~labels ~sink_tag:tag
                ~sink_cat:SS.Intent_data
                ~where:"android.app.Activity.setResult"
        | _ -> ());
        base st ~tag ~cls ~runtime_cls ~mname ~recv ~args)
  end;
  (* bounded concrete dispatch: drain the intents a component sent,
     resolve them against the manifests and run the receivers with the
     very intent object (taint flows through the shared heap) *)
  let dispatch_budget = ref 64 in
  let rec run_one ~depth ?intent (cc : Fd_lifecycle.Callbacks.component_callbacks) =
    let sender = app_of cc.Fd_lifecycle.Callbacks.cc_component in
    current_app := sender;
    st.Interp.sent_intents <- [];
    run_component st scene ~coverage ?intent cc;
    if icc && depth < 4 then begin
      let pending = List.rev st.Interp.sent_intents in
      st.Interp.sent_intents <- [];
      List.iter
        (fun (_mname, itv) ->
          List.iter
            (fun target ->
              if !dispatch_budget > 0 then begin
                decr dispatch_budget;
                match
                  List.find_opt
                    (fun c ->
                      c.Fd_lifecycle.Callbacks.cc_component = target)
                    ccs
                with
                | Some rcc -> run_one ~depth:(depth + 1) ~intent:itv rcc
                | None -> ()
              end)
            (receivers_of ~apps ~sender_app:sender (descs_of_sent st itv)))
        pending;
      current_app := sender
    end
  in
  let rounds = match coverage with Basic -> 1 | Thorough -> 2 in
  (try
     for _round = 1 to rounds do
       List.iter (run_one ~depth:0) ccs
     done
   with Interp.Budget_exhausted -> ());
  Interp.leaks st

(** [run ?coverage ?max_steps ?icc loaded] dynamically executes the
    app under the given coverage policy and returns the observed
    leaks.  With [~icc:true] the driver concretely dispatches sent
    intents to their resolved receivers (taint rides the intent
    object), suppresses deliverable sends as sinks, and monitors
    [setResult] payloads. *)
let run ?(coverage = Thorough) ?(max_steps = 2_000_000) ?(icc = false)
    (loaded : Fd_frontend.Apk.loaded) =
  run_gen ~coverage ~max_steps ~icc
    ~apps:
      [ (loaded.Fd_frontend.Apk.name, loaded.Fd_frontend.Apk.manifest) ]
    ~app_of:(fun _ -> Some loaded.Fd_frontend.Apk.name)
    loaded

(** [run_merged ?coverage ?max_steps ?icc m] dynamically executes
    several apps sharing one merged scene — collusion pairs: intents
    cross app boundaries only into exported components. *)
let run_merged ?(coverage = Thorough) ?(max_steps = 2_000_000) ?(icc = false)
    (m : Fd_frontend.Apk.merged) =
  run_gen ~coverage ~max_steps ~icc ~apps:m.Fd_frontend.Apk.m_apps
    ~app_of:m.Fd_frontend.Apk.m_app_of m.Fd_frontend.Apk.m_loaded

(** [run_plain ~classes ~entries ~defs ()] dynamically executes a
    plain (non-Android) program: each entry method is invoked once on
    a fresh instance (or statically), with generic objects for its
    parameters.  Sources and sinks come from [defs] — the generic
    source/sink interception in the interpreter handles any configured
    method, so the same SecuriBench setup that drives the static RQ4
    experiment drives the dynamic monitor. *)
let run_plain ?(max_steps = 2_000_000) ~classes ~entries ~defs () =
  let scene = Fd_frontend.Framework.fresh_scene () in
  List.iter (Scene.add_class scene) classes;
  let st =
    Interp.create ~max_steps ~scene ~defs
      ~layout:(Fd_frontend.Layout.parse []) ()
  in
  Builtins.install st;
  (try
     List.iter
       (fun (cls, mname) ->
         match Scene.resolve_concrete_named scene cls mname with
         | Some (_, m) when Jclass.has_body m ->
             let this =
               if m.Jclass.jm_static then None
               else Some (Interp.new_instance st cls)
             in
             let args =
               List.map
                 (fun ty ->
                   match ty with
                   | Types.Int | Types.Bool | Types.Char | Types.Long ->
                       untainted (Vint 0)
                   | _ ->
                       untainted
                         (Vobj (Interp.alloc_obj st "framework.Generic")))
                 m.Jclass.jm_sig.Types.m_params
             in
             (try
                ignore
                  (Interp.exec_body st m.Jclass.jm_sig
                     (Option.get m.Jclass.jm_body) ~this ~args)
              with Interp.Runtime_error _ -> ())
         | _ -> ())
       entries
   with Interp.Budget_exhausted -> ());
  Interp.leaks st

(** [findings leaks] views dynamic leaks as (source tag, sink tag)
    pairs for uniform scoring against benchmark ground truth. *)
let findings leaks =
  List.map
    (fun (lk : leak) ->
      ( (match lk.lk_labels with l :: _ -> l.lb_tag | [] -> None),
        lk.lk_sink_tag ))
    leaks
  |> List.sort_uniq compare
