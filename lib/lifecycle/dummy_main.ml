(** Dummy-main generation (Section 3, Figure 1).

    Android apps have no [main]; FlowDroid synthesises one per app that
    encodes every lifecycle ordering the framework may drive:

    - all components run in an arbitrary sequential order, with
      repetition (an outer opaque-predicate loop);
    - each activity runs Figure 1's lifecycle: create/start/resume,
      then its associated callbacks in any order and number, then
      pause, with opaque branches to resume again, restart, or be
      destroyed;
    - callbacks are invoked only within their owning component's
      resume/pause window, on the component instance itself when the
      handler lives on the component class, otherwise on a listener
      instance constructed (with the component as the outer reference
      when the constructor takes one) inside the component's section.

    The opaque predicate is a read of the static field
    [dummyMainClass#p], which no analysis stage evaluates — both
    branches of every conditional are explored, which is exactly the
    IFDS join the paper relies on instead of path sensitivity. *)

open Fd_ir
open Fd_callgraph
module B = Build
module FW = Fd_frontend.Framework

let dummy_class_name = "dummyMainClass"
let dummy_method_name = "dummyMain"

let opaque_field = Types.{ f_class = dummy_class_name; f_name = "p"; f_type = Int }

(* invoke a lifecycle/callback method with null arguments *)
let invoke_handler m recv cls (sig_ : Types.method_sig) =
  let args = List.map (fun _ -> B.nul) sig_.Types.m_params in
  B.vcall m recv cls sig_.Types.m_name args

let lifecycle_call scene m recv cls (lc : Lifecycle.lc_method) =
  match Lifecycle.implemented scene cls lc with
  | Some (decl, meth) -> invoke_handler m recv decl.Jclass.c_name meth.Jclass.jm_sig
  | None -> ()

(* fresh label generator per body *)
let labeler prefix =
  let n = ref 0 in
  fun tag ->
    incr n;
    Printf.sprintf "%s_%s_%d" prefix tag !n

(* emit: if p == <unevaluated> goto label  — an opaque branch *)
let opaque_branch m p label = B.ifgoto m (B.v p) Stmt.Ceq (B.i 0) label

(* callback dispatch block: a loop offering every callback of the
   component, each behind an opaque branch *)
let emit_callbacks m p ~fresh ~recv_of (cbs : Callbacks.callback list) =
  if cbs <> [] then begin
    let loop = fresh "cbloop" in
    let done_ = fresh "cbdone" in
    let labels = List.map (fun _ -> fresh "cb") cbs in
    B.label m loop;
    List.iter2 (fun _ l -> opaque_branch m p l) cbs labels;
    B.goto m done_;
    List.iter2
      (fun (cb : Callbacks.callback) l ->
        B.label m l;
        invoke_handler m (recv_of cb) cb.Callbacks.cb_class
          cb.Callbacks.cb_method.Jclass.jm_sig;
        B.goto m loop)
      cbs labels;
    B.label m done_;
    B.nop m
  end

(* construct the listener instances a component needs and return the
   receiver lookup *)
let emit_listeners scene m comp_local (cc : Callbacks.component_callbacks) =
  let table = Hashtbl.create 4 in
  List.iteri
    (fun i cls ->
      let l = B.local m (Printf.sprintf "listener%d" i) ~ty:(Types.Ref cls) in
      B.newobj m l cls;
      (* prefer a 1-argument constructor taking the outer component *)
      (match Scene.resolve_concrete scene cls ("<init>", [ Types.Ref Types.object_class ]) with
      | Some (decl, meth) when Jclass.has_body meth ->
          ignore decl;
          B.spcall m l cls "<init>" [ B.v comp_local ];
          ignore meth
      | _ -> (
          match Scene.resolve_concrete scene cls ("<init>", []) with
          | Some (_, meth) when Jclass.has_body meth ->
              B.spcall m l cls "<init>" []
          | _ -> ()));
      Hashtbl.replace table cls l)
    cc.Callbacks.cc_listener_classes;
  fun (cb : Callbacks.callback) ->
    if cb.Callbacks.cb_on_component then comp_local
    else Hashtbl.find table cb.Callbacks.cb_class

(* extension feature: AsyncTask blocks — [doInBackground]'s result
   feeds [onPostExecute], the data link FlowDroid models for
   framework-scheduled workers *)
let emit_async_tasks scene m p ~fresh comp (cc : Callbacks.component_callbacks) =
  List.iteri
    (fun i cls ->
      let skip = fresh (Printf.sprintf "task%d" i) in
      opaque_branch m p skip;
      let task = B.local m (Printf.sprintf "task%d_%d" i (Hashtbl.hash cls mod 97))
          ~ty:(Types.Ref cls) in
      B.newobj m task cls;
      (match
         Scene.resolve_concrete scene cls ("<init>", [ Types.Ref Types.object_class ])
       with
      | Some (_, meth) when Jclass.has_body meth ->
          B.spcall m task cls "<init>" [ B.v comp ]
      | _ -> (
          match Scene.resolve_concrete scene cls ("<init>", []) with
          | Some (_, meth) when Jclass.has_body meth ->
              B.spcall m task cls "<init>" []
          | _ -> ()));
      let call_opt name args ~ret =
        match Scene.resolve_concrete_named scene cls name with
        | Some (decl, meth) when Jclass.has_body meth ->
            ignore meth;
            (match ret with
            | Some r -> B.vcall m ~ret:r task decl.Jclass.c_name name args
            | None -> B.vcall m task decl.Jclass.c_name name args)
        | _ -> ()
      in
      call_opt "onPreExecute" [] ~ret:None;
      let r = B.local m (Printf.sprintf "taskres%d" i) in
      B.const m r B.nul;
      call_opt "doInBackground" [ B.nul ] ~ret:(Some r);
      call_opt "onProgressUpdate" [ B.nul ] ~ret:None;
      call_opt "onPostExecute" [ B.v r ] ~ret:None;
      B.label m skip;
      B.nop m)
    cc.Callbacks.cc_async_tasks

(* extension feature: fragment lifecycles attached to the component *)
let emit_fragments scene m p ~fresh comp (cc : Callbacks.component_callbacks) =
  List.mapi
    (fun i cls ->
      let skip = fresh (Printf.sprintf "frag%d" i) in
      opaque_branch m p skip;
      let frag = B.local m (Printf.sprintf "frag%d_%d" i (Hashtbl.hash cls mod 97))
          ~ty:(Types.Ref cls) in
      B.newobj m frag cls;
      (match Scene.resolve_concrete scene cls ("<init>", []) with
      | Some (_, meth) when Jclass.has_body meth ->
          B.spcall m frag cls "<init>" []
      | _ -> ());
      let call_frag name args =
        match Scene.resolve_concrete_named scene cls name with
        | Some (decl, meth) when Jclass.has_body meth ->
            ignore meth;
            B.vcall m frag decl.Jclass.c_name name args
        | _ -> ()
      in
      call_frag "onAttach" [ B.v comp ];
      call_frag "onCreate" [ B.nul ];
      call_frag "onCreateView" [ B.nul ];
      call_frag "onStart" [];
      call_frag "onResume" [];
      B.label m skip;
      B.nop m;
      (frag, cls))
    cc.Callbacks.cc_fragments

let teardown_fragments scene m frags =
  List.iter
    (fun (frag, cls) ->
      let call_frag name =
        match Scene.resolve_concrete_named scene cls name with
        | Some (decl, meth) when Jclass.has_body meth ->
            ignore meth;
            B.vcall m frag decl.Jclass.c_name name []
        | _ -> ()
      in
      List.iter call_frag
        [ "onPause"; "onStop"; "onDestroyView"; "onDestroy"; "onDetach" ])
    frags

let emit_component scene m p (cc : Callbacks.component_callbacks) idx =
  let fresh = labeler (Printf.sprintf "c%d" idx) in
  let cls = cc.Callbacks.cc_component in
  let comp = B.local m (Printf.sprintf "comp%d" idx) ~ty:(Types.Ref cls) in
  B.newobj m comp cls;
  (match Scene.resolve_concrete scene cls ("<init>", []) with
  | Some (_, meth) when Jclass.has_body meth -> B.spcall m comp cls "<init>" []
  | _ -> ());
  let recv_of = emit_listeners scene m comp cc in
  let lc = lifecycle_call scene m comp cls in
  (match cc.Callbacks.cc_kind with
  | FW.Activity ->
      let start_l = fresh "start" in
      let resume_l = fresh "resume" in
      let after_l = fresh "after" in
      lc Lifecycle.activity_create;
      let frags = emit_fragments scene m p ~fresh comp cc in
      B.label m start_l;
      lc Lifecycle.activity_start;
      B.label m resume_l;
      lc Lifecycle.activity_resume;
      emit_callbacks m p ~fresh ~recv_of cc.Callbacks.cc_callbacks;
      emit_async_tasks scene m p ~fresh comp cc;
      teardown_fragments scene m frags;
      lc Lifecycle.activity_pause;
      (* paused activity may resume directly *)
      opaque_branch m p resume_l;
      lc Lifecycle.activity_stop;
      (* stopped activity may restart *)
      opaque_branch m p after_l;
      lc Lifecycle.activity_destroy;
      B.goto m "mainLoop";
      B.label m after_l;
      lc Lifecycle.activity_restart;
      B.goto m start_l
  | FW.Service ->
      let loop_l = fresh "loop" in
      let end_l = fresh "end" in
      lc Lifecycle.service_create;
      B.label m loop_l;
      let offer lcm lbl =
        let skip = fresh lbl in
        opaque_branch m p skip;
        lc lcm;
        B.label m skip;
        B.nop m
      in
      offer Lifecycle.service_start_command "cmd";
      offer Lifecycle.service_start "start";
      offer Lifecycle.service_bind "bind";
      offer Lifecycle.service_unbind "unbind";
      emit_callbacks m p ~fresh ~recv_of cc.Callbacks.cc_callbacks;
      emit_async_tasks scene m p ~fresh comp cc;
      opaque_branch m p end_l;
      B.goto m loop_l;
      B.label m end_l;
      lc Lifecycle.service_destroy;
      B.goto m "mainLoop"
  | FW.Receiver ->
      lc Lifecycle.receiver_receive;
      emit_callbacks m p ~fresh ~recv_of cc.Callbacks.cc_callbacks;
      B.goto m "mainLoop"
  | FW.Provider ->
      let loop_l = fresh "loop" in
      let end_l = fresh "end" in
      lc Lifecycle.provider_create;
      B.label m loop_l;
      List.iter
        (fun lcm ->
          let skip = fresh "op" in
          opaque_branch m p skip;
          lc lcm;
          B.label m skip;
          B.nop m)
        (List.tl Lifecycle.provider_methods);
      emit_callbacks m p ~fresh ~recv_of cc.Callbacks.cc_callbacks;
      opaque_branch m p end_l;
      B.goto m loop_l;
      B.label m end_l;
      B.goto m "mainLoop")

(** [generate scene ccs] builds the dummy-main class for the given
    per-component callback sets, registers it in [scene] (replacing a
    previous one, so re-analysis with different settings works), and
    returns the entry-point key. *)
let generate scene (ccs : Callbacks.component_callbacks list) =
  Fd_obs.Trace.with_span "lifecycle.dummy_main" @@ fun () ->
  Fd_obs.Metrics.set_int
    (Fd_obs.Metrics.gauge "lifecycle.components")
    (List.length ccs);
  Fd_obs.Metrics.set_int
    (Fd_obs.Metrics.gauge "lifecycle.callbacks")
    (List.fold_left
       (fun acc cc -> acc + List.length cc.Callbacks.cc_callbacks)
       0 ccs);
  let dummy =
    Jclass.mk dummy_class_name ~fields:[ opaque_field ]
      ~methods:
        [
          (B.meth dummy_method_name ~static:true (fun m ->
               let p = B.local m "p" ~ty:Types.Int in
               B.loadstatic m p opaque_field;
               B.label m "mainLoop";
               let comp_labels =
                 List.mapi (fun i _ -> Printf.sprintf "component%d" i) ccs
               in
               List.iter (fun l -> opaque_branch m p l) comp_labels;
               B.goto m "endMain";
               List.iteri
                 (fun i cc ->
                   B.label m (Printf.sprintf "component%d" i);
                   emit_component scene m p cc i)
                 ccs;
               B.label m "endMain";
               B.ret m))
            dummy_class_name;
        ]
  in
  Scene.add_or_replace scene dummy;
  Mkey.{ mk_class = dummy_class_name; mk_name = dummy_method_name; mk_arity = 0 }

(** [entry_of_plain_methods keys] — for non-Android programs
    (SecuriBench, the paper's listings) the entry points are given
    explicitly and no dummy main is needed. *)
let entry_of_plain_methods keys = keys

(** [generate_plain scene entries] builds the non-Android equivalent
    of the dummy main (FlowDroid's default entry-point creator): all
    given entry methods are callable in any sequential order and
    number, behind opaque branches.  This is how the SecuriBench setup
    lets static-field flows connect separately declared entry points
    (the Inter group). *)
let generate_plain scene (entries : Mkey.t list) =
  Fd_obs.Trace.with_span "lifecycle.dummy_main" @@ fun () ->
  let dummy =
    Jclass.mk dummy_class_name ~fields:[ opaque_field ]
      ~methods:
        [
          (B.meth dummy_method_name ~static:true (fun m ->
               let p = B.local m "p" ~ty:Types.Int in
               B.loadstatic m p opaque_field;
               B.label m "mainLoop";
               let labels =
                 List.mapi (fun i _ -> Printf.sprintf "entry%d" i) entries
               in
               List.iter (fun l -> opaque_branch m p l) labels;
               B.goto m "endMain";
               List.iteri
                 (fun i (k : Mkey.t) ->
                   B.label m (Printf.sprintf "entry%d" i);
                   let cls = k.Mkey.mk_class in
                   let args = List.init k.Mkey.mk_arity (fun _ -> B.nul) in
                   let is_static =
                     match Scene.find_class scene cls with
                     | Some c -> (
                         match
                           List.find_opt
                             (fun (jm : Jclass.jmethod) ->
                               jm.Jclass.jm_sig.Types.m_name = k.Mkey.mk_name
                               && List.length jm.Jclass.jm_sig.Types.m_params
                                  = k.Mkey.mk_arity)
                             c.Jclass.c_methods
                         with
                         | Some jm -> jm.Jclass.jm_static
                         | None -> true)
                     | None -> true
                   in
                   if is_static then
                     B.scall m cls k.Mkey.mk_name args
                   else begin
                     let recv =
                       B.local m (Printf.sprintf "recv%d" i) ~ty:(Types.Ref cls)
                     in
                     B.newobj m recv cls;
                     (match Scene.resolve_concrete scene cls ("<init>", []) with
                     | Some (_, meth) when Jclass.has_body meth ->
                         B.spcall m recv cls "<init>" []
                     | _ -> ());
                     B.vcall m recv cls k.Mkey.mk_name args
                   end;
                   B.goto m "mainLoop")
                 entries;
               B.label m "endMain";
               B.ret m))
            dummy_class_name;
        ]
  in
  Scene.add_or_replace scene dummy;
  Mkey.{ mk_class = dummy_class_name; mk_name = dummy_method_name; mk_arity = 0 }
