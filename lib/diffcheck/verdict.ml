(** Verdict classification for the differential soundness harness.

    For one app we hold three views of "what leaks": the static
    engine's findings, the thorough-coverage dynamic interpreter's
    observations, and the generator's planted ground truth (ordinary
    leaks plus tagged limitation constructs).  Every leak key —
    a (source tag, sink tag) pair — lands in exactly one bucket:

    - {b confirmed}: the static engine reported it and either the
      dynamic monitor observed it or it matches planted ground truth
      (the dynamic side is bounded by driver coverage, so ground truth
      corroborates static-only true findings);
    - {b explained-FN} / {b explained-FP}: the disagreement maps to a
      documented Table 1 limitation category (index-insensitive
      arrays, missing strong updates, clinit placement, reflection) —
      a planted construct carrying that category's tag pair;
    - {b unexercised}: a planted FP construct the static engine did
      {e not} report — the engine is more precise than the documented
      limitation (tracked so plant regressions are visible);
    - {b DIVERGENCE}: everything else — a dynamically observed leak
      the static engine misses, a static finding with no ground-truth
      or limitation explanation, or planted ground truth neither
      engine saw.  Divergences are solver bugs until proven otherwise:
      the minimizer shrinks them and the campaign gate fails on any. *)

module Gen = Fd_appgen.Generator

type key = string option * string option
(** (source tag, sink tag) — the common currency of static findings,
    dynamic observations and planted ground truth *)

type divergence =
  | Spurious_static
      (** a static finding with no ground-truth or limitation
          explanation *)
  | Missed_dynamic
      (** a dynamically observed (hence real) leak the static engine
          misses *)
  | Missed_ground_truth
      (** a planted ordinary leak neither engine observed — the
          static-recall promise is broken *)

type bucket =
  | Confirmed
  | Explained_fn of Gen.limitation
  | Explained_fp of Gen.limitation
  | Unexercised of Gen.limitation
  | Fixed of Gen.limitation
      (** an FP plant whose precision pass is enabled and which the
          static engine, as promised, no longer reports *)
  | Divergence of divergence

type leak_verdict = {
  v_key : key;
  v_bucket : bucket;
  v_static : bool;  (** reported by the static engine *)
  v_dynamic : bool;  (** observed by the dynamic monitor *)
  v_truth : bool;  (** in [ga_expected] (ordinary planted leaks) *)
}

let string_of_divergence = function
  | Spurious_static -> "spurious-static"
  | Missed_dynamic -> "missed-dynamic"
  | Missed_ground_truth -> "missed-ground-truth"

let string_of_bucket = function
  | Confirmed -> "confirmed"
  | Explained_fn l ->
      Printf.sprintf "explained-FN(%s)" (Gen.string_of_limitation l)
  | Explained_fp l ->
      Printf.sprintf "explained-FP(%s)" (Gen.string_of_limitation l)
  | Unexercised l ->
      Printf.sprintf "unexercised(%s)" (Gen.string_of_limitation l)
  | Fixed l -> Printf.sprintf "fixed(%s)" (Gen.string_of_limitation l)
  | Divergence d -> Printf.sprintf "DIVERGENCE(%s)" (string_of_divergence d)

let is_divergence = function Divergence _ -> true | _ -> false

let equal_bucket (a : bucket) (b : bucket) = a = b

let string_of_key ((src, snk) : key) =
  Printf.sprintf "%s->%s"
    (Option.value src ~default:"?")
    (Option.value snk ~default:"?")

(** [classify ~fixed ~static ~dynamic ~expected ~limits] buckets every
    key in the union of the four views.  Output is sorted by key, so
    equal inputs render identically regardless of discovery order.

    [fixed] names the limitation categories whose precision pass is
    enabled: a disagreement on such a key is no longer {e explained} by
    the limitation.  A fixed FN plant is a real leak the engine now
    promises to find, so it is held to ground-truth standards
    (confirmed when reported, DIVERGENCE when missed); a fixed FP
    plant must no longer be reported (reported → DIVERGENCE
    spurious-static, silent → the [Fixed] bucket). *)
let classify ~(fixed : Gen.limitation list) ~(static : key list)
    ~(dynamic : key list) ~(expected : (string option * string) list)
    ~(limits : ((string option * string) * Gen.limitation) list) :
    leak_verdict list =
  let truth_keys =
    List.map (fun (src, snk) -> (src, Some snk)) expected
  in
  let limit_of : key -> Gen.limitation option =
    let tbl =
      List.map (fun ((src, snk), l) -> (((src, Some snk) : key), l)) limits
    in
    fun k -> List.assoc_opt k tbl
  in
  let keys =
    List.sort_uniq compare
      (static @ dynamic @ truth_keys
      @ List.map (fun ((src, snk), _) -> (src, Some snk)) limits)
  in
  List.map
    (fun k ->
      let s = List.mem k static in
      let d = List.mem k dynamic in
      let gt = List.mem k truth_keys in
      let lim0 = limit_of k in
      let is_fixed =
        match lim0 with Some l -> List.mem l fixed | None -> false
      in
      (* a fixed FN plant is a real leak the engine must now find *)
      let gt =
        gt
        || is_fixed
           &&
           match lim0 with
           | Some l -> not (Gen.limitation_is_fp l)
           | None -> false
      in
      let lim = if is_fixed then None else lim0 in
      let bucket =
        match (s, d) with
        | true, true -> Confirmed
        | true, false -> (
            if gt then Confirmed
            else
              match lim with
              | Some l when Gen.limitation_is_fp l -> Explained_fp l
              | _ -> Divergence Spurious_static)
        | false, true -> (
            match lim with
            | Some l when not (Gen.limitation_is_fp l) -> Explained_fn l
            | _ -> Divergence Missed_dynamic)
        | false, false -> (
            (* the key came from ground truth or a plant *)
            if gt then Divergence Missed_ground_truth
            else
              match lim with
              | Some l when not (Gen.limitation_is_fp l) ->
                  (* a real leak the static engine is documented to
                     miss; the dynamic driver's coverage did not reach
                     it either (e.g. reflection without an interpreter
                     model) *)
                  Explained_fn l
              | Some l -> Unexercised l
              | None -> (
                  match lim0 with
                  | Some l ->
                      (* fixed FP plant, correctly silent on both
                         sides: the precision pass delivered *)
                      Fixed l
                  | None -> assert false))
      in
      { v_key = k; v_bucket = bucket; v_static = s; v_dynamic = d; v_truth = gt })
    keys
