(** Delta-debugging minimizer for divergent apps.

    Given an app on which one leak key lands in a {!Verdict.bucket} we
    want to preserve (normally a [DIVERGENCE]), shrink the app while
    the key keeps classifying into the same bucket.  Three greedy
    passes run to a fixpoint — drop whole classes, drop methods, drop
    single statements (with branch-target remapping) — in the spirit
    of Zeller & Hildebrandt's ddmin, specialised to the µJimple
    structure so every candidate is syntactically well formed.

    The oracle re-runs both engines on each candidate, so minimization
    cost is (candidates × tiny-app analysis time); the generated apps
    this is used on analyse in milliseconds.  Candidates whose static
    run does not complete cleanly are rejected: a divergence explained
    by a crash or an exhausted budget is a different bug than the one
    being shrunk. *)

open Fd_ir
module Apk = Fd_frontend.Apk
module Gen = Fd_appgen.Generator

(* ------------------------------------------------------------------ *)
(* structural edits                                                    *)
(* ------------------------------------------------------------------ *)

let with_classes apk classes = { apk with Apk.apk_classes = classes }

let drop_class apk cname =
  with_classes apk
    (List.filter (fun (c : Jclass.t) -> c.Jclass.c_name <> cname)
       apk.Apk.apk_classes)

let map_class apk cname f =
  with_classes apk
    (List.map
       (fun (c : Jclass.t) -> if c.Jclass.c_name = cname then f c else c)
       apk.Apk.apk_classes)

let drop_method apk cname mname =
  map_class apk cname (fun c ->
      {
        c with
        Jclass.c_methods =
          List.filter
            (fun (m : Jclass.jmethod) ->
              m.Jclass.jm_sig.Types.m_name <> mname)
            c.Jclass.c_methods;
      })

(** [drop_stmt body i] removes statement [i], shifting branch targets
    past it down by one; a branch {e to} [i] retargets the statement
    that followed it.  [None] when the edit cannot produce a
    well-formed body (target falls off the end, or the CFG rejects). *)
let drop_stmt (body : Body.t) i : Body.t option =
  let n = Array.length body.Body.stmts in
  let remap t =
    if t < i then Some t
    else if t > i then Some (t - 1)
    else if i < n - 1 then Some i (* old i+1 now sits at index i *)
    else None
  in
  let exception Bad in
  try
    let kept = ref [] in
    for j = n - 1 downto 0 do
      if j <> i then begin
        let s = body.Body.stmts.(j) in
        let kind =
          match s.Stmt.s_kind with
          | Stmt.If (c, t) -> (
              match remap t with Some t -> Stmt.If (c, t) | None -> raise Bad)
          | Stmt.Goto t -> (
              match remap t with Some t -> Stmt.Goto t | None -> raise Bad)
          | k -> k
        in
        kept := { s with Stmt.s_kind = kind } :: !kept
      end
    done;
    Some (Body.create ~locals:body.Body.locals !kept)
  with Bad | Body.Malformed _ -> None

let set_method_body apk cname mname body =
  map_class apk cname (fun c ->
      {
        c with
        Jclass.c_methods =
          List.map
            (fun (m : Jclass.jmethod) ->
              if m.Jclass.jm_sig.Types.m_name = mname then
                { m with Jclass.jm_body = Some body }
              else m)
            c.Jclass.c_methods;
      })

(* ------------------------------------------------------------------ *)
(* the oracle                                                          *)
(* ------------------------------------------------------------------ *)

(** [holds ?config ?coverage ~expected ~limits ~target apk] — does
    [target]'s key still produce the same verdict on [apk], with the
    static run completing cleanly?  The whole observation signature
    must survive — bucket {e and} the per-engine booleans — otherwise
    shrinking an explained-FN (dynamic sees it, static misses it)
    could delete the app entirely: a plant key nobody observes also
    classifies as explained-FN, but witnesses nothing.  Any exception
    (unloadable candidate, CFG rejection deep in a pass) means
    "no". *)
let holds ?config ?coverage ~expected ~limits ~(target : Verdict.leak_verdict)
    apk =
  match
    let static, outcome = Diffcheck.static_findings ?config apk in
    let dynamic = Diffcheck.dynamic_findings ?coverage apk in
    (static, outcome, dynamic)
  with
  | exception _ -> false
  | static, outcome, dynamic ->
      Fd_resilience.Outcome.is_complete outcome
      && (match
            List.find_opt
              (fun v -> v.Verdict.v_key = target.Verdict.v_key)
              (Verdict.classify
                 ~fixed:
                   (Diffcheck.fixed_of_config
                      (Option.value config ~default:Fd_core.Config.default))
                 ~static ~dynamic ~expected ~limits)
          with
         | Some v ->
             Verdict.equal_bucket v.Verdict.v_bucket target.Verdict.v_bucket
             && v.Verdict.v_static = target.Verdict.v_static
             && v.Verdict.v_dynamic = target.Verdict.v_dynamic
         | None -> false)

(* ------------------------------------------------------------------ *)
(* greedy passes                                                       *)
(* ------------------------------------------------------------------ *)

(** one round of each pass; [true] in the result when anything shrank *)
let round p apk =
  let changed = ref false in
  let try_edit apk cand =
    if p cand then begin
      changed := true;
      cand
    end
    else apk
  in
  (* pass 1: whole classes *)
  let apk =
    List.fold_left
      (fun apk (c : Jclass.t) -> try_edit apk (drop_class apk c.Jclass.c_name))
      apk apk.Apk.apk_classes
  in
  (* pass 2: methods *)
  let apk =
    List.fold_left
      (fun apk (c : Jclass.t) ->
        List.fold_left
          (fun apk (m : Jclass.jmethod) ->
            try_edit apk
              (drop_method apk c.Jclass.c_name m.Jclass.jm_sig.Types.m_name))
          apk c.Jclass.c_methods)
      apk apk.Apk.apk_classes
  in
  (* pass 3: single statements, last-to-first so indices of untried
     statements stay valid across successful removals *)
  let apk =
    List.fold_left
      (fun apk (c : Jclass.t) ->
        List.fold_left
          (fun apk (m : Jclass.jmethod) ->
            match m.Jclass.jm_body with
            | None -> apk
            | Some body0 ->
                let cname = c.Jclass.c_name in
                let mname = m.Jclass.jm_sig.Types.m_name in
                let n0 = Array.length body0.Body.stmts in
                let apk = ref apk in
                for i = n0 - 1 downto 0 do
                  let cur =
                    List.find_opt
                      (fun (c : Jclass.t) -> c.Jclass.c_name = cname)
                      !apk.Apk.apk_classes
                  in
                  match
                    Option.bind cur (fun c ->
                        Option.bind (Jclass.find_method_named c mname)
                          (fun m -> m.Jclass.jm_body))
                  with
                  | Some body when i < Array.length body.Body.stmts -> (
                      match drop_stmt body i with
                      | Some body' ->
                          apk :=
                            try_edit !apk (set_method_body !apk cname mname body')
                      | None -> ())
                  | _ -> ()
                done;
                !apk)
          apk c.Jclass.c_methods)
      apk apk.Apk.apk_classes
  in
  (apk, !changed)

(** [minimize ?config ?coverage ~expected ~limits ~target apk] shrinks
    [apk] while [target]'s key keeps producing [target]'s verdict.
    Returns [apk] unchanged if the verdict does not reproduce on the
    input (nothing to preserve — the caller's report was stale). *)
let minimize ?config ?coverage ~expected ~limits ~target apk =
  let p = holds ?config ?coverage ~expected ~limits ~target in
  if not (p apk) then apk
  else
    let rec fix apk =
      let apk', changed = round p apk in
      if changed then fix apk' else apk'
    in
    fix apk

(* ------------------------------------------------------------------ *)
(* reproducer emission                                                 *)
(* ------------------------------------------------------------------ *)

(** total statement count over all concrete method bodies — the size
    the acceptance bar (≤ 30) is measured in *)
let stmt_count apk =
  List.fold_left
    (fun a (c : Jclass.t) ->
      List.fold_left
        (fun a (m : Jclass.jmethod) ->
          match m.Jclass.jm_body with
          | Some b -> a + Array.length b.Body.stmts
          | None -> a)
        a c.Jclass.c_methods)
    0 apk.Apk.apk_classes

(** the textual-µJimple reproducer: manifest then every class, in a
    form {!Fd_frontend.Apk.of_dir} accepts when split across files *)
let reproducer_text apk =
  String.concat "\n"
    (Printf.sprintf "// %s — minimized reproducer (%d stmts)"
       apk.Apk.apk_name (stmt_count apk)
    :: "// AndroidManifest.xml:"
    :: List.map (fun l -> "//   " ^ l)
         (String.split_on_char '\n' apk.Apk.apk_manifest)
    @ List.map Fd_ir.Pretty.class_to_string apk.Apk.apk_classes)

(** [save ~dir apk] writes the reproducer as an on-disk app:
    [AndroidManifest.xml] plus one [.jimple] file per class, loadable
    with {!Fd_frontend.Apk.of_dir}. *)
let save ~dir apk =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "AndroidManifest.xml" apk.Apk.apk_manifest;
  List.iter
    (fun (c : Jclass.t) ->
      write (c.Jclass.c_name ^ ".jimple") (Pretty.class_to_string c))
    apk.Apk.apk_classes
