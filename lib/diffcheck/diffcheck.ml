(** The differential soundness harness: cross-check the static IFDS
    engines against the dynamic oracle on generated apps.

    The paper's central claim is precision {e and} recall (Table 1),
    but an optimised solver silently computing different flows than
    the semantics is exactly the failure mode real taint tools exhibit
    (Pauck et al., "Do Android Taint Analysis Tools Keep Their
    Promises?").  This module wires the three ingredients the
    repository already owns — the seeded generator with planted ground
    truth, the thorough-coverage dynamic interpreter (which never
    reports a false positive), and the static pipeline — into a
    correctness gate: every leak of every generated app is classified
    into a {!Verdict.bucket}, campaigns fan out over {!Fd_util.Pool}
    with bit-identical verdict digests at any job count, and any
    [DIVERGENCE] fails the gate (and can be shrunk with
    {!Minimize}). *)

open Fd_core
module Gen = Fd_appgen.Generator
module M = Fd_obs.Metrics

let m_apps = M.counter "diffcheck.apps"
let m_divergent = M.counter "diffcheck.divergent_apps"

(* ------------------------------------------------------------------ *)
(* the three views of one app                                          *)
(* ------------------------------------------------------------------ *)

(** [static_findings ?config apk] — the bidi engine's findings as
    deduplicated (source tag, sink tag) keys, plus the typed solver
    outcome. *)
let static_findings ?(config = Config.default) apk :
    Verdict.key list * Fd_resilience.Outcome.t =
  let r = Infoflow.analyze_apk ~config apk in
  ( List.sort_uniq compare
      (List.map
         (fun (fd : Bidi.finding) ->
           (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
         r.Infoflow.r_findings),
    r.Infoflow.r_stats.Infoflow.st_outcome )

(** [dynamic_findings ?coverage ?icc apk] — the interpreter's observed
    leaks as deduplicated keys.  [icc] turns on concrete intent
    dispatch, mirroring the static tier so the differential fence
    stays aligned.  An unloadable app observes nothing. *)
let dynamic_findings ?(coverage = Fd_interp.Droid_runner.Thorough)
    ?(icc = false) apk : Verdict.key list =
  match Fd_frontend.Apk.load apk with
  | exception Fd_frontend.Apk.Load_error _ -> []
  | loaded ->
      Fd_interp.Droid_runner.findings
        (Fd_interp.Droid_runner.run ~coverage ~icc loaded)

(* ------------------------------------------------------------------ *)
(* per-app check                                                       *)
(* ------------------------------------------------------------------ *)

type app_report = {
  ar_name : string;
  ar_verdicts : Verdict.leak_verdict list;
  ar_outcome : Fd_resilience.Outcome.t;  (** static solver outcome *)
  ar_time : float;  (** wall-clock seconds for both runs (not digested) *)
}

let divergences ar =
  List.filter (fun v -> Verdict.is_divergence v.Verdict.v_bucket) ar.ar_verdicts

(** [fixed_of_config config] — the limitation categories whose
    precision pass is enabled: those keys must no longer be classified
    as explained by the limitation (they are held to the pass's
    promise instead). *)
let fixed_of_config (config : Config.t) : Gen.limitation list =
  let p = config.Config.precision in
  List.filter_map
    (fun (on, l) -> if on then Some l else None)
    [
      (p.Config.must_alias, Gen.Lim_strong_update);
      (p.Config.array_index, Gen.Lim_array_index);
      (p.Config.reflection, Gen.Lim_reflection);
      (p.Config.clinit, Gen.Lim_clinit);
      (* the ICC tier drops deliverable sends (FP side) and stitches
         the end-to-end flows (FN side); the reception-source finding
         inside a receiver stays static-only in both tiers, so
         [Lim_icc_rx] is never fixed *)
      (config.Config.icc, Gen.Lim_icc_send);
      (config.Config.icc, Gen.Lim_icc_stitch);
    ]

(** [check_apk ?config ?coverage ~name ~expected ~limits apk] runs
    both engines on one app and classifies every leak key.  A crashing
    static run yields zero static findings (classified accordingly)
    rather than aborting the campaign. *)
let check_apk ?(config = Config.default) ?coverage ~name ~expected ~limits apk :
    app_report =
  let t0 = Unix.gettimeofday () in
  let static, outcome =
    match static_findings ~config apk with
    | r -> r
    | exception e ->
        ([], Fd_resilience.Outcome.Crashed (Printexc.to_string e))
  in
  let dynamic = dynamic_findings ?coverage ~icc:config.Config.icc apk in
  let verdicts =
    Verdict.classify ~fixed:(fixed_of_config config) ~static ~dynamic ~expected
      ~limits
  in
  let t1 = Unix.gettimeofday () in
  M.incr m_apps;
  let ar =
    { ar_name = name; ar_verdicts = verdicts; ar_outcome = outcome;
      ar_time = t1 -. t0 }
  in
  if divergences ar <> [] then M.incr m_divergent;
  ar

(** [check_gen ?config ?coverage ga] — {!check_apk} on a generated
    app, using its planted ground truth and limitation table. *)
let check_gen ?config ?coverage (ga : Gen.gen_app) : app_report =
  check_apk ?config ?coverage ~name:ga.Gen.ga_name
    ~expected:ga.Gen.ga_expected ~limits:ga.Gen.ga_limits ga.Gen.ga_apk

(** [check_pair ?config ?coverage gp] — the inter-app differential
    check: both engines run over the {e merged} two-app Scene, and the
    pair's collusion ground truth (meaningful only merged) classifies
    the keys.  With the ICC tier off, the collusion flow shows up as
    an explained FN; with it on, as a confirmed stitched leak. *)
let check_pair ?(config = Config.default) ?coverage (gp : Gen.gen_pair) :
    app_report =
  let t0 = Unix.gettimeofday () in
  let merged =
    match
      Fd_frontend.Apk.load_merged
        [ gp.Gen.gp_sender.Gen.ga_apk; gp.Gen.gp_receiver.Gen.ga_apk ]
    with
    | m -> Some m
    | exception Fd_frontend.Apk.Load_error _ -> None
  in
  let static, outcome =
    match merged with
    | None -> ([], Fd_resilience.Outcome.Crashed "unloadable pair")
    | Some m -> (
        match Infoflow.analyze_merged ~config m with
        | r ->
            ( List.sort_uniq compare
                (List.map
                   (fun (fd : Bidi.finding) ->
                     (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
                   r.Infoflow.r_findings),
              r.Infoflow.r_stats.Infoflow.st_outcome )
        | exception e ->
            ([], Fd_resilience.Outcome.Crashed (Printexc.to_string e)))
  in
  let dynamic =
    match merged with
    | None -> []
    | Some m ->
        Fd_interp.Droid_runner.findings
          (Fd_interp.Droid_runner.run_merged ?coverage
             ~icc:config.Config.icc m)
  in
  let verdicts =
    Verdict.classify ~fixed:(fixed_of_config config) ~static ~dynamic
      ~expected:gp.Gen.gp_expected ~limits:gp.Gen.gp_limits
  in
  let t1 = Unix.gettimeofday () in
  M.incr m_apps;
  let ar =
    { ar_name = gp.Gen.gp_name; ar_verdicts = verdicts; ar_outcome = outcome;
      ar_time = t1 -. t0 }
  in
  if divergences ar <> [] then M.incr m_divergent;
  ar

(* ------------------------------------------------------------------ *)
(* witness validation                                                  *)
(* ------------------------------------------------------------------ *)

(** [witness_adjacent icfg a b] — whether nodes [a] and [b] can be one
    solver step apart.  Deliberately generous: besides intra-procedural
    succ/pred edges it accepts call descents (into callee entry {e or}
    exit — the backward alias solver enters at exits), return ascents
    to any successor of the method's call sites, descents launched from
    a predecessor of the recorded node, and first-use [<clinit>]
    relays.  A witness that fails even this relation skipped across the
    ICFG and is definitely broken. *)
let witness_adjacent (icfg : Fd_callgraph.Icfg.t) a b =
  let module I = Fd_callgraph.Icfg in
  let mem n ns = List.exists (I.equal_node n) ns in
  let callee_entry_exits n =
    List.concat_map
      (fun m ->
        match I.start_node icfg m :: I.exit_nodes icfg m with
        | ns -> ns
        | exception Not_found -> [])
      (I.callees icfg n @ I.clinit_callees icfg n @ I.refl_callees icfg n)
  in
  let one_way a b =
    I.equal_node a b
    || mem b (I.succs icfg a)
    || mem b (I.preds icfg a)
    || mem b (callee_entry_exits a)
    || List.exists (fun p -> mem b (callee_entry_exits p)) (I.preds icfg a)
    || (let callers = I.callers icfg a.I.n_method in
        mem b callers
        || List.exists (fun c -> mem b (I.succs icfg c)) callers)
    || mem a (I.clinit_sites icfg b.I.n_method)
    || mem b (I.clinit_sites icfg a.I.n_method)
  in
  (* backward-analysis steps run the same edges in reverse *)
  one_way a b || one_way b a

type witness_report = {
  wr_findings : int;  (** findings the provenance-on run reported *)
  wr_witnessed : int;  (** findings that carried a witness *)
  wr_dynamic_agree : int;
      (** witnessed findings whose (source tag, sink tag) the dynamic
          interpreter also observed leaking — static-only witnesses are
          expected wherever the static engine over-approximates, so
          this is reported, not treated as an error *)
  wr_errors : string list;
      (** endpoint or adjacency violations; empty = every witness is
          structurally valid *)
}

(** [check_witnesses ?config ?coverage ~name apk] re-analyses the app
    with provenance recording forced on and validates every reported
    finding's witness: it must exist, start at the finding's source
    statement, end at its sink statement, and take only ICFG-adjacent
    steps ({!witness_adjacent}).  Agreement with the dynamic
    interpreter's observed leaks is counted separately. *)
let check_witnesses ?(config = Config.default) ?coverage ~name apk :
    witness_report =
  let config = { config with Config.provenance = true } in
  let r = Infoflow.analyze_apk ~config apk in
  let icfg = r.Infoflow.r_icfg in
  let dynamic = dynamic_findings ?coverage ~icc:config.Config.icc apk in
  let errors = ref [] in
  let witnessed = ref 0 in
  let agree = ref 0 in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun (fd : Bidi.finding) ->
      let where =
        Printf.sprintf "%s: %s -> %s" name
          (Fd_callgraph.Icfg.string_of_node fd.Bidi.f_source.Taint.si_node)
          (Fd_callgraph.Icfg.string_of_node fd.Bidi.f_sink_node)
      in
      match fd.Bidi.f_witness with
      | [] -> err "%s: no witness recorded" where
      | steps ->
          incr witnessed;
          let first = List.hd steps in
          let last = List.nth steps (List.length steps - 1) in
          if
            not
              (Fd_callgraph.Icfg.equal_node first.Bidi.ws_node
                 fd.Bidi.f_source.Taint.si_node)
          then
            err "%s: witness starts at %s, not at the source" where
              (Fd_callgraph.Icfg.string_of_node first.Bidi.ws_node);
          if
            not
              (Fd_callgraph.Icfg.equal_node last.Bidi.ws_node
                 fd.Bidi.f_sink_node)
          then
            err "%s: witness ends at %s, not at the sink" where
              (Fd_callgraph.Icfg.string_of_node last.Bidi.ws_node);
          let rec walk = function
            | (a : Bidi.witness_step) :: (b :: _ as rest) ->
                (* an "icc"-kind step is a framework hand-off (intent
                   delivery): the stitch boundary is not an ICFG edge *)
                if
                  b.Bidi.ws_kind <> "icc"
                  && not (witness_adjacent icfg a.Bidi.ws_node b.Bidi.ws_node)
                then
                  err "%s: non-adjacent witness step %s -> %s" where
                    (Fd_callgraph.Icfg.string_of_node a.Bidi.ws_node)
                    (Fd_callgraph.Icfg.string_of_node b.Bidi.ws_node);
                walk rest
            | _ -> ()
          in
          walk steps;
          if List.mem (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag) dynamic
          then incr agree)
    r.Infoflow.r_findings;
  {
    wr_findings = List.length r.Infoflow.r_findings;
    wr_witnessed = !witnessed;
    wr_dynamic_agree = !agree;
    wr_errors = List.rev !errors;
  }

(* ------------------------------------------------------------------ *)
(* campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type campaign = {
  cp_profile : Gen.profile;
  cp_seed : int;
  cp_reports : app_report list;  (** in generation order *)
}

(** [campaign ?config ?jobs ~profile ~seed ~n ()] generates and
    cross-checks [n] apps.  [jobs] fans the per-app loop out over
    {!Fd_util.Pool.map}; reports keep generation order, so the
    campaign (and its {!digest}) is bit-identical at any job count. *)
let campaign ?config ?jobs ?coverage ~profile ~seed ~n () : campaign =
  let apps = Gen.corpus ~profile ~seed n in
  {
    cp_profile = profile;
    cp_seed = seed;
    cp_reports = Fd_util.Pool.map ?jobs (check_gen ?config ?coverage) apps;
  }

(** [pair_campaign ?config ?jobs ~seed ~n ()] — the collusion fleet:
    [n] deterministic two-app pairs, each cross-checked over its
    merged Scene.  Same determinism contract as {!campaign}. *)
let pair_campaign ?config ?jobs ?coverage ~seed ~n () : campaign =
  let pairs = Gen.collusion_pairs ~seed n in
  {
    cp_profile = Gen.Icc;
    cp_seed = seed;
    cp_reports = Fd_util.Pool.map ?jobs (check_pair ?config ?coverage) pairs;
  }

(** [verdict_lines c] — the canonical textual form of every verdict,
    one line per (app, key): what the digest hashes and what minimized
    reproducer logs quote. *)
let verdict_lines c =
  List.concat_map
    (fun ar ->
      List.map
        (fun (v : Verdict.leak_verdict) ->
          Printf.sprintf "%s|%s|%s" ar.ar_name
            (Verdict.string_of_key v.Verdict.v_key)
            (Verdict.string_of_bucket v.Verdict.v_bucket))
        ar.ar_verdicts)
    c.cp_reports

(** [digest c] — hex digest of the canonical verdict lines; the
    any-job-count determinism contract of the CI gate. *)
let digest c = Digest.to_hex (Digest.string (String.concat "\n" (verdict_lines c)))

let divergent_reports c =
  List.filter (fun ar -> divergences ar <> []) c.cp_reports

(** [bucket_counts c] — (bucket label, count), sorted by label. *)
let bucket_counts c =
  List.fold_left
    (fun acc ar ->
      List.fold_left
        (fun acc (v : Verdict.leak_verdict) ->
          let k = Verdict.string_of_bucket v.Verdict.v_bucket in
          let prev = Option.value (List.assoc_opt k acc) ~default:0 in
          (k, prev + 1) :: List.remove_assoc k acc)
        acc ar.ar_verdicts)
    [] c.cp_reports
  |> List.sort compare

let total_keys c =
  List.fold_left (fun a ar -> a + List.length ar.ar_verdicts) 0 c.cp_reports

(** [render c] — the campaign summary table plus one line per
    divergence. *)
let render c =
  let module Table = Fd_util.Table in
  let summary =
    Table.render
      (Table.make
         ~header:
           [
             Printf.sprintf "diffcheck: %s (seed %d, %d apps)"
               (Gen.string_of_profile c.cp_profile)
               c.cp_seed
               (List.length c.cp_reports);
             "leak keys";
           ]
         (List.map
            (fun (k, n) -> Table.Row [ k; string_of_int n ])
            (bucket_counts c)
         @ [
             Table.Sep;
             Table.Row [ "total keys"; string_of_int (total_keys c) ];
             Table.Row [ "verdict digest"; digest c ];
           ]))
  in
  let div_lines =
    List.concat_map
      (fun ar ->
        List.map
          (fun (v : Verdict.leak_verdict) ->
            Printf.sprintf "DIVERGENCE %s %s %s\n" ar.ar_name
              (Verdict.string_of_key v.Verdict.v_key)
              (Verdict.string_of_bucket v.Verdict.v_bucket))
          (divergences ar))
      (divergent_reports c)
  in
  summary ^ String.concat "" div_lines
