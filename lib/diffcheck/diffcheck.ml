(** The differential soundness harness: cross-check the static IFDS
    engines against the dynamic oracle on generated apps.

    The paper's central claim is precision {e and} recall (Table 1),
    but an optimised solver silently computing different flows than
    the semantics is exactly the failure mode real taint tools exhibit
    (Pauck et al., "Do Android Taint Analysis Tools Keep Their
    Promises?").  This module wires the three ingredients the
    repository already owns — the seeded generator with planted ground
    truth, the thorough-coverage dynamic interpreter (which never
    reports a false positive), and the static pipeline — into a
    correctness gate: every leak of every generated app is classified
    into a {!Verdict.bucket}, campaigns fan out over {!Fd_util.Pool}
    with bit-identical verdict digests at any job count, and any
    [DIVERGENCE] fails the gate (and can be shrunk with
    {!Minimize}). *)

open Fd_core
module Gen = Fd_appgen.Generator
module M = Fd_obs.Metrics

let m_apps = M.counter "diffcheck.apps"
let m_divergent = M.counter "diffcheck.divergent_apps"

(* ------------------------------------------------------------------ *)
(* the three views of one app                                          *)
(* ------------------------------------------------------------------ *)

(** [static_findings ?config apk] — the bidi engine's findings as
    deduplicated (source tag, sink tag) keys, plus the typed solver
    outcome. *)
let static_findings ?(config = Config.default) apk :
    Verdict.key list * Fd_resilience.Outcome.t =
  let r = Infoflow.analyze_apk ~config apk in
  ( List.sort_uniq compare
      (List.map
         (fun (fd : Bidi.finding) ->
           (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
         r.Infoflow.r_findings),
    r.Infoflow.r_stats.Infoflow.st_outcome )

(** [dynamic_findings ?coverage apk] — the interpreter's observed
    leaks as deduplicated keys.  An unloadable app observes nothing. *)
let dynamic_findings ?(coverage = Fd_interp.Droid_runner.Thorough) apk :
    Verdict.key list =
  match Fd_frontend.Apk.load apk with
  | exception Fd_frontend.Apk.Load_error _ -> []
  | loaded ->
      Fd_interp.Droid_runner.findings
        (Fd_interp.Droid_runner.run ~coverage loaded)

(* ------------------------------------------------------------------ *)
(* per-app check                                                       *)
(* ------------------------------------------------------------------ *)

type app_report = {
  ar_name : string;
  ar_verdicts : Verdict.leak_verdict list;
  ar_outcome : Fd_resilience.Outcome.t;  (** static solver outcome *)
  ar_time : float;  (** wall-clock seconds for both runs (not digested) *)
}

let divergences ar =
  List.filter (fun v -> Verdict.is_divergence v.Verdict.v_bucket) ar.ar_verdicts

(** [fixed_of_config config] — the limitation categories whose
    precision pass is enabled: those keys must no longer be classified
    as explained by the limitation (they are held to the pass's
    promise instead). *)
let fixed_of_config (config : Config.t) : Gen.limitation list =
  let p = config.Config.precision in
  List.filter_map
    (fun (on, l) -> if on then Some l else None)
    [
      (p.Config.must_alias, Gen.Lim_strong_update);
      (p.Config.array_index, Gen.Lim_array_index);
      (p.Config.reflection, Gen.Lim_reflection);
      (p.Config.clinit, Gen.Lim_clinit);
    ]

(** [check_apk ?config ?coverage ~name ~expected ~limits apk] runs
    both engines on one app and classifies every leak key.  A crashing
    static run yields zero static findings (classified accordingly)
    rather than aborting the campaign. *)
let check_apk ?(config = Config.default) ?coverage ~name ~expected ~limits apk :
    app_report =
  let t0 = Unix.gettimeofday () in
  let static, outcome =
    match static_findings ~config apk with
    | r -> r
    | exception e ->
        ([], Fd_resilience.Outcome.Crashed (Printexc.to_string e))
  in
  let dynamic = dynamic_findings ?coverage apk in
  let verdicts =
    Verdict.classify ~fixed:(fixed_of_config config) ~static ~dynamic ~expected
      ~limits
  in
  let t1 = Unix.gettimeofday () in
  M.incr m_apps;
  let ar =
    { ar_name = name; ar_verdicts = verdicts; ar_outcome = outcome;
      ar_time = t1 -. t0 }
  in
  if divergences ar <> [] then M.incr m_divergent;
  ar

(** [check_gen ?config ?coverage ga] — {!check_apk} on a generated
    app, using its planted ground truth and limitation table. *)
let check_gen ?config ?coverage (ga : Gen.gen_app) : app_report =
  check_apk ?config ?coverage ~name:ga.Gen.ga_name
    ~expected:ga.Gen.ga_expected ~limits:ga.Gen.ga_limits ga.Gen.ga_apk

(* ------------------------------------------------------------------ *)
(* campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type campaign = {
  cp_profile : Gen.profile;
  cp_seed : int;
  cp_reports : app_report list;  (** in generation order *)
}

(** [campaign ?config ?jobs ~profile ~seed ~n ()] generates and
    cross-checks [n] apps.  [jobs] fans the per-app loop out over
    {!Fd_util.Pool.map}; reports keep generation order, so the
    campaign (and its {!digest}) is bit-identical at any job count. *)
let campaign ?config ?jobs ?coverage ~profile ~seed ~n () : campaign =
  let apps = Gen.corpus ~profile ~seed n in
  {
    cp_profile = profile;
    cp_seed = seed;
    cp_reports = Fd_util.Pool.map ?jobs (check_gen ?config ?coverage) apps;
  }

(** [verdict_lines c] — the canonical textual form of every verdict,
    one line per (app, key): what the digest hashes and what minimized
    reproducer logs quote. *)
let verdict_lines c =
  List.concat_map
    (fun ar ->
      List.map
        (fun (v : Verdict.leak_verdict) ->
          Printf.sprintf "%s|%s|%s" ar.ar_name
            (Verdict.string_of_key v.Verdict.v_key)
            (Verdict.string_of_bucket v.Verdict.v_bucket))
        ar.ar_verdicts)
    c.cp_reports

(** [digest c] — hex digest of the canonical verdict lines; the
    any-job-count determinism contract of the CI gate. *)
let digest c = Digest.to_hex (Digest.string (String.concat "\n" (verdict_lines c)))

let divergent_reports c =
  List.filter (fun ar -> divergences ar <> []) c.cp_reports

(** [bucket_counts c] — (bucket label, count), sorted by label. *)
let bucket_counts c =
  List.fold_left
    (fun acc ar ->
      List.fold_left
        (fun acc (v : Verdict.leak_verdict) ->
          let k = Verdict.string_of_bucket v.Verdict.v_bucket in
          let prev = Option.value (List.assoc_opt k acc) ~default:0 in
          (k, prev + 1) :: List.remove_assoc k acc)
        acc ar.ar_verdicts)
    [] c.cp_reports
  |> List.sort compare

let total_keys c =
  List.fold_left (fun a ar -> a + List.length ar.ar_verdicts) 0 c.cp_reports

(** [render c] — the campaign summary table plus one line per
    divergence. *)
let render c =
  let module Table = Fd_util.Table in
  let summary =
    Table.render
      (Table.make
         ~header:
           [
             Printf.sprintf "diffcheck: %s (seed %d, %d apps)"
               (Gen.string_of_profile c.cp_profile)
               c.cp_seed
               (List.length c.cp_reports);
             "leak keys";
           ]
         (List.map
            (fun (k, n) -> Table.Row [ k; string_of_int n ])
            (bucket_counts c)
         @ [
             Table.Sep;
             Table.Row [ "total keys"; string_of_int (total_keys c) ];
             Table.Row [ "verdict digest"; digest c ];
           ]))
  in
  let div_lines =
    List.concat_map
      (fun ar ->
        List.map
          (fun (v : Verdict.leak_verdict) ->
            Printf.sprintf "DIVERGENCE %s %s %s\n" ar.ar_name
              (Verdict.string_of_key v.Verdict.v_key)
              (Verdict.string_of_bucket v.Verdict.v_bucket))
          (divergences ar))
      (divergent_reports c)
  in
  summary ^ String.concat "" div_lines
