(** Library "shortcut" rules (taint wrappers) and native-call models
    (Section 5: "Defining shortcuts", "Native Calls").

    A rule maps a (class, method) pair to taint-propagation effects,
    applied along the call-to-return edge {e instead of} analysing a
    callee (rules are exclusive).  Rules attach to the declared
    receiver class or any supertype.

    Line format ('%' comments):
    {v <class> <method> : tgt<-src (, tgt<-src)* v}
    with [tgt] in [ret]/[recv]/[argN] and [src] in
    [recv]/[args]/[argN]; an empty effect list marks the method as
    modelled-with-no-propagation (e.g. [String.length]). *)

type target = To_ret | To_recv | To_arg of int
type origin = From_recv | From_any_arg | From_arg of int

type effect = { eff_to : target; eff_from : origin }
(** "[eff_to] becomes tainted if [eff_from] is tainted" *)

type t

val create : (string * string * effect list) list -> t

val lookup : t -> cls:string -> mname:string -> effect list option
(** exact (class, method) lookup; callers also try the receiver's
    supertypes *)

val mem : t -> cls:string -> mname:string -> bool

val digest : t -> string
(** stable MD5 hex of a canonical, sorted rendering of the rule set —
    independent of insertion order; part of the persistent summary
    store's analysis-config key *)

exception Bad_rule of int * string

val parse_string : string -> (string * string * effect list) list
(** @raise Bad_rule with the 1-based line number *)

val of_string : string -> t

val default_wrapper_config : string
(** the default library model (strings, string builders, collections,
    Android UI and ICC carriers, servlet sessions) in the textual
    format *)

val default_native_config : string
(** explicit native models ([System.arraycopy], [String.getChars]) *)

val default_wrappers : unit -> t
val default_natives : unit -> t
