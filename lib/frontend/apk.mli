(** The APK model.

    A real APK is a zip archive holding [AndroidManifest.xml], layout
    resources and Dalvik bytecode; this model is the same bundle with
    µJimple in place of Dalvik.  {!load} runs the whole frontend of
    Figure 4's first stage: XML parsing, resource-id assignment, scene
    construction with the framework skeleton installed, and
    component-consistency checks. *)

open Fd_ir

type mode = [ `Strict | `Lenient ]
(** [`Strict] (the default) raises {!Load_error} on the first
    malformed artefact; [`Lenient] skips the offending component,
    layout or compilation unit, records a {!Fd_resilience.Diag.t},
    and analyses the rest. *)

type t = {
  apk_name : string;
  apk_manifest : string;  (** manifest XML source *)
  apk_layouts : (string * string) list;  (** (layout name, XML source) *)
  apk_classes : Jclass.t list;
  apk_diags : Fd_resilience.Diag.t list;
      (** diagnostics collected while bundling (lenient parse skips) *)
}

type loaded = {
  name : string;
  manifest : Manifest.t;
  layout : Layout.t;
  scene : Scene.t;
  components : Manifest.component list;  (** enabled components only *)
  diags : Fd_resilience.Diag.t list;
      (** bundle diagnostics plus lenient-load skips; [[]] in strict
          mode *)
}

exception Load_error of string

val make :
  string -> manifest:string -> ?layouts:(string * string) list ->
  ?diags:Fd_resilience.Diag.t list -> Jclass.t list -> t
(** [make name ~manifest ?layouts classes] bundles an in-memory app. *)

val make_text :
  ?mode:mode -> string -> manifest:string ->
  ?layouts:(string * string) list -> ?diags:Fd_resilience.Diag.t list ->
  string list -> t
(** [make_text name ~manifest ?layouts sources] bundles an app whose
    code is textual µJimple compilation units.  In lenient mode an
    unparsable unit is dropped with a diagnostic carrying the line
    number.
    @raise Load_error on parse errors in strict mode (with the line
    number). *)

val of_dir : ?mode:mode -> string -> t
(** [of_dir dir] reads an app from disk: [AndroidManifest.xml], every
    [res/layout/*.xml] and every [*.jimple] file (recursively,
    alphabetical).  All I/O failures — nonexistent or unreadable
    directory, unreadable file — surface as {!Load_error} carrying
    the offending path, never a bare [Sys_error].  In lenient mode an
    unreadable or unparsable file is skipped with a diagnostic; the
    manifest stays mandatory.
    @raise Load_error when the manifest is missing, the directory is
    unreadable, or code is malformed (strict mode). *)

val load : ?mode:mode -> ?template:Scene.t -> t -> loaded
(** [load apk] runs the frontend and validates that every enabled
    manifest component resolves to a class with the right framework
    superclass.  In lenient mode a malformed manifest component, an
    unparsable layout, a duplicate class, or a component failing
    validation is skipped with a diagnostic ([loaded.diags]) and the
    rest of the app is loaded.

    [template] supplies a pre-warmed skeleton scene to clone instead
    of {!Framework.fresh_scene} — the serve daemon's per-rule-set
    template cache uses this; results are identical either way.
    @raise Load_error on inconsistencies (strict mode). *)

type merged = {
  m_loaded : loaded;
      (** the merged view: one scene holding every app's classes, a
          synthetic manifest concatenating all components *)
  m_apps : (string * Manifest.t) list;  (** per-app manifests, load order *)
  m_app_of : string -> string option;
      (** which app declared a class (for the cross-app exported gate) *)
}

val load_merged : ?mode:mode -> ?template:Scene.t -> t list -> merged
(** [load_merged apks] loads several apps into one merged Scene — the
    inter-app setting where intents cross APK boundaries.  Classes
    must be globally unique (strict mode raises on a duplicate;
    lenient keeps the first and records a diagnostic); layouts merge
    first-wins.  The ICC resolver consumes [m_apps] and [m_app_of] to
    apply the exported gate between apps.
    @raise Load_error on an empty list or inconsistencies (strict). *)

val res_id : loaded -> string -> int
(** the integer resource id of the layout control with the given
    symbolic id.  @raise Load_error when no layout declares it. *)

val layout_id : loaded -> string -> int
(** the [R.layout] integer for a layout file name *)

val simple_manifest :
  package:string ->
  (Framework.component_kind * string * (string * string) list) list ->
  string
(** [simple_manifest ~package comps] renders a minimal manifest
    declaring [comps] as [(kind, class, extra-attributes)], with the
    first activity as the MAIN/LAUNCHER entry. *)
