(** AndroidManifest.xml parsing.

    The manifest declares the app's components; FlowDroid reads it to
    know which classes are entry-point components, whether they are
    enabled (disabled activities are filtered from the dummy main —
    DroidBench's InactiveActivity test), and which activity is the
    launcher. *)

module X = Fd_xml.Xml

type data_spec = {
  d_scheme : string option;
  d_host : string option;
  d_mime : string option;  (** mimeType; ["image/*"] wildcards allowed *)
}

type intent_filter = {
  if_actions : string list;
  if_categories : string list;
  if_data : data_spec list;
}

type component = {
  comp_kind : Framework.component_kind;
  comp_class : string;  (** fully-qualified class name *)
  comp_enabled : bool;
  comp_exported : bool;
  comp_filters : intent_filter list;  (** one entry per <intent-filter> *)
  comp_actions : string list;  (** union of filter actions (legacy view) *)
  comp_categories : string list;
  comp_main : bool;  (** carries MAIN/LAUNCHER intent filter *)
}

type t = {
  package : string;
  components : component list;
  permissions : string list;  (** uses-permission entries *)
}

exception Malformed of string

let main_action = "android.intent.action.MAIN"
let launcher_category = "android.intent.category.LAUNCHER"

(* resolve ".Relative" class names against the package *)
let resolve_class ~package name =
  if String.length name > 0 && name.[0] = '.' then package ^ name
  else if String.contains name '.' then name
  else if package = "" then name
  else package ^ "." ^ name

let bool_attr e name ~default =
  match X.attr e name with
  | Some "true" -> true
  | Some "false" -> false
  | Some v -> raise (Malformed (Printf.sprintf "attribute %s=%S is not a boolean" name v))
  | None -> default

let parse_filter e =
  let named tag =
    List.filter_map (fun n -> X.attr n "android:name") (X.children_named e tag)
  in
  {
    if_actions = named "action";
    if_categories = named "category";
    if_data =
      List.map
        (fun d ->
          {
            d_scheme = X.attr d "android:scheme";
            d_host = X.attr d "android:host";
            d_mime = X.attr d "android:mimeType";
          })
        (X.children_named e "data");
  }

let parse_component ~package kind e =
  let name =
    match X.attr e "android:name" with
    | Some n -> resolve_class ~package n
    | None -> raise (Malformed "component without android:name")
  in
  let filters = List.map parse_filter (X.children_named e "intent-filter") in
  let actions = List.concat_map (fun f -> f.if_actions) filters in
  let categories = List.concat_map (fun f -> f.if_categories) filters in
  (* Android 12 exported semantics: an explicit android:exported
     attribute wins; absent one, a component is exported iff it
     declares at least one intent filter (it wants to be found).  A
     filterless component without the attribute is NOT exported. *)
  let exported =
    match X.attr e "android:exported" with
    | Some _ -> bool_attr e "android:exported" ~default:false
    | None -> filters <> []
  in
  {
    comp_kind = kind;
    comp_class = name;
    comp_enabled = bool_attr e "android:enabled" ~default:true;
    comp_exported = exported;
    comp_filters = filters;
    comp_actions = actions;
    comp_categories = categories;
    comp_main =
      List.mem main_action actions && List.mem launcher_category categories;
  }

(** [parse xml_source] parses a manifest document.
    @raise Malformed (or {!Fd_xml.Xml.Parse_error}) on bad input. *)
let parse src =
  let root = X.parse_string src in
  if X.tag root <> "manifest" then
    raise (Malformed "root element is not <manifest>");
  let package = X.attr_dflt root "package" ~default:"" in
  let apps = X.children_named root "application" in
  let components =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun (tag, kind) ->
            List.map (parse_component ~package kind) (X.children_named app tag))
          [
            ("activity", Framework.Activity);
            ("service", Framework.Service);
            ("receiver", Framework.Receiver);
            ("provider", Framework.Provider);
          ])
      apps
  in
  let permissions =
    List.filter_map
      (fun p -> X.attr p "android:name")
      (X.children_named root "uses-permission")
  in
  { package; components; permissions }

(** [parse_lenient xml_source] parses a manifest document, skipping
    malformed components instead of raising.  Returns the (possibly
    partial) manifest plus a message per skipped item; an unparsable
    document yields an empty manifest with one message. *)
let parse_lenient src =
  let empty = { package = ""; components = []; permissions = [] } in
  match X.parse_string src with
  | exception X.Parse_error (pos, msg) ->
      (empty, [ Printf.sprintf "manifest XML error at offset %d: %s" pos msg ])
  | root ->
      if X.tag root <> "manifest" then
        (empty, [ "root element is not <manifest>" ])
      else begin
        let skipped = ref [] in
        let package = X.attr_dflt root "package" ~default:"" in
        let apps = X.children_named root "application" in
        let components =
          List.concat_map
            (fun app ->
              List.concat_map
                (fun (tag, kind) ->
                  List.filter_map
                    (fun e ->
                      try Some (parse_component ~package kind e)
                      with Malformed msg ->
                        skipped :=
                          Printf.sprintf "skipped <%s>: %s" tag msg :: !skipped;
                        None)
                    (X.children_named app tag))
                [
                  ("activity", Framework.Activity);
                  ("service", Framework.Service);
                  ("receiver", Framework.Receiver);
                  ("provider", Framework.Provider);
                ])
            apps
        in
        let permissions =
          List.filter_map
            (fun p -> X.attr p "android:name")
            (X.children_named root "uses-permission")
        in
        ({ package; components; permissions }, List.rev !skipped)
      end

(** [enabled_components m] filters out components disabled in the
    manifest (they can never run, so the lifecycle model excludes
    them). *)
let enabled_components m = List.filter (fun c -> c.comp_enabled) m.components

(** [launcher m] is the MAIN/LAUNCHER activity if one is declared. *)
let launcher m =
  List.find_opt (fun c -> c.comp_main && c.comp_enabled) m.components

(** [find m cls] is the component entry for class [cls], if any. *)
let find m cls = List.find_opt (fun c -> c.comp_class = cls) m.components

(* ------------------------------------------------------------------ *)
(* Intent resolution (Android's three filter tests)                    *)
(* ------------------------------------------------------------------ *)

type intent_desc = {
  it_class : string option;  (** explicit target component class *)
  it_action : string option;
  it_categories : string list;
  it_scheme : string option;
  it_host : string option;
  it_mime : string option;
}

let blank_intent =
  {
    it_class = None;
    it_action = None;
    it_categories = [];
    it_scheme = None;
    it_host = None;
    it_mime = None;
  }

(* mimeType matching with the "type/*" and "*/*" filter wildcards *)
let mime_matches ~filter ~intent =
  filter = intent || filter = "*/*"
  ||
  match String.index_opt filter '/' with
  | Some i when String.sub filter (i + 1) (String.length filter - i - 1) = "*"
    -> (
      let prefix = String.sub filter 0 (i + 1) in
      String.length intent > i + 1 && String.sub intent 0 (i + 1) = prefix)
  | _ -> false

(* the action test: the filter must list the intent's action; an
   actionless intent passes any filter that has at least one action *)
let action_test f (it : intent_desc) =
  match it.it_action with
  | Some a -> List.mem a f.if_actions
  | None -> f.if_actions <> []

(* the category test: every category of the intent must appear in the
   filter (an intent with no categories always passes) *)
let category_test f (it : intent_desc) =
  List.for_all (fun c -> List.mem c f.if_categories) it.it_categories

(* the data test: an intent with neither data URI nor type passes only
   filters that declare no data; otherwise some <data> spec must match
   every dimension the intent carries *)
let data_test f (it : intent_desc) =
  match (it.it_scheme, it.it_host, it.it_mime) with
  | None, None, None -> f.if_data = []
  | _ ->
      List.exists
        (fun d ->
          (match (it.it_scheme, d.d_scheme) with
          | Some s, Some fs -> s = fs
          | Some _, None -> false
          | None, _ -> true)
          && (match (it.it_host, d.d_host) with
             | Some h, Some fh -> h = fh
             | Some _, None -> false
             | None, _ -> true)
          &&
          match (it.it_mime, d.d_mime) with
          | Some m, Some fm -> mime_matches ~filter:fm ~intent:m
          | Some _, None -> false
          | None, Some _ -> false
          | None, None -> true)
        f.if_data

let filter_matches f it = action_test f it && category_test f it && data_test f it

(** [component_receives c it] — can component [c] receive intent [it]?
    Explicit targets match by class name alone (filters are bypassed);
    implicit intents must pass some declared filter. *)
let component_receives c (it : intent_desc) =
  c.comp_enabled
  &&
  match it.it_class with
  | Some cls -> cls = c.comp_class
  | None -> List.exists (fun f -> filter_matches f it) c.comp_filters

(** [resolve_intent m it] — the enabled components of [m] that can
    receive [it], in declaration order. *)
let resolve_intent m it =
  List.filter (fun c -> component_receives c it) m.components
