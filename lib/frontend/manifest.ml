(** AndroidManifest.xml parsing.

    The manifest declares the app's components; FlowDroid reads it to
    know which classes are entry-point components, whether they are
    enabled (disabled activities are filtered from the dummy main —
    DroidBench's InactiveActivity test), and which activity is the
    launcher. *)

module X = Fd_xml.Xml

type component = {
  comp_kind : Framework.component_kind;
  comp_class : string;  (** fully-qualified class name *)
  comp_enabled : bool;
  comp_exported : bool;
  comp_actions : string list;  (** intent-filter actions *)
  comp_categories : string list;
  comp_main : bool;  (** carries MAIN/LAUNCHER intent filter *)
}

type t = {
  package : string;
  components : component list;
  permissions : string list;  (** uses-permission entries *)
}

exception Malformed of string

let main_action = "android.intent.action.MAIN"
let launcher_category = "android.intent.category.LAUNCHER"

(* resolve ".Relative" class names against the package *)
let resolve_class ~package name =
  if String.length name > 0 && name.[0] = '.' then package ^ name
  else if String.contains name '.' then name
  else if package = "" then name
  else package ^ "." ^ name

let bool_attr e name ~default =
  match X.attr e name with
  | Some "true" -> true
  | Some "false" -> false
  | Some v -> raise (Malformed (Printf.sprintf "attribute %s=%S is not a boolean" name v))
  | None -> default

let parse_component ~package kind e =
  let name =
    match X.attr e "android:name" with
    | Some n -> resolve_class ~package n
    | None -> raise (Malformed "component without android:name")
  in
  let actions =
    List.filter_map
      (fun a -> X.attr a "android:name")
      (X.descendants_named e "action")
  in
  let categories =
    List.filter_map
      (fun c -> X.attr c "android:name")
      (X.descendants_named e "category")
  in
  {
    comp_kind = kind;
    comp_class = name;
    comp_enabled = bool_attr e "android:enabled" ~default:true;
    comp_exported = bool_attr e "android:exported" ~default:false;
    comp_actions = actions;
    comp_categories = categories;
    comp_main =
      List.mem main_action actions && List.mem launcher_category categories;
  }

(** [parse xml_source] parses a manifest document.
    @raise Malformed (or {!Fd_xml.Xml.Parse_error}) on bad input. *)
let parse src =
  let root = X.parse_string src in
  if X.tag root <> "manifest" then
    raise (Malformed "root element is not <manifest>");
  let package = X.attr_dflt root "package" ~default:"" in
  let apps = X.children_named root "application" in
  let components =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun (tag, kind) ->
            List.map (parse_component ~package kind) (X.children_named app tag))
          [
            ("activity", Framework.Activity);
            ("service", Framework.Service);
            ("receiver", Framework.Receiver);
            ("provider", Framework.Provider);
          ])
      apps
  in
  let permissions =
    List.filter_map
      (fun p -> X.attr p "android:name")
      (X.children_named root "uses-permission")
  in
  { package; components; permissions }

(** [parse_lenient xml_source] parses a manifest document, skipping
    malformed components instead of raising.  Returns the (possibly
    partial) manifest plus a message per skipped item; an unparsable
    document yields an empty manifest with one message. *)
let parse_lenient src =
  let empty = { package = ""; components = []; permissions = [] } in
  match X.parse_string src with
  | exception X.Parse_error (pos, msg) ->
      (empty, [ Printf.sprintf "manifest XML error at offset %d: %s" pos msg ])
  | root ->
      if X.tag root <> "manifest" then
        (empty, [ "root element is not <manifest>" ])
      else begin
        let skipped = ref [] in
        let package = X.attr_dflt root "package" ~default:"" in
        let apps = X.children_named root "application" in
        let components =
          List.concat_map
            (fun app ->
              List.concat_map
                (fun (tag, kind) ->
                  List.filter_map
                    (fun e ->
                      try Some (parse_component ~package kind e)
                      with Malformed msg ->
                        skipped :=
                          Printf.sprintf "skipped <%s>: %s" tag msg :: !skipped;
                        None)
                    (X.children_named app tag))
                [
                  ("activity", Framework.Activity);
                  ("service", Framework.Service);
                  ("receiver", Framework.Receiver);
                  ("provider", Framework.Provider);
                ])
            apps
        in
        let permissions =
          List.filter_map
            (fun p -> X.attr p "android:name")
            (X.children_named root "uses-permission")
        in
        ({ package; components; permissions }, List.rev !skipped)
      end

(** [enabled_components m] filters out components disabled in the
    manifest (they can never run, so the lifecycle model excludes
    them). *)
let enabled_components m = List.filter (fun c -> c.comp_enabled) m.components

(** [launcher m] is the MAIN/LAUNCHER activity if one is declared. *)
let launcher m =
  List.find_opt (fun c -> c.comp_main && c.comp_enabled) m.components

(** [find m cls] is the component entry for class [cls], if any. *)
let find m cls = List.find_opt (fun c -> c.comp_class = cls) m.components
