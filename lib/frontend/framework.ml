(** The modelled Android framework skeleton.

    FlowDroid does not analyse the Android platform code itself;
    library behaviour enters the analysis through explicit models
    (Section 5 of the paper: "Defining shortcuts", "Native Calls").
    What the analysis *does* need from the framework is its shape:

    - the class hierarchy (so that an app class is recognisable as an
      activity, a listener implementation, ...),
    - the callback interfaces and their methods (so that callback
      discovery can find handler registrations), and
    - the set of framework methods an app may override to receive
      framework-driven calls (DroidBench's MethodOverride cases).

    This module registers that skeleton into a {!Fd_ir.Scene.t} as
    phantom classes. *)

open Fd_ir
module T = Types

let obj = T.Ref T.object_class
let str = T.Ref "java.lang.String"

let phantom ?super ?(interfaces = []) ?(is_interface = false) ?(methods = [])
    name =
  Jclass.mk name
    ~super:(Some (Option.value super ~default:T.object_class))
    ~interfaces ~is_interface ~methods ~phantom:true

let am name ?(params = []) ?(ret = T.Void) cls =
  Jclass.mk_method ~abstract:true (T.mk_method ~params ~ret cls name)

(** Component base classes, in the paper's Section 3 taxonomy. *)
let activity_class = "android.app.Activity"

(** Framework-scheduled worker classes with linked lifecycle methods
    (extension features: FlowDroid's successors model these). *)
let async_task_class = "android.os.AsyncTask"

let fragment_class = "android.app.Fragment"

(** Fragment lifecycle methods, in framework order. *)
let fragment_lifecycle =
  [
    ("onAttach", [ T.Ref "android.app.Activity" ]);
    ("onCreate", [ T.Ref "android.os.Bundle" ]);
    ("onCreateView", [ T.Ref "android.os.Bundle" ]);
    ("onStart", []);
    ("onResume", []);
    ("onPause", []);
    ("onStop", []);
    ("onDestroyView", []);
    ("onDestroy", []);
    ("onDetach", []);
  ]

let service_class = "android.app.Service"
let receiver_class = "android.content.BroadcastReceiver"
let provider_class = "android.content.ContentProvider"
let application_class = "android.app.Application"

(** Callback interfaces with their callback methods: the "well-known
    callback interfaces" FlowDroid scans registrations for. *)
let callback_interfaces =
  [
    ( "android.view.View$OnClickListener",
      [ ("onClick", [ T.Ref "android.view.View" ]) ] );
    ( "android.view.View$OnLongClickListener",
      [ ("onLongClick", [ T.Ref "android.view.View" ]) ] );
    ( "android.view.View$OnTouchListener",
      [ ("onTouch", [ T.Ref "android.view.View"; T.Ref "android.view.MotionEvent" ]) ] );
    ( "android.location.LocationListener",
      [
        ("onLocationChanged", [ T.Ref "android.location.Location" ]);
        ("onProviderDisabled", [ str ]);
        ("onProviderEnabled", [ str ]);
        ("onStatusChanged", [ str; T.Int; T.Ref "android.os.Bundle" ]);
      ] );
    ( "android.content.DialogInterface$OnClickListener",
      [ ("onClick", [ T.Ref "android.content.DialogInterface"; T.Int ]) ] );
    ( "android.widget.AdapterView$OnItemClickListener",
      [ ("onItemClick", [ obj; T.Ref "android.view.View"; T.Int; T.Long ]) ] );
    ( "android.content.SharedPreferences$OnSharedPreferenceChangeListener",
      [ ("onSharedPreferenceChanged",
         [ T.Ref "android.content.SharedPreferences"; str ]) ] );
    ( "java.lang.Runnable", [ ("run", []) ] );
    ( "android.os.Handler$Callback",
      [ ("handleMessage", [ T.Ref "android.os.Message" ]) ] );
  ]

(** Framework methods that register a callback listener: the scan for
    imperative registrations looks for calls to these.  Each entry is
    (method name, interface registered).  The declaring class is not
    constrained — Android spreads registration methods over many
    classes ([View], [LocationManager], [Button], ...), and FlowDroid
    likewise matches them by the listener's formal parameter type. *)
let registration_methods =
  [
    ("setOnClickListener", "android.view.View$OnClickListener");
    ("setOnLongClickListener", "android.view.View$OnLongClickListener");
    ("setOnTouchListener", "android.view.View$OnTouchListener");
    ("requestLocationUpdates", "android.location.LocationListener");
    ("removeUpdates", "android.location.LocationListener");
    ("setOnItemClickListener", "android.widget.AdapterView$OnItemClickListener");
    ("registerOnSharedPreferenceChangeListener",
     "android.content.SharedPreferences$OnSharedPreferenceChangeListener");
    ("post", "java.lang.Runnable");
    ("postDelayed", "java.lang.Runnable");
    ("runOnUiThread", "java.lang.Runnable");
  ]

(** Overridable framework callbacks per base class: an application
    method overriding one of these is called by the framework even
    though it is registered nowhere (MethodOverride1).  Lifecycle
    methods are handled separately by {!Fd_lifecycle}. *)
let overridable_callbacks =
  [
    ( activity_class,
      [
        "onLowMemory"; "onBackPressed"; "onKeyDown"; "onKeyUp";
        "onTouchEvent"; "onTrackballEvent"; "onUserInteraction";
        "onActivityResult"; "onCreateOptionsMenu"; "onOptionsItemSelected";
        "onCreateContextMenu"; "onContextItemSelected"; "onNewIntent";
        "onWindowFocusChanged"; "onAttachedToWindow"; "onConfigurationChanged";
      ] );
    (service_class, [ "onLowMemory"; "onTrimMemory"; "onConfigurationChanged" ]);
    (application_class, [ "onLowMemory"; "onTrimMemory"; "onConfigurationChanged" ]);
    (receiver_class, []);
    (provider_class, [ "onLowMemory"; "onConfigurationChanged" ]);
  ]

(** The widget classes whose XML declarations the layout parser
    understands, with their superclass links. *)
let widget_hierarchy =
  [
    ("android.view.View", T.object_class);
    ("android.widget.TextView", "android.view.View");
    ("android.widget.EditText", "android.widget.TextView");
    ("android.widget.Button", "android.widget.TextView");
    ("android.widget.ImageView", "android.view.View");
    ("android.view.ViewGroup", "android.view.View");
    ("android.widget.LinearLayout", "android.view.ViewGroup");
    ("android.widget.RelativeLayout", "android.view.ViewGroup");
    ("android.widget.ListView", "android.view.ViewGroup");
  ]

(** [install scene] registers the framework skeleton into [scene].
    Idempotent: already-present classes are left untouched, so an app
    may ship a richer stub of a framework class. *)
let install scene =
  let add c = if not (Scene.mem scene c.Jclass.c_name) then Scene.add_class scene c in
  add (Jclass.mk T.object_class ~super:None ~phantom:true);
  (* core platform classes *)
  add (phantom "android.content.Context");
  add (phantom "android.content.ContextWrapper" ~super:"android.content.Context");
  add (phantom activity_class ~super:"android.content.ContextWrapper");
  add (phantom service_class ~super:"android.content.ContextWrapper");
  add (phantom application_class ~super:"android.content.ContextWrapper");
  add (phantom receiver_class);
  add (phantom provider_class);
  List.iter (fun (w, sup) -> add (phantom w ~super:sup)) widget_hierarchy;
  add (phantom async_task_class);
  add (phantom fragment_class);
  add (phantom "android.app.FragmentTransaction");
  add (phantom "android.telephony.TelephonyManager");
  add (phantom "android.telephony.SmsManager");
  add (phantom "android.location.LocationManager");
  add (phantom "android.location.Location");
  add (phantom "android.util.Log");
  add (phantom "android.content.SharedPreferences");
  add (phantom "android.content.SharedPreferences$Editor");
  add (phantom "android.content.Intent");
  add (phantom "android.os.Bundle");
  add (phantom "android.os.Handler");
  add (phantom "android.os.Message");
  add (phantom "android.view.MotionEvent");
  add (phantom "android.content.DialogInterface");
  add (phantom "java.lang.String");
  add (phantom "java.lang.StringBuilder");
  add (phantom "java.lang.StringBuffer");
  add (phantom "java.lang.System");
  add (phantom "java.lang.Thread" ~interfaces:[ "java.lang.Runnable" ]);
  add (phantom "java.util.ArrayList" ~interfaces:[ "java.util.List" ]);
  add (phantom "java.util.LinkedList" ~interfaces:[ "java.util.List" ]);
  add (phantom "java.util.HashMap" ~interfaces:[ "java.util.Map" ]);
  add (phantom "java.util.HashSet" ~interfaces:[ "java.util.Set" ]);
  add (phantom "java.util.List" ~is_interface:true);
  add (phantom "java.util.Map" ~is_interface:true);
  add (phantom "java.util.Set" ~is_interface:true);
  add (phantom "java.io.OutputStream");
  add (phantom "java.io.FileOutputStream" ~super:"java.io.OutputStream");
  add (phantom "java.net.URL");
  add (phantom "java.net.URLConnection");
  add (phantom "java.net.HttpURLConnection" ~super:"java.net.URLConnection");
  (* callback interfaces, with their methods declared so that callback
     discovery can enumerate handler entry points *)
  List.iter
    (fun (iname, meths) ->
      add
        (phantom iname ~is_interface:true
           ~methods:(List.map (fun (mn, ps) -> am mn ~params:ps iname) meths)))
    callback_interfaces

(** [fresh_scene ()] is a new scene with the skeleton installed.  The
    skeleton is built once into a template and copied per call — the
    install itself is pure, and every analysis run starts from one. *)
let fresh_scene =
  let template =
    lazy
      (let sc = Scene.create () in
       install sc;
       sc)
  in
  fun () -> Scene.copy (Lazy.force template)

(** [warm ()] forces the framework-skeleton template eagerly, so a
    long-lived process (the serve daemon) pays the one-time install
    cost at startup instead of on its first request. *)
let warm () = ignore (fresh_scene ())

(** [component_kind_of scene cls] classifies an application class by
    its framework superclass, or [None] if it is not a component. *)
type component_kind = Activity | Service | Receiver | Provider

let string_of_component_kind = function
  | Activity -> "activity"
  | Service -> "service"
  | Receiver -> "receiver"
  | Provider -> "provider"

let component_kind_of scene cls =
  if Scene.is_subtype scene cls activity_class then Some Activity
  else if Scene.is_subtype scene cls service_class then Some Service
  else if Scene.is_subtype scene cls receiver_class then Some Receiver
  else if Scene.is_subtype scene cls provider_class then Some Provider
  else None

(** [registered_interface name] is the callback interface a
    registration method installs, if [name] is one. *)
let registered_interface name = List.assoc_opt name registration_methods

(** [is_callback_interface scene cls] holds when [cls] is (a subtype
    of) one of the modelled callback interfaces. *)
let is_callback_interface scene cls =
  List.exists
    (fun (iname, _) -> Scene.is_subtype scene cls iname)
    callback_interfaces

(** [callback_methods_of scene cls] is the callback methods an
    instance of [cls] exposes: for every modelled callback interface
    [cls] implements, the concrete implementations found on [cls].
    Returns (interface, class-declaring, method) triples. *)
let callback_methods_of scene cls =
  List.concat_map
    (fun (iname, meths) ->
      if Scene.is_subtype scene cls iname then
        List.filter_map
          (fun (mn, ps) ->
            match Scene.resolve_concrete scene cls (mn, ps) with
            | Some (decl, m) when Jclass.has_body m -> Some (iname, decl, m)
            | _ -> None)
          meths
      else [])
    callback_interfaces

(** [overridden_framework_callbacks scene cls] is the methods of [cls]
    (or inherited, declared with bodies in application code) that
    override a known overridable framework method of one of [cls]'s
    framework superclasses. *)
let overridden_framework_callbacks scene cls =
  let supers = Scene.supertypes scene cls in
  let names =
    List.concat_map
      (fun (base, names) -> if List.mem base supers then names else [])
      overridable_callbacks
  in
  match Scene.find_class scene cls with
  | None -> []
  | Some c ->
      List.filter
        (fun (m : Jclass.jmethod) ->
          Jclass.has_body m && List.mem m.Jclass.jm_sig.T.m_name names)
        c.Jclass.c_methods
