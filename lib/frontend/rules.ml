(** Library "shortcut" rules (taint wrappers) and native-call models.

    Section 5 of the paper: analysing the full JRE/Android runtime is
    expensive and imprecise, so FlowDroid ships a textual file format
    of shortcut rules for common library classes (collections, string
    buffers, ...) applied along the call-to-return edge, plus explicit
    taint-propagation rules for common native methods such as
    [System.arraycopy].

    A rule maps a (class, method) pair to a list of taint-propagation
    effects.  When the engine sees a call to a modelled method it
    applies the effects instead of (not in addition to) analysing a
    callee — rules are exclusive, mirroring FlowDroid's taint
    wrappers.  Rules attach to the *declared* receiver class or any of
    its supertypes, so one rule on [java.util.Map] covers [HashMap]. *)

type target = To_ret | To_recv | To_arg of int
type origin = From_recv | From_any_arg | From_arg of int

type effect = { eff_to : target; eff_from : origin }
(** "[eff_to] becomes tainted if [eff_from] is tainted". *)

type t = { rules : (string * string, effect list) Hashtbl.t }

let create bindings =
  let t = { rules = Hashtbl.create 64 } in
  List.iter
    (fun (cls, mname, effects) ->
      let key = (cls, mname) in
      let prev = Option.value (Hashtbl.find_opt t.rules key) ~default:[] in
      Hashtbl.replace t.rules key (prev @ effects))
    bindings;
  t

(** [lookup t ~cls ~mname] finds the effects for an exact (class,
    method) pair; the engine is responsible for also trying the
    receiver's supertypes. *)
let lookup t ~cls ~mname = Hashtbl.find_opt t.rules (cls, mname)

(** [mem t ~cls ~mname] is [lookup <> None]. *)
let mem t ~cls ~mname = Hashtbl.mem t.rules (cls, mname)

(** [digest t] is a stable MD5 of a canonical rendering of the rule
    set: one line per (class, method) in sorted order, independent of
    insertion order and hash-table layout.  The persistent summary
    store folds it into its analysis-config key — two rule sets with
    the same digest induce the same wrapper transfer functions. *)
let digest t =
  let target_str = function
    | To_ret -> "ret"
    | To_recv -> "recv"
    | To_arg i -> "arg" ^ string_of_int i
  in
  let origin_str = function
    | From_recv -> "recv"
    | From_any_arg -> "args"
    | From_arg i -> "arg" ^ string_of_int i
  in
  let lines =
    Hashtbl.fold
      (fun (cls, mname) effects acc ->
        let effs =
          List.map
            (fun e -> target_str e.eff_to ^ "<-" ^ origin_str e.eff_from)
            effects
        in
        (cls ^ " " ^ mname ^ " : " ^ String.concat ", " effs) :: acc)
      t.rules []
  in
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare lines)))

(* ------------------------------------------------------------------ *)
(* Textual format                                                      *)
(* ------------------------------------------------------------------ *)

exception Bad_rule of int * string

(* Line format ('%' comments):
     <class> <method> : eff (, eff)*
   where eff is  tgt<-src,  tgt in {ret, recv, argN},
                            src in {recv, args, argN}.     *)
let parse_effect lineno s =
  let fail msg = raise (Bad_rule (lineno, msg)) in
  match String.index_opt s '<' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '-' ->
      let tgt = String.trim (String.sub s 0 i) in
      let src = String.trim (String.sub s (i + 2) (String.length s - i - 2)) in
      let parse_pos role = function
        | "ret" when role = `Tgt -> To_ret
        | "recv" when role = `Tgt -> To_recv
        | p when role = `Tgt && String.length p > 3 && String.sub p 0 3 = "arg"
          -> (
            try To_arg (int_of_string (String.sub p 3 (String.length p - 3)))
            with _ -> fail ("bad arg position " ^ p))
        | p -> fail ("bad target " ^ p)
      in
      let eff_to = parse_pos `Tgt tgt in
      let eff_from =
        match src with
        | "recv" -> From_recv
        | "args" -> From_any_arg
        | p when String.length p > 3 && String.sub p 0 3 = "arg" -> (
            try From_arg (int_of_string (String.sub p 3 (String.length p - 3)))
            with _ -> fail ("bad arg position " ^ p))
        | p -> fail ("bad origin " ^ p)
      in
      { eff_to; eff_from }
  | _ -> fail (Printf.sprintf "malformed effect %S (expected tgt<-src)" s)

let parse_line lineno line =
  let line =
    match String.index_opt line '%' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else begin
    let fail msg = raise (Bad_rule (lineno, msg)) in
    match String.index_opt line ':' with
    | None -> fail "expected ':' between signature and effects"
    | Some i ->
        let head = String.trim (String.sub line 0 i) in
        let tail = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        let cls, mname =
          match String.rindex_opt head ' ' with
          | Some j ->
              ( String.trim (String.sub head 0 j),
                String.sub head (j + 1) (String.length head - j - 1) )
          | None -> fail "expected '<class> <method>'"
        in
        let effects =
          if tail = "" then []
          else
            String.split_on_char ',' tail |> List.map (parse_effect lineno)
        in
        Some (cls, mname, effects)
  end

(** [parse_string src] parses a rules file into bindings. *)
let parse_string src =
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> parse_line (i + 1) l)
  |> List.filter_map Fun.id

(** [of_string src] parses and indexes a rules file. *)
let of_string src = create (parse_string src)

(* ------------------------------------------------------------------ *)
(* Default rules                                                       *)
(* ------------------------------------------------------------------ *)

(** The default library model, in the textual format.  Mirrors
    FlowDroid's predefined rules for collection classes, string
    buffers "and similar commonly used data structures, e.g.,
    specifying that adding a tainted element to a set taints the
    entire set". *)
let default_wrapper_config =
  {|% ---- strings ----------------------------------------------------------
java.lang.String <init> : recv<-args
java.lang.String concat : ret<-recv, ret<-args
java.lang.String substring : ret<-recv
java.lang.String toLowerCase : ret<-recv
java.lang.String toUpperCase : ret<-recv
java.lang.String trim : ret<-recv
java.lang.String toString : ret<-recv
java.lang.String getBytes : ret<-recv
java.lang.String toCharArray : ret<-recv
java.lang.String charAt : ret<-recv
java.lang.String split : ret<-recv
java.lang.String intern : ret<-recv
java.lang.String valueOf : ret<-args
java.lang.String format : ret<-args
java.lang.String equals :
java.lang.String length :
java.lang.String isEmpty :
java.lang.String startsWith :
java.lang.String indexOf :
java.lang.Object toString : ret<-recv
java.lang.Object hashCode :
java.lang.Object equals :
% ---- string builders ---------------------------------------------------
java.lang.StringBuilder <init> : recv<-args
java.lang.StringBuilder append : recv<-args, ret<-recv, ret<-args
java.lang.StringBuilder insert : recv<-args, ret<-recv, ret<-args
java.lang.StringBuilder toString : ret<-recv
java.lang.StringBuffer <init> : recv<-args
java.lang.StringBuffer append : recv<-args, ret<-recv, ret<-args
java.lang.StringBuffer insert : recv<-args, ret<-recv, ret<-args
java.lang.StringBuffer toString : ret<-recv
% ---- collections: a tainted element taints the whole container ---------
java.util.List add : recv<-args
java.util.List set : recv<-args
java.util.List get : ret<-recv
java.util.List remove : ret<-recv
java.util.List iterator : ret<-recv
java.util.List toArray : ret<-recv
java.util.Map put : recv<-args
java.util.Map get : ret<-recv
java.util.Map remove : ret<-recv
java.util.Map keySet : ret<-recv
java.util.Map values : ret<-recv
java.util.Map entrySet : ret<-recv
java.util.Set add : recv<-args
java.util.Set iterator : ret<-recv
java.util.Set toArray : ret<-recv
java.util.Iterator next : ret<-recv
java.util.Map$Entry getKey : ret<-recv
java.util.Map$Entry getValue : ret<-recv
% ---- Android UI ---------------------------------------------------------
android.widget.TextView setText : recv<-args
android.widget.TextView getText : ret<-recv
android.widget.TextView toString : ret<-recv
android.widget.EditText setText : recv<-args
android.widget.EditText getText : ret<-recv
android.widget.EditText toString : ret<-recv
% ---- servlet sessions (RQ4 / SecuriBench) -------------------------------
javax.servlet.http.HttpSession setAttribute : recv<-args
javax.servlet.http.HttpSession getAttribute : ret<-recv
javax.servlet.http.HttpServletRequest getSession : ret<-recv
% ---- Android ICC carriers ----------------------------------------------
android.content.Intent <init> : recv<-args
android.content.Intent putExtra : recv<-args, ret<-recv
android.content.Intent putExtras : recv<-args, ret<-recv
android.os.Bundle putString : recv<-args
android.os.Bundle getString : ret<-recv
|}

(** Explicit models for common native methods (Section 5, "Native
    Calls").  [System.arraycopy]: the third argument (the destination
    array, index 2) becomes tainted if the first (source array) is. *)
let default_native_config =
  {|java.lang.System arraycopy : arg2<-arg0
java.lang.String getChars : arg2<-recv
|}

(** [default_wrappers ()] parses {!default_wrapper_config}.  The parse
    is shared: rule sets are read-only after construction, and the
    defaults are requested once per analysed app. *)
let default_wrappers =
  let memo = lazy (of_string default_wrapper_config) in
  fun () -> Lazy.force memo

(** [default_natives ()] parses {!default_native_config} (shared, see
    {!default_wrappers}). *)
let default_natives =
  let memo = lazy (of_string default_native_config) in
  fun () -> Lazy.force memo
