(** Sources and sinks: the SuSi-style textual configuration
    (Section 5: FlowDroid "is configured with sources and sinks
    inferred by our SuSi project ... The tool supports a simple textual
    file format").

    Line format ('%' comments):
    {v
    <cls: ret name(params)> -> _SOURCE_ {CATEGORY}
    <cls: ret name(params)> paramN -> _SOURCE_ {CATEGORY}
    <cls: ret name(params)> -> _SINK_ {CATEGORY}
    v}
    Matching is by class and method name (see DESIGN.md); parameter and
    return types inside the signature are accepted and ignored. *)

type category =
  | Imei
  | Location
  | Password
  | Sms
  | Log
  | Network
  | Prefs
  | Intent_data  (** inter-component communication modelled as src/sink *)
  | File
  | Contact
  | Generic

val string_of_category : category -> string
val category_of_string : string -> category

type def =
  | Return_source of { cls : string; mname : string; cat : category }
  | Param_source of { cls : string; mname : string; param : int; cat : category }
  | Sink of { cls : string; mname : string; cat : category }

type t

val create : def list -> t

val is_return_source : t -> cls:string -> mname:string -> category option
val param_source : t -> cls:string -> mname:string -> (int list * category) option
val is_sink : t -> cls:string -> mname:string -> category option

val digest : t -> string
(** stable MD5 hex of a canonical, sorted rendering of the
    source/sink lists — part of the persistent summary store's
    analysis-config key *)

exception Bad_line of int * string

val parse_line : int -> string -> def option
val parse_string : string -> def list
(** @raise Bad_line with the 1-based line number on malformed lines *)

val of_string : string -> t

val default_config : string
(** the default Android configuration, in the textual format *)

val default : unit -> t
