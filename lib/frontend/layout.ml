(** Layout XML parsing.

    Layout resources matter to the taint analysis for two reasons the
    paper highlights:

    - callbacks can be declared declaratively ([android:onClick]), so
      the code alone does not reveal all handlers (Listing 1's
      [sendMessage]), and
    - password fields ([android:inputType="textPassword"]) are
      *sources* whose sensitivity is invisible in code: only the
      layout knows that the view returned by [findViewById(R.id.pwd)]
      holds a password.

    Resource identifiers: aapt assigns dense integer ids; we mirror
    that by assigning ids deterministically in declaration order
    starting from [id_base] (per app), so benchmark code can reference
    controls through the same integers the parser derives. *)

module X = Fd_xml.Xml

type control = {
  ctl_id : int;  (** the generated [R.id.*] integer *)
  ctl_name : string;  (** the symbolic id, e.g. ["pwdString"] *)
  ctl_class : string;  (** widget class, e.g. ["android.widget.EditText"] *)
  ctl_layout : string;  (** layout file the control belongs to *)
  ctl_on_click : string option;  (** declaratively bound handler method *)
  ctl_password : bool;  (** input type marks the field sensitive *)
}

type t = {
  layouts : (string * int) list;  (** layout name -> R.layout id *)
  controls : control list;
}

(** Base values mirror aapt's resource-id numbering scheme. *)
let id_base = 0x7f080000

let layout_id_base = 0x7f030000

let password_input_types =
  [ "textPassword"; "textVisiblePassword"; "numberPassword"; "textWebPassword" ]

let strip_id_ref s =
  (* android:id="@+id/name" or "@id/name" *)
  let drop_prefix p s =
    let n = String.length p in
    if String.length s >= n && String.sub s 0 n = p then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match drop_prefix "@+id/" s with
  | Some r -> Some r
  | None -> drop_prefix "@id/" s

let widget_class tag =
  if String.contains tag '.' then tag
  else
    let known =
      List.map fst Framework.widget_hierarchy
      |> List.filter_map (fun fq ->
             match String.rindex_opt fq '.' with
             | Some i ->
                 Some (String.sub fq (i + 1) (String.length fq - i - 1), fq)
             | None -> None)
    in
    match List.assoc_opt tag known with
    | Some fq -> fq
    | None -> "android.view.View"

let is_password e =
  match X.attr e "android:inputType" with
  | Some it ->
      (* inputType can be a |-separated union *)
      List.exists
        (fun part -> List.mem (String.trim part) password_input_types)
        (String.split_on_char '|' it)
  | None -> false

(** [parse named_sources] parses a list of [(layout_name, xml_source)]
    pairs, assigning resource ids in declaration order across all
    layouts (stable for a fixed input order). *)
let parse named_sources =
  let next_id = ref id_base in
  let next_layout = ref layout_id_base in
  let controls = ref [] in
  let layouts = ref [] in
  let rec walk layout_name e =
    (match X.attr e "android:id" with
    | Some raw -> (
        match strip_id_ref raw with
        | Some name ->
            let id = !next_id in
            incr next_id;
            controls :=
              {
                ctl_id = id;
                ctl_name = name;
                ctl_class = widget_class (X.tag e);
                ctl_layout = layout_name;
                ctl_on_click = X.attr e "android:onClick";
                ctl_password = is_password e;
              }
              :: !controls
        | None -> ())
    | None ->
        (* a control can declare onClick without an id *)
        (match X.attr e "android:onClick" with
        | Some _ ->
            let id = !next_id in
            incr next_id;
            controls :=
              {
                ctl_id = id;
                ctl_name = Printf.sprintf "anon%d" id;
                ctl_class = widget_class (X.tag e);
                ctl_layout = layout_name;
                ctl_on_click = X.attr e "android:onClick";
                ctl_password = is_password e;
              }
              :: !controls
        | None -> ()));
    List.iter (walk layout_name) (X.children e)
  in
  List.iter
    (fun (name, src) ->
      let root = X.parse_string src in
      let lid = !next_layout in
      incr next_layout;
      layouts := (name, lid) :: !layouts;
      walk name root)
    named_sources;
  { layouts = List.rev !layouts; controls = List.rev !controls }

(** [control_by_id t id] finds the control carrying resource id [id]. *)
let control_by_id t id = List.find_opt (fun c -> c.ctl_id = id) t.controls

(** [control_by_name t name] finds a control by symbolic id. *)
let control_by_name t name =
  List.find_opt (fun c -> c.ctl_name = name) t.controls

(** [res_id t name] is the generated integer for symbolic id [name].
    @raise Not_found when no control declares it. *)
let res_id t name =
  match control_by_name t name with
  | Some c -> c.ctl_id
  | None -> raise Not_found

(** [layout_id t name] is the generated [R.layout.*] integer, or
    [None] when no layout [name] was parsed.  Returning an option (and
    never raising [Not_found]) lets lenient callers degrade an unknown
    layout reference to a diag instead of an escaping exception. *)
let layout_id t name = List.assoc_opt name t.layouts

(** [controls_in t layout] is the controls declared in [layout]. *)
let controls_in t layout =
  List.filter (fun c -> c.ctl_layout = layout) t.controls

(** [xml_callbacks t layout] is the declaratively declared onClick
    handler names in [layout]. *)
let xml_callbacks t layout =
  List.filter_map (fun c -> c.ctl_on_click) (controls_in t layout)
