(** Sources and sinks.

    FlowDroid is configured with externally defined source/sink lists
    (the SuSi project's output, Section 5).  This module implements the
    same idea: a textual configuration format, a parser for it, and the
    default Android list used throughout the benchmarks.

    Three kinds of sources exist:
    - *return sources*: calling the method taints its return value
      (e.g. [TelephonyManager.getDeviceId()]);
    - *parameter sources*: the framework passes sensitive data into a
      callback's parameter (e.g. [onLocationChanged(Location)]);
    - *UI sources*: values obtained from sensitive layout controls —
      these are not listed here but detected via the layout model (see
      {!Layout} and the engine's [findViewById] handling).

    Sinks are methods whose arguments (or receiver) must not receive
    tainted data. *)

type category =
  | Imei
  | Location
  | Password
  | Sms
  | Log
  | Network
  | Prefs
  | Intent_data  (** inter-component communication modelled as src/sink *)
  | File
  | Contact
  | Generic

let string_of_category = function
  | Imei -> "IMEI"
  | Location -> "LOCATION"
  | Password -> "PASSWORD"
  | Sms -> "SMS"
  | Log -> "LOG"
  | Network -> "NETWORK"
  | Prefs -> "PREFS"
  | Intent_data -> "INTENT"
  | File -> "FILE"
  | Contact -> "CONTACT"
  | Generic -> "GENERIC"

let category_of_string = function
  | "IMEI" -> Imei
  | "LOCATION" -> Location
  | "PASSWORD" -> Password
  | "SMS" -> Sms
  | "LOG" -> Log
  | "NETWORK" -> Network
  | "PREFS" -> Prefs
  | "INTENT" -> Intent_data
  | "FILE" -> File
  | "CONTACT" -> Contact
  | _ -> Generic

type def =
  | Return_source of { cls : string; mname : string; cat : category }
      (** the return value of [cls#mname] is a source *)
  | Param_source of { cls : string; mname : string; param : int; cat : category }
      (** parameter [param] of the callback [cls#mname] is tainted when
          the framework invokes it *)
  | Sink of { cls : string; mname : string; cat : category }
      (** any tainted argument flowing into [cls#mname] is a leak *)

type t = {
  ret_sources : (string * string, category) Hashtbl.t;
  param_sources : (string * string, int list * category) Hashtbl.t;
  sinks : (string * string, category) Hashtbl.t;
}

let create defs =
  let t =
    {
      ret_sources = Hashtbl.create 31;
      param_sources = Hashtbl.create 7;
      sinks = Hashtbl.create 31;
    }
  in
  List.iter
    (function
      | Return_source { cls; mname; cat } ->
          Hashtbl.replace t.ret_sources (cls, mname) cat
      | Param_source { cls; mname; param; cat } ->
          let prev =
            match Hashtbl.find_opt t.param_sources (cls, mname) with
            | Some (ps, _) -> ps
            | None -> []
          in
          Hashtbl.replace t.param_sources (cls, mname) (param :: prev, cat)
      | Sink { cls; mname; cat } -> Hashtbl.replace t.sinks (cls, mname) cat)
    defs;
  t

(** [is_return_source t ~cls ~mname] checks a call target against the
    return-source list. *)
let is_return_source t ~cls ~mname = Hashtbl.find_opt t.ret_sources (cls, mname)

(** [param_source t ~cls ~mname] is the tainted parameter indices of a
    callback, with the category. *)
let param_source t ~cls ~mname = Hashtbl.find_opt t.param_sources (cls, mname)

(** [is_sink t ~cls ~mname] checks a call target against the sink
    list. *)
let is_sink t ~cls ~mname = Hashtbl.find_opt t.sinks (cls, mname)

(** [digest t] is a stable MD5 of a canonical rendering of the
    source/sink lists: sorted lines, independent of insertion order
    and hash-table layout.  The persistent summary store folds it into
    its analysis-config key. *)
let digest t =
  let lines = ref [] in
  Hashtbl.iter
    (fun (cls, mname) cat ->
      lines :=
        Printf.sprintf "ret %s %s %s" cls mname (string_of_category cat)
        :: !lines)
    t.ret_sources;
  Hashtbl.iter
    (fun (cls, mname) (params, cat) ->
      lines :=
        Printf.sprintf "param %s %s [%s] %s" cls mname
          (String.concat ";"
             (List.map string_of_int (List.sort compare params)))
          (string_of_category cat)
        :: !lines)
    t.param_sources;
  Hashtbl.iter
    (fun (cls, mname) cat ->
      lines :=
        Printf.sprintf "sink %s %s %s" cls mname (string_of_category cat)
        :: !lines)
    t.sinks;
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare !lines)))

(* ------------------------------------------------------------------ *)
(* Textual format                                                      *)
(* ------------------------------------------------------------------ *)

exception Bad_line of int * string

(* A line is one of (whitespace-insensitive; '%' starts a comment):
     <cls: ret mname(params)> -> _SOURCE_ {CAT}
     <cls: ret mname(params)> paramN -> _SOURCE_ {CAT}
     <cls: ret mname(params)> -> _SINK_ {CAT}
   The return and parameter types inside the signature are accepted and
   ignored: matching is by class and method name, as documented in
   DESIGN.md. *)
let parse_line lineno line =
  let line =
    match String.index_opt line '%' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else begin
    let fail msg = raise (Bad_line (lineno, msg)) in
    (* extract <...> *)
    if line.[0] <> '<' then fail "expected a <signature>";
    let close =
      match String.index_opt line '>' with
      | Some i -> i
      | None -> fail "unterminated <signature>"
    in
    let sig_ = String.sub line 1 (close - 1) in
    let rest = String.trim (String.sub line (close + 1) (String.length line - close - 1)) in
    (* signature: cls: ret mname(...) *)
    let cls, after_cls =
      match String.index_opt sig_ ':' with
      | Some i ->
          ( String.trim (String.sub sig_ 0 i),
            String.trim (String.sub sig_ (i + 1) (String.length sig_ - i - 1)) )
      | None -> fail "signature lacks ':'"
    in
    let before_paren =
      match String.index_opt after_cls '(' with
      | Some i -> String.trim (String.sub after_cls 0 i)
      | None -> fail "signature lacks '('"
    in
    let mname =
      match String.rindex_opt before_paren ' ' with
      | Some i ->
          String.sub before_paren (i + 1) (String.length before_paren - i - 1)
      | None -> before_paren
    in
    (* rest: [paramN] -> _SOURCE_|_SINK_ [{CAT}] *)
    let param, rest =
      if String.length rest > 5 && String.sub rest 0 5 = "param" then begin
        match String.index_opt rest ' ' with
        | Some i ->
            let n =
              try int_of_string (String.sub rest 5 (i - 5))
              with _ -> fail "bad param index"
            in
            (Some n, String.trim (String.sub rest i (String.length rest - i)))
        | None -> fail "incomplete param-source line"
      end
      else (None, rest)
    in
    let rest =
      if String.length rest >= 2 && String.sub rest 0 2 = "->" then
        String.trim (String.sub rest 2 (String.length rest - 2))
      else fail "expected '->'"
    in
    let kind, rest =
      if String.length rest >= 9 && String.sub rest 0 9 = "_SOURCE_ " then
        (`Source, String.trim (String.sub rest 9 (String.length rest - 9)))
      else if rest = "_SOURCE_" then (`Source, "")
      else if String.length rest >= 7 && String.sub rest 0 7 = "_SINK_ " then
        (`Sink, String.trim (String.sub rest 7 (String.length rest - 7)))
      else if rest = "_SINK_" then (`Sink, "")
      else fail "expected _SOURCE_ or _SINK_"
    in
    let cat =
      let r = String.trim rest in
      if r = "" then Generic
      else if r.[0] = '{' && r.[String.length r - 1] = '}' then
        category_of_string (String.trim (String.sub r 1 (String.length r - 2)))
      else fail "expected {CATEGORY}"
    in
    match (kind, param) with
    | `Source, None -> Some (Return_source { cls; mname; cat })
    | `Source, Some p -> Some (Param_source { cls; mname; param = p; cat })
    | `Sink, None -> Some (Sink { cls; mname; cat })
    | `Sink, Some _ -> fail "parameter annotations are only valid on sources"
  end

(** [parse_string src] parses a whole configuration file.
    @raise Bad_line with the 1-based line number on malformed lines. *)
let parse_string src =
  String.split_on_char '\n' src
  |> List.mapi (fun i l -> parse_line (i + 1) l)
  |> List.filter_map Fun.id

(** [of_string src] is [create (parse_string src)]. *)
let of_string src = create (parse_string src)

(* ------------------------------------------------------------------ *)
(* Default Android configuration                                       *)
(* ------------------------------------------------------------------ *)

(** The default source/sink configuration, in the textual format (so
    the format itself is exercised on every analysis run). *)
let default_config =
  {|% --- Sources: device identifiers -------------------------------------
<android.telephony.TelephonyManager: java.lang.String getDeviceId()> -> _SOURCE_ {IMEI}
<android.telephony.TelephonyManager: java.lang.String getSubscriberId()> -> _SOURCE_ {IMEI}
<android.telephony.TelephonyManager: java.lang.String getSimSerialNumber()> -> _SOURCE_ {IMEI}
<android.telephony.TelephonyManager: java.lang.String getLine1Number()> -> _SOURCE_ {IMEI}
% --- Sources: location ------------------------------------------------
<android.location.LocationManager: android.location.Location getLastKnownLocation(java.lang.String)> -> _SOURCE_ {LOCATION}
% NB: Location.getLatitude/getLongitude are deliberately NOT separate
% sources: location objects reach the app either from
% getLastKnownLocation or as an onLocationChanged parameter (both
% modelled below), and the accessors then propagate the taint through
% the default library model.  Listing them too would double-count every
% location leak.
% --- Sources: callback parameters -------------------------------------
<android.location.LocationListener: void onLocationChanged(android.location.Location)> param0 -> _SOURCE_ {LOCATION}
<android.content.BroadcastReceiver: void onReceive(android.content.Context,android.content.Intent)> param1 -> _SOURCE_ {INTENT}
% --- Sources: inter-component communication ---------------------------
<android.content.Intent: java.lang.String getStringExtra(java.lang.String)> -> _SOURCE_ {INTENT}
<android.content.Intent: android.os.Bundle getExtras()> -> _SOURCE_ {INTENT}
<android.os.Bundle: java.lang.String getString(java.lang.String)> -> _SOURCE_ {INTENT}
% --- Sources: accounts / contacts -------------------------------------
<android.accounts.AccountManager: java.lang.String getPassword(android.accounts.Account)> -> _SOURCE_ {PASSWORD}
<android.provider.ContactsContract: java.lang.Object query(java.lang.Object)> -> _SOURCE_ {CONTACT}
% --- Sinks: SMS --------------------------------------------------------
<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,android.app.PendingIntent,android.app.PendingIntent)> -> _SINK_ {SMS}
<android.telephony.SmsManager: void sendDataMessage(java.lang.String,java.lang.String,short,byte[],android.app.PendingIntent,android.app.PendingIntent)> -> _SINK_ {SMS}
% --- Sinks: logging ----------------------------------------------------
<android.util.Log: int d(java.lang.String,java.lang.String)> -> _SINK_ {LOG}
<android.util.Log: int e(java.lang.String,java.lang.String)> -> _SINK_ {LOG}
<android.util.Log: int i(java.lang.String,java.lang.String)> -> _SINK_ {LOG}
<android.util.Log: int v(java.lang.String,java.lang.String)> -> _SINK_ {LOG}
<android.util.Log: int w(java.lang.String,java.lang.String)> -> _SINK_ {LOG}
% --- Sinks: network -----------------------------------------------------
<java.io.OutputStream: void write(byte[])> -> _SINK_ {NETWORK}
<java.net.URL: java.net.URLConnection openConnection()> -> _SINK_ {NETWORK}
<java.net.HttpURLConnection: void sendRequest(java.lang.String)> -> _SINK_ {NETWORK}
<org.apache.http.client.HttpClient: org.apache.http.HttpResponse execute(org.apache.http.client.methods.HttpUriRequest)> -> _SINK_ {NETWORK}
% --- Sinks: preferences and files ---------------------------------------
<android.content.SharedPreferences$Editor: android.content.SharedPreferences$Editor putString(java.lang.String,java.lang.String)> -> _SINK_ {PREFS}
<java.io.FileOutputStream: void write(byte[])> -> _SINK_ {FILE}
% --- Sinks: inter-component communication -------------------------------
<android.content.Context: void sendBroadcast(android.content.Intent)> -> _SINK_ {INTENT}
<android.content.ContextWrapper: void sendBroadcast(android.content.Intent)> -> _SINK_ {INTENT}
<android.app.Activity: void startActivity(android.content.Intent)> -> _SINK_ {INTENT}
% NB: Intent.putExtra and Activity.setResult are deliberately NOT sinks:
% putExtra taints the intent object (taint-wrapper rule) and only the
% actual *sending* of an intent is a sink.  A value stored via setResult
% and handed back by the framework is therefore missed -- exactly the
% behaviour the paper reports for DroidBench's IntentSink1.
|}

(** [default ()] is the parsed default configuration.  The parse is
    shared: definitions are read-only after construction and requested
    once per analysed app. *)
let default =
  let memo = lazy (of_string default_config) in
  fun () -> Lazy.force memo
