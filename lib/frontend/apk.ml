(** The APK model.

    A real APK is a zip archive holding [AndroidManifest.xml], layout
    resources and Dalvik bytecode; FlowDroid unzips it and parses each
    artefact (Figure 4).  Our model is the same bundle with µJimple in
    place of Dalvik: a manifest XML document, named layout XML
    documents, and classes (either already-built IR or textual µJimple
    to be parsed).  [load] runs the whole frontend: XML parsing,
    resource-id assignment, scene construction with the framework
    skeleton installed. *)

open Fd_ir
module M = Fd_obs.Metrics

let m_units = M.counter "frontend.jimple_units_parsed"
let m_skipped = M.counter "frontend.units_skipped"
let m_lint = M.counter "frontend.lint_issues"
let g_classes = M.gauge "frontend.classes"
let g_layouts = M.gauge "frontend.layouts"
let g_components = M.gauge "frontend.components"

type mode = [ `Strict | `Lenient ]

type t = {
  apk_name : string;
  apk_manifest : string;  (** manifest XML source *)
  apk_layouts : (string * string) list;  (** (layout name, XML source) *)
  apk_classes : Jclass.t list;
  apk_diags : Fd_resilience.Diag.t list;
      (** diagnostics collected while bundling (lenient parse skips) *)
}

type loaded = {
  name : string;
  manifest : Manifest.t;
  layout : Layout.t;
  scene : Scene.t;
  components : Manifest.component list;  (** enabled components only *)
  diags : Fd_resilience.Diag.t list;
      (** bundle diagnostics plus lenient-load skips; [[]] in strict
          mode *)
}

exception Load_error of string

(** [make name ~manifest ?layouts classes] bundles an in-memory app. *)
let make name ~manifest ?(layouts = []) ?(diags = []) classes =
  { apk_name = name; apk_manifest = manifest; apk_layouts = layouts;
    apk_classes = classes; apk_diags = diags }

(** [make_text name ~manifest ?layouts sources] bundles an app whose
    code is given as textual µJimple compilation units.  In lenient
    mode an unparsable unit is dropped with a diagnostic instead of
    aborting the bundle. *)
let make_text ?(mode = `Strict) name ~manifest ?(layouts = []) ?(diags = [])
    sources =
  let collected = ref [] in
  let failed ~line kind msg =
    match mode with
    | `Strict ->
        raise
          (Load_error
             (Printf.sprintf "%s: %s error at line %d: %s" name kind line msg))
    | `Lenient ->
        M.incr m_skipped;
        collected :=
          Fd_resilience.Diag.make ~line ~file:name
            (Printf.sprintf "skipped unit: %s error: %s" kind msg)
          :: !collected;
        []
  in
  let lint issues =
    match mode with
    | `Strict -> ()
    | `Lenient ->
        List.iter
          (fun (i : Lint.issue) ->
            M.incr m_lint;
            collected :=
              Fd_resilience.Diag.make ?line:i.Lint.li_line ~file:name
                ("lint: " ^ Lint.string_of_issue i)
              :: !collected)
          issues
  in
  let classes =
    List.concat_map
      (fun src ->
        M.incr m_units;
        if mode = `Lenient then lint (Lint.lint_source ~file:name src);
        match Parser.parse_string src with
        | cs -> cs
        | exception Parser.Parse_error (line, msg) -> failed ~line "parse" msg
        | exception Lexer.Lex_error (line, msg) -> failed ~line "lex" msg)
      sources
  in
  if mode = `Lenient then lint (Lint.lint_classes classes);
  make name ~manifest ~layouts ~diags:(diags @ List.rev !collected) classes

(** [of_dir dir] reads an app from disk: [AndroidManifest.xml], every
    [res/layout/*.xml] (alphabetical), and every [*.jimple] file
    (recursively, alphabetical).  All I/O failures surface as
    {!Load_error} carrying the offending path — never a bare
    [Sys_error].  In lenient mode an unreadable file is skipped with a
    diagnostic (the manifest stays mandatory). *)
let of_dir ?(mode = `Strict) dir =
  let io_diags = ref [] in
  let read_file path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      raise (Load_error (Printf.sprintf "%s: I/O error: %s" path msg))
  in
  let read_opt path =
    match read_file path with
    | s -> Some s
    | exception Load_error msg when mode = `Lenient ->
        io_diags := Fd_resilience.Diag.make ~file:path msg :: !io_diags;
        None
  in
  try
    let manifest_path = Filename.concat dir "AndroidManifest.xml" in
    if not (Sys.file_exists manifest_path) then
      raise (Load_error (Printf.sprintf "%s: no AndroidManifest.xml" dir));
    let manifest = read_file manifest_path in
    let layout_dir = Filename.concat (Filename.concat dir "res") "layout" in
    let layouts =
      if Sys.file_exists layout_dir && Sys.is_directory layout_dir then
        Sys.readdir layout_dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".xml")
        |> List.sort compare
        |> List.filter_map (fun f ->
               match read_opt (Filename.concat layout_dir f) with
               | Some src -> Some (Filename.remove_extension f, src)
               | None -> None)
      else []
    in
    let rec jimple_files d =
      Sys.readdir d |> Array.to_list |> List.sort compare
      |> List.concat_map (fun f ->
             let p = Filename.concat d f in
             if Sys.is_directory p then jimple_files p
             else if Filename.check_suffix f ".jimple" then [ p ]
             else [])
    in
    let sources = List.filter_map read_opt (jimple_files dir) in
    make_text ~mode (Filename.basename dir) ~manifest ~layouts
      ~diags:(List.rev !io_diags) sources
  with Sys_error msg ->
    raise (Load_error (Printf.sprintf "%s: I/O error: %s" dir msg))

(** [load apk] runs the frontend: parses the manifest and layouts,
    builds a scene containing the framework skeleton plus the app's
    classes, and checks that every enabled manifest component resolves
    to a class with the right framework superclass.

    In the default strict mode any inconsistency raises {!Load_error}.
    In lenient mode the offending artefact — a malformed manifest
    component, an unparsable layout, a duplicate class, a component
    whose class is missing or has the wrong superclass — is skipped
    with a structured diagnostic and the rest of the app is loaded.
    @raise Load_error on inconsistencies (strict mode), or when even
    lenient loading cannot recover (e.g. a layout batch failure). *)
(* Ok () / Error msg, without the apk-name prefix *)
let component_check scene (c : Manifest.component) =
  match Scene.find_class scene c.Manifest.comp_class with
  | None ->
      Error
        (Printf.sprintf "manifest declares missing class %s"
           c.Manifest.comp_class)
  | Some _ -> (
      match Framework.component_kind_of scene c.Manifest.comp_class with
      | Some k when k = c.Manifest.comp_kind -> Ok ()
      | Some k ->
          Error
            (Printf.sprintf "%s declared as %s but extends the %s base class"
               c.Manifest.comp_class
               (Framework.string_of_component_kind c.Manifest.comp_kind)
               (Framework.string_of_component_kind k))
      | None ->
          Error
            (Printf.sprintf
               "%s declared as %s but extends no component base class"
               c.Manifest.comp_class
               (Framework.string_of_component_kind c.Manifest.comp_kind)))

let parse_manifest ~mode ~name ~diag src =
  match mode with
  | `Strict -> (
      try Manifest.parse src with
      | Manifest.Malformed msg ->
          raise (Load_error (Printf.sprintf "%s: bad manifest: %s" name msg))
      | Fd_xml.Xml.Parse_error (pos, msg) ->
          raise
            (Load_error
               (Printf.sprintf "%s: manifest XML error at offset %d: %s" name
                  pos msg)))
  | `Lenient ->
      let m, skipped = Manifest.parse_lenient src in
      List.iter
        (fun msg -> diag ~file:(name ^ "/AndroidManifest.xml") msg)
        skipped;
      m

let load ?(mode = `Strict) ?template apk =
  Fd_obs.Trace.with_span "frontend.load" @@ fun () ->
  let diags = ref [] in
  let diag ?line ~file msg =
    M.incr m_skipped;
    diags := Fd_resilience.Diag.make ?line ~file msg :: !diags
  in
  let manifest =
    parse_manifest ~mode ~name:apk.apk_name ~diag:(fun ~file msg -> diag ~file msg)
      apk.apk_manifest
  in
  let layout_srcs =
    match mode with
    | `Strict -> apk.apk_layouts
    | `Lenient ->
        (* pre-validate each layout so one bad file only drops itself *)
        List.filter
          (fun (lname, src) ->
            match Fd_xml.Xml.parse_string src with
            | _ -> true
            | exception Fd_xml.Xml.Parse_error (pos, msg) ->
                diag
                  ~file:(apk.apk_name ^ "/res/layout/" ^ lname ^ ".xml")
                  (Printf.sprintf "skipped layout: XML error at offset %d: %s"
                     pos msg);
                false)
          apk.apk_layouts
  in
  let layout =
    try Layout.parse layout_srcs
    with Fd_xml.Xml.Parse_error (pos, msg) ->
      raise
        (Load_error
           (Printf.sprintf "%s: layout XML error at offset %d: %s" apk.apk_name
              pos msg))
  in
  (* [template] lets a long-lived host (the serve daemon's per-rule-set
     template cache) supply its own pre-warmed skeleton scene; the copy
     keeps the template immutable, so the result is indistinguishable
     from a [Framework.fresh_scene] clone *)
  let scene =
    match template with
    | Some t -> Scene.copy t
    | None -> Framework.fresh_scene ()
  in
  List.iter
    (fun c ->
      try Scene.add_class scene c
      with Scene.Duplicate_class n -> (
        match mode with
        | `Strict ->
            raise
              (Load_error
                 (Printf.sprintf "%s: duplicate class %s" apk.apk_name n))
        | `Lenient ->
            diag ~file:apk.apk_name
              (Printf.sprintf "skipped duplicate class %s" n)))
    apk.apk_classes;
  let components =
    List.filter
      (fun (c : Manifest.component) ->
        match component_check scene c with
        | Ok () -> true
        | Error msg -> (
            match mode with
            | `Strict -> raise (Load_error (apk.apk_name ^ ": " ^ msg))
            | `Lenient ->
                diag ~file:(apk.apk_name ^ "/AndroidManifest.xml")
                  ("skipped component: " ^ msg);
                false))
      (Manifest.enabled_components manifest)
  in
  M.set_int g_classes (List.length apk.apk_classes);
  M.set_int g_layouts (List.length apk.apk_layouts);
  M.set_int g_components (List.length components);
  { name = apk.apk_name; manifest; layout; scene; components;
    diags = apk.apk_diags @ List.rev !diags }

(* ------------------------------------------------------------------ *)
(* Merged multi-app Scenes (inter-app / collusion analysis)            *)
(* ------------------------------------------------------------------ *)

type merged = {
  m_loaded : loaded;
      (** one Scene holding every app's classes, one component list
          spanning all apps (the co-installed-device model) *)
  m_apps : (string * Manifest.t) list;  (** per-app manifests, load order *)
  m_app_of : string -> string option;
      (** which app contributed a class (for the exported-across-apps
          resolution gate) *)
}

(** [load_merged apks] loads several apps into one merged Scene — the
    co-installed-device model for inter-app (collusion) analysis.  The
    merged [loaded] carries a synthetic manifest concatenating every
    app's components; the per-app manifests survive in [m_apps] so the
    ICC resolver can gate cross-app links on exported components.
    Class names must be disjoint across apps (strict mode raises,
    lenient skips).  Layout names clashing across apps keep the first
    app's file. *)
let load_merged ?(mode = `Strict) ?template apks =
  if apks = [] then raise (Load_error "load_merged: empty app list");
  Fd_obs.Trace.with_span "frontend.load_merged" @@ fun () ->
  let diags = ref [] in
  let diag ?line ~file msg =
    M.incr m_skipped;
    diags := Fd_resilience.Diag.make ?line ~file msg :: !diags
  in
  let parsed =
    List.map
      (fun apk ->
        ( apk,
          parse_manifest ~mode ~name:apk.apk_name
            ~diag:(fun ~file msg -> diag ~file msg)
            apk.apk_manifest ))
      apks
  in
  let scene =
    match template with
    | Some t -> Scene.copy t
    | None -> Framework.fresh_scene ()
  in
  let class_app : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ((apk : t), _) ->
      List.iter
        (fun (c : Jclass.t) ->
          match Scene.add_class scene c with
          | () -> Hashtbl.replace class_app c.Jclass.c_name apk.apk_name
          | exception Scene.Duplicate_class n -> (
              match mode with
              | `Strict ->
                  raise
                    (Load_error
                       (Printf.sprintf "%s: duplicate class %s across apps"
                          apk.apk_name n))
              | `Lenient ->
                  diag ~file:apk.apk_name
                    (Printf.sprintf "skipped duplicate class %s" n)))
        apk.apk_classes)
    parsed;
  let components =
    List.concat_map
      (fun ((apk : t), m) ->
        List.filter
          (fun (c : Manifest.component) ->
            match component_check scene c with
            | Ok () -> true
            | Error msg -> (
                match mode with
                | `Strict -> raise (Load_error (apk.apk_name ^ ": " ^ msg))
                | `Lenient ->
                    diag ~file:(apk.apk_name ^ "/AndroidManifest.xml")
                      ("skipped component: " ^ msg);
                    false))
          (Manifest.enabled_components m))
      parsed
  in
  let layout_srcs =
    List.fold_left
      (fun acc ((apk : t), _) ->
        List.fold_left
          (fun acc (lname, src) ->
            if List.mem_assoc lname acc then begin
              diag ~file:(apk.apk_name ^ "/res/layout/" ^ lname ^ ".xml")
                "layout name clashes across apps; first app wins";
              acc
            end
            else acc @ [ (lname, src) ])
          acc apk.apk_layouts)
      [] parsed
  in
  let name = String.concat "+" (List.map (fun a -> a.apk_name) apks) in
  let layout =
    try Layout.parse layout_srcs
    with Fd_xml.Xml.Parse_error (pos, msg) ->
      raise
        (Load_error
           (Printf.sprintf "%s: layout XML error at offset %d: %s" name pos msg))
  in
  let manifest =
    {
      Manifest.package = "";
      Manifest.components =
        List.concat_map (fun (_, (m : Manifest.t)) -> m.Manifest.components)
          parsed;
      Manifest.permissions =
        List.sort_uniq compare
          (List.concat_map
             (fun (_, (m : Manifest.t)) -> m.Manifest.permissions)
             parsed);
    }
  in
  M.set_int g_classes
    (List.fold_left (fun n (a : t) -> n + List.length a.apk_classes) 0 apks);
  M.set_int g_layouts (List.length layout_srcs);
  M.set_int g_components (List.length components);
  {
    m_loaded =
      {
        name;
        manifest;
        layout;
        scene;
        components;
        diags =
          List.concat_map (fun (a : t) -> a.apk_diags) apks @ List.rev !diags;
      };
    m_apps = List.map (fun ((a : t), m) -> (a.apk_name, m)) parsed;
    m_app_of = (fun cls -> Hashtbl.find_opt class_app cls);
  }

(** [res_id loaded name] is the integer resource id of the layout
    control with symbolic id [name].
    @raise Load_error when no layout declares it. *)
let res_id loaded name =
  try Layout.res_id loaded.layout name
  with Not_found ->
    raise (Load_error (Printf.sprintf "%s: unknown resource id %S" loaded.name name))

(** [layout_id loaded name] is the [R.layout] integer for a layout
    file.
    @raise Load_error when the layout is unknown. *)
let layout_id loaded name =
  match Layout.layout_id loaded.layout name with
  | Some id -> id
  | None ->
      raise (Load_error (Printf.sprintf "%s: unknown layout %S" loaded.name name))

(* ------------------------------------------------------------------ *)
(* Manifest-construction helpers for benchmark apps                    *)
(* ------------------------------------------------------------------ *)

(** [simple_manifest ~package comps] renders a minimal manifest
    declaring [comps] as [(kind, class, extra-attrs)] with the first
    activity as the launcher. *)
let simple_manifest ~package comps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<manifest package=\"%s\">\n  <application>\n"
       package);
  let first_activity = ref true in
  List.iter
    (fun (kind, cls, attrs) ->
      let tag = Framework.string_of_component_kind kind in
      let attrs_s =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k v) attrs)
      in
      if kind = Framework.Activity && !first_activity then begin
        first_activity := false;
        Buffer.add_string buf
          (Printf.sprintf
             "    <%s android:name=\"%s\"%s>\n\
             \      <intent-filter>\n\
             \        <action android:name=\"android.intent.action.MAIN\"/>\n\
             \        <category android:name=\"android.intent.category.LAUNCHER\"/>\n\
             \      </intent-filter>\n\
             \    </%s>\n"
             tag cls attrs_s tag)
      end
      else
        Buffer.add_string buf
          (Printf.sprintf "    <%s android:name=\"%s\"%s/>\n" tag cls attrs_s))
    comps;
  Buffer.add_string buf "  </application>\n</manifest>\n";
  Buffer.contents buf
