(** The APK model.

    A real APK is a zip archive holding [AndroidManifest.xml], layout
    resources and Dalvik bytecode; FlowDroid unzips it and parses each
    artefact (Figure 4).  Our model is the same bundle with µJimple in
    place of Dalvik: a manifest XML document, named layout XML
    documents, and classes (either already-built IR or textual µJimple
    to be parsed).  [load] runs the whole frontend: XML parsing,
    resource-id assignment, scene construction with the framework
    skeleton installed. *)

open Fd_ir
module M = Fd_obs.Metrics

let m_units = M.counter "frontend.jimple_units_parsed"
let g_classes = M.gauge "frontend.classes"
let g_layouts = M.gauge "frontend.layouts"
let g_components = M.gauge "frontend.components"

type t = {
  apk_name : string;
  apk_manifest : string;  (** manifest XML source *)
  apk_layouts : (string * string) list;  (** (layout name, XML source) *)
  apk_classes : Jclass.t list;
}

type loaded = {
  name : string;
  manifest : Manifest.t;
  layout : Layout.t;
  scene : Scene.t;
  components : Manifest.component list;  (** enabled components only *)
}

exception Load_error of string

(** [make name ~manifest ?layouts classes] bundles an in-memory app. *)
let make name ~manifest ?(layouts = []) classes =
  { apk_name = name; apk_manifest = manifest; apk_layouts = layouts;
    apk_classes = classes }

(** [make_text name ~manifest ?layouts sources] bundles an app whose
    code is given as textual µJimple compilation units. *)
let make_text name ~manifest ?(layouts = []) sources =
  let classes =
    List.concat_map
      (fun src ->
        M.incr m_units;
        try Parser.parse_string src with
        | Parser.Parse_error (line, msg) ->
            raise (Load_error (Printf.sprintf "%s: parse error at line %d: %s" name line msg))
        | Lexer.Lex_error (line, msg) ->
            raise (Load_error (Printf.sprintf "%s: lex error at line %d: %s" name line msg)))
      sources
  in
  make name ~manifest ~layouts classes

(** [of_dir dir] reads an app from disk: [AndroidManifest.xml], every
    [res/layout/*.xml] (alphabetical), and every [*.jimple] file
    (recursively, alphabetical). *)
let of_dir dir =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let manifest_path = Filename.concat dir "AndroidManifest.xml" in
  if not (Sys.file_exists manifest_path) then
    raise (Load_error (Printf.sprintf "%s: no AndroidManifest.xml" dir));
  let manifest = read_file manifest_path in
  let layout_dir = Filename.concat (Filename.concat dir "res") "layout" in
  let layouts =
    if Sys.file_exists layout_dir && Sys.is_directory layout_dir then
      Sys.readdir layout_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort compare
      |> List.map (fun f ->
             ( Filename.remove_extension f,
               read_file (Filename.concat layout_dir f) ))
    else []
  in
  let rec jimple_files d =
    Sys.readdir d |> Array.to_list |> List.sort compare
    |> List.concat_map (fun f ->
           let p = Filename.concat d f in
           if Sys.is_directory p then jimple_files p
           else if Filename.check_suffix f ".jimple" then [ p ]
           else [])
  in
  let sources = List.map read_file (jimple_files dir) in
  make_text (Filename.basename dir) ~manifest ~layouts sources

(** [load apk] runs the frontend: parses the manifest and layouts,
    builds a scene containing the framework skeleton plus the app's
    classes, and checks that every enabled manifest component resolves
    to a class with the right framework superclass.
    @raise Load_error on inconsistencies. *)
let load apk =
  Fd_obs.Trace.with_span "frontend.load" @@ fun () ->
  let manifest =
    try Manifest.parse apk.apk_manifest with
    | Manifest.Malformed msg ->
        raise (Load_error (Printf.sprintf "%s: bad manifest: %s" apk.apk_name msg))
    | Fd_xml.Xml.Parse_error (pos, msg) ->
        raise
          (Load_error
             (Printf.sprintf "%s: manifest XML error at offset %d: %s"
                apk.apk_name pos msg))
  in
  let layout =
    try Layout.parse apk.apk_layouts
    with Fd_xml.Xml.Parse_error (pos, msg) ->
      raise
        (Load_error
           (Printf.sprintf "%s: layout XML error at offset %d: %s" apk.apk_name
              pos msg))
  in
  let scene = Framework.fresh_scene () in
  List.iter
    (fun c ->
      try Scene.add_class scene c
      with Scene.Duplicate_class n ->
        raise (Load_error (Printf.sprintf "%s: duplicate class %s" apk.apk_name n)))
    apk.apk_classes;
  let components = Manifest.enabled_components manifest in
  List.iter
    (fun (c : Manifest.component) ->
      match Scene.find_class scene c.Manifest.comp_class with
      | None ->
          raise
            (Load_error
               (Printf.sprintf "%s: manifest declares missing class %s"
                  apk.apk_name c.Manifest.comp_class))
      | Some _ -> (
          match Framework.component_kind_of scene c.Manifest.comp_class with
          | Some k when k = c.Manifest.comp_kind -> ()
          | Some k ->
              raise
                (Load_error
                   (Printf.sprintf
                      "%s: %s declared as %s but extends the %s base class"
                      apk.apk_name c.Manifest.comp_class
                      (Framework.string_of_component_kind c.Manifest.comp_kind)
                      (Framework.string_of_component_kind k)))
          | None ->
              raise
                (Load_error
                   (Printf.sprintf
                      "%s: %s declared as %s but extends no component base \
                       class"
                      apk.apk_name c.Manifest.comp_class
                      (Framework.string_of_component_kind c.Manifest.comp_kind)))))
    components;
  M.set_int g_classes (List.length apk.apk_classes);
  M.set_int g_layouts (List.length apk.apk_layouts);
  M.set_int g_components (List.length components);
  { name = apk.apk_name; manifest; layout; scene; components }

(** [res_id loaded name] is the integer resource id of the layout
    control with symbolic id [name].
    @raise Load_error when no layout declares it. *)
let res_id loaded name =
  try Layout.res_id loaded.layout name
  with Not_found ->
    raise (Load_error (Printf.sprintf "%s: unknown resource id %S" loaded.name name))

(** [layout_id loaded name] is the [R.layout] integer for a layout
    file. *)
let layout_id loaded name =
  try Layout.layout_id loaded.layout name
  with Not_found ->
    raise (Load_error (Printf.sprintf "%s: unknown layout %S" loaded.name name))

(* ------------------------------------------------------------------ *)
(* Manifest-construction helpers for benchmark apps                    *)
(* ------------------------------------------------------------------ *)

(** [simple_manifest ~package comps] renders a minimal manifest
    declaring [comps] as [(kind, class, extra-attrs)] with the first
    activity as the launcher. *)
let simple_manifest ~package comps =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<manifest package=\"%s\">\n  <application>\n"
       package);
  let first_activity = ref true in
  List.iter
    (fun (kind, cls, attrs) ->
      let tag = Framework.string_of_component_kind kind in
      let attrs_s =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k v) attrs)
      in
      if kind = Framework.Activity && !first_activity then begin
        first_activity := false;
        Buffer.add_string buf
          (Printf.sprintf
             "    <%s android:name=\"%s\"%s>\n\
             \      <intent-filter>\n\
             \        <action android:name=\"android.intent.action.MAIN\"/>\n\
             \        <category android:name=\"android.intent.category.LAUNCHER\"/>\n\
             \      </intent-filter>\n\
             \    </%s>\n"
             tag cls attrs_s tag)
      end
      else
        Buffer.add_string buf
          (Printf.sprintf "    <%s android:name=\"%s\"%s/>\n" tag cls attrs_s))
    comps;
  Buffer.add_string buf "  </application>\n</manifest>\n";
  Buffer.contents buf
