(** AndroidManifest.xml parsing.

    The manifest declares the app's components; the analysis reads it
    to know which classes are entry-point components, whether they are
    enabled (disabled activities are filtered from the dummy main),
    and which activity is the launcher. *)

type component = {
  comp_kind : Framework.component_kind;
  comp_class : string;  (** fully-qualified class name *)
  comp_enabled : bool;
  comp_exported : bool;
  comp_actions : string list;  (** intent-filter actions *)
  comp_categories : string list;
  comp_main : bool;  (** carries a MAIN/LAUNCHER intent filter *)
}

type t = {
  package : string;
  components : component list;
  permissions : string list;  (** uses-permission entries *)
}

exception Malformed of string

val main_action : string
val launcher_category : string

val parse : string -> t
(** [parse xml_source] parses a manifest document; dot-relative
    component names are resolved against the package.
    @raise Malformed (or {!Fd_xml.Xml.Parse_error}) on bad input. *)

val parse_lenient : string -> t * string list
(** [parse_lenient xml_source] parses a manifest, skipping malformed
    components instead of raising; returns the partial manifest plus
    one message per skipped item.  An unparsable document yields an
    empty manifest and a single message.  Never raises. *)

val enabled_components : t -> component list
(** components not disabled in the manifest (only these can run) *)

val launcher : t -> component option
(** the enabled MAIN/LAUNCHER activity, if declared *)

val find : t -> string -> component option
(** the component entry for a class, if any *)
