(** AndroidManifest.xml parsing.

    The manifest declares the app's components; the analysis reads it
    to know which classes are entry-point components, whether they are
    enabled (disabled activities are filtered from the dummy main),
    and which activity is the launcher. *)

type data_spec = {
  d_scheme : string option;
  d_host : string option;
  d_mime : string option;  (** mimeType; ["image/*"] wildcards allowed *)
}

type intent_filter = {
  if_actions : string list;
  if_categories : string list;
  if_data : data_spec list;
}

type component = {
  comp_kind : Framework.component_kind;
  comp_class : string;  (** fully-qualified class name *)
  comp_enabled : bool;
  comp_exported : bool;
      (** Android 12 semantics: an explicit [android:exported]
          attribute wins; absent one, exported iff the component
          declares at least one intent filter *)
  comp_filters : intent_filter list;  (** one entry per <intent-filter> *)
  comp_actions : string list;  (** union of filter actions (legacy view) *)
  comp_categories : string list;
  comp_main : bool;  (** carries a MAIN/LAUNCHER intent filter *)
}

type t = {
  package : string;
  components : component list;
  permissions : string list;  (** uses-permission entries *)
}

exception Malformed of string

val main_action : string
val launcher_category : string

val parse : string -> t
(** [parse xml_source] parses a manifest document; dot-relative
    component names are resolved against the package.
    @raise Malformed (or {!Fd_xml.Xml.Parse_error}) on bad input. *)

val parse_lenient : string -> t * string list
(** [parse_lenient xml_source] parses a manifest, skipping malformed
    components instead of raising; returns the partial manifest plus
    one message per skipped item.  An unparsable document yields an
    empty manifest and a single message.  Never raises. *)

val enabled_components : t -> component list
(** components not disabled in the manifest (only these can run) *)

val launcher : t -> component option
(** the enabled MAIN/LAUNCHER activity, if declared *)

val find : t -> string -> component option
(** the component entry for a class, if any *)

(** An abstract intent for resolution: what the sender set (or, for
    the static resolver, what the constant analysis proved it sets). *)
type intent_desc = {
  it_class : string option;  (** explicit target component class *)
  it_action : string option;
  it_categories : string list;
  it_scheme : string option;
  it_host : string option;
  it_mime : string option;
}

val blank_intent : intent_desc
(** no target, no action, no categories, no data *)

val filter_matches : intent_filter -> intent_desc -> bool
(** Android's three intent-filter tests (action, category, data):
    - action: the filter must list the intent's action; an actionless
      intent passes any filter with at least one action;
    - category: every intent category must appear in the filter;
    - data: an intent without URI/type passes only data-less filters;
      otherwise some [<data>] spec must match every dimension the
      intent carries (mimeType supports ["type/*"] wildcards). *)

val component_receives : component -> intent_desc -> bool
(** can this component receive the intent?  Explicit class targets
    bypass the filters; implicit intents must pass one. *)

val resolve_intent : t -> intent_desc -> component list
(** the enabled components able to receive the intent, in declaration
    order *)
