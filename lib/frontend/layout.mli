(** Layout XML parsing.

    Layouts matter to the taint analysis for two reasons the paper
    highlights: callbacks can be declared declaratively
    ([android:onClick]), and password fields
    ([android:inputType="textPassword"]) are sources whose sensitivity
    is invisible in code.

    Resource identifiers mirror aapt: dense integers assigned in
    declaration order from {!id_base} / {!layout_id_base}, so
    benchmark code references controls through the same integers the
    parser derives. *)

type control = {
  ctl_id : int;  (** the generated [R.id.*] integer *)
  ctl_name : string;  (** the symbolic id, e.g. ["pwdString"] *)
  ctl_class : string;  (** widget class, e.g. ["android.widget.EditText"] *)
  ctl_layout : string;  (** layout file the control belongs to *)
  ctl_on_click : string option;  (** declaratively bound handler method *)
  ctl_password : bool;  (** the input type marks the field sensitive *)
}

type t = {
  layouts : (string * int) list;  (** layout name -> R.layout id *)
  controls : control list;
}

val id_base : int
(** 0x7f080000, aapt's id numbering base *)

val layout_id_base : int
(** 0x7f030000 *)

val parse : (string * string) list -> t
(** [parse [(name, xml); ...]] parses layout files, assigning resource
    ids in declaration order across all layouts (stable for a fixed
    input order).
    @raise Fd_xml.Xml.Parse_error on malformed XML. *)

val control_by_id : t -> int -> control option
val control_by_name : t -> string -> control option

val res_id : t -> string -> int
(** @raise Not_found when no control declares the symbolic id *)

val layout_id : t -> string -> int option
(** [None] for unknown layout names; never raises, so lenient callers
    can turn a dangling layout reference into a diag *)

val controls_in : t -> string -> control list
(** the controls declared in one layout *)

val xml_callbacks : t -> string -> string list
(** the declaratively bound onClick handler names in one layout *)
