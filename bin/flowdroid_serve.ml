(** The analysis-as-a-service daemon.

    Boots {!Fd_serve.Server} on a Unix-domain socket and runs until
    SIGTERM/SIGINT or a client [drain] verb, then drains gracefully:
    stop admitting, let queued + in-flight work finish within the
    grace period, cooperatively cancel the stragglers, reply to
    everything, exit 0.  [--stats-out] writes the final [serve.*]
    metric export (atomically) on shutdown.

    [--chaos-rate]/[--chaos-seed] arm service-level fault injection:
    worker-killing faults at request pickup (exercising supervision)
    and solver-step faults through each request's budget (exercising
    the degradation ladder). *)

open Cmdliner
module Server = Fd_serve.Server

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/flowdroid.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~doc:"Analysis worker domains.")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~doc:"Admission queue capacity; beyond it requests \
                             are rejected immediately with retry_after_ms.")

let deadline_arg =
  Arg.(
    value & opt float 30.
    & info [ "deadline-s" ] ~doc:"Default per-request wall-clock deadline.")

let max_frame_arg =
  Arg.(
    value
    & opt int Fd_serve.Protocol.default_max_frame
    & info [ "max-frame-bytes" ]
        ~doc:"Reject (but consume) request frames larger than this.")

let grace_arg =
  Arg.(
    value & opt float 5.
    & info [ "drain-grace-s" ]
        ~doc:"Drain allowance before in-flight budgets are cancelled.")

let chaos_rate_arg =
  Arg.(
    value & opt float 0.
    & info [ "chaos-rate" ]
        ~doc:"Service-level fault injection rate (0 disables).")

let chaos_seed_arg =
  Arg.(value & opt int 42 & info [ "chaos-seed" ] ~doc:"Fault-injection seed.")

let summary_store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary-store" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "FLOWDROID_SUMMARY_STORE")
        ~doc:"Reuse (and extend) the persistent cross-app summary store \
              at $(docv); replies are bit-identical with the store hot \
              or cold.")

let targeted_arg =
  Arg.(
    value & opt_all string []
    & info [ "targeted" ] ~docv:"SIG"
        ~env:(Cmd.Env.info "FLOWDROID_TARGETED")
        ~doc:"Default demand-driven targeted mode for every request: \
              only analyse flows into sinks matching $(docv) \
              (substring of \"Class.method\", supertypes included; \
              repeatable, or comma-separated in the env var).  A \
              request's own \"targeted\" field overrides this.")

let split_targeted specs =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun p ->
          let p = String.trim p in
          if p = "" then None else Some p)
        (String.split_on_char ',' s))
    specs

let stats_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-out" ] ~docv:"FILE"
        ~doc:"Write the final metrics export here on shutdown (\"-\" for \
              stdout).")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No startup banner.")

let run socket workers queue deadline max_frame grace chaos_rate chaos_seed
    summary_store targeted stats_out quiet =
  if summary_store <> None then Fd_store.Store.install ();
  let cfg =
    {
      (Server.default_config ~socket) with
      Server.sv_workers = workers;
      sv_queue_capacity = queue;
      sv_default_deadline_s = deadline;
      sv_max_frame_bytes = max_frame;
      sv_drain_grace_s = grace;
      sv_chaos_rate = chaos_rate;
      sv_chaos_seed = chaos_seed;
      sv_base_config =
        {
          Fd_core.Config.default with
          Fd_core.Config.summary_store = summary_store;
          Fd_core.Config.targeted = split_targeted targeted;
        };
    }
  in
  let server =
    try Server.start cfg
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "flowdroid_serve: cannot bind %s: %s\n%!" socket
        (Unix.error_message e);
      exit 2
  in
  if not quiet then
    Printf.printf
      "flowdroid_serve: listening on %s (%d workers, queue %d%s)\n%!" socket
      workers queue
      (if chaos_rate > 0. then Printf.sprintf ", chaos %.2f" chaos_rate else "");
  let stop_requested = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  (* park until a signal or a protocol-initiated drain *)
  while not (Atomic.get stop_requested || Server.draining server) do
    Thread.delay 0.2
  done;
  if not quiet then
    Printf.printf "flowdroid_serve: draining (queue=%d in-flight=%d)\n%!"
      (Server.queue_depth server) (Server.in_flight server);
  Server.stop server;
  (match stats_out with
  | Some path ->
      Fd_obs.Export.write_stats_json
        ~extra:[ ("binary", Fd_obs.Json.String "flowdroid_serve") ]
        ~path ()
  | None -> ());
  if not quiet then print_endline "flowdroid_serve: stopped";
  0

let cmd =
  Cmd.v
    (Cmd.info "flowdroid_serve"
       ~doc:"Fault-tolerant taint-analysis daemon over a Unix socket")
    Term.(
      const run $ socket_arg $ workers_arg $ queue_arg $ deadline_arg
      $ max_frame_arg $ grace_arg $ chaos_rate_arg $ chaos_seed_arg
      $ summary_store_arg $ targeted_arg $ stats_out_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
