(** Maintenance CLI for the persistent summary store.

    - [ls]     entry count, total bytes and a per-config breakdown
    - [verify] full checksum walk; exit 1 when any entry is damaged
    - [gc]     evict least-recently-used entries down to [--max-mb]

    The store is just files: every subcommand works on a directory
    that analyses may be writing to concurrently (entries are atomic;
    a concurrent writer can at worst re-create an entry gc just
    evicted). *)

open Cmdliner
module Store = Fd_store.Store

let store_dir =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"STORE_DIR" ~doc:"Summary-store directory.")

let human_bytes n =
  if n >= 1_048_576 then Printf.sprintf "%.1f MiB" (float_of_int n /. 1_048_576.)
  else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%d B" n

let run_ls dir =
  let entries = Store.scan dir in
  let total = List.fold_left (fun a e -> a + e.Store.ei_bytes) 0 entries in
  Printf.printf "%s: %d entr%s, %s\n" dir (List.length entries)
    (if List.length entries = 1 then "y" else "ies")
    (human_bytes total);
  let by_config = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let n, b =
        Option.value
          (Hashtbl.find_opt by_config e.Store.ei_config)
          ~default:(0, 0)
      in
      Hashtbl.replace by_config e.Store.ei_config
        (n + 1, b + e.Store.ei_bytes))
    entries;
  Hashtbl.fold (fun cfg nb acc -> (cfg, nb) :: acc) by_config []
  |> List.sort compare
  |> List.iter (fun (cfg, (n, b)) ->
         Printf.printf "  config %s  %6d entries  %s\n" cfg n (human_bytes b));
  0

let run_verify dir =
  let entries = Store.scan dir in
  let bad = ref 0 in
  List.iter
    (fun e ->
      match Store.verify_entry e with
      | Ok () -> ()
      | Error reason ->
          incr bad;
          Printf.printf "BAD %s: %s\n" e.Store.ei_path reason)
    entries;
  Printf.printf "verified %d entr%s: %d damaged\n" (List.length entries)
    (if List.length entries = 1 then "y" else "ies")
    !bad;
  if !bad = 0 then 0 else 1

let max_mb =
  Arg.(
    required
    & opt (some int) None
    & info [ "max-mb" ] ~docv:"MB"
        ~doc:"Target store size; least-recently-used entries are evicted \
              until the store fits.")

let run_gc dir max_mb =
  if max_mb < 0 then begin
    Printf.eprintf "error: --max-mb must be non-negative\n";
    1
  end
  else begin
    let deleted, freed = Store.gc dir ~max_bytes:(max_mb * 1_048_576) in
    Printf.printf "gc: evicted %d entr%s, freed %s\n" deleted
      (if deleted = 1 then "y" else "ies")
      (human_bytes freed);
    0
  end

let ls_cmd =
  Cmd.v
    (Cmd.info "ls" ~doc:"List store contents (per-config breakdown).")
    Term.(const run_ls $ store_dir)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-validate every entry (header framing, digests, checksum, \
          payload).  Exit 1 when any entry is damaged.")
    Term.(const run_verify $ store_dir)

let gc_cmd =
  Cmd.v
    (Cmd.info "gc" ~doc:"Evict least-recently-used entries down to --max-mb.")
    Term.(const run_gc $ store_dir $ max_mb)

let cmd =
  Cmd.group
    (Cmd.info "flowdroid_store"
       ~doc:"Inspect and maintain a persistent summary store directory.")
    [ ls_cmd; verify_cmd; gc_cmd ]

let () = exit (Cmd.eval' cmd)
