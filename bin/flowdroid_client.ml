(** Command-line client for the serve daemon.

    [flowdroid_client ping|health|stats|drain] for control verbs;
    [flowdroid_client analyze --dir APP] (or [--gen profile:seed:index])
    submits an analysis and prints the JSON reply.  Exit codes: 0 on
    an ["ok":true] reply, 1 on a daemon-reported error (overloaded,
    failed, bad request…), 2 on usage or connection errors. *)

open Cmdliner
module Json = Fd_obs.Json
module Client = Fd_serve.Client
module Protocol = Fd_serve.Protocol

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/flowdroid.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket.")

let verb_arg =
  Arg.(
    required
    & pos 0 (some (enum
        [ ("ping", `Ping); ("health", `Health); ("stats", `Stats);
          ("drain", `Drain); ("analyze", `Analyze) ])) None
    & info [] ~docv:"VERB" ~doc:"ping, health, stats, drain or analyze.")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"APP" ~doc:"App directory to analyze.")

let apk_arg =
  Arg.(
    value & opt_all string []
    & info [ "apk" ] ~docv:"APP"
        ~doc:"App directory (repeatable).  Two or more apps in total \
              make the request a batch analysed in one merged \
              multi-app Scene — with $(b,--icc), the inter-app \
              collusion setting.")

let gen_arg =
  Arg.(
    value & opt_all string []
    & info [ "gen" ] ~docv:"PROFILE:SEED:INDEX"
        ~doc:"Generated-corpus app, e.g. play:2014:7 (repeatable; \
              profiles: play, malware, icc).")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~doc:"Per-request deadline override.")

let k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~doc:"Max access-path length override.")

let id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "id" ] ~doc:"Request id, echoed in the reply.")

let strict_arg =
  Arg.(value & flag & info [ "strict" ] ~doc:"Strict frontend parsing.")

let icc_arg =
  Arg.(
    value & flag
    & info [ "icc" ]
        ~env:(Cmd.Env.info "FLOWDROID_ICC")
        ~doc:"Enable the inter-component taint tier for this request.")

let targeted_arg =
  Arg.(
    value & opt_all string []
    & info [ "targeted" ] ~docv:"SIG"
        ~env:(Cmd.Env.info "FLOWDROID_TARGETED")
        ~doc:"Demand-driven targeted mode for this request: only \
              analyse flows into sinks matching $(docv) (repeatable, \
              or comma-separated in the env var).")

let split_targeted specs =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun p ->
          let p = String.trim p in
          if p = "" then None else Some p)
        (String.split_on_char ',' s))
    specs

let parse_gen s =
  match String.split_on_char ':' s with
  | [ profile; seed; index ] -> (
      match
        ( profile,
          int_of_string_opt seed,
          int_of_string_opt index )
      with
      | "play", Some seed, Some index ->
          Ok
            (Protocol.App_gen
               { g_profile = Fd_appgen.Generator.Play; g_seed = seed;
                 g_index = index })
      | "malware", Some seed, Some index ->
          Ok
            (Protocol.App_gen
               { g_profile = Fd_appgen.Generator.Malware; g_seed = seed;
                 g_index = index })
      | "icc", Some seed, Some index ->
          Ok
            (Protocol.App_gen
               { g_profile = Fd_appgen.Generator.Icc; g_seed = seed;
                 g_index = index })
      | _ -> Error ("bad --gen spec: " ^ s))
  | _ -> Error ("bad --gen spec: " ^ s)

let run socket verb dir apks gens deadline_ms k id strict icc targeted =
  let with_client f =
    match Client.connect socket with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "flowdroid_client: cannot reach %s: %s\n%!" socket
          (Unix.error_message e);
        2
    | c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)
  in
  let print_reply reply =
    print_endline (Json.to_string ~indent:2 reply);
    if Json.member "ok" reply = Some (Json.Bool true) then 0 else 1
  in
  match verb with
  | `Ping ->
      with_client (fun c ->
          if Client.ping c then begin
            print_endline "pong";
            0
          end
          else begin
            prerr_endline "flowdroid_client: no pong";
            1
          end)
  | `Health -> with_client (fun c -> print_reply (Client.health c))
  | `Stats -> with_client (fun c -> print_reply (Client.stats c))
  | `Drain -> with_client (fun c -> print_reply (Client.drain c))
  | `Analyze -> (
      let specs =
        let dirs =
          (match dir with Some d -> [ d ] | None -> []) @ apks
        in
        match
          List.fold_right
            (fun g acc ->
              match (acc, parse_gen g) with
              | Error e, _ -> Error e
              | _, Error e -> Error e
              | Ok rest, Ok a -> Ok (a :: rest))
            gens (Ok [])
        with
        | Error e -> Error e
        | Ok gspecs ->
            Ok (List.map (fun d -> Protocol.App_dir d) dirs @ gspecs)
      in
      match specs with
      | Error msg ->
          Printf.eprintf "flowdroid_client: %s\n%!" msg;
          2
      | Ok [] ->
          Printf.eprintf
            "flowdroid_client: analyze needs at least one of --dir, --apk \
             or --gen\n%!";
          2
      | Ok (rq_app :: rq_apps) ->
          with_client (fun c ->
              print_reply
                (Client.analyze c
                   {
                     Protocol.rq_id =
                       Option.map (fun s -> Json.String s) id;
                     rq_app;
                     rq_apps;
                     rq_deadline_ms = deadline_ms;
                     rq_k = k;
                     rq_rules = "default";
                     rq_strict = strict;
                     rq_fresh_metrics = false;
                     rq_icc = icc;
                     rq_targeted = split_targeted targeted;
                   })))

let cmd =
  Cmd.v
    (Cmd.info "flowdroid_client" ~doc:"Client for the flowdroid_serve daemon")
    Term.(
      const run $ socket_arg $ verb_arg $ dir_arg $ apk_arg $ gen_arg
      $ deadline_arg $ k_arg $ id_arg $ strict_arg $ icc_arg $ targeted_arg)

let () = exit (Cmd.eval' cmd)
