(* Differential-validation campaigns: static engine vs dynamic oracle
   vs planted ground truth over seeded generated corpora.  Exits
   non-zero when any leak key lands in a DIVERGENCE bucket, so the
   binary doubles as the CI gate's workhorse. *)
open Cmdliner
module Gen = Fd_appgen.Generator
module Dc = Fd_diffcheck.Diffcheck
module Verdict = Fd_diffcheck.Verdict
module Minimize = Fd_diffcheck.Minimize

type which = One of Gen.profile | Both

let profile =
  let which_conv =
    Arg.enum
      [
        ("play", One Gen.Play);
        ("malware", One Gen.Malware);
        ("icc", One Gen.Icc);
        ("both", Both);
      ]
  in
  Arg.(
    value & opt which_conv Both
    & info [ "profile" ]
        ~doc:
          "Corpus profile: play, malware, icc (intent-heavy ICC \
           scenarios), or both (play + malware).")

let seed =
  Arg.(value & opt int 20140609 & info [ "seed" ] ~doc:"Corpus seed.")

let precision =
  Arg.(
    value & opt string "none"
    & info [ "precision" ] ~docv:"PASSES"
        ~env:(Cmd.Env.info "FLOWDROID_PRECISION")
        ~doc:
          "Opt-in precision passes for the static engine ($(b,all), \
           $(b,none), or a comma-separated subset of $(b,must-alias), \
           $(b,array-index), $(b,reflection), $(b,clinit)).  Verdict \
           classification follows: a category whose pass is enabled \
           is no longer an accepted explanation for a disagreement.")

let count =
  Arg.(
    value & opt int 200
    & info [ "count" ] ~docv:"N" ~doc:"Apps to generate per profile.")

let jobs =
  Arg.(
    value & opt int (Fd_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Fan the per-app loop out over $(docv) domains; verdicts \
              and digests are bit-identical at any job count \
              (default: FLOWDROID_JOBS, else 1).")

let minimize_flag =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:"Delta-debug every divergent app down to a minimal \
              reproducer and print it.")

let json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit one machine-readable JSON object per campaign \
              instead of tables.")

let emit_explained =
  Arg.(
    value & opt (some string) None
    & info [ "emit-explained" ] ~docv:"DIR"
        ~doc:"For the first occurrence of every explained-FN/FP \
              bucket, delta-debug the app down to a minimal \
              reproducer and save it as an on-disk app under \
              $(docv)/<category>/ (regression corpus for the \
              documented limitations).")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let campaign_json ~passes (c : Dc.campaign) =
  let buckets =
    String.concat ","
      (List.map
         (fun (k, n) -> Printf.sprintf "\"%s\":%d" (json_escape k) n)
         (Dc.bucket_counts c))
  in
  let divs =
    String.concat ","
      (List.concat_map
         (fun (ar : Dc.app_report) ->
           List.map
             (fun (v : Verdict.leak_verdict) ->
               Printf.sprintf
                 "{\"app\":\"%s\",\"key\":\"%s\",\"bucket\":\"%s\"}"
                 (json_escape ar.Dc.ar_name)
                 (json_escape (Verdict.string_of_key v.Verdict.v_key))
                 (json_escape (Verdict.string_of_bucket v.Verdict.v_bucket)))
             (Dc.divergences ar))
         (Dc.divergent_reports c))
  in
  (* the "precision" field appears only when a pass is on, so the
     default JSON stays bit-identical *)
  let precision_field =
    if Fd_core.Config.precision_enabled passes then
      Printf.sprintf "\"precision\":\"%s\","
        (json_escape (Fd_core.Config.string_of_precision passes))
    else ""
  in
  Printf.sprintf
    "{\"profile\":\"%s\",\"seed\":%d,%s\"apps\":%d,\"keys\":%d,\
     \"digest\":\"%s\",\"buckets\":{%s},\"divergences\":[%s]}"
    (Gen.string_of_profile c.Dc.cp_profile)
    c.Dc.cp_seed precision_field
    (List.length c.Dc.cp_reports)
    (Dc.total_keys c) (Dc.digest c) buckets divs

(* re-generate a divergent app by name to recover its gen_app record
   (reports only carry names; generation is deterministic) *)
let regenerate ~profile ~seed ~count name =
  List.find_opt
    (fun (ga : Gen.gen_app) -> ga.Gen.ga_name = name)
    (Gen.corpus ~profile ~seed count)

let minimize_divergences ~config ~profile ~seed ~count (c : Dc.campaign) =
  List.iter
    (fun (ar : Dc.app_report) ->
      match regenerate ~profile ~seed ~count ar.Dc.ar_name with
      | None -> ()
      | Some ga ->
          List.iter
            (fun (v : Verdict.leak_verdict) ->
              let small =
                Minimize.minimize ~config ~expected:ga.Gen.ga_expected
                  ~limits:ga.Gen.ga_limits ~target:v ga.Gen.ga_apk
              in
              Printf.printf
                "--- minimized reproducer: %s %s %s (%d stmts) ---\n%s\n"
                ar.Dc.ar_name
                (Verdict.string_of_key v.Verdict.v_key)
                (Verdict.string_of_bucket v.Verdict.v_bucket)
                (Minimize.stmt_count small)
                (Minimize.reproducer_text small))
            (Dc.divergences ar))
    (Dc.divergent_reports c)

(* one minimized reproducer per explained bucket label: the canonical
   on-disk witness of each documented limitation category *)
let emit_explained_repros ~config ~profile ~seed ~count ~dir (c : Dc.campaign) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (ar : Dc.app_report) ->
      List.iter
        (fun (v : Verdict.leak_verdict) ->
          match v.Verdict.v_bucket with
          | Verdict.Explained_fn _ | Verdict.Explained_fp _
            when not (Hashtbl.mem seen v.Verdict.v_bucket) -> (
              match regenerate ~profile ~seed ~count ar.Dc.ar_name with
              | None -> ()
              | Some ga ->
                  Hashtbl.add seen v.Verdict.v_bucket ();
                  let small =
                    Minimize.minimize ~config ~expected:ga.Gen.ga_expected
                      ~limits:ga.Gen.ga_limits ~target:v ga.Gen.ga_apk
                  in
                  let label = Verdict.string_of_bucket v.Verdict.v_bucket in
                  let cat =
                    match v.Verdict.v_bucket with
                    | Verdict.Explained_fn l ->
                        "fn-" ^ Gen.string_of_limitation l
                    | Verdict.Explained_fp l ->
                        "fp-" ^ Gen.string_of_limitation l
                    | _ -> assert false
                  in
                  let d = Filename.concat dir cat in
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  Minimize.save ~dir:d small;
                  let oc = open_out (Filename.concat d "REPRO.txt") in
                  Printf.fprintf oc
                    "app: %s\nkey: %s\nbucket: %s\nstmts: %d\nseed: %d\n"
                    ar.Dc.ar_name
                    (Verdict.string_of_key v.Verdict.v_key)
                    label
                    (Minimize.stmt_count small)
                    seed;
                  close_out oc;
                  Printf.printf "emitted %s (%d stmts) -> %s\n" label
                    (Minimize.stmt_count small) d)
          | _ -> ())
        ar.Dc.ar_verdicts)
    c.Dc.cp_reports

let summary_store =
  Arg.(
    value & opt (some string) None
    & info [ "summary-store" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "FLOWDROID_SUMMARY_STORE")
        ~doc:"Reuse (and extend) the persistent cross-app summary store \
              at $(docv); verdicts and digests are bit-identical with \
              the store hot or cold.")

let targeted =
  Arg.(
    value & opt_all string []
    & info [ "targeted" ] ~docv:"SIG"
        ~env:(Cmd.Env.info "FLOWDROID_TARGETED")
        ~doc:"Demand-driven targeted mode: only analyse flows into \
              sinks matching $(docv) (substring of \"Class.method\", \
              supertypes included; repeatable, or comma-separated in \
              the env var).")

let icc_flag =
  Arg.(
    value & flag
    & info [ "icc" ]
        ~env:(Cmd.Env.info "FLOWDROID_ICC")
        ~doc:"Enable the inter-component taint tier in the static \
              engine (and concrete intent dispatch in the dynamic \
              oracle).  Verdict classification follows: icc-send and \
              icc-stitch are no longer accepted explanations for a \
              disagreement.")

let pairs =
  Arg.(
    value & opt int 0
    & info [ "pairs" ] ~docv:"N"
        ~doc:"Also run a collusion-pair campaign: $(docv) generated \
              sender/receiver app pairs analysed in one merged Scene \
              each, validated against the planted cross-app ground \
              truth.")

let split_targeted specs =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun p ->
          let p = String.trim p in
          if p = "" then None else Some p)
        (String.split_on_char ',' s))
    specs

let run which seed precision count jobs do_min json emit_dir summary_store
    targeted icc pairs =
  let module Config = Fd_core.Config in
  match Config.precision_of_string precision with
  | Error msg ->
      Printf.eprintf "error: --precision: %s\n" msg;
      exit 1
  | Ok passes ->
  (* SIGINT/SIGTERM → cooperative cancel: the campaign's per-app loop
     drains, partial verdict tables still print, and we exit 4.
     Verdicts from cancelled (partial) solves are not divergence
     evidence, so the divergence gate is skipped on interrupt. *)
  let interrupt =
    Sys.Signal_handle (fun _ -> Fd_resilience.Budget.cancel_all ())
  in
  Sys.set_signal Sys.sigint interrupt;
  Sys.set_signal Sys.sigterm interrupt;
  if summary_store <> None then Fd_store.Store.install ();
  let config =
    { Config.default with
      Config.precision = passes;
      Config.summary_store;
      Config.targeted = split_targeted targeted;
      Config.icc = icc }
  in
  let enabled = Config.precision_enabled passes in
  let profiles =
    match which with One p -> [ p ] | Both -> [ Gen.Play; Gen.Malware ]
  in
  let n_div = ref 0 in
  List.iter
    (fun profile ->
      let c = Dc.campaign ~config ~jobs ~profile ~seed ~n:count () in
      n_div :=
        !n_div
        + List.fold_left
            (fun a ar -> a + List.length (Dc.divergences ar))
            0 c.Dc.cp_reports;
      if json then print_endline (campaign_json ~passes c)
      else begin
        (* precision line only when a pass is on: the default table
           stays bit-identical *)
        if enabled then
          Printf.printf "precision: %s\n" (Config.string_of_precision passes);
        print_string (Dc.render c)
      end;
      if do_min then minimize_divergences ~config ~profile ~seed ~count c;
      Option.iter
        (fun dir -> emit_explained_repros ~config ~profile ~seed ~count ~dir c)
        emit_dir)
    profiles;
  if pairs > 0 then begin
    let c = Dc.pair_campaign ~config ~jobs ~seed ~n:pairs () in
    n_div :=
      !n_div
      + List.fold_left
          (fun a ar -> a + List.length (Dc.divergences ar))
          0 c.Dc.cp_reports;
    if json then print_endline (campaign_json ~passes c)
    else begin
      Printf.printf "collusion pairs (merged two-app scenes):\n";
      print_string (Dc.render c)
    end
  end;
  List.iter
    (fun (d : Fd_resilience.Diag.t) ->
      Printf.eprintf "summary-store: %s\n" d.Fd_resilience.Diag.d_msg)
    (Fd_store.Store.drain_diags ());
  if Fd_resilience.Budget.cancelling_all () then begin
    Printf.eprintf
      "diff_runner: interrupted — partial verdict tables above; cancelled \
       solves are under-approximations, so no divergence verdict is issued\n";
    exit 4
  end;
  if !n_div > 0 then begin
    Printf.eprintf "diff_runner: %d divergent leak key(s)\n" !n_div;
    exit 1
  end

let cmd =
  Cmd.v
    (Cmd.info "diff_runner"
       ~doc:
         "Differential validation: static IFDS vs dynamic interpreter \
          vs planted ground truth over generated corpora.")
    Term.(
      const run $ profile $ seed $ precision $ count $ jobs $ minimize_flag
      $ json $ emit_explained $ summary_store $ targeted $ icc_flag $ pairs)

let () = exit (Cmd.eval cmd)
