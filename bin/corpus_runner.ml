(* RQ3: analyse the generated Play-profile / malware-profile corpora
   and report runtime + leak statistics. *)
open Cmdliner

let profile =
  let profile_conv =
    Arg.enum
      [ ("play", Fd_appgen.Generator.Play);
        ("malware", Fd_appgen.Generator.Malware) ]
  in
  Arg.(value & opt profile_conv Fd_appgen.Generator.Malware
       & info [ "profile" ] ~doc:"Corpus profile: play or malware.")

let n =
  Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of apps to generate.")

let seed =
  Arg.(value & opt int 20140609 & info [ "seed" ] ~doc:"Corpus seed.")

let deadline =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:"Wall-clock deadline per app; expired apps report partial \
              results.")

let jobs =
  Arg.(
    value & opt int (Fd_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Fan the per-app loop out over $(docv) domains; results \
              are bit-identical at any job count (default: \
              FLOWDROID_JOBS, else 1).")

let run profile n seed deadline jobs =
  let config =
    { Fd_core.Config.default with Fd_core.Config.deadline_s = deadline }
  in
  let t = Fd_eval.Corpus.run ~config ~jobs ~profile ~seed ~n () in
  print_string (Fd_eval.Corpus.render t);
  (* per-app outcome rows for anything that did not complete cleanly *)
  List.iter
    (fun (s : Fd_eval.Corpus.app_stat) ->
      if not (Fd_resilience.Outcome.is_complete s.Fd_eval.Corpus.as_outcome)
      then
        Printf.printf "  %-24s outcome: %s\n" s.Fd_eval.Corpus.as_name
          (Fd_resilience.Outcome.to_string s.Fd_eval.Corpus.as_outcome))
    t.Fd_eval.Corpus.c_stats

let cmd =
  Cmd.v
    (Cmd.info "corpus_runner"
       ~doc:"RQ3 corpus analysis (generated Play/malware apps)")
    Term.(const run $ profile $ n $ seed $ deadline $ jobs)

let () = exit (Cmd.eval cmd)
