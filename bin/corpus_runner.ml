(* RQ3: analyse the generated Play-profile / malware-profile corpora
   and report runtime + leak statistics. *)
open Cmdliner

let profile =
  let profile_conv =
    Arg.enum
      [ ("play", Fd_appgen.Generator.Play);
        ("malware", Fd_appgen.Generator.Malware);
        ("icc", Fd_appgen.Generator.Icc) ]
  in
  Arg.(value & opt profile_conv Fd_appgen.Generator.Malware
       & info [ "profile" ] ~doc:"Corpus profile: play, malware or icc.")

let n =
  Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of apps to generate.")

let seed =
  Arg.(value & opt int 20140609 & info [ "seed" ] ~doc:"Corpus seed.")

let deadline =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:"Wall-clock deadline per app; expired apps report partial \
              results.")

let jobs =
  Arg.(
    value & opt int (Fd_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Fan the per-app loop out over $(docv) domains; results \
              are bit-identical at any job count (default: \
              FLOWDROID_JOBS, else 1).")

let stats_json_out =
  Arg.(
    value & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:"Write the observability snapshot of the whole corpus run \
              as JSON to $(docv) (\"-\" = stdout).")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event file to $(docv) (\"-\" = stdout).")

let profile_out =
  Arg.(
    value & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:"Profile the solver per method across the corpus and write \
              a collapsed-stack (flamegraph) file to $(docv) (\"-\" = \
              stdout).")

let summary_store =
  Arg.(
    value & opt (some string) None
    & info [ "summary-store" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "FLOWDROID_SUMMARY_STORE")
        ~doc:"Reuse (and extend) the persistent cross-app summary store \
              at $(docv); results are bit-identical with the store hot \
              or cold.")

let targeted =
  Arg.(
    value & opt_all string []
    & info [ "targeted" ] ~docv:"SIG"
        ~env:(Cmd.Env.info "FLOWDROID_TARGETED")
        ~doc:"Demand-driven targeted mode: only analyse flows into \
              sinks matching $(docv) (substring of \"Class.method\", \
              supertypes included; repeatable, or comma-separated in \
              the env var).")

let split_targeted specs =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun p ->
          let p = String.trim p in
          if p = "" then None else Some p)
        (String.split_on_char ',' s))
    specs

let run profile n seed deadline jobs stats_json_out trace_out profile_out
    summary_store targeted =
  Fd_obs.Metrics.reset ();
  Fd_obs.Trace.reset ();
  Fd_obs.Profile.reset ();
  (* SIGINT/SIGTERM → cooperative cancel: the per-app loop drains with
     cancelled outcome rows, the partial table prints, and we exit 4 *)
  let interrupt =
    Sys.Signal_handle (fun _ -> Fd_resilience.Budget.cancel_all ())
  in
  Sys.set_signal Sys.sigint interrupt;
  Sys.set_signal Sys.sigterm interrupt;
  if summary_store <> None then Fd_store.Store.install ();
  let config =
    {
      Fd_core.Config.default with
      Fd_core.Config.deadline_s = deadline;
      Fd_core.Config.profile = profile_out <> None;
      Fd_core.Config.summary_store = summary_store;
      Fd_core.Config.targeted = split_targeted targeted;
    }
  in
  let t = Fd_eval.Corpus.run ~config ~jobs ~profile ~seed ~n () in
  print_string (Fd_eval.Corpus.render t);
  (* per-app outcome rows for anything that did not complete cleanly *)
  List.iter
    (fun (s : Fd_eval.Corpus.app_stat) ->
      if not (Fd_resilience.Outcome.is_complete s.Fd_eval.Corpus.as_outcome)
      then
        Printf.printf "  %-24s outcome: %s\n" s.Fd_eval.Corpus.as_name
          (Fd_resilience.Outcome.to_string s.Fd_eval.Corpus.as_outcome))
    t.Fd_eval.Corpus.c_stats;
  let write_out what path =
    try
      what ~path;
      if path <> "-" then Printf.eprintf "wrote %s\n" path
    with Sys_error msg -> Printf.eprintf "error: %s\n" msg
  in
  (match stats_json_out with
  | Some path ->
      let extra =
        if profile_out <> None then
          [ ("profile", Fd_obs.Profile.to_json ()) ]
        else []
      in
      write_out
        (fun ~path -> Fd_obs.Export.write_stats_json ~extra ~path ())
        path
  | None -> ());
  (match trace_out with
  | Some path -> write_out Fd_obs.Export.write_chrome_trace path
  | None -> ());
  (match profile_out with
  | Some path -> write_out Fd_obs.Profile.write_collapsed path
  | None -> ());
  List.iter
    (fun (d : Fd_resilience.Diag.t) ->
      Printf.eprintf "summary-store: %s\n" d.Fd_resilience.Diag.d_msg)
    (Fd_store.Store.drain_diags ());
  if Fd_resilience.Budget.cancelling_all () then begin
    prerr_endline
      "corpus_runner: interrupted — partial results above (cancelled runs \
       report outcome: cancelled)";
    4
  end
  else 0

let cmd =
  Cmd.v
    (Cmd.info "corpus_runner"
       ~doc:"RQ3 corpus analysis (generated Play/malware apps)")
    Term.(
      const run $ profile $ n $ seed $ deadline $ jobs $ stats_json_out
      $ trace_out $ profile_out $ summary_store $ targeted)

let () = exit (Cmd.eval' cmd)
