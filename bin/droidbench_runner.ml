(* Regenerates Table 1: DROIDBENCH results for FlowDroid and the two
   simulated commercial comparators.

   Observability options:
     --app NAME         run FlowDroid on one benchmark case only
     --stats-json FILE  write the metrics snapshot (+ phase durations)
     --trace-out FILE   write a Chrome trace_event file
     --dump DIR         write the selected app (or every app) to DIR as
                        an on-disk app directory usable with
                        flowdroid_cli *)

let usage () =
  prerr_endline
    "usage: droidbench_runner [--app NAME] [--stats-json FILE] [--trace-out \
     FILE] [--dump DIR]";
  exit 1

let app_name = ref None
let stats_json = ref None
let trace_out = ref None
let dump_dir = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--app" :: v :: rest ->
        app_name := Some v;
        parse rest
    | "--stats-json" :: v :: rest ->
        stats_json := Some v;
        parse rest
    | "--trace-out" :: v :: rest ->
        trace_out := Some v;
        parse rest
    | "--dump" :: v :: rest ->
        dump_dir := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  go dir

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* write an in-memory APK as the on-disk app-directory layout
   flowdroid_cli consumes: AndroidManifest.xml, res/layout/*.xml and
   one .jimple unit per class *)
let dump_app dir (apk : Fd_frontend.Apk.t) =
  let root = Filename.concat dir apk.Fd_frontend.Apk.apk_name in
  mkdir_p root;
  write_file
    (Filename.concat root "AndroidManifest.xml")
    apk.Fd_frontend.Apk.apk_manifest;
  (match apk.Fd_frontend.Apk.apk_layouts with
  | [] -> ()
  | layouts ->
      let ldir = Filename.concat (Filename.concat root "res") "layout" in
      mkdir_p ldir;
      List.iter
        (fun (name, src) ->
          write_file (Filename.concat ldir (name ^ ".xml")) src)
        layouts);
  List.iter
    (fun cls ->
      write_file
        (Filename.concat root (cls.Fd_ir.Jclass.c_name ^ ".jimple"))
        (Fd_ir.Pretty.class_to_string cls))
    apk.Fd_frontend.Apk.apk_classes;
  Printf.printf "dumped %s\n" root

let find_app name =
  match Fd_droidbench.Suite.find name with
  | Some app -> app
  | None ->
      Printf.eprintf "error: no DroidBench case named %S\n" name;
      exit 1

let run_one (app : Fd_droidbench.Bench_app.t) =
  let result =
    Fd_core.Infoflow.analyze_apk app.Fd_droidbench.Bench_app.app_apk
  in
  Printf.printf "%s: %d flow(s), %d propagations\n"
    app.Fd_droidbench.Bench_app.app_name
    (List.length result.Fd_core.Infoflow.r_findings)
    result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_propagations

let () =
  (match !dump_dir with
  | Some dir ->
      (match !app_name with
      | Some name -> dump_app dir (find_app name).Fd_droidbench.Bench_app.app_apk
      | None ->
          List.iter
            (fun (a : Fd_droidbench.Bench_app.t) ->
              dump_app dir a.Fd_droidbench.Bench_app.app_apk)
            Fd_droidbench.Suite.all);
      exit 0
  | None -> ());
  (match !app_name with
  | Some name -> run_one (find_app name)
  | None ->
      let engines =
        [ Fd_eval.Engines.appscan; Fd_eval.Engines.fortify;
          Fd_eval.Engines.flowdroid () ]
      in
      let t = Fd_eval.Droidbench_table.run engines in
      print_string (Fd_eval.Droidbench_table.render t));
  let write_out what path =
    try
      what ~path;
      Printf.eprintf "wrote %s\n" path
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  (match !stats_json with
  | Some path -> write_out Fd_obs.Export.write_stats_json path
  | None -> ());
  match !trace_out with
  | Some path -> write_out Fd_obs.Export.write_chrome_trace path
  | None -> ()
