(* Regenerates Table 1: DROIDBENCH results for FlowDroid and the two
   simulated commercial comparators.

   Observability options:
     --app NAME         run FlowDroid on one benchmark case only
     --stats-json FILE  write the metrics snapshot (+ phase durations);
                        "-" writes to stdout
     --trace-out FILE   write a Chrome trace_event file; "-" = stdout
     --provenance       record provenance edges (witness paths) while
                        solving
     --profile-out FILE write a collapsed-stack per-method solver
                        profile to FILE ("-" = stdout)
     --dump DIR         write the selected app (or every app) to DIR as
                        an on-disk app directory usable with
                        flowdroid_cli

   Precision options:
     --precision SPEC   opt-in precision passes (all, none, or a
                        comma-separated subset of must-alias,
                        array-index, reflection, clinit; default:
                        $FLOWDROID_PRECISION, else none); reported in
                        the output only when a pass is enabled
     --icc              enable the ICC link-resolution tier: resolve
                        intent sends against the manifest, stitch
                        cross-component flows, drop deliverable sends,
                        synthesise setResult leaks (closes the
                        IntentSink1 row); default off, table unchanged

   Performance options:
     --jobs N           fan the per-app loop out over N domains
                        (default: $FLOWDROID_JOBS, else 1); the table
                        is bit-identical at any job count
     --summary-store DIR
                        reuse (and extend) the persistent cross-app
                        summary store at DIR (default:
                        $FLOWDROID_SUMMARY_STORE, else off); the table
                        is bit-identical with the store hot or cold

   Resilience options:
     --deadline SECS    wall-clock deadline per analysis run
     --outcomes         print per-app termination states after the table
     --chaos-rate P     fault-injection smoke run: corrupt each app's
                        µJimple at rate P, inject solver faults at rate
                        P, analyse leniently under the degradation
                        ladder, and report per-app outcomes (exit 1 if
                        any exception escapes the barrier)
     --chaos-seed N     PRNG seed for --chaos-rate (default 20140609)

   SIGINT/SIGTERM cancel the campaign cooperatively: in-flight solves
   stop with outcome cancelled, the partial table still prints, and
   the process exits 4. *)

let usage () =
  prerr_endline
    "usage: droidbench_runner [--app NAME] [--precision SPEC] [--stats-json \
     FILE] [--trace-out FILE] [--provenance] [--profile-out FILE] [--dump \
     DIR] [--jobs N] [--deadline SECS] [--outcomes] [--chaos-rate P] \
     [--chaos-seed N] [--summary-store DIR] [--targeted SIG] [--icc]";
  exit 1

let app_name = ref None
let stats_json = ref None
let trace_out = ref None
let provenance = ref false
let profile_out = ref None
let dump_dir = ref None
let deadline = ref None
let show_outcomes = ref false

let summary_store =
  ref
    (match Sys.getenv_opt "FLOWDROID_SUMMARY_STORE" with
    | Some s when s <> "" -> Some s
    | _ -> None)

let chaos_rate = ref None
let chaos_seed = ref 20140609
let jobs = ref (Fd_util.Pool.default_jobs ())

(* --targeted SIG (repeatable, or comma-separated in the env var) *)
let split_targeted s =
  List.filter_map
    (fun p ->
      let p = String.trim p in
      if p = "" then None else Some p)
    (String.split_on_char ',' s)

let targeted =
  ref
    (match Sys.getenv_opt "FLOWDROID_TARGETED" with
    | Some s when s <> "" -> split_targeted s
    | _ -> [])

let precision =
  ref
    (match Sys.getenv_opt "FLOWDROID_PRECISION" with
    | Some s when s <> "" -> s
    | _ -> "none")

let icc = ref (Sys.getenv_opt "FLOWDROID_ICC" = Some "1")

let () =
  let rec parse = function
    | [] -> ()
    | "--app" :: v :: rest ->
        app_name := Some v;
        parse rest
    | "--stats-json" :: v :: rest ->
        stats_json := Some v;
        parse rest
    | "--trace-out" :: v :: rest ->
        trace_out := Some v;
        parse rest
    | "--provenance" :: rest ->
        provenance := true;
        parse rest
    | "--profile-out" :: v :: rest ->
        profile_out := Some v;
        parse rest
    | "--dump" :: v :: rest ->
        dump_dir := Some v;
        parse rest
    | "--deadline" :: v :: rest ->
        (match float_of_string_opt v with
        | Some s -> deadline := Some s
        | None -> usage ());
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--outcomes" :: rest ->
        show_outcomes := true;
        parse rest
    | "--chaos-rate" :: v :: rest ->
        (match float_of_string_opt v with
        | Some p -> chaos_rate := Some p
        | None -> usage ());
        parse rest
    | "--chaos-seed" :: v :: rest ->
        (match int_of_string_opt v with
        | Some s -> chaos_seed := s
        | None -> usage ());
        parse rest
    | "--precision" :: v :: rest ->
        precision := v;
        parse rest
    | "--summary-store" :: v :: rest ->
        summary_store := Some v;
        parse rest
    | "--targeted" :: v :: rest ->
        targeted := !targeted @ split_targeted v;
        parse rest
    | "--icc" :: rest ->
        icc := true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

let precision_passes () =
  match Fd_core.Config.precision_of_string !precision with
  | Ok p -> p
  | Error msg ->
      Printf.eprintf "error: --precision: %s\n" msg;
      exit 1

let base_config () =
  if !summary_store <> None then Fd_store.Store.install ();
  {
    Fd_core.Config.default with
    Fd_core.Config.deadline_s = !deadline;
    Fd_core.Config.precision = precision_passes ();
    Fd_core.Config.provenance = !provenance;
    Fd_core.Config.profile = !profile_out <> None;
    Fd_core.Config.summary_store = !summary_store;
    Fd_core.Config.targeted = !targeted;
    Fd_core.Config.icc = !icc;
  }

(* mention precision only when a pass is on: default output unchanged *)
let precision_note () =
  let p = precision_passes () in
  if Fd_core.Config.precision_enabled p then
    Printf.sprintf ", precision: %s" (Fd_core.Config.string_of_precision p)
  else ""

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  go dir

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* write an in-memory APK as the on-disk app-directory layout
   flowdroid_cli consumes: AndroidManifest.xml, res/layout/*.xml and
   one .jimple unit per class *)
let dump_app dir (apk : Fd_frontend.Apk.t) =
  let root = Filename.concat dir apk.Fd_frontend.Apk.apk_name in
  mkdir_p root;
  write_file
    (Filename.concat root "AndroidManifest.xml")
    apk.Fd_frontend.Apk.apk_manifest;
  (match apk.Fd_frontend.Apk.apk_layouts with
  | [] -> ()
  | layouts ->
      let ldir = Filename.concat (Filename.concat root "res") "layout" in
      mkdir_p ldir;
      List.iter
        (fun (name, src) ->
          write_file (Filename.concat ldir (name ^ ".xml")) src)
        layouts);
  List.iter
    (fun cls ->
      write_file
        (Filename.concat root (cls.Fd_ir.Jclass.c_name ^ ".jimple"))
        (Fd_ir.Pretty.class_to_string cls))
    apk.Fd_frontend.Apk.apk_classes;
  Printf.printf "dumped %s\n" root

let find_app name =
  match Fd_droidbench.Suite.find name with
  | Some app -> app
  | None ->
      Printf.eprintf "error: no DroidBench case named %S\n" name;
      exit 1

let run_one (app : Fd_droidbench.Bench_app.t) =
  (* fresh observability state per app: without this, metrics and
     phase durations from a previous app bleed into this app's
     --stats-json / --trace-out snapshot *)
  Fd_obs.Metrics.reset ();
  Fd_obs.Trace.reset ();
  Fd_obs.Profile.reset ();
  let result =
    Fd_core.Infoflow.analyze_apk ~config:(base_config ())
      app.Fd_droidbench.Bench_app.app_apk
  in
  Printf.printf "%s: %d flow(s), %d propagations%s\n"
    app.Fd_droidbench.Bench_app.app_name
    (List.length result.Fd_core.Infoflow.r_findings)
    result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_propagations
    (precision_note ());
  let o = result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_outcome in
  if not (Fd_resilience.Outcome.is_complete o) then
    Printf.printf "outcome: %s\n" (Fd_resilience.Outcome.to_string o)

(* --chaos-rate: the fault-injection smoke run.  Each app's µJimple is
   re-rendered through the pretty-printer, corrupted at rate P, parsed
   leniently, and analysed under the degradation ladder with
   solver-step faults injected at rate P.  Everything runs under the
   crash barrier: an escaped exception is the only failure mode. *)
let run_chaos rate =
  let chaos = Fd_resilience.Chaos.create ~seed:!chaos_seed ~rate in
  let config = base_config () in
  let escaped = ref 0 in
  let dist = Hashtbl.create 7 in
  let bump key =
    Hashtbl.replace dist key (1 + Option.value (Hashtbl.find_opt dist key) ~default:0)
  in
  List.iter
    (fun (app : Fd_droidbench.Bench_app.t) ->
      let apk = app.Fd_droidbench.Bench_app.app_apk in
      let label = app.Fd_droidbench.Bench_app.app_name in
      (* no per-app registry reset: the chaos loop happens to be
         sequential today, but a global reset is unsafe the moment the
         loop fans out ([Fd_util.Pool]) — per-app scoping is done by
         snapshot-and-diff ({!Fd_obs.Metrics.with_delta}) where it is
         actually needed; nothing in this loop reads the registry *)
      match
        Fd_resilience.Barrier.protect ~label (fun () ->
            let sources =
              List.map
                (fun cls ->
                  Fd_resilience.Chaos.corrupt_string chaos
                    (Fd_ir.Pretty.class_to_string cls))
                apk.Fd_frontend.Apk.apk_classes
            in
            let corrupted =
              Fd_frontend.Apk.make_text ~mode:`Lenient label
                ~manifest:apk.Fd_frontend.Apk.apk_manifest
                ~layouts:apk.Fd_frontend.Apk.apk_layouts sources
            in
            Fd_core.Infoflow.analyze_with_fallback ~config ~mode:`Lenient
              ~chaos corrupted)
      with
      | Ok fb ->
          let c =
            Fd_core.Infoflow.string_of_completeness
              fb.Fd_core.Infoflow.fb_completeness
          in
          bump c;
          let diags =
            fb.Fd_core.Infoflow.fb_result.Fd_core.Infoflow.r_diags
          in
          (* every degraded/partial outcome must carry a post-mortem:
             surface the flight-recorder dump count so the CI gate (and
             a reader) can spot a silent degradation at a glance *)
          let flight =
            match fb.Fd_core.Infoflow.fb_completeness with
            | Fd_core.Infoflow.Precise -> ""
            | Fd_core.Infoflow.Degraded _ | Fd_core.Infoflow.Partial _ ->
                let n =
                  List.length
                    (List.filter
                       (fun (d : Fd_resilience.Diag.t) ->
                         d.Fd_resilience.Diag.d_file = "flight-recorder")
                       diags)
                in
                if n > 0 then Printf.sprintf ", flight=%d" n
                else ", flight=MISSING"
          in
          Printf.printf "%-28s %-22s %d flow(s), %d diag(s)%s\n" label c
            (List.length fb.Fd_core.Infoflow.fb_result.Fd_core.Infoflow.r_findings)
            (List.length diags) flight
      | Error o ->
          (* Fallback_failed lands here: every rung crashed but the
             barrier held — still not an escaped exception *)
          bump (Fd_resilience.Outcome.to_string o);
          Printf.printf "%-28s %s\n" label (Fd_resilience.Outcome.to_string o)
      | exception e ->
          incr escaped;
          Printf.printf "%-28s ESCAPED: %s\n" label (Printexc.to_string e))
    Fd_droidbench.Suite.all;
  Printf.printf "\nchaos run: seed=%d rate=%.2f, %d app(s), %d fault(s) injected\n"
    !chaos_seed rate
    (List.length Fd_droidbench.Suite.all)
    (Fd_resilience.Chaos.faults_injected chaos);
  Printf.printf "outcomes: %s\n"
    (String.concat ", "
       (List.sort compare
          (Hashtbl.fold
             (fun k n acc -> Printf.sprintf "%s: %d" k n :: acc)
             dist [])));
  if !escaped > 0 then begin
    Printf.eprintf "error: %d exception(s) escaped the barrier\n" !escaped;
    exit 1
  end

(* SIGINT/SIGTERM become a cooperative [Budget.cancel_all]: in-flight
   solves stop at their next tick with a [Cancelled] outcome, the
   remaining apps' budgets are born cancelled, and the partial table
   still prints.  Exit code 4 distinguishes an interrupted campaign
   from clean (0), error (1) and escaped-chaos (1) exits. *)
let exit_interrupted = 4

let install_interrupt () =
  let h = Sys.Signal_handle (fun _ -> Fd_resilience.Budget.cancel_all ()) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

let finish_interrupted () =
  if Fd_resilience.Budget.cancelling_all () then begin
    prerr_endline
      "droidbench_runner: interrupted — partial results above (cancelled \
       runs report outcome: cancelled)";
    exit exit_interrupted
  end

let () =
  install_interrupt ();
  (match !dump_dir with
  | Some dir ->
      (match !app_name with
      | Some name -> dump_app dir (find_app name).Fd_droidbench.Bench_app.app_apk
      | None ->
          List.iter
            (fun (a : Fd_droidbench.Bench_app.t) ->
              dump_app dir a.Fd_droidbench.Bench_app.app_apk)
            Fd_droidbench.Suite.all);
      exit 0
  | None -> ());
  (match (!chaos_rate, !app_name) with
  | Some rate, _ -> run_chaos rate
  | None, Some name -> run_one (find_app name)
  | None, None ->
      let engines =
        [ Fd_eval.Engines.appscan; Fd_eval.Engines.fortify;
          Fd_eval.Engines.flowdroid ~config:(base_config ()) () ]
      in
      let t = Fd_eval.Droidbench_table.run ~jobs:!jobs engines in
      (match precision_note () with
      | "" -> ()
      | note ->
          Printf.printf "FlowDroid configuration%s\n"
            note);
      print_string (Fd_eval.Droidbench_table.render t);
      if !show_outcomes then begin
        print_newline ();
        print_endline "Per-app termination states (non-complete only):";
        (match Fd_eval.Droidbench_table.render_outcomes t with
        | "" -> print_endline "  all runs complete"
        | s -> print_string s);
        Printf.printf "outcome distribution: %s\n"
          (String.concat ", "
             (List.map
                (fun (k, n) -> Printf.sprintf "%s: %d" k n)
                (Fd_eval.Droidbench_table.outcome_distribution t)))
      end);
  let write_out what path =
    try
      what ~path;
      if path <> "-" then Printf.eprintf "wrote %s\n" path
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  (match !stats_json with
  | Some path ->
      let extra =
        if !profile_out <> None then
          [ ("profile", Fd_obs.Profile.to_json ()) ]
        else []
      in
      write_out
        (fun ~path -> Fd_obs.Export.write_stats_json ~extra ~path ())
        path
  | None -> ());
  (match !profile_out with
  | Some path -> write_out Fd_obs.Profile.write_collapsed path
  | None -> ());
  (match !trace_out with
  | Some path -> write_out Fd_obs.Export.write_chrome_trace path
  | None -> ());
  List.iter
    (fun (d : Fd_resilience.Diag.t) ->
      Printf.eprintf "summary-store: %s\n" d.Fd_resilience.Diag.d_msg)
    (Fd_store.Store.drain_diags ());
  finish_interrupted ()
