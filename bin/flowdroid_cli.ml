(* The FlowDroid command-line interface: analyse an app directory
   (AndroidManifest.xml + res/layout/*.xml + *.jimple files) and
   report the discovered source-to-sink flows. *)

open Cmdliner
module Config = Fd_core.Config

let app_dir =
  Arg.(
    value
    & pos 0 (some dir) None
    & info [] ~docv:"APP_DIR"
        ~doc:
          "App directory: AndroidManifest.xml, res/layout/*.xml and µJimple \
           (.jimple) source files.")

let apk_dirs =
  Arg.(
    value & opt_all dir []
    & info [ "apk" ] ~docv:"APP_DIR"
        ~doc:
          "Additional app directory (repeatable).  With two or more apps \
           in total they are loaded into one merged Scene and analysed \
           together — the inter-app setting where, under $(b,--icc), \
           intents cross APK boundaries into exported components and \
           collusion flows are stitched end to end.")

let k_len =
  Arg.(
    value & opt int 5
    & info [ "k"; "access-path-length" ]
        ~doc:"Maximal access-path length (paper default: 5).")

let no_lifecycle =
  Arg.(value & flag & info [ "no-lifecycle" ] ~doc:"Disable the lifecycle model.")

let no_callbacks =
  Arg.(value & flag & info [ "no-callbacks" ] ~doc:"Disable callback discovery.")

let no_alias =
  Arg.(
    value & flag
    & info [ "no-alias" ] ~doc:"Disable the on-demand backward alias analysis.")

let no_activation =
  Arg.(
    value & flag
    & info [ "no-activation" ]
        ~doc:"Disable activation statements (flow-insensitive aliases).")

let rta =
  Arg.(
    value & flag
    & info [ "rta" ] ~doc:"Use RTA instead of CHA for call-graph construction.")

let precision =
  Arg.(
    value & opt string "none"
    & info [ "precision" ] ~docv:"PASSES"
        ~env:(Cmd.Env.info "FLOWDROID_PRECISION")
        ~doc:
          "Opt-in precision passes: $(b,all), $(b,none), or a \
           comma-separated subset of $(b,must-alias) (strong updates \
           through must-aliased bases), $(b,array-index) \
           (constant-index array cells), $(b,reflection) \
           (constant-string reflective call edges) and $(b,clinit) \
           (first-use-site class-initialiser placement).  All passes \
           default to off; the default output is unchanged.")

let lint_flag =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Lint the app's µJimple sources (use-before-def locals, \
           duplicate/undefined branch labels, call-arity mismatches) \
           and exit without analysing: status 0 when clean, 1 when \
           issues are found.")

let sources_file =
  Arg.(
    value & opt (some file) None
    & info [ "sources-sinks" ]
        ~doc:"Sources/sinks configuration file (SuSi-style format).")

let wrappers_file =
  Arg.(
    value & opt (some file) None
    & info [ "taint-wrappers" ] ~doc:"Taint-wrapper (library shortcut) rules file.")

let deadline =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline for the taint analysis; on expiry the \
           solver stops cooperatively and the partial results are \
           reported with outcome deadline-exceeded (exit status 3).")

let lenient =
  Arg.(
    value & flag
    & info [ "lenient" ]
        ~doc:
          "Lenient frontend: skip malformed components, layouts and \
           µJimple units (reported as warnings) instead of aborting; \
           analyse what remains.")

let fallback =
  Arg.(
    value & flag
    & info [ "fallback" ]
        ~doc:
          "On budget/deadline exhaustion or crash, retry under \
           progressively cheaper configurations (the degradation \
           ladder) and report the best result with a completeness \
           marker.")

let show_paths =
  Arg.(value & flag & info [ "paths" ] ~doc:"Print full propagation paths.")

let dump_dummy_main =
  Arg.(
    value & flag
    & info [ "dump-dummy-main" ]
        ~doc:"Print the generated dummy main method's CFG (Figure 1).")

let xml_out =
  Arg.(
    value & opt (some string) None
    & info [ "xml" ] ~docv:"FILE"
        ~doc:"Write the results as a FlowDroid-style XML report to $(docv).")

let stats_json_out =
  Arg.(
    value & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the observability snapshot (ifds.*, bidi.*, cg.*, \
           frontend.* metrics and per-phase durations) as JSON to $(docv).")

let trace_out =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event file of the pipeline phases to \
           $(docv); open it in chrome://tracing or Perfetto.")

let provenance_flag =
  Arg.(
    value & flag
    & info [ "provenance" ]
        ~doc:
          "Record provenance edges during solving so each reported flow \
           carries a witness path (adds a $(b,witnesses) array to \
           --stats-json).  Off by default; when off the solver output is \
           byte-identical to a build without this feature.")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print a human-readable source-to-sink witness trace under \
           each reported flow (implies --provenance).")

let profile_out =
  Arg.(
    value & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Profile the solver per method and write a collapsed-stack \
           file to $(docv) (feed it to flamegraph.pl; \"-\" writes to \
           stdout).  Also adds a $(b,profile) hot-method table to \
           --stats-json.")

let summary_store =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary-store" ]
        ~env:(Cmd.Env.info "FLOWDROID_SUMMARY_STORE")
        ~docv:"DIR"
        ~doc:
          "Persistent cross-app summary store: reuse end summaries of \
           methods whose code digest and analysis configuration match a \
           previous run, and persist freshly computed ones to $(docv).  \
           Off by default; with the flag unset the output is \
           byte-identical to a store-free run.")

let targeted =
  Arg.(
    value & opt_all string []
    & info [ "targeted" ]
        ~env:(Cmd.Env.info "FLOWDROID_TARGETED")
        ~docv:"SIG"
        ~doc:
          "Demand-driven targeted mode: only analyse flows into sinks \
           matching $(docv) (substring of \"Class.method\", supertypes \
           included; repeatable, or comma-separated in \
           $(b,FLOWDROID_TARGETED)).  Slices backward from matching \
           sink sites and extends the call graph only along the \
           slice — often orders of magnitude faster when most of the \
           app cannot reach the sink.")

let icc_flag =
  Arg.(
    value & flag
    & info [ "icc" ]
        ~env:(Cmd.Env.info "FLOWDROID_ICC")
        ~doc:
          "Inter-component taint tracking: resolve intent sends against \
           the manifest's intent filters (Android's intent-resolution \
           rules, exported gate included) and stitch sending-side flows \
           to reception-side flows — per extra key where the constant \
           analysis can separate them.  Off by default; with the flag \
           unset the output is byte-identical to a build without this \
           tier.")

(* repeatable flag + comma-separated lists (the env-var form) *)
let split_targeted specs =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun p ->
          let p = String.trim p in
          if p = "" then None else Some p)
        (String.split_on_char ',' s))
    specs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [--lint]: per-file token-level label checks, then IR-level checks
   over whatever parses (parse failures are reported and skipped so
   one broken unit does not hide the others' issues) *)
let run_lint dir =
  let rec jimple_files d =
    Sys.readdir d |> Array.to_list |> List.sort compare
    |> List.concat_map (fun f ->
           let p = Filename.concat d f in
           if Sys.is_directory p then jimple_files p
           else if Filename.check_suffix f ".jimple" then [ p ]
           else [])
  in
  let issues = ref 0 in
  let report i =
    incr issues;
    print_endline (Fd_ir.Lint.string_of_issue i)
  in
  let classes =
    List.concat_map
      (fun path ->
        let src = read_file path in
        List.iter report (Fd_ir.Lint.lint_source ~file:path src);
        match Fd_ir.Parser.parse_string src with
        | cs -> List.map (fun c -> (path, c)) cs
        | exception Fd_ir.Parser.Parse_error (line, msg) ->
            incr issues;
            Printf.printf "%s:%d: parse-error: %s\n" path line msg;
            []
        | exception Fd_ir.Lexer.Lex_error (line, msg) ->
            incr issues;
            Printf.printf "%s:%d: lex-error: %s\n" path line msg;
            [])
      (jimple_files dir)
  in
  let by_class =
    List.map (fun (p, (c : Fd_ir.Jclass.t)) -> (c.Fd_ir.Jclass.c_name, p)) classes
  in
  List.iter
    (fun (i : Fd_ir.Lint.issue) ->
      (* resolve Class.method back to its file when we can *)
      let cls =
        match String.rindex_opt i.Fd_ir.Lint.li_where '.' with
        | Some j -> String.sub i.Fd_ir.Lint.li_where 0 j
        | None -> i.Fd_ir.Lint.li_where
      in
      match List.assoc_opt cls by_class with
      | Some f -> report { i with Fd_ir.Lint.li_where = f ^ ": " ^ i.Fd_ir.Lint.li_where }
      | None -> report i)
    (Fd_ir.Lint.lint_classes (List.map snd classes));
  if !issues = 0 then begin
    Printf.printf "lint: clean (%d class(es))\n" (List.length classes);
    0
  end
  else begin
    Printf.printf "lint: %d issue(s)\n" !issues;
    1
  end

let analyze dir apk_dirs icc k deadline lenient fallback no_lc no_cb no_alias
    no_act rta precision lint sources wrappers show_paths dump_dm xml_out
    stats_json_out trace_out provenance explain profile_out summary_store
    targeted =
  Fd_obs.Metrics.reset ();
  Fd_obs.Trace.reset ();
  Fd_obs.Profile.reset ();
  let dirs = (match dir with Some d -> [ d ] | None -> []) @ apk_dirs in
  match dirs with
  | [] ->
      Printf.eprintf "error: no app directory given (positional or --apk)\n";
      1
  | _ :: _ ->
  if lint then
    List.fold_left (fun acc d -> max acc (run_lint d)) 0 dirs
  else
  match Config.precision_of_string precision with
  | Error msg ->
      Printf.eprintf "error: --precision: %s\n" msg;
      1
  | Ok precision ->
  let config =
    {
      Config.default with
      Config.max_access_path = k;
      Config.deadline_s = deadline;
      Config.lifecycle = not no_lc;
      Config.callbacks = not no_cb;
      Config.alias_search = not no_alias;
      Config.activation_statements = not no_act;
      Config.cg_algorithm =
        (if rta then Fd_callgraph.Callgraph.Rta else Fd_callgraph.Callgraph.Cha);
      Config.precision;
      Config.provenance = provenance || explain;
      Config.profile = profile_out <> None;
      Config.summary_store = summary_store;
      Config.targeted = split_targeted targeted;
      Config.icc = icc;
    }
  in
  if summary_store <> None then Fd_store.Store.install ();
  let mode = if lenient then `Lenient else `Strict in
  let defs =
    match sources with
    | Some f -> Fd_frontend.Sourcesink.of_string (read_file f)
    | None -> Fd_frontend.Sourcesink.default ()
  in
  let wrappers =
    match wrappers with
    | Some f -> Fd_frontend.Rules.of_string (read_file f)
    | None -> Fd_frontend.Rules.default_wrappers ()
  in
  let phase p = Printf.eprintf "[phase] %s\n%!" p in
  (
      let run () =
        match dirs with
        | [ dir ] ->
            let apk = Fd_frontend.Apk.of_dir ~mode dir in
            if fallback then begin
              let fb =
                Fd_core.Infoflow.analyze_with_fallback ~config ~defs ~wrappers
                  ~phase ~mode apk
              in
              (fb.Fd_core.Infoflow.fb_result, Some fb)
            end
            else
              ( Fd_core.Infoflow.analyze_apk ~config ~defs ~wrappers ~phase
                  ~mode apk,
                None )
        | dirs ->
            (* the merged multi-app Scene: collusion analysis *)
            if fallback then
              Printf.eprintf
                "warning: --fallback applies to single-app analysis; ignored\n";
            let apks = List.map (Fd_frontend.Apk.of_dir ~mode) dirs in
            let merged = Fd_frontend.Apk.load_merged ~mode apks in
            List.iter
              (fun d ->
                Printf.eprintf "warning: %s\n"
                  (Fd_resilience.Diag.to_string d))
              merged.Fd_frontend.Apk.m_loaded.Fd_frontend.Apk.diags;
            ( Fd_core.Infoflow.analyze_merged ~config ~defs ~wrappers ~phase
                merged,
              None )
      in
      match run () with
      | exception Fd_frontend.Apk.Load_error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | exception Fd_core.Infoflow.Fallback_failed attempts ->
          Printf.eprintf "error: every degradation-ladder rung crashed:\n";
          List.iter
            (fun (a : Fd_core.Infoflow.attempt) ->
              Printf.eprintf "  %s: %s\n" a.Fd_core.Infoflow.at_label
                (Fd_resilience.Outcome.to_string a.Fd_core.Infoflow.at_outcome))
            attempts;
          1
      | result, fb_opt ->
          List.iter
            (fun d ->
              Printf.eprintf "warning: %s\n" (Fd_resilience.Diag.to_string d))
            result.Fd_core.Infoflow.r_diags;
          if summary_store <> None then
            List.iter
              (fun d ->
                Printf.eprintf "warning: %s\n"
                  (Fd_resilience.Diag.to_string d))
              (Fd_store.Store.drain_diags ());
          let findings = result.Fd_core.Infoflow.r_findings in
          (* only mention precision when a pass is on: the default
             output stays bit-identical *)
          let precision_note =
            if Config.precision_enabled precision then
              Printf.sprintf ", precision: %s"
                (Config.string_of_precision precision)
            else ""
          in
          Printf.printf
            "%d flow(s) found in %s (%.3f s, %d reachable methods%s)\n"
            (List.length findings)
            (String.concat " + " dirs)
            result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_time
            result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_reachable
            precision_note;
          List.iteri
            (fun i (fd : Fd_core.Bidi.finding) ->
              Printf.printf "%2d. [%s] %s\n      -> sink at %s\n" (i + 1)
                (Fd_frontend.Sourcesink.string_of_category
                   fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_category)
                fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_desc
                (Fd_callgraph.Icfg.string_of_node fd.Fd_core.Bidi.f_sink_node);
              if show_paths then
                List.iter
                  (fun n ->
                    Printf.printf "      via %s\n"
                      (Fd_callgraph.Icfg.string_of_node n))
                  fd.Fd_core.Bidi.f_path;
              if explain then
                match Fd_core.Report.witness_lines fd with
                | [] -> print_endline "      (no witness recorded)"
                | lines -> List.iter print_endline lines)
            findings;
          (match result.Fd_core.Infoflow.r_icc with
          | None -> ()
          | Some rep ->
              Printf.printf
                "icc: %d send site(s), %d resolved, %d stitched flow(s), %d \
                 setResult leak(s)\n"
                rep.Fd_core.Icc.ic_send_sites rep.Fd_core.Icc.ic_resolved
                (List.length rep.Fd_core.Icc.ic_stitched)
                (List.length rep.Fd_core.Icc.ic_result_leaks);
              List.iter
                (fun (app, cls) ->
                  Printf.printf "  exported: %s [%s]\n" cls app)
                rep.Fd_core.Icc.ic_exported;
              List.iter
                (fun (e : Fd_core.Icc.surface_entry) ->
                  Printf.printf "  surface: %s in %s (%s)\n"
                    (Fd_callgraph.Icfg.string_of_node e.Fd_core.Icc.su_node)
                    e.Fd_core.Icc.su_method
                    (Fd_core.Icc.string_of_reason e.Fd_core.Icc.su_reason))
                rep.Fd_core.Icc.ic_surface);
          let write_error = ref false in
          let write_out what path =
            try
              what ~path;
              if path <> "-" then Printf.eprintf "wrote %s\n" path
            with Sys_error msg ->
              Printf.eprintf "error: %s\n" msg;
              write_error := true
          in
          let extra =
            (if provenance || explain then
               [ ("witnesses", Fd_core.Report.witnesses_json findings) ]
             else [])
            @
            if profile_out <> None then
              [ ("profile", Fd_obs.Profile.to_json ()) ]
            else []
          in
          (match stats_json_out with
          | Some path ->
              write_out
                (fun ~path -> Fd_obs.Export.write_stats_json ~extra ~path ())
                path
          | None -> ());
          (match profile_out with
          | Some path -> write_out Fd_obs.Profile.write_collapsed path
          | None -> ());
          (match trace_out with
          | Some path -> write_out Fd_obs.Export.write_chrome_trace path
          | None -> ());
          (match xml_out with
          | Some path ->
              let doc =
                match fb_opt with
                | Some fb -> Fd_core.Report.fallback_to_xml_string fb
                | None -> Fd_core.Report.to_xml_string result
              in
              let oc = open_out_bin path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc doc);
              Printf.eprintf "wrote %s\n" path
          | None -> ());
          if dump_dm then begin
            match
              Fd_callgraph.Callgraph.body_of
                result.Fd_core.Infoflow.r_icfg.Fd_callgraph.Icfg.cg
                Fd_callgraph.Mkey.
                  { mk_class = "dummyMainClass"; mk_name = "dummyMain";
                    mk_arity = 0 }
            with
            | body ->
                print_newline ();
                print_endline "Generated dummy main (Figure 1 model):";
                print_string (Fd_ir.Pretty.cfg_to_string body)
            | exception Not_found -> ()
          end;
          let incomplete =
            match fb_opt with
            | Some fb -> (
                print_endline (Fd_core.Report.fallback_summary fb);
                match fb.Fd_core.Infoflow.fb_completeness with
                | Fd_core.Infoflow.Partial _ -> true
                | Fd_core.Infoflow.Precise | Fd_core.Infoflow.Degraded _ ->
                    false)
            | None ->
                let complete =
                  Fd_resilience.Outcome.is_complete
                    result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_outcome
                in
                if not complete then
                  print_endline (Fd_core.Report.outcome_line result);
                not complete
          in
          if !write_error then 1
          else if incomplete then 3
          else if findings = [] then 0
          else 2)

let cmd =
  Cmd.v
    (Cmd.info "flowdroid"
       ~doc:
         "Context-, flow-, field- and object-sensitive, lifecycle-aware \
          taint analysis for Android apps (FlowDroid, PLDI 2014)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Analyses an Android app given as a directory containing \
              AndroidManifest.xml, res/layout/*.xml and µJimple (.jimple) \
              class sources.  Exit status: 0 when no flows are found, 2 \
              when flows are reported, 3 when the analysis terminated \
              early (deadline, budget or crash — results are a partial \
              under-approximation), 1 on errors.";
         ])
    Term.(
      const analyze $ app_dir $ apk_dirs $ icc_flag $ k_len $ deadline
      $ lenient $ fallback $ no_lifecycle $ no_callbacks $ no_alias
      $ no_activation $ rta $ precision $ lint_flag $ sources_file
      $ wrappers_file $ show_paths $ dump_dummy_main $ xml_out
      $ stats_json_out $ trace_out $ provenance_flag $ explain_flag
      $ profile_out $ summary_store $ targeted)

let () = exit (Cmd.eval' cmd)
