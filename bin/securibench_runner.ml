(* Regenerates Table 2: SecuriBench-µ results for FlowDroid.

   Observability options:
     --stats-json FILE  write the metrics snapshot (+ phase durations)
     --trace-out FILE   write a Chrome trace_event file

   Performance options:
     --jobs N           fan the per-case loop out over N domains
                        (default: $FLOWDROID_JOBS, else 1); the table
                        is bit-identical at any job count *)

let stats_json = ref None
let trace_out = ref None
let jobs = ref (Fd_util.Pool.default_jobs ())

let () =
  let rec parse = function
    | [] -> ()
    | "--stats-json" :: v :: rest ->
        stats_json := Some v;
        parse rest
    | "--trace-out" :: v :: rest ->
        trace_out := Some v;
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            prerr_endline "error: --jobs expects a positive integer";
            exit 1);
        parse rest
    | _ ->
        prerr_endline
          "usage: securibench_runner [--stats-json FILE] [--trace-out FILE] \
           [--jobs N]";
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv))

let () =
  let t = Fd_eval.Securibench_table.run ~jobs:!jobs () in
  print_string (Fd_eval.Securibench_table.render t);
  (* list any deviations from the expected counts, for debugging *)
  List.iter
    (fun (name, v) ->
      if v.Fd_eval.Scoring.fn > 0 || v.Fd_eval.Scoring.fp > 0 then
        Printf.printf "  %-18s tp=%d fp=%d fn=%d\n" name v.Fd_eval.Scoring.tp
          v.Fd_eval.Scoring.fp v.Fd_eval.Scoring.fn)
    t.Fd_eval.Securibench_table.per_case;
  (* per-case termination states: list the cases the barrier had to
     degrade or give up on, then the overall distribution *)
  let outcomes = t.Fd_eval.Securibench_table.per_case_outcomes in
  List.iter
    (fun (name, o) ->
      if not (Fd_resilience.Outcome.is_complete o) then
        Printf.printf "  %-18s outcome: %s\n" name
          (Fd_resilience.Outcome.to_string o))
    outcomes;
  let dist =
    List.fold_left
      (fun acc (_, o) ->
        let key =
          match o with
          | Fd_resilience.Outcome.Crashed _ -> "crashed"
          | o -> Fd_resilience.Outcome.to_string o
        in
        let prev = Option.value (List.assoc_opt key acc) ~default:0 in
        (key, prev + 1) :: List.remove_assoc key acc)
      [] outcomes
    |> List.sort compare
  in
  Printf.printf "outcomes: %s\n"
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s: %d" k n) dist));
  let write_out what path =
    try
      what ~path;
      if path <> "-" then Printf.eprintf "wrote %s\n" path
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  (match !stats_json with
  | Some path ->
      write_out (fun ~path -> Fd_obs.Export.write_stats_json ~path ()) path
  | None -> ());
  match !trace_out with
  | Some path -> write_out Fd_obs.Export.write_chrome_trace path
  | None -> ()
