(** Simulated commercial comparators (Section 6.1).

    Genuinely simpler analyses on the textbook forward-only IFDS
    solver, whose structural weaknesses reproduce the per-category
    failures Table 1 attributes to IBM AppScan Source and HP Fortify
    SCA: no lifecycle model (isolated per-method entry points), no
    layout XML; AppScan-like additionally field-insensitive with
    taint-dropping array stores, Fortify-like field-sensitive with a
    flow-insensitive global static-field model and static-initialiser
    entry points (the "by chance" lifecycle finds). *)

type opts = {
  name : string;
  field_sensitive : bool;
  whole_array : bool;  (** false: taint dies at array stores *)
  global_statics : bool;  (** Fortify's flow-insensitive static model *)
  param_sources : bool;
  aggressive_sinks : bool;  (** adds [Activity.setResult] as a sink *)
  clinit_entries : bool;
  max_access_path : int;
}

val appscan_like : opts
val fortify_like : opts

val run : opts -> Fd_frontend.Apk.t -> (string option * string option) list
(** [run opts apk] analyses the app and returns (source tag, sink tag)
    findings. *)

val run_appscan : Fd_frontend.Apk.t -> (string option * string option) list
val run_fortify : Fd_frontend.Apk.t -> (string option * string option) list
