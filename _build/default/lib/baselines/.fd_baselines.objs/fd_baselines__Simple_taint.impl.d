lib/baselines/simple_taint.ml: Body Callgraph Fd_callgraph Fd_core Fd_frontend Fd_ifds Fd_ir Hashtbl Icfg Jclass List Mkey Option Scene Stmt Types
