lib/baselines/simple_taint.mli: Fd_frontend
