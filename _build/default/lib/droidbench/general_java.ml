(** DROIDBENCH category "General Java": language-level challenges that
    are not Android-specific. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

(* Loop1: the taint survives a simple concatenation loop. 1 leak. *)
let loop1 =
  let cls = "de.ecspride.LoopExample1" in
  make "Loop1" ~category:"General Java"
    ~comment:"Taint flows through a string-building loop."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "Loop1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let obf = B.local m "obf" in
                 let i = B.local m "i" ~ty:T.Int in
                 B.const m obf (B.s "");
                 get_imei m imei;
                 B.const m i (B.i 0);
                 B.label m "head";
                 B.ifgoto m (B.v i) Stmt.Cge (B.i 10) "done";
                 B.binop m obf "+" (B.v obf) (B.v imei);
                 B.binop m i "+" (B.v i) (B.i 1);
                 B.goto m "head";
                 B.label m "done";
                 send_sms m (B.v obf));
           ];
       ])

(* Loop2: the taint is copied element-wise through an array inside a
   loop. 1 leak. *)
let loop2 =
  let cls = "de.ecspride.LoopExample2" in
  make "Loop2" ~category:"General Java"
    ~comment:"Character-wise copying through an array in a loop."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "Loop2" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" ~ty:str_t in
                 let chars = B.local m "chars" ~ty:(T.Array T.Char) in
                 let buf = B.local m "buf" ~ty:(T.Array T.Char) in
                 let i = B.local m "i" ~ty:T.Int in
                 let c = B.local m "c" ~ty:T.Char in
                 let out = B.local m "out" in
                 get_imei m imei;
                 B.vcall m ~ret:chars imei "java.lang.String" "toCharArray" [];
                 B.newarray m buf T.Char (B.i 64);
                 B.const m i (B.i 0);
                 B.label m "head";
                 B.ifgoto m (B.v i) Stmt.Cge (B.i 15) "done";
                 B.aload m c chars (B.v i);
                 B.astore m buf (B.v i) (B.v c);
                 B.binop m i "+" (B.v i) (B.i 1);
                 B.goto m "head";
                 B.label m "done";
                 B.scall m ~ret:out "java.lang.String" "valueOf" [ B.v buf ];
                 send_sms m (B.v out));
           ];
       ])

(* SourceCodeSpecific1: the leak sits behind data-independent
   branching; both branches assign the payload. 1 leak. *)
let source_code_specific1 =
  let cls = "de.ecspride.SourceCodeSpecific1" in
  make "SourceCodeSpecific1" ~category:"General Java"
    ~comment:"Branch-heavy source-code idioms (conditional expression) \
              around a real leak."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "SourceCodeSpecific1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let msg = B.local m "msg" in
                 let sel = B.local m "sel" ~ty:T.Int in
                 get_imei m imei;
                 B.binop m sel "%" (B.i 7) (B.i 2);
                 B.ifgoto m (B.v sel) Stmt.Ceq (B.i 0) "other";
                 B.binop m msg "+" (B.s "a:") (B.v imei);
                 B.goto m "send";
                 B.label m "other";
                 B.binop m msg "+" (B.s "b:") (B.v imei);
                 B.label m "send";
                 send_sms m (B.v msg));
           ];
       ])

(* StaticInitialization1: the sink lives in a static initializer that
   really runs at first use of the class — *after* the source.  Soot
   (and our model) place static initializers at program start, so the
   flow is missed: the Table 1 false negative. 1 expected leak. *)
let static_initialization1 =
  let cls = "de.ecspride.StaticInitialization1" in
  let helper = "de.ecspride.StaticInitHelper" in
  let g = B.fld ~ty:str_t cls "im" in
  make "StaticInitialization1" ~category:"General Java"
    ~comment:
      "A static initializer executing between source and sink; \
       modelling <clinit> at program start misses the flow."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "StaticInitialization1" cls
       [
         B.cls helper
           [
             B.meth "<clinit>" ~static:true (fun m ->
                 let v = B.local m "v" in
                 B.loadstatic m v g;
                 send_sms m (B.v v));
           ];
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let h = B.local m "h" ~ty:(T.Ref helper) in
                 get_imei m imei;
                 B.storestatic m g (B.v imei);
                 (* first use of the helper class triggers <clinit>
                    here at runtime *)
                 B.newobj m h helper);
           ];
       ])

(* UnreachableCode: a leak in code no entry point reaches. 0 leaks. *)
let unreachable_code =
  let cls = "de.ecspride.UnreachableCode" in
  make "UnreachableCode" ~category:"General Java"
    ~comment:"The leaking method is never called."
    ~expected:[]
    (activity_app "UnreachableCode" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let x = B.local m "x" in
                 B.const m x (B.s "nothing");
                 log m (B.v x));
             B.meth "neverCalled" (fun m ->
                 let _this = B.this m in
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 send_sms m (B.v imei));
           ];
       ])

let all =
  [ loop1; loop2; source_code_specific1; static_initialization1;
    unreachable_code ]
