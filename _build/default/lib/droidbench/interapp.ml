(** DROIDBENCH category "Inter-App Communication": intent-based flows.
    FlowDroid's over-approximation (Section 5) treats intent *sends* as
    sinks and intent *receptions* as sources; data handed back through
    the framework (setResult) is invisible to it — the IntentSink1
    false negative of Table 1. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

let intent_t = T.Ref "android.content.Intent"

(* IntentSink1: the tainted value goes into an intent returned to the
   calling activity via setResult — no modelled sink is touched, so
   FlowDroid misses the (real) leak. 1 expected leak. *)
let intent_sink1 =
  let cls = "de.ecspride.IntentSink1" in
  make "IntentSink1" ~category:"Inter-App Communication"
    ~comment:
      "IMEI stored in the activity result intent; the framework hands \
       it to the caller. No modelled sink: a known FlowDroid false \
       negative."
    ~expected:[ expect ~src:"src-imei" "sink-setresult" ]
    (activity_app "IntentSink1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let i = B.local m "i" ~ty:intent_t in
                 let imei = B.local m "imei" in
                 B.newc m i "android.content.Intent" [];
                 get_imei m imei;
                 B.vcall m i "android.content.Intent" "putExtra"
                   [ B.s "deviceId"; B.v imei ];
                 (* setResult is NOT in the sink list *)
                 B.vcall m ~tag:"sink-setresult" this "android.app.Activity"
                   "setResult" [ B.i (-1); B.v i ]);
           ];
       ])

(* IntentSink2: the intent is actually *sent*; startActivity is a
   modelled sink and the intent object carries the taint via the
   putExtra wrapper rule. 1 leak, found. *)
let intent_sink2 =
  let cls = "de.ecspride.IntentSink2" in
  make "IntentSink2" ~category:"Inter-App Communication"
    ~comment:"IMEI into an intent that is started: intent sending is a \
              sink."
    ~expected:[ expect ~src:"src-imei" "sink-start" ]
    (activity_app "IntentSink2" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let i = B.local m "i" ~ty:intent_t in
                 let imei = B.local m "imei" in
                 B.newc m i "android.content.Intent" [];
                 get_imei m imei;
                 B.vcall m i "android.content.Intent" "putExtra"
                   [ B.s "deviceId"; B.v imei ];
                 B.vcall m ~tag:"sink-start" this "android.app.Activity"
                   "startActivity" [ B.v i ]);
           ];
       ])

(* ActivityCommunication1: one activity sends the IMEI to a second
   activity of the same app.  Under the send-is-sink model the leak is
   reported at the startActivity call. 1 leak. *)
let activity_communication1 =
  let cls = "de.ecspride.ActivityCommunication1" in
  let recv = "de.ecspride.ResultActivity" in
  make "ActivityCommunication1" ~category:"Inter-App Communication"
    ~comment:
      "Cross-activity intent flow; the over-approximate ICC model \
       reports the send."
    ~expected:[ expect ~src:"src-imei" "sink-start" ]
    (activity_app "ActivityCommunication1" cls
       ~extra:[ (Fd_frontend.Framework.Activity, recv, []) ]
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let i = B.local m "i" ~ty:intent_t in
                 let imei = B.local m "imei" in
                 B.newc m i "android.content.Intent" [];
                 get_imei m imei;
                 B.vcall m i "android.content.Intent" "putExtra"
                   [ B.s "secret"; B.v imei ];
                 B.vcall m ~tag:"sink-start" this "android.app.Activity"
                   "startActivity" [ B.v i ]);
           ];
         B.cls recv ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let i = B.local m "i" ~ty:intent_t in
                 let s = B.local m "s" in
                 let tv =
                   B.local m "tv" ~ty:(T.Ref "android.widget.TextView")
                 in
                 B.vcall m ~ret:i this "android.app.Activity" "getIntent" [];
                 B.vcall m ~ret:s i "android.content.Intent" "getStringExtra"
                   [ B.s "secret" ];
                 (* displayed, not sunk: keeps the ground truth at one
                    leak *)
                 B.vcall m ~ret:tv this "android.app.Activity" "findViewById"
                   [ B.i 7 ];
                 B.vcall m tv "android.widget.TextView" "setText" [ B.v s ]);
           ];
       ])

let all = [ intent_sink1; intent_sink2; activity_communication1 ]
