(** DROIDBENCH category "Lifecycle": flows that only exist along the
    framework-driven ordering of component lifecycle methods.  Four of
    the six cases stage the data through a static field — the detail
    that lets Fortify-like tools find them "by chance" (Section 6.1)
    while a missing lifecycle model still misses the other two. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

let g_field name = B.fld ~ty:str_t "de.ecspride.G" name

let g_class =
  B.cls "de.ecspride.G"
    ~fields:[ ("stash", str_t) ]
    []

(* BroadcastReceiverLifecycle1: the receiver stores the IMEI on the
   first onReceive and leaks it on a later one.  The repetition in the
   component loop provides the ordering. 1 leak (static field). *)
let broadcast_receiver_lifecycle1 =
  let cls = "de.ecspride.BroadcastReceiverLifecycle1" in
  make "BroadcastReceiverLifecycle1" ~category:"Lifecycle"
    ~comment:"Leak across two invocations of onReceive; requires \
              modelling component repetition."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (Fd_frontend.Apk.make "BroadcastReceiverLifecycle1"
       ~manifest:
         (Fd_frontend.Apk.simple_manifest ~package:"de.ecspride"
            [ (Fd_frontend.Framework.Receiver, cls, []) ])
       [
         g_class;
         B.cls cls ~super:"android.content.BroadcastReceiver"
           [
             B.meth "onReceive"
               ~params:
                 [ T.Ref "android.content.Context"; T.Ref "android.content.Intent" ]
               (fun m ->
                 let _this = B.this m in
                 let _c = B.param m 0 "c" in
                 let _i = B.param m 1 "i" in
                 let prev = B.local m "prev" in
                 let imei = B.local m "imei" in
                 B.loadstatic m prev (g_field "stash");
                 B.ifgoto m (B.v prev) Stmt.Ceq B.nul "store";
                 send_sms m (B.v prev);
                 B.label m "store";
                 get_imei m imei;
                 B.storestatic m (g_field "stash") (B.v imei));
           ];
       ])

let activity_lifecycle ~name ~store_in ~leak_in ~static_field =
  let cls = "de.ecspride." ^ name in
  let f_inst = B.fld ~ty:str_t cls "stash" in
  let store m this imei =
    if static_field then B.storestatic m (g_field "stash") (B.v imei)
    else B.store m this f_inst (B.v imei)
  in
  let lload m this out =
    if static_field then B.loadstatic m out (g_field "stash")
    else B.load m out this f_inst
  in
  make name ~category:"Lifecycle"
    ~comment:
      (Printf.sprintf
         "IMEI stored in %s, leaked in %s (%s field): only the \
          lifecycle ordering connects them."
         store_in leak_in
         (if static_field then "static" else "instance"))
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app name cls
       [
         g_class;
         B.cls cls ~super:"android.app.Activity"
           ~fields:[ ("stash", str_t) ]
           [
             (if store_in = "onCreate" then
                on_create (fun m this ->
                    let imei = B.local m "imei" in
                    get_imei m imei;
                    store m this imei)
              else
                simple_lifecycle_meth store_in (fun m this ->
                    let imei = B.local m "imei" in
                    get_imei m imei;
                    store m this imei));
             simple_lifecycle_meth leak_in (fun m this ->
                 let out = B.local m "out" in
                 lload m this out;
                 send_sms m (B.v out));
           ];
       ])

(* four static-field cases (incl. the receiver above), two
   instance-field cases *)
let activity_lifecycle1 =
  activity_lifecycle ~name:"ActivityLifecycle1" ~store_in:"onCreate"
    ~leak_in:"onDestroy" ~static_field:true

let activity_lifecycle2 =
  activity_lifecycle ~name:"ActivityLifecycle2" ~store_in:"onStart"
    ~leak_in:"onRestart" ~static_field:true

let activity_lifecycle3 =
  activity_lifecycle ~name:"ActivityLifecycle3" ~store_in:"onResume"
    ~leak_in:"onPause" ~static_field:true

let activity_lifecycle4 =
  activity_lifecycle ~name:"ActivityLifecycle4" ~store_in:"onPause"
    ~leak_in:"onResume" ~static_field:false

(* ServiceLifecycle1: instance field across service lifecycle
   methods. 1 leak. *)
let service_lifecycle1 =
  let cls = "de.ecspride.ServiceLifecycle1" in
  let f_inst = B.fld ~ty:str_t cls "secret" in
  make "ServiceLifecycle1" ~category:"Lifecycle"
    ~comment:"Service stores the IMEI in onStartCommand and leaks it \
              in onDestroy."
    ~expected:[ expect ~src:"src-imei" "sink-log" ]
    (Fd_frontend.Apk.make "ServiceLifecycle1"
       ~manifest:
         (Fd_frontend.Apk.simple_manifest ~package:"de.ecspride"
            [ (Fd_frontend.Framework.Service, cls, []) ])
       [
         B.cls cls ~super:"android.app.Service"
           ~fields:[ ("secret", str_t) ]
           [
             B.meth "onStartCommand"
               ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ]
               ~ret:T.Int
               (fun m ->
                 let this = B.this m in
                 let _i = B.param m 0 "intent" in
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 B.store m this f_inst (B.v imei);
                 let r = B.local m "r" ~ty:T.Int in
                 B.const m r (B.i 1);
                 B.retv m (B.v r));
             simple_lifecycle_meth "onDestroy" (fun m this ->
                 let out = B.local m "out" in
                 B.load m out this f_inst;
                 log m (B.v out));
           ];
       ])

let all =
  [
    broadcast_receiver_lifecycle1; activity_lifecycle1; activity_lifecycle2;
    activity_lifecycle3; activity_lifecycle4; service_lifecycle1;
  ]
